// Avionics: the application domain the paper targets ("a large
// real-time application from the avionics application domain is planned
// to be implemented", §7).
//
// A fly-by-wire flight-control pipeline on three nodes:
//
//	node 0 (sensor computer):  gyro/accelerometer sampling at 100 Hz
//	node 1 (flight computer):  sensor fusion then the control law,
//	                           sharing the state store under SRP
//	node 2 (actuator computer): surface command output at 100 Hz
//
// The pipeline crosses the (simulated ATM) network twice — both remote
// precedence constraints go through the NetMsg path with omission
// monitoring — while the flight-computer state is checkpointed by a
// passive replica group over a view-synchronous membership group, and
// clock synchronisation keeps the logical clocks aligned. Fault
// injection crashes the backup's node mid-flight (the pipeline must not
// care; membership removes it and re-admits it with a state transfer on
// recovery) and drops one pipeline message (the omission monitor must
// say so). The whole system — nodes, links, apps, services, faults —
// is described through the cluster runtime layer.
//
//	go run ./examples/avionics
package main

import (
	"fmt"

	"hades/internal/clocksync"
	"hades/internal/cluster"
	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/replication"
	"hades/internal/sched"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

func main() {
	c := cluster.New(cluster.Config{Seed: 7, Costs: dispatcher.DefaultCostBook()})
	c.AddNodes(4) // 3 flight-critical + 1 maintenance
	c.ConnectAll(100*us, 250*us)

	app := c.NewApp("flight-control", sched.NewEDF(20*us), sched.NewSRP())

	// The 100 Hz control pipeline: sample → fuse → law → actuate.
	pipeline := heug.NewTask("fbw", heug.PeriodicEvery(10*ms)).
		WithDeadline(8*ms).
		Code("sample", heug.CodeEU{Node: 0, WCET: 250 * us, Action: func(ctx heug.ActionContext) {
			ctx.Out("imu", int64(ctx.Instance())*3%997)
		}}).
		Code("fuse", heug.CodeEU{Node: 1, WCET: 600 * us,
			Resources: []heug.ResourceReq{{Resource: "state", Mode: heug.Exclusive}},
			Action: func(ctx heug.ActionContext) {
				v, _ := ctx.In("imu")
				ctx.SetResourceState("state", v)
				ctx.Out("attitude", v)
			}}).
		Code("law", heug.CodeEU{Node: 1, WCET: 900 * us,
			Resources: []heug.ResourceReq{{Resource: "state", Mode: heug.Shared}},
			Action: func(ctx heug.ActionContext) {
				v, _ := ctx.In("attitude")
				ctx.Out("cmd", v)
			}}).
		Code("actuate", heug.CodeEU{Node: 2, WCET: 200 * us}).
		Precede("sample", "fuse", "imu").
		Precede("fuse", "law", "attitude").
		Precede("law", "actuate", "cmd").
		MustBuild()

	// A slower 10 Hz telemetry task on the flight computer, reading
	// the shared state.
	telemetry := heug.NewTask("telemetry", heug.PeriodicEvery(100*ms)).
		WithDeadline(80*ms).
		Code("pack", heug.CodeEU{Node: 1, WCET: 2 * ms,
			Resources: []heug.ResourceReq{{Resource: "state", Mode: heug.Shared}}}).
		Code("downlink", heug.CodeEU{Node: 3, WCET: 500 * us}).
		Precede("pack", "downlink").
		MustBuild()

	app.MustSpawn(pipeline)
	app.MustSpawn(telemetry)

	// Services: a view-synchronous membership group over all four
	// nodes (heartbeat detection, agreed view changes, rejoin with
	// state transfer), passive replication of the flight-state service
	// driven by the installed views, and clock synchronisation (n=4
	// tolerates one Byzantine clock).
	eng, net := c.Engine(), c.Network()
	grp := c.Group("avionics", 0, 1, 2, 3)
	group := grp.Replicate(replication.Config{
		Name:            "flight-state",
		Replicas:        []int{1, 3}, // flight computer + maintenance node
		Style:           replication.Passive,
		WExec:           100 * us,
		CheckpointEvery: 10,
		StorageLatency:  30 * us,
	}, nil)

	cs, err := clocksync.New(eng, net, clocksync.DefaultConfig([]int{0, 1, 2, 3}, 1))
	must(err)
	cs.Start()

	// Feed the replicated flight-state service at 200 Hz.
	for i := 0; i < 100; i++ {
		cmd := int64(i)
		c.At(vtime.Time(vtime.Duration(i)*5*ms), func() { group.Submit(1, cmd) })
	}

	// Faults: one dropped pipeline message at ~95 ms (omission
	// failure), and the maintenance node crashes at 200 ms, recovering
	// at 400 ms.
	c.DropEvery(40, "heug.prec")
	c.Crash(3, vtime.Time(200*ms), vtime.Time(400*ms))

	result := c.Run(500 * ms)

	fmt.Println("=== avionics: fly-by-wire pipeline over 500 ms ===")
	fmt.Print(result)
	fmt.Printf("network omissions detected by the dispatcher: %d\n", result.Stats.NetworkOmissions)
	fmt.Printf("clock sync rounds: %d, precision: %s (bound %s)\n", cs.Rounds(), cs.Precision(), cs.Bound())
	mem := grp.Membership()
	fmt.Printf("detector suspicions: %d, agreed views: %v (maintenance node crash + rejoin)\n",
		len(mem.Detector().Suspicions), mem.AgreedViews())
	fmt.Printf("replica failovers: %d, state transfers on rejoin: %d\n", len(group.Failovers), len(mem.Transfers))
	misses := 0
	if tr, ok := result.Task("fbw"); ok {
		misses = tr.Misses
	}
	fmt.Printf("flight-control deadline misses: %d (pipeline instances whose message was dropped miss by design; all others must hold)\n", misses)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
