// Quickstart: the smallest useful HADES program.
//
// One node, an EDF application with two periodic tasks, the full §4
// cost book, a feasibility check before launch, and a run report —
// the complete admission-then-execution workflow of the paper, wired
// entirely through the cluster runtime layer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"hades/internal/cluster"
	"hades/internal/dispatcher"
	"hades/internal/feasibility"
	"hades/internal/heug"
	"hades/internal/sched"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

func main() {
	// 1. Describe the cluster: one node, realistic middleware costs.
	costs := dispatcher.DefaultCostBook()
	c := cluster.New(cluster.Config{Seed: 1, Costs: costs})
	c.AddNode("ctrl")

	// 2. One application under EDF with SRP resource control.
	app := c.NewApp("quickstart", sched.NewEDF(20*us), sched.NewSRP())

	// A 10 ms control task: read a sensor, then run the control law
	// while holding the actuator bus exclusively.
	control := heug.NewTask("control", heug.PeriodicEvery(10*ms)).
		WithDeadline(10*ms).
		Code("read", heug.CodeEU{Node: 0, WCET: 300 * us, Action: func(ctx heug.ActionContext) {
			ctx.Out("sample", int64(ctx.Instance())) // pretend sensor value
		}}).
		Code("law", heug.CodeEU{Node: 0, WCET: 1200 * us,
			Resources: []heug.ResourceReq{{Resource: "bus", Mode: heug.Exclusive}},
			Action: func(ctx heug.ActionContext) {
				if v, ok := ctx.In("sample"); ok {
					ctx.SetResourceState("bus", v)
				}
			}}).
		Precede("read", "law", "sample").
		MustBuild()

	// A slower 40 ms logging task sharing the bus (shared mode).
	logger := heug.NewTask("logger", heug.PeriodicEvery(40*ms)).
		WithDeadline(40*ms).
		Code("dump", heug.CodeEU{Node: 0, WCET: 3 * ms,
			Resources: []heug.ResourceReq{{Resource: "bus", Mode: heug.Shared}}}).
		MustBuild()

	// Spawn registers each task and drives it per its arrival law.
	app.MustSpawn(control)
	app.MustSpawn(logger)

	// 3. Feasibility first (the §5.3 cost-integrated test): a
	// safety-critical system refuses to launch unguaranteed work.
	analysis := []feasibility.Task{
		{Name: "control", C: 1500 * us, D: 10 * ms, T: 10 * ms, CS: 1200 * us, Resource: "bus", NumEU: 2, LocalEdges: 1},
		{Name: "logger", C: 3 * ms, D: 40 * ms, T: 40 * ms, CS: 3 * ms, Resource: "bus", NumEU: 1},
	}
	ov := &feasibility.Overheads{Book: costs, SchedCost: 20 * us}
	verdict := feasibility.EDFSpuri(analysis, ov)
	fmt.Printf("feasibility (cost-integrated): %v\n", verdict.Feasible)
	if !verdict.Feasible {
		fmt.Printf("refusing to launch: %s\n", verdict.Why)
		return
	}

	// 4. Run for one simulated second.
	result := c.Run(vtime.Second)

	// 5. Report.
	fmt.Print(result)
	fmt.Printf("events processed: %d, deadline misses: %d\n",
		c.Engine().EventsFired(), result.Stats.DeadlineMisses)
}
