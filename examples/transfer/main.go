// Transfer: cross-shard atomic bank transfers over the sharded data
// plane — two-phase commit where the coordinator log and the
// participants are the replicated shard groups, and every transfer
// carries a virtual-time deadline.
//
// Two semi-active shard groups (shard0 on nodes 0–2, shard1 on nodes
// 3–5) hold the accounts, consistent-hashed over the ring; a
// transaction client on node 6 submits one two-account transfer every
// 3 ms (read both balances, debit one, credit the other — the
// accounts usually live on different shards, so the transfer is a
// genuinely distributed atomic commitment).
//
// Each transaction's coordinator is the shard group its id hashes
// onto: the coordinator primary drives PREPARE to each owning shard's
// primary, participants take per-key locks and vote, and the decision
// is logged through the coordinator group's replicated machine before
// any participant applies — so it survives the crash failover below.
// The client only sees "committed" after every participant applied,
// which is exactly the property the final verification audits.
//
// At 60 ms shard0's primary crashes (recovering at 260 ms): prepares
// and submissions redirect to the promoted replica; transactions
// caught mid-protocol abort on their 30 ms deadlines — per-key locks
// are NEVER held past a deadline, so the fault window cannot wedge
// the lock tables.
//
// At 140 ms shard1's serving quorum {3,4} is segmented away from the
// client side until 240 ms. No failover can rescue that traffic (the
// quorum and its primary are intact, merely unreachable), so
// transfers touching shard1 deterministically deadline-abort during
// the window — deadline-aware admission instead of best-effort
// blocking — and resume after the heal, when parked submissions and
// decisions are re-driven.
//
// At the end the run asserts the headline property (txn.Verify):
// every committed transfer's two writes appear exactly once in BOTH
// owning shards' authoritative histories, aborted transfers left no
// partial write anywhere, and no lock outlived its deadline.
//
//	go run ./examples/transfer
package main

import (
	"fmt"

	"hades/internal/cluster"
	"hades/internal/dispatcher"
	"hades/internal/vtime"
)

const ms = vtime.Millisecond

func main() {
	c := cluster.New(cluster.Config{Seed: 21, Costs: dispatcher.DefaultCostBook()})
	c.AddNodes(7) // 2 shards × 3 replicas + 1 transaction client
	c.ConnectAll(100*vtime.Microsecond, 250*vtime.Microsecond)

	set := c.Shards(2, 3)
	client := set.TxnClientAt(6) // 30 ms default deadline

	accounts := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}
	for i := 0; i < 100; i++ {
		src := accounts[i%len(accounts)]
		dst := accounts[(i+1)%len(accounts)]
		amount := int64(i + 1)
		c.At(vtime.Time(vtime.Duration(3*i)*ms), func() { client.Transfer(src, dst, amount) })
	}

	c.Crash(0, vtime.Time(60*ms), vtime.Time(260*ms))                    // shard0's primary
	c.PartitionAt(vtime.Time(140*ms), []int{3, 4}, []int{0, 1, 2, 5, 6}) // shard1's quorum, unreachable
	c.HealAt(vtime.Time(240 * ms))

	res := c.Run(400 * ms)

	fmt.Println("=== cross-shard transfers: crash on shard0, partition on shard1, 400 ms ===")
	fmt.Print(res)
	fmt.Println()
	plane := set.TxnPlane()
	for i, co := range plane.Coordinators() {
		pa := plane.Participants()[i]
		fmt.Printf("%s: coordinated %d (commits %d, aborts %d, deadline %d); prepared %d, lock waits %d, deadline releases %d\n",
			co.Group().Name(), co.Stats.Begins, co.Stats.Commits, co.Stats.Aborts, co.Stats.DeadlineAborts,
			pa.Stats.Prepares, pa.Stats.LockWaits, pa.Stats.DeadlineReleases)
	}
	st := client.Stats
	fmt.Printf("client: %d begun, %d committed, %d aborted (%d on deadlines), %d retries, %d parked\n",
		st.Begun, st.Committed, st.Aborted, st.DeadlineAborts, st.Retries, st.Queued)
	fmt.Printf("latency: avg %s, max %s (lock waits and fault windows included)\n", st.AvgLatency(), st.MaxLatency)
	if err := set.CheckTxns(); err != nil {
		fmt.Printf("ATOMICITY VIOLATION: %v\n", err)
		return
	}
	fmt.Println("atomicity: committed transfers all-or-nothing across shards, aborts wrote nothing, no lock past its deadline")
}
