// Partition: split-brain-safe membership under a network partition —
// the fault class a crash/recover model cannot express.
//
// A passive replicated state machine runs on nodes 0–2 over a
// view-synchronous membership group; a client on node 3 submits one
// request per millisecond. At 60 ms the network segments: the primary
// (node 0) is cut off alone, while nodes 1–3 — a strict majority
// quorum of the previous view — stay connected. Both sides suspect
// each other, but the primary-partition rule lets only the majority
// act: it agrees on view v2{1,2}, installs it at one instant and
// promotes replica 1. The isolated minority blocks — it installs no
// view and promotes no primary, so there is never a second leader
// (split-brain safety), and old-view traffic pending past the
// boundary is flushed rather than delivered (virtual synchrony).
//
// At 200 ms the partition heals. Heartbeats flow again, the majority
// rehabilitates node 0 and re-admits it through a merge view v3, and
// the join state transfer overwrites the minority's stale state with
// the authoritative majority log — every replica converges to the one
// history the surviving primary produced.
//
//	go run ./examples/partition
package main

import (
	"fmt"

	"hades/internal/cluster"
	"hades/internal/dispatcher"
	"hades/internal/replication"
	"hades/internal/vtime"
)

const ms = vtime.Millisecond

func main() {
	c := cluster.New(cluster.Config{Seed: 7, Costs: dispatcher.DefaultCostBook()})
	c.AddNodes(4) // 3 replicas + 1 client
	c.ConnectAll(100*vtime.Microsecond, 250*vtime.Microsecond)

	grp := c.Group("sm", 0, 1, 2)
	var replies int
	rep := grp.Replicate(replication.Config{
		Style:           replication.Passive,
		WExec:           100 * vtime.Microsecond,
		CheckpointEvery: 5,
		StorageLatency:  20 * vtime.Microsecond,
	}, func(uint64, int64, bool) { replies++ })

	for i := 0; i < 300; i++ {
		cmd := int64(i + 1)
		c.At(vtime.Time(vtime.Duration(i)*ms), func() { rep.Submit(3, cmd) })
	}

	// The primary is segmented off alone; the client stays with the
	// majority side.
	splitAt := vtime.Time(60 * ms)
	healAt := vtime.Time(200 * ms)
	c.PartitionAt(splitAt, []int{0}, []int{1, 2, 3})
	c.HealAt(healAt)

	res := c.Run(400 * ms)
	mem := grp.Membership()

	fmt.Println("=== partition: split → majority view → merge over 400 ms ===")
	fmt.Print(res)
	fmt.Printf("\nprimary-partition rule: quorum %d of the previous view\n", mem.Quorum())
	for _, in := range mem.Installs {
		if in.View.ID == 1 {
			continue
		}
		fmt.Printf("  n%d installed %s at %s (%s)\n", in.Node, in.View, in.At, in.Reason)
	}
	fmt.Printf("minority (n0) blocked while partitioned: %s — no view, no promotion\n", mem.BlockedTime(0))
	for _, fo := range rep.Failovers {
		fmt.Printf("failover: n%d → n%d in view %d at %s (exactly one side ever promotes)\n",
			fo.From, fo.To, fo.InView, fo.At)
	}
	for _, mg := range mem.Merges {
		fmt.Printf("merge: %s re-admitted %v at %s — %s after the heal\n",
			mg.View, mg.Readmitted, mg.At, mg.Latency)
	}
	for _, tr := range mem.Transfers {
		fmt.Printf("state transfer: n%d → n%d at %s (authoritative majority state wins)\n", tr.From, tr.To, tr.At)
	}
	fmt.Printf("replica states: primary applied=%d, re-admitted minority applied=%d (within one checkpoint interval)\n",
		rep.Machine(rep.Primary()).Applied, rep.Machine(0).Applied)
	fmt.Printf("client replies: %d of 300 (requests during the split window are lost and must be resubmitted)\n", replies)
}
