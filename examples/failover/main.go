// Failover: the view-synchronous membership cycle end to end —
// primary crash → agreed view change → same-view failover at every
// replica → recovery → rejoin with state transfer.
//
// A passive replicated state machine runs on nodes 0–2 (promotion
// order 0, 1, 2) over a view-synchronous membership group; a client on
// node 3 submits one request per millisecond. At 53 ms the primary
// crashes: every live member's detector suspects it, one consensus
// round agrees on view v2 without it, and the time-bounded broadcast
// installs v2 at both survivors at the same instant — at which point
// both promote replica 1, in the same view, losing only the work since
// the last checkpoint. At 150 ms node 0 recovers, resumes
// heartbeating, is rehabilitated and re-admitted by view v3, and the
// join protocol ships it the primary's current state through stable
// storage. Leadership is sticky: the rejoined ex-primary continues as
// a backup.
//
// Every latency printed is checked against the provable bound
// (detector timeout + consensus bound + broadcast Δ) that
// membership.Service.Bound() exposes — the §2.2 "time-bounded service"
// contract, reproduced as a testable property.
//
//	go run ./examples/failover
package main

import (
	"fmt"

	"hades/internal/cluster"
	"hades/internal/dispatcher"
	"hades/internal/replication"
	"hades/internal/vtime"
)

const ms = vtime.Millisecond

func main() {
	c := cluster.New(cluster.Config{Seed: 11, Costs: dispatcher.DefaultCostBook()})
	c.AddNodes(4) // 3 replicas + 1 client
	c.ConnectAll(100*vtime.Microsecond, 250*vtime.Microsecond)

	grp := c.Group("sm", 0, 1, 2)
	var replies int
	rep := grp.Replicate(replication.Config{
		Style:           replication.Passive,
		WExec:           100 * vtime.Microsecond,
		CheckpointEvery: 5,
		StorageLatency:  20 * vtime.Microsecond,
	}, func(uint64, int64, bool) { replies++ })

	for i := 0; i < 300; i++ {
		cmd := int64(i + 1)
		c.At(vtime.Time(vtime.Duration(i)*ms), func() { rep.Submit(3, cmd) })
	}

	// Crash mid-checkpoint-interval so the passive style shows its
	// characteristic lost work.
	crashAt := vtime.Time(53 * ms)
	recoverAt := vtime.Time(150 * ms)
	c.Crash(0, crashAt, recoverAt)

	res := c.Run(400 * ms)
	mem := grp.Membership()

	fmt.Println("=== failover: crash → agreed view change → rejoin over 400 ms ===")
	fmt.Print(res)
	fmt.Printf("\nview-change bound: detection %s + agreement %s = %s\n",
		mem.DetectionBound(), mem.AgreementBound(), mem.Bound())
	for _, in := range mem.Installs {
		if in.View.ID == 1 {
			continue
		}
		fmt.Printf("  n%d installed %s at %s (%s, latency %s ≤ bound: %v)\n",
			in.Node, in.View, in.At, in.Reason, in.Latency, in.Latency <= mem.Bound())
	}
	for _, fo := range rep.Failovers {
		fmt.Printf("failover: n%d → n%d in view %d at %s (lost %d requests since last checkpoint)\n",
			fo.From, fo.To, fo.InView, fo.At, fo.LostSince)
	}
	for _, tr := range mem.Transfers {
		fmt.Printf("state transfer: n%d → n%d at %s (key %s)\n", tr.From, tr.To, tr.At, tr.Key)
	}
	fmt.Printf("primary now: n%d (sticky — the rejoined ex-primary stays a backup)\n", rep.Primary())
	fmt.Printf("replica states: primary applied=%d, rejoined backup applied=%d (within one checkpoint interval)\n",
		rep.Machine(1).Applied, rep.Machine(0).Applied)
	fmt.Printf("client replies: %d of 300 (requests during the failover window are lost and must be resubmitted)\n", replies)
}
