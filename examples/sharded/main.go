// Sharded: a keyspace consistent-hashed over two replication groups
// with a client request layer that survives crash failover AND a
// primary partition — the data plane a production-scale deployment
// shards its traffic over.
//
// Two semi-active replica groups (shard0 on nodes 0–2, shard1 on
// nodes 3–5) each run inside their own view-synchronous membership
// group; a client on node 6 submits one keyed request every
// millisecond, round-robin over eight keys. The router follows the
// ring; the client follows the router to each shard's current
// primary.
//
// At 60 ms shard0's primary crashes: the membership group agrees on
// the removal view, the same follower is promoted everywhere at the
// same instant, the router republishes ownership, and the client's
// in-flight and retried requests redirect to the new primary —
// retried requests that had already been applied are answered from
// the replicated dedup cache, not applied twice.
//
// At 140 ms shard1's primary is segmented off alone (a partition, not
// a crash). The majority side holds quorum, installs the removal view
// and promotes; the isolated ex-primary blocks (split-brain safety)
// and is re-admitted through a merge view with a state transfer at
// the heal. The client rides the window out with retries and
// redirects.
//
// At the end the run asserts the headline property: every
// acknowledged request was applied exactly once in the owning shard's
// authoritative history, in per-key submission order.
//
//	go run ./examples/sharded
package main

import (
	"fmt"

	"hades/internal/cluster"
	"hades/internal/dispatcher"
	"hades/internal/vtime"
)

const ms = vtime.Millisecond

func main() {
	c := cluster.New(cluster.Config{Seed: 7, Costs: dispatcher.DefaultCostBook()})
	c.AddNodes(7) // 2 shards × 3 replicas + 1 client
	c.ConnectAll(100*vtime.Microsecond, 250*vtime.Microsecond)

	set := c.Shards(2, 3) // semi-active by default
	client := set.ClientAt(6)

	keys := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}
	for i := 0; i < 300; i++ {
		key := keys[i%len(keys)]
		cmd := int64(i + 1)
		c.At(vtime.Time(vtime.Duration(i)*ms), func() { client.Submit(key, cmd) })
	}

	c.Crash(0, vtime.Time(60*ms), vtime.Time(260*ms))                    // shard0's primary
	c.PartitionAt(vtime.Time(140*ms), []int{3}, []int{0, 1, 2, 4, 5, 6}) // shard1's primary, alone
	c.HealAt(vtime.Time(240 * ms))

	res := c.Run(400 * ms)

	fmt.Println("=== sharded data plane: crash on shard0, partition on shard1, 400 ms ===")
	fmt.Print(res)
	fmt.Println()
	for _, g := range set.Groups() {
		rep := g.Replication()
		fmt.Printf("%s (nodes %v): primary n%d, %d requests, %d redirects, %d dedup hits\n",
			g.Name(), g.Nodes(), rep.Primary(), g.Stats.Requests, g.Stats.Redirects, rep.Duplicates)
		for _, fo := range rep.Failovers {
			fmt.Printf("  failover n%d -> n%d in view %d at %s\n", fo.From, fo.To, fo.InView, fo.At)
		}
		for _, mg := range g.Membership().Merges {
			fmt.Printf("  merge %s re-admitted %v at %s (%s after the heal)\n", mg.View, mg.Readmitted, mg.At, mg.Latency)
		}
	}
	st := client.Stats
	fmt.Printf("router republishes: %d\n", set.Router().Republishes)
	fmt.Printf("client: %d submitted, %d acked, %d redirects, %d retries, %d queued, %d resubmitted\n",
		st.Submitted, st.Acked, st.Redirects, st.Retries, st.Queued, st.Resubmitted)
	fmt.Printf("latency: avg %s, max %s (timeouts and queue time included)\n", st.AvgLatency(), st.MaxLatency)
	if err := set.Check(); err != nil {
		fmt.Printf("CONSISTENCY VIOLATION: %v\n", err)
		return
	}
	fmt.Println("consistency: every acked request applied exactly once, per-key order intact")
}
