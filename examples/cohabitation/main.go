// Cohabitation: the §2.2.1 discussion made concrete — "restrict the
// cohabitation between a single scheduler implementing a feasibility
// test and any number of best-effort schedulers".
//
// One node hosts a *guaranteed* EDF application (admitted by the §5.3
// cost-integrated test) and two best-effort applications that together
// would oversubscribe the CPU. The priority-band separation makes the
// guaranteed application immune: it misses nothing, while the
// best-effort load absorbs whatever slack remains.
//
//	go run ./examples/cohabitation
package main

import (
	"fmt"

	"hades/internal/cluster"
	"hades/internal/dispatcher"
	"hades/internal/feasibility"
	"hades/internal/heug"
	"hades/internal/sched"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

func main() {
	costs := dispatcher.DefaultCostBook()
	c := cluster.New(cluster.Config{Seed: 5, Costs: costs})
	c.AddNode("shared")

	// Guaranteed application: EDF + SRP, admitted by the integrated test.
	guaranteed := c.NewApp("guaranteed", sched.NewEDF(20*us), sched.NewSRP())
	specs := []heug.SpuriTask{
		{Name: "g.fast", Node: 0, CBefore: 1 * ms, Deadline: 5 * ms, PseudoPeriod: 10 * ms},
		{Name: "g.slow", Node: 0, CBefore: 2 * ms, CS: 1 * ms, CAfter: 1 * ms,
			Resource: "R", Deadline: 20 * ms, PseudoPeriod: 40 * ms},
	}
	var analysis []feasibility.Task
	for _, st := range specs {
		must(guaranteed.SpawnSpuri(st)) // sporadic → worst-case arrivals
		analysis = append(analysis, feasibility.FromSpuri(st))
	}

	ov := &feasibility.Overheads{Book: costs, SchedCost: 20 * us}
	verdict := feasibility.EDFSpuri(analysis, ov)
	fmt.Printf("guaranteed app admitted by §5.3 test: %v (U=%.3f)\n",
		verdict.Feasible, feasibility.Utilization(analysis))
	if !verdict.Feasible {
		panic("admission failed; adjust the workload")
	}

	// Two best-effort applications that would need ~130% CPU alone.
	for i, period := range []vtime.Duration{7 * ms, 9 * ms} {
		be := c.NewApp(fmt.Sprintf("besteffort%d", i+1), sched.NewBestEffort(0), nil)
		be.MustSpawn(heug.NewTask(fmt.Sprintf("be%d", i+1), heug.PeriodicEvery(period)).
			Code("churn", heug.CodeEU{Node: 0, WCET: 5 * ms}).
			MustBuild())
	}

	result := c.Run(vtime.Second)
	fmt.Print(result)

	fmt.Println("--- cohabitation verdict ---")
	for _, tr := range result.Tasks {
		switch {
		case tr.Name == "g.fast" || tr.Name == "g.slow":
			fmt.Printf("%-8s guaranteed:  misses=%d (must be 0)\n", tr.Name, tr.Misses)
		default:
			starved := tr.Completions == 0
			fmt.Printf("%-8s best-effort: completions=%d/%d (no guarantee, starved=%v)\n",
				tr.Name, tr.Completions, tr.Activations, starved)
		}
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
