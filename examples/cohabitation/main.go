// Cohabitation: the §2.2.1 discussion made concrete — "restrict the
// cohabitation between a single scheduler implementing a feasibility
// test and any number of best-effort schedulers".
//
// One node hosts a *guaranteed* EDF application (admitted by the §5.3
// cost-integrated test) and two best-effort applications that together
// would oversubscribe the CPU. The priority-band separation makes the
// guaranteed application immune: it misses nothing, while the
// best-effort load absorbs whatever slack remains.
//
//	go run ./examples/cohabitation
package main

import (
	"fmt"

	"hades/internal/core"
	"hades/internal/dispatcher"
	"hades/internal/feasibility"
	"hades/internal/heug"
	"hades/internal/sched"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

func main() {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 5, Costs: dispatcher.DefaultCostBook()})

	// Guaranteed application: EDF + SRP, admitted by the integrated test.
	guaranteed := sys.NewApp("guaranteed", sched.NewEDF(20*us), sched.NewSRP())
	specs := []heug.SpuriTask{
		{Name: "g.fast", Node: 0, CBefore: 1 * ms, Deadline: 5 * ms, PseudoPeriod: 10 * ms},
		{Name: "g.slow", Node: 0, CBefore: 2 * ms, CS: 1 * ms, CAfter: 1 * ms,
			Resource: "R", Deadline: 20 * ms, PseudoPeriod: 40 * ms},
	}
	var analysis []feasibility.Task
	for _, st := range specs {
		must(guaranteed.AddSpuri(st))
		analysis = append(analysis, feasibility.FromSpuri(st))
	}
	guaranteed.Seal()

	ov := &feasibility.Overheads{Book: sys.Dispatcher().Costs(), SchedCost: 20 * us}
	verdict := feasibility.EDFSpuri(analysis, ov)
	fmt.Printf("guaranteed app admitted by §5.3 test: %v (U=%.3f)\n",
		verdict.Feasible, feasibility.Utilization(analysis))
	if !verdict.Feasible {
		panic("admission failed; adjust the workload")
	}

	// Two best-effort applications that would need ~130% CPU alone.
	for i, period := range []vtime.Duration{7 * ms, 9 * ms} {
		be := sys.NewApp(fmt.Sprintf("besteffort%d", i+1), sched.NewBestEffort(0), nil)
		be.MustAddTask(heug.NewTask(fmt.Sprintf("be%d", i+1), heug.PeriodicEvery(period)).
			Code("churn", heug.CodeEU{Node: 0, WCET: 5 * ms}).
			MustBuild())
		be.Seal()
	}

	must(sys.StartSporadicWorstCase("g.fast"))
	must(sys.StartSporadicWorstCase("g.slow"))
	must(sys.StartPeriodic("be1"))
	must(sys.StartPeriodic("be2"))

	report := sys.Run(vtime.Second)
	fmt.Print(report)

	fmt.Println("--- cohabitation verdict ---")
	for _, tr := range report.Tasks {
		switch {
		case tr.Name == "g.fast" || tr.Name == "g.slow":
			fmt.Printf("%-8s guaranteed:  misses=%d (must be 0)\n", tr.Name, tr.Misses)
		default:
			starved := tr.Completions == 0
			fmt.Printf("%-8s best-effort: completions=%d/%d (no guarantee, starved=%v)\n",
				tr.Name, tr.Completions, tr.Activations, starved)
		}
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
