// Powerplant: a nuclear-plant monitoring and protection system — one of
// the safety-critical domains the paper opens with ("nuclear power
// plants", §1).
//
// Four nodes run a Rate-Monotonic protection application:
//
//   - temperature scanning at 50 Hz on every reactor node;
//
//   - a rod-control computation replicated *actively* across the three
//     reactor nodes with majority voting, masking one coherent value
//     failure (a corrupted replica);
//
//   - a scram (emergency shutdown) alarm delivered by time-bounded
//     reliable broadcast: when a scan reads above threshold, every node
//     learns it within the fixed bound Δ even with a send-omission
//     faulty process in the group.
//
// Platform, topology, application and fault injection are all
// described through the cluster runtime layer.
//
//	go run ./examples/powerplant
package main

import (
	"fmt"

	"hades/internal/cluster"
	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/rbcast"
	"hades/internal/replication"
	"hades/internal/sched"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

func main() {
	c := cluster.New(cluster.Config{Seed: 13, Costs: dispatcher.DefaultCostBook()})
	c.AddNodes(4)
	c.ConnectAll(100*us, 300*us)

	// Protection application under RM (static priorities: the paper's
	// first scheduler family) with PCP on the shared sensor bus.
	app := c.NewApp("protection", sched.NewRM(), sched.NewPCP())
	for node := 0; node < 3; node++ {
		n := node
		app.MustSpawn(heug.NewTask(fmt.Sprintf("scan%d", n), heug.PeriodicEvery(20*ms)).
			WithDeadline(20*ms).
			Code("read", heug.CodeEU{Node: n, WCET: 400 * us,
				Resources: []heug.ResourceReq{{Resource: "sensorbus", Mode: heug.Exclusive}},
				Action: func(ctx heug.ActionContext) {
					// Reactor temperature ramps slowly; instance 30
					// on node 0 crosses the scram threshold.
					if n == 0 && ctx.Instance() == 30 {
						ctx.SetCond("overtemp")
					}
				}}).
			MustBuild())
	}
	// The scram task: gated on the overtemp condition variable, it
	// fires the alarm broadcast.
	alarm := rbcast.New(c.Engine(), c.Network(), "scram", rbcast.DefaultConfig(c.Network(), []int{0, 1, 2, 3}, 1))
	scramAt := map[int]vtime.Time{}
	for i := 0; i < 4; i++ {
		node := i
		alarm.OnDeliver(node, func(d rbcast.Delivery) { scramAt[node] = d.At })
	}
	// Aperiodic, event-triggered (§3.1.2): activated when the
	// overtemp condition variable is set, with a 5 ms deadline from
	// the event.
	app.MustAddTask(heug.NewTask("scram", heug.AperiodicLaw()).
		WithDeadline(5*ms).
		Code("fire", heug.CodeEU{Node: 0, WCET: 200 * us,
			Action: func(ctx heug.ActionContext) {
				ctx.ClearCond("overtemp")
				alarm.Broadcast(0, "SCRAM")
			}}).
		MustBuild())
	c.ActivateOnCond("overtemp", "scram")

	// Rod control: active replication over the three reactor nodes;
	// replica 2 suffers a coherent value failure — voting masks it.
	var voted []int64
	caught := 0
	rods, err := replication.NewGroup(c.Engine(), c.Network(), nil, replication.Config{
		Name:     "rod-control",
		Replicas: []int{0, 1, 2},
		Style:    replication.Active,
		WExec:    300 * us,
	}, func(_ uint64, result int64, unanimous bool) {
		voted = append(voted, result)
		if !unanimous {
			caught++ // the vote saw a divergent replica
		}
	})
	must(err)
	rods.Machine(2).Corrupt = func(v int64) int64 { return -v }

	// One process is send-omission faulty for the alarm group: the
	// broadcast must still reach everyone within Δ.
	c.DropFrom([]int{1}, "rbcast.scram")

	for i := 0; i < 25; i++ {
		cmd := int64(i + 1)
		c.At(vtime.Time(vtime.Duration(i)*30*ms), func() { rods.Submit(3, cmd) })
	}

	result := c.Run(800 * ms)

	fmt.Println("=== powerplant: protection system over 800 ms ===")
	fmt.Print(result)
	fmt.Printf("scram broadcast bound Δ = %s\n", alarm.Delta())
	if len(scramAt) == 4 {
		fmt.Printf("scram delivered to all 4 nodes at t=%s (simultaneous, time-bounded)\n", scramAt[0])
	} else {
		fmt.Printf("scram delivered to %d/4 nodes — agreement violated!\n", len(scramAt))
	}
	// Verify voting masked the corrupted replica: the voted outputs
	// must match a clean reference state machine.
	ref := &replication.StateMachine{}
	okVotes := len(voted) == 25
	for i, v := range voted {
		if v != ref.Apply(int64(i+1)) {
			okVotes = false
		}
	}
	fmt.Printf("rod-control requests voted: %d, corrupted replica masked: %v (divergences caught: %d)\n",
		len(voted), okVotes, caught)
	fmt.Printf("protection deadline misses: %d\n", result.Stats.DeadlineMisses)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
