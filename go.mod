module hades

go 1.24
