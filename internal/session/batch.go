package session

import (
	"sort"

	"hades/internal/eventq"
	"hades/internal/metrics"
	"hades/internal/monitor"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// DefaultFlushInterval is the virtual-time flush deadline applied when
// batching is on (MaxBatch > 1) but no interval is configured: short
// against the 5ms retry timeout and the 30ms transaction deadline, so
// batching amortizes per-request overhead without eating into either
// budget (the Kim & Kumar constraint — throughput mechanisms compose
// with the timing guarantees).
const DefaultFlushInterval = 250 * vtime.Microsecond

// Params are the session throughput knobs. The zero value is the
// legacy discipline: every op its own submission (MaxBatch 1) and no
// pipeline bound (one call per batch still serializes per key at the
// adapter, exactly as before).
type Params struct {
	// MaxBatch caps ops per batched submission; values < 2 disable
	// coalescing.
	MaxBatch int
	// FlushInterval bounds how long a non-full batch waits before
	// flushing; 0 means DefaultFlushInterval when batching is on.
	FlushInterval vtime.Duration
	// PipelineDepth caps in-flight batches per lane (shard); 0 means
	// unlimited.
	PipelineDepth int
}

// maxBatch returns the effective coalescing cap.
func (p Params) maxBatch() int {
	if p.MaxBatch < 1 {
		return 1
	}
	return p.MaxBatch
}

// flushInterval returns the effective flush deadline.
func (p Params) flushInterval() vtime.Duration {
	if p.FlushInterval > 0 {
		return p.FlushInterval
	}
	return DefaultFlushInterval
}

// Batching reports whether coalescing is enabled.
func (p Params) Batching() bool { return p.maxBatch() > 1 }

// BatchStats counts batcher activity for the Result tables.
type BatchStats struct {
	// Batches and Ops count emitted batches and the ops they carried.
	Batches uint64
	Ops     uint64
	// MaxBatchOps is the largest batch emitted.
	MaxBatchOps int
	// SizeHist histograms emitted batch sizes (size → count).
	SizeHist map[int]int
	// FullFlushes, TimerFlushes and Stalls classify flush causes: a
	// full batch, the flush-interval timer, and flushes deferred
	// because the lane's pipeline was at depth.
	FullFlushes  uint64
	TimerFlushes uint64
	Stalls       uint64
}

// record counts one emitted batch.
func (s *BatchStats) record(n int) {
	s.Batches++
	s.Ops += uint64(n)
	if n > s.MaxBatchOps {
		s.MaxBatchOps = n
	}
	if s.SizeHist == nil {
		s.SizeHist = make(map[int]int)
	}
	s.SizeHist[n]++
}

// HistString renders the size histogram ("1:42 4:7"), ascending sizes.
func (s BatchStats) HistString() string {
	if len(s.SizeHist) == 0 {
		return "-"
	}
	sizes := make([]int, 0, len(s.SizeHist))
	for n := range s.SizeHist {
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)
	out := ""
	for i, n := range sizes {
		if i > 0 {
			out += " "
		}
		out += itoa(n) + ":" + itoa(s.SizeHist[n])
	}
	return out
}

// itoa is a minimal strconv.Itoa to keep the import set small.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// lane is one batching target (a shard): its accumulating ops, its
// pipeline occupancy, and the epoch guarding the armed flush timer.
type lane[T any] struct {
	pending     []T
	inflight    int
	maxInflight int
	timerEpoch  int
	timerArmed  bool
}

// Batcher coalesces items per lane and pipelines their emission: at
// most MaxBatch items per emitted batch, flushed when full or when the
// virtual-time flush interval expires, with at most PipelineDepth
// batches in flight per lane. Completion order is the adapter's to
// keep deterministic (batches complete in reply order; replies are
// simulation events, so seeded runs reproduce).
type Batcher[T any] struct {
	eng    *simkern.Engine
	params Params
	// emit ships one flushed batch; the adapter calls Complete(lane)
	// when the batch retires to free its pipeline slot.
	emit  func(lane string, items []T)
	lanes map[string]*lane[T]
	// label/node attribute monitor records.
	label string
	node  int
	// EagerIdle switches the flush policy to group commit: an item
	// added while the lane has nothing in flight flushes immediately
	// (no timer wait — an idle log adds zero latency), and items
	// arriving while a round is in flight coalesce until the adapter
	// Completes that round. The flush timer stays armed as a crash
	// fallback and forces a flush past the pipeline depth rather than
	// waiting forever on a completion that may never come.
	EagerIdle bool
	Stats     BatchStats

	// Metrics-plane instruments (nil-safe when the plane is off):
	// per-interval batch fill and pipeline-depth stalls.
	mFill   *metrics.Hist
	mStalls *metrics.Counter
}

// NewBatcher builds a batcher over the simulation kernel. emit ships a
// flushed batch; the adapter must call Complete once per emitted batch.
func NewBatcher[T any](eng *simkern.Engine, params Params, label string, node int, emit func(lane string, items []T)) *Batcher[T] {
	return &Batcher[T]{
		eng:     eng,
		params:  params,
		emit:    emit,
		lanes:   make(map[string]*lane[T]),
		label:   label,
		node:    node,
		mFill:   eng.Metrics().HistUnit("session.batch.fill", "ops"),
		mStalls: eng.Metrics().Counter("session.stalls"),
	}
}

// Params returns the effective knobs.
func (b *Batcher[T]) Params() Params { return b.params }

// lane returns (creating) the named lane.
func (b *Batcher[T]) lane(name string) *lane[T] {
	l := b.lanes[name]
	if l == nil {
		l = &lane[T]{}
		b.lanes[name] = l
	}
	return l
}

// Add enqueues one item on a lane. Unbatched (MaxBatch 1) items flush
// immediately; otherwise the lane flushes when full and a virtual-time
// timer bounds the wait of a partial batch.
func (b *Batcher[T]) Add(laneName string, item T) {
	l := b.lane(laneName)
	l.pending = append(l.pending, item)
	max := b.params.maxBatch()
	if b.EagerIdle {
		// Group-commit policy: flush at once when the lane is idle or
		// the batch is full; otherwise coalesce behind the in-flight
		// round, with the timer as the lost-completion fallback.
		if l.inflight == 0 || len(l.pending) >= max {
			b.flush(laneName, l, true, false)
			return
		}
		b.tryFlushTimer(laneName, l)
		return
	}
	if max <= 1 || len(l.pending) >= max {
		b.flush(laneName, l, true, false)
		return
	}
	if b.tryFlushTimer(laneName, l) {
		return
	}
}

// tryFlushTimer arms the flush-interval timer for a lane with a
// partial batch (no-op when one is already armed). Returns false so
// Add reads naturally.
func (b *Batcher[T]) tryFlushTimer(laneName string, l *lane[T]) bool {
	if l.timerArmed {
		return false
	}
	l.timerArmed = true
	l.timerEpoch++
	epoch := l.timerEpoch
	b.eng.After(b.params.flushInterval(), eventq.ClassApp, func() {
		if l.timerEpoch != epoch || !l.timerArmed {
			return
		}
		l.timerArmed = false
		if len(l.pending) > 0 {
			// In eager mode the timer only fires when a completion is
			// overdue (a lost round), so it forces past the depth bound
			// instead of stalling behind it.
			b.flush(laneName, l, false, b.EagerIdle)
		}
	})
	return false
}

// flush emits pending items in MaxBatch-sized batches while the lane
// has pipeline slots; leftover items wait for a completion or the
// timer. full records the flush cause; force bypasses the depth bound
// (the eager-idle fallback path).
func (b *Batcher[T]) flush(laneName string, l *lane[T], full, force bool) {
	max := b.params.maxBatch()
	depth := b.params.PipelineDepth
	for len(l.pending) > 0 {
		if !force && depth > 0 && l.inflight >= depth {
			b.Stats.Stalls++
			b.mStalls.Inc()
			if log := b.eng.Log(); log != nil {
				log.Recordf(b.eng.Now(), monitor.KindPipeline, b.node, b.label,
					"%s stalled at depth %d (%d pending)", laneName, l.inflight, len(l.pending))
			}
			b.tryFlushTimer(laneName, l)
			return
		}
		n := len(l.pending)
		if n > max {
			n = max
		}
		batch := make([]T, n)
		copy(batch, l.pending)
		l.pending = append(l.pending[:0], l.pending[n:]...)
		l.inflight++
		if l.inflight > l.maxInflight {
			l.maxInflight = l.inflight
		}
		b.Stats.record(n)
		b.mFill.Observe(int64(n))
		if full || n == max {
			b.Stats.FullFlushes++
		} else {
			b.Stats.TimerFlushes++
		}
		if log := b.eng.Log(); log != nil && b.params.Batching() {
			cause := "timer"
			if full || n == max {
				cause = "full"
			}
			log.Recordf(b.eng.Now(), monitor.KindBatchFlush, b.node, b.label,
				"%s flush %d ops (%s, depth %d)", laneName, n, cause, l.inflight)
		}
		b.emit(laneName, batch)
	}
	// Everything flushed: a pending timer has nothing to do.
	if l.timerArmed {
		l.timerArmed = false
		l.timerEpoch++
	}
}

// Complete retires one in-flight batch of a lane, freeing its pipeline
// slot and flushing any deferred items.
func (b *Batcher[T]) Complete(laneName string) {
	l := b.lane(laneName)
	if l.inflight > 0 {
		l.inflight--
	}
	if len(l.pending) > 0 {
		b.flush(laneName, l, true, false)
	}
}

// Inflight returns a lane's current pipeline occupancy.
func (b *Batcher[T]) Inflight(laneName string) int { return b.lane(laneName).inflight }

// MaxInflight returns the deepest pipeline each lane reached,
// lane-name sorted iteration left to the caller.
func (b *Batcher[T]) MaxInflight() map[string]int {
	out := make(map[string]int, len(b.lanes))
	for name, l := range b.lanes {
		if l.maxInflight > 0 {
			out[name] = l.maxInflight
		}
	}
	return out
}
