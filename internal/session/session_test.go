package session

import (
	"testing"

	"hades/internal/eventq"
	"hades/internal/monitor"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

func testEngine() *simkern.Engine {
	eng := simkern.NewEngine(monitor.NewLog(0), 1)
	eng.AddProcessor("n", 0)
	return eng
}

func TestCallRetriesThenParksAndResumesOnPoke(t *testing.T) {
	eng := testEngine()
	s := New(eng)
	var sends, timeouts, retries, parks, resubmits int
	s.Go(Spec{
		Label: "call", Node: 0, Timeout: 1 * ms, MaxRetries: 2,
		Send:       func(int) { sends++ },
		OnTimeout:  func() { timeouts++ },
		OnRetry:    func() { retries++ },
		OnPark:     func() { parks++ },
		OnResubmit: func() { resubmits++ },
	})
	// No reply ever arrives: 1 initial + 2 retries, then park.
	eng.Run(vtime.Time(4 * ms))
	if sends != 3 || retries != 2 || parks != 1 {
		t.Fatalf("sends=%d retries=%d parks=%d, want 3/2/1", sends, retries, parks)
	}
	if timeouts != 3 {
		t.Fatalf("timeouts=%d, want 3", timeouts)
	}
	// A poke (view install) resumes with a fresh budget.
	eng.After(0, eventq.ClassApp, func() { s.Poke("view") })
	eng.Run(vtime.Time(4500 * us))
	if resubmits != 1 || sends != 4 {
		t.Fatalf("resubmits=%d sends=%d after poke, want 1/4", resubmits, sends)
	}
}

func TestParkedCallResumesOnBackoffWithoutPoke(t *testing.T) {
	eng := testEngine()
	s := New(eng)
	var sends, resubmits int
	s.Go(Spec{
		Label: "call", Node: 0, Timeout: 1 * ms, MaxRetries: 0,
		Send:       func(int) { sends++ },
		OnResubmit: func() { resubmits++ },
	})
	// Parks at 1ms; the 5×timeout backoff re-probes at 6ms.
	eng.Run(vtime.Time(10 * ms))
	if resubmits == 0 {
		t.Fatalf("parked call never resumed via backoff (sends=%d)", sends)
	}
}

func TestFinishInvalidatesPendingTimeout(t *testing.T) {
	eng := testEngine()
	s := New(eng)
	var timeouts int
	c := s.Go(Spec{
		Label: "call", Node: 0, Timeout: 1 * ms, MaxRetries: 3,
		Send:      func(int) {},
		OnTimeout: func() { timeouts++ },
	})
	eng.After(500*us, eventq.ClassApp, func() { c.Finish() })
	eng.Run(vtime.Time(10 * ms))
	if timeouts != 0 {
		t.Fatalf("timeouts=%d after Finish, want 0", timeouts)
	}
	if !c.Finished() {
		t.Fatal("call not finished")
	}
	if got := s.Live(); got != 0 {
		s.Poke("sweep")
	}
}

func TestRedirectDoesNotConsumeRetryBudget(t *testing.T) {
	eng := testEngine()
	s := New(eng)
	var sends, retries int
	var c *Call
	c = s.Go(Spec{
		Label: "call", Node: 0, Timeout: 1 * ms, MaxRetries: 1,
		Send:    func(int) { sends++ },
		OnRetry: func() { retries++ },
	})
	// Redirect three times quickly: each re-dispatches without touching
	// the retry counter.
	for i := 1; i <= 3; i++ {
		eng.At(vtime.Time(vtime.Duration(i)*100*us), eventq.ClassApp, func() { c.Redirect("redirect") })
	}
	eng.Run(vtime.Time(350 * us))
	if sends != 4 || retries != 0 {
		t.Fatalf("sends=%d retries=%d, want 4/0", sends, retries)
	}
	// Superseded attempts' timeouts must not fire.
	eng.Run(vtime.Time(1200 * us))
	if retries > 1 {
		t.Fatalf("stale timeouts fired: retries=%d", retries)
	}
}

func TestFailFastAbandonsAfterBudget(t *testing.T) {
	eng := testEngine()
	s := New(eng)
	var fails, parks int
	c := s.Go(Spec{
		Label: "call", Node: 0, Timeout: 1 * ms, MaxRetries: 1, FailFast: true,
		Send:   func(int) {},
		OnFail: func() { fails++ },
		OnPark: func() { parks++ },
	})
	eng.Run(vtime.Time(10 * ms))
	if fails != 1 || parks != 0 || !c.Finished() {
		t.Fatalf("fails=%d parks=%d finished=%v, want 1/0/true", fails, parks, c.Finished())
	}
}

func TestDonePredicateRetiresWithoutFinish(t *testing.T) {
	eng := testEngine()
	s := New(eng)
	done := false
	var sends int
	s.Go(Spec{
		Label: "call", Node: 0, Timeout: 1 * ms, MaxRetries: 8,
		Send: func(int) { sends++ },
		Done: func() bool { return done },
	})
	eng.After(1500*us, eventq.ClassApp, func() { done = true })
	eng.Run(vtime.Time(20 * ms))
	// 1 initial send + 1 retry at 1ms; the 2ms timeout sees done.
	if sends != 2 {
		t.Fatalf("sends=%d, want 2", sends)
	}
}

func TestExplicitFailConsumesBudgetLikeTimeout(t *testing.T) {
	eng := testEngine()
	s := New(eng)
	var sends, parks int
	var c *Call
	c = s.Go(Spec{
		Label: "call", Node: 0, Timeout: 10 * ms, MaxRetries: 1,
		Send:   func(int) { sends++ },
		OnPark: func() { parks++ },
	})
	eng.After(1*ms, eventq.ClassApp, func() { c.Fail("blocked") })
	eng.After(2*ms, eventq.ClassApp, func() { c.Fail("blocked") })
	eng.Run(vtime.Time(5 * ms))
	if sends != 2 || parks != 1 {
		t.Fatalf("sends=%d parks=%d, want 2/1", sends, parks)
	}
}

func TestBatcherUnbatchedFlushesImmediately(t *testing.T) {
	eng := testEngine()
	var emitted [][]int
	b := NewBatcher[int](eng, Params{}, "b", 0, func(_ string, items []int) {
		emitted = append(emitted, items)
	})
	for i := 0; i < 3; i++ {
		b.Add("s0", i)
		b.Complete("s0")
	}
	if len(emitted) != 3 {
		t.Fatalf("emitted %d batches, want 3 singletons", len(emitted))
	}
	for _, e := range emitted {
		if len(e) != 1 {
			t.Fatalf("unbatched emit carried %d items", len(e))
		}
	}
}

func TestBatcherCoalescesToMaxBatch(t *testing.T) {
	eng := testEngine()
	var emitted [][]int
	b := NewBatcher[int](eng, Params{MaxBatch: 4}, "b", 0, func(_ string, items []int) {
		emitted = append(emitted, items)
	})
	eng.After(0, eventq.ClassApp, func() {
		for i := 0; i < 4; i++ {
			b.Add("s0", i)
		}
	})
	eng.Run(vtime.Time(1 * ms))
	if len(emitted) != 1 || len(emitted[0]) != 4 {
		t.Fatalf("emitted=%v, want one batch of 4", emitted)
	}
	if b.Stats.FullFlushes != 1 || b.Stats.MaxBatchOps != 4 {
		t.Fatalf("stats=%+v, want 1 full flush of 4", b.Stats)
	}
}

func TestBatcherTimerFlushesPartialBatch(t *testing.T) {
	eng := testEngine()
	var emitted [][]int
	b := NewBatcher[int](eng, Params{MaxBatch: 8, FlushInterval: 200 * us}, "b", 0,
		func(_ string, items []int) { emitted = append(emitted, items) })
	eng.After(0, eventq.ClassApp, func() {
		b.Add("s0", 1)
		b.Add("s0", 2)
	})
	eng.Run(vtime.Time(100 * us))
	if len(emitted) != 0 {
		t.Fatal("partial batch flushed before the interval")
	}
	eng.Run(vtime.Time(1 * ms))
	if len(emitted) != 1 || len(emitted[0]) != 2 {
		t.Fatalf("emitted=%v, want one timer flush of 2", emitted)
	}
	if b.Stats.TimerFlushes != 1 {
		t.Fatalf("stats=%+v, want 1 timer flush", b.Stats)
	}
}

func TestBatcherPipelineDepthStallsAndDrains(t *testing.T) {
	eng := testEngine()
	var emitted [][]int
	b := NewBatcher[int](eng, Params{MaxBatch: 2, PipelineDepth: 2}, "b", 0,
		func(_ string, items []int) { emitted = append(emitted, items) })
	eng.After(0, eventq.ClassApp, func() {
		for i := 0; i < 8; i++ {
			b.Add("s0", i)
		}
	})
	eng.Run(vtime.Time(1 * ms))
	// 8 items / batch 2 = 4 batches, but only 2 slots: two emit, two wait.
	if len(emitted) != 2 || b.Inflight("s0") != 2 {
		t.Fatalf("emitted=%d inflight=%d, want 2/2", len(emitted), b.Inflight("s0"))
	}
	if b.Stats.Stalls == 0 {
		t.Fatal("depth-limited flush recorded no stall")
	}
	eng.After(0, eventq.ClassApp, func() { b.Complete("s0"); b.Complete("s0") })
	eng.Run(vtime.Time(2 * ms))
	if len(emitted) != 4 {
		t.Fatalf("emitted=%d after completions, want 4", len(emitted))
	}
	if got := b.MaxInflight()["s0"]; got != 2 {
		t.Fatalf("max inflight %d, want 2", got)
	}
}

// TestBatcherEagerIdleGroupCommit pins the group-commit flush policy:
// an idle lane flushes at once (no timer wait), items arriving while a
// round is in flight coalesce until Complete releases them, and the
// flush timer forces a round out past the depth bound when a
// completion is lost.
func TestBatcherEagerIdleGroupCommit(t *testing.T) {
	eng := testEngine()
	var emitted [][]int
	b := NewBatcher[int](eng, Params{MaxBatch: 4, FlushInterval: 500 * us, PipelineDepth: 1}, "b", 0,
		func(_ string, items []int) { emitted = append(emitted, items) })
	b.EagerIdle = true
	eng.After(0, eventq.ClassApp, func() {
		b.Add("dec", 1) // idle → flushes immediately, round 1 in flight
		b.Add("dec", 2) // coalesce behind round 1
		b.Add("dec", 3)
	})
	eng.Run(vtime.Time(100 * us))
	if len(emitted) != 1 || len(emitted[0]) != 1 {
		t.Fatalf("emitted=%v, want an immediate singleton round", emitted)
	}
	eng.After(0, eventq.ClassApp, func() { b.Complete("dec") })
	eng.Run(vtime.Time(200 * us))
	if len(emitted) != 2 || len(emitted[1]) != 2 {
		t.Fatalf("emitted=%v, want the coalesced pair released by Complete", emitted)
	}
	// Lose round 2's completion: the next item waits for the timer,
	// which forces a flush past the depth bound instead of wedging.
	eng.After(0, eventq.ClassApp, func() { b.Add("dec", 4) })
	eng.Run(vtime.Time(300 * us))
	if len(emitted) != 2 {
		t.Fatalf("emitted=%v, item flushed while a round was in flight", emitted)
	}
	eng.Run(vtime.Time(1 * ms))
	if len(emitted) != 3 || len(emitted[2]) != 1 {
		t.Fatalf("emitted=%v, want the timer-forced fallback round", emitted)
	}
	if b.Stats.TimerFlushes != 1 {
		t.Fatalf("stats=%+v, want 1 timer flush (the fallback)", b.Stats)
	}
}

func TestBatcherLanesAreIndependent(t *testing.T) {
	eng := testEngine()
	byLane := map[string]int{}
	b := NewBatcher[int](eng, Params{MaxBatch: 2}, "b", 0,
		func(lane string, items []int) { byLane[lane] += len(items) })
	eng.After(0, eventq.ClassApp, func() {
		b.Add("s0", 1)
		b.Add("s1", 2)
		b.Add("s0", 3) // fills s0's batch
	})
	eng.Run(vtime.Time(10 * ms))
	if byLane["s0"] != 2 {
		t.Fatalf("s0 got %d ops, want 2 (full flush)", byLane["s0"])
	}
	if byLane["s1"] != 1 {
		t.Fatalf("s1 got %d ops, want 1 (timer flush)", byLane["s1"])
	}
}

func TestBatchStatsHistString(t *testing.T) {
	var s BatchStats
	if s.HistString() != "-" {
		t.Fatalf("empty hist = %q", s.HistString())
	}
	s.record(1)
	s.record(4)
	s.record(4)
	if got := s.HistString(); got != "1:1 4:2" {
		t.Fatalf("hist = %q, want \"1:1 4:2\"", got)
	}
}

func TestParamsDefaults(t *testing.T) {
	var p Params
	if p.Batching() || p.maxBatch() != 1 {
		t.Fatal("zero Params must be unbatched")
	}
	p = Params{MaxBatch: 4}
	if !p.Batching() || p.flushInterval() != DefaultFlushInterval {
		t.Fatal("MaxBatch>1 must enable batching with the default interval")
	}
}
