// Package session is the single calibrated session discipline of the
// data plane: every client-facing submission path (keyed requests,
// transaction begins, the coordinator's PREPARE/decision/query loops)
// drives its attempts through one Engine instead of re-implementing
// timeout/retry, redirect-following, stale-view handling and
// park-and-resubmit per layer.
//
// The discipline is the PR 4 queue policy, factored out:
//
//   - an attempt is sent and a reply timeout armed; a timeout consumes
//     one retry and re-sends;
//   - an exhausted budget parks the call (or fails it, under the
//     fail-fast option) — parked calls resubmit with a fresh budget on
//     any installed membership view and on partition heals (ownership
//     can have changed), plus a deep deterministic backoff so nothing
//     is stranded when the trigger raced the park itself;
//   - redirects re-dispatch immediately (a new attempt, fresh timeout)
//     without consuming the retry budget;
//   - attempt counters invalidate armed timers and let adapters discard
//     failure verdicts of superseded attempts, while a late OK is
//     always acceptable (the command landed).
//
// The package also provides the throughput machinery layered on the
// same calls: Batcher coalesces per-key operations bound for the same
// shard into batched submissions (max-batch-size plus a virtual-time
// flush interval, so batching composes with deadlines instead of
// weakening them) and pipelines K in-flight batches per shard with
// deterministic completion ordering.
package session

import (
	"hades/internal/eventq"
	"hades/internal/membership"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/trace"
	"hades/internal/vtime"
)

// backoffFactor scales the retry timeout into the deep re-probe delay
// of a parked call (the PR 4 calibration: view installs and heals are
// the prompt triggers; the backoff is the safety net).
const backoffFactor = 5

// Spec parameterises one retried call. Send and the optional hooks are
// the adapter's: the engine owns the state machine, the adapter owns
// the wire format and its statistics.
type Spec struct {
	// Label names the call in monitor records.
	Label string
	// Node is the processor monitor records are attributed to.
	Node int
	// Timeout is the per-attempt reply timeout.
	Timeout vtime.Duration
	// MaxRetries bounds consecutive timeouts before the policy applies.
	MaxRetries int
	// FailFast abandons the call on exhaustion instead of parking it.
	FailFast bool
	// Send fires one attempt (the adapter's wire send).
	Send func(attempt int)
	// Done, when set, reports the call completed: checked before every
	// (re)send and at every timeout, so loops whose completion is
	// observed out-of-band (votes, acks) retire without a Finish call.
	Done func() bool
	// OnTimeout, OnRetry, OnPark, OnResubmit and OnFail observe the
	// state machine for the adapter's statistics (all optional).
	OnTimeout  func()
	OnRetry    func()
	OnPark     func()
	OnResubmit func()
	OnFail     func()
	// Traces are the causal traces riding this call (one per op in a
	// batched submission): the engine records retries, parks,
	// resubmissions and redirects as instants on each, so a trace keeps
	// its full attempt history instead of just the final latency.
	// Generation-checked refs, because a call can outlive its traces.
	Traces []trace.Ref
}

// instant records a point event on every trace riding the call.
func (s *Spec) instant(format string, args ...any) {
	for _, tr := range s.Traces {
		tr.Instant(format, args...)
	}
}

// callState tracks one call through the engine.
type callState uint8

const (
	csInflight callState = iota + 1
	csParked
	csDone
	csFailed
)

// Call is one retried submission owned by an Engine.
type Call struct {
	e       *Engine
	s       Spec
	state   callState
	attempt int // bumping invalidates the armed timeout
	retries int
}

// Attempt returns the current attempt counter (echoed on the wire so
// failure verdicts of superseded attempts are discarded).
func (c *Call) Attempt() int { return c.attempt }

// Inflight reports whether an attempt is outstanding.
func (c *Call) Inflight() bool { return c.state == csInflight }

// Parked reports whether the call is parked awaiting a resubmission
// trigger.
func (c *Call) Parked() bool { return c.state == csParked }

// Finished reports whether the call retired (done or failed).
func (c *Call) Finished() bool { return c.state == csDone || c.state == csFailed }

// Engine runs the session discipline for one adapter (a client or a
// protocol role): it owns the live calls and resubmits parked ones on
// view installs, partition heals and the deep backoff.
type Engine struct {
	eng   *simkern.Engine
	calls []*Call
}

// New builds an engine on the simulation kernel. Wire its resubmission
// triggers with WireViews and WireHeals.
func New(eng *simkern.Engine) *Engine { return &Engine{eng: eng} }

// WireViews pokes the engine on every installed view of the membership
// service (failover and merge views both republish ownership).
func (e *Engine) WireViews(mem *membership.Service) {
	mem.OnChange(func(membership.View) { e.Poke("view") })
}

// WireHeals pokes the engine when a network partition heals.
func (e *Engine) WireHeals(net *netsim.Network) {
	net.OnPartitionChange(func(partitioned bool) {
		if !partitioned {
			e.Poke("heal")
		}
	})
}

// Go starts one retried call: the first attempt fires immediately.
func (e *Engine) Go(s Spec) *Call {
	c := &Call{e: e, s: s}
	e.calls = append(e.calls, c)
	e.dispatch(c)
	return c
}

// dispatch fires one attempt and arms its reply timeout.
func (e *Engine) dispatch(c *Call) {
	if c.Finished() {
		return
	}
	if c.s.Done != nil && c.s.Done() {
		c.state = csDone
		return
	}
	c.state = csInflight
	c.attempt++
	attempt := c.attempt
	c.s.Send(attempt)
	e.eng.After(c.s.Timeout, eventq.ClassApp, func() {
		if c.state != csInflight || c.attempt != attempt {
			return // answered or re-dispatched in the meantime
		}
		if c.s.Done != nil && c.s.Done() {
			c.state = csDone
			return
		}
		if c.s.OnTimeout != nil {
			c.s.OnTimeout()
		}
		e.fail(c, "timeout")
	})
}

// fail handles one failed attempt (timeout or an explicit verdict such
// as a stale-view rejection): retry while budget remains, then apply
// the policy — park under the queue policy, abandon under fail-fast.
func (e *Engine) fail(c *Call, why string) {
	c.retries++
	if c.retries <= c.s.MaxRetries {
		if c.s.OnRetry != nil {
			c.s.OnRetry()
		}
		if log := e.eng.Log(); log != nil {
			log.Recordf(e.eng.Now(), monitor.KindRetry, c.s.Node, c.s.Label, "%s retry %d/%d", why, c.retries, c.s.MaxRetries)
		}
		c.s.instant("%s retry %d/%d", why, c.retries, c.s.MaxRetries)
		e.dispatch(c)
		return
	}
	if c.s.FailFast {
		c.state = csFailed
		c.attempt++
		if c.s.OnFail != nil {
			c.s.OnFail()
		}
		return
	}
	c.state = csParked
	c.attempt++
	if c.s.OnPark != nil {
		c.s.OnPark()
	}
	if log := e.eng.Log(); log != nil {
		log.Recordf(e.eng.Now(), monitor.KindRetry, c.s.Node, c.s.Label, "%s: parked after %d retries", why, c.retries)
	}
	c.s.instant("parked after %d retries (%s)", c.retries, why)
	// Backoff safety net: view installs and heals resubmit parked calls
	// promptly, but a call can park after the last such trigger (its
	// retry budget outlasting the merge) — re-probe at a deep backoff so
	// nothing is stranded.
	attempt := c.attempt
	e.eng.After(backoffFactor*c.s.Timeout, eventq.ClassApp, func() {
		if c.state != csParked || c.attempt != attempt {
			return
		}
		e.resume(c, "backoff")
	})
}

// resume re-dispatches one parked call with a fresh retry budget.
func (e *Engine) resume(c *Call, why string) {
	if c.s.OnResubmit != nil {
		c.s.OnResubmit()
	}
	if log := e.eng.Log(); log != nil {
		log.Recordf(e.eng.Now(), monitor.KindResubmit, c.s.Node, c.s.Label, "after %s", why)
	}
	c.s.instant("resubmit after %s", why)
	c.retries = 0
	e.dispatch(c)
}

// Finish retires the call (its reply landed). Idempotent; late
// duplicate replies are the adapter's to discard.
func (c *Call) Finish() {
	if !c.Finished() {
		c.state = csDone
	}
}

// Redirect re-dispatches the call immediately (a new attempt, fresh
// timeout) without consuming the retry budget — the redirect-following
// path for server redirects and router republications. detail feeds
// the monitor record.
func (c *Call) Redirect(detail string) {
	if c.Finished() || c.state == csParked {
		return
	}
	if log := c.e.eng.Log(); log != nil {
		log.Recordf(c.e.eng.Now(), monitor.KindRedirect, c.s.Node, c.s.Label, "%s", detail)
	}
	c.s.instant("redirect: %s", detail)
	c.e.dispatch(c)
}

// Fail reports an explicit failure verdict for the current attempt (a
// stale-view rejection): it consumes the retry budget exactly as a
// timeout does.
func (c *Call) Fail(why string) {
	if c.state != csInflight {
		return
	}
	c.e.fail(c, why)
}

// Poke resubmits every parked call — fired on any installed view and on
// partition heals — and compacts retired calls on the way, so the scan
// stays proportional to the live set.
func (e *Engine) Poke(why string) {
	live := e.calls[:0]
	for _, c := range e.calls {
		if c.Finished() {
			continue
		}
		if c.s.Done != nil && c.s.Done() {
			c.state = csDone
			continue
		}
		live = append(live, c)
		if c.state == csParked {
			e.resume(c, why)
		}
	}
	e.calls = live
}

// Live returns the number of unretired calls (test hook).
func (e *Engine) Live() int {
	n := 0
	for _, c := range e.calls {
		if !c.Finished() {
			n++
		}
	}
	return n
}
