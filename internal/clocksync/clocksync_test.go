package clocksync

import (
	"testing"

	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

func rig(t *testing.T, n, f int, drift float64) (*simkern.Engine, *netsim.Network, *Service) {
	t.Helper()
	eng := simkern.NewEngine(monitor.NewLog(0), 17)
	nodes := make([]int, n)
	for i := 0; i < n; i++ {
		eng.AddProcessor("n", 0)
		nodes[i] = i
	}
	net := netsim.New(eng, netsim.Config{WAtm: 5 * us, WProto: 5 * us, PrioNet: simkern.PrioMax - 2})
	net.ConnectAll(nodes, 100*us, 200*us)
	cfg := DefaultConfig(nodes, f)
	cfg.MaxDrift = drift
	svc, err := New(eng, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, net, svc
}

func TestNeedsThreeFPlusOne(t *testing.T) {
	eng := simkern.NewEngine(nil, 1)
	var nodes []int
	for i := 0; i < 3; i++ {
		eng.AddProcessor("n", 0)
		nodes = append(nodes, i)
	}
	net := netsim.New(eng, netsim.DefaultConfig())
	if _, err := New(eng, net, DefaultConfig(nodes, 1)); err == nil {
		t.Fatal("n=3, f=1 accepted (needs 3f+1=4)")
	}
}

func TestConvergenceNoFaults(t *testing.T) {
	eng, _, svc := rig(t, 4, 1, 1e-5)
	before := svc.Precision()
	svc.Start()
	eng.Run(vtime.Time(2 * vtime.Second))
	after := svc.Precision()
	if svc.Rounds() < 15 {
		t.Fatalf("rounds = %d", svc.Rounds())
	}
	if after >= before {
		t.Fatalf("no convergence: %s -> %s", before, after)
	}
	if bound := svc.Bound(); after > bound {
		t.Fatalf("precision %s exceeds bound %s", after, bound)
	}
}

func TestPrecisionBoundHeldEveryRound(t *testing.T) {
	eng, _, svc := rig(t, 7, 2, 1e-5)
	svc.Start()
	eng.Run(vtime.Time(3 * vtime.Second))
	bound := svc.Bound()
	// Skip the initial convergence phase (first 5 rounds).
	for i, p := range svc.History {
		if i >= 5 && p > bound {
			t.Fatalf("round %d precision %s exceeds bound %s", i, p, bound)
		}
	}
}

func TestToleratesByzantineClocks(t *testing.T) {
	eng, _, svc := rig(t, 7, 2, 1e-5)
	// Two two-faced Byzantine clocks (f = 2).
	svc.MakeByzantine(0, TwoFacedByzantine(50*ms, eng.Rand()))
	svc.MakeByzantine(3, func(dst int, tt vtime.Time) vtime.Time {
		return tt.Add(vtime.Duration(dst) * 10 * ms)
	})
	svc.Start()
	eng.Run(vtime.Time(3 * vtime.Second))
	p := svc.Precision()
	if bound := svc.Bound(); p > bound {
		t.Fatalf("Byzantine clocks broke sync: precision %s > bound %s", p, bound)
	}
}

func TestFailsBeyondByzantineBudget(t *testing.T) {
	// With f=1 configured but 3 Byzantine clocks in n=4, correct nodes
	// may be dragged arbitrarily: precision over correct nodes can
	// exceed the bound. (Not guaranteed to explode every run; the
	// adversary here is strong enough.)
	eng, _, svc := rig(t, 4, 1, 1e-6)
	for _, n := range []int{0, 1, 2} {
		node := n
		svc.MakeByzantine(node, func(dst int, tt vtime.Time) vtime.Time {
			return tt.Add(vtime.Duration(100+10*node+dst) * ms)
		})
	}
	svc.Start()
	eng.Run(vtime.Time(2 * vtime.Second))
	// Only one correct node left: precision over one node is 0 — check
	// instead that its correction was dragged far from zero.
	c := svc.Clock(3)
	if c.correction > -ms && c.correction < ms {
		t.Skipf("adversary failed to drag the correct clock (correction=%s)", c.correction)
	}
}

func TestCrashedNodeExcluded(t *testing.T) {
	eng, net, svc := rig(t, 5, 1, 1e-5)
	svc.Start()
	net.SetNodeDown(4, true)
	eng.Run(vtime.Time(2 * vtime.Second))
	if svc.Precision() > svc.Bound() {
		t.Fatalf("crash broke sync: %s", svc.Precision())
	}
}

func TestToleratesMessageOmissions(t *testing.T) {
	// Random 20% message loss: fewer readings per round, but as long
	// as > 2f survive, convergence still holds within the bound.
	eng, net, svc := rig(t, 7, 2, 1e-5)
	drop := 0
	net.SetFault(omitEvery{k: 5, n: &drop})
	svc.Start()
	eng.Run(vtime.Time(3 * vtime.Second))
	if drop == 0 {
		t.Fatal("fault hook never fired")
	}
	if p, b := svc.Precision(), svc.Bound(); p > b {
		t.Fatalf("omissions broke sync: precision %s > bound %s", p, b)
	}
}

type omitEvery struct {
	k int
	n *int
}

func (o omitEvery) Judge(m *netsim.Message) netsim.Verdict {
	*o.n++
	if *o.n%o.k == 0 {
		return netsim.Verdict{Fate: netsim.FateDrop}
	}
	return netsim.Verdict{Fate: netsim.FateDeliver}
}

func TestHardwareClockModel(t *testing.T) {
	c := &NodeClock{offset: 100 * us, drift: 1e-4}
	h := c.Hardware(vtime.Time(vtime.Second))
	want := vtime.Time(vtime.Second + 100*vtime.Microsecond + vtime.Duration(1e-4*1e9))
	diff := h - want
	if diff < -10 || diff > 10 { // float rounding tolerance, ns
		t.Fatalf("hardware clock %d, want %d", h, want)
	}
	c.correction = -50 * us
	if l := c.Logical(vtime.Time(vtime.Second)); l != h.Add(-50*us) {
		t.Fatalf("logical %d", l)
	}
}
