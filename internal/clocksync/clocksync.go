// Package clocksync implements the clock synchronisation service of
// §2.2.1, following the fault-tolerant averaging algorithm of Lundelius
// and Lynch [LL88] that Figure 1 names explicitly.
//
// Every node owns a drifting hardware clock; a synchronisation round
// runs every Period: nodes exchange clock readings, estimate every
// peer's clock (compensating the expected link delay), discard the f
// lowest and f highest estimates and slew the logical clock to the
// midpoint of the surviving range. With n ≥ 3f+1 nodes the algorithm
// tolerates f Byzantine clocks — the paper's §2.1 failure model assigns
// clocks exactly this failure mode — and keeps correct logical clocks
// within a bounded precision of each other.
//
// The achievable steady-state precision for this family of algorithms
// is Θ(ε + ρ·P), with ε the delay-reading uncertainty, ρ the drift
// bound, and P the resync period; Bound() returns the constant-4
// envelope (4ε + 4ρP) that experiment E-X3 checks measured precision
// against.
package clocksync

import (
	"fmt"
	"math/rand"
	"sort"

	"hades/internal/eventq"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// Config parameterises the service.
type Config struct {
	// Nodes lists the participating processor IDs.
	Nodes []int
	// F is the number of Byzantine clocks tolerated; requires
	// len(Nodes) ≥ 3F+1.
	F int
	// Period is the resynchronisation period P.
	Period vtime.Duration
	// CollectWindow is how long after a round starts readings are
	// accepted before the correction applies; it must exceed the
	// worst-case link delay.
	CollectWindow vtime.Duration
	// WSync is the CPU cost of one round's processing on each node,
	// charged at interrupt level like any kernel activity (§4.2).
	WSync vtime.Duration
	// MaxDrift is the drift bound ρ (e.g. 1e-5 = 10 µs/s).
	MaxDrift float64
}

// DefaultConfig returns a configuration for n nodes tolerating f
// Byzantine clocks.
func DefaultConfig(nodes []int, f int) Config {
	return Config{
		Nodes:         nodes,
		F:             f,
		Period:        100 * vtime.Millisecond,
		CollectWindow: 2 * vtime.Millisecond,
		WSync:         20 * vtime.Microsecond,
		MaxDrift:      1e-5,
	}
}

// port carries clock readings.
const port = "clocksync"

// NodeClock is one node's hardware clock plus the correction the
// algorithm maintains.
type NodeClock struct {
	node       int
	offset     vtime.Duration // initial offset
	drift      float64        // actual drift in [-ρ, ρ]
	correction vtime.Duration

	// byzantine, when non-nil, replaces outgoing readings (two-faced:
	// the function sees the destination).
	byzantine func(dst int, true_ vtime.Time) vtime.Time

	estimates map[int]vtime.Time // peer → estimated logical clock at collect
}

// Hardware returns the raw hardware clock at real (virtual) time t.
func (c *NodeClock) Hardware(t vtime.Time) vtime.Time {
	return vtime.Time(float64(t)*(1+c.drift)) + vtime.Time(c.offset)
}

// Logical returns the synchronised logical clock at real time t.
func (c *NodeClock) Logical(t vtime.Time) vtime.Time {
	return c.Hardware(t).Add(c.correction)
}

// Node returns the processor ID.
func (c *NodeClock) Node() int { return c.node }

// Service is the clock synchronisation service instance.
type Service struct {
	eng    *simkern.Engine
	net    *netsim.Network
	cfg    Config
	clocks map[int]*NodeClock
	rounds int

	// History records the measured precision after each round.
	History []vtime.Duration
}

// New creates the service and initialises hardware clocks with
// deterministic random offsets (±500 µs) and drifts (±ρ).
func New(eng *simkern.Engine, net *netsim.Network, cfg Config) (*Service, error) {
	if len(cfg.Nodes) < 3*cfg.F+1 {
		return nil, fmt.Errorf("clocksync: need n >= 3f+1 nodes, got n=%d f=%d", len(cfg.Nodes), cfg.F)
	}
	s := &Service{eng: eng, net: net, cfg: cfg, clocks: make(map[int]*NodeClock)}
	rng := eng.Rand()
	for _, n := range cfg.Nodes {
		s.clocks[n] = &NodeClock{
			node:      n,
			offset:    vtime.Duration(rng.Int63n(int64(vtime.Millisecond))) - 500*vtime.Microsecond,
			drift:     (rng.Float64()*2 - 1) * cfg.MaxDrift,
			estimates: make(map[int]vtime.Time),
		}
	}
	for _, n := range cfg.Nodes {
		node := n
		net.Bind(node, port, func(m *netsim.Message) { s.receive(node, m) })
	}
	return s, nil
}

// Clock returns a node's clock.
func (s *Service) Clock(node int) *NodeClock { return s.clocks[node] }

// Rounds returns the number of completed synchronisation rounds.
func (s *Service) Rounds() int { return s.rounds }

// MakeByzantine turns a node's clock Byzantine: readings sent to peers
// are replaced by fn (which may answer differently per destination,
// the strongest clock failure of the §2.1 model).
func (s *Service) MakeByzantine(node int, fn func(dst int, true_ vtime.Time) vtime.Time) {
	s.clocks[node].byzantine = fn
}

// TwoFacedByzantine is a canonical adversarial clock: it reports
// +spread to even-numbered destinations and −spread to odd ones.
func TwoFacedByzantine(spread vtime.Duration, rng *rand.Rand) func(int, vtime.Time) vtime.Time {
	return func(dst int, t vtime.Time) vtime.Time {
		if dst%2 == 0 {
			return t.Add(spread)
		}
		return t.Add(-spread)
	}
}

// Start schedules the periodic resynchronisation.
func (s *Service) Start() {
	var round func()
	round = func() {
		s.beginRound()
		s.eng.After(s.cfg.Period, eventq.ClassApp, round)
	}
	s.eng.After(s.cfg.Period, eventq.ClassApp, round)
}

// beginRound: every node broadcasts its reading, then applies the
// convergence function after the collect window.
func (s *Service) beginRound() {
	now := s.eng.Now()
	for _, src := range s.cfg.Nodes {
		c := s.clocks[src]
		if s.net.NodeDown(src) {
			continue
		}
		// Own estimate: exact.
		c.estimates = map[int]vtime.Time{src: c.Logical(now)}
		for _, dst := range s.cfg.Nodes {
			if dst == src {
				continue
			}
			reading := c.Logical(now)
			if c.byzantine != nil {
				reading = c.byzantine(dst, reading)
			}
			if _, err := s.net.Send(src, dst, port, reading, 16); err != nil {
				// Unconnected peers simply contribute no estimate.
				continue
			}
		}
	}
	s.eng.After(s.cfg.CollectWindow, eventq.ClassApp, func() { s.converge() })
}

// receive stores the estimate of the sender's logical clock: the
// carried reading plus the midpoint of the link delay bounds (the
// classic delay-compensation estimator whose error is ε/2).
func (s *Service) receive(node int, m *netsim.Message) {
	c := s.clocks[node]
	if c == nil || s.net.NodeDown(node) {
		return
	}
	reading, ok := m.Payload.(vtime.Time)
	if !ok {
		return
	}
	dmin, dmax, _ := s.net.DelayBounds(m.From, node)
	est := reading.Add((dmin + dmax) / 2) // midpoint estimator, error ≤ ε/2
	c.estimates[m.From] = est
	// Charge the processing cost like a kernel activity.
	if s.cfg.WSync > 0 {
		s.eng.Processors()[node].RaiseIRQ("clocksync", s.cfg.WSync, nil)
	}
}

// converge applies the fault-tolerant midpoint to every correct node.
func (s *Service) converge() {
	now := s.eng.Now()
	for _, n := range s.cfg.Nodes {
		c := s.clocks[n]
		if s.net.NodeDown(n) {
			continue
		}
		ests := make([]vtime.Time, 0, len(c.estimates))
		for _, e := range c.estimates {
			ests = append(ests, e)
		}
		if len(ests) <= 2*s.cfg.F {
			continue // not enough readings this round
		}
		sort.Slice(ests, func(i, j int) bool { return ests[i] < ests[j] })
		trimmed := ests[s.cfg.F : len(ests)-s.cfg.F]
		mid := trimmed[0] + (trimmed[len(trimmed)-1]-trimmed[0])/2
		c.correction += mid.Sub(c.Logical(now))
	}
	s.rounds++
	p := s.Precision()
	s.History = append(s.History, p)
	if log := s.eng.Log(); log != nil {
		log.Recordf(now, monitor.KindClockSyncRound, -1, "clocksync", "round=%d precision=%s", s.rounds, p)
	}
}

// Precision returns the current maximum logical-clock skew between any
// two correct (non-Byzantine, non-crashed) nodes.
func (s *Service) Precision() vtime.Duration {
	now := s.eng.Now()
	var lo, hi vtime.Time
	first := true
	for _, n := range s.cfg.Nodes {
		c := s.clocks[n]
		if c.byzantine != nil || s.net.NodeDown(n) {
			continue
		}
		l := c.Logical(now)
		if first {
			lo, hi = l, l
			first = false
			continue
		}
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	return hi.Sub(lo)
}

// Bound returns the steady-state precision envelope 4ε + 4ρP, where ε
// is the reading uncertainty (half the delay spread, both directions).
func (s *Service) Bound() vtime.Duration {
	var eps vtime.Duration
	for _, a := range s.cfg.Nodes {
		for _, b := range s.cfg.Nodes {
			if a == b {
				continue
			}
			if dmax, ok := s.net.DelayBound(a, b); ok && dmax > eps {
				eps = dmax
			}
		}
	}
	drift := vtime.Duration(4 * s.cfg.MaxDrift * float64(s.cfg.Period))
	return 4*eps + drift
}
