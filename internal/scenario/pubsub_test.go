package scenario

import (
	"bytes"
	"strings"
	"testing"

	"hades/internal/cluster"
	"hades/internal/monitor"
	"hades/internal/pubsub"
	"hades/internal/trace"
)

// pubsubBase clones the sensor-fan-out builtin deeply enough to mutate
// its pubsub block (Builtin hands out a shallow copy).
func pubsubBase(t *testing.T) Spec {
	t.Helper()
	spec, err := Builtin("sensor-fan-out")
	if err != nil {
		t.Fatal(err)
	}
	sh := *spec.Shards
	sh.Load = append([]LoadSpec(nil), sh.Load...)
	spec.Shards = &sh
	ps := *spec.PubSub
	ps.Topics = append([]TopicSpec(nil), ps.Topics...)
	ps.Publishers = append([]PublisherSpec(nil), ps.Publishers...)
	ps.Subscribers = append([]SubscriberSpec(nil), ps.Subscribers...)
	ps.Load = append([]LoadSpec(nil), ps.Load...)
	spec.PubSub = &ps
	return spec
}

// TestPubSubSpecValidation rejects malformed pubsub blocks loudly —
// QoS contract violations, endpoints on undeclared topics or unknown
// nodes, colliding generator names — and accepts the builtin.
func TestPubSubSpecValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string // "" = accepted
	}{
		{"builtin valid", func(s *Spec) {}, ""},
		{"requires shards", func(s *Spec) { s.Shards = nil },
			"requires a shards block"},
		{"no topics", func(s *Spec) { s.PubSub.Topics = nil },
			"declares no topics"},
		{"unnamed topic", func(s *Spec) {
			s.PubSub.Topics = append(s.PubSub.Topics, TopicSpec{})
		}, "unnamed"},
		{"duplicate topic", func(s *Spec) {
			s.PubSub.Topics = append(s.PubSub.Topics, s.PubSub.Topics[0])
		}, "duplicate pubsub topic"},
		{"unknown reliability", func(s *Spec) {
			s.PubSub.Topics[1].Reliability = "exactly-once"
		}, "unknown reliability"},
		{"negative deadline", func(s *Spec) {
			s.PubSub.Topics[0].DeadlineMs = -5
		}, "negative deadline"},
		{"durable zero history", func(s *Spec) {
			s.PubSub.Topics[0].HistoryDepth = 0
		}, "needs historyDepth >= 1"},
		{"history without durable", func(s *Spec) {
			s.PubSub.Topics[0].Durable = false
		}, "without durable"},
		{"durable best-effort", func(s *Spec) {
			s.PubSub.Topics[0].Reliability = "bestEffort"
		}, "needs reliable delivery"},
		{"publisher undeclared topic", func(s *Spec) {
			s.PubSub.Publishers[0].Topic = "ghost"
		}, "undeclared topic \"ghost\""},
		{"publisher unknown node", func(s *Spec) {
			s.PubSub.Publishers[0].Node = 99
		}, "unknown node 99"},
		{"publisher zero interval", func(s *Spec) {
			s.PubSub.Publishers[0].SubmitEveryMs = 0
		}, "positive submitEveryMs"},
		{"publisher negative count", func(s *Spec) {
			s.PubSub.Publishers[0].Count = -1
		}, "negative count"},
		{"subscriber undeclared topic", func(s *Spec) {
			s.PubSub.Subscribers[0].Topic = "ghost"
		}, "undeclared topic \"ghost\""},
		{"subscriber unknown node", func(s *Spec) {
			s.PubSub.Subscribers[0].Node = -2
		}, "unknown node -2"},
		{"duplicate subscriber", func(s *Spec) {
			s.PubSub.Subscribers = append(s.PubSub.Subscribers, s.PubSub.Subscribers[0])
		}, "two pubsub subscribers"},
		{"negative join", func(s *Spec) {
			s.PubSub.Subscribers[0].JoinAtMs = -10
		}, "negative instant"},
		{"join past horizon", func(s *Spec) {
			s.PubSub.Subscribers[0].JoinAtMs = s.HorizonMs + 1
		}, "past the"},
		{"load undeclared topic", func(s *Spec) {
			s.PubSub.Load[0].Keys = []string{"ghost"}
		}, "undeclared topic \"ghost\""},
		{"load kv workload", func(s *Spec) {
			s.PubSub.Load[0].Workload = "kv"
		}, "always publishes"},
		{"load name collides across blocks", func(s *Spec) {
			s.Shards.Load = []LoadSpec{{Name: "storm", Nodes: []int{6},
				Sessions: 1, Keys: []string{"alpha"}}}
		}, "duplicate load \"storm\""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := pubsubBase(t)
			tc.mutate(&spec)
			_, err := spec.withDefaults()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid pubsub block rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid pubsub block accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q missing %q", err, tc.wantErr)
			}
		})
	}
}

// TestGroupLoadValidation covers the group-attached generator rules: a
// replication style is required, only the kv shape applies, and node
// lists are rejected (submission is always at the current primary).
func TestGroupLoadValidation(t *testing.T) {
	base := func(t *testing.T) Spec {
		t.Helper()
		spec, err := Builtin("membership-churn")
		if err != nil {
			t.Fatal(err)
		}
		spec.Groups = append([]GroupSpec(nil), spec.Groups...)
		return spec
	}
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"valid keyless", func(s *Spec) {
			s.Groups[0].Load = []LoadSpec{{Name: "g", Sessions: 4, ThinkMs: 2}}
		}, ""},
		{"no style", func(s *Spec) {
			s.Groups[0].Style = ""
			s.Groups[0].SubmitEveryMs = 0
			s.Groups[0].Load = []LoadSpec{{Name: "g", Sessions: 4, ThinkMs: 2}}
		}, "no replication style"},
		{"txn workload", func(s *Spec) {
			s.Groups[0].Load = []LoadSpec{{Name: "g", Workload: "txn", Sessions: 4, ThinkMs: 2,
				Keys: []string{"a", "b"}}}
		}, "only serves kv commands"},
		{"nodes rejected", func(s *Spec) {
			s.Groups[0].Load = []LoadSpec{{Name: "g", Nodes: []int{3}, Sessions: 4, ThinkMs: 2}}
		}, "drop the nodes field"},
		{"duplicate name", func(s *Spec) {
			s.Groups[0].Load = []LoadSpec{
				{Name: "g", Sessions: 4, ThinkMs: 2},
				{Name: "g", Sessions: 2, ThinkMs: 2},
			}
		}, "duplicate load \"g\""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base(t)
			tc.mutate(&spec)
			_, err := spec.withDefaults()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid group load rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid group load accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q missing %q", err, tc.wantErr)
			}
		})
	}
}

// TestGroupLoadRuns: a generator attached to a plain replication group
// (no sharded plane) drives real commands through the primary and its
// account — with per-generator latency — reaches the Result.
func TestGroupLoadRuns(t *testing.T) {
	spec, err := Builtin("membership-churn")
	if err != nil {
		t.Fatal(err)
	}
	spec.Groups = append([]GroupSpec(nil), spec.Groups...)
	spec.Groups[0].Load = []LoadSpec{{Name: "churn-load", Sessions: 8, ThinkMs: 2}}
	spec, err = spec.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(spec.Horizon())
	res := sys.ResultNow()
	if len(res.Loads) != 1 {
		t.Fatalf("got %d load accounts, want 1", len(res.Loads))
	}
	l := res.Loads[0]
	if l.Name != "churn-load" || l.Offered == 0 || l.Acked == 0 {
		t.Fatalf("group load account empty: %+v", l)
	}
	if l.Latency.Count == 0 || l.Latency.P50 <= 0 || l.Latency.Max < l.Latency.P50 {
		t.Fatalf("group load latency attribution missing: %+v", l.Latency)
	}
}

// runSensorFanOut builds and runs the builtin at the given seed and
// returns the cluster plus its (single) pub/sub plane.
func runSensorFanOut(t *testing.T, seed int64) (*cluster.Cluster, *pubsub.Plane) {
	t.Helper()
	spec, err := Builtin("sensor-fan-out")
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = seed
	clu, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	clu.Run(spec.Horizon())
	sets := clu.ShardSets()
	if len(sets) != 1 {
		t.Fatalf("got %d shard sets, want 1", len(sets))
	}
	p := sets[0].PubSubPlane()
	if p == nil {
		t.Fatal("sensor-fan-out declared a pubsub block but no plane exists")
	}
	return clu, p
}

// TestSensorFanOutSeeds asserts the builtin's QoS contracts across
// seeds: exactly-once delivery of every reliable durable sample under
// the primary crash, best-effort delivery to every live subscriber
// without blocking, late-joiner convergence to the retained history,
// and every deadline miss surfaced as a monitor violation.
func TestSensorFanOutSeeds(t *testing.T) {
	missSomewhere := false
	for seed := int64(1); seed <= 5; seed++ {
		clu, p := runSensorFanOut(t, seed)
		if err := p.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := p.CheckComplete("telemetry"); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var tele, sens pubsub.TopicStats
		for _, st := range p.Stats() {
			switch st.Name {
			case "telemetry":
				tele = st
			case "sensors":
				sens = st
			}
		}
		if tele.Published != 300 || tele.Acked != 300 {
			t.Fatalf("seed %d: telemetry published=%d acked=%d, want 300/300", seed, tele.Published, tele.Acked)
		}
		if tele.Dropped != 0 {
			t.Fatalf("seed %d: telemetry dropped %d samples with no subscriber crash", seed, tele.Dropped)
		}
		if tele.HistoryLen != 8 {
			t.Fatalf("seed %d: durable history holds %d samples, want depth 8", seed, tele.HistoryLen)
		}
		// Every from-start subscriber saw all 300 samples exactly once;
		// the late joiner converged to exactly the retained 8.
		for _, sub := range p.Subscribers("telemetry") {
			want := 300
			if sub.JoinTime() > 0 {
				want = 8
			}
			if got := len(sub.Deliveries()); got != want {
				t.Fatalf("seed %d: telemetry sub n%d delivered %d, want %d", seed, sub.Node(), got, want)
			}
		}
		// Best-effort never blocks: every publish acked at its bounded
		// broadcast instant, and with no live-subscriber failure every
		// subscriber saw the full stream.
		if sens.Published == 0 || sens.Acked != sens.Published {
			t.Fatalf("seed %d: sensors published=%d acked=%d (best-effort publish must not block)", seed, sens.Published, sens.Acked)
		}
		for _, sub := range p.Subscribers("sensors") {
			if got := len(sub.Deliveries()); got != sens.Published {
				t.Fatalf("seed %d: sensors sub n%d delivered %d of %d", seed, sub.Node(), got, sens.Published)
			}
		}
		// Deadline misses surface 1:1 as monitor violations.
		misses := 0
		for _, ev := range clu.Log().Events() {
			if ev.Kind == monitor.KindDeadlineMiss && ev.Subject == "pubsub.telemetry" {
				misses++
			}
		}
		if misses != tele.DeadlineMiss {
			t.Fatalf("seed %d: %d deadline misses counted, %d monitor events", seed, tele.DeadlineMiss, misses)
		}
		if misses > 0 {
			missSomewhere = true
		}
	}
	if !missSomewhere {
		t.Fatal("no seed produced a deadline miss — the failover window no longer exercises the deadline QoS")
	}
}

// TestSensorFanOutDeterministic: the same seed reproduces the run
// byte-for-byte — delivery order, monitor log and exported trace.
func TestSensorFanOutDeterministic(t *testing.T) {
	run := func() (string, []byte, []byte) {
		spec, err := Builtin("sensor-fan-out")
		if err != nil {
			t.Fatal(err)
		}
		clu, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		clu.Run(spec.Horizon())
		p := clu.ShardSets()[0].PubSubPlane()
		var log bytes.Buffer
		if err := clu.Log().WriteTrace(&log); err != nil {
			t.Fatal(err)
		}
		var tr bytes.Buffer
		if err := trace.WriteChrome(&tr, clu.Tracer().Retained()); err != nil {
			t.Fatal(err)
		}
		return p.DeliveryLog(), log.Bytes(), tr.Bytes()
	}
	d1, l1, t1 := run()
	d2, l2, t2 := run()
	if d1 != d2 {
		t.Fatal("same seed produced different delivery orders")
	}
	if !bytes.Equal(l1, l2) {
		t.Fatal("same seed produced different monitor logs")
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("same seed produced different trace exports")
	}
	if !strings.Contains(d1, "replay") {
		t.Fatal("delivery log records no history replay (late joiner never caught up)")
	}
}

// TestPubSubPassive: a scenario with no pubsub block creates no plane,
// no pubsub metric series and no pubsub monitor events — describing
// the rest of the system is unaffected by the plane existing in the
// codebase.
func TestPubSubPassive(t *testing.T) {
	spec, err := Builtin("hot-shard")
	if err != nil {
		t.Fatal(err)
	}
	clu, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	clu.Run(spec.Horizon())
	for _, set := range clu.ShardSets() {
		if set.PubSubPlane() != nil {
			t.Fatal("run without a pubsub block grew a pubsub plane")
		}
		if err := set.CheckPubSub(); err != nil {
			t.Fatalf("CheckPubSub on a plane-less set: %v", err)
		}
	}
	for _, s := range clu.Metrics().Export().Series {
		if strings.HasPrefix(s.Name, "pubsub.") {
			t.Fatalf("run without a pubsub block scraped series %q", s.Name)
		}
	}
	for _, ev := range clu.Log().Events() {
		switch ev.Kind {
		case monitor.KindSampleDrop, monitor.KindCatchUp:
			t.Fatalf("run without a pubsub block logged %s", ev.Kind)
		}
	}
}

// TestLateJoinerThroughPartitionMerge: the durable history survives a
// partition of the owning primary, a mid-partition late joiner catches
// up from the promoted primary, and the merge view triggers a history
// replay — every reliable sample still lands exactly once everywhere.
func TestLateJoinerThroughPartitionMerge(t *testing.T) {
	base := Spec{
		Name: "merge-replay", Nodes: 6, Costs: "default",
		Scheduler: "EDF", Policy: "none", HorizonMs: 500,
		Observe: &ObserveSpec{TraceSampleRate: fptr(1.0), RetainViolations: true},
		Shards: &ShardsSpec{
			Count: 1, ReplicasPer: 3, Style: "semi-active",
			Routes: map[string]int{"t": 0},
		},
		PubSub: &PubSubSpec{
			Topics: []TopicSpec{
				{Name: "t", Durable: true, HistoryDepth: 4},
			},
			Publishers: []PublisherSpec{
				{Topic: "t", Node: 3, SubmitEveryMs: 5, Count: 60},
			},
			Subscribers: []SubscriberSpec{
				{Topic: "t", Node: 4},
				{Topic: "t", Node: 5, JoinAtMs: 150},
			},
		},
		Faults: []FaultSpec{
			// The owning primary is segmented off alone mid-publish; the
			// majority promotes a replacement, and the heal readmits it
			// through a merge view that replays the history.
			{Kind: "partition", Partition: [][]int{{0}, {1, 2, 3, 4, 5}}, AtMs: 100, HealMs: 250},
		},
		Tasks: []TaskSpec{
			{Name: "watchdog", Law: "periodic", DeadlineMs: 40, PeriodMs: 50,
				Stages: []StageSpec{{Name: "check", Node: 4, WCETUs: 300}}},
		},
	}
	for seed := int64(1); seed <= 3; seed++ {
		spec := base
		spec.Seed = seed
		spec, err := spec.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		clu, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		clu.Run(spec.Horizon())
		p := clu.ShardSets()[0].PubSubPlane()
		if err := p.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := p.CheckComplete("t"); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		catchups := 0
		for _, ev := range clu.Log().Events() {
			if ev.Kind == monitor.KindCatchUp {
				catchups++
			}
		}
		if catchups == 0 {
			t.Fatalf("seed %d: no CatchUp events — neither the late joiner nor the merge replayed history", seed)
		}
		for _, sub := range p.Subscribers("t") {
			if sub.JoinTime() == 0 {
				if got := len(sub.Deliveries()); got != 60 {
					t.Fatalf("seed %d: from-start sub delivered %d of 60", seed, got)
				}
			}
		}
	}
}
