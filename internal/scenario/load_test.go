package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// loadBase clones the hot-shard builtin deeply enough to mutate its
// shards block (Builtin hands out a shallow copy of the catalogue
// entry).
func loadBase(t *testing.T) Spec {
	t.Helper()
	spec, err := Builtin("hot-shard")
	if err != nil {
		t.Fatal(err)
	}
	sh := *spec.Shards
	sh.Clients = append([]ShardClientSpec(nil), sh.Clients...)
	sh.Load = append([]LoadSpec(nil), sh.Load...)
	spec.Shards = &sh
	return spec
}

// TestLoadSpecValidation rejects malformed load blocks loudly and
// accepts well-formed ones.
func TestLoadSpecValidation(t *testing.T) {
	keys := []string{"alpha", "bravo", "charlie"}
	closed := func(name string, nodes ...int) LoadSpec {
		return LoadSpec{Name: name, Nodes: nodes, Sessions: 4, ThinkMs: 5, Keys: keys}
	}
	cases := []struct {
		name    string
		load    []LoadSpec
		wantErr string // "" = accepted
	}{
		{"unnamed", []LoadSpec{{Nodes: []int{7}, Sessions: 1, Keys: keys}}, "load 0 unnamed"},
		{"duplicate names", []LoadSpec{closed("g", 7), closed("g", 6)}, "duplicate load"},
		{"unknown mode", []LoadSpec{{Name: "g", Mode: "half-open", Nodes: []int{7}, Sessions: 1, Keys: keys}},
			"unknown mode"},
		{"unknown workload", []LoadSpec{{Name: "g", Workload: "scan", Nodes: []int{7}, Sessions: 1, Keys: keys}},
			"unknown workload"},
		{"no nodes", []LoadSpec{{Name: "g", Sessions: 1, Keys: keys}}, "names no client nodes"},
		{"unknown node", []LoadSpec{closed("g", 99)}, "unknown node"},
		{"replica node", []LoadSpec{closed("g", 0)}, "collides with a shard replica"},
		{"node twice", []LoadSpec{closed("g", 7, 7)}, "lists node 7 twice"},
		{"negative window", []LoadSpec{{Name: "g", Nodes: []int{7}, Sessions: 1, Keys: keys, StartMs: -1}},
			"negative window bound"},
		{"inverted window", []LoadSpec{{Name: "g", Nodes: []int{7}, Sessions: 1, Keys: keys,
			StartMs: 100, EndMs: 50}}, "empty submission window"},
		{"closed with arrival", []LoadSpec{{Name: "g", Nodes: []int{7}, Sessions: 1, Keys: keys,
			Arrival: 100}}, "rate is open-loop only"},
		{"open without rate", []LoadSpec{{Name: "g", Mode: "open", Nodes: []int{7}, Keys: keys}},
			"positive rate or a ramp"},
		{"open with sessions", []LoadSpec{{Name: "g", Mode: "open", Nodes: []int{7}, Arrival: 100,
			Sessions: 4, Keys: keys}}, "sessions are closed-loop only"},
		{"ramp not ascending", []LoadSpec{{Name: "g", Mode: "open", Nodes: []int{7}, Keys: keys,
			Ramp: []RampStepSpec{{AtMs: 50, Rate: 10}, {AtMs: 50, Rate: 20}}}}, "strictly ascend"},
		{"shift without skew", []LoadSpec{{Name: "g", Mode: "open", Nodes: []int{7}, Arrival: 100,
			Keys: keys, HotspotShift: []HotspotShiftSpec{{AtMs: 50, Shift: 1}}}}, "without zipfSkew"},
		{"txn one key", []LoadSpec{{Name: "g", Workload: "txn", Nodes: []int{7}, Sessions: 1,
			Keys: []string{"alpha"}}}, "at least two keys"},
		{"no keys", []LoadSpec{{Name: "g", Nodes: []int{7}, Sessions: 1}}, "at least one key"},
		{"negative maxOps", []LoadSpec{{Name: "g", Nodes: []int{7}, Sessions: 1, Keys: keys,
			MaxOps: -5}}, "negative maxOps"},
		{"valid closed", []LoadSpec{closed("g", 7)}, ""},
		{"valid open with schedules", []LoadSpec{{Name: "g", Mode: "open", Nodes: []int{7},
			Arrival: 200, ZipfSkew: 1.1, Keys: keys,
			Ramp:         []RampStepSpec{{AtMs: 100, Rate: 800}},
			HotspotShift: []HotspotShiftSpec{{AtMs: 150, Shift: 1}}}}, ""},
		{"valid disabled", []LoadSpec{{Name: "g", Disabled: true, Nodes: []int{7}, Sessions: 1, Keys: keys}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := loadBase(t)
			spec.Shards.Load = tc.load
			_, err := spec.withDefaults()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid load block rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid load block accepted: %+v", tc.load)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q missing %q", err, tc.wantErr)
			}
		})
	}
}

// TestClientArrivalValidation covers the open-loop knobs on shard
// clients: arrival/ramp replace submitEveryMs, hotspot shifts need a
// skew and an open loop.
func TestClientArrivalValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*ShardClientSpec)
		wantErr string // "" = accepted
	}{
		{"mixed disciplines", func(cl *ShardClientSpec) {
			cl.Arrival = 100 // SubmitEveryMs stays set
		}, "mixes submitEveryMs with the open-loop arrival knobs"},
		{"shift on fixed schedule", func(cl *ShardClientSpec) {
			cl.HotspotShift = []HotspotShiftSpec{{AtMs: 100, Shift: 1}}
		}, "hotspotShift without an open-loop arrival"},
		{"negative arrival", func(cl *ShardClientSpec) {
			cl.SubmitEveryMs = 0
			cl.Arrival = -10
		}, "positive rate or a ramp"},
		{"ramp not ascending", func(cl *ShardClientSpec) {
			cl.SubmitEveryMs = 0
			cl.Ramp = []RampStepSpec{{AtMs: 100, Rate: 10}, {AtMs: 50, Rate: 20}}
		}, "strictly ascend"},
		{"shift without skew", func(cl *ShardClientSpec) {
			cl.SubmitEveryMs = 0
			cl.Arrival = 100
			cl.ZipfSkew = 0
			cl.HotspotShift = []HotspotShiftSpec{{AtMs: 100, Shift: 1}}
		}, "without zipfSkew"},
		{"valid open-loop client", func(cl *ShardClientSpec) {
			cl.SubmitEveryMs = 0
			cl.Arrival = 300
			cl.Ramp = []RampStepSpec{{AtMs: 200, Rate: 900}}
			cl.HotspotShift = []HotspotShiftSpec{{AtMs: 250, Shift: 2}}
		}, ""},
		{"valid ramp only", func(cl *ShardClientSpec) {
			cl.SubmitEveryMs = 0
			cl.Ramp = []RampStepSpec{{AtMs: 100, Rate: 400}}
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := loadBase(t)
			tc.mutate(&spec.Shards.Clients[0])
			_, err := spec.withDefaults()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid client rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid client accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q missing %q", err, tc.wantErr)
			}
		})
	}
}

// TestLoadPlanePassive: a disabled load block attaches nothing — the
// run's monitor log is byte-identical to one with no load block at
// all (the passivity contract: describing load must not perturb the
// simulation).
func TestLoadPlanePassive(t *testing.T) {
	trace := func(spec Spec) []byte {
		t.Helper()
		spec, err := spec.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		sys, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(spec.Horizon())
		var buf bytes.Buffer
		if err := sys.Log().WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := trace(loadBase(t))
	withDisabled := loadBase(t)
	withDisabled.Shards.Load = []LoadSpec{{
		Name: "ghost", Disabled: true, Nodes: []int{7},
		Sessions: 64, ThinkMs: 1,
		Keys: []string{"alpha", "bravo"},
	}}
	if got := trace(withDisabled); !bytes.Equal(plain, got) {
		t.Fatal("disabled load block changed the run's monitor log")
	}
}

// TestLoadRampRuns: the load-ramp builtin drives real traffic through
// both generators, the ramp's arrivals dominate, and the run's
// account reaches the Result.
func TestLoadRampRuns(t *testing.T) {
	spec, err := Builtin("load-ramp")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(spec.Horizon())
	res := sys.ResultNow()
	if len(res.Loads) != 2 {
		t.Fatalf("got %d load accounts, want 2", len(res.Loads))
	}
	for _, l := range res.Loads {
		if l.Offered == 0 {
			t.Fatalf("load %q offered nothing", l.Name)
		}
		if l.Acked == 0 {
			t.Fatalf("load %q acked nothing", l.Name)
		}
		if l.Acked > l.Offered {
			t.Fatalf("load %q acked %d > offered %d", l.Name, l.Acked, l.Offered)
		}
		if l.Capped {
			t.Fatalf("load %q hit its op cap", l.Name)
		}
	}
}

// TestLoadReportDeterministic: the same builtin and seed distill to a
// byte-identical report document — the property committed baselines
// rest on.
func TestLoadReportDeterministic(t *testing.T) {
	build := func() []byte {
		t.Helper()
		spec, err := Builtin("load-ramp")
		if err != nil {
			t.Fatal(err)
		}
		sys, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(spec.Horizon())
		doc := sys.ReportNow(spec.Name)
		var buf bytes.Buffer
		if err := doc.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different report documents")
	}
	if len(a) == 0 || !bytes.Contains(a, []byte(`"throughput"`)) {
		t.Fatalf("report document malformed:\n%s", a)
	}
	// The per-interval series must be present: the metrics plane
	// scrapes the generators' offered/acked counters by default.
	if !bytes.Contains(a, []byte(`"series"`)) {
		t.Fatalf("report missing the throughput series:\n%s", a)
	}
}
