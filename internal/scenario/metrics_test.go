package scenario

import (
	"bytes"
	"strings"
	"testing"

	"hades/internal/metrics"
)

// TestMetricsSpecValidation rejects malformed observe.metrics blocks
// loudly and accepts well-formed ones.
func TestMetricsSpecValidation(t *testing.T) {
	cases := []struct {
		name    string
		m       *MetricsSpec
		wantErr string // "" = accepted
	}{
		{"negative interval", &MetricsSpec{IntervalMs: -1}, "intervalMs must not be negative"},
		{"negative capacity", &MetricsSpec{Capacity: -8}, "capacity must not be negative"},
		{"negative topk", &MetricsSpec{TopK: -2}, "topK must not be negative"},
		{"rules on disabled plane", &MetricsSpec{Disabled: true,
			SLO: []SLORuleSpec{{Name: "r", Metric: "m", Op: "<=", Threshold: 1}}},
			"slo rules but the plane is disabled"},
		{"both thresholds", &MetricsSpec{
			SLO: []SLORuleSpec{{Name: "r", Metric: "m", Op: "<=", Threshold: 1, ThresholdMs: 2}}},
			"sets both threshold and thresholdMs"},
		{"negative for", &MetricsSpec{
			SLO: []SLORuleSpec{{Name: "r", Metric: "m", Op: "<=", Threshold: 1, ForIntervals: -1}}},
			"negative forIntervals"},
		{"unknown stat", &MetricsSpec{
			SLO: []SLORuleSpec{{Name: "r", Metric: "m", Stat: "p42", Op: "<=", Threshold: 1}}},
			"unknown stat"},
		{"unknown op", &MetricsSpec{
			SLO: []SLORuleSpec{{Name: "r", Metric: "m", Op: "==", Threshold: 1}}},
			"unknown op"},
		{"missing metric", &MetricsSpec{
			SLO: []SLORuleSpec{{Name: "r", Op: "<=", Threshold: 1}}},
			"needs a metric"},
		{"missing name", &MetricsSpec{
			SLO: []SLORuleSpec{{Metric: "m", Op: "<=", Threshold: 1}}},
			"needs a name"},
		{"valid block", &MetricsSpec{IntervalMs: 2, Capacity: 64, TopK: 8,
			SLO: []SLORuleSpec{
				{Name: "lat", Metric: "kv.ack.latency", Stat: "p99", Op: "<=", ThresholdMs: 10, ForIntervals: 3},
				{Name: "drops", Metric: "net.drops", Op: "<=", Threshold: 0},
			}}, ""},
		{"disabled plane", &MetricsSpec{Disabled: true}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := Builtin("sharded-kv")
			if err != nil {
				t.Fatal(err)
			}
			spec.Observe = &ObserveSpec{Metrics: tc.m}
			_, err = spec.withDefaults()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid metrics block rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid metrics block accepted: %+v", tc.m)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q missing %q", err, tc.wantErr)
			}
		})
	}
}

// TestClientCountAndZipfValidation covers the workload-shape knobs:
// replicated clients must land on free in-range nodes, and the skew
// exponent must not be negative.
func TestClientCountAndZipfValidation(t *testing.T) {
	base := func() Spec {
		spec, err := Builtin("hot-shard")
		if err != nil {
			t.Fatal(err)
		}
		// Builtin returns a shallow copy: clone the shards block before
		// the subtests mutate it.
		sh := *spec.Shards
		sh.Clients = append([]ShardClientSpec(nil), sh.Clients...)
		spec.Shards = &sh
		return spec
	}
	t.Run("count past node range", func(t *testing.T) {
		spec := base()
		spec.Shards.Clients[0].Count = 3 // nodes 6,7,8 with 8 nodes
		if _, err := spec.withDefaults(); err == nil || !strings.Contains(err.Error(), "unknown node 8") {
			t.Fatalf("out-of-range replicated client accepted: %v", err)
		}
	})
	t.Run("negative count", func(t *testing.T) {
		spec := base()
		spec.Shards.Clients[0].Count = -1
		if _, err := spec.withDefaults(); err == nil || !strings.Contains(err.Error(), "negative count") {
			t.Fatalf("negative count accepted: %v", err)
		}
	})
	t.Run("negative skew", func(t *testing.T) {
		spec := base()
		spec.Shards.Clients[0].ZipfSkew = -0.5
		if _, err := spec.withDefaults(); err == nil || !strings.Contains(err.Error(), "negative zipfSkew") {
			t.Fatalf("negative zipfSkew accepted: %v", err)
		}
	})
	t.Run("count onto replica", func(t *testing.T) {
		spec := base()
		spec.Shards.Clients[0].Node = 5 // node 5 is a shard replica
		if _, err := spec.withDefaults(); err == nil || !strings.Contains(err.Error(), "collides with a shard replica") {
			t.Fatalf("replicated client over a replica accepted: %v", err)
		}
	})
}

// seriesTotal sums a counter series' per-interval deltas out of an
// export, reporting whether the series exists at all.
func seriesTotal(ex *metrics.Export, name string) (int64, bool) {
	for _, s := range ex.Series {
		if s.Name != name {
			continue
		}
		var total int64
		for _, p := range s.Points {
			total += p.V
		}
		return total, true
	}
	return 0, false
}

// TestHotShardScenario is the acceptance check for the metrics
// tentpole: a zipf-skewed workload over two shards with a crash on the
// hot shard's primary must (a) name the hot key and its shard in the
// top-k sketch, (b) show the load imbalance in the per-shard counters,
// and (c) record an ack-latency SLO breach whose onset falls in the
// fault window and which clears before the horizon.
func TestHotShardScenario(t *testing.T) {
	spec, err := Builtin("hot-shard")
	if err != nil {
		t.Fatal(err)
	}
	clu, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := clu.Run(spec.Horizon())
	ex := rep.Metrics
	if ex == nil || ex.Scrapes == 0 {
		t.Fatalf("no metrics export from a metrics-enabled run: %+v", ex)
	}

	// (a) The sketch's hottest key is the zipf head, pinned to shard 0.
	if len(ex.TopKeys) == 0 {
		t.Fatal("no hot keys in export")
	}
	hot := ex.TopKeys[0]
	if hot.Key != "alpha" || hot.Shard != 0 {
		t.Fatalf("hottest key = %q on shard %d, want \"alpha\" on shard 0 (top: %+v)", hot.Key, hot.Shard, ex.TopKeys)
	}

	// (b) Shard 0 admits visibly more ops than shard 1.
	ops0, ok0 := seriesTotal(ex, "shard.ops.shard0")
	ops1, ok1 := seriesTotal(ex, "shard.ops.shard1")
	if !ok0 || !ok1 {
		t.Fatalf("per-shard op counters missing (have0=%v have1=%v)", ok0, ok1)
	}
	if ops0 <= ops1 {
		t.Fatalf("hot shard not visible in per-shard counters: shard0=%d shard1=%d", ops0, ops1)
	}

	// (c) The latency SLO breaches during the failover and clears.
	var ack *metrics.RuleData
	for i := range ex.SLO {
		if ex.SLO[i].Name == "ack-p99" {
			ack = &ex.SLO[i]
		}
	}
	if ack == nil {
		t.Fatalf("ack-p99 rule missing from export: %+v", ex.SLO)
	}
	if ack.Evals == 0 || len(ack.Breaches) == 0 {
		t.Fatalf("ack-p99 recorded no breach (evals=%d)", ack.Evals)
	}
	b := ack.Breaches[0]
	if b.Onset <= 0 || b.Clear <= b.Onset {
		t.Fatalf("breach lacks onset/clear instants: %+v", b)
	}
	crashAt := int64(60_000_000) // the fault window opens at 60ms (ns)
	if b.Onset < crashAt {
		t.Fatalf("breach onset %dns precedes the crash at %dns", b.Onset, crashAt)
	}
}

// TestMetricsExportDeterminism: the same spec and seed must serialize
// to byte-identical exports across two independent runs.
func TestMetricsExportDeterminism(t *testing.T) {
	render := func() []byte {
		spec, err := Builtin("hot-shard")
		if err != nil {
			t.Fatal(err)
		}
		clu, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		clu.Run(spec.Horizon())
		var buf bytes.Buffer
		if err := clu.Metrics().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different exports (%d vs %d bytes)", len(a), len(b))
	}
	if len(a) < 100 {
		t.Fatalf("export implausibly small: %s", a)
	}
}
