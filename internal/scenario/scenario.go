// Package scenario defines the JSON scenario format shared by the
// hades-sim and hades-feas command-line tools: a §5.1-style task set
// plus platform, topology, placement, fault-injection and policy
// choices, loadable from a file or from the built-in catalogue.
//
// A scenario builds onto the cluster runtime layer, so distributed and
// faulty workloads are data, not code: "nodes" sizes the platform,
// "links" declares bounded-delay point-to-point links (omit for a full
// mesh), "placement" pins tasks or stages to nodes, "faults" schedules
// deterministic omission/delay/crash(/recover) injection, "groups"
// declares view-synchronous membership groups with optional replicated
// state machines and a request driver, and "shards" declares a sharded
// data plane (consistent-hash routing over replication groups with
// retrying/redirecting clients, plus "txns" transaction clients
// driving deadline-carrying cross-shard atomic transfers) — the
// crash/partition/rejoin workloads of the membership-churn,
// partition-split, sharded-kv and bank-transfer builtins are pure
// data.
package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"

	"hades/internal/cluster"
	"hades/internal/dispatcher"
	"hades/internal/feasibility"
	"hades/internal/heug"
	"hades/internal/load"
	"hades/internal/metrics"
	"hades/internal/replication"
	"hades/internal/sched"
	"hades/internal/session"
	"hades/internal/shard"
	"hades/internal/txn"
	"hades/internal/vtime"
)

// StageSpec is one Code_EU of a multi-stage (pipeline) task. Stages
// form a chain in declaration order; consecutive stages on different
// nodes cross the network as remote precedence constraints.
type StageSpec struct {
	Name   string  `json:"name"`
	Node   int     `json:"node"`
	WCETUs float64 `json:"wcetUs"`
}

// TaskSpec describes one task in the JSON scenario: either a §5.1
// Spuri task (CBefore/CS/CAfter, single node) or a staged pipeline
// (Stages, possibly spanning nodes). The two forms are exclusive.
type TaskSpec struct {
	Name      string  `json:"name"`
	Node      int     `json:"node"`
	CBeforeUs float64 `json:"cBeforeUs"`
	CSUs      float64 `json:"csUs"`
	CAfterUs  float64 `json:"cAfterUs"`
	Resource  string  `json:"resource,omitempty"`
	// DeadlineMs is the relative deadline D.
	DeadlineMs float64 `json:"deadlineMs"`
	// PeriodMs is the period (periodic) or pseudo-period (sporadic).
	PeriodMs float64 `json:"periodMs"`
	// Law is "sporadic" (default) or "periodic".
	Law string `json:"law,omitempty"`
	// Stages, when present, makes the task a pipeline of Code_EUs
	// chained in order (a distributed task when nodes differ).
	Stages []StageSpec `json:"stages,omitempty"`
}

// LinkSpec declares one bidirectional link with delay bounds
// [dMin, dMax] — the synchrony assumption of the §2.1 system model.
type LinkSpec struct {
	A      int     `json:"a"`
	B      int     `json:"b"`
	DMinUs float64 `json:"dMinUs"`
	DMaxUs float64 `json:"dMaxUs"`
}

// FaultSpec schedules one deterministic fault injection:
//
//   - "drop-every": drop every K-th message on Port (omission);
//   - "drop-from": drop all messages Node sends on Port (a fully
//     send-omission-faulty process);
//   - "random": drop/delay with the given probabilities from the
//     seeded source;
//   - "crash": node crash at AtMs, recovering at RecoverMs (0 = never);
//   - "partition": split the declared nodes into Partition sides at
//     AtMs (cross-side traffic drops, in-flight included), healing at
//     HealMs (0 = never). Nodes in no side keep full connectivity.
type FaultSpec struct {
	Kind       string  `json:"kind"`
	Node       int     `json:"node,omitempty"`
	K          int     `json:"k,omitempty"`
	Port       string  `json:"port,omitempty"`
	AtMs       float64 `json:"atMs,omitempty"`
	RecoverMs  float64 `json:"recoverMs,omitempty"`
	HealMs     float64 `json:"healMs,omitempty"`
	Partition  [][]int `json:"partition,omitempty"`
	DropProb   float64 `json:"dropProb,omitempty"`
	DelayProb  float64 `json:"delayProb,omitempty"`
	MaxExtraUs float64 `json:"maxExtraUs,omitempty"`
}

// GroupSpec declares one view-synchronous membership group, optionally
// carrying a replicated state machine driven with periodic requests:
//
//   - Nodes is the member universe watched by the group's detector;
//   - Style ("passive", "semi-active", "active"), when set, attaches a
//     replica group whose failover follows the installed views;
//   - Replicas defaults to Nodes (promotion order = declaration order);
//   - SubmitEveryMs, when positive, submits one request every interval
//     from node SubmitFrom for the whole horizon.
type GroupSpec struct {
	Name             string  `json:"name"`
	Nodes            []int   `json:"nodes"`
	Style            string  `json:"style,omitempty"`
	Replicas         []int   `json:"replicas,omitempty"`
	CheckpointEvery  int     `json:"checkpointEvery,omitempty"`
	WExecUs          float64 `json:"wExecUs,omitempty"`
	StorageLatencyUs float64 `json:"storageLatencyUs,omitempty"`
	SubmitEveryMs    float64 `json:"submitEveryMs,omitempty"`
	SubmitFrom       int     `json:"submitFrom,omitempty"`
	// Load attaches declarative generators straight to the group's
	// replicated machine (kv shape only: submissions go to the current
	// primary, an op completes at its first fresh apply) — the load
	// harness without a sharded data plane. Requires a Style.
	Load []LoadSpec `json:"load,omitempty"`
}

// RampStepSpec changes an open-loop arrival rate at an instant: from
// AtMs on, arrivals come at Rate ops/sec (until the next step).
// Instants must strictly ascend; a zero Rate is a plateau with no
// arrivals until the next step.
type RampStepSpec struct {
	AtMs float64 `json:"atMs"`
	Rate float64 `json:"rate"`
}

// HotspotShiftSpec rotates a zipf-ranked keyspace at an instant: from
// AtMs on, the key at declaration rank r serves rank (r+Shift) mod
// len(keys) — the hot key moves mid-run, the signal hot-shard
// detection must chase. Instants must strictly ascend.
type HotspotShiftSpec struct {
	AtMs  float64 `json:"atMs"`
	Shift int     `json:"shift"`
}

// ShardClientSpec declares one request client of a sharded data
// plane: a keyed workload submitted round-robin over Keys, one
// request every SubmitEveryMs for the whole horizon — or, when
// Arrival or Ramp is set, on an open-loop Poisson schedule.
type ShardClientSpec struct {
	Node int      `json:"node"`
	Keys []string `json:"keys"`
	// SubmitEveryMs is the fixed submission interval. Mutually
	// exclusive with the open-loop knobs below.
	SubmitEveryMs float64 `json:"submitEveryMs"`
	// Count replicates this client on Count consecutive nodes starting
	// at Node (0 and 1 both mean a single client) — scaling the
	// workload is a knob, not a copy-pasted spec block.
	Count int `json:"count,omitempty"`
	// ZipfSkew switches the key choice from round-robin to a Zipf
	// distribution with this exponent over Keys (rank = declaration
	// order: the first key is the hottest). Keys are drawn at build
	// time from a source seeded by the scenario seed and the client
	// node, so the skewed workload is part of the run description —
	// deterministic, and the metrics plane's hot-shard detector has
	// real data to find. 0 keeps the round-robin default.
	ZipfSkew float64 `json:"zipfSkew,omitempty"`
	// Policy is "queue" (default: park exhausted requests, resubmit
	// after a view change or heal) or "fail-fast".
	Policy string `json:"policy,omitempty"`
	// RetryTimeoutMs and MaxRetries override the client defaults.
	RetryTimeoutMs float64 `json:"retryTimeoutMs,omitempty"`
	MaxRetries     int     `json:"maxRetries,omitempty"`
	// Arrival switches the client to the open-loop discipline: instead
	// of one request every SubmitEveryMs, requests arrive on a Poisson
	// schedule at Arrival ops/sec (exponential inter-arrivals on the
	// virtual clock, drawn at build time from a seed derived from the
	// scenario seed and the node — the engine's random stream is never
	// touched). Mutually exclusive with SubmitEveryMs.
	Arrival float64 `json:"arrival,omitempty"`
	// Ramp schedules open-loop arrival-rate changes; setting a ramp
	// (with or without Arrival) selects the open-loop discipline.
	Ramp []RampStepSpec `json:"ramp,omitempty"`
	// HotspotShift rotates the zipf rank→key mapping mid-run. Requires
	// ZipfSkew and the open-loop discipline (a fixed schedule's picker
	// has no notion of time).
	HotspotShift []HotspotShiftSpec `json:"hotspotShift,omitempty"`
}

// openLoop reports whether the client runs the open-loop discipline.
func (cs ShardClientSpec) openLoop() bool {
	return cs.Arrival != 0 || len(cs.Ramp) > 0
}

// loadConfig lowers an open-loop shard client to the load-plane
// configuration that drives one node's client.
func (cs ShardClientSpec) loadConfig(seed int64, node int, horizon vtime.Duration) load.Config {
	cfg := load.Config{
		Name:     fmt.Sprintf("client-n%d", node),
		Mode:     load.Open,
		Rate:     cs.Arrival,
		Keys:     cs.Keys,
		ZipfSkew: cs.ZipfSkew,
		Seed:     seed*1000003 + int64(node),
		End:      vtime.Time(horizon),
	}
	for _, st := range cs.Ramp {
		cfg.Ramp = append(cfg.Ramp, load.RampStep{At: vtime.Time(msd(st.AtMs)), Rate: st.Rate})
	}
	for _, hs := range cs.HotspotShift {
		cfg.HotspotShift = append(cfg.HotspotShift, load.HotspotShift{At: vtime.Time(msd(hs.AtMs)), Shift: hs.Shift})
	}
	return cfg
}

// nodes expands the Count knob to the concrete node list the spec
// places clients on: Count consecutive nodes starting at Node.
func (cs ShardClientSpec) nodes() []int {
	n := cs.Count
	if n < 1 {
		n = 1
	}
	out := make([]int, n)
	for i := range out {
		out[i] = cs.Node + i
	}
	return out
}

// picker returns the key choice for the client's i-th submission.
// With ZipfSkew zero it is the round-robin default; otherwise keys are
// drawn from a Zipf distribution over Keys (declaration order = rank,
// so the first key is the hottest) by inverse-CDF over a local source
// seeded from the scenario seed and the client node. The draw happens
// at build time, while the submission schedule is being laid out, so
// it never touches the engine's random stream.
func (cs ShardClientSpec) picker(seed int64, node int) func(i int) string {
	keys := cs.Keys
	if cs.ZipfSkew == 0 || len(keys) < 2 {
		return func(i int) string { return keys[i%len(keys)] }
	}
	weights := make([]float64, len(keys))
	total := 0.0
	for i := range keys {
		weights[i] = 1 / math.Pow(float64(i+1), cs.ZipfSkew)
		total += weights[i]
	}
	rng := rand.New(rand.NewSource(seed*1000003 + int64(node)))
	return func(int) string {
		u := rng.Float64() * total
		for i, w := range weights {
			u -= w
			if u < 0 {
				return keys[i]
			}
		}
		return keys[len(keys)-1]
	}
}

// TxnClientSpec declares one transaction client of a sharded data
// plane: a bank-transfer workload — every SubmitEveryMs one two-key
// atomic transfer (read both accounts, debit one, credit the other)
// rotating over consecutive Accounts pairs, each transaction carrying
// a relative virtual-time deadline.
type TxnClientSpec struct {
	Node int `json:"node"`
	// Accounts is the keyed account set (at least 2).
	Accounts []string `json:"accounts"`
	// SubmitEveryMs is the submission interval.
	SubmitEveryMs float64 `json:"submitEveryMs"`
	// DeadlineMs is the relative transaction deadline (0 selects the
	// client default): a transaction not committed by its deadline
	// deterministically aborts and releases its locks.
	DeadlineMs float64 `json:"deadlineMs,omitempty"`
	// RetryTimeoutMs and MaxRetries override the submission retry
	// discipline.
	RetryTimeoutMs float64 `json:"retryTimeoutMs,omitempty"`
	MaxRetries     int     `json:"maxRetries,omitempty"`
}

// SessionSpec tunes the data plane's session throughput knobs: op
// batching (per-shard coalescing of client submissions into one wire
// message and one replicated round) and pipelining (several batches in
// flight per shard). On a plane with transaction clients the same
// knobs batch the coordinators' decision log (group commit). All
// three fields are required and must be positive — a partial or
// zeroed block is rejected loudly rather than silently defaulted.
type SessionSpec struct {
	// MaxBatch caps the ops coalesced into one submission (1 = the
	// unbatched legacy discipline).
	MaxBatch int `json:"maxBatch"`
	// FlushIntervalMs bounds how long a partial batch may wait before
	// it is flushed anyway (virtual time).
	FlushIntervalMs float64 `json:"flushIntervalMs"`
	// PipelineDepth caps the batches in flight per shard (1 = stop
	// and wait; the decision log ignores it — decisions complete
	// through the replicated apply stream).
	PipelineDepth int `json:"pipelineDepth"`
}

// ShardsSpec declares a sharded data plane: Count replication groups
// behind a deterministic consistent-hash ring, plus the clients that
// drive it. Each shard is one view-synchronous membership group
// carrying one replicated state machine.
type ShardsSpec struct {
	// Count is the number of shards (>= 1 — zero shards is an error).
	Count int `json:"count"`
	// ReplicasPer sizes each shard's replica set under the consecutive
	// default layout (shard i owns nodes [i·ReplicasPer,(i+1)·ReplicasPer)).
	ReplicasPer int `json:"replicasPer,omitempty"`
	// Groups pins the replica node sets explicitly (len must equal
	// Count; sets must be disjoint — overlapping membership is an error).
	Groups [][]int `json:"groups,omitempty"`
	// Style is "semi-active" (default) or "passive"; "active" has no
	// primary to route to and is rejected.
	Style string `json:"style,omitempty"`
	// VNodes is the ring's virtual-node count per shard (0 = default).
	VNodes int `json:"vnodes,omitempty"`
	// Routes pins keys to shard indices, bypassing the hash; a route
	// to an index outside [0, Count) is an error.
	Routes map[string]int `json:"routes,omitempty"`
	// WExecUs, CheckpointEvery, StorageLatencyUs configure the replicas.
	WExecUs          float64 `json:"wExecUs,omitempty"`
	CheckpointEvery  int     `json:"checkpointEvery,omitempty"`
	StorageLatencyUs float64 `json:"storageLatencyUs,omitempty"`
	// Session, when present, turns on op batching/pipelining for the
	// plane's clients and group commit for its transaction
	// coordinators; omitted means the unbatched legacy discipline. It
	// is rejected on a spec with neither clients nor txns.
	Session *SessionSpec `json:"session,omitempty"`
	// Clients drive the keyed workload.
	Clients []ShardClientSpec `json:"clients,omitempty"`
	// Txns drive a cross-shard atomic-transfer workload (two-phase
	// commit over the shard groups with per-transaction deadlines).
	Txns []TxnClientSpec `json:"txns,omitempty"`
	// Load attaches declarative load generators (open/closed-loop
	// session populations multiplexed over the plane's clients).
	Load []LoadSpec `json:"load,omitempty"`
}

// LoadSpec declares one load generator attached to the sharded data
// plane: a population of simulated client sessions multiplexed
// round-robin over the clients on Nodes (a node with a declared
// client reuses it; one without gets a default client — a transaction
// client for txn workloads). Closed-loop sessions submit, wait for
// the ack, think, and go again; open-loop arrivals come on a
// precomputed Poisson schedule regardless of completions. All
// randomness is drawn from seeds derived from the scenario seed — the
// engine's stream is never touched, so the load plane is behaviorally
// passive: a run with a Disabled generator is identical to one with
// no load block at all.
type LoadSpec struct {
	// Name labels the generator in reports and metric series
	// (load.<name>.offered / load.<name>.acked); names must be unique.
	Name string `json:"name"`
	// Workload is "kv" (single-key writes, the default) or "txn"
	// (two-key atomic transfers between consecutive key pairs). Loads
	// declared in a pubsub block implicitly publish ("pubsub", with
	// Keys naming the target topics).
	Workload string `json:"workload,omitempty"`
	// Mode is "closed" (Sessions submit→ack→think loops, the default)
	// or "open" (Poisson arrivals at Arrival ops/sec).
	Mode string `json:"mode,omitempty"`
	// Nodes lists the client nodes the workload multiplexes over.
	Nodes []int `json:"nodes"`
	// Sessions and ThinkMs parameterise the closed loop: Sessions
	// concurrent sessions, each thinking a uniform draw from
	// [ThinkMs/2, 3·ThinkMs/2] between an ack and the next submission.
	Sessions int     `json:"sessions,omitempty"`
	ThinkMs  float64 `json:"thinkMs,omitempty"`
	// Arrival and Ramp parameterise the open loop (ops/sec).
	Arrival float64        `json:"arrival,omitempty"`
	Ramp    []RampStepSpec `json:"ramp,omitempty"`
	// Keys is the keyspace; declaration order = zipf rank (first key
	// hottest).
	Keys []string `json:"keys"`
	// ZipfSkew skews the key choice; HotspotShift rotates the ranking
	// mid-run (requires a skew).
	ZipfSkew     float64            `json:"zipfSkew,omitempty"`
	HotspotShift []HotspotShiftSpec `json:"hotspotShift,omitempty"`
	// StartMs and EndMs bound the submission window (EndMs 0 = the
	// horizon).
	StartMs float64 `json:"startMs,omitempty"`
	EndMs   float64 `json:"endMs,omitempty"`
	// MaxOps caps total submissions (0 = the generator default).
	MaxOps int `json:"maxOps,omitempty"`
	// Disabled keeps the block in the file but attaches nothing.
	Disabled bool `json:"disabled,omitempty"`
}

// config lowers the spec to the load-plane configuration. The horizon
// bounds the default submission window; the seed (already derived per
// generator) feeds the generator's local random sources.
func (ls LoadSpec) config(seed int64, horizon vtime.Duration) load.Config {
	end := vtime.Time(horizon)
	if ls.EndMs > 0 {
		end = vtime.Time(msd(ls.EndMs))
	}
	cfg := load.Config{
		Name:     ls.Name,
		Sessions: ls.Sessions,
		Think:    msd(ls.ThinkMs),
		Rate:     ls.Arrival,
		Keys:     ls.Keys,
		ZipfSkew: ls.ZipfSkew,
		Seed:     seed,
		Start:    vtime.Time(msd(ls.StartMs)),
		End:      end,
		MaxOps:   ls.MaxOps,
	}
	if ls.Mode == "open" {
		cfg.Mode = load.Open
	}
	if ls.Workload == "txn" {
		cfg.Workload = load.Txn
	}
	if ls.Workload == "pubsub" {
		cfg.Workload = load.Pub
	}
	for _, st := range ls.Ramp {
		cfg.Ramp = append(cfg.Ramp, load.RampStep{At: vtime.Time(msd(st.AtMs)), Rate: st.Rate})
	}
	for _, hs := range ls.HotspotShift {
		cfg.HotspotShift = append(cfg.HotspotShift, load.HotspotShift{At: vtime.Time(msd(hs.AtMs)), Shift: hs.Shift})
	}
	return cfg
}

// loadSeed derives generator i's seed from the scenario seed — a
// distinct stream per generator, disjoint from the client pickers'.
func loadSeed(seed int64, i int) int64 {
	return seed*1000003 + int64(i+1)*104729
}

// ObserveSpec tunes the run's observability plane: causal-trace
// sampling and the monitor event-log retention policy. All fields are
// optional; a malformed value is rejected loudly rather than clamped.
type ObserveSpec struct {
	// TraceSampleRate is the fraction of finished traces retained with
	// full span trees, within [0,1] (violating traces — deadline
	// misses, aborts, omission-hit ops — are always retained
	// regardless). Omitted selects the cluster default (0.1); the
	// builtins pin 1.0 so every exported run is fully walkable.
	// Percentile aggregation observes every trace whatever the rate.
	TraceSampleRate *float64 `json:"traceSampleRate,omitempty"`
	// LogLimit bounds the monitor event log (must be positive; omitted
	// selects the cluster default).
	LogLimit *int `json:"logLimit,omitempty"`
	// RetainViolations switches the log to ring mode: the most recent
	// LogLimit events are kept instead of the first, and violation
	// events are never dropped however far the ring churns.
	RetainViolations bool `json:"retainViolations,omitempty"`
	// Metrics tunes the virtual-time metrics plane (omitted keeps the
	// plane on with its defaults).
	Metrics *MetricsSpec `json:"metrics,omitempty"`
}

// MetricsSpec tunes the metrics plane from the scenario file: the
// scrape interval, the series ring capacity, the key-hotness sketch
// width and the declarative SLO rules. Malformed values are rejected
// loudly at load time rather than clamped.
type MetricsSpec struct {
	// IntervalMs is the virtual-time scrape period (omitted or 0
	// selects the 5ms default).
	IntervalMs float64 `json:"intervalMs,omitempty"`
	// Capacity bounds each series' ring buffer (0 = default 256).
	Capacity int `json:"capacity,omitempty"`
	// TopK bounds the key-hotness sketch (0 = default 16).
	TopK int `json:"topK,omitempty"`
	// Disabled turns the plane off entirely (no instruments, no
	// scrapes, no export).
	Disabled bool `json:"disabled,omitempty"`
	// SLO declares the threshold rules evaluated each interval.
	SLO []SLORuleSpec `json:"slo,omitempty"`
}

// SLORuleSpec is one declarative SLO rule: "stat(metric) op threshold",
// breached after ForIntervals consecutive violating scrape intervals.
// Exactly one of Threshold (raw series units) and ThresholdMs
// (milliseconds, for the nanosecond latency histograms) may be set.
type SLORuleSpec struct {
	Name   string `json:"name"`
	Metric string `json:"metric"`
	// Stat is "value" (counters/gauges; the default), "count", "p50",
	// "p99" or "max" (histograms).
	Stat string `json:"stat,omitempty"`
	// Op is "<=", "<", ">=" or ">": the comparison that should HOLD.
	Op string `json:"op"`
	// Threshold is the bound in the series' raw unit; ThresholdMs the
	// same bound in milliseconds (latency histograms record ns).
	Threshold   float64 `json:"threshold,omitempty"`
	ThresholdMs float64 `json:"thresholdMs,omitempty"`
	// ForIntervals is the consecutive violating intervals before the
	// breach opens (0 and 1 both mean "immediately").
	ForIntervals int `json:"forIntervals,omitempty"`
}

// rule lowers the spec form to the metrics-plane rule.
func (r SLORuleSpec) rule() metrics.Rule {
	stat := r.Stat
	if stat == "" {
		stat = string(metrics.StatValue)
	}
	th := r.Threshold
	if r.ThresholdMs != 0 {
		th = r.ThresholdMs * float64(vtime.Millisecond)
	}
	return metrics.Rule{
		Name: r.Name, Metric: r.Metric, Stat: metrics.Stat(stat),
		Op: metrics.Op(r.Op), Threshold: th, For: r.ForIntervals,
	}
}

// Spec is a full scenario.
type Spec struct {
	Name      string     `json:"name"`
	Nodes     int        `json:"nodes"`
	Seed      int64      `json:"seed"`
	Costs     string     `json:"costs"`     // "default" | "zero"
	Scheduler string     `json:"scheduler"` // "EDF" | "RM" | "DM" | "Spring" | "best-effort"
	Policy    string     `json:"policy"`    // "SRP" | "PCP" | "none"
	HorizonMs float64    `json:"horizonMs"`
	Tasks     []TaskSpec `json:"tasks"`
	// Links declares the topology; empty with Nodes > 1 means a full
	// mesh with the cluster's default bounds.
	Links []LinkSpec `json:"links,omitempty"`
	// Faults schedules deterministic fault injection.
	Faults []FaultSpec `json:"faults,omitempty"`
	// Groups declares membership groups (and replicated machines).
	Groups []GroupSpec `json:"groups,omitempty"`
	// Shards declares a sharded data plane (consistent-hash routing
	// over replication groups with a client request layer).
	Shards *ShardsSpec `json:"shards,omitempty"`
	// PubSub declares a QoS-aware publish-subscribe plane over the
	// sharded data plane (requires Shards).
	PubSub *PubSubSpec `json:"pubsub,omitempty"`
	// Placement overrides node assignments: "task" pins a Spuri task
	// (or every stage of a pipeline), "task/stage" pins one stage.
	Placement map[string]int `json:"placement,omitempty"`
	// Observe tunes trace sampling and event-log retention.
	Observe *ObserveSpec `json:"observe,omitempty"`
}

// Load reads a scenario from a JSON file.
func Load(path string) (Spec, error) {
	var s Spec
	data, err := os.ReadFile(path)
	if err != nil {
		return s, fmt.Errorf("scenario: %w", err)
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("scenario: parsing %s: %w", path, err)
	}
	return s.withDefaults()
}

// Builtin returns a named built-in scenario.
func Builtin(name string) (Spec, error) {
	s, ok := builtins[name]
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown builtin %q (have %v)", name, BuiltinNames())
	}
	return s.withDefaults()
}

// BuiltinNames lists the catalogue.
func BuiltinNames() []string {
	return []string{"spuri-example", "inversion", "overload", "distributed-pipeline", "membership-churn", "partition-split", "sharded-kv", "bank-transfer", "hot-shard", "load-ramp", "sensor-fan-out"}
}

var builtins = map[string]Spec{
	// The §5 running example: three sporadic tasks sharing S under
	// EDF+SRP.
	"spuri-example": {
		Name: "spuri-example", Nodes: 1, Seed: 1, Costs: "default",
		Scheduler: "EDF", Policy: "SRP", HorizonMs: 500,
		Tasks: []TaskSpec{
			{Name: "tau1", CBeforeUs: 300, CSUs: 200, CAfterUs: 500, Resource: "S", DeadlineMs: 5, PeriodMs: 10},
			{Name: "tau2", CBeforeUs: 800, CSUs: 400, CAfterUs: 800, Resource: "S", DeadlineMs: 12, PeriodMs: 20},
			{Name: "tau3", CBeforeUs: 2000, CSUs: 0, CAfterUs: 0, DeadlineMs: 40, PeriodMs: 50},
		},
	},
	// The canonical priority-inversion workload (experiment X2).
	"inversion": {
		Name: "inversion", Nodes: 1, Seed: 1, Costs: "default",
		Scheduler: "DM", Policy: "SRP", HorizonMs: 500,
		Tasks: []TaskSpec{
			{Name: "low", CBeforeUs: 0, CSUs: 8000, CAfterUs: 0, Resource: "R", DeadlineMs: 45, PeriodMs: 50},
			{Name: "mid", CBeforeUs: 15000, CSUs: 0, CAfterUs: 0, DeadlineMs: 40, PeriodMs: 50},
			{Name: "high", CBeforeUs: 0, CSUs: 1000, CAfterUs: 0, Resource: "R", DeadlineMs: 20, PeriodMs: 50},
		},
	},
	// A deliberately overloaded set: misses expected.
	"overload": {
		Name: "overload", Nodes: 1, Seed: 1, Costs: "default",
		Scheduler: "EDF", Policy: "SRP", HorizonMs: 300,
		Tasks: []TaskSpec{
			{Name: "a", CBeforeUs: 6000, CSUs: 0, CAfterUs: 0, DeadlineMs: 10, PeriodMs: 10},
			{Name: "b", CBeforeUs: 6000, CSUs: 0, CAfterUs: 0, DeadlineMs: 10, PeriodMs: 10},
		},
	},
	// A three-node sensing pipeline over explicit bounded-delay links,
	// with a deterministic omission fault on the remote precedence
	// port: the distributed-and-faulty workload as pure data.
	"distributed-pipeline": {
		Name: "distributed-pipeline", Nodes: 3, Seed: 1, Costs: "default",
		Scheduler: "EDF", Policy: "none", HorizonMs: 500,
		Links: []LinkSpec{
			{A: 0, B: 1, DMinUs: 100, DMaxUs: 250},
			{A: 1, B: 2, DMinUs: 150, DMaxUs: 400},
			{A: 0, B: 2, DMinUs: 100, DMaxUs: 300},
		},
		Faults: []FaultSpec{
			{Kind: "drop-every", K: 25, Port: "heug.prec"},
		},
		Tasks: []TaskSpec{
			{Name: "acquire", Law: "periodic", DeadlineMs: 18, PeriodMs: 20,
				Stages: []StageSpec{
					{Name: "sample", Node: 0, WCETUs: 400},
					{Name: "fuse", Node: 1, WCETUs: 900},
					{Name: "commit", Node: 2, WCETUs: 300},
				}},
			{Name: "watchdog", Law: "periodic", DeadlineMs: 50, PeriodMs: 50,
				Stages: []StageSpec{
					{Name: "check", Node: 1, WCETUs: 600},
				}},
		},
	},
	// Partition split: the primary of a passive replicated state
	// machine is cut off from the rest of the cluster (a network
	// segmentation, not a crash). The majority side holds quorum of
	// the previous view, installs the removal view and promotes a new
	// primary; the isolated minority installs nothing and promotes
	// nothing (split-brain safety). At heal the minority is
	// re-admitted through a merge view with a state transfer, and
	// in-flight old-view traffic is flushed at the boundary.
	"partition-split": {
		Name: "partition-split", Nodes: 4, Seed: 1, Costs: "default",
		Scheduler: "EDF", Policy: "none", HorizonMs: 400,
		Groups: []GroupSpec{
			{Name: "sm", Nodes: []int{0, 1, 2}, Style: "passive",
				CheckpointEvery: 5, SubmitEveryMs: 2, SubmitFrom: 3},
		},
		Faults: []FaultSpec{
			// The client (node 3) stays with the majority side.
			{Kind: "partition", Partition: [][]int{{0}, {1, 2, 3}}, AtMs: 60, HealMs: 200},
		},
		Tasks: []TaskSpec{
			{Name: "watchdog", Law: "periodic", DeadlineMs: 40, PeriodMs: 50,
				Stages: []StageSpec{
					{Name: "check", Node: 3, WCETUs: 300},
				}},
		},
	},
	// Sharded KV: a keyspace consistent-hashed over two semi-active
	// replication groups, driven by a client that survives a primary
	// crash on one shard AND a primary partition on the other — the
	// request layer redirects to promoted replicas, retries through
	// the failover windows, and queued split-window requests land
	// after the merge, applied exactly once (per-key linearizability
	// is asserted by the scenario test across seeds). The client stays
	// on the majority side of the split (the fencing caveat).
	"sharded-kv": {
		Name: "sharded-kv", Nodes: 7, Seed: 1, Costs: "default",
		Scheduler: "EDF", Policy: "none", HorizonMs: 400,
		Observe: &ObserveSpec{TraceSampleRate: fptr(1.0), RetainViolations: true},
		Shards: &ShardsSpec{
			Count: 2, ReplicasPer: 3, Style: "semi-active",
			Session: &SessionSpec{MaxBatch: 4, FlushIntervalMs: 0.5, PipelineDepth: 2},
			Clients: []ShardClientSpec{
				{Node: 6, SubmitEveryMs: 2, Policy: "queue",
					Keys: []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}},
			},
		},
		Faults: []FaultSpec{
			// Shard 0's primary crashes and later rejoins.
			{Kind: "crash", Node: 0, AtMs: 60, RecoverMs: 260},
			// Shard 1's primary is segmented off alone; the client
			// (node 6) stays with the majority.
			{Kind: "partition", Partition: [][]int{{3}, {0, 1, 2, 4, 5, 6}}, AtMs: 140, HealMs: 240},
		},
		Tasks: []TaskSpec{
			{Name: "watchdog", Law: "periodic", DeadlineMs: 40, PeriodMs: 50,
				Stages: []StageSpec{
					{Name: "check", Node: 6, WCETUs: 300},
				}},
		},
	},
	// Bank transfer: cross-shard atomic transactions (2PC over the
	// sharded data plane) under a combined primary crash AND a
	// partition that segments one shard's serving quorum away from the
	// clients. Two transaction clients transfer between shared accounts
	// spread over both shards, every transaction carrying a 30 ms
	// deadline: transfers that cannot prepare across the fault windows
	// deterministically abort and release their locks; the rest commit
	// atomically. The scenario test asserts, across seeds, that
	// committed transfers are all-or-nothing in both shards'
	// authoritative histories, aborted ones leave no partial writes,
	// and no lock outlives its deadline (txn.Verify).
	"bank-transfer": {
		Name: "bank-transfer", Nodes: 8, Seed: 1, Costs: "default",
		Scheduler: "EDF", Policy: "none", HorizonMs: 400,
		Observe: &ObserveSpec{TraceSampleRate: fptr(1.0), RetainViolations: true},
		Shards: &ShardsSpec{
			Count: 2, ReplicasPer: 3, Style: "semi-active",
			Session: &SessionSpec{MaxBatch: 4, FlushIntervalMs: 0.5, PipelineDepth: 2},
			Txns: []TxnClientSpec{
				{Node: 6, SubmitEveryMs: 3, DeadlineMs: 30,
					Accounts: []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}},
				{Node: 7, SubmitEveryMs: 4, DeadlineMs: 30,
					Accounts: []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}},
			},
		},
		Faults: []FaultSpec{
			// Shard 0's primary crashes and later rejoins.
			{Kind: "crash", Node: 0, AtMs: 60, RecoverMs: 260},
			// Shard 1's serving quorum {3,4} is segmented away from the
			// clients (its primary keeps quorum on the far side, so no
			// failover rescues client-side traffic): transactions
			// touching shard 1 can only deadline-abort until the heal.
			{Kind: "partition", Partition: [][]int{{3, 4}, {0, 1, 2, 5, 6, 7}}, AtMs: 140, HealMs: 240},
		},
		Tasks: []TaskSpec{
			{Name: "watchdog", Law: "periodic", DeadlineMs: 40, PeriodMs: 50,
				Stages: []StageSpec{
					{Name: "check", Node: 6, WCETUs: 300},
				}},
		},
	},

	// Hot shard: two zipf-skewed clients hammer a keyspace whose
	// hottest key is pinned to shard 0, whose primary then crashes —
	// the metrics plane's per-key sketch names the hot key, the
	// per-shard counters show the load imbalance, and the ack-latency
	// SLO probe records a breach that opens in the failover window and
	// clears after recovery. The companion scenario test and
	// `hades-metrics -top` both read the answer from the export.
	"hot-shard": {
		Name: "hot-shard", Nodes: 8, Seed: 1, Costs: "default",
		Scheduler: "EDF", Policy: "none", HorizonMs: 400,
		Observe: &ObserveSpec{
			TraceSampleRate: fptr(1.0), RetainViolations: true,
			Metrics: &MetricsSpec{
				SLO: []SLORuleSpec{
					// Healthy p99 sits near 1.3ms; the failover burst acks
					// a ~10ms backlog inside one scrape interval, so the
					// rule trips immediately and clears next interval.
					{Name: "ack-p99", Metric: "kv.ack.latency", Stat: "p99",
						Op: "<=", ThresholdMs: 5},
					{Name: "no-drops", Metric: "net.drops", Op: "<=", Threshold: 0},
				},
			},
		},
		Shards: &ShardsSpec{
			Count: 2, ReplicasPer: 3, Style: "semi-active",
			Session: &SessionSpec{MaxBatch: 4, FlushIntervalMs: 0.5, PipelineDepth: 2},
			// Pin the hot head of the zipf ranking to shard 0, the one
			// whose primary crashes below.
			Routes: map[string]int{"alpha": 0},
			Clients: []ShardClientSpec{
				{Node: 6, Count: 2, SubmitEveryMs: 2, Policy: "queue", ZipfSkew: 1.2,
					Keys: []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}},
			},
		},
		Faults: []FaultSpec{
			// The hot shard's primary crashes and later rejoins: ack
			// latency spikes through the failover window.
			{Kind: "crash", Node: 0, AtMs: 60, RecoverMs: 260},
		},
		Tasks: []TaskSpec{
			{Name: "watchdog", Law: "periodic", DeadlineMs: 40, PeriodMs: 50,
				Stages: []StageSpec{
					{Name: "check", Node: 6, WCETUs: 300},
				}},
		},
	},

	// Load ramp: the load harness as data. An open-loop generator's
	// Poisson arrival rate climbs mid-run while a hotspot shift moves
	// the zipf-hot key from "alpha" (pinned to shard 0) to the next
	// rank (hashed to shard 1) — the offered-vs-achieved throughput
	// series records the ramp, the hot-shard sketch records the move.
	// A second, closed-loop generator keeps a fixed session population
	// thinking between acks on the other client node. The per-run
	// report (hades-load) distills both.
	"load-ramp": {
		Name: "load-ramp", Nodes: 8, Seed: 1, Costs: "default",
		Scheduler: "EDF", Policy: "none", HorizonMs: 400,
		Observe: &ObserveSpec{TraceSampleRate: fptr(1.0), RetainViolations: true},
		Shards: &ShardsSpec{
			Count: 2, ReplicasPer: 3, Style: "semi-active",
			Session: &SessionSpec{MaxBatch: 4, FlushIntervalMs: 0.5, PipelineDepth: 2},
			// Pin the zipf head to shard 0 so the mid-run shift to the
			// next rank provably changes the serving shard.
			Routes: map[string]int{"alpha": 0, "bravo": 1},
			Load: []LoadSpec{
				{Name: "ramp", Mode: "open", Nodes: []int{6},
					Arrival: 400,
					Ramp: []RampStepSpec{
						{AtMs: 150, Rate: 1200},
						{AtMs: 320, Rate: 600},
					},
					ZipfSkew:     1.2,
					HotspotShift: []HotspotShiftSpec{{AtMs: 200, Shift: 1}},
					Keys:         []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}},
				{Name: "think", Mode: "closed", Nodes: []int{7},
					Sessions: 16, ThinkMs: 5,
					Keys: []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}},
			},
		},
		Tasks: []TaskSpec{
			{Name: "watchdog", Law: "periodic", DeadlineMs: 40, PeriodMs: 50,
				Stages: []StageSpec{
					{Name: "check", Node: 6, WCETUs: 300},
				}},
		},
	},

	// Sensor fan-out: the pub/sub plane under fan-out, a bursty
	// best-effort storm and a crash of the durable topic's owning
	// primary. "telemetry" is reliable+durable (history 8, 30ms
	// deadline): a fixed-rate publisher feeds four from-start
	// subscribers plus a late joiner that catches up from the
	// replicated history after the crashed primary has rejoined —
	// exactly-once delivery and convergence to the last 8 samples are
	// asserted by the scenario test across seeds. "sensors" is
	// best-effort: an open-loop generator storms it from two nodes
	// (publish latency = broadcast delivery, never a replicated round),
	// and every deadline miss on telemetry surfaces as a monitor
	// violation.
	"sensor-fan-out": {
		Name: "sensor-fan-out", Nodes: 8, Seed: 1, Costs: "default",
		Scheduler: "EDF", Policy: "none", HorizonMs: 1000,
		Observe: &ObserveSpec{TraceSampleRate: fptr(1.0), RetainViolations: true},
		Shards: &ShardsSpec{
			Count: 2, ReplicasPer: 3, Style: "semi-active",
			// Pin the durable topic to shard 0 (whose primary crashes
			// below) and the best-effort topic to shard 1.
			Routes: map[string]int{"telemetry": 0, "sensors": 1},
		},
		PubSub: &PubSubSpec{
			Topics: []TopicSpec{
				// The 10ms deadline clears the healthy path (p50 ≈ 0.8ms)
				// but not the failover window: the crash below produces
				// real DeadlineMiss events for the monitor plane.
				{Name: "telemetry", Reliability: "reliable", DeadlineMs: 10, HistoryDepth: 8, Durable: true},
				{Name: "sensors", Reliability: "bestEffort"},
			},
			Publishers: []PublisherSpec{
				{Topic: "telemetry", Node: 6, SubmitEveryMs: 2, Count: 300},
			},
			Subscribers: []SubscriberSpec{
				{Topic: "telemetry", Node: 3},
				{Topic: "telemetry", Node: 4},
				{Topic: "telemetry", Node: 5},
				{Topic: "telemetry", Node: 7},
				// Joins after the publisher went quiet and the crashed
				// primary rejoined: converges to the last 8 samples.
				{Topic: "telemetry", Node: 6, JoinAtMs: 700},
				{Topic: "sensors", Node: 1},
				{Topic: "sensors", Node: 2},
				{Topic: "sensors", Node: 7},
			},
			Load: []LoadSpec{
				// Each broadcast floods F+1 rounds to every node, so the
				// burst rate is sized to keep the receive CPUs below
				// saturation (≈8 flood copies per node per publish).
				{Name: "storm", Mode: "open", Nodes: []int{6, 7},
					Arrival: 300, EndMs: 800,
					Ramp: []RampStepSpec{
						{AtMs: 400, Rate: 1000},
						{AtMs: 550, Rate: 200},
					},
					Keys: []string{"sensors"}},
			},
		},
		Faults: []FaultSpec{
			// The durable topic's owning primary crashes mid-publish and
			// rejoins with a state transfer carrying the history ring.
			{Kind: "crash", Node: 0, AtMs: 300, RecoverMs: 600},
		},
		Tasks: []TaskSpec{
			{Name: "watchdog", Law: "periodic", DeadlineMs: 40, PeriodMs: 50,
				Stages: []StageSpec{
					{Name: "check", Node: 7, WCETUs: 300},
				}},
		},
	},

	// Membership churn: a passive replicated state machine over a
	// three-member view-synchronous group, fed by a client on node 3;
	// the primary crashes mid-run and recovers later, exercising the
	// whole cycle — suspicion → agreed view change → failover in the
	// same view at every replica → rejoin with state transfer.
	"membership-churn": {
		Name: "membership-churn", Nodes: 4, Seed: 1, Costs: "default",
		Scheduler: "EDF", Policy: "none", HorizonMs: 400,
		Groups: []GroupSpec{
			{Name: "sm", Nodes: []int{0, 1, 2}, Style: "passive",
				CheckpointEvery: 5, SubmitEveryMs: 2, SubmitFrom: 3},
		},
		Faults: []FaultSpec{
			// Crash mid-checkpoint-interval so the passive style shows
			// its characteristic lost work.
			{Kind: "crash", Node: 0, AtMs: 65, RecoverMs: 200},
		},
		Tasks: []TaskSpec{
			{Name: "watchdog", Law: "periodic", DeadlineMs: 40, PeriodMs: 50,
				Stages: []StageSpec{
					{Name: "check", Node: 3, WCETUs: 300},
				}},
		},
	},
}

func (s Spec) withDefaults() (Spec, error) {
	if s.Nodes <= 0 {
		s.Nodes = 1
	}
	if s.Scheduler == "" {
		s.Scheduler = "EDF"
	}
	if s.HorizonMs <= 0 {
		s.HorizonMs = 500
	}
	if len(s.Tasks) == 0 && len(s.Groups) == 0 && s.Shards == nil {
		return s, fmt.Errorf("scenario %q has no tasks, no groups and no shards", s.Name)
	}
	for i, t := range s.Tasks {
		if t.Name == "" {
			return s, fmt.Errorf("scenario %q: task %d unnamed", s.Name, i)
		}
		if t.PeriodMs <= 0 || t.DeadlineMs <= 0 {
			return s, fmt.Errorf("scenario %q: task %q needs positive period and deadline", s.Name, t.Name)
		}
		if len(t.Stages) > 0 && t.CBeforeUs+t.CSUs+t.CAfterUs > 0 {
			return s, fmt.Errorf("scenario %q: task %q mixes stages with cBefore/cs/cAfter", s.Name, t.Name)
		}
		for j, st := range t.Stages {
			if st.Name == "" {
				return s, fmt.Errorf("scenario %q: task %q stage %d unnamed", s.Name, t.Name, j)
			}
			if st.WCETUs <= 0 {
				return s, fmt.Errorf("scenario %q: task %q stage %q needs positive wcet", s.Name, t.Name, st.Name)
			}
			if st.Node < 0 || st.Node >= s.Nodes {
				return s, fmt.Errorf("scenario %q: task %q stage %q on unknown node %d (have %d)", s.Name, t.Name, st.Name, st.Node, s.Nodes)
			}
		}
	}
	for _, l := range s.Links {
		if l.A < 0 || l.A >= s.Nodes || l.B < 0 || l.B >= s.Nodes || l.A == l.B {
			return s, fmt.Errorf("scenario %q: bad link %d-%d (nodes=%d)", s.Name, l.A, l.B, s.Nodes)
		}
		if l.DMinUs < 0 || l.DMaxUs < l.DMinUs {
			return s, fmt.Errorf("scenario %q: link %d-%d has bad delay bounds [%g,%g]", s.Name, l.A, l.B, l.DMinUs, l.DMaxUs)
		}
	}
	if len(s.Faults) > 0 && s.Nodes < 2 && len(s.Links) == 0 {
		return s, fmt.Errorf("scenario %q: faults need a network (nodes > 1 or links)", s.Name)
	}
	for _, f := range s.Faults {
		if f.AtMs < 0 {
			return s, fmt.Errorf("scenario %q: %s fault at negative instant %gms", s.Name, f.Kind, f.AtMs)
		}
		switch f.Kind {
		case "drop-every":
			if f.K < 1 {
				return s, fmt.Errorf("scenario %q: drop-every fault needs k >= 1 (got %d)", s.Name, f.K)
			}
		case "drop-from", "crash":
			if f.Node < 0 || f.Node >= s.Nodes {
				return s, fmt.Errorf("scenario %q: %s fault on unknown node %d (have %d)", s.Name, f.Kind, f.Node, s.Nodes)
			}
			if f.Kind == "crash" && f.RecoverMs != 0 && f.RecoverMs <= f.AtMs {
				return s, fmt.Errorf("scenario %q: crash of node %d recovers at %gms, not after the crash at %gms", s.Name, f.Node, f.RecoverMs, f.AtMs)
			}
		case "random":
			if f.DropProb < 0 || f.DelayProb < 0 || f.DropProb+f.DelayProb > 1 {
				return s, fmt.Errorf("scenario %q: random fault needs probabilities in [0,1] with dropProb+delayProb <= 1", s.Name)
			}
		case "partition":
			if len(f.Partition) < 2 {
				return s, fmt.Errorf("scenario %q: partition fault needs at least 2 sides (got %d)", s.Name, len(f.Partition))
			}
			seen := map[int]bool{}
			for _, side := range f.Partition {
				if len(side) == 0 {
					return s, fmt.Errorf("scenario %q: partition fault has an empty side", s.Name)
				}
				for _, n := range side {
					if n < 0 || n >= s.Nodes {
						return s, fmt.Errorf("scenario %q: partition side names unknown node %d (have %d)", s.Name, n, s.Nodes)
					}
					if seen[n] {
						return s, fmt.Errorf("scenario %q: partition lists node %d in two sides", s.Name, n)
					}
					seen[n] = true
				}
			}
			if f.HealMs != 0 && f.HealMs <= f.AtMs {
				return s, fmt.Errorf("scenario %q: partition heals at %gms, not after the split at %gms", s.Name, f.HealMs, f.AtMs)
			}
		default:
			return s, fmt.Errorf("scenario %q: unknown fault kind %q", s.Name, f.Kind)
		}
	}
	groupNames := map[string]bool{}
	for _, g := range s.Groups {
		if g.Name == "" {
			return s, fmt.Errorf("scenario %q: unnamed group", s.Name)
		}
		if groupNames[g.Name] {
			return s, fmt.Errorf("scenario %q: duplicate group %q", s.Name, g.Name)
		}
		groupNames[g.Name] = true
		if s.Nodes < 2 && len(s.Links) == 0 {
			return s, fmt.Errorf("scenario %q: group %q needs a network (nodes > 1 or links)", s.Name, g.Name)
		}
		if len(g.Nodes) < 2 {
			return s, fmt.Errorf("scenario %q: group %q needs at least 2 nodes", s.Name, g.Name)
		}
		members := map[int]bool{}
		for _, n := range g.Nodes {
			if n < 0 || n >= s.Nodes {
				return s, fmt.Errorf("scenario %q: group %q member %d unknown (have %d nodes)", s.Name, g.Name, n, s.Nodes)
			}
			if members[n] {
				return s, fmt.Errorf("scenario %q: group %q lists member %d twice", s.Name, g.Name, n)
			}
			members[n] = true
		}
		switch g.Style {
		case "", "passive", "semi-active", "active":
		default:
			return s, fmt.Errorf("scenario %q: group %q has unknown style %q", s.Name, g.Name, g.Style)
		}
		if g.Style == "" && g.SubmitEveryMs > 0 {
			return s, fmt.Errorf("scenario %q: group %q submits requests but has no replication style", s.Name, g.Name)
		}
		for _, r := range g.Replicas {
			found := false
			for _, n := range g.Nodes {
				if n == r {
					found = true
					break
				}
			}
			if !found {
				return s, fmt.Errorf("scenario %q: group %q replica %d not a member", s.Name, g.Name, r)
			}
		}
		if g.SubmitFrom < 0 || g.SubmitFrom >= s.Nodes {
			return s, fmt.Errorf("scenario %q: group %q submits from unknown node %d", s.Name, g.Name, g.SubmitFrom)
		}
	}
	if err := s.validateShards(); err != nil {
		return s, err
	}
	// Load-generator names key metric series and report rows, so they
	// must be unique across the shards, groups and pubsub blocks.
	loadNames := map[string]bool{}
	if s.Shards != nil {
		for _, ls := range s.Shards.Load {
			loadNames[ls.Name] = true
		}
	}
	if err := s.validateGroupLoads(loadNames); err != nil {
		return s, err
	}
	if err := s.validatePubSub(loadNames); err != nil {
		return s, err
	}
	if o := s.Observe; o != nil {
		if o.TraceSampleRate != nil && (*o.TraceSampleRate < 0 || *o.TraceSampleRate > 1) {
			return s, fmt.Errorf("scenario %q: observe traceSampleRate must be within [0,1] (got %g)", s.Name, *o.TraceSampleRate)
		}
		if o.LogLimit != nil && *o.LogLimit <= 0 {
			return s, fmt.Errorf("scenario %q: observe logLimit must be positive (got %d)", s.Name, *o.LogLimit)
		}
		if m := o.Metrics; m != nil {
			if m.IntervalMs < 0 {
				return s, fmt.Errorf("scenario %q: observe metrics intervalMs must not be negative (got %g)", s.Name, m.IntervalMs)
			}
			if m.Capacity < 0 {
				return s, fmt.Errorf("scenario %q: observe metrics capacity must not be negative (got %d)", s.Name, m.Capacity)
			}
			if m.TopK < 0 {
				return s, fmt.Errorf("scenario %q: observe metrics topK must not be negative (got %d)", s.Name, m.TopK)
			}
			if m.Disabled && len(m.SLO) > 0 {
				return s, fmt.Errorf("scenario %q: observe metrics declares %d slo rules but the plane is disabled", s.Name, len(m.SLO))
			}
			for i, r := range m.SLO {
				if r.Threshold != 0 && r.ThresholdMs != 0 {
					return s, fmt.Errorf("scenario %q: slo rule %d (%q) sets both threshold and thresholdMs", s.Name, i, r.Name)
				}
				if r.ForIntervals < 0 {
					return s, fmt.Errorf("scenario %q: slo rule %d (%q) has negative forIntervals %d", s.Name, i, r.Name, r.ForIntervals)
				}
				if err := r.rule().Validate(); err != nil {
					return s, fmt.Errorf("scenario %q: slo rule %d: %v", s.Name, i, err)
				}
			}
		}
	}
	for key, node := range s.Placement {
		if node < 0 || node >= s.Nodes {
			return s, fmt.Errorf("scenario %q: placement %q on unknown node %d (have %d)", s.Name, key, node, s.Nodes)
		}
		if !s.placementKeyKnown(key) {
			return s, fmt.Errorf("scenario %q: placement %q names no task or task/stage", s.Name, key)
		}
	}
	return s, nil
}

// validateShards rejects malformed sharded-data-plane specs with loud
// errors: zero shards, overlapping replica sets, keys routed to
// undeclared groups, colliding or out-of-range clients.
func (s Spec) validateShards() error {
	sp := s.Shards
	if sp == nil {
		return nil
	}
	if s.Nodes < 2 && len(s.Links) == 0 {
		return fmt.Errorf("scenario %q: shards need a network (nodes > 1 or links)", s.Name)
	}
	if sp.Count < 1 {
		return fmt.Errorf("scenario %q: shards spec declares zero shards (count=%d)", s.Name, sp.Count)
	}
	switch sp.Style {
	case "", "semi-active", "passive":
	case "active":
		return fmt.Errorf("scenario %q: shard style \"active\" has no primary to route to", s.Name)
	default:
		return fmt.Errorf("scenario %q: unknown shard style %q", s.Name, sp.Style)
	}
	owner := map[int]int{} // node → shard index
	if len(sp.Groups) > 0 {
		if len(sp.Groups) != sp.Count {
			return fmt.Errorf("scenario %q: shards declare count=%d but %d explicit groups", s.Name, sp.Count, len(sp.Groups))
		}
		for i, g := range sp.Groups {
			if len(g) < 2 {
				return fmt.Errorf("scenario %q: shard group %d needs at least 2 replicas (got %d)", s.Name, i, len(g))
			}
			for _, n := range g {
				if n < 0 || n >= s.Nodes {
					return fmt.Errorf("scenario %q: shard group %d names unknown node %d (have %d)", s.Name, i, n, s.Nodes)
				}
				if prev, dup := owner[n]; dup {
					return fmt.Errorf("scenario %q: node %d is a replica of shard groups %d and %d (overlapping group membership)", s.Name, n, prev, i)
				}
				owner[n] = i
			}
		}
	} else {
		if sp.ReplicasPer < 2 {
			return fmt.Errorf("scenario %q: shards need replicasPer >= 2 (got %d)", s.Name, sp.ReplicasPer)
		}
		if need := sp.Count * sp.ReplicasPer; need > s.Nodes {
			return fmt.Errorf("scenario %q: %d shards × %d replicas need %d nodes, have %d", s.Name, sp.Count, sp.ReplicasPer, need, s.Nodes)
		}
		for i := 0; i < sp.Count; i++ {
			for r := 0; r < sp.ReplicasPer; r++ {
				owner[i*sp.ReplicasPer+r] = i
			}
		}
	}
	for key, idx := range sp.Routes {
		if idx < 0 || idx >= sp.Count {
			return fmt.Errorf("scenario %q: key %q routed to undeclared shard group %d (have %d)", s.Name, key, idx, sp.Count)
		}
	}
	if se := sp.Session; se != nil {
		if len(sp.Clients) == 0 && len(sp.Txns) == 0 && len(sp.Load) == 0 {
			return fmt.Errorf("scenario %q: session knobs on a shards spec with no clients, txns or load (nothing to batch)", s.Name)
		}
		if se.MaxBatch < 1 {
			return fmt.Errorf("scenario %q: session maxBatch must be >= 1 (got %d)", s.Name, se.MaxBatch)
		}
		if se.FlushIntervalMs <= 0 {
			return fmt.Errorf("scenario %q: session flushIntervalMs must be positive (got %g)", s.Name, se.FlushIntervalMs)
		}
		if se.PipelineDepth < 1 {
			return fmt.Errorf("scenario %q: session pipelineDepth must be >= 1 (got %d)", s.Name, se.PipelineDepth)
		}
	}
	clientNodes := map[int]bool{}
	for i, cl := range sp.Clients {
		if cl.Count < 0 {
			return fmt.Errorf("scenario %q: shard client %d has negative count %d", s.Name, i, cl.Count)
		}
		if cl.ZipfSkew < 0 {
			return fmt.Errorf("scenario %q: shard client %d has negative zipfSkew %g", s.Name, i, cl.ZipfSkew)
		}
		for _, node := range cl.nodes() {
			if node < 0 || node >= s.Nodes {
				return fmt.Errorf("scenario %q: shard client %d on unknown node %d (have %d)", s.Name, i, node, s.Nodes)
			}
			if _, replica := owner[node]; replica {
				return fmt.Errorf("scenario %q: shard client %d on node %d collides with a shard replica", s.Name, i, node)
			}
			if clientNodes[node] {
				return fmt.Errorf("scenario %q: two shard clients on node %d", s.Name, node)
			}
			clientNodes[node] = true
		}
		if len(cl.Keys) == 0 {
			return fmt.Errorf("scenario %q: shard client %d has no keys", s.Name, i)
		}
		if cl.openLoop() {
			if cl.SubmitEveryMs != 0 {
				return fmt.Errorf("scenario %q: shard client %d mixes submitEveryMs with the open-loop arrival knobs (pick one discipline)", s.Name, i)
			}
			if err := cl.loadConfig(1, cl.Node, s.Horizon()).Validate(); err != nil {
				return fmt.Errorf("scenario %q: shard client %d: %v", s.Name, i, err)
			}
		} else {
			if len(cl.HotspotShift) > 0 {
				return fmt.Errorf("scenario %q: shard client %d sets hotspotShift without an open-loop arrival (a fixed schedule cannot shift)", s.Name, i)
			}
			if cl.SubmitEveryMs <= 0 {
				return fmt.Errorf("scenario %q: shard client %d needs a positive submitEveryMs", s.Name, i)
			}
		}
		switch cl.Policy {
		case "", "queue", "fail-fast":
		default:
			return fmt.Errorf("scenario %q: shard client %d has unknown policy %q", s.Name, i, cl.Policy)
		}
		if cl.RetryTimeoutMs < 0 || cl.MaxRetries < 0 {
			return fmt.Errorf("scenario %q: shard client %d has negative retry parameters", s.Name, i)
		}
	}
	for i, tc := range sp.Txns {
		if tc.Node < 0 || tc.Node >= s.Nodes {
			return fmt.Errorf("scenario %q: txn client %d on unknown node %d (have %d)", s.Name, i, tc.Node, s.Nodes)
		}
		if _, replica := owner[tc.Node]; replica {
			return fmt.Errorf("scenario %q: txn client %d on node %d collides with a shard replica", s.Name, i, tc.Node)
		}
		if clientNodes[tc.Node] {
			return fmt.Errorf("scenario %q: two clients on node %d", s.Name, tc.Node)
		}
		clientNodes[tc.Node] = true
		if len(tc.Accounts) < 2 {
			return fmt.Errorf("scenario %q: txn client %d needs at least 2 accounts (got %d)", s.Name, i, len(tc.Accounts))
		}
		if tc.SubmitEveryMs <= 0 {
			return fmt.Errorf("scenario %q: txn client %d needs a positive submitEveryMs", s.Name, i)
		}
		if tc.DeadlineMs < 0 || tc.RetryTimeoutMs < 0 || tc.MaxRetries < 0 {
			return fmt.Errorf("scenario %q: txn client %d has negative timing parameters", s.Name, i)
		}
	}
	loadNames := map[string]bool{}
	for i, ls := range sp.Load {
		if ls.Name == "" {
			return fmt.Errorf("scenario %q: load %d unnamed", s.Name, i)
		}
		if loadNames[ls.Name] {
			return fmt.Errorf("scenario %q: duplicate load %q (metric series would collide)", s.Name, ls.Name)
		}
		loadNames[ls.Name] = true
		switch ls.Mode {
		case "", "closed", "open":
		default:
			return fmt.Errorf("scenario %q: load %q has unknown mode %q (want closed or open)", s.Name, ls.Name, ls.Mode)
		}
		switch ls.Workload {
		case "", "kv", "txn":
		default:
			return fmt.Errorf("scenario %q: load %q has unknown workload %q (want kv or txn; pubsub loads live in the pubsub block)", s.Name, ls.Name, ls.Workload)
		}
		if len(ls.Nodes) == 0 {
			return fmt.Errorf("scenario %q: load %q names no client nodes", s.Name, ls.Name)
		}
		seen := map[int]bool{}
		for _, n := range ls.Nodes {
			if n < 0 || n >= s.Nodes {
				return fmt.Errorf("scenario %q: load %q on unknown node %d (have %d)", s.Name, ls.Name, n, s.Nodes)
			}
			if _, replica := owner[n]; replica {
				return fmt.Errorf("scenario %q: load %q on node %d collides with a shard replica", s.Name, ls.Name, n)
			}
			if seen[n] {
				return fmt.Errorf("scenario %q: load %q lists node %d twice", s.Name, ls.Name, n)
			}
			seen[n] = true
		}
		if ls.StartMs < 0 || ls.EndMs < 0 {
			return fmt.Errorf("scenario %q: load %q has a negative window bound [%gms, %gms]", s.Name, ls.Name, ls.StartMs, ls.EndMs)
		}
		if err := ls.config(1, s.Horizon()).Validate(); err != nil {
			return fmt.Errorf("scenario %q: %v", s.Name, err)
		}
	}
	return nil
}

// placementKeyKnown reports whether key names a task ("task") or one
// of its stages ("task/stage").
func (s Spec) placementKeyKnown(key string) bool {
	for _, t := range s.Tasks {
		if key == t.Name {
			return true
		}
		for _, st := range t.Stages {
			if key == t.Name+"/"+st.Name {
				return true
			}
		}
	}
	return false
}

// fptr lifts a literal into the optional-field pointer form.
func fptr(f float64) *float64 { return &f }

func us(f float64) vtime.Duration { return vtime.Duration(f * float64(vtime.Microsecond)) }
func msd(f float64) vtime.Duration {
	return vtime.Duration(f * float64(vtime.Millisecond))
}

// Spuri converts a non-staged task spec to the §5.1 model.
func (t TaskSpec) Spuri() heug.SpuriTask {
	return heug.SpuriTask{
		Name:         t.Name,
		Node:         t.Node,
		CBefore:      us(t.CBeforeUs),
		CS:           us(t.CSUs),
		CAfter:       us(t.CAfterUs),
		Resource:     t.Resource,
		Deadline:     msd(t.DeadlineMs),
		PseudoPeriod: msd(t.PeriodMs),
	}
}

// law returns the HEUG arrival law of the task spec.
func (t TaskSpec) law() heug.Arrival {
	if t.Law == "periodic" {
		return heug.PeriodicEvery(msd(t.PeriodMs))
	}
	return heug.SporadicEvery(msd(t.PeriodMs))
}

// stageNode resolves the node of one stage under the placement map.
func (s Spec) stageNode(task TaskSpec, stage StageSpec) int {
	if n, ok := s.Placement[task.Name+"/"+stage.Name]; ok {
		return n
	}
	if n, ok := s.Placement[task.Name]; ok {
		return n
	}
	return stage.Node
}

// heugTask builds the HEUG task for one spec entry, applying placement.
func (s Spec) heugTask(t TaskSpec) (*heug.Task, error) {
	if len(t.Stages) == 0 {
		st := t.Spuri()
		if n, ok := s.Placement[t.Name]; ok {
			st.Node = n
		}
		task, err := st.ToHEUG()
		if err != nil {
			return nil, err
		}
		task.Arrival = t.law()
		return task, nil
	}
	b := heug.NewTask(t.Name, t.law()).WithDeadline(msd(t.DeadlineMs))
	for _, stage := range t.Stages {
		b = b.Code(stage.Name, heug.CodeEU{Node: s.stageNode(t, stage), WCET: us(stage.WCETUs)})
	}
	for i := 1; i < len(t.Stages); i++ {
		b = b.Precede(t.Stages[i-1].Name, t.Stages[i].Name)
	}
	return b.Build()
}

// CostBook resolves the scenario's cost book.
func (s Spec) CostBook() dispatcher.CostBook {
	if s.Costs == "zero" {
		return dispatcher.ZeroCostBook()
	}
	return dispatcher.DefaultCostBook()
}

// AnalysisTasks converts the scenario to the feasibility model. Staged
// tasks contribute their summed WCET, EU count and same-node edges.
func (s Spec) AnalysisTasks() []feasibility.Task {
	out := make([]feasibility.Task, len(s.Tasks))
	for i, t := range s.Tasks {
		if len(t.Stages) == 0 {
			out[i] = feasibility.FromSpuri(t.Spuri())
			continue
		}
		var c vtime.Duration
		edges := 0
		for j, stage := range t.Stages {
			c += us(stage.WCETUs)
			if j > 0 && s.stageNode(t, stage) == s.stageNode(t, t.Stages[j-1]) {
				edges++
			}
		}
		out[i] = feasibility.Task{
			Name:       t.Name,
			C:          c,
			D:          msd(t.DeadlineMs),
			T:          msd(t.PeriodMs),
			NumEU:      len(t.Stages),
			LocalEdges: edges,
		}
	}
	return out
}

// buildScheduler resolves the scheduling policy name.
func (s Spec) buildScheduler(c *cluster.Cluster) (dispatcher.Scheduler, error) {
	switch s.Scheduler {
	case "EDF":
		return sched.NewEDF(20 * vtime.Microsecond), nil
	case "RM":
		return sched.NewRM(), nil
	case "DM":
		return sched.NewDM(), nil
	case "Spring":
		return sched.NewSpring(15*vtime.Microsecond, 100*vtime.Microsecond, c.Now), nil
	case "best-effort":
		return sched.NewBestEffort(0), nil
	default:
		return nil, fmt.Errorf("scenario: unknown scheduler %q", s.Scheduler)
	}
}

// buildPolicy resolves the resource protocol name.
func (s Spec) buildPolicy() (dispatcher.ResourcePolicy, error) {
	switch s.Policy {
	case "SRP":
		return sched.NewSRP(), nil
	case "PCP":
		return sched.NewPCP(), nil
	case "", "none":
		return nil, nil
	default:
		return nil, fmt.Errorf("scenario: unknown policy %q", s.Policy)
	}
}

// Build assembles a runnable cluster from the scenario: platform,
// topology, application, task placement, activation sources and fault
// schedules. Run it with c.Run(spec.Horizon()).
func (s Spec) Build() (*cluster.Cluster, error) {
	cfg := cluster.Config{Seed: s.Seed, Costs: s.CostBook()}
	if o := s.Observe; o != nil {
		if o.TraceSampleRate != nil {
			cfg.Trace = &cluster.TraceParams{SampleRate: *o.TraceSampleRate}
		}
		if o.LogLimit != nil {
			cfg.LogLimit = *o.LogLimit
		}
		cfg.RingLog = o.RetainViolations
		if m := o.Metrics; m != nil {
			mp := &cluster.MetricsParams{
				Interval: msd(m.IntervalMs),
				Capacity: m.Capacity,
				TopK:     m.TopK,
				Disabled: m.Disabled,
			}
			for _, r := range m.SLO {
				mp.Rules = append(mp.Rules, r.rule())
			}
			cfg.Metrics = mp
		}
	}
	c := cluster.New(cfg)
	c.AddNodes(s.Nodes)
	for _, l := range s.Links {
		c.Connect(l.A, l.B, us(l.DMinUs), us(l.DMaxUs))
	}
	policy, err := s.buildPolicy()
	if err != nil {
		return nil, err
	}
	pol, err := s.buildScheduler(c)
	if err != nil {
		return nil, err
	}
	app := c.NewApp(s.Name, pol, policy)
	for _, ts := range s.Tasks {
		task, err := s.heugTask(ts)
		if err != nil {
			return nil, err
		}
		if err := app.Spawn(task); err != nil {
			return nil, err
		}
	}
	for _, f := range s.Faults {
		switch f.Kind {
		case "drop-every":
			c.DropEvery(f.K, f.Port)
		case "drop-from":
			c.DropFrom([]int{f.Node}, f.Port)
		case "random":
			c.DropRandom(f.DropProb, f.DelayProb, us(f.MaxExtraUs))
		case "crash":
			c.Crash(f.Node, vtime.Time(msd(f.AtMs)), vtime.Time(msd(f.RecoverMs)))
		case "partition":
			c.PartitionAt(vtime.Time(msd(f.AtMs)), f.Partition...)
			if f.HealMs > 0 {
				c.HealAt(vtime.Time(msd(f.HealMs)))
			}
		}
	}
	if sp := s.Shards; sp != nil {
		cfg := cluster.ShardConfig{
			Groups:          sp.Groups,
			Style:           shardStyle(sp.Style),
			VNodes:          sp.VNodes,
			Routes:          sp.Routes,
			WExec:           us(sp.WExecUs),
			CheckpointEvery: sp.CheckpointEvery,
			StorageLatency:  us(sp.StorageLatencyUs),
		}
		if se := sp.Session; se != nil {
			knobs := session.Params{
				MaxBatch:      se.MaxBatch,
				FlushInterval: msd(se.FlushIntervalMs),
				PipelineDepth: se.PipelineDepth,
			}
			cfg.Session = knobs
			cfg.GroupCommit = knobs
		}
		set := c.ShardsWith(sp.Count, sp.ReplicasPer, cfg)
		for _, cs := range sp.Clients {
			for _, node := range cs.nodes() {
				cl := set.ClientWith(shard.ClientParams{
					Node:         node,
					RetryTimeout: msd(cs.RetryTimeoutMs),
					MaxRetries:   cs.MaxRetries,
					Policy:       shardPolicy(cs.Policy),
				})
				if cs.openLoop() {
					// AttachLoad reuses the client just registered on
					// the node; the Poisson schedule replaces the fixed
					// interval entirely.
					set.AttachLoad(cs.loadConfig(s.Seed, node, s.Horizon()), []int{node})
					continue
				}
				every := msd(cs.SubmitEveryMs)
				pick := cs.picker(s.Seed, node)
				i := 0
				for t := vtime.Duration(0); t < s.Horizon(); t += every {
					key := pick(i)
					cmd := int64(i + 1)
					i++
					c.At(vtime.Time(t), func() { cl.Submit(key, cmd) })
				}
			}
		}
		for _, ts := range sp.Txns {
			tc := set.TxnClientWith(txn.ClientParams{
				Node:         ts.Node,
				Deadline:     msd(ts.DeadlineMs),
				RetryTimeout: msd(ts.RetryTimeoutMs),
				MaxRetries:   ts.MaxRetries,
			})
			every := msd(ts.SubmitEveryMs)
			accounts := ts.Accounts
			i := 0
			for t := vtime.Duration(0); t < s.Horizon(); t += every {
				src := accounts[i%len(accounts)]
				dst := accounts[(i+1)%len(accounts)]
				amount := int64(i + 1)
				i++
				c.At(vtime.Time(t), func() { tc.Transfer(src, dst, amount) })
			}
		}
		for i, ls := range sp.Load {
			if ls.Disabled {
				continue
			}
			set.AttachLoad(ls.config(loadSeed(s.Seed, i), s.Horizon()), append([]int(nil), ls.Nodes...))
		}
		if s.PubSub != nil {
			if err := s.buildPubSub(c, set); err != nil {
				return nil, err
			}
		}
	}
	for gi, gs := range s.Groups {
		g := c.Group(gs.Name, gs.Nodes...)
		if gs.Style == "" {
			continue
		}
		wexec := gs.WExecUs
		if wexec <= 0 {
			wexec = 100
		}
		storeLat := gs.StorageLatencyUs
		if storeLat <= 0 {
			storeLat = 20
		}
		rep := g.Replicate(replication.Config{
			Replicas:        gs.Replicas,
			Style:           replicationStyle(gs.Style),
			WExec:           us(wexec),
			CheckpointEvery: gs.CheckpointEvery,
			StorageLatency:  us(storeLat),
		}, nil)
		if gs.SubmitEveryMs > 0 {
			every := msd(gs.SubmitEveryMs)
			from := gs.SubmitFrom
			seq := int64(0)
			for t := vtime.Duration(0); t < s.Horizon(); t += every {
				seq++
				cmd := seq
				c.At(vtime.Time(t), func() { rep.Submit(from, cmd) })
			}
		}
		for j, ls := range gs.Load {
			if ls.Disabled {
				continue
			}
			cfg := ls.config(groupLoadSeed(s.Seed, gi, j), s.Horizon())
			g.AttachLoad(cfg)
		}
	}
	return c, nil
}

// replicationStyle maps the JSON style name (already validated).
func replicationStyle(name string) replication.Style {
	switch name {
	case "semi-active":
		return replication.SemiActive
	case "active":
		return replication.Active
	default:
		return replication.Passive
	}
}

// shardStyle maps the shard style name (already validated; the shard
// default is semi-active, the style the exactly-once verification
// requires).
func shardStyle(name string) replication.Style {
	if name == "passive" {
		return replication.Passive
	}
	return replication.SemiActive
}

// shardPolicy maps the client policy name (already validated).
func shardPolicy(name string) shard.Policy {
	if name == "fail-fast" {
		return shard.FailFast
	}
	return shard.QueueOnFailure
}

// Horizon returns the simulation horizon.
func (s Spec) Horizon() vtime.Duration { return msd(s.HorizonMs) }
