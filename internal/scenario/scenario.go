// Package scenario defines the JSON scenario format shared by the
// hades-sim and hades-feas command-line tools: a §5.1-style sporadic
// task set plus platform and policy choices, loadable from a file or
// from the built-in catalogue.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"

	"hades/internal/core"
	"hades/internal/dispatcher"
	"hades/internal/feasibility"
	"hades/internal/heug"
	"hades/internal/sched"
	"hades/internal/vtime"
)

// TaskSpec describes one task in the JSON scenario.
type TaskSpec struct {
	Name      string  `json:"name"`
	Node      int     `json:"node"`
	CBeforeUs float64 `json:"cBeforeUs"`
	CSUs      float64 `json:"csUs"`
	CAfterUs  float64 `json:"cAfterUs"`
	Resource  string  `json:"resource,omitempty"`
	// DeadlineMs is the relative deadline D.
	DeadlineMs float64 `json:"deadlineMs"`
	// PeriodMs is the period (periodic) or pseudo-period (sporadic).
	PeriodMs float64 `json:"periodMs"`
	// Law is "sporadic" (default) or "periodic".
	Law string `json:"law,omitempty"`
}

// Spec is a full scenario.
type Spec struct {
	Name      string     `json:"name"`
	Nodes     int        `json:"nodes"`
	Seed      int64      `json:"seed"`
	Costs     string     `json:"costs"`     // "default" | "zero"
	Scheduler string     `json:"scheduler"` // "EDF" | "RM" | "DM" | "Spring" | "best-effort"
	Policy    string     `json:"policy"`    // "SRP" | "PCP" | "none"
	HorizonMs float64    `json:"horizonMs"`
	Tasks     []TaskSpec `json:"tasks"`
}

// Load reads a scenario from a JSON file.
func Load(path string) (Spec, error) {
	var s Spec
	data, err := os.ReadFile(path)
	if err != nil {
		return s, fmt.Errorf("scenario: %w", err)
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("scenario: parsing %s: %w", path, err)
	}
	return s.withDefaults()
}

// Builtin returns a named built-in scenario.
func Builtin(name string) (Spec, error) {
	s, ok := builtins[name]
	if !ok {
		names := make([]string, 0, len(builtins))
		for n := range builtins {
			names = append(names, n)
		}
		return Spec{}, fmt.Errorf("scenario: unknown builtin %q (have %v)", name, names)
	}
	return s.withDefaults()
}

// BuiltinNames lists the catalogue.
func BuiltinNames() []string {
	return []string{"spuri-example", "inversion", "overload"}
}

var builtins = map[string]Spec{
	// The §5 running example: three sporadic tasks sharing S under
	// EDF+SRP.
	"spuri-example": {
		Name: "spuri-example", Nodes: 1, Seed: 1, Costs: "default",
		Scheduler: "EDF", Policy: "SRP", HorizonMs: 500,
		Tasks: []TaskSpec{
			{Name: "tau1", CBeforeUs: 300, CSUs: 200, CAfterUs: 500, Resource: "S", DeadlineMs: 5, PeriodMs: 10},
			{Name: "tau2", CBeforeUs: 800, CSUs: 400, CAfterUs: 800, Resource: "S", DeadlineMs: 12, PeriodMs: 20},
			{Name: "tau3", CBeforeUs: 2000, CSUs: 0, CAfterUs: 0, DeadlineMs: 40, PeriodMs: 50},
		},
	},
	// The canonical priority-inversion workload (experiment X2).
	"inversion": {
		Name: "inversion", Nodes: 1, Seed: 1, Costs: "default",
		Scheduler: "DM", Policy: "SRP", HorizonMs: 500,
		Tasks: []TaskSpec{
			{Name: "low", CBeforeUs: 0, CSUs: 8000, CAfterUs: 0, Resource: "R", DeadlineMs: 45, PeriodMs: 50},
			{Name: "mid", CBeforeUs: 15000, CSUs: 0, CAfterUs: 0, DeadlineMs: 40, PeriodMs: 50},
			{Name: "high", CBeforeUs: 0, CSUs: 1000, CAfterUs: 0, Resource: "R", DeadlineMs: 20, PeriodMs: 50},
		},
	},
	// A deliberately overloaded set: misses expected.
	"overload": {
		Name: "overload", Nodes: 1, Seed: 1, Costs: "default",
		Scheduler: "EDF", Policy: "SRP", HorizonMs: 300,
		Tasks: []TaskSpec{
			{Name: "a", CBeforeUs: 6000, CSUs: 0, CAfterUs: 0, DeadlineMs: 10, PeriodMs: 10},
			{Name: "b", CBeforeUs: 6000, CSUs: 0, CAfterUs: 0, DeadlineMs: 10, PeriodMs: 10},
		},
	},
}

func (s Spec) withDefaults() (Spec, error) {
	if s.Nodes <= 0 {
		s.Nodes = 1
	}
	if s.Scheduler == "" {
		s.Scheduler = "EDF"
	}
	if s.HorizonMs <= 0 {
		s.HorizonMs = 500
	}
	if len(s.Tasks) == 0 {
		return s, fmt.Errorf("scenario %q has no tasks", s.Name)
	}
	for i, t := range s.Tasks {
		if t.Name == "" {
			return s, fmt.Errorf("scenario %q: task %d unnamed", s.Name, i)
		}
		if t.PeriodMs <= 0 || t.DeadlineMs <= 0 {
			return s, fmt.Errorf("scenario %q: task %q needs positive period and deadline", s.Name, t.Name)
		}
	}
	return s, nil
}

func us(f float64) vtime.Duration { return vtime.Duration(f * float64(vtime.Microsecond)) }
func msd(f float64) vtime.Duration {
	return vtime.Duration(f * float64(vtime.Millisecond))
}

// Spuri converts a task spec to the §5.1 model.
func (t TaskSpec) Spuri() heug.SpuriTask {
	return heug.SpuriTask{
		Name:         t.Name,
		Node:         t.Node,
		CBefore:      us(t.CBeforeUs),
		CS:           us(t.CSUs),
		CAfter:       us(t.CAfterUs),
		Resource:     t.Resource,
		Deadline:     msd(t.DeadlineMs),
		PseudoPeriod: msd(t.PeriodMs),
	}
}

// CostBook resolves the scenario's cost book.
func (s Spec) CostBook() dispatcher.CostBook {
	if s.Costs == "zero" {
		return dispatcher.ZeroCostBook()
	}
	return dispatcher.DefaultCostBook()
}

// AnalysisTasks converts the scenario to the feasibility model.
func (s Spec) AnalysisTasks() []feasibility.Task {
	out := make([]feasibility.Task, len(s.Tasks))
	for i, t := range s.Tasks {
		out[i] = feasibility.FromSpuri(t.Spuri())
	}
	return out
}

// Build assembles a runnable system from the scenario and returns it
// with the list of task names to drive.
func (s Spec) Build() (*core.System, error) {
	sys := core.NewSystem(core.Config{Nodes: s.Nodes, Seed: s.Seed, Costs: s.CostBook()})
	var policy dispatcher.ResourcePolicy
	switch s.Policy {
	case "SRP":
		policy = sched.NewSRP()
	case "PCP":
		policy = sched.NewPCP()
	case "", "none":
		policy = nil
	default:
		return nil, fmt.Errorf("scenario: unknown policy %q", s.Policy)
	}
	var pol dispatcher.Scheduler
	switch s.Scheduler {
	case "EDF":
		pol = sched.NewEDF(20 * vtime.Microsecond)
	case "RM":
		pol = sched.NewRM()
	case "DM":
		pol = sched.NewDM()
	case "Spring":
		pol = sched.NewSpring(15*vtime.Microsecond, 100*vtime.Microsecond, sys.Engine().Now)
	case "best-effort":
		pol = sched.NewBestEffort(0)
	default:
		return nil, fmt.Errorf("scenario: unknown scheduler %q", s.Scheduler)
	}
	app := sys.NewApp(s.Name, pol, policy)
	for _, ts := range s.Tasks {
		st := ts.Spuri()
		task, err := st.ToHEUG()
		if err != nil {
			return nil, err
		}
		if ts.Law == "periodic" {
			task.Arrival = heug.PeriodicEvery(msd(ts.PeriodMs))
		}
		if err := app.AddTask(task); err != nil {
			return nil, err
		}
	}
	app.Seal()
	for _, ts := range s.Tasks {
		var err error
		if ts.Law == "periodic" {
			err = sys.StartPeriodic(ts.Name)
		} else {
			err = sys.StartSporadicWorstCase(ts.Name)
		}
		if err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// Horizon returns the simulation horizon.
func (s Spec) Horizon() vtime.Duration { return msd(s.HorizonMs) }
