package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hades/internal/feasibility"
	"hades/internal/vtime"
)

func TestBuiltinsLoadAndBuild(t *testing.T) {
	for _, name := range BuiltinNames() {
		t.Run(name, func(t *testing.T) {
			spec, err := Builtin(name)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			rep := sys.Run(spec.Horizon())
			if rep.Stats.Activations == 0 {
				t.Fatal("no activations")
			}
		})
	}
}

func TestUnknownBuiltin(t *testing.T) {
	if _, err := Builtin("ghost"); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}

func TestSpuriExampleMeetsDeadlines(t *testing.T) {
	spec, err := Builtin("spuri-example")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(spec.Horizon())
	if rep.Stats.DeadlineMisses != 0 {
		t.Fatalf("spuri-example missed %d deadlines", rep.Stats.DeadlineMisses)
	}
}

func TestOverloadMisses(t *testing.T) {
	spec, err := Builtin("overload")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(spec.Horizon())
	if rep.Stats.DeadlineMisses == 0 {
		t.Fatal("overload scenario missed nothing")
	}
	// And the analysis agrees.
	if feasibility.EDFSpuri(spec.AnalysisTasks(), nil).Feasible {
		t.Fatal("overloaded set declared feasible")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	data := `{
		"name": "file-test",
		"nodes": 2,
		"seed": 3,
		"costs": "zero",
		"scheduler": "RM",
		"policy": "PCP",
		"horizonMs": 100,
		"tasks": [
			{"name": "a", "node": 0, "cBeforeUs": 500, "deadlineMs": 10, "periodMs": 10, "law": "periodic"},
			{"name": "b", "node": 1, "cBeforeUs": 300, "csUs": 200, "cAfterUs": 100,
			 "resource": "S", "deadlineMs": 20, "periodMs": 20}
		]
	}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != 2 || spec.Scheduler != "RM" || len(spec.Tasks) != 2 {
		t.Fatalf("parsed %+v", spec)
	}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(spec.Horizon())
	if rep.Stats.Completions == 0 {
		t.Fatal("file scenario produced nothing")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/file.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil {
		t.Fatal("taskless scenario accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	spec := Spec{Name: "v", Tasks: []TaskSpec{{Name: "", PeriodMs: 1, DeadlineMs: 1}}}
	if _, err := spec.withDefaults(); err == nil {
		t.Fatal("unnamed task accepted")
	}
	spec = Spec{Name: "v", Tasks: []TaskSpec{{Name: "x", PeriodMs: 0, DeadlineMs: 1}}}
	if _, err := spec.withDefaults(); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestBadPolicyAndScheduler(t *testing.T) {
	spec, _ := Builtin("spuri-example")
	spec.Policy = "bogus"
	if _, err := spec.Build(); err == nil {
		t.Fatal("bogus policy accepted")
	}
	spec, _ = Builtin("spuri-example")
	spec.Scheduler = "bogus"
	if _, err := spec.Build(); err == nil {
		t.Fatal("bogus scheduler accepted")
	}
}

func TestAllSchedulersBuild(t *testing.T) {
	for _, schedName := range []string{"EDF", "RM", "DM", "Spring", "best-effort"} {
		spec, _ := Builtin("spuri-example")
		spec.Scheduler = schedName
		if schedName == "best-effort" {
			spec.Policy = "" // best-effort band has no protocol
		}
		sys, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", schedName, err)
		}
		rep := sys.Run(100 * msd(1))
		if rep.Stats.Activations == 0 {
			t.Fatalf("%s: nothing ran", schedName)
		}
	}
}

// TestDistributedRoundTrip: a scenario using every new distributed
// field — nodes, explicit links, staged tasks, placement, faults —
// survives a JSON round trip and runs end-to-end through the cluster,
// with the injected omission visible in the result.
func TestDistributedRoundTrip(t *testing.T) {
	orig := Spec{
		Name: "rt", Nodes: 3, Seed: 5, Costs: "default",
		Scheduler: "EDF", Policy: "none", HorizonMs: 300,
		Links: []LinkSpec{
			{A: 0, B: 1, DMinUs: 100, DMaxUs: 200},
			{A: 1, B: 2, DMinUs: 150, DMaxUs: 350},
		},
		Faults: []FaultSpec{
			{Kind: "drop-every", K: 10, Port: "heug.prec"},
			{Kind: "crash", Node: 2, AtMs: 200, RecoverMs: 250},
		},
		Placement: map[string]int{"pipe/sink": 2},
		Tasks: []TaskSpec{
			{Name: "pipe", Law: "periodic", DeadlineMs: 15, PeriodMs: 20,
				Stages: []StageSpec{
					{Name: "src", Node: 0, WCETUs: 300},
					{Name: "mid", Node: 1, WCETUs: 500},
					{Name: "sink", Node: 1, WCETUs: 200}, // placed on 2 via Placement
				}},
		},
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rt.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, orig) {
		t.Fatalf("round trip changed the spec:\n got %+v\nwant %+v", spec, orig)
	}
	clu, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Placement moved the sink stage to node 2: 1-2 must carry traffic.
	if _, ok := clu.Network().DelayBound(1, 2); !ok {
		t.Fatal("declared link 1-2 missing")
	}
	if _, ok := clu.Network().DelayBound(0, 2); ok {
		t.Fatal("undeclared link 0-2 present")
	}
	res := clu.Run(spec.Horizon())
	if res.Stats.Completions == 0 {
		t.Fatal("distributed scenario produced nothing")
	}
	if res.Net.Delivered == 0 {
		t.Fatal("no remote traffic despite cross-node stages")
	}
	if res.Net.Dropped == 0 {
		t.Fatal("injected omission fault dropped nothing")
	}
}

// TestDistributedBuiltinDetectsOmission: the catalogue's distributed
// scenario runs end-to-end and the dispatcher detects the injected
// omission failures.
func TestDistributedBuiltinDetectsOmission(t *testing.T) {
	spec, err := Builtin("distributed-pipeline")
	if err != nil {
		t.Fatal(err)
	}
	clu, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := clu.Run(spec.Horizon())
	if res.Net.Dropped == 0 {
		t.Fatal("no omission injected")
	}
	if res.Stats.NetworkOmissions == 0 {
		t.Fatal("dispatcher did not detect the omission")
	}
	if res.Stats.Completions == 0 {
		t.Fatal("pipeline never completed")
	}
}

// TestDistributedValidation: the new fields are validated.
func TestDistributedValidation(t *testing.T) {
	base := func() Spec {
		return Spec{Name: "v", Nodes: 2, Tasks: []TaskSpec{
			{Name: "t", DeadlineMs: 10, PeriodMs: 10,
				Stages: []StageSpec{{Name: "s", Node: 0, WCETUs: 100}}},
		}}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"stage on unknown node", func(s *Spec) { s.Tasks[0].Stages[0].Node = 9 }},
		{"stage without wcet", func(s *Spec) { s.Tasks[0].Stages[0].WCETUs = 0 }},
		{"unnamed stage", func(s *Spec) { s.Tasks[0].Stages[0].Name = "" }},
		{"stages mixed with spuri fields", func(s *Spec) { s.Tasks[0].CBeforeUs = 100 }},
		{"self link", func(s *Spec) { s.Links = []LinkSpec{{A: 1, B: 1, DMaxUs: 10}} }},
		{"link to unknown node", func(s *Spec) { s.Links = []LinkSpec{{A: 0, B: 5, DMaxUs: 10}} }},
		{"inverted delay bounds", func(s *Spec) { s.Links = []LinkSpec{{A: 0, B: 1, DMinUs: 50, DMaxUs: 10}} }},
		{"unknown fault kind", func(s *Spec) { s.Faults = []FaultSpec{{Kind: "meteor"}} }},
		{"placement on unknown node", func(s *Spec) { s.Placement = map[string]int{"t": 7} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(&s)
			if _, err := s.withDefaults(); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
	// The unmutated base must be fine.
	if _, err := base().withDefaults(); err != nil {
		t.Fatalf("valid base rejected: %v", err)
	}
}

// TestMembershipChurnBuiltin is the end-to-end acceptance test of the
// membership subsystem as pure data: the builtin's crashed-then-
// recovered primary is removed by an agreed view, failover happens in
// that view, the node rejoins with a state transfer, and the
// replicated state machine's state survives intact.
func TestMembershipChurnBuiltin(t *testing.T) {
	spec, err := Builtin("membership-churn")
	if err != nil {
		t.Fatal(err)
	}
	clu, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := clu.Run(spec.Horizon())

	gr, ok := res.Group("sm")
	if !ok {
		t.Fatal("no group result")
	}
	ids := make([]string, 0, len(gr.Views))
	for _, v := range gr.Views {
		ids = append(ids, v.String())
	}
	want := []string{"v1{0,1,2}", "v2{1,2}", "v3{0,1,2}"}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("agreed views %v, want %v", ids, want)
	}
	if gr.Failovers != 1 || gr.Joins != 1 {
		t.Fatalf("failovers=%d joins=%d, want 1/1", gr.Failovers, gr.Joins)
	}
	if gr.MaxViewLatency > gr.Bound {
		t.Fatalf("view-change latency %s above bound %s", gr.MaxViewLatency, gr.Bound)
	}
	// All live members installed the same view sequence.
	mem := clu.Groups()[0].Membership()
	for _, n := range []int{1, 2} {
		if got := mem.History(n); !reflect.DeepEqual(got, gr.Views) {
			t.Fatalf("node %d history %v diverges from agreed %v", n, got, gr.Views)
		}
	}
	// The rejoined ex-primary was restored and is tracking the new
	// primary within one checkpoint interval: state intact.
	rep := clu.Groups()[0].Replicas()[0]
	if rep.Primary() != 1 {
		t.Fatalf("primary %d, want 1", rep.Primary())
	}
	rejoined, primary := rep.Machine(0), rep.Machine(1)
	if rejoined.Applied == 0 || primary.Applied == 0 {
		t.Fatalf("machines never ran: rejoined=%d primary=%d", rejoined.Applied, primary.Applied)
	}
	if lag := primary.Applied - rejoined.Applied; lag < 0 || lag > 5 {
		t.Fatalf("rejoined replica lag %d outside [0, checkpoint interval]", lag)
	}
	if res.Stats.DeadlineMisses != 0 {
		t.Fatalf("watchdog missed %d deadlines", res.Stats.DeadlineMisses)
	}
}

// TestMembershipChurnDeterministic: identical scenario + seed ⇒
// identical view history (the determinism acceptance criterion), and
// identical replicated state.
func TestMembershipChurnDeterministic(t *testing.T) {
	type outcome struct {
		installs string
		state    int64
		applied  int64
	}
	run := func() outcome {
		spec, err := Builtin("membership-churn")
		if err != nil {
			t.Fatal(err)
		}
		clu, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		clu.Run(spec.Horizon())
		mem := clu.Groups()[0].Membership()
		s := ""
		for _, in := range mem.Installs {
			s += fmt.Sprintf("%d:%s@%s;", in.Node, in.View, in.At)
		}
		sm := clu.Groups()[0].Replicas()[0].Machine(1)
		return outcome{installs: s, state: sm.State, applied: sm.Applied}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same scenario + seed, different outcome:\n%+v\n%+v", a, b)
	}
}

// TestCrashAndRecoverScheduleFromJSON: an end-to-end crash *and
// recover* schedule written as scenario JSON drives the whole cycle
// through cluster.Run — the recovery path at the cluster layer.
func TestCrashAndRecoverScheduleFromJSON(t *testing.T) {
	data := `{
		"name": "churn-json",
		"nodes": 3,
		"seed": 9,
		"scheduler": "EDF",
		"horizonMs": 350,
		"groups": [
			{"name": "g", "nodes": [0, 1, 2], "style": "semi-active",
			 "submitEveryMs": 4, "submitFrom": 2, "checkpointEvery": 5}
		],
		"faults": [
			{"kind": "crash", "node": 0, "atMs": 50, "recoverMs": 180}
		]
	}`
	path := filepath.Join(t.TempDir(), "churn.json")
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	clu, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := clu.Run(spec.Horizon())

	// Both transitions of the schedule were injected...
	mem := clu.Groups()[0].Membership()
	if clu.Network().NodeDown(0) {
		t.Fatal("node 0 still down after recoverMs")
	}
	// ...and drove a removal view and a rejoin view.
	gr, _ := res.Group("g")
	if len(gr.Views) != 3 {
		t.Fatalf("agreed views %v, want removal + rejoin", gr.Views)
	}
	if !gr.Views[2].Contains(0) {
		t.Fatalf("node 0 never rejoined: %v", gr.Views)
	}
	if gr.Failovers != 1 {
		t.Fatalf("failovers %d, want 1", gr.Failovers)
	}
	// Semi-active: no lost work, and the recovered follower executes
	// requests again after the rejoin (not just the state transfer).
	rep := clu.Groups()[0].Replicas()[0]
	if rep.LostWork != 0 {
		t.Fatalf("semi-active lost %d requests", rep.LostWork)
	}
	if len(mem.Transfers) != 1 || mem.Transfers[0].To != 0 {
		t.Fatalf("transfers %+v, want one to node 0", mem.Transfers)
	}
	if rep.Machine(0).Applied == 0 {
		t.Fatal("recovered follower never restored state")
	}
	if lag := rep.Machine(1).Applied - rep.Machine(0).Applied; lag < 0 || lag > 1 {
		t.Fatalf("recovered follower lag %d, want ≤ 1 in-flight request (semi-active mirrors the leader)", lag)
	}
}

// TestGroupValidationErrors: the group fields are validated.
func TestGroupValidationErrors(t *testing.T) {
	base := func() Spec {
		return Spec{Name: "g", Nodes: 3, Groups: []GroupSpec{
			{Name: "sm", Nodes: []int{0, 1}, Style: "passive"},
		}}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"unnamed group", func(s *Spec) { s.Groups[0].Name = "" }},
		{"duplicate group", func(s *Spec) { s.Groups = append(s.Groups, s.Groups[0]) }},
		{"single-member group", func(s *Spec) { s.Groups[0].Nodes = []int{0} }},
		{"member off platform", func(s *Spec) { s.Groups[0].Nodes = []int{0, 7} }},
		{"duplicate member", func(s *Spec) { s.Groups[0].Nodes = []int{1, 1} }},
		{"unknown style", func(s *Spec) { s.Groups[0].Style = "quantum" }},
		{"submit without style", func(s *Spec) { s.Groups[0].Style = ""; s.Groups[0].SubmitEveryMs = 1 }},
		{"replica not a member", func(s *Spec) { s.Groups[0].Replicas = []int{2} }},
		{"submit from unknown node", func(s *Spec) { s.Groups[0].SubmitFrom = 9 }},
		{"group without network", func(s *Spec) { s.Nodes = 1; s.Groups[0].Nodes = []int{0, 0} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(&s)
			if _, err := s.withDefaults(); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
	if _, err := base().withDefaults(); err != nil {
		t.Fatalf("valid base rejected: %v", err)
	}
}

// TestFaultValidationRejectsSilentNoOps: fault specs that would
// previously panic at Build time or silently never inject are caught
// at validation.
func TestFaultValidationRejectsSilentNoOps(t *testing.T) {
	twoNode := func(faults ...FaultSpec) Spec {
		return Spec{Name: "f", Nodes: 2, Faults: faults, Tasks: []TaskSpec{
			{Name: "t", DeadlineMs: 10, PeriodMs: 10, CBeforeUs: 100},
		}}
	}
	cases := []struct {
		name string
		spec Spec
	}{
		{"faults without a network", Spec{Name: "f", Nodes: 1,
			Faults: []FaultSpec{{Kind: "crash", Node: 0, AtMs: 10}},
			Tasks:  []TaskSpec{{Name: "t", DeadlineMs: 10, PeriodMs: 10, CBeforeUs: 100}}}},
		{"drop-every without k", twoNode(FaultSpec{Kind: "drop-every"})},
		{"crash on unknown node", twoNode(FaultSpec{Kind: "crash", Node: 5, AtMs: 10})},
		{"drop-from on unknown node", twoNode(FaultSpec{Kind: "drop-from", Node: -1})},
		{"random with bad probabilities", twoNode(FaultSpec{Kind: "random", DropProb: 0.8, DelayProb: 0.8})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.withDefaults(); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
	// Placement naming no task or stage is rejected too.
	s := twoNode()
	s.Placement = map[string]int{"typo": 1}
	if _, err := s.withDefaults(); err == nil {
		t.Fatal("placement on unknown task accepted")
	}
}

// TestMisconfigurationRejected locks in that misconfigured scenarios
// fail loudly instead of being silently ignored: group members must be
// declared nodes, fault kinds must be known, and fault schedules must
// be self-consistent.
func TestMisconfigurationRejected(t *testing.T) {
	base := func() Spec {
		return Spec{
			Name: "v", Nodes: 3, HorizonMs: 100,
			Tasks: []TaskSpec{{Name: "t", Node: 0, CBeforeUs: 100, DeadlineMs: 10, PeriodMs: 10}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"group member not a declared node", func(s *Spec) {
			s.Groups = []GroupSpec{{Name: "g", Nodes: []int{0, 5}}}
		}},
		{"group member listed twice", func(s *Spec) {
			s.Groups = []GroupSpec{{Name: "g", Nodes: []int{0, 0}}}
		}},
		{"replica not a group member", func(s *Spec) {
			s.Groups = []GroupSpec{{Name: "g", Nodes: []int{0, 1}, Style: "passive", Replicas: []int{0, 2}}}
		}},
		{"unknown fault kind", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "meteor-strike"}}
		}},
		{"crash on unknown node", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "crash", Node: 9, AtMs: 10}}
		}},
		{"crash recovering before the crash", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "crash", Node: 0, AtMs: 50, RecoverMs: 40}}
		}},
		{"fault at negative instant", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "crash", Node: 0, AtMs: -1}}
		}},
		{"partition with one side", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "partition", Partition: [][]int{{0, 1}}, AtMs: 10}}
		}},
		{"partition with empty side", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "partition", Partition: [][]int{{0}, {}}, AtMs: 10}}
		}},
		{"partition naming unknown node", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "partition", Partition: [][]int{{0}, {7}}, AtMs: 10}}
		}},
		{"partition with node in two sides", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "partition", Partition: [][]int{{0, 1}, {1, 2}}, AtMs: 10}}
		}},
		{"partition healing before the split", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "partition", Partition: [][]int{{0}, {1}}, AtMs: 50, HealMs: 40}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(&s)
			if _, err := s.withDefaults(); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
}

// TestPartitionSplitBuiltinIsSplitBrainSafe is the acceptance sweep:
// under every seeded run of the partition-split builtin the minority
// side installs no view and promotes no primary while partitioned,
// and after the heal every replica converges to the one majority log,
// the minority re-admitted through a merge view plus state transfer.
func TestPartitionSplitBuiltinIsSplitBrainSafe(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			spec, err := Builtin("partition-split")
			if err != nil {
				t.Fatal(err)
			}
			spec.Seed = seed
			clu, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			res := clu.Run(spec.Horizon())
			splitAt := vtime.Time(msd(60))
			healAt := vtime.Time(msd(200))

			g := clu.Groups()[0]
			mem := g.Membership()
			rep := g.Replicas()[0]
			// The minority (node 0) installed nothing during the split.
			for _, in := range mem.Installs {
				if in.Node == 0 && in.At > splitAt && in.At < healAt {
					t.Fatalf("minority installed %v at %s while partitioned", in.View, in.At)
				}
			}
			// Exactly one promotion, away from the minority, never back.
			if len(rep.Failovers) != 1 {
				t.Fatalf("failovers %+v, want exactly 1", rep.Failovers)
			}
			if fo := rep.Failovers[0]; fo.From != 0 || fo.To == 0 {
				t.Fatalf("failover %+v promotes the minority", fo)
			}
			// Merge view re-admitted the minority with a state transfer.
			final := mem.Agreed()
			if !final.Contains(0) {
				t.Fatalf("final view %v lacks the healed minority", final)
			}
			if len(mem.Merges) != 1 {
				t.Fatalf("merges %+v, want 1", mem.Merges)
			}
			xfers := 0
			for _, tr := range mem.Transfers {
				if tr.To == 0 {
					xfers++
				}
			}
			if xfers == 0 {
				t.Fatal("minority re-admitted without a state transfer")
			}
			// Convergence: the re-admitted replica holds the majority
			// log within one checkpoint interval of the primary.
			primary, rejoined := rep.Machine(rep.Primary()), rep.Machine(0)
			if rejoined.Applied == 0 {
				t.Fatal("re-admitted replica holds no state")
			}
			if lag := primary.Applied - rejoined.Applied; lag < 0 || lag > int64(spec.Groups[0].CheckpointEvery) {
				t.Fatalf("re-admitted replica lag %d outside [0, checkpoint interval]", lag)
			}
			gr, ok := res.Group("sm")
			if !ok || gr.BlockedTime == 0 || gr.Merges != 1 {
				t.Fatalf("partition stats missing from Result: %+v", gr)
			}
		})
	}
}

// TestShardValidationErrors locks in that malformed sharded-data-plane
// specs are rejected loudly: zero shards, overlapping replica sets,
// keys routed to undeclared groups, misplaced clients.
func TestShardValidationErrors(t *testing.T) {
	base := func() Spec {
		return Spec{Name: "s", Nodes: 7, Shards: &ShardsSpec{
			Count: 2, ReplicasPer: 3,
			Clients: []ShardClientSpec{{Node: 6, Keys: []string{"a", "b"}, SubmitEveryMs: 2}},
		}}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"zero shards", func(s *Spec) { s.Shards.Count = 0 }, "zero shards"},
		{"negative shards", func(s *Spec) { s.Shards.Count = -3 }, "zero shards"},
		{"overlapping groups", func(s *Spec) { s.Shards.Groups = [][]int{{0, 1, 2}, {2, 3, 4}} }, "overlapping group membership"},
		{"group count mismatch", func(s *Spec) { s.Shards.Groups = [][]int{{0, 1, 2}} }, "explicit groups"},
		{"single-replica group", func(s *Spec) { s.Shards.Groups = [][]int{{0}, {1, 2}} }, "at least 2 replicas"},
		{"group off platform", func(s *Spec) { s.Shards.Groups = [][]int{{0, 1}, {2, 9}} }, "unknown node"},
		{"route to undeclared group", func(s *Spec) { s.Shards.Routes = map[string]int{"a": 5} }, "undeclared shard group"},
		{"negative route", func(s *Spec) { s.Shards.Routes = map[string]int{"a": -1} }, "undeclared shard group"},
		{"active style", func(s *Spec) { s.Shards.Style = "active" }, "no primary"},
		{"unknown style", func(s *Spec) { s.Shards.Style = "quantum" }, "unknown shard style"},
		{"too few replicas per shard", func(s *Spec) { s.Shards.ReplicasPer = 1 }, "replicasPer >= 2"},
		{"not enough nodes", func(s *Spec) { s.Shards.ReplicasPer = 4 }, "have 7"},
		{"client on replica", func(s *Spec) { s.Shards.Clients[0].Node = 2 }, "collides with a shard replica"},
		{"client off platform", func(s *Spec) { s.Shards.Clients[0].Node = 9 }, "unknown node"},
		{"two clients one node", func(s *Spec) {
			s.Shards.Clients = append(s.Shards.Clients, s.Shards.Clients[0])
		}, "two shard clients"},
		{"client without keys", func(s *Spec) { s.Shards.Clients[0].Keys = nil }, "no keys"},
		{"client without interval", func(s *Spec) { s.Shards.Clients[0].SubmitEveryMs = 0 }, "positive submitEveryMs"},
		{"client unknown policy", func(s *Spec) { s.Shards.Clients[0].Policy = "yolo" }, "unknown policy"},
		{"shards without network", func(s *Spec) { s.Nodes = 1 }, "need"},
		{"txn client on replica", func(s *Spec) {
			s.Shards.Txns = []TxnClientSpec{{Node: 1, Accounts: []string{"a", "b"}, SubmitEveryMs: 2}}
		}, "collides with a shard replica"},
		{"txn client off platform", func(s *Spec) {
			s.Shards.Txns = []TxnClientSpec{{Node: 9, Accounts: []string{"a", "b"}, SubmitEveryMs: 2}}
		}, "unknown node"},
		{"txn client colliding with shard client", func(s *Spec) {
			s.Shards.Txns = []TxnClientSpec{{Node: 6, Accounts: []string{"a", "b"}, SubmitEveryMs: 2}}
		}, "two clients"},
		{"txn client one account", func(s *Spec) {
			s.Shards.Clients = nil
			s.Shards.Txns = []TxnClientSpec{{Node: 6, Accounts: []string{"a"}, SubmitEveryMs: 2}}
		}, "at least 2 accounts"},
		{"txn client without interval", func(s *Spec) {
			s.Shards.Clients = nil
			s.Shards.Txns = []TxnClientSpec{{Node: 6, Accounts: []string{"a", "b"}}}
		}, "positive submitEveryMs"},
		{"txn client negative deadline", func(s *Spec) {
			s.Shards.Clients = nil
			s.Shards.Txns = []TxnClientSpec{{Node: 6, Accounts: []string{"a", "b"}, SubmitEveryMs: 2, DeadlineMs: -5}}
		}, "negative timing"},
		{"session without clients or txns", func(s *Spec) {
			s.Shards.Clients = nil
			s.Shards.Session = &SessionSpec{MaxBatch: 4, FlushIntervalMs: 0.5, PipelineDepth: 2}
		}, "nothing to batch"},
		{"session zero maxBatch", func(s *Spec) {
			s.Shards.Session = &SessionSpec{MaxBatch: 0, FlushIntervalMs: 0.5, PipelineDepth: 2}
		}, "maxBatch must be >= 1"},
		{"session negative maxBatch", func(s *Spec) {
			s.Shards.Session = &SessionSpec{MaxBatch: -4, FlushIntervalMs: 0.5, PipelineDepth: 2}
		}, "maxBatch must be >= 1"},
		{"session zero flush interval", func(s *Spec) {
			s.Shards.Session = &SessionSpec{MaxBatch: 4, PipelineDepth: 2}
		}, "flushIntervalMs must be positive"},
		{"session negative flush interval", func(s *Spec) {
			s.Shards.Session = &SessionSpec{MaxBatch: 4, FlushIntervalMs: -1, PipelineDepth: 2}
		}, "flushIntervalMs must be positive"},
		{"session zero pipeline depth", func(s *Spec) {
			s.Shards.Session = &SessionSpec{MaxBatch: 4, FlushIntervalMs: 0.5}
		}, "pipelineDepth must be >= 1"},
		{"session negative pipeline depth", func(s *Spec) {
			s.Shards.Session = &SessionSpec{MaxBatch: 4, FlushIntervalMs: 0.5, PipelineDepth: -2}
		}, "pipelineDepth must be >= 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(&s)
			_, err := s.withDefaults()
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
			}
		})
	}
	if _, err := base().withDefaults(); err != nil {
		t.Fatalf("valid base rejected: %v", err)
	}
}

// TestShardedKVLinearizablePerKeyAcrossSeeds is the acceptance gate of
// the sharded data plane: under a combined primary crash (shard 0) and
// primary partition (shard 1), every acknowledged request is applied
// exactly once in the owning shard's authoritative history, in per-key
// submission order, across 5 seeds — and the request layer visibly did
// work (failovers on both shards, retries or redirects at the client).
func TestShardedKVLinearizablePerKeyAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			spec, err := Builtin("sharded-kv")
			if err != nil {
				t.Fatal(err)
			}
			spec.Seed = seed
			clu, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			res := clu.Run(spec.Horizon())

			set := clu.ShardSets()[0]
			if err := set.Check(); err != nil {
				t.Fatalf("linearizability/exactly-once check: %v", err)
			}
			cl := set.Clients()[0]
			if cl.Stats.Submitted == 0 || cl.Stats.Acked != cl.Stats.Submitted {
				t.Fatalf("acked %d of %d submitted (%+v)", cl.Stats.Acked, cl.Stats.Submitted, cl.Stats)
			}
			if cl.Stats.Retries == 0 && cl.Stats.Redirects == 0 {
				t.Fatal("fault windows produced neither retries nor redirects")
			}
			for _, name := range []string{"shard0", "shard1"} {
				sr, ok := res.Shard(name)
				if !ok || sr.Requests == 0 {
					t.Fatalf("shard %s served no requests: %+v", name, res.Shards)
				}
				gr, _ := res.Group(name)
				if gr.Failovers != 1 {
					t.Fatalf("%s failovers %d, want 1", name, gr.Failovers)
				}
			}
			// The split window really was a split: shard1's isolated
			// primary was blocked and re-admitted through a merge.
			gr1, _ := res.Group("shard1")
			if gr1.BlockedTime == 0 || gr1.Merges != 1 {
				t.Fatalf("shard1 partition stats: %+v", gr1)
			}
		})
	}
}

// TestShardedKVDeterministic: the whole sharded data plane is a pure
// function of spec + seed.
func TestShardedKVDeterministic(t *testing.T) {
	run := func() string {
		spec, err := Builtin("sharded-kv")
		if err != nil {
			t.Fatal(err)
		}
		clu, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		clu.Run(spec.Horizon())
		var b strings.Builder
		for _, a := range clu.ShardSets()[0].Clients()[0].Acks {
			fmt.Fprintf(&b, "%s#%d=%d@%s;", a.Key, a.Seq, a.Result, a.At)
		}
		return b.String()
	}
	h1, h2 := run(), run()
	if h1 == "" {
		t.Fatal("no acks recorded")
	}
	if h1 != h2 {
		t.Fatalf("same spec+seed, different ack histories:\n%s\n%s", h1, h2)
	}
}

// TestBankTransferAtomicAcrossSeeds is the acceptance gate of the
// transaction layer: under a combined primary crash (shard 0) and a
// quorum-segmenting partition (shard 1), across 5 seeds, every
// committed transfer is all-or-nothing across both shards'
// authoritative histories, every aborted transfer leaves no partial
// write, no lock outlives its transaction's deadline — and the fault
// windows visibly exercised the deadline discipline (both clients
// commit AND abort work, locks drain, both shards coordinate and
// prepare).
func TestBankTransferAtomicAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			spec, err := Builtin("bank-transfer")
			if err != nil {
				t.Fatal(err)
			}
			spec.Seed = seed
			clu, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			clu.Run(spec.Horizon())
			// Submissions stop at the horizon; drain one deadline span
			// so the final in-flight transactions decide and release.
			res := clu.Run(60 * vtime.Millisecond)

			set := clu.ShardSets()[0]
			if err := set.CheckTxns(); err != nil {
				t.Fatalf("atomicity/isolation check: %v", err)
			}
			plane := set.TxnPlane()
			deadlineAborts := 0
			for _, cl := range plane.Clients() {
				if cl.Stats.Committed == 0 {
					t.Fatalf("client n%d committed nothing: %+v", cl.Node(), cl.Stats)
				}
				if cl.Stats.Aborted == 0 {
					t.Fatalf("client n%d aborted nothing across the fault windows: %+v", cl.Node(), cl.Stats)
				}
				deadlineAborts += cl.Stats.DeadlineAborts
			}
			if deadlineAborts == 0 {
				t.Fatal("no deadline aborts — the fault windows never forced the deadline discipline")
			}
			for _, name := range []string{"shard0", "shard1"} {
				sr, ok := res.Shard(name)
				if !ok || sr.Txn.Prepares == 0 {
					t.Fatalf("shard %s prepared nothing: %+v", name, sr.Txn)
				}
				if sr.Txn.Begins == 0 {
					t.Fatalf("shard %s coordinated nothing (ring placement degenerate): %+v", name, sr.Txn)
				}
			}
			for _, pa := range plane.Participants() {
				if pa.LockedKeys() != 0 {
					t.Fatalf("shard %d still holds %d locks at end of run", pa.Shard(), pa.LockedKeys())
				}
			}
		})
	}
}

// TestShardRoutesPinKeys: pinned routes override the hash ring, and
// the whole keyed workload lands on the pinned shard.
func TestShardRoutesPinKeys(t *testing.T) {
	spec := Spec{Name: "routes", Nodes: 5, Seed: 1, HorizonMs: 100,
		Scheduler: "EDF",
		Shards: &ShardsSpec{
			Count: 2, ReplicasPer: 2,
			Routes: map[string]int{"a": 1, "b": 1},
			Clients: []ShardClientSpec{
				{Node: 4, Keys: []string{"a", "b"}, SubmitEveryMs: 5},
			},
		}}
	s, err := spec.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	clu, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := clu.Run(s.Horizon())
	s0, _ := res.Shard("shard0")
	s1, _ := res.Shard("shard1")
	if s0.Requests != 0 || s1.Requests == 0 {
		t.Fatalf("pinned routes ignored: shard0=%+v shard1=%+v", s0, s1)
	}
	if err := clu.ShardSets()[0].Check(); err != nil {
		t.Fatal(err)
	}
}

// TestMembershipBoundFeedsAdmission: the provable view-change bound of
// a scenario's membership group wires into the admission test as a
// blackout term — a task set with less slack than one failover window
// is rejected, the same set with enough slack admitted.
func TestMembershipBoundFeedsAdmission(t *testing.T) {
	spec, err := Builtin("membership-churn")
	if err != nil {
		t.Fatal(err)
	}
	clu, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	bound := clu.Groups()[0].Membership().Bound()
	if bound <= 0 {
		t.Fatalf("view-change bound %s", bound)
	}
	tight := []feasibility.Task{{Name: "ctl", C: msd(2), D: bound + msd(3), T: bound + msd(3), NumEU: 1}}
	ov := &feasibility.Overheads{ViewChangeBlackout: bound}
	if v := feasibility.EDFSpuri(tight, ov); !v.Feasible {
		t.Fatalf("slack > blackout rejected: %+v", v)
	}
	noSlack := []feasibility.Task{{Name: "ctl", C: msd(2), D: bound, T: bound, NumEU: 1}}
	if v := feasibility.EDFSpuri(noSlack, ov); v.Feasible {
		t.Fatal("task set without room for a failover window admitted")
	}
}
