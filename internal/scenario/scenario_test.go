package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hades/internal/feasibility"
)

func TestBuiltinsLoadAndBuild(t *testing.T) {
	for _, name := range BuiltinNames() {
		t.Run(name, func(t *testing.T) {
			spec, err := Builtin(name)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			rep := sys.Run(spec.Horizon())
			if rep.Stats.Activations == 0 {
				t.Fatal("no activations")
			}
		})
	}
}

func TestUnknownBuiltin(t *testing.T) {
	if _, err := Builtin("ghost"); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}

func TestSpuriExampleMeetsDeadlines(t *testing.T) {
	spec, err := Builtin("spuri-example")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(spec.Horizon())
	if rep.Stats.DeadlineMisses != 0 {
		t.Fatalf("spuri-example missed %d deadlines", rep.Stats.DeadlineMisses)
	}
}

func TestOverloadMisses(t *testing.T) {
	spec, err := Builtin("overload")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(spec.Horizon())
	if rep.Stats.DeadlineMisses == 0 {
		t.Fatal("overload scenario missed nothing")
	}
	// And the analysis agrees.
	if feasibility.EDFSpuri(spec.AnalysisTasks(), nil).Feasible {
		t.Fatal("overloaded set declared feasible")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	data := `{
		"name": "file-test",
		"nodes": 2,
		"seed": 3,
		"costs": "zero",
		"scheduler": "RM",
		"policy": "PCP",
		"horizonMs": 100,
		"tasks": [
			{"name": "a", "node": 0, "cBeforeUs": 500, "deadlineMs": 10, "periodMs": 10, "law": "periodic"},
			{"name": "b", "node": 1, "cBeforeUs": 300, "csUs": 200, "cAfterUs": 100,
			 "resource": "S", "deadlineMs": 20, "periodMs": 20}
		]
	}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != 2 || spec.Scheduler != "RM" || len(spec.Tasks) != 2 {
		t.Fatalf("parsed %+v", spec)
	}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(spec.Horizon())
	if rep.Stats.Completions == 0 {
		t.Fatal("file scenario produced nothing")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/file.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil {
		t.Fatal("taskless scenario accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	spec := Spec{Name: "v", Tasks: []TaskSpec{{Name: "", PeriodMs: 1, DeadlineMs: 1}}}
	if _, err := spec.withDefaults(); err == nil {
		t.Fatal("unnamed task accepted")
	}
	spec = Spec{Name: "v", Tasks: []TaskSpec{{Name: "x", PeriodMs: 0, DeadlineMs: 1}}}
	if _, err := spec.withDefaults(); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestBadPolicyAndScheduler(t *testing.T) {
	spec, _ := Builtin("spuri-example")
	spec.Policy = "bogus"
	if _, err := spec.Build(); err == nil {
		t.Fatal("bogus policy accepted")
	}
	spec, _ = Builtin("spuri-example")
	spec.Scheduler = "bogus"
	if _, err := spec.Build(); err == nil {
		t.Fatal("bogus scheduler accepted")
	}
}

func TestAllSchedulersBuild(t *testing.T) {
	for _, schedName := range []string{"EDF", "RM", "DM", "Spring", "best-effort"} {
		spec, _ := Builtin("spuri-example")
		spec.Scheduler = schedName
		if schedName == "best-effort" {
			spec.Policy = "" // best-effort band has no protocol
		}
		sys, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", schedName, err)
		}
		rep := sys.Run(100 * msd(1))
		if rep.Stats.Activations == 0 {
			t.Fatalf("%s: nothing ran", schedName)
		}
	}
}

// TestDistributedRoundTrip: a scenario using every new distributed
// field — nodes, explicit links, staged tasks, placement, faults —
// survives a JSON round trip and runs end-to-end through the cluster,
// with the injected omission visible in the result.
func TestDistributedRoundTrip(t *testing.T) {
	orig := Spec{
		Name: "rt", Nodes: 3, Seed: 5, Costs: "default",
		Scheduler: "EDF", Policy: "none", HorizonMs: 300,
		Links: []LinkSpec{
			{A: 0, B: 1, DMinUs: 100, DMaxUs: 200},
			{A: 1, B: 2, DMinUs: 150, DMaxUs: 350},
		},
		Faults: []FaultSpec{
			{Kind: "drop-every", K: 10, Port: "heug.prec"},
			{Kind: "crash", Node: 2, AtMs: 200, RecoverMs: 250},
		},
		Placement: map[string]int{"pipe/sink": 2},
		Tasks: []TaskSpec{
			{Name: "pipe", Law: "periodic", DeadlineMs: 15, PeriodMs: 20,
				Stages: []StageSpec{
					{Name: "src", Node: 0, WCETUs: 300},
					{Name: "mid", Node: 1, WCETUs: 500},
					{Name: "sink", Node: 1, WCETUs: 200}, // placed on 2 via Placement
				}},
		},
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rt.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, orig) {
		t.Fatalf("round trip changed the spec:\n got %+v\nwant %+v", spec, orig)
	}
	clu, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Placement moved the sink stage to node 2: 1-2 must carry traffic.
	if _, ok := clu.Network().DelayBound(1, 2); !ok {
		t.Fatal("declared link 1-2 missing")
	}
	if _, ok := clu.Network().DelayBound(0, 2); ok {
		t.Fatal("undeclared link 0-2 present")
	}
	res := clu.Run(spec.Horizon())
	if res.Stats.Completions == 0 {
		t.Fatal("distributed scenario produced nothing")
	}
	if res.Net.Delivered == 0 {
		t.Fatal("no remote traffic despite cross-node stages")
	}
	if res.Net.Dropped == 0 {
		t.Fatal("injected omission fault dropped nothing")
	}
}

// TestDistributedBuiltinDetectsOmission: the catalogue's distributed
// scenario runs end-to-end and the dispatcher detects the injected
// omission failures.
func TestDistributedBuiltinDetectsOmission(t *testing.T) {
	spec, err := Builtin("distributed-pipeline")
	if err != nil {
		t.Fatal(err)
	}
	clu, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := clu.Run(spec.Horizon())
	if res.Net.Dropped == 0 {
		t.Fatal("no omission injected")
	}
	if res.Stats.NetworkOmissions == 0 {
		t.Fatal("dispatcher did not detect the omission")
	}
	if res.Stats.Completions == 0 {
		t.Fatal("pipeline never completed")
	}
}

// TestDistributedValidation: the new fields are validated.
func TestDistributedValidation(t *testing.T) {
	base := func() Spec {
		return Spec{Name: "v", Nodes: 2, Tasks: []TaskSpec{
			{Name: "t", DeadlineMs: 10, PeriodMs: 10,
				Stages: []StageSpec{{Name: "s", Node: 0, WCETUs: 100}}},
		}}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"stage on unknown node", func(s *Spec) { s.Tasks[0].Stages[0].Node = 9 }},
		{"stage without wcet", func(s *Spec) { s.Tasks[0].Stages[0].WCETUs = 0 }},
		{"unnamed stage", func(s *Spec) { s.Tasks[0].Stages[0].Name = "" }},
		{"stages mixed with spuri fields", func(s *Spec) { s.Tasks[0].CBeforeUs = 100 }},
		{"self link", func(s *Spec) { s.Links = []LinkSpec{{A: 1, B: 1, DMaxUs: 10}} }},
		{"link to unknown node", func(s *Spec) { s.Links = []LinkSpec{{A: 0, B: 5, DMaxUs: 10}} }},
		{"inverted delay bounds", func(s *Spec) { s.Links = []LinkSpec{{A: 0, B: 1, DMinUs: 50, DMaxUs: 10}} }},
		{"unknown fault kind", func(s *Spec) { s.Faults = []FaultSpec{{Kind: "meteor"}} }},
		{"placement on unknown node", func(s *Spec) { s.Placement = map[string]int{"t": 7} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(&s)
			if _, err := s.withDefaults(); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
	// The unmutated base must be fine.
	if _, err := base().withDefaults(); err != nil {
		t.Fatalf("valid base rejected: %v", err)
	}
}

// TestFaultValidationRejectsSilentNoOps: fault specs that would
// previously panic at Build time or silently never inject are caught
// at validation.
func TestFaultValidationRejectsSilentNoOps(t *testing.T) {
	twoNode := func(faults ...FaultSpec) Spec {
		return Spec{Name: "f", Nodes: 2, Faults: faults, Tasks: []TaskSpec{
			{Name: "t", DeadlineMs: 10, PeriodMs: 10, CBeforeUs: 100},
		}}
	}
	cases := []struct {
		name string
		spec Spec
	}{
		{"faults without a network", Spec{Name: "f", Nodes: 1,
			Faults: []FaultSpec{{Kind: "crash", Node: 0, AtMs: 10}},
			Tasks:  []TaskSpec{{Name: "t", DeadlineMs: 10, PeriodMs: 10, CBeforeUs: 100}}}},
		{"drop-every without k", twoNode(FaultSpec{Kind: "drop-every"})},
		{"crash on unknown node", twoNode(FaultSpec{Kind: "crash", Node: 5, AtMs: 10})},
		{"drop-from on unknown node", twoNode(FaultSpec{Kind: "drop-from", Node: -1})},
		{"random with bad probabilities", twoNode(FaultSpec{Kind: "random", DropProb: 0.8, DelayProb: 0.8})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.withDefaults(); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
	// Placement naming no task or stage is rejected too.
	s := twoNode()
	s.Placement = map[string]int{"typo": 1}
	if _, err := s.withDefaults(); err == nil {
		t.Fatal("placement on unknown task accepted")
	}
}
