package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"hades/internal/feasibility"
)

func TestBuiltinsLoadAndBuild(t *testing.T) {
	for _, name := range BuiltinNames() {
		t.Run(name, func(t *testing.T) {
			spec, err := Builtin(name)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			rep := sys.Run(spec.Horizon())
			if rep.Stats.Activations == 0 {
				t.Fatal("no activations")
			}
		})
	}
}

func TestUnknownBuiltin(t *testing.T) {
	if _, err := Builtin("ghost"); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}

func TestSpuriExampleMeetsDeadlines(t *testing.T) {
	spec, err := Builtin("spuri-example")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(spec.Horizon())
	if rep.Stats.DeadlineMisses != 0 {
		t.Fatalf("spuri-example missed %d deadlines", rep.Stats.DeadlineMisses)
	}
}

func TestOverloadMisses(t *testing.T) {
	spec, err := Builtin("overload")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(spec.Horizon())
	if rep.Stats.DeadlineMisses == 0 {
		t.Fatal("overload scenario missed nothing")
	}
	// And the analysis agrees.
	if feasibility.EDFSpuri(spec.AnalysisTasks(), nil).Feasible {
		t.Fatal("overloaded set declared feasible")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	data := `{
		"name": "file-test",
		"nodes": 2,
		"seed": 3,
		"costs": "zero",
		"scheduler": "RM",
		"policy": "PCP",
		"horizonMs": 100,
		"tasks": [
			{"name": "a", "node": 0, "cBeforeUs": 500, "deadlineMs": 10, "periodMs": 10, "law": "periodic"},
			{"name": "b", "node": 1, "cBeforeUs": 300, "csUs": 200, "cAfterUs": 100,
			 "resource": "S", "deadlineMs": 20, "periodMs": 20}
		]
	}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != 2 || spec.Scheduler != "RM" || len(spec.Tasks) != 2 {
		t.Fatalf("parsed %+v", spec)
	}
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(spec.Horizon())
	if rep.Stats.Completions == 0 {
		t.Fatal("file scenario produced nothing")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/file.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil {
		t.Fatal("taskless scenario accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	spec := Spec{Name: "v", Tasks: []TaskSpec{{Name: "", PeriodMs: 1, DeadlineMs: 1}}}
	if _, err := spec.withDefaults(); err == nil {
		t.Fatal("unnamed task accepted")
	}
	spec = Spec{Name: "v", Tasks: []TaskSpec{{Name: "x", PeriodMs: 0, DeadlineMs: 1}}}
	if _, err := spec.withDefaults(); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestBadPolicyAndScheduler(t *testing.T) {
	spec, _ := Builtin("spuri-example")
	spec.Policy = "bogus"
	if _, err := spec.Build(); err == nil {
		t.Fatal("bogus policy accepted")
	}
	spec, _ = Builtin("spuri-example")
	spec.Scheduler = "bogus"
	if _, err := spec.Build(); err == nil {
		t.Fatal("bogus scheduler accepted")
	}
}

func TestAllSchedulersBuild(t *testing.T) {
	for _, schedName := range []string{"EDF", "RM", "DM", "Spring", "best-effort"} {
		spec, _ := Builtin("spuri-example")
		spec.Scheduler = schedName
		if schedName == "best-effort" {
			spec.Policy = "" // best-effort band has no protocol
		}
		sys, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", schedName, err)
		}
		rep := sys.Run(100 * msd(1))
		if rep.Stats.Activations == 0 {
			t.Fatalf("%s: nothing ran", schedName)
		}
	}
}
