package scenario

import (
	"fmt"

	"hades/internal/cluster"
	"hades/internal/load"
	"hades/internal/pubsub"
	"hades/internal/vtime"
)

// PubSubSpec declares the QoS-aware publish-subscribe plane over the
// scenario's sharded data plane (it requires a shards block: topics
// map onto the same consistent-hash ring, reliable topics ride the
// owning shard's replicated machine). Topics declare QoS contracts;
// publishers and subscribers pin endpoints to nodes; Load attaches
// open/closed-loop generators whose sessions publish to the declared
// topics instead of submitting kv commands.
type PubSubSpec struct {
	Topics      []TopicSpec      `json:"topics"`
	Publishers  []PublisherSpec  `json:"publishers,omitempty"`
	Subscribers []SubscriberSpec `json:"subscribers,omitempty"`
	// Load drives topics with the load plane: Keys lists the target
	// topics (declaration order = zipf rank), workload is implicitly
	// "pubsub", and nodes may be anywhere — publishers co-locate with
	// replicas legally.
	Load []LoadSpec `json:"load,omitempty"`
}

// TopicSpec declares one topic and its QoS contract.
type TopicSpec struct {
	Name string `json:"name"`
	// Reliability is "reliable" (the default: exactly-once through the
	// owning shard's replicated machine) or "bestEffort" (raw reliable
	// broadcast: never blocks on the data plane, may drop under churn).
	Reliability string `json:"reliability,omitempty"`
	// DeadlineMs bounds publish→deliver latency: a live delivery past
	// the bound raises a DeadlineMiss monitor violation (0 = no bound).
	DeadlineMs float64 `json:"deadlineMs,omitempty"`
	// HistoryDepth is the durable ring length (requires durable).
	HistoryDepth int `json:"historyDepth,omitempty"`
	// Durable retains the last HistoryDepth samples inside the owning
	// replicated machine — late joiners catch up from it, and it rides
	// state transfer through crash recovery and partition merge.
	// Requires reliable with historyDepth >= 1.
	Durable bool `json:"durable,omitempty"`
}

// qos lowers the topic spec to the pubsub QoS contract, loudly.
func (t TopicSpec) qos() (pubsub.QoS, error) {
	rel, err := pubsub.ParseReliability(t.Reliability)
	if err != nil {
		return pubsub.QoS{}, fmt.Errorf("topic %q: %v", t.Name, err)
	}
	q := pubsub.QoS{
		Reliability:  rel,
		Deadline:     msd(t.DeadlineMs),
		HistoryDepth: t.HistoryDepth,
		Durable:      t.Durable,
	}
	return q, q.Validate(t.Name)
}

// PublisherSpec places one publisher: one sample every SubmitEveryMs
// from the run start, Count samples in total (0 = the whole horizon).
type PublisherSpec struct {
	Topic         string  `json:"topic"`
	Node          int     `json:"node"`
	SubmitEveryMs float64 `json:"submitEveryMs"`
	Count         int     `json:"count,omitempty"`
}

// SubscriberSpec places one subscriber; JoinAtMs > 0 makes it a late
// joiner that activates mid-run and catches up from the durable
// history of its topic's owning shard.
type SubscriberSpec struct {
	Topic    string  `json:"topic"`
	Node     int     `json:"node"`
	JoinAtMs float64 `json:"joinAtMs,omitempty"`
}

// validatePubSub rejects malformed pubsub blocks loudly: QoS contract
// violations (delegated to pubsub.QoS.Validate), endpoints on
// undeclared topics or unknown nodes, non-positive publish intervals,
// late joins outside the horizon, and load generators targeting
// undeclared topics. loadNames carries every generator name declared
// elsewhere in the spec so cross-block duplicates fail here.
func (s Spec) validatePubSub(loadNames map[string]bool) error {
	ps := s.PubSub
	if ps == nil {
		return nil
	}
	if s.Shards == nil {
		return fmt.Errorf("scenario %q: pubsub block requires a shards block (topics map onto the shard ring)", s.Name)
	}
	if len(ps.Topics) == 0 {
		return fmt.Errorf("scenario %q: pubsub block declares no topics", s.Name)
	}
	topics := map[string]bool{}
	for i, t := range ps.Topics {
		if t.Name == "" {
			return fmt.Errorf("scenario %q: pubsub topic %d unnamed", s.Name, i)
		}
		if topics[t.Name] {
			return fmt.Errorf("scenario %q: duplicate pubsub topic %q", s.Name, t.Name)
		}
		topics[t.Name] = true
		if _, err := t.qos(); err != nil {
			return fmt.Errorf("scenario %q: %v", s.Name, err)
		}
	}
	for i, pb := range ps.Publishers {
		if !topics[pb.Topic] {
			return fmt.Errorf("scenario %q: pubsub publisher %d on undeclared topic %q", s.Name, i, pb.Topic)
		}
		if pb.Node < 0 || pb.Node >= s.Nodes {
			return fmt.Errorf("scenario %q: pubsub publisher %d on unknown node %d (have %d)", s.Name, i, pb.Node, s.Nodes)
		}
		if pb.SubmitEveryMs <= 0 {
			return fmt.Errorf("scenario %q: pubsub publisher %d needs a positive submitEveryMs", s.Name, i)
		}
		if pb.Count < 0 {
			return fmt.Errorf("scenario %q: pubsub publisher %d has negative count %d", s.Name, i, pb.Count)
		}
	}
	subsAt := map[string]bool{}
	for i, sb := range ps.Subscribers {
		if !topics[sb.Topic] {
			return fmt.Errorf("scenario %q: pubsub subscriber %d on undeclared topic %q", s.Name, i, sb.Topic)
		}
		if sb.Node < 0 || sb.Node >= s.Nodes {
			return fmt.Errorf("scenario %q: pubsub subscriber %d on unknown node %d (have %d)", s.Name, i, sb.Node, s.Nodes)
		}
		key := fmt.Sprintf("%s@%d", sb.Topic, sb.Node)
		if subsAt[key] {
			return fmt.Errorf("scenario %q: two pubsub subscribers for topic %q on node %d", s.Name, sb.Topic, sb.Node)
		}
		subsAt[key] = true
		if sb.JoinAtMs < 0 {
			return fmt.Errorf("scenario %q: pubsub subscriber %d joins at negative instant %gms", s.Name, i, sb.JoinAtMs)
		}
		if sb.JoinAtMs >= s.HorizonMs {
			return fmt.Errorf("scenario %q: pubsub subscriber %d joins at %gms, past the %gms horizon", s.Name, i, sb.JoinAtMs, s.HorizonMs)
		}
	}
	for i, ls := range ps.Load {
		if ls.Name == "" {
			return fmt.Errorf("scenario %q: pubsub load %d unnamed", s.Name, i)
		}
		if loadNames[ls.Name] {
			return fmt.Errorf("scenario %q: duplicate load %q (metric series would collide)", s.Name, ls.Name)
		}
		loadNames[ls.Name] = true
		switch ls.Mode {
		case "", "closed", "open":
		default:
			return fmt.Errorf("scenario %q: pubsub load %q has unknown mode %q (want closed or open)", s.Name, ls.Name, ls.Mode)
		}
		switch ls.Workload {
		case "", "pubsub":
		default:
			return fmt.Errorf("scenario %q: pubsub load %q has workload %q (a pubsub-block load always publishes)", s.Name, ls.Name, ls.Workload)
		}
		if len(ls.Nodes) == 0 {
			return fmt.Errorf("scenario %q: pubsub load %q names no publisher nodes", s.Name, ls.Name)
		}
		seen := map[int]bool{}
		for _, n := range ls.Nodes {
			if n < 0 || n >= s.Nodes {
				return fmt.Errorf("scenario %q: pubsub load %q on unknown node %d (have %d)", s.Name, ls.Name, n, s.Nodes)
			}
			if seen[n] {
				return fmt.Errorf("scenario %q: pubsub load %q lists node %d twice", s.Name, ls.Name, n)
			}
			seen[n] = true
		}
		if len(ls.Keys) == 0 {
			return fmt.Errorf("scenario %q: pubsub load %q names no topics in keys", s.Name, ls.Name)
		}
		for _, k := range ls.Keys {
			if !topics[k] {
				return fmt.Errorf("scenario %q: pubsub load %q targets undeclared topic %q", s.Name, ls.Name, k)
			}
		}
		if ls.StartMs < 0 || ls.EndMs < 0 {
			return fmt.Errorf("scenario %q: pubsub load %q has a negative window bound [%gms, %gms]", s.Name, ls.Name, ls.StartMs, ls.EndMs)
		}
		cfg := ls.config(1, s.Horizon())
		cfg.Workload = load.Pub
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("scenario %q: %v", s.Name, err)
		}
	}
	return nil
}

// validateGroupLoads rejects malformed group-attached generators: a
// group load drives the group's replicated machine directly (submit at
// the current primary, complete at the first fresh apply), so it needs
// a replication style, only speaks the kv shape, and names no client
// nodes. loadNames carries the names declared elsewhere in the spec.
func (s Spec) validateGroupLoads(loadNames map[string]bool) error {
	for _, g := range s.Groups {
		for j, ls := range g.Load {
			if g.Style == "" {
				return fmt.Errorf("scenario %q: group %q attaches load but has no replication style (nothing to drive)", s.Name, g.Name)
			}
			if ls.Name == "" {
				return fmt.Errorf("scenario %q: group %q load %d unnamed", s.Name, g.Name, j)
			}
			if loadNames[ls.Name] {
				return fmt.Errorf("scenario %q: duplicate load %q (metric series would collide)", s.Name, ls.Name)
			}
			loadNames[ls.Name] = true
			switch ls.Mode {
			case "", "closed", "open":
			default:
				return fmt.Errorf("scenario %q: group load %q has unknown mode %q (want closed or open)", s.Name, ls.Name, ls.Mode)
			}
			switch ls.Workload {
			case "", "kv":
			default:
				return fmt.Errorf("scenario %q: group load %q has workload %q (a plain replication group only serves kv commands)", s.Name, ls.Name, ls.Workload)
			}
			if len(ls.Nodes) > 0 {
				return fmt.Errorf("scenario %q: group load %q names client nodes (group loads submit at the current primary; drop the nodes field)", s.Name, ls.Name)
			}
			if ls.StartMs < 0 || ls.EndMs < 0 {
				return fmt.Errorf("scenario %q: group load %q has a negative window bound [%gms, %gms]", s.Name, ls.Name, ls.StartMs, ls.EndMs)
			}
			cfg := ls.config(1, s.Horizon())
			if len(cfg.Keys) == 0 {
				cfg.Keys = []string{"cmd"}
			}
			if err := cfg.Validate(); err != nil {
				return fmt.Errorf("scenario %q: group %q: %v", s.Name, g.Name, err)
			}
		}
	}
	return nil
}

// groupLoadSeed derives a group generator's seed: a stream disjoint
// from the shard-plane loads' (loadSeed) and the client pickers'.
func groupLoadSeed(seed int64, group, i int) int64 {
	return seed*1000003 + int64(group+1)*15485863 + int64(i+1)*104729
}

// buildPubSub lowers the pubsub block onto the already-built shard
// set: declare topics, register endpoints, lay out the publishers'
// fixed submission schedules and attach the pubsub load generators.
// The spec is already validated; residual errors (all reachable only
// through spec skew) surface loudly.
func (s Spec) buildPubSub(c *cluster.Cluster, set *cluster.ShardSet) error {
	ps := s.PubSub
	for _, ts := range ps.Topics {
		q, err := ts.qos()
		if err != nil {
			return fmt.Errorf("scenario %q: %v", s.Name, err)
		}
		if _, err := set.Topic(ts.Name, q); err != nil {
			return fmt.Errorf("scenario %q: %v", s.Name, err)
		}
	}
	for _, pb := range ps.Publishers {
		pub, err := set.PublisherAt(pb.Topic, pb.Node)
		if err != nil {
			return fmt.Errorf("scenario %q: %v", s.Name, err)
		}
		every := msd(pb.SubmitEveryMs)
		i := 0
		for t := vtime.Duration(0); t < s.Horizon(); t += every {
			if pb.Count > 0 && i >= pb.Count {
				break
			}
			v := int64(i + 1)
			i++
			c.At(vtime.Time(t), func() { pub.Publish(v) })
		}
	}
	for _, sb := range ps.Subscribers {
		sub, err := set.SubscriberAt(sb.Topic, sb.Node)
		if err != nil {
			return fmt.Errorf("scenario %q: %v", s.Name, err)
		}
		if sb.JoinAtMs > 0 {
			if err := sub.SetJoinAt(vtime.Time(msd(sb.JoinAtMs))); err != nil {
				return fmt.Errorf("scenario %q: %v", s.Name, err)
			}
		}
	}
	base := 0
	if s.Shards != nil {
		base = len(s.Shards.Load)
	}
	for i, ls := range ps.Load {
		if ls.Disabled {
			continue
		}
		cfg := ls.config(loadSeed(s.Seed, base+i), s.Horizon())
		cfg.Workload = load.Pub
		set.AttachLoad(cfg, append([]int(nil), ls.Nodes...))
	}
	return nil
}
