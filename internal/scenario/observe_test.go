package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestObserveValidation rejects out-of-range observe blocks loudly and
// accepts well-formed ones.
func TestObserveValidation(t *testing.T) {
	base := func() Spec {
		spec, err := Builtin("sharded-kv")
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	cases := []struct {
		name    string
		observe *ObserveSpec
		wantErr string // "" = accepted
	}{
		{"rate above one", &ObserveSpec{TraceSampleRate: fptr(1.5)}, "traceSampleRate must be within [0,1]"},
		{"negative rate", &ObserveSpec{TraceSampleRate: fptr(-0.1)}, "traceSampleRate must be within [0,1]"},
		{"zero log limit", &ObserveSpec{LogLimit: iptr(0)}, "logLimit must be positive"},
		{"negative log limit", &ObserveSpec{LogLimit: iptr(-5)}, "logLimit must be positive"},
		{"valid block", &ObserveSpec{TraceSampleRate: fptr(0.25), LogLimit: iptr(100), RetainViolations: true}, ""},
		{"boundary rates", &ObserveSpec{TraceSampleRate: fptr(0)}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base()
			spec.Observe = tc.observe
			_, err := spec.withDefaults()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid observe block rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid observe block accepted: %+v", tc.observe)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q missing %q", err, tc.wantErr)
			}
		})
	}
}

// TestObserveJSONRoundTrip loads an observe block from scenario JSON
// and checks both the happy path and the loud rejection.
func TestObserveJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	data := `{
		"name": "observe-test", "nodes": 2, "seed": 3, "scheduler": "RM", "horizonMs": 50,
		"observe": {"traceSampleRate": 0.5, "logLimit": 200, "retainViolations": true},
		"tasks": [{"name": "a", "node": 0, "cBeforeUs": 500, "deadlineMs": 10, "periodMs": 10, "law": "periodic"}]
	}`
	if err := os.WriteFile(good, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := Load(good)
	if err != nil {
		t.Fatal(err)
	}
	o := spec.Observe
	if o == nil || o.TraceSampleRate == nil || *o.TraceSampleRate != 0.5 ||
		o.LogLimit == nil || *o.LogLimit != 200 || !o.RetainViolations {
		t.Fatalf("observe block not parsed: %+v", o)
	}
	clu, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tr := clu.Tracer(); tr == nil || tr.Rate() != 0.5 {
		t.Fatalf("tracer not wired from observe block: %v", tr)
	}

	bad := filepath.Join(dir, "bad.json")
	data = strings.Replace(data, `"traceSampleRate": 0.5`, `"traceSampleRate": 7`, 1)
	if err := os.WriteFile(bad, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "traceSampleRate must be within [0,1]") {
		t.Fatalf("out-of-range sample rate not rejected loudly: %v", err)
	}
}

// TestLatencyRowsPerShardAndClass is the tentpole acceptance check:
// both builtin scenarios report p50/p99/p999 per shard and per op
// class, and every row's layer breakdown accounts for its mean.
func TestLatencyRowsPerShardAndClass(t *testing.T) {
	cases := []struct {
		builtin string
		classes []string
	}{
		{"sharded-kv", []string{"kv.write"}},
		{"bank-transfer", []string{"txn.commit", "txn.abort"}},
	}
	for _, tc := range cases {
		t.Run(tc.builtin, func(t *testing.T) {
			spec, err := Builtin(tc.builtin)
			if err != nil {
				t.Fatal(err)
			}
			clu, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			rep := clu.Run(spec.Horizon())
			for _, class := range tc.classes {
				for _, shard := range []int{0, 1, -1} {
					l, ok := rep.LatencyOf(class, shard)
					if !ok {
						t.Errorf("no latency row for class %q shard %d", class, shard)
						continue
					}
					if l.Count == 0 || l.P50 <= 0 || l.P99 < l.P50 || l.P999 < l.P99 || l.Max < l.P999 {
						t.Errorf("implausible percentiles for %q shard %d: %+v", class, shard, l)
					}
					// The layer means must account for the end-to-end mean
					// to within integer-division rounding (one unit per
					// layer, ~1ns each at these scales — far inside the 1%
					// acceptance bound).
					sum := l.Queued + l.Batched + l.Wire + l.Replicating + l.Locked + l.Other
					diff := l.Mean - sum
					if diff < 0 {
						diff = -diff
					}
					if diff > 6 {
						t.Errorf("layer breakdown for %q shard %d off by %s (mean %s, sum %s)",
							class, shard, diff, l.Mean, sum)
					}
				}
			}
			// The exact invariant holds at the ScopeStats level: layers
			// partition every trace's root interval with no gap.
			for _, st := range clu.Tracer().Stats() {
				if got, want := st.Layers.Total(), st.Total; got != want {
					t.Errorf("%s shard %d: layer total %s != trace total %s", st.Class, st.Shard, got, want)
				}
			}
		})
	}
}

// TestZeroRateStillRetainsViolations runs bank-transfer with sampling
// off: histograms still observe every op, and every abort's full span
// tree is retained because aborts mark their traces violating.
func TestZeroRateStillRetainsViolations(t *testing.T) {
	spec, err := Builtin("bank-transfer")
	if err != nil {
		t.Fatal(err)
	}
	spec.Observe = &ObserveSpec{TraceSampleRate: fptr(0), RetainViolations: true}
	clu, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := clu.Run(spec.Horizon())
	tr := clu.Tracer()
	started, finished, retained, violating := tr.Counts()
	if started == 0 || finished == 0 {
		t.Fatalf("no traces observed: started=%d finished=%d", started, finished)
	}
	if retained != violating {
		t.Fatalf("at rate 0 only violating traces should be retained: retained=%d violating=%d", retained, violating)
	}
	aborts := 0
	for _, trc := range tr.Retained() {
		if !trc.Violating() {
			t.Fatalf("non-violating trace %d retained at rate 0", trc.ID())
		}
		if trc.Class() == "txn.abort" {
			aborts++
		}
	}
	if aborts == 0 {
		t.Fatal("no abort trace retained at rate 0")
	}
	// Histograms still cover the whole population, not just retained.
	if l, ok := rep.LatencyOf("txn.commit", -1); !ok || l.Count == 0 {
		t.Fatal("histograms lost the unsampled commits")
	}
}

func iptr(i int) *int { return &i }
