package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeEvent is one Chrome trace-event (the JSON array format
// chrome://tracing and Perfetto load). Spans export as complete "X"
// events grouped pid=shard / tid=trace, point events as instants, and
// metadata "M" events name the tracks.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeDoc is the exported document shape.
type ChromeDoc struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes traces as Chrome trace-event JSON. Timestamps and
// durations are virtual-time microseconds. Output is byte-identical
// for identical inputs: traces export in the given (completion) order,
// spans in creation order, and shard metadata sorted.
func WriteChrome(w io.Writer, traces []*Trace) error {
	events := make([]ChromeEvent, 0, 4*len(traces))
	shards := make(map[int]bool)
	for _, tr := range traces {
		if tr != nil {
			shards[tr.shard] = true
		}
	}
	order := make([]int, 0, len(shards))
	for sh := range shards {
		order = append(order, sh)
	}
	sort.Ints(order)
	for _, sh := range order {
		events = append(events, ChromeEvent{
			Name: "process_name", Ph: "M", Pid: sh,
			Args: map[string]any{"name": fmt.Sprintf("shard %d", sh)},
		})
	}
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		title := fmt.Sprintf("%s #%d", tr.class, tr.id)
		if lb := tr.Label(); lb != "" {
			title += " " + lb
		}
		events = append(events, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: tr.shard, Tid: tr.id,
			Args: map[string]any{"name": title},
		})
		for _, s := range tr.spans {
			dur := s.end.Sub(s.start).Micros()
			events = append(events, ChromeEvent{
				Name: s.name, Cat: "hades", Ph: "X",
				Ts: s.start.Micros(), Dur: &dur,
				Pid: tr.shard, Tid: tr.id,
				Args: map[string]any{"layer": s.layer.String(), "trace": tr.id},
			})
		}
		for _, m := range tr.marks {
			events = append(events, ChromeEvent{
				Name: m.Name, Cat: "hades", Ph: "i", S: "t",
				Ts: m.At.Micros(), Pid: tr.shard, Tid: tr.id,
			})
		}
		for _, v := range tr.viols {
			events = append(events, ChromeEvent{
				Name: "VIOLATION: " + v.Name, Cat: "hades", Ph: "i", S: "g",
				Ts: v.At.Micros(), Pid: tr.shard, Tid: tr.id,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ChromeDoc{TraceEvents: events, DisplayTimeUnit: "ms"})
}
