package trace

import (
	"testing"

	"hades/internal/vtime"
)

// BenchmarkTraceLifecycle measures the full per-op tracing cost on the
// KV hot path: Begin, the five layer spans a batched write crosses,
// Finish with the layer sweep, and histogram aggregation.
func BenchmarkTraceLifecycle(b *testing.B) {
	now := vtime.Time(0)
	tc := New(1, 1.0, func() vtime.Time { return now })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := tc.Begin("kv.write", i%2)
		tr.SetLabel("key01#1@n8")
		q := tr.Span("queue.key", LayerQueue)
		now += 50
		q.End()
		bt := tr.Span("batch.wait", LayerBatch)
		now += 100
		bt.End()
		w := tr.Span("rpc.batch", LayerWire)
		r := tr.Span("replicate.shard0", LayerReplicate)
		now += 300
		r.End()
		a := tr.Span("apply.shard0", LayerReplicate)
		now += 100
		a.End()
		w.End()
		tr.Finish()
	}
}

// BenchmarkTraceLifecycleUnretained is the same path at sample rate 0:
// traces feed histograms and die, nothing is retained.
func BenchmarkTraceLifecycleUnretained(b *testing.B) {
	now := vtime.Time(0)
	tc := New(1, 0, func() vtime.Time { return now })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := tc.Begin("kv.write", i%2)
		tr.SetLabel("key01#1@n8")
		q := tr.Span("queue.key", LayerQueue)
		now += 50
		q.End()
		bt := tr.Span("batch.wait", LayerBatch)
		now += 100
		bt.End()
		w := tr.Span("rpc.batch", LayerWire)
		r := tr.Span("replicate.shard0", LayerReplicate)
		now += 300
		r.End()
		a := tr.Span("apply.shard0", LayerReplicate)
		now += 100
		a.End()
		w.End()
		tr.Finish()
	}
}
