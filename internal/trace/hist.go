package trace

import "math/bits"

// histSubBits sets the histogram's resolution: 2^histSubBits
// sub-buckets per power of two, bounding relative quantile error at
// 1/2^histSubBits (~3%) — the classic HDR log-linear layout, sized for
// nanosecond latencies up to hours in ~1.3k buckets.
const histSubBits = 5

// Hist is a log-linear latency histogram: constant-time Record, exact
// count and max, percentile lookup with bounded relative error.
type Hist struct {
	counts []uint64
	total  uint64
	max    int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{} }

// bucketOf maps a value to its log-linear bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	u := uint64(v)
	n := bits.Len64(u)
	if n <= histSubBits+1 {
		return int(u)
	}
	shift := uint(n - histSubBits - 1)
	return int(uint64(shift)<<histSubBits + u>>shift)
}

// bucketUpper returns the largest value a bucket holds.
func bucketUpper(b int) int64 {
	if b < 1<<(histSubBits+1) {
		return int64(b)
	}
	shift := uint(b>>histSubBits - 1)
	sub := int64(b) - int64(shift)<<histSubBits
	return (sub+1)<<shift - 1
}

// Record adds one observation.
func (h *Hist) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	b := bucketOf(v)
	if b >= len(h.counts) {
		grown := make([]uint64, b+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[b]++
	h.total++
	if v > h.max {
		h.max = v
	}
}

// Merge folds another histogram into this one bucket-by-bucket; the
// result is identical to having recorded every observation here
// (buckets are positional, so no re-binning error is introduced).
func (h *Hist) Merge(o *Hist) {
	if h == nil || o == nil {
		return
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for b, c := range o.counts {
		h.counts[b] += c
	}
	h.total += o.total
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset clears the histogram for a new interval, keeping the bucket
// slice to stay allocation-free on the scrape path.
func (h *Hist) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.max = 0, 0
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Max returns the exact largest observation.
func (h *Hist) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Percentile returns the value at quantile p in [0,1]: the upper bound
// of the bucket holding the rank-th observation, clamped to the exact
// max.
func (h *Hist) Percentile(p float64) int64 {
	if h == nil || h.total == 0 {
		return 0
	}
	if p >= 1 {
		return h.max
	}
	if p < 0 {
		p = 0
	}
	rank := uint64(p*float64(h.total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketUpper(b)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}
