// Package trace is the causal observability plane: every client op and
// transaction gets a Trace at submission, layers open and close Spans
// at their boundaries (per-key queue, batcher wait, wire transit,
// replication round, lock wait, 2PC phases), and finished traces feed
// HDR-style latency histograms plus a Chrome trace-event exporter.
//
// Everything here is passive with respect to the simulation: the
// tracer never schedules events and never consumes the engine's seeded
// random stream (sampling hashes the trace ID instead), so a run with
// tracing enabled, disabled, or sampled at any rate is byte-identical
// in behaviour. All methods are nil-receiver safe so instrumentation
// call sites stay unconditional even when tracing is off.
package trace

import (
	"fmt"
	"sort"
	"strconv"

	"hades/internal/vtime"
)

// Layer classifies span time for the per-layer latency breakdown.
// Numeric order is attribution priority: when spans overlap, an
// instant of root time is charged to the highest active layer (a lock
// wait inside a prepare round counts as lock time, not wire time).
type Layer uint8

const (
	// LayerOther is root time no child span covers (and the layer of
	// structural spans that should not claim breakdown time).
	LayerOther Layer = iota
	// LayerWire is time inside an RPC: session call in flight,
	// including retries and redirects.
	LayerWire
	// LayerQueue is client-side queueing: per-key FIFO, txn admission.
	LayerQueue
	// LayerBatch is batcher time: coalescing wait plus pipeline stalls.
	LayerBatch
	// LayerReplicate is a replicated round: shard apply, decision log.
	LayerReplicate
	// LayerLock is participant lock-wait time.
	LayerLock

	numLayers
)

var layerNames = [numLayers]string{"other", "wire", "queue", "batch", "replicate", "lock"}

func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return "other"
}

// LayerTimes is a per-layer duration breakdown. For a finished trace
// the six fields partition the root span exactly: every instant is
// charged to precisely one layer.
type LayerTimes struct {
	Queue     vtime.Duration
	Batch     vtime.Duration
	Wire      vtime.Duration
	Replicate vtime.Duration
	Lock      vtime.Duration
	Other     vtime.Duration
}

func (lt *LayerTimes) add(l Layer, d vtime.Duration) {
	switch l {
	case LayerQueue:
		lt.Queue += d
	case LayerBatch:
		lt.Batch += d
	case LayerWire:
		lt.Wire += d
	case LayerReplicate:
		lt.Replicate += d
	case LayerLock:
		lt.Lock += d
	default:
		lt.Other += d
	}
}

func (lt *LayerTimes) addAll(o LayerTimes) {
	lt.Queue += o.Queue
	lt.Batch += o.Batch
	lt.Wire += o.Wire
	lt.Replicate += o.Replicate
	lt.Lock += o.Lock
	lt.Other += o.Other
}

// Total sums all layers; for one trace this equals the root duration.
func (lt LayerTimes) Total() vtime.Duration {
	return lt.Queue + lt.Batch + lt.Wire + lt.Replicate + lt.Lock + lt.Other
}

// span is one timed interval, stored by value inside its trace: span
// handles are (trace, index) pairs, so the storage holds no pointers
// beyond the name and survives slice growth without invalidating
// anything — every op pays to allocate and GC-scan this, so it stays
// small and flat.
type span struct {
	name   string
	start  vtime.Time
	end    vtime.Time
	parent int32
	layer  Layer
	open   bool
}

// SpanRef is a value handle to one timed interval of a trace. The zero
// SpanRef is a valid no-op handle (mirroring the nil-safety of Trace),
// and every SpanRef is generation-checked: once its trace finishes
// unretained and is recycled for a later op, a stale handle silently
// no-ops instead of touching the new trace. Spans are closed by End,
// or force-closed when the trace finishes; End after finish is a
// no-op.
type SpanRef struct {
	tr  *Trace
	id  uint64
	idx int32
}

func (s SpanRef) live() bool { return s.tr != nil && s.tr.id == s.id }

// End closes the span at the tracer's current virtual time.
func (s SpanRef) End() {
	if !s.live() {
		return
	}
	sp := &s.tr.spans[s.idx]
	if !sp.open {
		return
	}
	sp.open = false
	sp.end = s.tr.tc.now()
	if sp.layer != LayerOther {
		s.tr.advance(sp.end)
		s.tr.active[sp.layer]--
	}
}

// Child opens a nested span.
func (s SpanRef) Child(name string, layer Layer) SpanRef {
	if !s.live() || s.tr.finished {
		return SpanRef{}
	}
	return s.tr.newSpan(name, layer, s.idx)
}

// Name returns the span's label.
func (s SpanRef) Name() string {
	if !s.live() {
		return ""
	}
	return s.tr.spans[s.idx].name
}

// SpanLayer returns the span's breakdown layer.
func (s SpanRef) SpanLayer() Layer {
	if !s.live() {
		return LayerOther
	}
	return s.tr.spans[s.idx].layer
}

// Interval returns the span's start and end times (end is meaningful
// once closed).
func (s SpanRef) Interval() (vtime.Time, vtime.Time) {
	if !s.live() {
		return 0, 0
	}
	sp := &s.tr.spans[s.idx]
	return sp.start, sp.end
}

// Parent returns the index of the parent span within Trace.Spans
// (-1 for the root).
func (s SpanRef) Parent() int {
	if !s.live() {
		return -1
	}
	return int(s.tr.spans[s.idx].parent)
}

// Ref is a generation-checked trace handle for state whose lifetime
// can exceed the trace's: wire envelopes, server-side pending tables,
// 2PC coordinator and participant records. A trace that finishes
// neither sampled nor violating is recycled by a later Begin; a stale
// Ref then silently no-ops instead of corrupting the new trace. The
// zero Ref is a valid disabled handle.
type Ref struct {
	tr *Trace
	id uint64
}

// Ref returns a generation-checked handle to the trace (the zero Ref
// for a nil trace).
func (tr *Trace) Ref() Ref {
	if tr == nil {
		return Ref{}
	}
	return Ref{tr: tr, id: tr.id}
}

func (r Ref) live() bool { return r.tr != nil && r.tr.id == r.id }

// Span opens a child of the root span (a no-op handle if the ref is
// stale or the trace finished).
func (r Ref) Span(name string, layer Layer) SpanRef {
	if !r.live() {
		return SpanRef{}
	}
	return r.tr.Span(name, layer)
}

// Instant records a point event on the trace unless the ref is stale.
func (r Ref) Instant(format string, args ...any) {
	if r.live() {
		r.tr.Instant(format, args...)
	}
}

// Violate marks the trace violating unless the ref is stale. A late
// violation on a finished-but-not-yet-recycled trace still promotes it
// into the retained set; once the trace has been recycled, the moment
// to attribute the violation to it is gone and the call no-ops.
func (r Ref) Violate(format string, args ...any) {
	if r.live() {
		r.tr.Violate(format, args...)
	}
}

// Mark is a timestamped point event on a trace (retry, redirect,
// violation).
type Mark struct {
	At   vtime.Time
	Name string
}

// Trace is the span tree of one client op or transaction.
//
// The first spanArena spans (including the root) live inside the
// Trace itself rather than as individual heap objects: tracing sits
// on every op's hot path, and the arena keeps a typical KV or txn
// trace at one allocation total.
type Trace struct {
	tc        *Tracer
	id        uint64
	class     string
	label     string
	shard     int
	sampled   bool
	violating bool
	finished  bool
	retained  bool
	pooled    bool
	poolIdx   int32
	spans     []span // spans[0] is the root; backed by arena until it grows
	marks     []Mark
	viols     []Mark
	layers    LayerTimes
	// Incremental layer accounting: active counts per layer plus the
	// last accounting point. Virtual time is monotone, so charging the
	// interval since lastAt to the top active layer at every span open,
	// span close and finish yields exactly the sweep a sort-based pass
	// would compute, without sorting anything at finish time.
	active [numLayers]int16
	lastAt vtime.Time
	arena  [spanArena]span
	// Deferred label parts (SetLabelKey): formatted on first Label read.
	lkey  string
	lseq  uint64
	lnode int32
}

// spanArena covers the common KV trace exactly (root + queue + batch
// + wire + replicate + slack); the rarer, deeper cross-shard txn
// traces spill the whole span slice to one heap reallocation (handles
// are indices, so growth invalidates nothing). Sized down rather than
// up because every op pays to zero the arena.
const spanArena = 6

// ID returns the trace's submission-ordered identifier (0 for nil).
func (tr *Trace) ID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.id
}

// Label returns the caller-set label (a txn ID, a key), formatting a
// deferred SetLabelKey label on first use.
func (tr *Trace) Label() string {
	if tr == nil {
		return ""
	}
	if tr.label == "" && tr.lkey != "" {
		tr.label = tr.lkey + "#" + strconv.FormatUint(tr.lseq, 10) + "@n" + strconv.Itoa(int(tr.lnode))
	}
	return tr.label
}

// SetLabelKey attaches a keyed-op identity ("key#seq@nNode") without
// formatting it: labels are only read when a trace is exported, and
// building the string eagerly costs allocations on every op.
func (tr *Trace) SetLabelKey(key string, seq uint64, node int) {
	if tr == nil {
		return
	}
	tr.lkey, tr.lseq, tr.lnode = key, seq, int32(node)
}

// SetLabel attaches a human-readable identity to the trace.
func (tr *Trace) SetLabel(label string) {
	if tr == nil {
		return
	}
	tr.label = label
}

// Class returns the op class ("kv.write", "txn.commit", "txn.abort").
func (tr *Trace) Class() string {
	if tr == nil {
		return ""
	}
	return tr.class
}

// SetClass rewrites the op class; outcome-dependent classes (commit vs
// abort) are fixed just before Finish.
func (tr *Trace) SetClass(class string) {
	if tr == nil {
		return
	}
	tr.class = class
}

// Shard returns the shard the trace is attributed to.
func (tr *Trace) Shard() int {
	if tr == nil {
		return -1
	}
	return tr.shard
}

// Span opens a child of the root span.
func (tr *Trace) Span(name string, layer Layer) SpanRef {
	if tr == nil || tr.finished {
		return SpanRef{}
	}
	return tr.newSpan(name, layer, 0)
}

func (tr *Trace) newSpan(name string, layer Layer, parent int32) SpanRef {
	idx := int32(len(tr.spans))
	tr.spans = append(tr.spans, span{
		name:   name,
		layer:  layer,
		start:  tr.tc.now(),
		end:    -1,
		parent: parent,
		open:   true,
	})
	if layer != LayerOther {
		tr.advance(tr.spans[idx].start)
		tr.active[layer]++
	}
	return SpanRef{tr: tr, id: tr.id, idx: idx}
}

// advance charges the interval since the last accounting point to the
// highest-priority active layer (LayerOther when none is active) and
// moves the accounting point to now.
func (tr *Trace) advance(now vtime.Time) {
	if now <= tr.lastAt {
		return
	}
	top := LayerOther
	for l := numLayers - 1; l > LayerOther; l-- {
		if tr.active[l] > 0 {
			top = l
			break
		}
	}
	tr.layers.add(top, now.Sub(tr.lastAt))
	tr.lastAt = now
}

// Instant records a point event (retry, redirect, park) on the trace.
func (tr *Trace) Instant(format string, args ...any) {
	if tr == nil || tr.finished {
		return
	}
	tr.marks = append(tr.marks, Mark{At: tr.tc.now(), Name: fmt.Sprintf(format, args...)})
}

// Violate marks the trace violating (abort, failure, omission): it is
// retained with its full span tree regardless of the sample rate. A
// violation arriving after Finish (an in-flight duplicate dropped
// after the reply) still promotes the trace into the retained set.
func (tr *Trace) Violate(format string, args ...any) {
	if tr == nil {
		return
	}
	tr.viols = append(tr.viols, Mark{At: tr.tc.now(), Name: fmt.Sprintf(format, args...)})
	if tr.violating {
		return
	}
	tr.violating = true
	if tr.finished {
		if tr.pooled {
			tr.tc.unpool(tr)
		}
		tr.tc.violated++
		tr.tc.retain(tr)
	}
}

// Violating reports whether the trace carries at least one violation.
func (tr *Trace) Violating() bool { return tr != nil && tr.violating }

// Sampled reports whether the hash-based sampler selected the trace.
func (tr *Trace) Sampled() bool { return tr != nil && tr.sampled }

// Finished reports whether Finish has run.
func (tr *Trace) Finished() bool { return tr != nil && tr.finished }

// Spans returns handles to the span tree in creation order (root
// first). The handle slice is built on demand: spans live by value
// inside the trace, and only exporters and tests walk them.
func (tr *Trace) Spans() []SpanRef {
	if tr == nil {
		return nil
	}
	out := make([]SpanRef, len(tr.spans))
	for i := range out {
		out[i] = SpanRef{tr: tr, id: tr.id, idx: int32(i)}
	}
	return out
}

// Marks returns the trace's point events.
func (tr *Trace) Marks() []Mark {
	if tr == nil {
		return nil
	}
	return tr.marks
}

// Violations returns the trace's violation marks.
func (tr *Trace) Violations() []Mark {
	if tr == nil {
		return nil
	}
	return tr.viols
}

// Layers returns the per-layer breakdown (valid after Finish); the six
// layers sum exactly to Duration.
func (tr *Trace) Layers() LayerTimes {
	if tr == nil {
		return LayerTimes{}
	}
	return tr.layers
}

// Start returns the root span's start time.
func (tr *Trace) Start() vtime.Time {
	if tr == nil {
		return 0
	}
	return tr.spans[0].start
}

// End returns the root span's end time (valid after Finish).
func (tr *Trace) End() vtime.Time {
	if tr == nil {
		return 0
	}
	return tr.spans[0].end
}

// Duration returns the end-to-end latency (valid after Finish).
func (tr *Trace) Duration() vtime.Duration {
	if tr == nil {
		return 0
	}
	return tr.spans[0].end.Sub(tr.spans[0].start)
}

// Finish closes the trace at the current virtual time: open spans are
// force-closed, the root is renamed to the final class, the per-layer
// breakdown is sealed (it accumulates incrementally as spans open and
// close), histograms update (always), and the trace is retained iff
// sampled or violating.
func (tr *Trace) Finish() {
	if tr == nil || tr.finished {
		return
	}
	tr.finished = true
	now := tr.tc.now()
	tr.advance(now)
	for i := range tr.spans {
		if s := &tr.spans[i]; s.open {
			s.open = false
			s.end = now
		}
	}
	root := &tr.spans[0]
	root.name = tr.class
	if root.end < root.start {
		root.end = root.start
	}
	tr.tc.finishTrace(tr)
}

// Carrier is implemented by wire envelopes that carry trace references
// so the network can link message loss back to the causal history: a
// dropped carrier marks every referenced trace violating, which forces
// retention regardless of sample rate. Refs rather than *Trace so a
// drop of a stale duplicate (its trace already finished and recycled)
// is a safe no-op.
type Carrier interface {
	TraceRefs() []Ref
}

// Scope keys an aggregation bucket: op class × shard (-1 = all shards).
type Scope struct {
	Class string
	Shard int
}

type scopeAgg struct {
	hist   *Hist
	layers LayerTimes
	total  vtime.Duration
	count  int
}

// ScopeStats is one aggregated latency row: percentiles of end-to-end
// latency plus the summed per-layer breakdown for a class × shard.
type ScopeStats struct {
	Class string
	Shard int // -1 aggregates all shards
	Count int
	P50   vtime.Duration
	P99   vtime.Duration
	P999  vtime.Duration
	Max   vtime.Duration
	// Layers sums the per-trace breakdowns; Layers.Total() == Total.
	Layers LayerTimes
	// Total sums end-to-end latency over Count traces.
	Total vtime.Duration
}

// Mean returns the average end-to-end latency.
func (s ScopeStats) Mean() vtime.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / vtime.Duration(s.Count)
}

// Tracer mints traces, samples them deterministically, and aggregates
// finished traces into per-scope histograms. A nil Tracer is a valid
// disabled tracer: Begin returns nil and every downstream call no-ops.
type Tracer struct {
	seed     uint64
	rate     float64
	now      func() vtime.Time
	nextID   uint64
	started  int
	finished int
	violated int
	retained []*Trace
	// pool holds finished unretained traces for reuse: at sub-1.0
	// sample rates most traces die at finish, and recycling them keeps
	// the per-op tracing cost allocation-free in steady state. Stale
	// handles into recycled traces are rejected by generation checks
	// (SpanRef/Ref carry the trace id they were minted for).
	pool   []*Trace
	scopes map[Scope]*scopeAgg
	// lastScope/lastAgg memoize the hot aggregation bucket: a client
	// finishes runs of same-class, same-shard ops, so most observes hit
	// the scope of the previous one and skip the map.
	lastScope Scope
	lastAgg   *scopeAgg
}

// New builds a tracer over a virtual clock. rate is the fraction of
// traces retained with full span trees (violating traces are always
// retained); histograms observe every finished trace regardless.
func New(seed int64, rate float64, now func() vtime.Time) *Tracer {
	return &Tracer{
		seed:   uint64(seed),
		rate:   rate,
		now:    now,
		scopes: make(map[Scope]*scopeAgg),
	}
}

// splitmix64 is the sampling hash: cheap, stateless, and independent
// of the engine's seeded random stream, so sampling never perturbs the
// simulation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *Tracer) sampleID(id uint64) bool {
	if t.rate >= 1 {
		return true
	}
	if t.rate <= 0 {
		return false
	}
	h := splitmix64(id ^ t.seed)
	return float64(h>>11)/float64(uint64(1)<<53) < t.rate
}

// Begin mints a trace for one op, opening its root span now. Returns
// nil on a nil tracer.
//
// The returned *Trace is owned by the caller until Finish. After
// Finish, a trace that is neither sampled nor violating may be
// recycled by a later Begin — state that outlives the op must hold
// generation-checked handles (Ref, SpanRef), not the *Trace itself.
func (t *Tracer) Begin(class string, shard int) *Trace {
	if t == nil {
		return nil
	}
	t.nextID++
	t.started++
	var tr *Trace
	if n := len(t.pool); n > 0 {
		tr = t.pool[n-1]
		t.pool = t.pool[:n-1]
		tr.reset(t.nextID, class, shard, t.now())
	} else {
		tr = &Trace{tc: t, id: t.nextID, class: class, shard: shard, lastAt: t.now()}
		tr.spans = tr.arena[:0]
	}
	tr.sampled = t.sampleID(tr.id)
	tr.newSpan(class, LayerOther, -1)
	return tr
}

// reset rewinds a pooled trace for reuse. Slices keep their backing
// storage (a spilled span slice stays spilled), so a recycled trace
// records spans and marks without allocating.
func (tr *Trace) reset(id uint64, class string, shard int, now vtime.Time) {
	tr.id = id
	tr.class = class
	tr.label = ""
	tr.shard = shard
	tr.sampled, tr.violating, tr.finished, tr.retained, tr.pooled = false, false, false, false, false
	tr.spans = tr.spans[:0]
	tr.marks = tr.marks[:0]
	tr.viols = tr.viols[:0]
	tr.layers = LayerTimes{}
	tr.active = [numLayers]int16{}
	tr.lastAt = now
	tr.lkey, tr.lseq, tr.lnode = "", 0, 0
}

func (t *Tracer) unpool(tr *Trace) {
	last := t.pool[len(t.pool)-1]
	t.pool[tr.poolIdx] = last
	last.poolIdx = tr.poolIdx
	t.pool = t.pool[:len(t.pool)-1]
	tr.pooled = false
}

func (t *Tracer) retain(tr *Trace) {
	if tr.retained {
		return
	}
	tr.retained = true
	t.retained = append(t.retained, tr)
}

func (t *Tracer) finishTrace(tr *Trace) {
	t.finished++
	if tr.violating {
		t.violated++
	}
	d := tr.Duration()
	// Only the per-shard scope is updated on the hot path; the shard=-1
	// all-shards rows are synthesized by merging in Stats.
	t.observe(Scope{Class: tr.class, Shard: tr.shard}, d, tr.layers)
	if tr.sampled || tr.violating {
		t.retain(tr)
		return
	}
	// Neither sampled nor violating: the trace's numbers are in the
	// histograms and its span tree is dead — recycle it. A late
	// violation can still pull it back out of the pool.
	tr.pooled = true
	tr.poolIdx = int32(len(t.pool))
	t.pool = append(t.pool, tr)
}

func (t *Tracer) observe(sc Scope, d vtime.Duration, lt LayerTimes) {
	agg := t.lastAgg
	if agg == nil || t.lastScope != sc {
		agg = t.scopes[sc]
		if agg == nil {
			agg = &scopeAgg{hist: NewHist()}
			t.scopes[sc] = agg
		}
		t.lastScope, t.lastAgg = sc, agg
	}
	agg.count++
	agg.total += d
	agg.layers.addAll(lt)
	agg.hist.Record(int64(d))
}

// Retained returns the retained traces in completion order (late
// violation promotions append at their violation time), which is
// deterministic for a seeded run.
func (t *Tracer) Retained() []*Trace {
	if t == nil {
		return nil
	}
	return t.retained
}

// Counts reports tracer totals: traces started, finished, retained
// with full span trees, and violating.
func (t *Tracer) Counts() (started, finished, retained, violating int) {
	if t == nil {
		return 0, 0, 0, 0
	}
	return t.started, t.finished, len(t.retained), t.violated
}

// Rate returns the configured sample rate.
func (t *Tracer) Rate() float64 {
	if t == nil {
		return 0
	}
	return t.rate
}

func statsRow(class string, shard int, agg *scopeAgg) ScopeStats {
	return ScopeStats{
		Class:  class,
		Shard:  shard,
		Count:  agg.count,
		P50:    vtime.Duration(agg.hist.Percentile(0.50)),
		P99:    vtime.Duration(agg.hist.Percentile(0.99)),
		P999:   vtime.Duration(agg.hist.Percentile(0.999)),
		Max:    vtime.Duration(agg.hist.Max()),
		Layers: agg.layers,
		Total:  agg.total,
	}
}

// Stats returns one aggregated row per (class, shard) scope plus a
// shard = -1 all-shards row per class (synthesized here by merging the
// per-shard aggregates, so the hot path pays one histogram update per
// trace), sorted by class then shard.
func (t *Tracer) Stats() []ScopeStats {
	if t == nil {
		return nil
	}
	out := make([]ScopeStats, 0, len(t.scopes)*2)
	classes := make(map[string]*scopeAgg)
	for sc, agg := range t.scopes {
		out = append(out, statsRow(sc.Class, sc.Shard, agg))
		all := classes[sc.Class]
		if all == nil {
			all = &scopeAgg{hist: NewHist()}
			classes[sc.Class] = all
		}
		all.count += agg.count
		all.total += agg.total
		all.layers.addAll(agg.layers)
		all.hist.Merge(agg.hist)
	}
	for class, agg := range classes {
		out = append(out, statsRow(class, -1, agg))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}
