package trace

import "testing"

// TestHistMergeEquivalence: merging histograms is indistinguishable
// from recording every observation into one — count, max and
// percentiles all agree (buckets are positional, so no re-binning).
func TestHistMergeEquivalence(t *testing.T) {
	obsA := []int64{10, 100, 1_000, 50_000}
	obsB := []int64{5, 1_000_000, 77, 3_000_000_000}
	a, b, all := NewHist(), NewHist(), NewHist()
	for _, v := range obsA {
		a.Record(v)
		all.Record(v)
	}
	for _, v := range obsB {
		b.Record(v)
		all.Record(v)
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("count %d != %d", a.Count(), all.Count())
	}
	if a.Max() != all.Max() {
		t.Fatalf("max %d != %d", a.Max(), all.Max())
	}
	for _, p := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got, want := a.Percentile(p), all.Percentile(p); got != want {
			t.Fatalf("p%v: %d != %d", p, got, want)
		}
	}
}

// TestHistMergeEdgeCases: empty/nil operands and asymmetric bucket
// slices (the smaller histogram must grow to take the larger's tail).
func TestHistMergeEdgeCases(t *testing.T) {
	// Merge into an empty histogram.
	empty, full := NewHist(), NewHist()
	full.Record(123)
	full.Record(4_567_890)
	empty.Merge(full)
	if empty.Count() != 2 || empty.Max() != 4_567_890 {
		t.Fatalf("merge into empty lost data: count=%d max=%d", empty.Count(), empty.Max())
	}

	// Merge an empty histogram in: a no-op.
	before := full.Percentile(0.5)
	full.Merge(NewHist())
	if full.Count() != 2 || full.Percentile(0.5) != before {
		t.Fatalf("merging empty changed the histogram")
	}

	// Nil receiver and nil operand are both safe.
	var nilh *Hist
	nilh.Merge(full)
	full.Merge(nilh)
	if full.Count() != 2 {
		t.Fatalf("nil merge changed the histogram: %d", full.Count())
	}

	// The small histogram's bucket slice must grow to fit the large
	// observation's bucket index.
	small, large := NewHist(), NewHist()
	small.Record(1)
	large.Record(1 << 40)
	small.Merge(large)
	if small.Count() != 2 || small.Max() != 1<<40 {
		t.Fatalf("bucket growth lost the tail: count=%d max=%d", small.Count(), small.Max())
	}
	if p := small.Percentile(1); p < 1<<40 {
		t.Fatalf("p100 %d below the merged max bucket", p)
	}
}

// TestHistResetKeepsBuckets: Reset zeroes the content but keeps the
// bucket slice, and the histogram is immediately reusable.
func TestHistResetKeepsBuckets(t *testing.T) {
	h := NewHist()
	h.Record(1_000_000)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatalf("reset left residue: count=%d max=%d", h.Count(), h.Max())
	}
	h.Record(42)
	if h.Count() != 1 || h.Max() != 42 {
		t.Fatalf("histogram unusable after reset: count=%d max=%d", h.Count(), h.Max())
	}
	var nilh *Hist
	nilh.Reset() // must not panic
}
