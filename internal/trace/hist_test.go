package trace

import "testing"

// TestHistMergeEquivalence: merging histograms is indistinguishable
// from recording every observation into one — count, max and
// percentiles all agree (buckets are positional, so no re-binning).
func TestHistMergeEquivalence(t *testing.T) {
	obsA := []int64{10, 100, 1_000, 50_000}
	obsB := []int64{5, 1_000_000, 77, 3_000_000_000}
	a, b, all := NewHist(), NewHist(), NewHist()
	for _, v := range obsA {
		a.Record(v)
		all.Record(v)
	}
	for _, v := range obsB {
		b.Record(v)
		all.Record(v)
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("count %d != %d", a.Count(), all.Count())
	}
	if a.Max() != all.Max() {
		t.Fatalf("max %d != %d", a.Max(), all.Max())
	}
	for _, p := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got, want := a.Percentile(p), all.Percentile(p); got != want {
			t.Fatalf("p%v: %d != %d", p, got, want)
		}
	}
}

// TestHistMergeEdgeCases: empty/nil operands and asymmetric bucket
// slices (the smaller histogram must grow to take the larger's tail).
func TestHistMergeEdgeCases(t *testing.T) {
	// Merge into an empty histogram.
	empty, full := NewHist(), NewHist()
	full.Record(123)
	full.Record(4_567_890)
	empty.Merge(full)
	if empty.Count() != 2 || empty.Max() != 4_567_890 {
		t.Fatalf("merge into empty lost data: count=%d max=%d", empty.Count(), empty.Max())
	}

	// Merge an empty histogram in: a no-op.
	before := full.Percentile(0.5)
	full.Merge(NewHist())
	if full.Count() != 2 || full.Percentile(0.5) != before {
		t.Fatalf("merging empty changed the histogram")
	}

	// Nil receiver and nil operand are both safe.
	var nilh *Hist
	nilh.Merge(full)
	full.Merge(nilh)
	if full.Count() != 2 {
		t.Fatalf("nil merge changed the histogram: %d", full.Count())
	}

	// The small histogram's bucket slice must grow to fit the large
	// observation's bucket index.
	small, large := NewHist(), NewHist()
	small.Record(1)
	large.Record(1 << 40)
	small.Merge(large)
	if small.Count() != 2 || small.Max() != 1<<40 {
		t.Fatalf("bucket growth lost the tail: count=%d max=%d", small.Count(), small.Max())
	}
	if p := small.Percentile(1); p < 1<<40 {
		t.Fatalf("p100 %d below the merged max bucket", p)
	}
}

// TestHistTailResolution: the p999 report at the histogram's tail must
// stay within the log-linear layout's relative error bound
// (1/2^histSubBits) of the true order statistic, for tails spanning
// several powers of two.
func TestHistTailResolution(t *testing.T) {
	const relErr = 1.0 / (1 << histSubBits)
	cases := []struct {
		name string
		body int64 // value of the 99.9% bulk
		tail int64 // value of the top 0.1%
	}{
		{"millisecond tail", 1_000_000, 9_000_000},
		{"second-scale tail", 2_000_000, 1_500_000_000},
		{"tight tail", 1_000_000, 1_100_000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHist()
			const n = 10_000
			for i := 0; i < n-n/1000; i++ {
				h.Record(tc.body)
			}
			for i := 0; i < n/1000; i++ {
				h.Record(tc.tail)
			}
			got := h.Percentile(0.999)
			// The true p999 sits at the body/tail boundary; either value
			// is acceptable as long as the report stays within the
			// relative error bound of one of them.
			okNear := func(want int64) bool {
				diff := float64(got - want)
				if diff < 0 {
					diff = -diff
				}
				return diff <= relErr*float64(want)
			}
			if !okNear(tc.body) && !okNear(tc.tail) {
				t.Fatalf("p999=%d outside ±%.1f%% of both %d and %d",
					got, relErr*100, tc.body, tc.tail)
			}
			// The exact max is never smoothed away by bucketing.
			if h.Max() != tc.tail {
				t.Fatalf("max %d != %d", h.Max(), tc.tail)
			}
			if p1 := h.Percentile(1); p1 != tc.tail {
				t.Fatalf("p100 %d != exact max %d", p1, tc.tail)
			}
		})
	}
}

// TestHistTailOrdering: with a heavy tail, p999 must separate from p99
// (it reads the tail while p99 still reads the body), and an empty
// histogram reports zero for every percentile — no NaNs, no panics.
func TestHistTailOrdering(t *testing.T) {
	h := NewHist()
	const n = 10_000
	for i := 0; i < n-120; i++ {
		h.Record(1_000_000) // body: 1ms (ranks 1..9880)
	}
	for i := 0; i < 100; i++ {
		h.Record(20_000_000) // p99 band: 20ms (ranks 9881..9980)
	}
	for i := 0; i < 20; i++ {
		h.Record(400_000_000) // p999 band: 400ms (ranks 9981..10000)
	}
	p50, p99, p999 := h.Percentile(0.5), h.Percentile(0.99), h.Percentile(0.999)
	if !(p50 < p99 && p99 < p999) {
		t.Fatalf("percentiles not ordered: p50=%d p99=%d p999=%d", p50, p99, p999)
	}
	if p999 < 300_000_000 {
		t.Fatalf("p999=%d missed the 400ms tail band", p999)
	}

	empty := NewHist()
	for _, p := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if v := empty.Percentile(p); v != 0 {
			t.Fatalf("empty histogram p%v = %d, want 0", p, v)
		}
	}
}

// TestHistResetKeepsBuckets: Reset zeroes the content but keeps the
// bucket slice, and the histogram is immediately reusable.
func TestHistResetKeepsBuckets(t *testing.T) {
	h := NewHist()
	h.Record(1_000_000)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatalf("reset left residue: count=%d max=%d", h.Count(), h.Max())
	}
	h.Record(42)
	if h.Count() != 1 || h.Max() != 42 {
		t.Fatalf("histogram unusable after reset: count=%d max=%d", h.Count(), h.Max())
	}
	var nilh *Hist
	nilh.Reset() // must not panic
}
