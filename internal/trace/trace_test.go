package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"hades/internal/vtime"
)

func clock(now *vtime.Time) func() vtime.Time {
	return func() vtime.Time { return *now }
}

// TestNilSafety exercises every method on nil receivers: call sites
// are unconditional, so a disabled tracer must be inert everywhere.
func TestNilSafety(t *testing.T) {
	var tc *Tracer
	tr := tc.Begin("kv.write", 0)
	if tr != nil {
		t.Fatal("nil tracer minted a trace")
	}
	sp := tr.Span("x", LayerQueue)
	sp.End()
	sp.Child("y", LayerLock).End()
	tr.Instant("retry %d", 1)
	tr.Violate("boom")
	tr.SetLabel("l")
	tr.SetClass("c")
	tr.Finish()
	if tr.Violating() || tr.Sampled() || tr.Finished() {
		t.Fatal("nil trace reported state")
	}
	if tr.ID() != 0 || tr.Duration() != 0 || len(tr.Spans()) != 0 {
		t.Fatal("nil trace reported data")
	}
	if got := tc.Stats(); got != nil {
		t.Fatal("nil tracer reported stats")
	}
	if got := tc.Retained(); got != nil {
		t.Fatal("nil tracer retained traces")
	}
}

// TestLayerPartition checks the breakdown sweep: overlapping spans
// attribute by priority and the layers partition the root exactly.
func TestLayerPartition(t *testing.T) {
	now := vtime.Time(0)
	tc := New(1, 1, clock(&now))
	tr := tc.Begin("kv.write", 0)

	// [0,10us] queue, [10,20us] batch, [20,60us] wire with a
	// replicate span [30,50us] inside it and a lock span [40,45us]
	// inside that; [60,70us] uncovered (other).
	q := tr.Span("queue", LayerQueue)
	now = vtime.Time(10 * vtime.Microsecond)
	q.End()
	b := tr.Span("batch", LayerBatch)
	now = vtime.Time(20 * vtime.Microsecond)
	b.End()
	w := tr.Span("wire", LayerWire)
	now = vtime.Time(30 * vtime.Microsecond)
	r := w.Child("replicate", LayerReplicate)
	now = vtime.Time(40 * vtime.Microsecond)
	l := r.Child("lock", LayerLock)
	now = vtime.Time(45 * vtime.Microsecond)
	l.End()
	now = vtime.Time(50 * vtime.Microsecond)
	r.End()
	now = vtime.Time(60 * vtime.Microsecond)
	w.End()
	now = vtime.Time(70 * vtime.Microsecond)
	tr.Finish()

	lt := tr.Layers()
	us := vtime.Microsecond
	want := LayerTimes{Queue: 10 * us, Batch: 10 * us, Wire: 20 * us, Replicate: 15 * us, Lock: 5 * us, Other: 10 * us}
	if lt != want {
		t.Fatalf("layers = %+v, want %+v", lt, want)
	}
	if lt.Total() != tr.Duration() {
		t.Fatalf("layer total %v != duration %v", lt.Total(), tr.Duration())
	}
}

// TestSamplingAndViolationRetention: rate 0 retains nothing except
// violating traces; histograms still observe everything; a violation
// after Finish promotes the trace.
func TestSamplingAndViolationRetention(t *testing.T) {
	now := vtime.Time(0)
	tc := New(42, 0, clock(&now))
	var late *Trace
	for i := 0; i < 10; i++ {
		tr := tc.Begin("kv.write", 0)
		now = now.Add(vtime.Duration(i+1) * vtime.Microsecond)
		if i == 3 {
			tr.Violate("abort")
		}
		tr.Finish()
		if i == 5 {
			late = tr
		}
	}
	if got := len(tc.Retained()); got != 1 {
		t.Fatalf("retained %d traces at rate 0, want 1 (the violating one)", got)
	}
	if !tc.Retained()[0].Violating() {
		t.Fatal("retained trace is not the violating one")
	}
	st := tc.Stats()
	if len(st) != 2 || st[1].Count != 10 {
		t.Fatalf("stats = %+v, want 10 observations in both scopes", st)
	}
	late.Violate("omission: dropped in flight")
	if got := len(tc.Retained()); got != 2 {
		t.Fatalf("late violation did not promote: retained %d", got)
	}
	_, _, retained, violating := tc.Counts()
	if retained != 2 || violating != 2 {
		t.Fatalf("counts retained=%d violating=%d, want 2/2", retained, violating)
	}
}

// TestSamplingDeterministicAndProportional: the hash sampler is pure
// in (seed, id) and lands near the configured rate.
func TestSamplingDeterministicAndProportional(t *testing.T) {
	now := vtime.Time(0)
	mk := func() []bool {
		tc := New(7, 0.3, clock(&now))
		out := make([]bool, 1000)
		for i := range out {
			out[i] = tc.Begin("c", 0).Sampled()
		}
		return out
	}
	a, b := mk(), mk()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic across tracers with same seed")
		}
		if a[i] {
			hits++
		}
	}
	if hits < 240 || hits > 360 {
		t.Fatalf("rate 0.3 sampled %d/1000", hits)
	}
}

func TestHistPercentiles(t *testing.T) {
	h := NewHist()
	for v := int64(1); v <= 10000; v++ {
		h.Record(v)
	}
	if h.Count() != 10000 || h.Max() != 10000 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	for _, c := range []struct {
		p    float64
		want int64
	}{{0.5, 5000}, {0.99, 9900}, {0.999, 9990}, {1, 10000}} {
		got := h.Percentile(c.p)
		lo := c.want - c.want/16
		hi := c.want + c.want/16
		if got < lo || got > hi {
			t.Fatalf("p%v = %d, want within [%d,%d]", c.p, got, lo, hi)
		}
	}
	if NewHist().Percentile(0.5) != 0 {
		t.Fatal("empty hist percentile != 0")
	}
}

func TestHistBucketsMonotonic(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<20; v += 37 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", v, b, prev)
		}
		prev = b
		if up := bucketUpper(b); up < v {
			t.Fatalf("bucketUpper(%d) = %d < value %d", b, up, v)
		}
	}
}

// TestChromeExport: exported JSON parses, carries the span tree and
// violation instants, and is byte-identical across identical inputs.
func TestChromeExport(t *testing.T) {
	build := func() *Tracer {
		now := vtime.Time(0)
		tc := New(3, 1, clock(&now))
		tr := tc.Begin("txn.commit", 1)
		tr.SetLabel("t6.1")
		sp := tr.Span("2pc.prepare.s1", LayerWire)
		now = vtime.Time(5 * vtime.Microsecond)
		sp.Child("lock.wait.s1", LayerLock).End()
		sp.End()
		tr.Instant("retry 1/8")
		tr.Violate("deadline")
		now = vtime.Time(9 * vtime.Microsecond)
		tr.Finish()
		return tc
	}
	var a, b bytes.Buffer
	if err := WriteChrome(&a, build().Retained()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, build().Retained()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("export not byte-deterministic")
	}
	var doc ChromeDoc
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export does not parse: %v", err)
	}
	var spans, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
		case "i":
			instants++
		}
	}
	if spans != 3 {
		t.Fatalf("exported %d spans, want 3 (root + prepare + lock)", spans)
	}
	if instants != 2 {
		t.Fatalf("exported %d instants, want 2 (retry + violation)", instants)
	}
}
