package storage

import (
	"errors"
	"testing"

	"hades/internal/eventq"
	"hades/internal/monitor"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

const us = vtime.Microsecond

type payload struct {
	X int64
	S string
}

func TestWriteReadRoundTrip(t *testing.T) {
	eng := simkern.NewEngine(monitor.NewLog(0), 3)
	eng.AddProcessor("n0", 0)
	s := New(eng, 0, 50*us)
	var werr error
	done := false
	s.Write("k", payload{X: 42, S: "hello"}, func(err error) { werr = err; done = true })
	eng.RunUntilIdle()
	if !done || werr != nil {
		t.Fatalf("write done=%v err=%v", done, werr)
	}
	var out payload
	if err := s.Read("k", &out); err != nil {
		t.Fatal(err)
	}
	if out.X != 42 || out.S != "hello" {
		t.Fatalf("read %+v", out)
	}
	if s.Writes != 1 {
		t.Fatalf("writes = %d", s.Writes)
	}
}

func TestWriteTakesTwoLatencies(t *testing.T) {
	eng := simkern.NewEngine(nil, 3)
	eng.AddProcessor("n0", 0)
	s := New(eng, 0, 100*us)
	var at vtime.Time
	s.Write("k", 1, func(error) { at = eng.Now() })
	eng.RunUntilIdle()
	if at != vtime.Time(200*us) {
		t.Fatalf("write completed at %s, want 200us (two copies)", at)
	}
}

func TestOverwriteKeepsNewest(t *testing.T) {
	eng := simkern.NewEngine(nil, 3)
	eng.AddProcessor("n0", 0)
	s := New(eng, 0, 10*us)
	s.Write("k", 1, func(error) {})
	eng.RunUntilIdle()
	s.Write("k", 2, func(error) {})
	eng.RunUntilIdle()
	var v int
	if err := s.Read("k", &v); err != nil || v != 2 {
		t.Fatalf("v=%d err=%v", v, err)
	}
}

func TestCrashBetweenCopiesRecovers(t *testing.T) {
	eng := simkern.NewEngine(nil, 3)
	eng.AddProcessor("n0", 0)
	s := New(eng, 0, 100*us)
	s.Write("k", "old", func(error) {})
	eng.RunUntilIdle()

	// Second write starts at t=200us: copy A lands at 300us, copy B at
	// 400us. Crash at 350us — exactly between the two copies.
	var gotErr error
	s.Write("k", "new", func(err error) { gotErr = err })
	eng.At(vtime.Time(350*us), eventq.ClassApp, func() { s.Crash() })
	eng.RunUntilIdle()
	if !errors.Is(gotErr, ErrCrashed) {
		t.Fatalf("write error = %v, want ErrCrashed", gotErr)
	}
	s.Recover()
	var v string
	if err := s.Read("k", &v); err != nil {
		t.Fatal(err)
	}
	// Copy A carries "new" (valid, newer); recovery must pick it.
	if v != "new" {
		t.Fatalf("recovered %q", v)
	}
	if s.Recoveries == 0 {
		t.Fatal("recovery not counted")
	}
}

func TestCrashBeforeAnyCopy(t *testing.T) {
	eng := simkern.NewEngine(nil, 3)
	eng.AddProcessor("n0", 0)
	s := New(eng, 0, 100*us)
	s.Write("k", "old", func(error) {})
	eng.RunUntilIdle()
	// Second write starts at t=200us; crash at 250us, before copy A
	// lands (300us): the in-flight copy tears, the sibling survives.
	s.Write("k", "new", func(error) {})
	eng.At(vtime.Time(250*us), eventq.ClassApp, func() { s.Crash() })
	eng.RunUntilIdle()
	s.Recover()
	var v string
	if err := s.Read("k", &v); err != nil {
		t.Fatal(err)
	}
	if v != "old" && v != "new" {
		t.Fatalf("recovered garbage %q", v)
	}
}

func TestReadMissing(t *testing.T) {
	eng := simkern.NewEngine(nil, 3)
	eng.AddProcessor("n0", 0)
	s := New(eng, 0, 10*us)
	var v int
	if err := s.Read("ghost", &v); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestOpsOnCrashedStore(t *testing.T) {
	eng := simkern.NewEngine(nil, 3)
	eng.AddProcessor("n0", 0)
	s := New(eng, 0, 10*us)
	s.Crash()
	var werr error
	s.Write("k", 1, func(err error) { werr = err })
	if !errors.Is(werr, ErrCrashed) {
		t.Fatal("write on crashed store accepted")
	}
	var v int
	if err := s.Read("k", &v); !errors.Is(err, ErrCrashed) {
		t.Fatal("read on crashed store accepted")
	}
	if !s.Crashed() {
		t.Fatal("Crashed() false")
	}
}
