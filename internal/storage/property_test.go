package storage

import (
	"testing"
	"testing/quick"

	"hades/internal/eventq"
	"hades/internal/monitor"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// Property: whatever instant the store crashes at, a previously
// committed record recovers to either its old or its new value — never
// to garbage, never lost. This is the two-copy atomicity invariant.
func TestPropertyCrashAnywhereIsAtomic(t *testing.T) {
	f := func(crashAtRaw uint16) bool {
		eng := simkern.NewEngine(monitor.NewLog(0), 3)
		eng.AddProcessor("n0", 0)
		s := New(eng, 0, 100*us)
		s.Write("k", "old", func(error) {})
		eng.RunUntilIdle() // committed at 200us

		s.Write("k", "new", func(error) {})
		// Crash anywhere in [200us, 500us): before, during, between or
		// after the two copy writes.
		offsetNs := vtime.Duration(crashAtRaw) * (300 * us) / vtime.Duration(1<<16)
		crashAt := vtime.Time(200 * us).Add(offsetNs)
		eng.At(crashAt, eventq.ClassApp, func() { s.Crash() })
		eng.RunUntilIdle()
		s.Recover()
		var v string
		if err := s.Read("k", &v); err != nil {
			return false // committed record lost
		}
		return v == "old" || v == "new"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: version monotonicity — after n sequential committed writes
// the store returns the last one.
func TestPropertySequentialWrites(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := 1 + int(nRaw%10)
		eng := simkern.NewEngine(nil, 3)
		eng.AddProcessor("n0", 0)
		s := New(eng, 0, 10*us)
		for i := 0; i < n; i++ {
			s.Write("k", i, func(error) {})
			eng.RunUntilIdle()
		}
		var v int
		if err := s.Read("k", &v); err != nil {
			return false
		}
		return v == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
