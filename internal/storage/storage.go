// Package storage implements the persistent storage service of §2.2.1
// as two-copy atomic stable storage with checksums.
//
// The classic construction: every logical record is kept as two physical
// copies, each carrying a version number and a CRC. A write updates copy
// A, then copy B; a crash between the two leaves one valid newer copy
// and one valid older copy — recovery picks the newest valid one, so a
// record is never lost or torn. Writes take simulated time (two media
// operations), during which a crash may be injected to exercise
// recovery. Passive replication uses this service for checkpoints.
package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"hades/internal/eventq"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// copyRec is one physical copy of a record.
type copyRec struct {
	version uint64
	data    []byte
	crc     uint32
	valid   bool // false models a torn write
}

func (c *copyRec) ok() bool {
	return c.valid && c.data != nil && crc32.ChecksumIEEE(c.data) == c.crc
}

// Store is one node's stable storage device.
type Store struct {
	eng      *simkern.Engine
	node     int
	writeLat vtime.Duration // latency per physical copy write
	records  map[string]*[2]copyRec
	crashed  bool
	pending  int

	// Writes and Recoveries count operations for the harness.
	Writes     int
	Recoveries int
}

// New creates a stable store on a node with the given per-copy write
// latency.
func New(eng *simkern.Engine, node int, writeLat vtime.Duration) *Store {
	return &Store{
		eng:      eng,
		node:     node,
		writeLat: writeLat,
		records:  make(map[string]*[2]copyRec),
	}
}

// Errors.
var (
	// ErrCrashed is returned for operations on a crashed store.
	ErrCrashed = errors.New("storage: store is crashed")
	// ErrNotFound is returned when no valid copy of a key exists.
	ErrNotFound = errors.New("storage: record not found")
)

// Write durably stores value under key, calling done when both copies
// hit the medium. value is serialised with encoding/json (stdlib-only
// persistence format). If the store crashes mid-write the record stays
// recoverable at its previous version.
func (s *Store) Write(key string, value any, done func(error)) {
	if s.crashed {
		done(ErrCrashed)
		return
	}
	data, err := json.Marshal(value)
	if err != nil {
		done(fmt.Errorf("storage: encoding %q: %w", key, err))
		return
	}
	rec := s.records[key]
	if rec == nil {
		rec = &[2]copyRec{}
		s.records[key] = rec
	}
	newVersion := maxVersion(rec) + 1
	s.pending++
	// Copy A first...
	s.eng.After(s.writeLat, eventq.ClassApp, func() {
		if s.crashed {
			rec[0].valid = false // torn write on copy A
			s.pending--
			done(ErrCrashed)
			return
		}
		rec[0] = copyRec{version: newVersion, data: data, crc: crc32.ChecksumIEEE(data), valid: true}
		// ...then copy B.
		s.eng.After(s.writeLat, eventq.ClassApp, func() {
			s.pending--
			if s.crashed {
				rec[1].valid = false
				done(ErrCrashed)
				return
			}
			rec[1] = copyRec{version: newVersion, data: data, crc: crc32.ChecksumIEEE(data), valid: true}
			s.Writes++
			done(nil)
		})
	})
}

// Read returns the newest valid copy of key, decoded into out (a
// pointer), running recovery over the two copies.
func (s *Store) Read(key string, out any) error {
	if s.crashed {
		return ErrCrashed
	}
	rec := s.records[key]
	if rec == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	best := -1
	var bestVer uint64
	for i := range rec {
		if rec[i].ok() && (best == -1 || rec[i].version > bestVer) {
			best, bestVer = i, rec[i].version
		}
	}
	if best == -1 {
		return fmt.Errorf("%w: %q (no valid copy)", ErrNotFound, key)
	}
	if rec[0].version != rec[1].version || !rec[0].ok() || !rec[1].ok() {
		s.Recoveries++
	}
	return json.Unmarshal(rec[best].data, out)
}

// Crash marks the store crashed: in-flight writes tear, operations fail.
func (s *Store) Crash() { s.crashed = true }

// Recover brings the store back; torn copies are repaired from their
// surviving sibling on the next Read.
func (s *Store) Recover() { s.crashed = false }

// Crashed reports the crash state.
func (s *Store) Crashed() bool { return s.crashed }

// Node returns the owning processor ID.
func (s *Store) Node() int { return s.node }

func maxVersion(rec *[2]copyRec) uint64 {
	v := rec[0].version
	if rec[1].version > v {
		v = rec[1].version
	}
	return v
}
