// Package simkern is the simulated COTS real-time kernel that HADES runs
// on, substituting for the ChorusR3 kernel of the paper's prototype.
//
// The paper requires only "standard process management mechanisms
// (priority-based preemptive scheduling, interprocess synchronization,
// separate address spaces) and a predictable behavior" from the underlying
// kernel (§2.2.1). This package provides exactly that surface over a
// deterministic discrete-event engine:
//
//   - a virtual clock and event queue (predictability becomes determinism:
//     a run is a pure function of its inputs and seed);
//   - mono-processor nodes with preemptive priority scheduling and
//     preemption thresholds (§3.1.2);
//   - threads made of segments, each with its own preemption threshold, so
//     that kernel calls can run with pt = PrioMax as the paper mandates;
//   - interrupt sources (periodic clock tick, sporadic device interrupts)
//     that preempt all threads, matching §4.2's background kernel
//     activities;
//   - context-switch cost charging on the CPU timeline, so measured
//     schedules and the feasibility tests of §5.3 account the same events.
package simkern

import (
	"fmt"
	"math/rand"

	"hades/internal/eventq"
	"hades/internal/metrics"
	"hades/internal/monitor"
	"hades/internal/trace"
	"hades/internal/vtime"
)

// Priority levels. Higher values are more urgent. PrioMax is reserved for
// kernel mechanisms per §3.1.2 ("The higher priority level prio_max is
// reserved for kernel mechanisms"); interrupts run above every thread.
const (
	// PrioMin is the lowest priority an application thread may use.
	PrioMin = 0
	// PrioMax is the kernel priority level: segments with pt = PrioMax
	// cannot be preempted by any thread, only by interrupts.
	PrioMax = 1 << 20
)

// Engine is the discrete-event core: one virtual clock and event queue
// shared by every processor and device of a run. It is not safe for
// concurrent use; a run is single-threaded by design.
type Engine struct {
	now     vtime.Time
	queue   eventq.Queue
	log     *monitor.Log
	rand    *rand.Rand
	tracer  *trace.Tracer
	metrics *metrics.Registry
	procs   []*Processor

	running  bool
	stopReq  bool
	fired    uint64
	readySeq uint64
}

// NewEngine returns an engine with the given trace log (may be nil) and
// deterministic seed.
func NewEngine(log *monitor.Log, seed int64) *Engine {
	return &Engine{log: log, rand: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() vtime.Time { return e.now }

// Log returns the engine's trace log (may be nil).
func (e *Engine) Log() *monitor.Log { return e.log }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rand }

// SetTracer attaches the causal tracing plane. The tracer is passive
// (it never schedules events or consumes Rand), so attaching one does
// not change a run's behaviour.
func (e *Engine) SetTracer(t *trace.Tracer) { e.tracer = t }

// Tracer returns the attached tracer; nil (a valid disabled tracer)
// when tracing is off.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// SetMetrics attaches the virtual-time metrics plane. Like the
// tracer, the registry is passive — its scrape events read instrument
// state without mutating the simulation or consuming Rand — so
// attaching one does not change a run's behaviour.
func (e *Engine) SetMetrics(r *metrics.Registry) { e.metrics = r }

// Metrics returns the attached metrics registry; nil (a valid
// disabled registry handing out no-op instruments) when metrics are
// off.
func (e *Engine) Metrics() *metrics.Registry { return e.metrics }

// QueueLen returns the number of live events in the queue (the
// eventq-depth signal the metrics plane samples).
func (e *Engine) QueueLen() int { return e.queue.Len() }

// Processors returns the registered processors in creation order.
func (e *Engine) Processors() []*Processor { return e.procs }

// At schedules fn at absolute instant t. Scheduling in the past panics:
// in a predictable system causality violations are programming errors.
func (e *Engine) At(t vtime.Time, class eventq.Class, fn func()) *eventq.Event {
	if t < e.now {
		panic(fmt.Sprintf("simkern: scheduling event in the past (%s < %s)", t, e.now))
	}
	return e.queue.Push(t, class, fn)
}

// After schedules fn d from now.
func (e *Engine) After(d vtime.Duration, class eventq.Class, fn func()) *eventq.Event {
	if d < 0 {
		panic(fmt.Sprintf("simkern: negative delay %s", d))
	}
	return e.At(e.now.Add(d), class, fn)
}

// Cancel cancels a scheduled event.
func (e *Engine) Cancel(ev *eventq.Event) { e.queue.Cancel(ev) }

// Stop makes Run return after the currently firing event.
func (e *Engine) Stop() { e.stopReq = true }

// EventsFired returns the total number of events processed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Run processes events until the queue is exhausted or the virtual clock
// would pass until. It returns the time at which it stopped.
func (e *Engine) Run(until vtime.Time) vtime.Time {
	if e.running {
		panic("simkern: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	e.stopReq = false
	for {
		if e.stopReq {
			return e.now
		}
		next := e.queue.Peek()
		if next == nil {
			return e.now
		}
		if next.At > until {
			e.now = until
			return e.now
		}
		ev := e.queue.Pop()
		e.now = ev.At
		e.fired++
		ev.Fire()
	}
}

// RunUntilIdle processes events until none remain.
func (e *Engine) RunUntilIdle() vtime.Time { return e.Run(vtime.Infinity) }

// nextReadySeq hands out FIFO tie-break sequence numbers for ready queues.
func (e *Engine) nextReadySeq() uint64 {
	e.readySeq++
	return e.readySeq
}

func (e *Engine) record(kind monitor.Kind, node int, subject, detail string) {
	if e.log == nil {
		return
	}
	e.log.Record(monitor.Event{At: e.now, Kind: kind, Node: node, Subject: subject, Detail: detail})
}
