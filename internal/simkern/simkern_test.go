package simkern

import (
	"testing"

	"hades/internal/eventq"
	"hades/internal/monitor"
	"hades/internal/vtime"
)

const us = vtime.Microsecond

func newEng() *Engine {
	return NewEngine(monitor.NewLog(0), 1)
}

func TestSingleThreadRunsToCompletion(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	done := vtime.Time(-1)
	th := p.NewThread("a", 5)
	th.AddSegment(Segment{Name: "body", Work: 100 * us})
	th.OnComplete = func() { done = eng.Now() }
	th.Ready()
	eng.RunUntilIdle()
	if done != vtime.Time(100*us) {
		t.Fatalf("completion at %s, want 100us", done)
	}
	if got := th.CPUTime(); got != 100*us {
		t.Fatalf("CPUTime = %s, want 100us", got)
	}
	if !th.Finished() {
		t.Fatal("thread not finished")
	}
}

func TestPriorityPreemption(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	var finish []string
	lo := p.NewThread("lo", 1)
	lo.AddSegment(Segment{Work: 100 * us})
	lo.OnComplete = func() { finish = append(finish, "lo") }
	lo.Ready()

	eng.After(10*us, eventq.ClassDispatch, func() {
		hi := p.NewThread("hi", 9)
		hi.AddSegment(Segment{Work: 20 * us})
		hi.OnComplete = func() { finish = append(finish, "hi") }
		hi.Ready()
	})
	end := eng.RunUntilIdle()
	if len(finish) != 2 || finish[0] != "hi" || finish[1] != "lo" {
		t.Fatalf("finish order %v, want [hi lo]", finish)
	}
	// lo: 10 before the preemption, hi's 20, then lo's remaining 90:
	// idle at 10+20+90 = 120us.
	if end != vtime.Time(120*us) {
		t.Fatalf("idle at %s, want 120us", end)
	}
	if p.Preemptions() != 1 {
		t.Fatalf("preemptions = %d, want 1", p.Preemptions())
	}
}

func TestEqualPriorityIsFIFO(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	var finish []string
	for _, name := range []string{"a", "b", "c"} {
		n := name
		th := p.NewThread(n, 5)
		th.AddSegment(Segment{Work: 10 * us})
		th.OnComplete = func() { finish = append(finish, n) }
		th.Ready()
	}
	eng.RunUntilIdle()
	if finish[0] != "a" || finish[1] != "b" || finish[2] != "c" {
		t.Fatalf("finish order %v", finish)
	}
}

func TestPreemptionThresholdBlocksPreemption(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	var order []string
	lo := p.NewThread("lo", 1)
	lo.AddSegment(Segment{Work: 100 * us, PT: 9}) // threshold above hi
	lo.OnComplete = func() { order = append(order, "lo") }
	lo.Ready()
	eng.After(10*us, eventq.ClassDispatch, func() {
		hi := p.NewThread("hi", 8) // 8 <= pt 9: must NOT preempt
		hi.AddSegment(Segment{Work: 20 * us})
		hi.OnComplete = func() { order = append(order, "hi") }
		hi.Ready()
	})
	eng.RunUntilIdle()
	if order[0] != "lo" {
		t.Fatalf("order %v: preemption threshold violated", order)
	}
	if p.Preemptions() != 0 {
		t.Fatalf("preemptions = %d, want 0", p.Preemptions())
	}
}

func TestPreemptionThresholdExceeded(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	var order []string
	lo := p.NewThread("lo", 1)
	lo.AddSegment(Segment{Work: 100 * us, PT: 5})
	lo.OnComplete = func() { order = append(order, "lo") }
	lo.Ready()
	eng.After(10*us, eventq.ClassDispatch, func() {
		hi := p.NewThread("hi", 6) // 6 > pt 5: preempts
		hi.AddSegment(Segment{Work: 20 * us})
		hi.OnComplete = func() { order = append(order, "hi") }
		hi.Ready()
	})
	eng.RunUntilIdle()
	if order[0] != "hi" {
		t.Fatalf("order %v: priority above threshold failed to preempt", order)
	}
}

func TestDynamicPriorityChangeCausesPreemption(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	var order []string
	a := p.NewThread("a", 5)
	a.AddSegment(Segment{Work: 100 * us})
	a.OnComplete = func() { order = append(order, "a") }
	a.Ready()
	b := p.NewThread("b", 5)
	b.AddSegment(Segment{Work: 10 * us})
	b.OnComplete = func() { order = append(order, "b") }
	b.Ready() // FIFO: a runs first
	eng.After(20*us, eventq.ClassDispatch, func() {
		b.SetPriority(7) // EDF-style raise: b must now preempt a
	})
	eng.RunUntilIdle()
	if order[0] != "b" {
		t.Fatalf("order %v, want b first after priority raise", order)
	}
}

func TestPriorityLoweringOfRunningThread(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	var order []string
	a := p.NewThread("a", 7)
	a.AddSegment(Segment{Work: 100 * us})
	a.OnComplete = func() { order = append(order, "a") }
	a.Ready()
	b := p.NewThread("b", 5)
	b.AddSegment(Segment{Work: 10 * us})
	b.OnComplete = func() { order = append(order, "b") }
	b.Ready()
	eng.After(20*us, eventq.ClassDispatch, func() {
		a.SetPriority(3) // Figure 2: lowering the running thread
	})
	eng.RunUntilIdle()
	if order[0] != "b" {
		t.Fatalf("order %v: lowering running thread must let b preempt", order)
	}
}

func TestInterruptPreemptsEverything(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	var irqAt vtime.Time
	th := p.NewThread("t", PrioMax-1)
	th.AddSegment(Segment{Work: 100 * us, PT: PrioMax}) // even kernel-call segments
	th.Ready()
	eng.After(10*us, eventq.ClassInterrupt, func() {
		p.RaiseIRQ("test", 5*us, func() { irqAt = eng.Now() })
	})
	end := eng.RunUntilIdle()
	if irqAt != vtime.Time(15*us) {
		t.Fatalf("irq handled at %s, want 15us", irqAt)
	}
	if end != vtime.Time(105*us) {
		t.Fatalf("thread done at %s, want 105us (100 work + 5 irq)", end)
	}
	if p.IRQTime() != 5*us {
		t.Fatalf("IRQTime = %s", p.IRQTime())
	}
}

func TestClockTick(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	p.StartClockTick(1*vtime.Millisecond, 5*us)
	// The 10th tick arrives at 10ms and its 5us handler completes just
	// after; run slightly past the last period boundary.
	eng.Run(vtime.Time(10*vtime.Millisecond + 10*us))
	if p.Ticks() != 10 {
		t.Fatalf("ticks = %d, want 10", p.Ticks())
	}
	st := p.IRQBySource()["clock"]
	if st == nil || st.Count != 10 {
		t.Fatalf("clock IRQ stats missing or wrong: %+v", st)
	}
	if st.MinGap != 1*vtime.Millisecond {
		t.Fatalf("pseudo-period = %s, want 1ms", st.MinGap)
	}
	if st.MaxWCET != 5*us {
		t.Fatalf("wcet = %s, want 5us", st.MaxWCET)
	}
}

func TestContextSwitchCost(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 10*us)
	var doneA, doneB vtime.Time
	a := p.NewThread("a", 5)
	a.AddSegment(Segment{Work: 50 * us})
	a.OnComplete = func() { doneA = eng.Now() }
	a.Ready()
	b := p.NewThread("b", 5)
	b.AddSegment(Segment{Work: 50 * us})
	b.OnComplete = func() { doneB = eng.Now() }
	b.Ready()
	eng.RunUntilIdle()
	// a: switch 10 + 50 = 60; b: switch 10 + 50 => 120.
	if doneA != vtime.Time(60*us) {
		t.Fatalf("a done at %s, want 60us", doneA)
	}
	if doneB != vtime.Time(120*us) {
		t.Fatalf("b done at %s, want 120us", doneB)
	}
	if p.SwitchTime() != 20*us {
		t.Fatalf("switch time %s, want 20us", p.SwitchTime())
	}
}

func TestSegmentSequencingAndCallbacks(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	var marks []string
	th := p.NewThread("t", 5)
	th.AddSegment(Segment{Name: "s1", Work: 10 * us, OnDone: func() { marks = append(marks, "s1") }})
	th.AddSegment(Segment{Name: "s2", Work: 20 * us, OnDone: func() { marks = append(marks, "s2") }})
	th.OnComplete = func() { marks = append(marks, "done") }
	th.Ready()
	end := eng.RunUntilIdle()
	if end != vtime.Time(30*us) {
		t.Fatalf("end %s, want 30us", end)
	}
	want := []string{"s1", "s2", "done"}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks %v, want %v", marks, want)
		}
	}
}

func TestSuspendResumeMidThread(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	var done vtime.Time
	th := p.NewThread("t", 5)
	th.AddSegment(Segment{Work: 10 * us, OnDone: func() { th.Suspend() }})
	th.AddSegment(Segment{Work: 10 * us})
	th.OnComplete = func() { done = eng.Now() }
	th.Ready()
	eng.After(100*us, eventq.ClassDispatch, func() { th.Ready() })
	eng.RunUntilIdle()
	if done != vtime.Time(110*us) {
		t.Fatalf("done at %s, want 110us (10 + resume at 100 + 10)", done)
	}
}

func TestSuspendPreservesRemainingWork(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	th := p.NewThread("t", 5)
	th.AddSegment(Segment{Work: 100 * us})
	th.Ready()
	eng.After(30*us, eventq.ClassDispatch, func() { th.Suspend() })
	eng.RunUntilIdle()
	if got := th.RemainingWork(); got != 70*us {
		t.Fatalf("remaining %s, want 70us", got)
	}
	th.Ready()
	end := eng.RunUntilIdle()
	if end != vtime.Time(100*us) {
		t.Fatalf("end %s, want 100us", end)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		log := monitor.NewLog(0)
		eng := NewEngine(log, 42)
		p := eng.AddProcessor("n0", 2*us)
		p.StartClockTick(500*us, 3*us)
		for i := 0; i < 5; i++ {
			th := p.NewThread(string(rune('a'+i)), 3+i%3)
			th.AddSegment(Segment{Work: vtime.Duration(10+i*7) * us})
			th.Ready()
		}
		eng.Run(vtime.Time(5 * vtime.Millisecond))
		out := ""
		for _, e := range log.Events() {
			out += e.String() + "\n"
		}
		return out
	}
	if run() != run() {
		t.Fatal("two identical runs produced different traces")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	eng := newEng()
	eng.After(10*us, eventq.ClassApp, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		eng.At(5, eventq.ClassApp, nil)
	})
	eng.RunUntilIdle()
}

func TestEngineStop(t *testing.T) {
	eng := newEng()
	n := 0
	var evt func()
	evt = func() {
		n++
		if n == 3 {
			eng.Stop()
		}
		eng.After(us, eventq.ClassApp, evt)
	}
	eng.After(us, eventq.ClassApp, evt)
	eng.RunUntilIdle()
	if n != 3 {
		t.Fatalf("processed %d events, want 3", n)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	eng := newEng()
	fired := false
	eng.After(100*us, eventq.ClassApp, func() { fired = true })
	end := eng.Run(vtime.Time(50 * us))
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if end != vtime.Time(50*us) {
		t.Fatalf("clock at %s, want 50us", end)
	}
	eng.Run(vtime.Time(200 * us))
	if !fired {
		t.Fatal("event not fired after horizon extended")
	}
}

func TestZeroWorkSegment(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	var done bool
	th := p.NewThread("z", 5)
	th.AddSegment(Segment{Work: 0})
	th.OnComplete = func() { done = true }
	th.Ready()
	eng.RunUntilIdle()
	if !done {
		t.Fatal("zero-work thread did not complete")
	}
}

func TestBusyAccounting(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	a := p.NewThread("a", 5)
	a.AddSegment(Segment{Work: 30 * us})
	a.Ready()
	b := p.NewThread("b", 9)
	b.AddSegment(Segment{Work: 20 * us})
	b.Ready()
	eng.RunUntilIdle()
	if p.BusyTime() != 50*us {
		t.Fatalf("busy %s, want 50us", p.BusyTime())
	}
}
