package simkern

import (
	"fmt"

	"hades/internal/monitor"
	"hades/internal/vtime"
)

// Segment is one contiguous CPU demand of a thread, with its own
// preemption threshold. The HADES dispatcher maps one Code_EU to a thread
// whose segments bookend the action body with kernel-level (pt = PrioMax)
// dispatching work, reproducing the paper's rule that kernel calls cannot
// be preempted by application tasks (§3.1.2).
type Segment struct {
	// Name tags the segment in traces ("start", "body", "end", ...).
	Name string
	// Work is the segment's WCET on the CPU.
	Work vtime.Duration
	// PT is the preemption threshold while this segment runs: only
	// priorities strictly greater may preempt.
	PT int
	// OnDone fires when the segment's CPU demand completes.
	OnDone func()

	remaining vtime.Duration
	onDone    func()
}

// Thread is a kernel-level thread. In HADES a thread executes exactly one
// Code_EU instance (§3.2.1: "a given thread being dedicated to the
// execution of one and only one Code_EU").
type Thread struct {
	proc *Processor
	name string
	prio int

	segs   []*Segment
	segIdx int

	readyIdx int    // index in processor ready set, -1 when not ready
	readySeq uint64 // FIFO tie-break within a priority level

	started    bool
	finished   bool
	firstRunAt vtime.Time
	cpuTime    vtime.Duration

	// OnFirstRun fires when the thread first receives the CPU.
	OnFirstRun func()
	// OnPreempt fires each time the thread loses the CPU to preemption.
	OnPreempt func()
	// OnComplete fires when the last segment's CPU demand completes.
	OnComplete func()
}

// NewThread creates a suspended thread on p with the given base priority.
// Call AddSegment then Ready to make it eligible for the CPU.
func (p *Processor) NewThread(name string, prio int) *Thread {
	if prio < PrioMin || prio > PrioMax {
		panic(fmt.Sprintf("simkern: priority %d out of range for thread %q", prio, name))
	}
	return &Thread{proc: p, name: name, prio: prio, readyIdx: -1}
}

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Processor returns the processor the thread is bound to. Threads never
// migrate: Code_EUs are statically placed (§3.1).
func (t *Thread) Processor() *Processor { return t.proc }

// Priority returns the thread's current priority.
func (t *Thread) Priority() int { return t.prio }

// Finished reports whether all segments have completed.
func (t *Thread) Finished() bool { return t.finished }

// Started reports whether the thread has ever held the CPU.
func (t *Thread) Started() bool { return t.started }

// FirstRunAt returns the instant the thread first held the CPU. Only
// meaningful once Started.
func (t *Thread) FirstRunAt() vtime.Time { return t.firstRunAt }

// CPUTime returns the CPU time consumed so far.
func (t *Thread) CPUTime() vtime.Duration { return t.cpuTime }

// Ready reports whether the thread is currently in the ready set.
func (t *Thread) IsReady() bool { return t.readyIdx >= 0 }

// AddSegment appends a CPU demand to the thread. Must not be called after
// the thread finished.
func (t *Thread) AddSegment(s Segment) *Thread {
	if t.finished {
		panic(fmt.Sprintf("simkern: adding segment to finished thread %q", t.name))
	}
	if s.Work < 0 {
		panic(fmt.Sprintf("simkern: negative segment work for thread %q", t.name))
	}
	seg := &Segment{Name: s.Name, Work: s.Work, PT: s.PT, remaining: s.Work, onDone: s.OnDone}
	t.segs = append(t.segs, seg)
	return t
}

// Ready makes the thread eligible for the CPU. The HADES dispatcher calls
// this once the four runnable conditions of §3.2.1 hold.
func (t *Thread) Ready() {
	if t.finished {
		panic(fmt.Sprintf("simkern: readying finished thread %q", t.name))
	}
	if t.currentSegment() == nil {
		panic(fmt.Sprintf("simkern: readying thread %q with no segments", t.name))
	}
	t.proc.eng.record(monitor.KindThreadReady, t.proc.id, t.name, fmt.Sprintf("prio=%d", t.prio))
	t.proc.makeReady(t)
}

// Suspend removes the thread from the ready set (and from the CPU if it
// was running), preserving its remaining work.
func (t *Thread) Suspend() {
	t.proc.removeReady(t)
}

// SetPriority changes the thread's priority. This is the kernel half of
// the dispatcher primitive of §3.2.2; it triggers an immediate
// rescheduling pass.
func (t *Thread) SetPriority(prio int) {
	if prio < PrioMin || prio > PrioMax {
		panic(fmt.Sprintf("simkern: priority %d out of range for thread %q", prio, t.name))
	}
	if t.prio == prio {
		return
	}
	t.proc.eng.record(monitor.KindPriorityChange, t.proc.id, t.name, fmt.Sprintf("%d->%d", t.prio, prio))
	t.prio = prio
	if t.readyIdx >= 0 {
		if t.proc.running == t {
			t.proc.resched0()
		} else {
			t.proc.resched()
		}
	}
}

// RemainingWork sums the remaining CPU demand over all segments.
func (t *Thread) RemainingWork() vtime.Duration {
	var sum vtime.Duration
	for i := t.segIdx; i < len(t.segs); i++ {
		sum += t.segs[i].remaining
	}
	return sum
}

// currentSegment returns the segment in progress, or nil when done.
func (t *Thread) currentSegment() *Segment {
	if t.segIdx >= len(t.segs) {
		return nil
	}
	return t.segs[t.segIdx]
}

// currentPT returns the preemption threshold in effect: the segment's
// declared threshold, but never below the thread's current priority (a
// thread cannot be preempted by priorities it outranks). Computing this
// dynamically keeps thresholds consistent when a scheduler lowers a
// running thread's priority (Figure 2).
func (t *Thread) currentPT() int {
	seg := t.currentSegment()
	if seg == nil || seg.PT < t.prio {
		return t.prio
	}
	return seg.PT
}

// effPrio is the thread's effective priority for dispatching: plain
// priority before it first runs, its current threshold afterwards (the
// dual-priority semantics of preemption thresholds).
func (t *Thread) effPrio() int {
	if t.started {
		return t.currentPT()
	}
	return t.prio
}
