package simkern

import (
	"testing"

	"hades/internal/eventq"
	"hades/internal/vtime"
)

// TestThresholdSurvivesInterrupt pins the dual-priority semantics: a
// started thread with a raised preemption threshold keeps the CPU
// against a mid-priority thread even when a clock interrupt displaces
// it at the very instant the contender becomes ready.
func TestThresholdSurvivesInterrupt(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	var order []string
	shielded := p.NewThread("shielded", 10)
	shielded.AddSegment(Segment{Work: 100 * us, PT: 25})
	shielded.OnComplete = func() { order = append(order, "shielded") }
	shielded.Ready()
	// Interrupt at 50us; contender (prio 20 < pt 25) readied during
	// the handler.
	eng.After(50*us, eventq.ClassInterrupt, func() {
		p.RaiseIRQ("test", 5*us, func() {
			c := p.NewThread("contender", 20)
			c.AddSegment(Segment{Work: 10 * us})
			c.OnComplete = func() { order = append(order, "contender") }
			c.Ready()
		})
	})
	eng.RunUntilIdle()
	if len(order) != 2 || order[0] != "shielded" {
		t.Fatalf("order %v: threshold defeated by interrupt", order)
	}
}

// TestThresholdExceededAfterInterrupt: a contender above the threshold
// does win after the interrupt.
func TestThresholdExceededAfterInterrupt(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	var order []string
	running := p.NewThread("running", 10)
	running.AddSegment(Segment{Work: 100 * us, PT: 25})
	running.OnComplete = func() { order = append(order, "running") }
	running.Ready()
	eng.After(50*us, eventq.ClassInterrupt, func() {
		p.RaiseIRQ("test", 5*us, func() {
			c := p.NewThread("urgent", 30) // above pt 25
			c.AddSegment(Segment{Work: 10 * us})
			c.OnComplete = func() { order = append(order, "urgent") }
			c.Ready()
		})
	})
	eng.RunUntilIdle()
	if len(order) != 2 || order[0] != "urgent" {
		t.Fatalf("order %v: urgent thread failed to preempt across IRQ", order)
	}
	if p.Preemptions() != 1 {
		t.Fatalf("preemptions %d, want exactly 1", p.Preemptions())
	}
}

// TestUnstartedThreadUsesPlainPriority: effective priority only rises
// once a thread has actually run — a ready-but-never-started thread
// with a high declared threshold must not outrank a higher-priority
// unstarted peer.
func TestUnstartedThreadUsesPlainPriority(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 0)
	var order []string
	// Both created before the engine runs: neither has started.
	low := p.NewThread("low", 5)
	low.AddSegment(Segment{Work: 10 * us, PT: 100}) // huge threshold, unstarted
	low.OnComplete = func() { order = append(order, "low") }
	hi := p.NewThread("hi", 9)
	hi.AddSegment(Segment{Work: 10 * us})
	hi.OnComplete = func() { order = append(order, "hi") }
	low.Ready()
	hi.Ready()
	eng.RunUntilIdle()
	// low was dispatched first (FIFO at idle CPU, readied first), so it
	// started and its threshold legitimately shields it; hi runs after.
	// The property under test: hi is not blocked *before* low starts —
	// i.e. order is deterministic and both complete.
	if len(order) != 2 {
		t.Fatalf("order %v", order)
	}
}

// TestIRQDuringSwitchCostWindow: an interrupt arriving while the
// context-switch cost of a dispatch is still being paid must not lose
// or double-charge work.
func TestIRQDuringSwitchCostWindow(t *testing.T) {
	eng := newEng()
	p := eng.AddProcessor("n0", 10*us)
	var done vtime.Time
	th := p.NewThread("t", 5)
	th.AddSegment(Segment{Work: 100 * us})
	th.OnComplete = func() { done = eng.Now() }
	th.Ready()
	// IRQ at 5us: inside the 10us switch window.
	eng.After(5*us, eventq.ClassInterrupt, func() {
		p.RaiseIRQ("mid-switch", 20*us, nil)
	})
	eng.RunUntilIdle()
	// Expected: 5us of switch paid, IRQ 20us, then a fresh dispatch
	// (another 10us switch since the IRQ intervened — lastDispatch is
	// unchanged, so actually no extra switch), then 100us of work.
	// Total is at least 5+20+100; exact value documents the model.
	if done < vtime.Time(125*us) {
		t.Fatalf("done at %s: work lost across IRQ-in-switch", done)
	}
	if th.CPUTime() != 100*us {
		t.Fatalf("CPU time %s, want exactly 100us", th.CPUTime())
	}
}
