package simkern

import (
	"testing"

	"hades/internal/vtime"
)

// BenchmarkContextSwitchStorm measures the kernel's preemption path: two
// threads alternating via priority flips.
func BenchmarkContextSwitchStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := NewEngine(nil, 1)
		p := eng.AddProcessor("n0", 2*vtime.Microsecond)
		a := p.NewThread("a", 5)
		a.AddSegment(Segment{Work: vtime.Duration(1000) * vtime.Microsecond})
		a.Ready()
		c := p.NewThread("c", 4)
		c.AddSegment(Segment{Work: vtime.Duration(1000) * vtime.Microsecond})
		c.Ready()
		// 100 priority flips → 100 preemptions.
		for k := 0; k < 100; k++ {
			hi, lo := a, c
			if k%2 == 1 {
				hi, lo = c, a
			}
			kk := k
			eng.At(vtime.Time(vtime.Duration(kk+1)*5*vtime.Microsecond), 3, func() {
				hi.SetPriority(9)
				lo.SetPriority(1)
			})
		}
		eng.RunUntilIdle()
	}
}

// BenchmarkInterruptLoad measures the IRQ path under a 10 kHz source.
func BenchmarkInterruptLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := NewEngine(nil, 1)
		p := eng.AddProcessor("n0", 0)
		p.StartClockTick(100*vtime.Microsecond, 5*vtime.Microsecond)
		th := p.NewThread("t", 5)
		th.AddSegment(Segment{Work: 50 * vtime.Millisecond})
		th.Ready()
		eng.Run(vtime.Time(60 * vtime.Millisecond))
	}
}

// BenchmarkThreadLifecycle measures create/ready/run/complete for short
// threads — the dispatcher's hot path.
func BenchmarkThreadLifecycle(b *testing.B) {
	eng := NewEngine(nil, 1)
	p := eng.AddProcessor("n0", 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th := p.NewThread("t", 5)
		th.AddSegment(Segment{Work: vtime.Microsecond})
		th.Ready()
		eng.RunUntilIdle()
	}
}
