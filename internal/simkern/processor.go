package simkern

import (
	"fmt"

	"hades/internal/eventq"
	"hades/internal/monitor"
	"hades/internal/vtime"
)

// Processor is one mono-processor node of the simulated COTS hardware
// ("network of mono processor machines", §2.2.1). It runs at most one
// thread or interrupt handler at a time, chosen by preemptive priority
// scheduling with preemption thresholds.
type Processor struct {
	eng  *Engine
	id   int
	name string

	ready   []*Thread // threads eligible for CPU, unordered; scanned deterministically
	running *Thread
	// effStart is when the running thread's current segment began making
	// progress (after any context-switch cost). If the segment is
	// preempted before effStart, it made no progress.
	effStart     vtime.Time
	completion   *eventq.Event
	lastDispatch *Thread // previously running thread, to decide switch cost

	irqQueue []*irq
	inIRQ    bool
	// irqHalted remembers the thread an interrupt displaced: after the
	// drain it resumes unless a ready thread exceeds its preemption
	// threshold — an interrupt must not defeat threshold semantics.
	irqHalted *Thread

	switchCost vtime.Duration

	// Accounting for experiment E-T2 and utilisation reports.
	busyTime   vtime.Duration
	irqTime    vtime.Duration
	switchTime vtime.Duration
	switches   int
	preempts   int
	irqStats   map[string]*IRQStats

	// Periodic clock tick (the §4.2 clock interrupt).
	ticks uint64
}

type irq struct {
	source  string
	wcet    vtime.Duration
	handler func()
}

// IRQStats aggregates interrupt handling per source, reproducing the §4.2
// characterisation (WCET and observed pseudo-period of each interrupt).
type IRQStats struct {
	Count      int
	Total      vtime.Duration
	MaxWCET    vtime.Duration
	LastAt     vtime.Time
	MinGap     vtime.Duration // smallest observed inter-arrival gap (pseudo-period)
	haveArrive bool
}

// AddProcessor registers a new processor with the given context-switch
// cost and returns it.
func (e *Engine) AddProcessor(name string, switchCost vtime.Duration) *Processor {
	p := &Processor{
		eng:        e,
		id:         len(e.procs),
		name:       name,
		switchCost: switchCost,
		irqStats:   make(map[string]*IRQStats),
	}
	e.procs = append(e.procs, p)
	return p
}

// ID returns the processor's index within the engine.
func (p *Processor) ID() int { return p.id }

// Name returns the processor's name.
func (p *Processor) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Processor) Engine() *Engine { return p.eng }

// Running returns the thread currently holding the CPU, or nil when the
// CPU is idle or in an interrupt handler.
func (p *Processor) Running() *Thread { return p.running }

// InInterrupt reports whether an interrupt handler currently holds the CPU.
func (p *Processor) InInterrupt() bool { return p.inIRQ }

// BusyTime returns the cumulative CPU time consumed by thread segments.
func (p *Processor) BusyTime() vtime.Duration { return p.busyTime }

// IRQTime returns the cumulative CPU time consumed by interrupt handlers.
func (p *Processor) IRQTime() vtime.Duration { return p.irqTime }

// SwitchTime returns the cumulative CPU time lost to context switches.
func (p *Processor) SwitchTime() vtime.Duration { return p.switchTime }

// Switches returns the number of context switches performed.
func (p *Processor) Switches() int { return p.switches }

// Preemptions returns the number of preemptions performed.
func (p *Processor) Preemptions() int { return p.preempts }

// Ticks returns the number of clock-tick interrupts handled.
func (p *Processor) Ticks() uint64 { return p.ticks }

// IRQBySource returns interrupt statistics per source name. The map is
// the live map; callers must not mutate it.
func (p *Processor) IRQBySource() map[string]*IRQStats { return p.irqStats }

// StartClockTick installs the periodic clock interrupt of §4.2 (period
// P_clk, handler WCET w_clk). The first tick fires one period from now.
func (p *Processor) StartClockTick(period, wcet vtime.Duration) {
	if period <= 0 {
		panic("simkern: clock tick period must be positive")
	}
	var tick func()
	tick = func() {
		p.RaiseIRQ("clock", wcet, func() { p.ticks++ })
		p.eng.After(period, eventq.ClassInterrupt, tick)
	}
	p.eng.After(period, eventq.ClassInterrupt, tick)
}

// RaiseIRQ queues an interrupt from the named source with the given
// handler WCET. The handler callback fires when the handler's CPU segment
// completes. Interrupts preempt any thread, regardless of preemption
// thresholds, reproducing the paper's prio_max kernel activities.
func (p *Processor) RaiseIRQ(source string, wcet vtime.Duration, handler func()) {
	if wcet < 0 {
		panic("simkern: negative IRQ WCET")
	}
	st := p.irqStats[source]
	if st == nil {
		st = &IRQStats{MinGap: vtime.Forever}
		p.irqStats[source] = st
	}
	now := p.eng.now
	if st.haveArrive {
		if gap := now.Sub(st.LastAt); gap < st.MinGap {
			st.MinGap = gap
		}
	}
	st.haveArrive = true
	st.LastAt = now
	st.Count++
	st.Total += wcet
	if wcet > st.MaxWCET {
		st.MaxWCET = wcet
	}
	p.eng.record(monitor.KindInterrupt, p.id, source, wcet.String())
	p.irqQueue = append(p.irqQueue, &irq{source: source, wcet: wcet, handler: handler})
	p.resched()
}

// makeReady inserts t into the ready set and reschedules.
func (p *Processor) makeReady(t *Thread) {
	if t.readyIdx >= 0 {
		return
	}
	t.readySeq = p.eng.nextReadySeq()
	t.readyIdx = len(p.ready)
	p.ready = append(p.ready, t)
	p.resched()
}

// removeReady takes t out of the ready set (suspension or completion).
func (p *Processor) removeReady(t *Thread) {
	if t.readyIdx < 0 {
		return
	}
	i := t.readyIdx
	last := len(p.ready) - 1
	p.ready[i] = p.ready[last]
	p.ready[i].readyIdx = i
	p.ready = p.ready[:last]
	t.readyIdx = -1
	if p.running == t {
		p.haltRunning(false)
	}
	p.resched()
}

// pickBest returns the ready thread with the highest *effective*
// priority, FIFO within a level. A started thread's effective priority
// is its current segment's preemption threshold (the dual-priority
// model behind §3.1.2's pt attribute): once a job begins, nothing at or
// below its threshold may take the CPU from it — not even indirectly,
// by slipping in while an interrupt or kernel activity had it off the
// CPU. Unstarted threads compete with their plain priority.
func (p *Processor) pickBest() *Thread {
	var best *Thread
	for _, t := range p.ready {
		if best == nil || t.effPrio() > best.effPrio() ||
			(t.effPrio() == best.effPrio() && t.readySeq < best.readySeq) {
			best = t
		}
	}
	return best
}

// haltRunning stops the running thread's segment, accruing its progress.
// If preempt is true the stop is a preemption (the thread stays ready).
func (p *Processor) haltRunning(preempt bool) {
	t := p.running
	if t == nil {
		return
	}
	if p.completion != nil {
		p.eng.Cancel(p.completion)
		p.completion = nil
	}
	now := p.eng.now
	if now > p.effStart {
		progress := now.Sub(p.effStart)
		seg := t.currentSegment()
		if seg != nil {
			if progress > seg.remaining {
				progress = seg.remaining
			}
			seg.remaining -= progress
			p.busyTime += progress
			t.cpuTime += progress
		}
	}
	p.running = nil
	p.lastDispatch = t
	if preempt {
		p.preempts++
		p.eng.record(monitor.KindThreadPreempt, p.id, t.name, "")
		if t.OnPreempt != nil {
			t.OnPreempt()
		}
	}
}

// resched is the kernel scheduling decision point: run pending interrupts
// first, then the best ready thread subject to the preemption-threshold
// rule of §3.2.1. A thread displaced by an interrupt retains its
// threshold across the drain: it resumes unless a ready thread's
// priority exceeds it.
func (p *Processor) resched() {
	if p.inIRQ {
		return // decision deferred until the IRQ drain completes
	}
	if len(p.irqQueue) > 0 {
		if p.running != nil && p.irqHalted == nil {
			p.irqHalted = p.running
		}
		p.haltRunning(false)
		p.startIRQ()
		return
	}
	if h := p.irqHalted; h != nil {
		p.irqHalted = nil
		if h.readyIdx >= 0 && !h.finished {
			best := p.pickBest()
			if best != nil && best != h && best.effPrio() > h.currentPT() {
				p.preempts++
				p.eng.record(monitor.KindThreadPreempt, p.id, h.name, "")
				if h.OnPreempt != nil {
					h.OnPreempt()
				}
				p.dispatch(best)
			} else {
				p.dispatch(h)
			}
			return
		}
	}
	best := p.pickBest()
	if p.running != nil {
		if best == nil || best == p.running {
			return
		}
		// Preemption-threshold rule: a runnable thread preempts the
		// running one only if its effective priority exceeds the
		// running segment's preemption threshold.
		if best.effPrio() > p.running.currentPT() {
			p.haltRunning(true)
			p.dispatch(best)
		}
		return
	}
	if best != nil {
		p.dispatch(best)
	}
}

// dispatch gives the CPU to t, charging the context-switch cost when the
// CPU last ran a different thread.
func (p *Processor) dispatch(t *Thread) {
	seg := t.currentSegment()
	if seg == nil {
		panic(fmt.Sprintf("simkern: dispatching thread %q with no segments", t.name))
	}
	now := p.eng.now
	var cost vtime.Duration
	if p.lastDispatch != t {
		cost = p.switchCost
		p.switches++
		p.switchTime += cost
		if p.lastDispatch != nil || cost > 0 {
			p.eng.record(monitor.KindContextSwitch, p.id, t.name, cost.String())
		}
	}
	p.running = t
	p.effStart = now.Add(cost)
	if !t.started {
		t.started = true
		t.firstRunAt = now
		p.eng.record(monitor.KindThreadStart, p.id, t.name, fmt.Sprintf("prio=%d", t.prio))
		if t.OnFirstRun != nil {
			t.OnFirstRun()
		}
	} else if cost > 0 || p.lastDispatch != t {
		// Continuing the same thread straight after an interrupt is
		// not a context switch and gets no Resume event.
		p.eng.record(monitor.KindThreadResume, p.id, t.name, "")
	}
	p.completion = p.eng.At(p.effStart.Add(seg.remaining), eventq.ClassKernel, func() {
		p.segmentDone(t)
	})
}

// segmentDone fires when the running thread finishes its current segment.
func (p *Processor) segmentDone(t *Thread) {
	if p.running != t {
		panic("simkern: segment completion for non-running thread")
	}
	seg := t.currentSegment()
	p.busyTime += seg.remaining
	t.cpuTime += seg.remaining
	seg.remaining = 0
	p.completion = nil
	cb := seg.onDone
	t.segIdx++
	if t.currentSegment() == nil {
		// Thread finished all work.
		p.running = nil
		p.lastDispatch = t
		p.removeReadyNoResched(t)
		t.finished = true
		if cb != nil {
			cb()
		}
		if t.OnComplete != nil {
			t.OnComplete()
		}
		p.resched()
		return
	}
	// Continue with the next segment of the same thread: no switch cost,
	// but re-evaluate preemption since the threshold may have dropped.
	// effStart is reset first so that a halt from inside the callback
	// accrues zero progress against the new segment.
	p.effStart = p.eng.now
	if cb != nil {
		cb()
	}
	if p.running == t { // callback may have suspended t
		p.effStart = p.eng.now
		segNext := t.currentSegment()
		p.completion = p.eng.At(p.effStart.Add(segNext.remaining), eventq.ClassKernel, func() {
			p.segmentDone(t)
		})
		p.resched0()
	}
}

// resched0 re-evaluates preemption for the current running thread without
// treating same-thread continuation as a switch.
func (p *Processor) resched0() {
	if p.running == nil {
		p.resched()
		return
	}
	best := p.pickBest()
	if best != nil && best != p.running && best.prio > p.running.currentPT() {
		p.haltRunning(true)
		p.dispatch(best)
	}
}

// removeReadyNoResched removes t from the ready set without triggering a
// scheduling pass (used on completion, where resched follows explicitly).
func (p *Processor) removeReadyNoResched(t *Thread) {
	if t.readyIdx < 0 {
		return
	}
	i := t.readyIdx
	last := len(p.ready) - 1
	p.ready[i] = p.ready[last]
	p.ready[i].readyIdx = i
	p.ready = p.ready[:last]
	t.readyIdx = -1
}

// startIRQ begins executing the oldest pending interrupt.
func (p *Processor) startIRQ() {
	q := p.irqQueue[0]
	p.irqQueue = p.irqQueue[1:]
	p.inIRQ = true
	p.irqTime += q.wcet
	p.eng.After(q.wcet, eventq.ClassKernel, func() {
		p.inIRQ = false
		if q.handler != nil {
			q.handler()
		}
		// lastDispatch is preserved: resuming the interrupted thread
		// costs a switch only if a different thread is chosen.
		p.resched()
	})
}
