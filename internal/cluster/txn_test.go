package cluster_test

import (
	"fmt"
	"strings"
	"testing"

	"hades/internal/cluster"
	"hades/internal/txn"
	"hades/internal/vtime"
)

// transferEvery drives one two-key transfer per interval, rotating
// over the account list so both shards of a two-shard ring own part of
// every transaction.
func transferEvery(c *cluster.Cluster, cl *txn.Client, accounts []string, every vtime.Duration, from, until vtime.Time) {
	i := 0
	for t := from; t < until; t = t.Add(every) {
		src := accounts[i%len(accounts)]
		dst := accounts[(i+1)%len(accounts)]
		amount := int64(i + 1)
		i++
		c.At(t, func() { cl.Transfer(src, dst, amount) })
	}
}

var accounts = []string{"acct-a", "acct-b", "acct-c", "acct-d", "acct-e", "acct-f"}

// TestTxnHappyPath: a faultless run commits every transfer, the writes
// land atomically in both shards' histories, and the lock table
// drains.
func TestTxnHappyPath(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 101})
	c.AddNodes(5) // 2 shards × 2 replicas + txn client
	c.ConnectAll(100*us, 300*us)
	set := c.Shards(2, 2)
	cl := set.TxnClientAt(4)
	transferEvery(c, cl, accounts, 4*ms, 0, vtime.Time(100*ms))
	res := c.Run(200 * ms)

	if cl.Stats.Begun == 0 || cl.Stats.Committed != cl.Stats.Begun {
		t.Fatalf("committed %d of %d begun (aborted=%d)", cl.Stats.Committed, cl.Stats.Begun, cl.Stats.Aborted)
	}
	if err := set.CheckTxns(); err != nil {
		t.Fatalf("atomicity check: %v", err)
	}
	for _, pa := range set.TxnPlane().Participants() {
		if pa.LockedKeys() != 0 {
			t.Fatalf("shard %d still holds %d locks at end of run", pa.Shard(), pa.LockedKeys())
		}
	}
	// Both shards participated (accounts spread over the ring).
	for _, name := range []string{"shard0", "shard1"} {
		sr, ok := res.Shard(name)
		if !ok || sr.Txn.Prepares == 0 {
			t.Fatalf("shard %s prepared nothing: %+v", name, sr.Txn)
		}
	}
	tc, ok := res.TxnClient(4)
	if !ok || tc.Committed != cl.Stats.Committed {
		t.Fatalf("txn client result missing or wrong: %+v", tc)
	}
}

// TestTxnReadsReturnCommittedValues: reads lock and return the last
// committed write of the key.
func TestTxnReadsReturnCommittedValues(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 103})
	c.AddNodes(5)
	c.ConnectAll(100*us, 300*us)
	set := c.Shards(2, 2)
	cl := set.TxnClientAt(4)

	var got map[string]int64
	c.At(0, func() {
		tx := cl.Begin()
		cl.Write(tx, "acct-a", 77)
		cl.Commit(tx)
	})
	c.At(vtime.Time(20*ms), func() {
		tx := cl.Begin()
		tx.Read("acct-a")
		tx.Read("acct-never-written")
		cl.Write(tx, "acct-b", 5)
		tx.OnDone = func(r txn.Record) { got = r.Reads }
		cl.Commit(tx)
	})
	c.Run(100 * ms)

	if cl.Stats.Committed != 2 {
		t.Fatalf("committed %d of 2 (aborted=%d)", cl.Stats.Committed, cl.Stats.Aborted)
	}
	if got == nil || got["acct-a"] != 77 || got["acct-never-written"] != 0 {
		t.Fatalf("reads %v, want acct-a=77 and acct-never-written=0", got)
	}
	if err := set.CheckTxns(); err != nil {
		t.Fatalf("atomicity check: %v", err)
	}
}

// TestTxnLockConflictWaitsThenCommits: two clients hitting the same
// account serialize through the lock queue; both commit (the second
// waits, it does not abort) in a fault-free run.
func TestTxnLockConflictWaitsThenCommits(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 107})
	c.AddNodes(6) // 2 shards × 2 replicas + 2 txn clients
	c.ConnectAll(100*us, 300*us)
	set := c.Shards(2, 2)
	cl1 := set.TxnClientAt(4)
	cl2 := set.TxnClientAt(5)
	// Same instant, same accounts: one of them must wait for the lock.
	c.At(vtime.Time(1*ms), func() { cl1.Transfer("acct-a", "acct-b", 10) })
	c.At(vtime.Time(1*ms), func() { cl2.Transfer("acct-b", "acct-a", 20) })
	res := c.Run(200 * ms)

	if cl1.Stats.Committed+cl2.Stats.Committed != 2 {
		t.Fatalf("commits %d+%d, want 2 (aborted %d+%d)", cl1.Stats.Committed, cl2.Stats.Committed,
			cl1.Stats.Aborted, cl2.Stats.Aborted)
	}
	waits := 0
	for _, sr := range res.Shards {
		waits += sr.Txn.LockWaits
	}
	if waits == 0 {
		t.Fatal("conflicting transfers produced no lock wait")
	}
	if err := set.CheckTxns(); err != nil {
		t.Fatalf("atomicity check: %v", err)
	}
}

// TestTxnDeadlineAbortReleasesLocks drives both deadline paths
// deterministically. A partition makes shard1's serving quorum
// unreachable from the client side WITHOUT moving its primary (nodes
// {3,4} keep the quorum, so no rescue failover happens on the client
// side). Then:
//
//   - T1 writes alpha (shard0) + bravo (shard1): shard0 locks and
//     votes YES, shard1 never answers, so T1 holds alpha until its
//     deadline — at which point the lock is released (never into the
//     fault window) and the abort resolves;
//   - T2 (short deadline) writes alpha only: it waits behind T1's lock
//     past its own deadline and votes NO (lock-wait abort).
//
// Nothing is torn, nothing leaks, and the lock tables drain.
func TestTxnDeadlineAbortReleasesLocks(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 109})
	c.AddNodes(8) // 2 shards × 3 replicas + 2 txn clients
	c.ConnectAll(100*us, 300*us)
	set := c.Shards(2, 3)
	cl1 := set.TxnClientWith(txn.ClientParams{Node: 7, Deadline: 50 * ms})
	cl2 := set.TxnClientWith(txn.ClientParams{Node: 6, Deadline: 10 * ms})
	// Warm up cl2's transaction counter so its conflicting transaction
	// (t6.6) hashes onto the reachable coordinator shard0.
	for i := 0; i < 5; i++ {
		at := vtime.Time(vtime.Duration(1+4*i) * ms)
		c.At(at, func() { cl2.Transfer("hotel", "golf", 1) })
	}
	c.PartitionAt(vtime.Time(25*ms), []int{3, 4}, []int{0, 1, 2, 5, 6, 7})
	c.At(vtime.Time(26*ms), func() {
		tx := cl1.Begin() // t7.1 → coordinator shard0 (reachable)
		cl1.Write(tx, "alpha", 1)
		cl1.Write(tx, "bravo", 2) // shard1: unreachable quorum
		cl1.Commit(tx)
	})
	c.At(vtime.Time(30*ms), func() {
		tx := cl2.Begin() // t6.6 → coordinator shard0 (reachable)
		cl2.Write(tx, "alpha", 3)
		cl2.Commit(tx)
	})
	c.HealAt(vtime.Time(150 * ms))
	res := c.Run(300 * ms)

	if cl1.Stats.Aborted != 1 || cl1.Stats.Committed != 0 {
		t.Fatalf("cl1 (unreachable shard in write set): %+v", cl1.Stats)
	}
	if cl2.Stats.Aborted != 1 || cl2.Stats.Committed != 5 {
		t.Fatalf("cl2 (lock wait past deadline): %+v", cl2.Stats)
	}
	s0, _ := res.Shard("shard0")
	if s0.Txn.LockWaits == 0 {
		t.Fatalf("no lock wait recorded on shard0: %+v", s0.Txn)
	}
	if s0.Txn.DeadlineReleases == 0 {
		t.Fatalf("T1's alpha lock was not released at the deadline: %+v", s0.Txn)
	}
	if err := set.CheckTxns(); err != nil {
		t.Fatalf("atomicity check: %v", err)
	}
	for _, pa := range set.TxnPlane().Participants() {
		if pa.LockedKeys() != 0 {
			t.Fatalf("shard %d still holds %d locks", pa.Shard(), pa.LockedKeys())
		}
	}
}

// TestTxnSurvivesCoordinatorCrash: crashing a shard primary mid-run
// (which is both a participant primary and the coordinator of the
// transactions hashed onto it) neither tears a committed transaction
// nor leaks a partial write; transactions decided during the blackout
// abort on their deadlines and later ones commit against the promoted
// primary.
func TestTxnSurvivesCoordinatorCrash(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 113})
	c.AddNodes(7) // 2 shards × 3 replicas + txn client
	c.ConnectAll(100*us, 300*us)
	set := c.Shards(2, 3)
	cl := set.TxnClientAt(6)
	transferEvery(c, cl, accounts, 3*ms, 0, vtime.Time(200*ms))
	c.Crash(0, vtime.Time(50*ms), 0) // shard0's primary, no recovery
	c.Run(400 * ms)

	if cl.Stats.Committed == 0 {
		t.Fatalf("nothing committed across the crash: %+v", cl.Stats)
	}
	if cl.Stats.Committed+cl.Stats.Aborted != cl.Stats.Begun {
		t.Fatalf("undecided transactions at end of run: %+v", cl.Stats)
	}
	if err := set.CheckTxns(); err != nil {
		t.Fatalf("atomicity check: %v", err)
	}
	if err := set.Check(); err != nil {
		t.Fatalf("data-plane check: %v", err)
	}
}

// TestTxnPartitionWindowAborts: a partition isolating a shard primary
// makes its prepares unreachable; transactions with that shard in
// their write set abort on their deadlines during the window (locks
// released, nothing torn) and commit again after the heal.
func TestTxnPartitionWindowAborts(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 127})
	c.AddNodes(7)
	c.ConnectAll(100*us, 300*us)
	set := c.Shards(2, 3)
	cl := set.TxnClientAt(6)
	transferEvery(c, cl, accounts, 3*ms, 0, vtime.Time(300*ms))
	// Shard 1's serving quorum {3,4} is segmented away from the client:
	// its primary survives WITH quorum on the far side, so no failover
	// rescues the client-side traffic — transactions touching shard1
	// can only abort on their deadlines until the heal.
	c.PartitionAt(vtime.Time(80*ms), []int{3, 4}, []int{0, 1, 2, 5, 6})
	c.HealAt(vtime.Time(180 * ms))
	c.Run(500 * ms)

	if cl.Stats.Committed == 0 || cl.Stats.Aborted == 0 {
		t.Fatalf("want both commits and aborts across the window: %+v", cl.Stats)
	}
	if cl.Stats.Committed+cl.Stats.Aborted != cl.Stats.Begun {
		t.Fatalf("undecided transactions at end of run: %+v", cl.Stats)
	}
	if cl.Stats.DeadlineAborts == 0 {
		t.Fatalf("partition window produced no deadline aborts: %+v", cl.Stats)
	}
	if err := set.CheckTxns(); err != nil {
		t.Fatalf("atomicity check: %v", err)
	}
}

// TestTxnDeterministic: the transaction layer obeys the cluster
// determinism contract — same description, same seed, same outcome
// history.
func TestTxnDeterministic(t *testing.T) {
	run := func() string {
		c := cluster.New(cluster.Config{Seed: 131})
		c.AddNodes(7)
		c.ConnectAll(100*us, 300*us)
		set := c.Shards(2, 3)
		cl := set.TxnClientAt(6)
		transferEvery(c, cl, accounts, 3*ms, 0, vtime.Time(150*ms))
		c.Crash(0, vtime.Time(40*ms), vtime.Time(200*ms))
		c.PartitionAt(vtime.Time(100*ms), []int{3}, []int{0, 1, 2, 4, 5, 6})
		c.HealAt(vtime.Time(180 * ms))
		c.Run(400 * ms)
		var b strings.Builder
		for _, r := range cl.Done {
			fmt.Fprintf(&b, "%s=%s@%s;", r.ID, r.Status, r.DecidedAt)
		}
		return b.String()
	}
	h1, h2 := run(), run()
	if h1 == "" {
		t.Fatal("no decided transactions recorded")
	}
	if h1 != h2 {
		t.Fatalf("same seed, different outcome histories:\n%s\n%s", h1, h2)
	}
}

// TestTxnClientCollisionsRejected: transaction clients may not share a
// node with replicas or other clients of the same set.
func TestTxnClientCollisionsRejected(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 1})
	c.AddNodes(6)
	c.ConnectAll(100*us, 300*us)
	set := c.Shards(2, 2)
	set.ClientAt(4)
	for name, node := range map[string]int{"replica node": 0, "request-client node": 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("txn client on %s accepted", name)
				}
			}()
			set.TxnClientAt(node)
		}()
	}
	// And the other direction: a request client on a txn client's node.
	set.TxnClientAt(5)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("request client on txn-client node accepted")
			}
		}()
		set.ClientAt(5)
	}()
}
