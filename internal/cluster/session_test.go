package cluster_test

import (
	"fmt"
	"strings"
	"testing"

	"hades/internal/cluster"
	"hades/internal/session"
	"hades/internal/shard"
	"hades/internal/txn"
	"hades/internal/vtime"
)

// burstEvery submits one op on every key at each interval tick — the
// high-fanout shape that gives the batcher something to coalesce.
func burstEvery(c *cluster.Cluster, cl *shard.Client, every vtime.Duration, from, until vtime.Time) {
	i := 0
	for t := from; t < until; t = t.Add(every) {
		for _, k := range shardKeys {
			key := k
			cmd := int64(i + 1)
			i++
			c.At(t, func() { cl.Submit(key, cmd) })
		}
	}
}

// TestBatchedExactlyOnceAcrossPrimaryCrash pins exactly-once under
// batching: a batch retried after a primary crash is answered from the
// replicated Seen table op-by-op at the promoted replica — every op
// acked, none applied twice, even though whole batches were resent.
func TestBatchedExactlyOnceAcrossPrimaryCrash(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 37})
	c.AddNodes(4) // 1 shard × 3 replicas + client
	c.ConnectAll(100*us, 300*us)
	set := c.ShardsWith(1, 3, cluster.ShardConfig{
		Session: session.Params{MaxBatch: 8, FlushInterval: 500 * us, PipelineDepth: 2},
	})
	cl := set.ClientAt(3)
	burstEvery(c, cl, ms, 0, vtime.Time(150*ms))
	// Two ways for an applied batch to be resent wholesale: a primary
	// crash mid-run (retries redirect to the promoted replica, which
	// applied the batch through replication) and a deterministic
	// omission dropping every 20th ack (the batch applied, the client
	// never heard). Both must be answered from the replicated Seen
	// table op-by-op, never re-applied.
	c.Crash(0, vtime.Time(50*ms), vtime.Time(250*ms))
	c.DropEvery(20, "shard.shard.resp")
	c.Run(400 * ms)

	if cl.Stats.Acked != cl.Stats.Submitted {
		t.Fatalf("acked %d of %d across the failover (%+v)", cl.Stats.Acked, cl.Stats.Submitted, cl.Stats)
	}
	bs := cl.BatchStats()
	if bs.MaxBatchOps < 2 {
		t.Fatalf("workload never batched (maxOps=%d) — the regression this test pins needs multi-op batches", bs.MaxBatchOps)
	}
	if int(bs.Ops) != cl.Stats.Submitted {
		t.Fatalf("batcher carried %d ops, client submitted %d", bs.Ops, cl.Stats.Submitted)
	}
	rep := set.Groups()[0].Replication()
	if rep.Duplicates == 0 {
		t.Fatalf("no retried batch was answered from the replicated dedup cache (retries=%d) — the crash window never exercised the Seen table", cl.Stats.Retries)
	}
	if err := set.Check(); err != nil {
		t.Fatalf("consistency check: %v", err)
	}
}

// TestGroupCommitCoalescesBurstDecisions pins the group-commit policy
// at the coordinators: a synchronized burst of conflict-free transfers
// produces decisions inside each other's replication window, so at
// least one replicated round carries more than one COMMIT record
// (GroupCommits < decisions) — while every transfer still commits
// atomically and the decision log stays idempotent.
func TestGroupCommitCoalescesBurstDecisions(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 43})
	c.AddNodes(12) // 2 shards × 2 replicas + 8 txn clients
	c.ConnectAll(100*us, 300*us)
	set := c.ShardsWith(2, 2, cluster.ShardConfig{
		GroupCommit: session.Params{MaxBatch: 8, FlushInterval: 500 * us},
	})
	plane := set.TxnPlane()
	clients := make([]*txn.Client, 8)
	for i := range clients {
		cl := set.TxnClientAt(4 + i)
		clients[i] = cl
		// Disjoint account pairs: no lock conflicts, so the burst's
		// decisions land as close together as the votes allow.
		src := fmt.Sprintf("acct-%02d", 2*i)
		dst := fmt.Sprintf("acct-%02d", 2*i+1)
		c.At(0, func() { cl.Transfer(src, dst, 1) })
	}
	c.Run(50 * ms)

	for _, cl := range clients {
		if cl.Stats.Committed != 1 {
			t.Fatalf("client n%d committed %d of 1 (aborted=%d)", cl.Node(), cl.Stats.Committed, cl.Stats.Aborted)
		}
	}
	decisions, rounds, maxBatch := 0, 0, 0
	for _, co := range plane.Coordinators() {
		decisions += co.Stats.Commits + co.Stats.Aborts
		rounds += co.GroupCommits
		if co.MaxDecisionBatch > maxBatch {
			maxBatch = co.MaxDecisionBatch
		}
	}
	if decisions != 8 {
		t.Fatalf("decided %d transactions, want 8", decisions)
	}
	if maxBatch < 2 || rounds >= decisions {
		t.Fatalf("burst never group-committed: %d decisions in %d rounds (maxBatch=%d)", decisions, rounds, maxBatch)
	}
	if err := set.CheckTxns(); err != nil {
		t.Fatalf("atomicity check: %v", err)
	}
}

// TestBatchedPipelinedDeterministic pins the determinism contract with
// batching AND pipelining on (K > 1): same description, same seed —
// identical ack history and identical Result rendering, under combined
// crash and partition faults.
func TestBatchedPipelinedDeterministic(t *testing.T) {
	run := func() (string, string) {
		c := cluster.New(cluster.Config{Seed: 41})
		c.AddNodes(7)
		c.ConnectAll(100*us, 300*us)
		set := c.ShardsWith(2, 3, cluster.ShardConfig{
			Session: session.Params{MaxBatch: 4, FlushInterval: 500 * us, PipelineDepth: 3},
		})
		cl := set.ClientAt(6)
		burstEvery(c, cl, 2*ms, 0, vtime.Time(150*ms))
		c.Crash(0, vtime.Time(40*ms), vtime.Time(200*ms))
		c.PartitionAt(vtime.Time(100*ms), []int{3}, []int{0, 1, 2, 4, 5, 6})
		c.HealAt(vtime.Time(180 * ms))
		res := c.Run(300 * ms)
		var b strings.Builder
		for _, a := range cl.Acks {
			fmt.Fprintf(&b, "%s#%d=%d@%s;", a.Key, a.Seq, a.Result, a.At)
		}
		return b.String(), res.String()
	}
	h1, r1 := run()
	h2, r2 := run()
	if h1 == "" {
		t.Fatal("no acks recorded")
	}
	if h1 != h2 {
		t.Fatalf("same seed, different ack histories with pipelining on:\n%s\n%s", h1, h2)
	}
	if r1 != r2 {
		t.Fatalf("same seed, different Result stats with pipelining on:\n%s\n%s", r1, r2)
	}
}
