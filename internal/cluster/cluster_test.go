package cluster_test

import (
	"strings"
	"testing"

	"hades/internal/cluster"
	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/monitor"
	"hades/internal/sched"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

// diamond builds the fork-join HEUG of the dispatcher's distributed
// regression suite: a source on node 0 fans out to two branches on
// nodes 1 and 2, joining back on node 0.
func diamond(joined *[]int64) *heug.Task {
	return heug.NewTask("diamond", heug.AperiodicLaw()).
		WithDeadline(100*ms).
		Code("src", heug.CodeEU{Node: 0, WCET: 100 * us, Action: func(ctx heug.ActionContext) {
			ctx.Out("l", int64(1))
			ctx.Out("r", int64(2))
		}}).
		Code("left", heug.CodeEU{Node: 1, WCET: 300 * us, Action: func(ctx heug.ActionContext) {
			v, _ := ctx.In("l")
			ctx.Out("lv", v)
		}}).
		Code("right", heug.CodeEU{Node: 2, WCET: 500 * us, Action: func(ctx heug.ActionContext) {
			v, _ := ctx.In("r")
			ctx.Out("rv", v)
		}}).
		Code("join", heug.CodeEU{Node: 0, WCET: 100 * us, Action: func(ctx heug.ActionContext) {
			l, _ := ctx.In("lv")
			r, _ := ctx.In("rv")
			*joined = append(*joined, l.(int64)+r.(int64))
		}}).
		Precede("src", "left", "l").
		Precede("src", "right", "r").
		Precede("left", "join", "lv").
		Precede("right", "join", "rv").
		MustBuild()
}

// diamondRun executes one diamond run through the cluster API and
// returns the result plus the rendered event trace.
func diamondRun(seed int64) (cluster.Result, []string, *[]int64) {
	var joined []int64
	c := cluster.New(cluster.Config{Seed: seed, Costs: dispatcher.DefaultCostBook()})
	c.AddNodes(3)
	c.ConnectAll(100*us, 300*us)
	app := c.NewApp("app", sched.NewEDF(15*us), nil)
	app.MustSpawn(diamond(&joined))
	c.ActivateAt("diamond", 0)
	res := c.Run(200 * ms)
	var trace []string
	for _, e := range c.Log().Events() {
		trace = append(trace, e.String())
	}
	return res, trace, &joined
}

// TestDiamondViaCluster reproduces the dispatcher distributed_test
// diamond behaviour through the cluster API: one completion, the join
// sees 1+2, exactly four remote crossings, no spurious omissions.
func TestDiamondViaCluster(t *testing.T) {
	res, _, joined := diamondRun(21)
	if res.Stats.Completions != 1 {
		t.Fatalf("completions %d", res.Stats.Completions)
	}
	if len(*joined) != 1 || (*joined)[0] != 3 {
		t.Fatalf("join results %v, want [3]", *joined)
	}
	if res.Net.Delivered != 4 {
		t.Fatalf("remote messages %d, want 4", res.Net.Delivered)
	}
	if res.Stats.NetworkOmissions != 0 {
		t.Fatalf("spurious omission detections: %d", res.Stats.NetworkOmissions)
	}
}

// TestIdenticalSeedsIdenticalTraces asserts the determinism contract:
// a run is a pure function of the cluster description and the seed, so
// two identically-described clusters produce identical event traces.
func TestIdenticalSeedsIdenticalTraces(t *testing.T) {
	_, trace1, _ := diamondRun(21)
	_, trace2, _ := diamondRun(21)
	if len(trace1) == 0 {
		t.Fatal("empty trace")
	}
	if len(trace1) != len(trace2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(trace1), len(trace2))
	}
	for i := range trace1 {
		if trace1[i] != trace2[i] {
			t.Fatalf("traces diverge at event %d:\n  %s\n  %s", i, trace1[i], trace2[i])
		}
	}
	// A different seed must still complete, but samples different link
	// delays — the traces are allowed (and expected) to differ.
	res, trace3, _ := diamondRun(99)
	if res.Stats.Completions != 1 {
		t.Fatalf("seed 99: completions %d", res.Stats.Completions)
	}
	same := len(trace1) == len(trace3)
	if same {
		for i := range trace1 {
			if trace1[i] != trace3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced byte-identical traces — seeding is dead")
	}
}

// TestSpawnDrivesArrivalLaws: Spawn registers and drives periodic and
// sporadic tasks without any per-task generator wiring.
func TestSpawnDrivesArrivalLaws(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 1})
	c.AddNode("solo")
	app := c.NewApp("app", sched.NewEDF(10*us), nil)
	app.MustSpawn(heug.NewTask("per", heug.PeriodicEvery(10*ms)).
		WithDeadline(10*ms).
		Code("a", heug.CodeEU{Node: 0, WCET: 500 * us}).
		MustBuild())
	app.MustSpawn(heug.NewTask("spo", heug.SporadicEvery(20*ms)).
		WithDeadline(20*ms).
		Code("a", heug.CodeEU{Node: 0, WCET: 500 * us}).
		MustBuild())
	res := c.Run(100 * ms)
	per, ok := res.Task("per")
	if !ok || per.Activations < 10 {
		t.Fatalf("periodic task: %+v (ok=%v)", per, ok)
	}
	spo, ok := res.Task("spo")
	if !ok || spo.Activations < 5 {
		t.Fatalf("sporadic task: %+v (ok=%v)", spo, ok)
	}
	if res.Stats.DeadlineMisses != 0 {
		t.Fatalf("misses %d", res.Stats.DeadlineMisses)
	}
}

// TestOmissionInjection: a drop-every fault on the remote precedence
// port makes the dispatcher detect network omissions, and the counters
// surface in the Result.
func TestOmissionInjection(t *testing.T) {
	var joined []int64
	c := cluster.New(cluster.Config{Seed: 3, Costs: dispatcher.DefaultCostBook()})
	c.AddNodes(3)
	c.ConnectAll(100*us, 300*us)
	c.DropEvery(2, "heug.prec") // drop every 2nd remote crossing
	app := c.NewApp("app", sched.NewEDF(15*us), nil)
	app.MustSpawn(diamond(&joined))
	c.ActivateAt("diamond", 0)
	res := c.Run(200 * ms)
	if res.Net.Dropped == 0 {
		t.Fatal("no messages dropped despite injected omissions")
	}
	if res.Stats.NetworkOmissions == 0 {
		t.Fatal("dispatcher did not detect the injected omissions")
	}
}

// TestGroupLifecycleViaCluster: the cluster Group API runs the whole
// membership cycle — crash, agreed removal view, recovery, rejoin —
// and surfaces it in the Result, deterministically across runs.
func TestGroupLifecycleViaCluster(t *testing.T) {
	run := func() (cluster.Result, string) {
		c := cluster.New(cluster.Config{Seed: 5})
		c.AddNodes(3)
		c.ConnectAll(100*us, 300*us)
		g := c.Group("trio", 0, 1, 2)
		c.Crash(2, vtime.Time(40*ms), vtime.Time(150*ms))
		res := c.Run(300 * ms)
		hist := ""
		for _, in := range g.Membership().Installs {
			hist += in.View.String() + "@" + in.At.String() + ";"
		}
		return res, hist
	}
	res, hist1 := run()
	gr, ok := res.Group("trio")
	if !ok {
		t.Fatal("group missing from Result")
	}
	if len(gr.Views) != 3 {
		t.Fatalf("agreed views %v, want removal + rejoin", gr.Views)
	}
	if gr.MaxViewLatency == 0 || gr.MaxViewLatency > gr.Bound {
		t.Fatalf("view latency %s outside (0, bound %s]", gr.MaxViewLatency, gr.Bound)
	}
	if _, hist2 := run(); hist1 != hist2 {
		t.Fatalf("same seed, different view installs:\n%s\n%s", hist1, hist2)
	}
}

// TestExplicitTopology: nodes connected only in a line; the delay
// bounds are per-link, and unconnected pairs have no link.
func TestExplicitTopology(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 1})
	c.AddNodes(3)
	c.Connect(0, 1, 50*us, 100*us)
	c.Connect(1, 2, 200*us, 400*us)
	net := c.Network()
	if net == nil {
		t.Fatal("no network despite declared links")
	}
	if d, ok := net.DelayBound(0, 1); !ok || d != 100*us {
		t.Fatalf("link 0-1 bound %s ok=%v", d, ok)
	}
	if d, ok := net.DelayBound(1, 2); !ok || d != 400*us {
		t.Fatalf("link 1-2 bound %s ok=%v", d, ok)
	}
	if _, ok := net.DelayBound(0, 2); ok {
		t.Fatal("0-2 should not be connected in a line topology")
	}
}

// TestPartitionViaCluster: the cluster-level partition fault drives
// the whole primary-partition story, and the Result surfaces
// quorum/blocked-time/merge-latency per group.
func TestPartitionViaCluster(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 9})
	c.AddNodes(4)
	c.ConnectAll(100*us, 300*us)
	g := c.Group("pp", 0, 1, 2)
	c.PartitionAt(vtime.Time(40*ms), []int{0}, []int{1, 2, 3})
	c.HealAt(vtime.Time(150 * ms))
	res := c.Run(300 * ms)

	gr, ok := res.Group("pp")
	if !ok {
		t.Fatal("group missing from Result")
	}
	if len(gr.Views) != 3 {
		t.Fatalf("agreed views %v, want split-removal + merge", gr.Views)
	}
	if gr.Quorum != 2 {
		t.Fatalf("quorum %d, want 2 (strict majority of 3)", gr.Quorum)
	}
	if gr.BlockedTime == 0 {
		t.Fatal("blocked time missing from Result")
	}
	if gr.NoQuorumTime != 0 {
		t.Fatalf("no-quorum time %s, want 0 (one side always had quorum)", gr.NoQuorumTime)
	}
	if gr.Merges != 1 || gr.MergeLatency == 0 {
		t.Fatalf("merges=%d mergeLat=%s, want exactly one measured merge", gr.Merges, gr.MergeLatency)
	}
	// The minority member never installed a view while partitioned.
	mem := g.Membership()
	if hist := mem.History(0); len(hist) != 2 {
		t.Fatalf("minority history %v, want [v1 merge]", hist)
	}
}

// TestResultSurfacesLogDropped: when the bounded monitor log evicts
// events, the eviction count reaches the Result and its report.
func TestResultSurfacesLogDropped(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 1, LogLimit: 3})
	c.AddNodes(1)
	log := c.Log()
	for i := 0; i < 10; i++ {
		log.Recordf(vtime.Time(i), monitor.KindNotification, 0, "test", "event %d", i)
	}
	res := c.ResultNow()
	if res.LogDropped != 7 {
		t.Fatalf("LogDropped = %d, want 7 (10 events, limit 3)", res.LogDropped)
	}
	if !strings.Contains(res.String(), "7 events dropped") {
		t.Fatalf("report does not surface the eviction count:\n%s", res)
	}
}
