// Package cluster is the unified runtime layer of the HADES
// reproduction: one builder that composes N simulated kernel nodes, a
// network topology with bounded-delay links, the generic dispatcher,
// shared monitoring and seeded fault injection behind a single API, so
// applications describe the cluster and get a running system (§3–§4 of
// the paper: the middleware, not the application, wires dispatcher,
// time-bounded services and failure detection over the COTS substrate).
//
// Typical use:
//
//	c := cluster.New(cluster.Config{Seed: 1, Costs: dispatcher.DefaultCostBook()})
//	c.AddNodes(3)
//	c.ConnectAll(100*vtime.Microsecond, 300*vtime.Microsecond)
//	app := c.NewApp("ctrl", sched.NewEDF(20*vtime.Microsecond), sched.NewSRP())
//	app.MustSpawn(task)               // registered and driven per its arrival law
//	c.DropEvery(40, "heug.prec")      // seeded fault injection
//	res := c.Run(vtime.Second)        // seals apps, starts generators, runs
//
// The run is a pure function of the builder calls and the seed: two
// identically-described clusters produce identical event traces.
package cluster

import (
	"fmt"

	"hades/internal/dispatcher"
	"hades/internal/eventq"
	"hades/internal/fault"
	"hades/internal/heug"
	"hades/internal/load"
	"hades/internal/membership"
	"hades/internal/metrics"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/replication"
	"hades/internal/simkern"
	"hades/internal/trace"
	"hades/internal/vtime"
)

// NetParams tunes the simulated network receive path (the NetMsg task
// of §3.1). A nil Config.Net selects netsim's defaults (25 µs ATM
// interrupt, 35 µs protocol processing at a near-kernel priority); a
// non-nil value is used verbatim, zero fields included, so idealised
// zero-overhead receive paths stay expressible.
type NetParams struct {
	// WAtm is the ATM card interrupt handler WCET (w_atm, §4.2).
	WAtm vtime.Duration
	// WProto is the protocol (NetMsg task) processing WCET per message.
	WProto vtime.Duration
	// PrioNet is the priority of the NetMsg protocol task.
	PrioNet int
}

// TraceParams tunes the causal tracing plane. A nil Config.Trace
// enables tracing at DefaultSampleRate; a non-nil value is used
// verbatim, so SampleRate 0 means "histograms for all, full span trees
// only for violating traces".
// DefaultSampleRate is the span-tree retention rate a nil Config.Trace
// selects: enough retained traces to debug from, cheap enough that
// tracing stays within the benchmarked overhead budget. Scenarios that
// want every span tree (the builtins do) pin the rate explicitly.
const DefaultSampleRate = 0.1

type TraceParams struct {
	// SampleRate is the fraction of finished traces retained with full
	// span trees, chosen by a deterministic hash of the trace id (never
	// the engine's random stream). Violating traces — deadline misses,
	// aborts, omission-hit ops — are always retained regardless.
	SampleRate float64
	// Disabled turns the tracing plane off entirely: no spans, no
	// percentile aggregation, no retained traces.
	Disabled bool
}

// MetricsParams tunes the virtual-time metrics plane. A nil
// Config.Metrics enables the plane with the package defaults (5ms
// scrape interval, 256-point series); a non-nil value is used
// verbatim with zero fields defaulting, so scenarios pin the interval
// and declare SLO rules without restating the rest.
type MetricsParams struct {
	// Interval is the virtual-time scrape period (0 selects
	// metrics.DefaultInterval).
	Interval vtime.Duration
	// Capacity bounds each series' ring buffer (0 selects
	// metrics.DefaultCapacity).
	Capacity int
	// TopK bounds the key-hotness sketch (0 selects metrics.DefaultTopK).
	TopK int
	// Rules are the declarative SLO threshold rules evaluated each
	// scrape interval; breaches and clears land in the monitor stream.
	Rules []metrics.Rule
	// Disabled turns the metrics plane off entirely: nil instrument
	// handles everywhere, no scrape events, no export.
	Disabled bool
}

// Config describes the cluster to assemble.
type Config struct {
	// Seed drives all randomness (link delays, probabilistic faults):
	// same description plus same seed means the same run.
	Seed int64
	// Costs is the §4 cost book; the zero value means free middleware
	// (idealised comparisons). Use dispatcher.DefaultCostBook for
	// realistic costs.
	Costs dispatcher.CostBook
	// Net tunes the network receive path; nil selects defaults.
	Net *NetParams
	// LogLimit bounds the event log: 0 selects a generous default,
	// negative disables the bound entirely.
	LogLimit int
	// RingLog keeps the most recent LogLimit events instead of the
	// first (violations are retained either way); the default head mode
	// preserves the run's prefix.
	RingLog bool
	// CancelOnMiss aborts instances at their deadline (orphan
	// handling); the default false records misses only.
	CancelOnMiss bool
	// Trace tunes the causal tracing plane; nil enables tracing at
	// DefaultSampleRate. Histograms observe every op either way —
	// the rate only bounds span-tree retention.
	Trace *TraceParams
	// Metrics tunes the virtual-time metrics plane; nil enables it
	// with the package defaults.
	Metrics *MetricsParams
}

// linkDecl is one declared point-to-point link.
type linkDecl struct {
	a, b       int
	dMin, dMax vtime.Duration
}

// spawned is one task to drive from Run per its arrival law.
type spawned struct {
	app  *App
	task *heug.Task
}

// Cluster is the builder and runtime handle. Declare the topology
// (AddNode, Connect), the applications (NewApp, Spawn), and the faults
// (Crash, DropEvery, ...), then Run. Not safe for concurrent use; a
// run is single-threaded by design.
type Cluster struct {
	cfg     Config
	log     *monitor.Log
	eng     *simkern.Engine
	tracer  *trace.Tracer
	metrics *metrics.Registry
	nodes   []int
	links   []linkDecl
	mesh    *linkDecl // ConnectAll request (a, b unused)

	net  *netsim.Network
	disp *dispatcher.Dispatcher
	apps []*App

	hooks     fault.Hooks
	spawns    []spawned
	groups    []*Group
	shardSets []*ShardSet
	loads     []*load.Generator
	started   map[string]bool
	built     bool
}

// DefaultLinkDMin and DefaultLinkDMax bound point-to-point delays when
// the topology is left implicit (a multi-node cluster with no Connect
// call gets a full mesh with these bounds, mirroring the paper's ATM
// testbed magnitudes).
const (
	DefaultLinkDMin = 100 * vtime.Microsecond
	DefaultLinkDMax = 300 * vtime.Microsecond
)

// New returns an empty cluster. Add nodes and links before registering
// applications; the platform is finalized by the first NewApp, Run or
// Network/Dispatcher access.
func New(cfg Config) *Cluster {
	limit := cfg.LogLimit
	switch {
	case limit == 0:
		limit = 500000
	case limit < 0:
		limit = 0 // monitor.NewLog(0) = unbounded
	}
	log := monitor.NewLog(limit)
	if cfg.RingLog {
		log = monitor.NewRingLog(limit)
	}
	c := &Cluster{
		cfg:     cfg,
		log:     log,
		eng:     simkern.NewEngine(log, cfg.Seed),
		started: make(map[string]bool),
	}
	rate, disabled := DefaultSampleRate, false
	if cfg.Trace != nil {
		rate, disabled = cfg.Trace.SampleRate, cfg.Trace.Disabled
	}
	if !disabled {
		c.tracer = trace.New(cfg.Seed, rate, c.eng.Now)
		c.eng.SetTracer(c.tracer)
	}
	mp := MetricsParams{}
	if cfg.Metrics != nil {
		mp = *cfg.Metrics
	}
	if !mp.Disabled {
		c.metrics = metrics.New(metrics.Options{
			Interval: mp.Interval,
			Capacity: mp.Capacity,
			TopK:     mp.TopK,
			Rules:    mp.Rules,
			Now:      c.eng.Now,
			Schedule: func(t vtime.Time, fn func()) { c.eng.At(t, eventq.ClassApp, fn) },
			Log:      log,
		})
		c.eng.SetMetrics(c.metrics)
		// Kernel-plane signals: live event-queue depth and events
		// retired per interval, sampled from statistics the engine
		// already keeps.
		c.metrics.GaugeFunc("eventq.depth", func() int64 { return int64(c.eng.QueueLen()) })
		c.metrics.CounterFunc("eventq.events", func() int64 { return int64(c.eng.EventsFired()) })
	}
	return c
}

// AddNode registers one mono-processor node and returns its id. An
// empty name defaults to "nodeN". Nodes must be added before the first
// NewApp or Run.
func (c *Cluster) AddNode(name string) int {
	if c.built {
		panic("cluster: AddNode after the platform was finalized")
	}
	id := len(c.nodes)
	if name == "" {
		name = fmt.Sprintf("node%d", id)
	}
	c.eng.AddProcessor(name, c.cfg.Costs.SwitchCost)
	c.nodes = append(c.nodes, id)
	return id
}

// AddNodes registers n nodes with default names and returns their ids.
func (c *Cluster) AddNodes(n int) []int {
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, c.AddNode(""))
	}
	return ids
}

// NumNodes returns the number of registered nodes.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Connect declares a bidirectional link between nodes a and b with
// transmission delay bounds [dMin, dMax].
func (c *Cluster) Connect(a, b int, dMin, dMax vtime.Duration) {
	if c.built {
		c.net.Connect(a, b, dMin, dMax)
		return
	}
	c.links = append(c.links, linkDecl{a: a, b: b, dMin: dMin, dMax: dMax})
}

// ConnectAll declares a full mesh over every node with the same bounds.
func (c *Cluster) ConnectAll(dMin, dMax vtime.Duration) {
	if c.built {
		c.net.ConnectAll(c.nodes, dMin, dMax)
		return
	}
	c.mesh = &linkDecl{dMin: dMin, dMax: dMax}
}

// build finalizes the platform: network (when any topology was
// declared, or implicitly for multi-node clusters) then dispatcher.
// The construction order is part of the determinism contract.
func (c *Cluster) build() {
	if c.built {
		return
	}
	if len(c.nodes) == 0 {
		c.AddNode("")
	}
	c.built = true
	if c.mesh == nil && len(c.links) == 0 && len(c.nodes) > 1 {
		c.mesh = &linkDecl{dMin: DefaultLinkDMin, dMax: DefaultLinkDMax}
	}
	if c.mesh != nil || len(c.links) > 0 {
		ncfg := netsim.DefaultConfig()
		if c.cfg.Net != nil {
			ncfg = netsim.Config{WAtm: c.cfg.Net.WAtm, WProto: c.cfg.Net.WProto, PrioNet: c.cfg.Net.PrioNet}
		}
		c.net = netsim.New(c.eng, ncfg)
		if c.mesh != nil {
			c.net.ConnectAll(c.nodes, c.mesh.dMin, c.mesh.dMax)
		}
		for _, l := range c.links {
			c.net.Connect(l.a, l.b, l.dMin, l.dMax)
		}
		// Network-plane signals, fed from the stats netsim already
		// accumulates.
		c.metrics.GaugeFunc("net.inflight", func() int64 { return int64(c.net.Inflight()) })
		c.metrics.CounterFunc("net.sent", func() int64 { return int64(c.net.Stats().Sent) })
		c.metrics.CounterFunc("net.drops", func() int64 { return int64(c.net.Stats().Dropped) })
	}
	c.disp = dispatcher.New(c.eng, c.net, c.cfg.Costs)
	c.disp.CancelOnMiss = c.cfg.CancelOnMiss
}

// Engine returns the discrete-event engine.
func (c *Cluster) Engine() *simkern.Engine { return c.eng }

// Network returns the simulated interconnect (nil when the cluster has
// a single node and no declared links). It finalizes the platform.
func (c *Cluster) Network() *netsim.Network {
	c.build()
	return c.net
}

// Dispatcher returns the generic dispatcher, finalizing the platform.
func (c *Cluster) Dispatcher() *dispatcher.Dispatcher {
	c.build()
	return c.disp
}

// Log returns the shared monitoring event log.
func (c *Cluster) Log() *monitor.Log { return c.log }

// Tracer returns the causal tracing plane (nil when disabled — a valid
// disabled tracer; every trace call no-ops).
func (c *Cluster) Tracer() *trace.Tracer { return c.tracer }

// Metrics returns the virtual-time metrics plane (nil when disabled —
// a valid disabled registry; every instrument accessor returns a
// no-op handle).
func (c *Cluster) Metrics() *metrics.Registry { return c.metrics }

// Now returns the current virtual time.
func (c *Cluster) Now() vtime.Time { return c.eng.Now() }

// At schedules an application-level callback at absolute instant t
// (workload feeding, measurement probes).
func (c *Cluster) At(t vtime.Time, fn func()) {
	c.eng.At(t, eventq.ClassApp, fn)
}

// After schedules an application-level callback d from now.
func (c *Cluster) After(d vtime.Duration, fn func()) {
	c.eng.After(d, eventq.ClassApp, fn)
}

// App is one application on the cluster: a scheduler, a resource
// policy, and its tasks.
type App struct {
	c      *Cluster
	app    *dispatcher.App
	sealed bool
}

// NewApp registers an application with its scheduling policy and
// resource protocol (nil policy = plain locking). It finalizes the
// platform: declare all nodes and links first.
func (c *Cluster) NewApp(name string, sch dispatcher.Scheduler, pol dispatcher.ResourcePolicy) *App {
	c.build()
	a := &App{c: c, app: c.disp.RegisterApp(name, sch, pol)}
	c.apps = append(c.apps, a)
	return a
}

// AddTask registers a HEUG task without driving it (activate it with
// ActivateAt/ActivateOnCond, or use Spawn for law-driven tasks).
func (a *App) AddTask(t *heug.Task) error {
	_, err := a.app.AddTask(t)
	return err
}

// MustAddTask registers a task, panicking on error (static setup).
func (a *App) MustAddTask(t *heug.Task) {
	if err := a.AddTask(t); err != nil {
		panic(err)
	}
}

// AddSpuri translates a §5.1 task via Figure 3 and registers it.
func (a *App) AddSpuri(st heug.SpuriTask) error {
	t, err := st.ToHEUG()
	if err != nil {
		return err
	}
	return a.AddTask(t)
}

// Spawn registers a task and schedules it to be driven from Run
// according to its declared arrival law: periodic tasks get a timer
// generator, sporadic tasks the worst-case (pseudo-period) generator,
// aperiodic tasks are registered only (activate them with ActivateAt
// or ActivateOnCond).
func (a *App) Spawn(t *heug.Task) error {
	if err := a.AddTask(t); err != nil {
		return err
	}
	if t.Arrival.Kind != heug.Aperiodic {
		a.c.spawns = append(a.c.spawns, spawned{app: a, task: t})
	}
	return nil
}

// MustSpawn is Spawn, panicking on error (static setup).
func (a *App) MustSpawn(t *heug.Task) {
	if err := a.Spawn(t); err != nil {
		panic(err)
	}
}

// SpawnSpuri translates a §5.1 task and spawns it.
func (a *App) SpawnSpuri(st heug.SpuriTask) error {
	t, err := st.ToHEUG()
	if err != nil {
		return err
	}
	return a.Spawn(t)
}

// Seal finishes the app: static priority assignment, protocol
// ceilings, admission wiring. Run seals every app automatically; call
// it early only when setup code needs a sealed app before Run.
func (a *App) Seal() {
	if a.sealed {
		return
	}
	a.sealed = true
	a.app.Seal()
}

// Raw returns the underlying dispatcher.App (advanced use).
func (a *App) Raw() *dispatcher.App { return a.app }

// StartPeriodic installs a timer-driven activation source following
// the task's declared periodic arrival law (offset, then every
// period). Spawn does this automatically for periodic tasks.
func (c *Cluster) StartPeriodic(task string) error {
	c.build()
	tr, ok := c.disp.Task(task)
	if !ok {
		return fmt.Errorf("cluster: unknown task %q", task)
	}
	law := tr.Task.Arrival
	if law.Kind != heug.Periodic {
		return fmt.Errorf("cluster: task %q is not periodic", task)
	}
	if c.started[task] {
		return fmt.Errorf("cluster: task %q already driven", task)
	}
	c.started[task] = true
	var fire func()
	fire = func() {
		_, _ = c.disp.Activate(task) // arrival-law monitoring inside
		c.eng.After(law.Period, eventq.ClassDispatch, fire)
	}
	c.eng.After(law.Offset, eventq.ClassDispatch, fire)
	return nil
}

// StartSporadic activates a sporadic task every pseudo-period plus a
// caller-supplied extra gap per instance (nil = worst-case rate). The
// pattern is deterministic given the engine seed if extraGap uses it.
func (c *Cluster) StartSporadic(task string, extraGap func(k uint64) vtime.Duration) error {
	c.build()
	tr, ok := c.disp.Task(task)
	if !ok {
		return fmt.Errorf("cluster: unknown task %q", task)
	}
	law := tr.Task.Arrival
	if law.Kind != heug.Sporadic {
		return fmt.Errorf("cluster: task %q is not sporadic", task)
	}
	if c.started[task] {
		return fmt.Errorf("cluster: task %q already driven", task)
	}
	c.started[task] = true
	var k uint64
	var fire func()
	fire = func() {
		_, _ = c.disp.Activate(task)
		k++
		gap := law.Period
		if extraGap != nil {
			gap += extraGap(k)
		}
		c.eng.After(gap, eventq.ClassDispatch, fire)
	}
	c.eng.After(law.Offset, eventq.ClassDispatch, fire)
	return nil
}

// StartSporadicWorstCase activates a sporadic task at its maximum
// legal rate — the worst-case arrival pattern feasibility tests
// assume. Spawn does this automatically for sporadic tasks.
func (c *Cluster) StartSporadicWorstCase(task string) error {
	return c.StartSporadic(task, nil)
}

// ActivateAt requests a single activation at an absolute instant
// (aperiodic arrivals, interrupt-triggered tasks).
func (c *Cluster) ActivateAt(task string, at vtime.Time) {
	c.build()
	c.eng.At(at, eventq.ClassDispatch, func() { _, _ = c.disp.Activate(task) })
}

// ActivateOnCond activates the task whenever the named condition
// variable is set — the event-triggered activation law of §3.1.2.
func (c *Cluster) ActivateOnCond(cond, task string) {
	c.build()
	c.disp.WatchCond(cond, func() { _, _ = c.disp.Activate(task) })
}

// Group is a managed view-synchronous membership group on the
// cluster, optionally carrying replica groups. Created with
// Cluster.Group; its services are started by Run.
type Group struct {
	c   *Cluster
	svc *membership.Service
	rep []*replication.Group
}

// Group declares a view-synchronous membership group over the given
// nodes: a heartbeat detector, agreed view changes (consensus +
// time-bounded broadcast) and the rejoin/state-transfer protocol, all
// started by Run. It finalizes the platform and needs a network.
func (c *Cluster) Group(name string, nodes ...int) *Group {
	c.build()
	if c.net == nil {
		panic("cluster: Group needs a network (declare links or multiple nodes)")
	}
	svc, err := membership.New(c.eng, c.net, membership.Config{Name: name, Nodes: nodes})
	if err != nil {
		panic(err)
	}
	g := &Group{c: c, svc: svc}
	c.groups = append(c.groups, g)
	return g
}

// Membership returns the group's membership service (view history,
// bounds, detector access).
func (g *Group) Membership() *membership.Service { return g.svc }

// Replicas returns the replica groups attached with Replicate.
func (g *Group) Replicas() []*replication.Group { return g.rep }

// Groups returns the cluster's membership groups, in creation order.
func (c *Cluster) Groups() []*Group { return c.groups }

// Replicate attaches a replica group whose failover is driven by this
// group's installed views. Zero-value cfg fields default: Name to the
// group name, Replicas to the full member set. The returned group is
// ready: submit requests with Submit.
func (g *Group) Replicate(cfg replication.Config, onReply func(reqID uint64, result int64, unanimous bool)) *replication.Group {
	if cfg.Name == "" {
		cfg.Name = g.svc.Name()
	}
	if len(cfg.Replicas) == 0 {
		cfg.Replicas = g.svc.Nodes()
	}
	r, err := replication.NewGroup(g.c.eng, g.c.net, g.svc, cfg, onReply)
	if err != nil {
		panic(err)
	}
	g.rep = append(g.rep, r)
	return r
}

// Crash schedules a crash of node at instant t; if recoverAt is
// non-zero the node comes back then. Crashed nodes neither send nor
// receive.
func (c *Cluster) Crash(node int, at, recoverAt vtime.Time) {
	c.build()
	if c.net == nil {
		panic("cluster: Crash needs a network (declare links or multiple nodes)")
	}
	fault.CrashAt(c.eng, c.net, node, at, recoverAt)
}

// PartitionAt schedules a network partition into the given sides at
// instant at: cross-side messages (including copies in flight) drop
// until HealAt. Nodes listed in no side keep full connectivity (hosts
// outside the segmented segment, e.g. clients). Membership groups
// enforce the primary-partition rule across the split: only the side
// holding a majority quorum of the previous view installs views.
func (c *Cluster) PartitionAt(at vtime.Time, sides ...[]int) {
	c.build()
	if c.net == nil {
		panic("cluster: PartitionAt needs a network (declare links or multiple nodes)")
	}
	fault.PartitionAt(c.eng, c.net, at, 0, sides...)
}

// HealAt schedules the heal of the partition at instant at.
func (c *Cluster) HealAt(at vtime.Time) {
	c.build()
	if c.net == nil {
		panic("cluster: HealAt needs a network (declare links or multiple nodes)")
	}
	fault.HealAt(c.eng, c.net, at)
}

// InjectFault chains a custom fault hook after the ones already
// installed; the first non-deliver verdict wins. Hooks must be
// deterministic given the engine's seeded source.
func (c *Cluster) InjectFault(h netsim.FaultHook) {
	c.build()
	if c.net == nil {
		panic("cluster: fault injection needs a network (declare links or multiple nodes)")
	}
	c.hooks = append(c.hooks, h)
	c.net.SetFault(c.hooks)
}

// DropEvery drops every k-th message on the given port (empty port
// matches all traffic) — a deterministic send-omission pattern.
func (c *Cluster) DropEvery(k int, port string) {
	var filter func(*netsim.Message) bool
	if port != "" {
		filter = func(m *netsim.Message) bool { return m.Port == port }
	}
	c.InjectFault(&fault.OmissionEvery{K: k, Filter: filter})
}

// DropFrom drops all messages sent by the given nodes on the given
// port (empty port matches all their traffic) — fully
// send-omission-faulty processes.
func (c *Cluster) DropFrom(nodes []int, port string) {
	set := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		set[n] = true
	}
	c.InjectFault(&fault.OmissionFrom{Nodes: set, Port: port})
}

// DropRandom drops or delays messages with the given probabilities,
// drawing from the engine's seeded source (deterministic per run).
func (c *Cluster) DropRandom(dropProb, delayProb float64, maxExtra vtime.Duration) {
	c.build()
	c.InjectFault(&fault.RandomFaults{Eng: c.eng, DropProb: dropProb, DelayProb: delayProb, MaxExtra: maxExtra})
}

// Run seals every application, starts the generators of spawned
// tasks, executes the cluster for the given virtual duration and
// reports. It may be called repeatedly to advance further.
func (c *Cluster) Run(d vtime.Duration) Result {
	c.build()
	for _, a := range c.apps {
		a.Seal()
	}
	for _, g := range c.groups {
		g.svc.Start() // idempotent across repeated Runs
	}
	for _, set := range c.shardSets {
		if set.pubsub != nil {
			set.pubsub.Start() // idempotent; arms best-effort bcast + late joiners
		}
	}
	for _, s := range c.spawns {
		var err error
		switch s.task.Arrival.Kind {
		case heug.Periodic:
			err = c.StartPeriodic(s.task.Name)
		case heug.Sporadic:
			err = c.StartSporadicWorstCase(s.task.Name)
		}
		if err != nil {
			panic(err)
		}
	}
	c.spawns = nil
	until := c.eng.Now().Add(d)
	// Pre-arm the scrape ticks for this window: no self-rearming
	// chains, so runs that drain the queue to idle terminate.
	c.metrics.ArmUntil(until)
	c.eng.Run(until)
	return c.ResultNow()
}
