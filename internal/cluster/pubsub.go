package cluster

import (
	"hades/internal/pubsub"
)

// PubSub returns the set's publish-subscribe data-distribution plane,
// creating it on first use (like TxnPlane). The plane maps topics onto
// the set's consistent-hash ring: the shard a topic name hashes to owns
// its reliable delivery and durable history. A set that never touches
// PubSub carries no plane at all — no ports, hooks or metric series.
func (s *ShardSet) PubSub() *pubsub.Plane {
	if s.pubsub == nil {
		refs := make([]pubsub.GroupRef, 0, len(s.shards))
		for _, g := range s.shards {
			refs = append(refs, pubsub.GroupRef{
				Index: g.Index(),
				Name:  g.Name(),
				Nodes: g.Nodes(),
				Rep:   g.Replication(),
				Mem:   g.Membership(),
			})
		}
		p, err := pubsub.NewPlane(s.c.eng, s.c.net, pubsub.Config{
			Name:     s.name,
			ShardFor: s.router.ShardFor,
			Groups:   refs,
			Nodes:    append([]int(nil), s.c.nodes...),
		})
		if err != nil {
			panic(err)
		}
		s.pubsub = p
	}
	return s.pubsub
}

// Topic declares a pub/sub topic under a QoS contract on this set's
// ring (creating the plane on first use).
func (s *ShardSet) Topic(name string, qos pubsub.QoS) (*pubsub.Topic, error) {
	return s.PubSub().Topic(name, qos)
}

// PublisherAt registers a publisher for a declared topic at a node.
func (s *ShardSet) PublisherAt(topic string, node int) (*pubsub.Publisher, error) {
	return s.PubSub().PublisherAt(topic, node)
}

// SubscriberAt registers a subscriber for a declared topic at a node.
func (s *ShardSet) SubscriberAt(topic string, node int) (*pubsub.Subscriber, error) {
	return s.PubSub().SubscriberAt(topic, node)
}

// PubSubPlane returns the plane when the run declared one and nil
// otherwise — unlike PubSub it never creates the plane, so report
// paths stay behaviorally passive.
func (s *ShardSet) PubSubPlane() *pubsub.Plane { return s.pubsub }

// CheckPubSub verifies the pub/sub plane's universal invariants (no
// duplicate or fabricated deliveries, consistent ack accounting,
// bounded history rings). A set without a plane passes vacuously.
func (s *ShardSet) CheckPubSub() error {
	if s.pubsub == nil {
		return nil
	}
	return s.pubsub.Verify()
}
