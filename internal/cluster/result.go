package cluster

import (
	"fmt"

	"hades/internal/dispatcher"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/vtime"
)

// Result is the structured outcome of a run: dispatcher-level counters
// (activations, completions, misses, admission rejections), per-task
// response-time statistics, network counters and recorded violations.
type Result struct {
	Until      vtime.Time
	Stats      dispatcher.Stats
	Tasks      []TaskResult
	Net        netsim.Stats // zero when the cluster has no network
	Violations []monitor.Event
}

// TaskResult is one task's runtime statistics.
type TaskResult struct {
	App         string
	Name        string
	Activations int
	Completions int
	Misses      int
	AvgResponse vtime.Duration
	MaxResponse vtime.Duration
}

// ResultNow builds a Result at the current instant without advancing.
func (c *Cluster) ResultNow() Result {
	c.build()
	r := Result{Until: c.eng.Now(), Stats: c.disp.Stats(), Violations: c.log.Violations()}
	if c.net != nil {
		r.Net = c.net.Stats()
	}
	for _, a := range c.apps {
		for _, tr := range a.app.Tasks() {
			r.Tasks = append(r.Tasks, TaskResult{
				App:         a.app.Name,
				Name:        tr.Task.Name,
				Activations: tr.Activations,
				Completions: tr.Completions,
				Misses:      tr.Misses,
				AvgResponse: tr.AvgResponse(),
				MaxResponse: tr.MaxResponse,
			})
		}
	}
	return r
}

// Task returns the named task's statistics.
func (r Result) Task(name string) (TaskResult, bool) {
	for _, t := range r.Tasks {
		if t.Name == name {
			return t, true
		}
	}
	return TaskResult{}, false
}

// String renders the result as a compact table.
func (r Result) String() string {
	out := fmt.Sprintf("t=%s activations=%d completions=%d misses=%d rejections=%d violations=%d\n",
		r.Until, r.Stats.Activations, r.Stats.Completions, r.Stats.DeadlineMisses,
		r.Stats.Rejections, len(r.Violations))
	if r.Net.Sent > 0 {
		out += fmt.Sprintf("  net: sent=%d delivered=%d dropped=%d late=%d maxDelay=%s\n",
			r.Net.Sent, r.Net.Delivered, r.Net.Dropped, r.Net.Late, r.Net.MaxDelay)
	}
	for _, t := range r.Tasks {
		out += fmt.Sprintf("  %-16s act=%-5d done=%-5d miss=%-4d avg=%-12s max=%s\n",
			t.Name, t.Activations, t.Completions, t.Misses, t.AvgResponse, t.MaxResponse)
	}
	return out
}
