package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hades/internal/dispatcher"
	"hades/internal/membership"
	"hades/internal/metrics"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/pubsub"
	"hades/internal/trace"
	"hades/internal/vtime"
)

// Result is the structured outcome of a run: dispatcher-level counters
// (activations, completions, misses, admission rejections), per-task
// response-time statistics, network counters, membership group view
// histories and recorded violations.
type Result struct {
	Until      vtime.Time
	Stats      dispatcher.Stats
	Tasks      []TaskResult
	Net        netsim.Stats // zero when the cluster has no network
	Groups     []GroupResult
	Shards     []ShardResult
	Clients    []ClientResult
	TxnClients []TxnClientResult
	// Latency aggregates the causal traces: one row per (op class,
	// shard) plus an all-shards row (Shard = -1) per class, with
	// percentiles and the mean per-layer breakdown. Empty when tracing
	// is disabled.
	Latency    []LatencyResult
	Violations []monitor.Event
	// Loads records each attached load generator's account.
	Loads []LoadResult
	// PubSub records each declared pub/sub topic's delivery account,
	// declaration order (empty when no set created a plane).
	PubSub []pubsub.TopicStats
	// Faults is the run's fault timeline: the monitor events recording
	// injected failures, detections, failovers, partitions, merges and
	// SLO breach boundaries, time order (subject to the log's bound —
	// a non-zero LogDropped means the timeline may be incomplete).
	Faults []monitor.Event
	// Metrics is the virtual-time metrics timeline (nil when the plane
	// is disabled): every series' retained points, the SLO rule records
	// with their breach windows, and the key-hotness sketch.
	Metrics *metrics.Export
	// LogDropped counts monitor-log events evicted by the log's bound
	// (ring churn or head-mode overflow) — a non-zero value means the
	// retained event window is incomplete.
	LogDropped int
}

// LatencyResult is one op class's latency record on one shard (or all
// shards, Shard = -1): end-to-end percentiles over every finished
// trace of the scope, plus the mean time spent per layer. The layer
// breakdown partitions the end-to-end time exactly (the trace plane
// attributes every instant of a trace to its highest-priority active
// layer), so the layer means sum to Mean up to integer rounding.
type LatencyResult struct {
	Class string
	Shard int // -1 aggregates all shards
	Count int
	P50   vtime.Duration
	P99   vtime.Duration
	P999  vtime.Duration
	Max   vtime.Duration
	Mean  vtime.Duration
	// Mean per-layer dwell: client queueing, batcher wait, wire round
	// trips, replication rounds, lock waits, and everything else.
	Queued      vtime.Duration
	Batched     vtime.Duration
	Wire        vtime.Duration
	Replicating vtime.Duration
	Locked      vtime.Duration
	Other       vtime.Duration
}

// ShardResult is one shard group's routing and service record (its
// membership/replication record appears under Groups as usual).
type ShardResult struct {
	Name    string
	Index   int
	Nodes   []int
	Primary int
	// Requests counts client requests arriving at replicas; Served the
	// OK responses; Redirects the bounces to the current primary;
	// Blocked the stale-view (no local quorum) rejections; Duplicates
	// the retried requests answered from the replicated dedup cache.
	Requests   int
	Served     int
	Redirects  int
	Blocked    int
	Duplicates int
	// Applied is the primary state machine's apply counter.
	Applied int64
	// Txn aggregates the shard's transaction-layer roles (zero when the
	// set's transaction plane was never created).
	Txn TxnShardResult
}

// TxnShardResult is one shard's transaction coordinator/participant
// record.
type TxnShardResult struct {
	// Begins, Commits, Aborts and DeadlineAborts count this shard's
	// coordinator decisions (transactions hashed onto it).
	Begins         int
	Commits        int
	Aborts         int
	DeadlineAborts int
	// Prepares, LockWaits and DeadlineReleases count this shard's
	// participant activity (transactions touching its keys).
	Prepares         int
	LockWaits        int
	DeadlineReleases int
	// GroupCommits counts decision-log rounds this coordinator
	// submitted; with group commit on it is smaller than
	// Commits+Aborts and MaxDecisionBatch reports the largest batch of
	// COMMIT/ABORT records carried in one replicated round.
	GroupCommits     int
	MaxDecisionBatch int
}

// ClientResult is one shard client's request-layer record.
type ClientResult struct {
	Node        int
	Submitted   int
	Acked       int
	Redirects   int
	Timeouts    int
	Retries     int
	Blocked     int
	Queued      int
	Resubmitted int
	FailedFast  int
	AvgLatency  vtime.Duration
	MaxLatency  vtime.Duration
	// Batches counts flushed submissions (each one wire message
	// carrying one or more ops); MaxBatchOps is the largest batch;
	// Stalls the flushes deferred by the pipeline-depth limit.
	Batches     int
	MaxBatchOps int
	Stalls      int
	// SizeHist renders the batch-size histogram ("1:3 4:2" = three
	// singletons, two 4-op batches; "-" when no batch flushed).
	SizeHist string
	// Depth renders the deepest pipeline reached per shard lane
	// ("s0:2 s1:1"; "-" when nothing was in flight).
	Depth string
}

// TxnClientResult is one transaction client's record.
type TxnClientResult struct {
	Node           int
	Begun          int
	Committed      int
	Aborted        int
	DeadlineAborts int
	Retries        int
	Queued         int
	Resubmitted    int
	AvgLatency     vtime.Duration
	MaxLatency     vtime.Duration
}

// GroupResult is one membership group's runtime record: the agreed
// view history, view-change latency statistics (each install is also
// recorded in the monitor log as a ViewInstall event) and the attached
// replica groups' failover counters.
type GroupResult struct {
	Name string
	// Views is the agreed, totally ordered view sequence.
	Views []membership.View
	// Installs counts per-node view installations; Joins counts
	// completed state transfers.
	Installs int
	Joins    int
	// AvgViewLatency and MaxViewLatency aggregate the
	// suspicion-to-install latencies of non-initial installs; Bound is
	// the service's provable per-change bound.
	AvgViewLatency vtime.Duration
	MaxViewLatency vtime.Duration
	Bound          vtime.Duration
	// Quorum is the strict-majority head count of the final view —
	// what a side must muster to install the next view under the
	// primary-partition rule.
	Quorum int
	// BlockedTime sums the time members spent excluded from the agreed
	// view while alive (partitioned minority sides); NoQuorumTime is
	// the span with changes pending but no majority side anywhere.
	BlockedTime  vtime.Duration
	NoQuorumTime vtime.Duration
	// Merges counts partition merge views (blocked members re-admitted)
	// and MergeLatency the worst heal-to-merge-install latency.
	Merges       int
	MergeLatency vtime.Duration
	// Flushed counts messages discarded by virtual-synchronous
	// flushing at view boundaries (broadcast + replication traffic).
	Flushed int
	// Failovers and LostWork aggregate the attached replica groups.
	Failovers int
	LostWork  int64
}

// TaskResult is one task's runtime statistics.
type TaskResult struct {
	App         string
	Name        string
	Activations int
	Completions int
	Misses      int
	AvgResponse vtime.Duration
	MaxResponse vtime.Duration
}

// ResultNow builds a Result at the current instant without advancing.
func (c *Cluster) ResultNow() Result {
	c.build()
	r := Result{
		Until: c.eng.Now(), Stats: c.disp.Stats(), Violations: c.log.Violations(),
		Metrics: c.metrics.Export(), LogDropped: c.log.Dropped(),
	}
	if c.net != nil {
		r.Net = c.net.Stats()
	}
	for _, a := range c.apps {
		for _, tr := range a.app.Tasks() {
			r.Tasks = append(r.Tasks, TaskResult{
				App:         a.app.Name,
				Name:        tr.Task.Name,
				Activations: tr.Activations,
				Completions: tr.Completions,
				Misses:      tr.Misses,
				AvgResponse: tr.AvgResponse(),
				MaxResponse: tr.MaxResponse,
			})
		}
	}
	for _, g := range c.groups {
		r.Groups = append(r.Groups, g.result())
	}
	for _, set := range c.shardSets {
		for _, sg := range set.shards {
			rep := sg.Replication()
			sr := ShardResult{
				Name:       sg.Name(),
				Index:      sg.Index(),
				Nodes:      sg.Nodes(),
				Primary:    rep.Primary(),
				Requests:   sg.Stats.Requests,
				Served:     sg.Stats.Served,
				Redirects:  sg.Stats.Redirects,
				Blocked:    sg.Stats.Blocked,
				Duplicates: rep.Duplicates,
				Applied:    rep.Machine(rep.Primary()).Applied,
			}
			if set.txnPlane != nil {
				co := set.txnPlane.Coordinators()[sg.Index()]
				pa := set.txnPlane.Participants()[sg.Index()]
				sr.Txn = TxnShardResult{
					Begins:           co.Stats.Begins,
					Commits:          co.Stats.Commits,
					Aborts:           co.Stats.Aborts,
					DeadlineAborts:   co.Stats.DeadlineAborts,
					Prepares:         pa.Stats.Prepares,
					LockWaits:        pa.Stats.LockWaits,
					DeadlineReleases: pa.Stats.DeadlineReleases,
					GroupCommits:     co.GroupCommits,
					MaxDecisionBatch: co.MaxDecisionBatch,
				}
			}
			r.Shards = append(r.Shards, sr)
		}
		if set.txnPlane != nil {
			for _, tc := range set.txnPlane.Clients() {
				st := tc.Stats
				r.TxnClients = append(r.TxnClients, TxnClientResult{
					Node:           tc.Node(),
					Begun:          st.Begun,
					Committed:      st.Committed,
					Aborted:        st.Aborted,
					DeadlineAborts: st.DeadlineAborts,
					Retries:        st.Retries,
					Queued:         st.Queued,
					Resubmitted:    st.Resubmitted,
					AvgLatency:     st.AvgLatency(),
					MaxLatency:     st.MaxLatency,
				})
			}
		}
		if set.pubsub != nil {
			r.PubSub = append(r.PubSub, set.pubsub.Stats()...)
		}
		for _, cl := range set.clients {
			st := cl.Stats
			bs := cl.BatchStats()
			r.Clients = append(r.Clients, ClientResult{
				Node:        cl.Node(),
				Submitted:   st.Submitted,
				Acked:       st.Acked,
				Redirects:   st.Redirects,
				Timeouts:    st.Timeouts,
				Retries:     st.Retries,
				Blocked:     st.Blocked,
				Queued:      st.Queued,
				Resubmitted: st.Resubmitted,
				FailedFast:  st.FailedFast,
				AvgLatency:  st.AvgLatency(),
				MaxLatency:  st.MaxLatency,
				Batches:     int(bs.Batches),
				MaxBatchOps: bs.MaxBatchOps,
				Stalls:      int(bs.Stalls),
				SizeHist:    bs.HistString(),
				Depth:       depthString(cl.MaxInflight()),
			})
		}
	}
	for _, st := range c.tracer.Stats() {
		r.Latency = append(r.Latency, latencyFromScope(st))
	}
	for _, g := range c.loads {
		cfg := g.Config()
		r.Loads = append(r.Loads, LoadResult{
			Name:     cfg.Name,
			Mode:     cfg.Mode.String(),
			Workload: cfg.Workload.String(),
			Sessions: cfg.Sessions,
			Offered:  g.Stats.Offered,
			Acked:    g.Stats.Acked,
			Capped:   g.Stats.Capped,
			Latency:  g.LatencyStats(),
		})
	}
	for _, ev := range c.log.Events() {
		if faultTimelineKind(ev.Kind) {
			r.Faults = append(r.Faults, ev)
		}
	}
	return r
}

// faultTimelineKind selects the monitor kinds that belong on a run's
// fault timeline.
func faultTimelineKind(k monitor.Kind) bool {
	switch k {
	case monitor.KindFailureInjected, monitor.KindFailureDetected,
		monitor.KindFailover, monitor.KindPartition, monitor.KindMerge,
		monitor.KindSLOBreach, monitor.KindSLOClear:
		return true
	}
	return false
}

// latencyFromScope converts one tracer scope into the Result row,
// dividing the layer sums into means.
func latencyFromScope(st trace.ScopeStats) LatencyResult {
	lr := LatencyResult{
		Class: st.Class,
		Shard: st.Shard,
		Count: st.Count,
		P50:   st.P50,
		P99:   st.P99,
		P999:  st.P999,
		Max:   st.Max,
		Mean:  st.Mean(),
	}
	if st.Count > 0 {
		n := vtime.Duration(st.Count)
		lr.Queued = st.Layers.Queue / n
		lr.Batched = st.Layers.Batch / n
		lr.Wire = st.Layers.Wire / n
		lr.Replicating = st.Layers.Replicate / n
		lr.Locked = st.Layers.Lock / n
		lr.Other = st.Layers.Other / n
	}
	return lr
}

// depthString renders a per-lane maximum-in-flight map in a
// deterministic order (lanes named "s<idx>" sort by shard index, any
// other lane name lexicographically after them).
func depthString(m map[string]int) string {
	if len(m) == 0 {
		return "-"
	}
	lanes := make([]string, 0, len(m))
	for lane := range m {
		lanes = append(lanes, lane)
	}
	sort.Slice(lanes, func(i, j int) bool {
		a, errA := strconv.Atoi(strings.TrimPrefix(lanes[i], "s"))
		b, errB := strconv.Atoi(strings.TrimPrefix(lanes[j], "s"))
		if errA == nil && errB == nil {
			return a < b
		}
		if (errA == nil) != (errB == nil) {
			return errA == nil
		}
		return lanes[i] < lanes[j]
	})
	var sb strings.Builder
	for i, lane := range lanes {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s:%d", lane, m[lane])
	}
	return sb.String()
}

// result snapshots one group's membership and replication counters.
func (g *Group) result() GroupResult {
	svc := g.svc
	gr := GroupResult{
		Name:         svc.Name(),
		Views:        svc.AgreedViews(),
		Joins:        len(svc.Transfers),
		Bound:        svc.Bound(),
		Quorum:       svc.Quorum(),
		BlockedTime:  svc.TotalBlockedTime(),
		NoQuorumTime: svc.NoQuorumTime(),
		Merges:       len(svc.Merges),
		Flushed:      svc.FlushedMessages(),
	}
	for _, mg := range svc.Merges {
		if mg.Latency > gr.MergeLatency {
			gr.MergeLatency = mg.Latency
		}
	}
	var sum vtime.Duration
	measured := 0
	for _, in := range svc.Installs {
		gr.Installs++
		if in.View.ID == 1 {
			continue // initial view: no change latency
		}
		measured++
		sum += in.Latency
		if in.Latency > gr.MaxViewLatency {
			gr.MaxViewLatency = in.Latency
		}
	}
	if measured > 0 {
		gr.AvgViewLatency = sum / vtime.Duration(measured)
	}
	for _, rep := range g.rep {
		gr.Failovers += len(rep.Failovers)
		gr.LostWork += rep.LostWork
		gr.Flushed += rep.Flushed
	}
	return gr
}

// Task returns the named task's statistics.
func (r Result) Task(name string) (TaskResult, bool) {
	for _, t := range r.Tasks {
		if t.Name == name {
			return t, true
		}
	}
	return TaskResult{}, false
}

// Shard returns the named shard group's record.
func (r Result) Shard(name string) (ShardResult, bool) {
	for _, s := range r.Shards {
		if s.Name == name {
			return s, true
		}
	}
	return ShardResult{}, false
}

// Client returns the shard client record of the given node.
func (r Result) Client(node int) (ClientResult, bool) {
	for _, c := range r.Clients {
		if c.Node == node {
			return c, true
		}
	}
	return ClientResult{}, false
}

// Group returns the named membership group's record.
func (r Result) Group(name string) (GroupResult, bool) {
	for _, g := range r.Groups {
		if g.Name == name {
			return g, true
		}
	}
	return GroupResult{}, false
}

// String renders the result as a compact table.
func (r Result) String() string {
	out := fmt.Sprintf("t=%s activations=%d completions=%d misses=%d rejections=%d violations=%d\n",
		r.Until, r.Stats.Activations, r.Stats.Completions, r.Stats.DeadlineMisses,
		r.Stats.Rejections, len(r.Violations))
	if r.Net.Sent > 0 {
		out += fmt.Sprintf("  net: sent=%d delivered=%d dropped=%d late=%d maxDelay=%s\n",
			r.Net.Sent, r.Net.Delivered, r.Net.Dropped, r.Net.Late, r.Net.MaxDelay)
	}
	if r.LogDropped > 0 {
		out += fmt.Sprintf("  log: %d events dropped (log limit)\n", r.LogDropped)
	}
	for _, t := range r.Tasks {
		out += fmt.Sprintf("  %-16s act=%-5d done=%-5d miss=%-4d avg=%-12s max=%s\n",
			t.Name, t.Activations, t.Completions, t.Misses, t.AvgResponse, t.MaxResponse)
	}
	for _, g := range r.Groups {
		views := ""
		for i, v := range g.Views {
			if i > 0 {
				views += " → "
			}
			views += v.String()
		}
		out += fmt.Sprintf("  group %-10s %s\n", g.Name, views)
		out += fmt.Sprintf("    changes=%d joins=%d installs=%d avgLat=%s maxLat=%s (bound %s) failovers=%d lost=%d\n",
			len(g.Views)-1, g.Joins, g.Installs, g.AvgViewLatency, g.MaxViewLatency, g.Bound, g.Failovers, g.LostWork)
		if g.BlockedTime > 0 || g.NoQuorumTime > 0 || g.Merges > 0 || g.Flushed > 0 {
			out += fmt.Sprintf("    quorum=%d blocked=%s noQuorum=%s merges=%d mergeLat=%s flushed=%d\n",
				g.Quorum, g.BlockedTime, g.NoQuorumTime, g.Merges, g.MergeLatency, g.Flushed)
		}
	}
	for _, s := range r.Shards {
		out += fmt.Sprintf("  shard %-10s nodes=%v primary=n%d req=%-5d served=%-5d redirect=%-4d blocked=%-4d dup=%-4d applied=%d\n",
			s.Name, s.Nodes, s.Primary, s.Requests, s.Served, s.Redirects, s.Blocked, s.Duplicates, s.Applied)
		if t := s.Txn; t.Begins > 0 || t.Prepares > 0 {
			out += fmt.Sprintf("    txn: coord begins=%d commits=%d aborts=%d (deadline=%d); part prepares=%d lockWaits=%d deadlineReleases=%d\n",
				t.Begins, t.Commits, t.Aborts, t.DeadlineAborts, t.Prepares, t.LockWaits, t.DeadlineReleases)
			if t.GroupCommits > 0 {
				out += fmt.Sprintf("    txn: groupCommits=%d maxDecisionBatch=%d\n", t.GroupCommits, t.MaxDecisionBatch)
			}
		}
	}
	for _, c := range r.Clients {
		out += fmt.Sprintf("  client n%-3d sub=%-5d ack=%-5d redirect=%-4d retry=%-4d queued=%-4d resub=%-4d failed=%-4d avgLat=%-12s maxLat=%s\n",
			c.Node, c.Submitted, c.Acked, c.Redirects, c.Retries, c.Queued, c.Resubmitted, c.FailedFast, c.AvgLatency, c.MaxLatency)
		if c.Batches > 0 {
			out += fmt.Sprintf("    batch: flushed=%d maxOps=%d stalls=%d hist=[%s] depth=[%s]\n",
				c.Batches, c.MaxBatchOps, c.Stalls, c.SizeHist, c.Depth)
		}
	}
	for _, t := range r.TxnClients {
		out += fmt.Sprintf("  txn    n%-3d begun=%-4d committed=%-4d aborted=%-4d deadline=%-4d retry=%-4d queued=%-4d resub=%-4d avgLat=%-12s maxLat=%s\n",
			t.Node, t.Begun, t.Committed, t.Aborted, t.DeadlineAborts, t.Retries, t.Queued, t.Resubmitted, t.AvgLatency, t.MaxLatency)
	}
	for _, l := range r.Loads {
		capped := ""
		if l.Capped {
			capped = " (capped)"
		}
		out += fmt.Sprintf("  load %-12s %s/%s sessions=%-5d offered=%-6d acked=%-6d%s\n",
			l.Name, l.Mode, l.Workload, l.Sessions, l.Offered, l.Acked, capped)
		if l.Latency.Count > 0 {
			out += fmt.Sprintf("    lat: p50=%-10s p99=%-10s p999=%-10s max=%-10s mean=%s\n",
				l.Latency.P50, l.Latency.P99, l.Latency.P999, l.Latency.Max, l.Latency.Mean)
		}
	}
	for _, t := range r.PubSub {
		out += fmt.Sprintf("  pubsub %s\n", t)
	}
	for _, l := range r.Latency {
		shard := fmt.Sprintf("s%d", l.Shard)
		if l.Shard < 0 {
			shard = "all"
		}
		out += fmt.Sprintf("  lat %-11s %-4s n=%-5d p50=%-10s p99=%-10s p999=%-10s max=%-10s | queue=%s batch=%s wire=%s repl=%s lock=%s other=%s\n",
			l.Class, shard, l.Count, l.P50, l.P99, l.P999, l.Max,
			l.Queued, l.Batched, l.Wire, l.Replicating, l.Locked, l.Other)
	}
	if m := r.Metrics; m != nil && m.Scrapes > 0 {
		out += fmt.Sprintf("  metrics: %d series, %d scrapes every %s\n",
			len(m.Series), m.Scrapes, vtime.Duration(m.IntervalNs))
		if len(m.TopKeys) > 0 {
			hot := m.TopKeys[0]
			out += fmt.Sprintf("    hottest key %q (shard %d, ~%d touches)\n", hot.Key, hot.Shard, hot.Count)
		}
		for _, rd := range m.SLO {
			out += fmt.Sprintf("    slo %-12s %-32s evals=%-4d breaches=%d\n",
				rd.Name, rd.Expr, rd.Evals, len(rd.Breaches))
		}
	}
	return out
}

// LatencyOf returns the latency record of one op class on one shard
// (pass shard -1 for the all-shards aggregate).
func (r Result) LatencyOf(class string, shard int) (LatencyResult, bool) {
	for _, l := range r.Latency {
		if l.Class == class && l.Shard == shard {
			return l, true
		}
	}
	return LatencyResult{}, false
}

// TxnClient returns the transaction client record of the given node.
func (r Result) TxnClient(node int) (TxnClientResult, bool) {
	for _, c := range r.TxnClients {
		if c.Node == node {
			return c, true
		}
	}
	return TxnClientResult{}, false
}
