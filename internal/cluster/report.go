package cluster

import (
	"hades/internal/report"
)

// Report distills the run into its persisted per-run report: offered
// vs. achieved throughput (with the per-interval series when the
// metrics plane scraped the load counters), latency percentiles per
// op class and shard, per-shard service breakdowns, the load
// generators' accounts, SLO outcomes and the fault timeline. Pure
// observation over data the run already recorded — building a report
// never touches simulation state. Name labels the run; seed is echoed
// into the document so a baseline names its reproduction recipe.
func (r Result) Report(name string, seed int64) *report.Report {
	doc := &report.Report{
		Name:      name,
		Seed:      seed,
		HorizonNs: int64(r.Until),
	}

	// Throughput: the generators' account when load is attached, the
	// clients' otherwise (scenario-scheduled workloads still report).
	if len(r.Loads) > 0 {
		for _, l := range r.Loads {
			doc.Throughput.Offered += l.Offered
			doc.Throughput.Achieved += l.Acked
			doc.Loads = append(doc.Loads, report.LoadStat{
				Name: l.Name, Mode: l.Mode, Workload: l.Workload,
				Sessions: l.Sessions, Offered: l.Offered, Acked: l.Acked,
				P50Ns:  int64(l.Latency.P50),
				P99Ns:  int64(l.Latency.P99),
				P999Ns: int64(l.Latency.P999),
				MaxNs:  int64(l.Latency.Max),
				MeanNs: int64(l.Latency.Mean),
			})
		}
	} else {
		for _, c := range r.Clients {
			doc.Throughput.Offered += int64(c.Submitted)
			doc.Throughput.Achieved += int64(c.Acked)
		}
		for _, t := range r.TxnClients {
			doc.Throughput.Offered += int64(t.Begun)
			doc.Throughput.Achieved += int64(t.Committed + t.Aborted)
		}
	}
	doc.Throughput.Series = throughputSeries(r)

	for _, l := range r.Latency {
		doc.Latency = append(doc.Latency, report.LatencyStat{
			Class:  l.Class,
			Shard:  l.Shard,
			Count:  int64(l.Count),
			P50Ns:  int64(l.P50),
			P99Ns:  int64(l.P99),
			P999Ns: int64(l.P999),
			MaxNs:  int64(l.Max),
			MeanNs: int64(l.Mean),
		})
	}
	for _, s := range r.Shards {
		doc.Shards = append(doc.Shards, report.ShardStat{
			Name: s.Name, Requests: s.Requests, Served: s.Served,
			Redirects: s.Redirects, Blocked: s.Blocked,
			Duplicates: s.Duplicates, Applied: s.Applied,
		})
	}
	if r.Metrics != nil {
		for _, rule := range r.Metrics.SLO {
			o := report.SLOOutcome{Name: rule.Name, Expr: rule.Expr, Evals: rule.Evals}
			for _, b := range rule.Breaches {
				o.Breaches = append(o.Breaches, report.BreachWindow{
					OnsetNs: b.Onset, ClearNs: b.Clear,
					Intervals: b.Intervals, Worst: b.Worst,
				})
			}
			doc.SLO = append(doc.SLO, o)
		}
	}
	for _, ev := range r.Faults {
		doc.Faults = append(doc.Faults, report.FaultEvent{
			AtNs: int64(ev.At), Kind: ev.Kind.String(),
			Subject: ev.Subject, Detail: ev.Detail,
		})
	}
	doc.Finalize()
	return doc
}

// throughputSeries merges every load generator's scraped
// offered/acked counters into one per-interval timeline. Empty when
// no generator is attached or the metrics plane is off.
func throughputSeries(r Result) []report.ThroughputPoint {
	if r.Metrics == nil || len(r.Loads) == 0 {
		return nil
	}
	type cell struct{ offered, acked int64 }
	byT := map[int64]*cell{}
	order := []int64{}
	add := func(name string, offered bool) {
		for _, s := range r.Metrics.Series {
			if s.Name != name {
				continue
			}
			for _, p := range s.Points {
				c := byT[p.T]
				if c == nil {
					c = &cell{}
					byT[p.T] = c
					order = append(order, p.T)
				}
				if offered {
					c.offered += p.V
				} else {
					c.acked += p.V
				}
			}
		}
	}
	for _, l := range r.Loads {
		add("load."+l.Name+".offered", true)
		add("load."+l.Name+".acked", false)
	}
	// Scrape instants arrive in chronological order per series; a
	// second generator only revisits existing instants, so `order` is
	// already sorted — but sort defensively against partial windows.
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			sortInt64s(order)
			break
		}
	}
	out := make([]report.ThroughputPoint, 0, len(order))
	for _, t := range order {
		c := byT[t]
		out = append(out, report.ThroughputPoint{T: t, Offered: c.offered, Achieved: c.acked})
	}
	return out
}

// sortInt64s is a tiny insertion sort (series windows are short and
// almost sorted).
func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// ReportNow builds the report at the current instant: ResultNow
// distilled with the cluster's own seed.
func (c *Cluster) ReportNow(name string) *report.Report {
	return c.ResultNow().Report(name, c.cfg.Seed)
}
