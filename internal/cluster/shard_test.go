package cluster_test

import (
	"fmt"
	"strings"
	"testing"

	"hades/internal/cluster"
	"hades/internal/netsim"
	"hades/internal/shard"
	"hades/internal/vtime"
)

// shardKeys spreads a keyed workload over enough distinct keys that
// both shards of a two-shard ring own part of it.
var shardKeys = []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}

// submitEvery drives one request per interval, round-robin over keys.
func submitEvery(c *cluster.Cluster, cl *shard.Client, every vtime.Duration, from, until vtime.Time) {
	i := 0
	for t := from; t < until; t = t.Add(every) {
		k := shardKeys[i%len(shardKeys)]
		cmd := int64(i + 1)
		i++
		c.At(t, func() { cl.Submit(k, cmd) })
	}
}

// TestShardsHappyPath: a two-shard data plane with no faults serves
// every request at the first primary, spread over both shards, with
// the exactly-once/per-key-order contract intact.
func TestShardsHappyPath(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 11})
	c.AddNodes(5) // 2 shards × 2 replicas + client
	c.ConnectAll(100*us, 300*us)
	set := c.Shards(2, 2)
	cl := set.ClientAt(4)
	submitEvery(c, cl, 2*ms, 0, vtime.Time(100*ms))
	res := c.Run(200 * ms)

	if cl.Stats.Submitted == 0 || cl.Stats.Acked != cl.Stats.Submitted {
		t.Fatalf("acked %d of %d submitted", cl.Stats.Acked, cl.Stats.Submitted)
	}
	if cl.Stats.Retries != 0 || cl.Stats.Queued != 0 {
		t.Fatalf("faultless run needed retries=%d queued=%d", cl.Stats.Retries, cl.Stats.Queued)
	}
	for _, name := range []string{"shard0", "shard1"} {
		sr, ok := res.Shard(name)
		if !ok || sr.Requests == 0 {
			t.Fatalf("shard %s got no requests (keys all hashed to one shard?): %+v", name, res.Shards)
		}
	}
	if err := set.Check(); err != nil {
		t.Fatalf("consistency check: %v", err)
	}
}

// TestShardsCrashFailover: crashing a shard's primary mid-run moves
// ownership via the agreed view; the router republishes, in-flight and
// retried requests redirect to the promoted replica, and every request
// is acked and applied exactly once (retries answered from the
// replicated dedup cache, not re-applied).
func TestShardsCrashFailover(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 13})
	c.AddNodes(7) // 2 shards × 3 replicas + client
	c.ConnectAll(100*us, 300*us)
	set := c.Shards(2, 3)
	cl := set.ClientAt(6)
	submitEvery(c, cl, 2*ms, 0, vtime.Time(200*ms))
	c.Crash(0, vtime.Time(50*ms), 0) // shard0's initial primary, no recovery
	res := c.Run(300 * ms)

	s0, _ := res.Shard("shard0")
	if s0.Primary == 0 {
		t.Fatal("shard0 primary still the crashed node")
	}
	gr, _ := res.Group("shard0")
	if gr.Failovers != 1 {
		t.Fatalf("failovers %d, want 1", gr.Failovers)
	}
	if cl.Stats.Acked != cl.Stats.Submitted {
		t.Fatalf("acked %d of %d across the failover (retries=%d redirects=%d queued=%d)",
			cl.Stats.Acked, cl.Stats.Submitted, cl.Stats.Retries, cl.Stats.Redirects, cl.Stats.Queued)
	}
	if cl.Stats.Retries == 0 && cl.Stats.Redirects == 0 {
		t.Fatal("failover window produced neither retries nor redirects")
	}
	if err := set.Check(); err != nil {
		t.Fatalf("consistency check: %v", err)
	}
}

// TestShardsMinorityClientQueuesAndResubmits is the partition-window
// contract: a client cut off with a minority follower cannot reach the
// quorum-side primary, so its requests time out, park under the queue
// policy, and are resubmitted after the heal/merge — not lost, and
// applied exactly once.
func TestShardsMinorityClientQueuesAndResubmits(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 17})
	c.AddNodes(4) // 1 shard × 3 replicas + client
	c.ConnectAll(100*us, 300*us)
	set := c.Shards(1, 3)
	cl := set.ClientAt(3)
	submitEvery(c, cl, 2*ms, vtime.Time(10*ms), vtime.Time(250*ms))
	// The client is segmented with follower 2; the primary (0) and the
	// quorum stay on the other side.
	c.PartitionAt(vtime.Time(20*ms), []int{2, 3}, []int{0, 1})
	c.HealAt(vtime.Time(150 * ms))
	res := c.Run(400 * ms)

	if cl.Stats.Queued == 0 {
		t.Fatalf("no requests parked during the split window: %+v", cl.Stats)
	}
	if cl.Stats.Resubmitted == 0 {
		t.Fatalf("parked requests never resubmitted after the merge: %+v", cl.Stats)
	}
	if cl.Stats.Acked != cl.Stats.Submitted {
		t.Fatalf("acked %d of %d — split-window requests were lost (%+v)",
			cl.Stats.Acked, cl.Stats.Submitted, cl.Stats)
	}
	gr, _ := res.Group("shard0")
	if gr.Merges != 1 {
		t.Fatalf("merges %d, want 1", gr.Merges)
	}
	if err := set.Check(); err != nil {
		t.Fatalf("consistency check: %v", err)
	}
}

// TestShardsFailFastPolicy: the fail-fast policy abandons requests
// that exhaust their retries inside the split window instead of
// parking them.
func TestShardsFailFastPolicy(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 19})
	c.AddNodes(4)
	c.ConnectAll(100*us, 300*us)
	set := c.Shards(1, 3)
	cl := set.ClientWith(shard.ClientParams{Node: 3, Policy: shard.FailFast, MaxRetries: 2})
	submitEvery(c, cl, 2*ms, vtime.Time(10*ms), vtime.Time(100*ms))
	c.PartitionAt(vtime.Time(20*ms), []int{2, 3}, []int{0, 1})
	c.HealAt(vtime.Time(150 * ms))
	c.Run(400 * ms)

	if cl.Stats.FailedFast == 0 {
		t.Fatalf("fail-fast policy abandoned nothing: %+v", cl.Stats)
	}
	if cl.Stats.Queued != 0 || cl.Stats.Resubmitted != 0 {
		t.Fatalf("fail-fast policy parked requests: %+v", cl.Stats)
	}
	if cl.Stats.Acked+cl.Stats.FailedFast != cl.Stats.Submitted {
		t.Fatalf("acked %d + failed %d != submitted %d", cl.Stats.Acked, cl.Stats.FailedFast, cl.Stats.Submitted)
	}
	if err := set.Check(); err != nil {
		t.Fatalf("consistency check (acked requests only): %v", err)
	}
}

// TestShardsStaleViewRejection pins the fencing caveat: a client
// segmented WITH the ex-primary keeps being served until the detector
// reveals the quorum loss — those acknowledged writes are overwritten
// by the authoritative majority at the merge (the documented
// lease-free window) — after which the stale server rejects with a
// blocked (stale-view) response instead of acking doomed writes.
func TestShardsStaleViewRejection(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 23})
	c.AddNodes(4)
	c.ConnectAll(100*us, 300*us)
	set := c.Shards(1, 3)
	cl := set.ClientAt(3)
	submitEvery(c, cl, 2*ms, 0, vtime.Time(250*ms))
	// The client is segmented with the PRIMARY (0); the majority {1,2}
	// promotes node 1 on its side.
	c.PartitionAt(vtime.Time(20*ms), []int{0, 3}, []int{1, 2})
	c.HealAt(vtime.Time(150 * ms))
	res := c.Run(400 * ms)

	if cl.Stats.Blocked == 0 {
		t.Fatalf("stale ex-primary never rejected with a blocked response: %+v", cl.Stats)
	}
	gr, _ := res.Group("shard0")
	if gr.Failovers != 1 {
		t.Fatalf("majority side failovers %d, want 1", gr.Failovers)
	}
	// The detection window admits doomed acks — Check reports exactly
	// the acknowledged-write-lost violation the fencing caveat allows.
	err := set.Check()
	if err == nil {
		t.Fatal("expected the lease-free window to lose acknowledged writes; Check passed — update the caveat docs")
	}
	if !strings.Contains(err.Error(), "lost") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

// TestShardsDeterministic: the sharded data plane obeys the cluster
// determinism contract — same description, same seed, same ack
// history.
func TestShardsDeterministic(t *testing.T) {
	run := func() string {
		c := cluster.New(cluster.Config{Seed: 29})
		c.AddNodes(7)
		c.ConnectAll(100*us, 300*us)
		set := c.Shards(2, 3)
		cl := set.ClientAt(6)
		submitEvery(c, cl, 2*ms, 0, vtime.Time(150*ms))
		c.Crash(0, vtime.Time(40*ms), vtime.Time(200*ms))
		c.PartitionAt(vtime.Time(100*ms), []int{3}, []int{0, 1, 2, 4, 5, 6})
		c.HealAt(vtime.Time(180 * ms))
		c.Run(300 * ms)
		var b strings.Builder
		for _, a := range cl.Acks {
			fmt.Fprintf(&b, "%s#%d=%d@%s;", a.Key, a.Seq, a.Result, a.At)
		}
		return b.String()
	}
	h1, h2 := run(), run()
	if h1 == "" {
		t.Fatal("no acks recorded")
	}
	if h1 != h2 {
		t.Fatalf("same seed, different ack histories:\n%s\n%s", h1, h2)
	}
}

// TestTwoShardSetsCoexist: two data planes on one cluster need
// distinct names (same-name sets would collide on group and response
// ports — rejected loudly); with distinct names their clients work
// independently, even from the same node.
func TestTwoShardSetsCoexist(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 31})
	c.AddNodes(9) // 2×2 replicas per set + shared client node 8
	c.ConnectAll(100*us, 300*us)
	kv := c.ShardsWith(2, 2, cluster.ShardConfig{Name: "kv"})
	idx := c.ShardsWith(0, 0, cluster.ShardConfig{Name: "idx", Groups: [][]int{{4, 5}, {6, 7}}})

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate set name accepted")
			}
		}()
		c.ShardsWith(2, 2, cluster.ShardConfig{Name: "kv"})
	}()

	ck := kv.ClientAt(8)
	ci := idx.ClientAt(8) // same node, distinct response ports
	submitEvery(c, ck, 2*ms, 0, vtime.Time(60*ms))
	submitEvery(c, ci, 2*ms, vtime.Time(1*ms), vtime.Time(60*ms))
	c.Run(150 * ms)

	for name, cl := range map[string]*shard.Client{"kv": ck, "idx": ci} {
		if cl.Stats.Submitted == 0 || cl.Stats.Acked != cl.Stats.Submitted {
			t.Fatalf("%s client acked %d of %d", name, cl.Stats.Acked, cl.Stats.Submitted)
		}
	}
	if err := kv.Check(); err != nil {
		t.Fatalf("kv: %v", err)
	}
	if err := idx.Check(); err != nil {
		t.Fatalf("idx: %v", err)
	}
}

// TestAuthoritativeNodeSkipsViewExcludedReplica: a replica isolated by
// a partition (never down) has an apply-log hole; the verifier must
// not adopt its log as the authoritative history even when it is
// re-promoted later.
func TestAuthoritativeNodeSkipsViewExcludedReplica(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 37})
	c.AddNodes(4)
	c.ConnectAll(100*us, 300*us)
	set := c.Shards(1, 3)
	cl := set.ClientAt(3)
	submitEvery(c, cl, 2*ms, 0, vtime.Time(250*ms))
	// Isolate the primary (node 0); the majority promotes node 1 and
	// keeps serving; the heal re-admits 0 with a state transfer but
	// cannot backfill its apply log.
	c.PartitionAt(vtime.Time(40*ms), []int{0}, []int{1, 2, 3})
	c.HealAt(vtime.Time(120 * ms))
	c.Run(400 * ms)

	g := set.Groups()[0]
	node, ok := g.AuthoritativeNode()
	if !ok {
		t.Fatal("no hole-free replica")
	}
	if node == 0 {
		t.Fatal("verifier adopted the view-excluded replica's holed log")
	}
	if err := set.Check(); err != nil {
		t.Fatalf("consistency check: %v", err)
	}
}

// slowPort delays every message on one port past the client's retry
// timeout — a deterministic performance fault on the response path.
type slowPort struct {
	port  string
	extra vtime.Duration
}

func (s *slowPort) Judge(m *netsim.Message) netsim.Verdict {
	if m.Port == s.port {
		return netsim.Verdict{Fate: netsim.FateDelay, Extra: s.extra}
	}
	return netsim.Verdict{Fate: netsim.FateDeliver}
}

// TestShardsLateResponsesDoNotBurnBudget: responses slower than the
// retry timeout straddle attempts — the late OK of a superseded
// attempt must still ack the request (the command landed; dedup makes
// the live copy a cache hit), and no request may be abandoned under a
// tight fail-fast budget just because verdicts arrived late.
func TestShardsLateResponsesDoNotBurnBudget(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 41})
	c.AddNodes(3) // 1 shard × 2 replicas + client
	c.ConnectAll(100*us, 300*us)
	set := c.Shards(1, 2)
	// Every response arrives ~2ms after the 5ms timeout fired.
	c.InjectFault(&slowPort{port: "shard.shard.resp", extra: 7 * ms})
	cl := set.ClientWith(shard.ClientParams{Node: 2, Policy: shard.FailFast, MaxRetries: 2})
	submitEvery(c, cl, 10*ms, 0, vtime.Time(100*ms))
	c.Run(300 * ms)

	if cl.Stats.Timeouts == 0 {
		t.Fatalf("delay fault never outran the retry timeout: %+v", cl.Stats)
	}
	if cl.Stats.FailedFast != 0 {
		t.Fatalf("late verdicts burned the retry budget: %+v", cl.Stats)
	}
	if cl.Stats.Acked != cl.Stats.Submitted {
		t.Fatalf("acked %d of %d under delayed responses: %+v", cl.Stats.Acked, cl.Stats.Submitted, cl.Stats)
	}
	if err := set.Check(); err != nil {
		t.Fatalf("consistency check: %v", err)
	}
}

// TestShardsWithExplicitGroupsValidated: the direct cluster API
// rejects the same malformed explicit layouts the JSON path does.
func TestShardsWithExplicitGroupsValidated(t *testing.T) {
	cases := []struct {
		name   string
		groups [][]int
	}{
		{"overlapping groups", [][]int{{0, 1, 2}, {2, 3, 4}}},
		{"single-replica group", [][]int{{0}, {1, 2}}},
		{"node off platform", [][]int{{0, 1}, {2, 9}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := cluster.New(cluster.Config{Seed: 1})
			c.AddNodes(6)
			c.ConnectAll(100*us, 300*us)
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted", tc.name)
				}
			}()
			c.ShardsWith(0, 0, cluster.ShardConfig{Groups: tc.groups})
		})
	}
}
