package cluster

import (
	"fmt"

	"hades/internal/load"
	"hades/internal/shard"
	"hades/internal/txn"
)

// LoadResult is one attached load generator's account in the Result.
type LoadResult struct {
	Name     string
	Mode     string
	Workload string
	Sessions int
	Offered  int64
	Acked    int64
	// Capped reports the generator's MaxOps guard truncated the
	// schedule — the offered count understates the configured load.
	Capped bool
}

// AttachLoad attaches a load generator to this shard set: its
// sessions multiplex round-robin over clients on the given nodes
// (reusing a client already created there, creating one otherwise —
// transaction clients for Txn workloads). The generator lays out its
// workload immediately; its account lands in Result.Loads.
func (s *ShardSet) AttachLoad(cfg load.Config, nodes []int) *load.Generator {
	gen, err := load.New(cfg)
	if err != nil {
		panic(err)
	}
	if len(nodes) == 0 {
		panic(fmt.Sprintf("cluster: load %q needs at least one client node", cfg.Name))
	}
	sinks := load.Sinks{At: s.c.At, Now: s.c.eng.Now, Metrics: s.c.metrics}
	switch cfg.Workload {
	case load.KV:
		clients := make([]*shard.Client, 0, len(nodes))
		pending := make(map[*shard.Client]map[uint64]func())
		for _, n := range nodes {
			cl := s.kvClientFor(n)
			m := make(map[uint64]func())
			pending[cl] = m
			cl.SetOnAck(func(a shard.Ack) {
				if fn, ok := m[a.Seq]; ok {
					delete(m, a.Seq)
					fn()
				}
			})
			clients = append(clients, cl)
		}
		rr := 0
		sinks.SubmitKV = func(key string, cmd int64, done func()) {
			cl := clients[rr%len(clients)]
			rr++
			seq := cl.Submit(key, cmd)
			if done != nil {
				pending[cl][seq] = done
			}
		}
	case load.Txn:
		clients := make([]*txn.Client, 0, len(nodes))
		for _, n := range nodes {
			clients = append(clients, s.txnClientFor(n))
		}
		rr := 0
		sinks.Transfer = func(from, to string, amount int64, done func()) {
			cl := clients[rr%len(clients)]
			rr++
			t := cl.Transfer(from, to, amount)
			if done != nil {
				t.OnDone = func(txn.Record) { done() }
			}
		}
	}
	gen.Start(sinks)
	s.c.loads = append(s.c.loads, gen)
	return gen
}

// kvClientFor returns this set's client on the node, creating one
// with default parameters when the node has none yet.
func (s *ShardSet) kvClientFor(node int) *shard.Client {
	for _, cl := range s.clients {
		if cl.Node() == node {
			return cl
		}
	}
	return s.ClientAt(node)
}

// txnClientFor returns this set's transaction client on the node,
// creating one with default parameters when the node has none yet.
func (s *ShardSet) txnClientFor(node int) *txn.Client {
	for _, cl := range s.TxnPlane().Clients() {
		if cl.Node() == node {
			return cl
		}
	}
	return s.TxnClientAt(node)
}
