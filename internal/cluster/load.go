package cluster

import (
	"fmt"

	"hades/internal/load"
	"hades/internal/pubsub"
	"hades/internal/shard"
	"hades/internal/txn"
)

// LoadResult is one attached load generator's account in the Result.
type LoadResult struct {
	Name     string
	Mode     string
	Workload string
	Sessions int
	Offered  int64
	Acked    int64
	// Capped reports the generator's MaxOps guard truncated the
	// schedule — the offered count understates the configured load.
	Capped bool
	// Latency is the generator's own completion-latency distribution —
	// per-generator attribution, where the trace rows aggregate by op
	// class and shard.
	Latency load.LatencyStats
}

// AttachLoad attaches a load generator to this shard set: its
// sessions multiplex round-robin over clients on the given nodes
// (reusing a client already created there, creating one otherwise —
// transaction clients for Txn workloads). The generator lays out its
// workload immediately; its account lands in Result.Loads.
func (s *ShardSet) AttachLoad(cfg load.Config, nodes []int) *load.Generator {
	gen, err := load.New(cfg)
	if err != nil {
		panic(err)
	}
	if len(nodes) == 0 {
		panic(fmt.Sprintf("cluster: load %q needs at least one client node", cfg.Name))
	}
	sinks := load.Sinks{At: s.c.At, Now: s.c.eng.Now, Metrics: s.c.metrics}
	switch cfg.Workload {
	case load.KV:
		clients := make([]*shard.Client, 0, len(nodes))
		pending := make(map[*shard.Client]map[uint64]func())
		for _, n := range nodes {
			cl := s.kvClientFor(n)
			m := make(map[uint64]func())
			pending[cl] = m
			cl.SetOnAck(func(a shard.Ack) {
				if fn, ok := m[a.Seq]; ok {
					delete(m, a.Seq)
					fn()
				}
			})
			clients = append(clients, cl)
		}
		rr := 0
		sinks.SubmitKV = func(key string, cmd int64, done func()) {
			cl := clients[rr%len(clients)]
			rr++
			seq := cl.Submit(key, cmd)
			if done != nil {
				pending[cl][seq] = done
			}
		}
	case load.Txn:
		clients := make([]*txn.Client, 0, len(nodes))
		for _, n := range nodes {
			clients = append(clients, s.txnClientFor(n))
		}
		rr := 0
		sinks.Transfer = func(from, to string, amount int64, done func()) {
			cl := clients[rr%len(clients)]
			rr++
			t := cl.Transfer(from, to, amount)
			if done != nil {
				t.OnDone = func(txn.Record) { done() }
			}
		}
	case load.Pub:
		// One publisher per (node, topic): the generator's Keys are
		// topic names, and the round-robin rotates the publishing node.
		pubsByTopic := make(map[string][]*pubsub.Publisher, len(cfg.Keys))
		for _, topic := range cfg.Keys {
			for _, n := range nodes {
				pub, err := s.PublisherAt(topic, n)
				if err != nil {
					panic(fmt.Sprintf("cluster: load %q: %v", cfg.Name, err))
				}
				pubsByTopic[topic] = append(pubsByTopic[topic], pub)
			}
		}
		rr := 0
		sinks.Publish = func(topic string, value int64, done func()) {
			pubs := pubsByTopic[topic]
			pub := pubs[rr%len(pubs)]
			rr++
			pub.PublishDone(value, done)
		}
	}
	gen.Start(sinks)
	s.c.loads = append(s.c.loads, gen)
	return gen
}

// kvClientFor returns this set's client on the node, creating one
// with default parameters when the node has none yet.
func (s *ShardSet) kvClientFor(node int) *shard.Client {
	for _, cl := range s.clients {
		if cl.Node() == node {
			return cl
		}
	}
	return s.ClientAt(node)
}

// txnClientFor returns this set's transaction client on the node,
// creating one with default parameters when the node has none yet.
func (s *ShardSet) txnClientFor(node int) *txn.Client {
	for _, cl := range s.TxnPlane().Clients() {
		if cl.Node() == node {
			return cl
		}
	}
	return s.TxnClientAt(node)
}

// AttachLoad attaches a load generator to this membership group's
// first replica group: KV-shaped commands are submitted straight to
// the current primary, and an op completes at its first fresh
// state-machine apply anywhere in the group. Non-sharded scenarios get
// workloads and per-run reports this way; only the kv shape applies (a
// plain replica group has no router, transaction plane or topics).
func (g *Group) AttachLoad(cfg load.Config) *load.Generator {
	if cfg.Workload != load.KV {
		panic(fmt.Sprintf("cluster: group load %q: only the kv workload drives a plain replication group (got %s)",
			cfg.Name, cfg.Workload))
	}
	if len(g.rep) == 0 {
		panic(fmt.Sprintf("cluster: group load %q needs a replica group (call Replicate first)", cfg.Name))
	}
	if len(cfg.Keys) == 0 {
		// Replicated state is keyless here; the generator still wants a
		// keyspace, so synthesize the single command stream.
		cfg.Keys = []string{"cmd"}
	}
	gen, err := load.New(cfg)
	if err != nil {
		panic(err)
	}
	rep := g.rep[0]
	pending := make(map[uint64]func())
	rep.OnApplyHook(func(_ int, reqID uint64, _ int64) {
		if fn, ok := pending[reqID]; ok {
			delete(pending, reqID)
			fn()
		}
	})
	sinks := load.Sinks{At: g.c.At, Now: g.c.eng.Now, Metrics: g.c.metrics}
	sinks.SubmitKV = func(_ string, cmd int64, done func()) {
		id := rep.Submit(rep.Primary(), cmd)
		if done != nil {
			pending[id] = done
		}
	}
	gen.Start(sinks)
	g.c.loads = append(g.c.loads, gen)
	return gen
}
