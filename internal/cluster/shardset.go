package cluster

import (
	"fmt"

	"hades/internal/pubsub"
	"hades/internal/replication"
	"hades/internal/session"
	"hades/internal/shard"
	"hades/internal/txn"
	"hades/internal/vtime"
)

// ShardConfig tunes a sharded data plane declared with ShardsWith.
// The zero value selects semi-active replication, DefaultVNodes ring
// points per shard, consecutive node layout and the replication
// defaults.
type ShardConfig struct {
	// Name prefixes the shard group names ("shard" → shard0, shard1…).
	Name string
	// Groups pins the replica node sets explicitly (promotion order =
	// declaration order); empty selects consecutive layout.
	Groups [][]int
	// Style selects the replication protocol (default SemiActive; the
	// client layer's exactly-once verification requires it).
	Style replication.Style
	// VNodes is the ring's virtual-node count per shard.
	VNodes int
	// Routes pins keys to shard indices, bypassing the hash.
	Routes map[string]int
	// WExec, CheckpointEvery and StorageLatency configure the replicas
	// (zero selects 100 µs, the replication default, and 20 µs).
	WExec           vtime.Duration
	CheckpointEvery int
	StorageLatency  vtime.Duration
	// Session sets the default throughput knobs of clients created on
	// this set (op batching per shard, pipelined in-flight batches);
	// a client's own non-zero ClientParams.Session wins. The zero value
	// is the unbatched, unpipelined legacy discipline.
	Session session.Params
	// GroupCommit batches the transaction coordinators' decision log:
	// one replicated round carries many COMMIT/ABORT records. The zero
	// value logs each decision in its own round.
	GroupCommit session.Params
}

// ShardSet is a sharded data plane on the cluster: N replication
// groups (each a view-synchronous membership group carrying a
// replicated state machine) behind a consistent-hash router, plus the
// clients created with ClientAt. Its statistics are rolled into the
// cluster Result.
type ShardSet struct {
	c           *Cluster
	name        string
	respPort    string
	router      *shard.Router
	shards      []*shard.Group
	clients     []*shard.Client
	clientNodes map[int]bool
	txnPlane    *txn.Plane
	pubsub      *pubsub.Plane
	session     session.Params
	groupCommit session.Params
}

// Shards declares a sharded data plane of n replication groups with
// replicasPer replicas each, laid out over consecutive nodes (shard i
// owns nodes [i·replicasPer, (i+1)·replicasPer)), semi-active style.
// It finalizes the platform and needs a network. Submit keyed
// requests through ClientAt.
func (c *Cluster) Shards(n, replicasPer int) *ShardSet {
	return c.ShardsWith(n, replicasPer, ShardConfig{})
}

// ShardsWith is Shards with explicit configuration; cfg.Groups
// overrides the consecutive layout (n and replicasPer are then
// ignored).
func (c *Cluster) ShardsWith(n, replicasPer int, cfg ShardConfig) *ShardSet {
	c.build()
	if c.net == nil {
		panic("cluster: Shards needs a network (declare links or multiple nodes)")
	}
	if cfg.Name == "" {
		cfg.Name = "shard"
	}
	// Coexisting data planes need distinct names: the name scopes the
	// shard group names (hence their membership/request ports) and the
	// set's response port.
	for _, prev := range c.shardSets {
		if prev.name == cfg.Name {
			panic(fmt.Sprintf("cluster: shard set %q already exists (give coexisting sets distinct Names)", cfg.Name))
		}
	}
	if cfg.Style == 0 {
		cfg.Style = replication.SemiActive
	}
	groups := cfg.Groups
	if len(groups) == 0 {
		if n < 1 {
			panic(fmt.Sprintf("cluster: Shards(%d, %d): need at least 1 shard", n, replicasPer))
		}
		if replicasPer < 2 {
			panic(fmt.Sprintf("cluster: Shards(%d, %d): need at least 2 replicas per shard", n, replicasPer))
		}
		if n*replicasPer > len(c.nodes) {
			panic(fmt.Sprintf("cluster: Shards(%d, %d) needs %d nodes, have %d", n, replicasPer, n*replicasPer, len(c.nodes)))
		}
		for i := 0; i < n; i++ {
			var set []int
			for r := 0; r < replicasPer; r++ {
				set = append(set, i*replicasPer+r)
			}
			groups = append(groups, set)
		}
	} else {
		// Explicit layouts get the same loud validation the scenario
		// layer gives the JSON path: disjoint, in-range, replicated.
		owner := make(map[int]int)
		for i, g := range groups {
			if len(g) < 2 {
				panic(fmt.Sprintf("cluster: shard group %d needs at least 2 replicas (got %d)", i, len(g)))
			}
			for _, node := range g {
				if node < 0 || node >= len(c.nodes) {
					panic(fmt.Sprintf("cluster: shard group %d names unknown node %d (have %d)", i, node, len(c.nodes)))
				}
				if prev, dup := owner[node]; dup {
					panic(fmt.Sprintf("cluster: node %d is a replica of shard groups %d and %d (overlapping group membership)", node, prev, i))
				}
				owner[node] = i
			}
		}
	}
	wexec := cfg.WExec
	if wexec <= 0 {
		wexec = 100 * vtime.Microsecond
	}
	storeLat := cfg.StorageLatency
	if storeLat <= 0 {
		storeLat = 20 * vtime.Microsecond
	}
	respPort := "shard." + cfg.Name + ".resp"
	ring := shard.NewRing(len(groups), cfg.VNodes)
	sgroups := make([]*shard.Group, 0, len(groups))
	for i, nodes := range groups {
		name := fmt.Sprintf("%s%d", cfg.Name, i)
		mg := c.Group(name, nodes...)
		sg, err := shard.NewGroup(c.eng, c.net, mg.svc, shard.GroupConfig{
			Name:     name,
			Index:    i,
			RespPort: respPort,
			Replication: replication.Config{
				Name:            name,
				Replicas:        nodes,
				Style:           cfg.Style,
				WExec:           wexec,
				CheckpointEvery: cfg.CheckpointEvery,
				StorageLatency:  storeLat,
			},
		})
		if err != nil {
			panic(err)
		}
		mg.rep = append(mg.rep, sg.Replication())
		sgroups = append(sgroups, sg)
	}
	router, err := shard.NewRouter(c.eng, ring, sgroups, cfg.Routes)
	if err != nil {
		panic(err)
	}
	set := &ShardSet{c: c, name: cfg.Name, respPort: respPort, router: router,
		shards: sgroups, clientNodes: make(map[int]bool),
		session: cfg.Session, groupCommit: cfg.GroupCommit}
	c.shardSets = append(c.shardSets, set)
	return set
}

// Name returns the set's name prefix.
func (s *ShardSet) Name() string { return s.name }

// ShardSets returns the cluster's sharded data planes, creation order.
func (c *Cluster) ShardSets() []*ShardSet { return c.shardSets }

// Router returns the set's key → shard → primary resolver.
func (s *ShardSet) Router() *shard.Router { return s.router }

// Groups returns the shard groups, ring-index order.
func (s *ShardSet) Groups() []*shard.Group { return append([]*shard.Group(nil), s.shards...) }

// Clients returns the clients created with ClientAt, creation order.
func (s *ShardSet) Clients() []*shard.Client { return append([]*shard.Client(nil), s.clients...) }

// ClientAt creates a request client on the given node with default
// retry parameters and the queue-on-failure policy.
func (s *ShardSet) ClientAt(node int) *shard.Client {
	return s.ClientWith(shard.ClientParams{Node: node})
}

// ClientWith creates a request client with explicit parameters. One
// client per node; clients may not be co-located with shard replicas
// (a split would then cut the client's own shard in two ways at once
// and the response port would collide with serving duties).
func (s *ShardSet) ClientWith(p shard.ClientParams) *shard.Client {
	if p.Session == (session.Params{}) {
		p.Session = s.session // set-level default; explicit knobs win
	}
	if p.Node < 0 || p.Node >= len(s.c.nodes) {
		panic(fmt.Sprintf("cluster: shard client on unknown node %d", p.Node))
	}
	if s.clientNodes[p.Node] {
		panic(fmt.Sprintf("cluster: node %d already has a shard client", p.Node))
	}
	for _, g := range s.shards {
		for _, n := range g.Nodes() {
			if n == p.Node {
				panic(fmt.Sprintf("cluster: shard client on node %d collides with replica of %q", p.Node, g.Name()))
			}
		}
	}
	p.RespPort = s.respPort
	cl := shard.NewClient(s.c.eng, s.c.net, s.router, p)
	s.clientNodes[p.Node] = true
	s.clients = append(s.clients, cl)
	return cl
}

// Check verifies the safety contract of the run so far: every
// acknowledged request applied exactly once in the owning shard's
// authoritative history, in per-key submission order (see
// shard.Verify).
func (s *ShardSet) Check() error { return shard.Verify(s.router, s.clients) }

// TxnPlane returns the set's transaction layer (coordinator and
// participant roles on every shard group), creating it on first use.
func (s *ShardSet) TxnPlane() *txn.Plane {
	if s.txnPlane == nil {
		s.txnPlane = txn.NewPlane(s.c.eng, s.c.net, s.router, s.name)
		s.txnPlane.SetGroupCommit(s.groupCommit)
	}
	return s.txnPlane
}

// TxnClientAt creates a transaction client on the given node with
// default retry parameters and deadline.
func (s *ShardSet) TxnClientAt(node int) *txn.Client {
	return s.TxnClientWith(txn.ClientParams{Node: node})
}

// TxnClientWith creates a transaction client with explicit parameters.
// Like request clients, transaction clients get a node of their own:
// co-locating one with a replica or another client of this set would
// collide on serving duties and dedup-tag spaces.
func (s *ShardSet) TxnClientWith(p txn.ClientParams) *txn.Client {
	if p.Node < 0 || p.Node >= len(s.c.nodes) {
		panic(fmt.Sprintf("cluster: txn client on unknown node %d", p.Node))
	}
	if s.clientNodes[p.Node] {
		panic(fmt.Sprintf("cluster: node %d already has a client of shard set %q", p.Node, s.name))
	}
	for _, g := range s.shards {
		for _, n := range g.Nodes() {
			if n == p.Node {
				panic(fmt.Sprintf("cluster: txn client on node %d collides with replica of %q", p.Node, g.Name()))
			}
		}
	}
	cl := txn.NewClient(s.TxnPlane(), p)
	s.clientNodes[p.Node] = true
	return cl
}

// CheckTxns verifies the atomic-commitment contract of the run so
// far: committed transactions all-or-nothing across shards, aborted
// ones leaving no partial writes, no lock held past its deadline (see
// txn.Verify). A set without transactions passes vacuously.
func (s *ShardSet) CheckTxns() error {
	if s.txnPlane == nil {
		return nil
	}
	return txn.Verify(s.txnPlane)
}
