// Package rbcast implements the time-bounded reliable broadcast and
// multicast primitives of §2.2.1 ("time-bounded reliable communication
// primitives ... Rel. Bcast and Rel. Mcast" in Figure 1).
//
// The algorithm is synchronous flooding: the origin sends in round 0;
// every process that first receives a message in round r < f+1 relays it
// in round r+1; every process delivers at the fixed instant T0 +
// (f+1)·R, where R (the round length) exceeds the worst-case link delay
// plus receive-path processing. With at most f processes suffering send
// omissions, this guarantees:
//
//	validity   — a correct origin's message is delivered by all correct
//	             processes;
//	agreement  — if any correct process delivers m, all correct
//	             processes deliver m;
//	integrity  — m is delivered at most once, only if broadcast;
//	timeliness — delivery happens exactly Δ = (f+1)·R after initiation,
//	             the "time-bounded" half of the service contract.
//
// Delivery at a *fixed* instant (rather than on receipt) is what makes
// the primitive composable with scheduling analysis: the bound Δ enters
// a feasibility test as a constant. The same fixed-instant discipline
// yields virtual-synchronous flushing for free: SetEpoch marks a view
// boundary, and a copy whose epoch tag is stale at its delivery instant
// is discarded identically at every member (delivered-or-discarded
// consistently — see Service.SetEpoch).
package rbcast

import (
	"hades/internal/eventq"
	"hades/internal/metrics"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// Config parameterises the primitive.
type Config struct {
	// Group lists the participating processor IDs.
	Group []int
	// F is the number of omission-faulty processes tolerated.
	F int
	// Round is the round length R; it must exceed the worst-case link
	// delay plus the receive path cost.
	Round vtime.Duration
	// WProc is the per-message processing cost charged on relays.
	WProc vtime.Duration
}

// DefaultConfig sizes the round length from the network's delay bounds.
func DefaultConfig(net *netsim.Network, group []int, f int) Config {
	var dmax vtime.Duration
	for _, a := range group {
		for _, b := range group {
			if a == b {
				continue
			}
			if d, ok := net.DelayBound(a, b); ok && d > dmax {
				dmax = d
			}
		}
	}
	return Config{
		Group: group,
		F:     f,
		Round: dmax + net.WorstCaseReceivePath() + 50*vtime.Microsecond,
		WProc: 10 * vtime.Microsecond,
	}
}

// Delivery is one delivered message at one process.
type Delivery struct {
	Origin  int
	Seq     uint64
	Payload any
	// At is the delivery instant; Latency is At minus the broadcast
	// initiation.
	At      vtime.Time
	Latency vtime.Duration
}

// Service is a reliable-broadcast endpoint set over one group.
type Service struct {
	eng *simkern.Engine
	net *netsim.Network
	cfg Config

	nextSeq   uint64
	seen      map[copyKey]bool // per-node first-seen marker
	handlers  map[int]func(Delivery)
	port      string
	delivered map[msgID][]int // message → nodes that delivered

	// mFanout counts flood copies put on the wire (the dissemination
	// cost signal); nil-safe when metrics are off.
	mFanout *metrics.Counter

	// epoch implements virtual-synchronous flushing at view boundaries:
	// broadcasts are tagged with the epoch current at initiation, and a
	// copy whose tag is stale at its (fixed) delivery instant is
	// discarded instead of delivered. Because every copy of a message
	// delivers at the same instant everywhere and epochs advance at
	// that same granularity, the deliver-or-discard decision is
	// identical at every member — no process acts on a pre-boundary
	// message that others flushed.
	epoch        uint64
	epochMembers map[int]bool

	// Deliveries records every delivery for verification; Flushed
	// counts copies discarded by the epoch boundary.
	Deliveries []Delivery
	Flushed    int
}

type flood struct {
	Origin  int
	Seq     uint64
	Epoch   uint64
	Payload any
	Round   int
	SentAt  vtime.Time
}

// msgID identifies one broadcast; copyKey one node's copy of it. Both
// are comparable structs rather than formatted strings: the seen-set
// lookup runs once per hop on the flooding hot path, and a struct key
// avoids the per-hop fmt.Sprintf allocation (see bench_test.go).
type msgID struct {
	origin int
	seq    uint64
}

type copyKey struct {
	msgID
	node int
}

// New creates a reliable broadcast service over the group. Distinct
// services must use distinct names (the name scopes the netsim port).
func New(eng *simkern.Engine, net *netsim.Network, name string, cfg Config) *Service {
	s := &Service{
		eng:       eng,
		net:       net,
		cfg:       cfg,
		seen:      make(map[copyKey]bool),
		handlers:  make(map[int]func(Delivery)),
		delivered: make(map[msgID][]int),
		port:      "rbcast." + name,
		mFanout:   eng.Metrics().Counter("rbcast.fanout"),
	}
	for _, n := range cfg.Group {
		node := n
		net.Bind(node, s.port, func(m *netsim.Message) { s.receive(node, m) })
	}
	return s
}

// OnDeliver installs a node's delivery handler.
func (s *Service) OnDeliver(node int, h func(Delivery)) { s.handlers[node] = h }

// SetEpoch advances the flushing epoch (a view boundary): broadcasts
// initiated from now on carry the new epoch, and pending copies tagged
// with an older epoch are discarded at their delivery instant rather
// than delivered. members, when non-nil, additionally restricts
// delivery to the given nodes (the new view's member set). Epoch 0
// (the default) disables flushing entirely.
func (s *Service) SetEpoch(epoch uint64, members []int) {
	s.epoch = epoch
	if members == nil {
		s.epochMembers = nil
		return
	}
	s.epochMembers = make(map[int]bool, len(members))
	for _, m := range members {
		s.epochMembers[m] = true
	}
}

// Epoch returns the current flushing epoch (0 = flushing disabled).
func (s *Service) Epoch() uint64 { return s.epoch }

// Delta returns the delivery bound Δ = (f+1)·R.
func (s *Service) Delta() vtime.Duration {
	return vtime.Duration(s.cfg.F+1) * s.cfg.Round
}

// Broadcast initiates a reliable broadcast from origin. It returns the
// message sequence number and the guaranteed delivery instant.
func (s *Service) Broadcast(origin int, payload any) (uint64, vtime.Time) {
	s.nextSeq++
	seq := s.nextSeq
	now := s.eng.Now()
	deliverAt := now.Add(s.Delta())
	f := flood{Origin: origin, Seq: seq, Epoch: s.epoch, Payload: payload, Round: 0, SentAt: now}
	s.accept(origin, f, deliverAt)
	s.relay(origin, f)
	return seq, deliverAt
}

// receive processes a flooded copy at node.
func (s *Service) receive(node int, m *netsim.Message) {
	if s.net.NodeDown(node) {
		return
	}
	f, ok := m.Payload.(flood)
	if !ok {
		return
	}
	if s.cfg.WProc > 0 {
		s.eng.Processors()[node].RaiseIRQ("rbcast", s.cfg.WProc, nil)
	}
	deliverAt := f.SentAt.Add(s.Delta())
	if !s.accept(node, f, deliverAt) {
		return // duplicate
	}
	if f.Round+1 <= s.cfg.F {
		next := f
		next.Round = f.Round + 1
		s.relay(node, next)
	}
}

// accept schedules delivery for a first-seen copy; returns false on
// duplicates (integrity).
func (s *Service) accept(node int, f flood, deliverAt vtime.Time) bool {
	k := copyKey{msgID: msgID{origin: f.Origin, seq: f.Seq}, node: node}
	if s.seen[k] {
		return false
	}
	s.seen[k] = true
	s.eng.At(deliverAt, eventq.ClassApp, func() {
		if s.net.NodeDown(node) {
			return
		}
		if f.Epoch != 0 && (f.Epoch < s.epoch || (s.epochMembers != nil && !s.epochMembers[node])) {
			// Virtual-synchrony flush: the view boundary passed (or the
			// node left the view) before this copy's delivery instant.
			s.Flushed++
			if log := s.eng.Log(); log != nil {
				log.Recordf(deliverAt, monitor.KindFlush, node, s.port, "origin=n%d seq=%d epoch=%d<%d", f.Origin, f.Seq, f.Epoch, s.epoch)
			}
			return
		}
		d := Delivery{
			Origin:  f.Origin,
			Seq:     f.Seq,
			Payload: f.Payload,
			At:      deliverAt,
			Latency: deliverAt.Sub(f.SentAt),
		}
		s.Deliveries = append(s.Deliveries, d)
		dk := msgID{origin: f.Origin, seq: f.Seq}
		s.delivered[dk] = append(s.delivered[dk], node)
		if log := s.eng.Log(); log != nil {
			log.Recordf(deliverAt, monitor.KindDelivery, node, s.port, "origin=n%d seq=%d", f.Origin, f.Seq)
		}
		if h := s.handlers[node]; h != nil {
			h(d)
		}
	})
	return true
}

// relay floods a copy to every other group member.
func (s *Service) relay(from int, f flood) {
	for _, dst := range s.cfg.Group {
		if dst == from {
			continue
		}
		if _, err := s.net.Send(from, dst, s.port, f, 32); err != nil {
			continue // unconnected: counts as omission, tolerated up to f
		}
		s.mFanout.Inc()
	}
}

// DeliveredAt returns the nodes that actually delivered (origin, seq),
// for agreement checking.
func (s *Service) DeliveredAt(origin int, seq uint64) []int {
	nodes := s.delivered[msgID{origin: origin, seq: seq}]
	out := make([]int, len(nodes))
	copy(out, nodes)
	return out
}
