package rbcast

import (
	"testing"
	"testing/quick"

	"hades/internal/fault"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

const us = vtime.Microsecond

func rig(t *testing.T, n, f int) (*simkern.Engine, *netsim.Network, *Service) {
	t.Helper()
	eng := simkern.NewEngine(monitor.NewLog(0), 23)
	group := make([]int, n)
	for i := 0; i < n; i++ {
		eng.AddProcessor("n", 0)
		group[i] = i
	}
	net := netsim.New(eng, netsim.Config{WAtm: 10 * us, WProto: 10 * us, PrioNet: simkern.PrioMax - 2})
	net.ConnectAll(group, 50*us, 150*us)
	svc := New(eng, net, "test", DefaultConfig(net, group, f))
	return eng, net, svc
}

func TestValidityAllCorrect(t *testing.T) {
	eng, _, svc := rig(t, 5, 1)
	delivered := map[int]bool{}
	for i := 0; i < 5; i++ {
		node := i
		svc.OnDeliver(node, func(Delivery) { delivered[node] = true })
	}
	_, at := svc.Broadcast(0, "msg")
	eng.RunUntilIdle()
	if len(delivered) != 5 {
		t.Fatalf("delivered to %d/5", len(delivered))
	}
	if eng.Now() < at {
		t.Fatal("engine stopped before delivery instant")
	}
}

func TestTimelinessFixedInstant(t *testing.T) {
	eng, _, svc := rig(t, 5, 2)
	var times []vtime.Time
	for i := 0; i < 5; i++ {
		svc.OnDeliver(i, func(d Delivery) { times = append(times, d.At) })
	}
	seq, promised := svc.Broadcast(2, 99)
	eng.RunUntilIdle()
	if len(times) != 5 {
		t.Fatalf("deliveries %d", len(times))
	}
	for _, at := range times {
		if at != promised {
			t.Fatalf("delivery at %s, promised %s (timeliness broken)", at, promised)
		}
	}
	if d := svc.Delta(); promised != vtime.Time(d) {
		t.Fatalf("promised %s != Delta %s from t=0", promised, d)
	}
	if got := svc.DeliveredAt(2, seq); len(got) != 5 {
		t.Fatalf("DeliveredAt = %v", got)
	}
}

func TestAgreementUnderSendOmission(t *testing.T) {
	// Node 0 broadcasts but is send-omission faulty for a subset of
	// destinations: with f=1 tolerated and exactly 1 faulty process,
	// agreement must hold (all correct deliver or none).
	eng, net, svc := rig(t, 5, 1)
	// Drop 0's direct sends to nodes 2,3,4 — relays must cover.
	net.SetFault(&selectiveDrop{from: 0, except: map[int]bool{1: true}})
	delivered := map[int]bool{}
	for i := 0; i < 5; i++ {
		node := i
		svc.OnDeliver(node, func(Delivery) { delivered[node] = true })
	}
	svc.Broadcast(0, "x")
	eng.RunUntilIdle()
	// Node 1 got it in round 0 and relays in round 1 to everyone.
	if len(delivered) != 5 {
		t.Fatalf("agreement broken: %d/5 delivered", len(delivered))
	}
}

type selectiveDrop struct {
	from   int
	except map[int]bool
}

func (s *selectiveDrop) Judge(m *netsim.Message) netsim.Verdict {
	if m.From == s.from && !s.except[m.To] {
		return netsim.Verdict{Fate: netsim.FateDrop}
	}
	return netsim.Verdict{Fate: netsim.FateDeliver}
}

func TestIntegrityNoDuplicates(t *testing.T) {
	eng, _, svc := rig(t, 4, 2)
	count := map[int]int{}
	for i := 0; i < 4; i++ {
		node := i
		svc.OnDeliver(node, func(Delivery) { count[node]++ })
	}
	svc.Broadcast(0, "once")
	eng.RunUntilIdle()
	for node, c := range count {
		if c != 1 {
			t.Fatalf("node %d delivered %d times", node, c)
		}
	}
}

func TestLatencyGrowsLinearlyWithF(t *testing.T) {
	var prev vtime.Duration
	for f := 0; f <= 3; f++ {
		_, _, svc := rig(t, 7, f)
		d := svc.Delta()
		if f > 0 && d <= prev {
			t.Fatalf("Delta(f=%d)=%s not above Delta(f=%d)=%s", f, d, f-1, prev)
		}
		if d != vtime.Duration(f+1)*svc.cfg.Round {
			t.Fatalf("Delta = %s, want (f+1)*R", d)
		}
		prev = d
	}
}

// Property: agreement holds for any subset of ≤ f omission-faulty
// senders (f=1, n=5: any single faulty process).
func TestAgreementPropertyRandomFaultyProcess(t *testing.T) {
	f := func(faulty uint8, origin uint8) bool {
		fNode := int(faulty) % 5
		oNode := int(origin) % 5
		eng, net, svc := rig(t, 5, 1)
		net.SetFault(&fault.OmissionFrom{Nodes: map[int]bool{fNode: true}, Port: "rbcast.test"})
		delivered := map[int]bool{}
		for i := 0; i < 5; i++ {
			node := i
			svc.OnDeliver(node, func(Delivery) { delivered[node] = true })
		}
		svc.Broadcast(oNode, "p")
		eng.RunUntilIdle()
		// Count correct nodes that delivered (the faulty one may or
		// may not; it still receives from others — only its sends are
		// broken, so it should deliver too unless it is the origin).
		correct := 0
		for i := 0; i < 5; i++ {
			if i != fNode && delivered[i] {
				correct++
			}
		}
		if fNode == oNode {
			// Faulty origin: all-or-nothing among correct nodes.
			return correct == 0 || correct == 4
		}
		// Correct origin: validity demands all correct deliver.
		return correct == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEpochFlushDiscardsStaleCopies: a copy broadcast in epoch 1 whose
// delivery instant falls after the boundary to epoch 2 is discarded at
// every member — the delivered-or-discarded half of virtual synchrony.
func TestEpochFlushDiscardsStaleCopies(t *testing.T) {
	eng, _, svc := rig(t, 4, 1)
	delivered := map[int]int{}
	for i := 0; i < 4; i++ {
		node := i
		svc.OnDeliver(node, func(Delivery) { delivered[node]++ })
	}
	svc.SetEpoch(1, []int{0, 1, 2, 3})
	svc.Broadcast(0, "old-view")
	// Advance the epoch before the fixed delivery instant: the pending
	// copies must be flushed, identically everywhere.
	svc.SetEpoch(2, []int{0, 1, 2, 3})
	eng.RunUntilIdle()
	if len(delivered) != 0 {
		t.Fatalf("stale-epoch copies delivered at %v", delivered)
	}
	if svc.Flushed != 4 {
		t.Fatalf("flushed %d copies, want 4", svc.Flushed)
	}
	// Current-epoch traffic flows normally.
	svc.Broadcast(0, "new-view")
	eng.RunUntilIdle()
	if len(delivered) != 4 {
		t.Fatalf("current-epoch delivery reached %d/4", len(delivered))
	}
}

// TestEpochMemberRestriction: a member dropped from the epoch's view
// does not deliver even current-epoch traffic; a zero epoch (the
// default) disables flushing entirely.
func TestEpochMemberRestriction(t *testing.T) {
	eng, _, svc := rig(t, 4, 1)
	delivered := map[int]int{}
	for i := 0; i < 4; i++ {
		node := i
		svc.OnDeliver(node, func(Delivery) { delivered[node]++ })
	}
	svc.SetEpoch(2, []int{0, 1, 2}) // node 3 left the view
	svc.Broadcast(0, "x")
	eng.RunUntilIdle()
	if delivered[3] != 0 {
		t.Fatal("ex-member delivered a view-scoped message")
	}
	if delivered[0] != 1 || delivered[1] != 1 || delivered[2] != 1 {
		t.Fatalf("members missed delivery: %v", delivered)
	}
	if svc.Epoch() != 2 {
		t.Fatalf("epoch %d, want 2", svc.Epoch())
	}
}
