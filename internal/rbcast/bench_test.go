package rbcast

import (
	"fmt"
	"testing"

	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// legacyStringKey is the pre-optimisation key: a formatted string built
// once per hop on the flooding hot path. Kept here only so the
// benchmarks can show what the comparable-struct key buys.
func legacyStringKey(origin int, seq uint64, node int) string {
	return fmt.Sprintf("%d/%d@%d", origin, seq, node)
}

// BenchmarkSeenKeyStruct measures the seen-set bookkeeping with the
// comparable struct key (the current implementation).
func BenchmarkSeenKeyStruct(b *testing.B) {
	seen := make(map[copyKey]bool, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := copyKey{msgID: msgID{origin: i % 8, seq: uint64(i)}, node: (i + 1) % 8}
		if !seen[k] {
			seen[k] = true
		}
		if len(seen) >= 4096 {
			seen = make(map[copyKey]bool, 4096)
		}
	}
}

// BenchmarkSeenKeyString measures the same bookkeeping with the legacy
// fmt.Sprintf string key, for comparison.
func BenchmarkSeenKeyString(b *testing.B) {
	seen := make(map[string]bool, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := legacyStringKey(i%8, uint64(i), (i+1)%8)
		if !seen[k] {
			seen[k] = true
		}
		if len(seen) >= 4096 {
			seen = make(map[string]bool, 4096)
		}
	}
}

// BenchmarkBroadcastFlood runs full broadcasts through the engine —
// the end-to-end cost of the flooding path, where the seen-set lookup
// runs once per (message, node) hop.
func BenchmarkBroadcastFlood(b *testing.B) {
	const us = vtime.Microsecond
	eng := simkern.NewEngine(monitor.NewLog(1), 7)
	group := make([]int, 6)
	for i := range group {
		eng.AddProcessor("n", 0)
		group[i] = i
	}
	net := netsim.New(eng, netsim.Config{})
	net.ConnectAll(group, 20*us, 60*us)
	svc := New(eng, net, "bench", DefaultConfig(net, group, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.Broadcast(group[i%len(group)], int64(i))
		eng.RunUntilIdle()
	}
}
