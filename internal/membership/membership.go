// Package membership implements a view-synchronous group membership
// service — the middleware layer §2.2 of the paper presupposes between
// failure detection and the fault-tolerance services: replication
// failover is only predictable if every replica agrees on *who is in
// the group*, not just on its own detector's suspicions.
//
// The service turns local heartbeat suspicions into agreed, totally
// ordered views:
//
//   - View / Install reproduce the membership abstraction of §2.2.1:
//     a view is an agreed member set with a sequence number; installs
//     are the per-node adoption events.
//   - Suspicion → view change: a fault.Detector (§2.2.1 failure
//     detection) suspicion of a member triggers one consensus round
//     (internal/consensus, the §2.2.1 consensus service) among the
//     current members; each live member proposes its local estimate of
//     the membership, encoded as a bitmask, and the agreed decision
//     defines view v+1.
//   - Dissemination: the decided view is spread with the time-bounded
//     reliable broadcast (internal/rbcast, §2.2.1 Rel. Bcast), so all
//     live members install it at the *same* fixed instant — the
//     view-synchrony property replication failover relies on.
//   - Bound() composes the three service bounds into the provable
//     view-change bound: detector timeout (+ one check period) +
//     consensus decision bound (f+1)·Rc + broadcast delivery bound
//     Δ = (f+1)·Rb. Every uncontended install observes a latency at
//     most Bound() from the crash instant (§2.2's "time-bounded"
//     contract, so the bound can enter a feasibility test).
//   - Rejoin: a crashed node that recovers resumes heartbeating; the
//     detector rehabilitates it at each live observer, which triggers
//     a join view change. After the join view installs, the service
//     runs a state transfer from a live donor to the joiner for every
//     registered state provider (replication registers its replicated
//     state machine backed by internal/storage stable checkpoints).
//   - Primary partition: under a network partition only the side
//     holding a strict majority quorum of the previous view may decide
//     and install the next view; minority sides block — no view, so no
//     promotion — until the partition heals, at which point the
//     majority re-admits the minority through a merge view driven by
//     the ordinary rehabilitation→join path (including state
//     transfer). The quorum denominator is the previous view's members
//     that are not known-crashed: the simulation's perfect crash
//     detector lets plain crash churn keep its availability (any set
//     of survivors proceeds), while partitioned-but-alive members
//     always count, so no side of a split can outvote the other.
//   - Virtual synchrony: each agreed view advances the broadcast
//     flushing epoch (rbcast.SetEpoch), so copies initiated in the old
//     view but pending past the boundary are discarded identically at
//     every member instead of delivered into the new view.
//
// All decisions are functions of the deterministic engine: identical
// scenario + seed ⇒ identical view history at every node.
package membership

import (
	"fmt"
	"sort"

	"hades/internal/consensus"
	"hades/internal/eventq"
	"hades/internal/fault"
	"hades/internal/metrics"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/rbcast"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// Config parameterises one membership group.
type Config struct {
	// Name scopes the group's network ports; distinct groups need
	// distinct names.
	Name string
	// Nodes is the universe of potential members (node ids must be in
	// [0, 62]: views are encoded as int64 bitmasks for consensus).
	Nodes []int
	// F is the number of crash/omission failures tolerated per
	// agreement round; 0 selects 1.
	F int
	// Detector configures the heartbeat detector; a zero Period
	// selects fault.DefaultDetectorConfig over Nodes.
	Detector fault.DetectorConfig
	// ConsensusRound overrides the consensus round length (0 = sized
	// from the network delay bounds).
	ConsensusRound vtime.Duration
	// RbcastRound overrides the broadcast round length (0 = sized from
	// the network delay bounds).
	RbcastRound vtime.Duration
	// WProc is the per-message processing cost charged on members.
	WProc vtime.Duration
	// TransferBytes is the on-wire size of one state-transfer snapshot
	// (informational; 0 selects 64).
	TransferBytes int
}

// View is one agreed membership epoch: a totally ordered sequence
// number and the agreed member set (sorted).
type View struct {
	ID      uint64
	Members []int
}

// Contains reports whether node is a member of the view.
func (v View) Contains(node int) bool {
	for _, m := range v.Members {
		if m == node {
			return true
		}
	}
	return false
}

// String renders the view as "v3{0,2,3}".
func (v View) String() string {
	s := fmt.Sprintf("v%d{", v.ID)
	for i, m := range v.Members {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(m)
	}
	return s + "}"
}

// Install records one node adopting one view.
type Install struct {
	Node int
	View View
	At   vtime.Time
	// TriggeredAt is the suspicion/rehabilitation instant that caused
	// the change; Latency is At - TriggeredAt (zero for the initial
	// view).
	TriggeredAt vtime.Time
	Latency     vtime.Duration
	Reason      string
}

// Transfer records one state-transfer message of the join protocol.
type Transfer struct {
	Key      string
	From, To int
	At       vtime.Time
}

// Merge records one partition merge: a view that re-admitted members
// which had been excluded while alive (a blocked minority side).
type Merge struct {
	View View
	// At is the merge view's install instant; HealAt the heal instant
	// of the partition that had excluded the members (zero when the
	// heal was never observed); Latency is At - HealAt.
	At         vtime.Time
	HealAt     vtime.Time
	Latency    vtime.Duration
	Readmitted []int
}

// stateHook is one registered application state to carry across joins.
type stateHook struct {
	key string
	// snapshot captures the state to ship to joiner; nil return skips
	// the transfer (the joiner does not hold this state).
	snapshot func(donor, joiner int) any
	restore  func(node int, data any)
}

// viewMsg is the rbcast payload installing a view.
type viewMsg struct {
	ID          uint64
	Members     []int
	TriggeredAt vtime.Time
	Reason      string
}

// xferMsg carries one state snapshot to a joiner.
type xferMsg struct {
	Key    string
	ViewID uint64
	Data   any
}

// Service is a running view-synchronous membership group.
type Service struct {
	eng *simkern.Engine
	net *netsim.Network
	cfg Config
	det *fault.Detector
	rb  *rbcast.Service

	started bool
	agreed  []View          // the totally ordered agreed view sequence
	current map[int]View    // per-node installed view
	history map[int][]View  // per-node install sequence
	done    map[uint64]bool // agreed-view completion guard

	inProgress    bool
	retryArmed    bool
	pendingRemove map[int]map[int]vtime.Time // suspect → observer → trigger instant
	pendingJoin   map[int]vtime.Time         // joiner → trigger instant

	// Primary-partition bookkeeping: spans with pending changes but no
	// majority side, per-node excluded-while-alive spans, and the last
	// observed heal instant (for merge latency).
	noQuorum      bool
	noQuorumSince vtime.Time
	noQuorumTotal vtime.Duration
	blockedSince  map[int]vtime.Time
	blockedMark   map[int]bool // excluded-while-alive, until re-admitted
	blockedTotal  map[int]vtime.Duration
	lastHeal      vtime.Time

	onInstall map[int][]func(View)
	onChange  []func(View)
	onMerge   []func(Merge)
	states    []stateHook

	// Installs, Transfers and Merges record every event for the harness.
	Installs  []Install
	Transfers []Transfer
	Merges    []Merge

	// Metrics-plane instruments (nil-safe when metrics are off):
	// suspicion arrivals and per-install view latency.
	mSuspicions *metrics.Counter
	mInstallLat *metrics.Hist
}

// New builds (but does not start) a membership service over the given
// universe of nodes. The service owns its heartbeat detector.
func New(eng *simkern.Engine, net *netsim.Network, cfg Config) (*Service, error) {
	if len(cfg.Nodes) < 2 {
		return nil, fmt.Errorf("membership: group %q needs at least 2 nodes", cfg.Name)
	}
	seen := make(map[int]bool, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n < 0 || n > 62 {
			return nil, fmt.Errorf("membership: node id %d outside [0,62]", n)
		}
		if seen[n] {
			return nil, fmt.Errorf("membership: duplicate node id %d in group %q", n, cfg.Name)
		}
		seen[n] = true
	}
	if cfg.F <= 0 {
		cfg.F = 1
	}
	if cfg.F >= len(cfg.Nodes) {
		return nil, fmt.Errorf("membership: F=%d needs more than F nodes (have %d)", cfg.F, len(cfg.Nodes))
	}
	if cfg.TransferBytes <= 0 {
		cfg.TransferBytes = 64
	}
	dcfg := cfg.Detector
	if dcfg.Period == 0 {
		dcfg = fault.DefaultDetectorConfig(cfg.Nodes)
	}
	dcfg.Nodes = cfg.Nodes
	if dcfg.Port == "" {
		// Scope the heartbeats per group: two groups sharing a node
		// must not steal each other's heartbeat bindings.
		dcfg.Port = "m." + cfg.Name + ".beat"
	}
	cfg.Detector = dcfg

	rcfg := rbcast.DefaultConfig(net, cfg.Nodes, cfg.F)
	if cfg.RbcastRound > 0 {
		rcfg.Round = cfg.RbcastRound
	}
	rcfg.WProc = cfg.WProc

	s := &Service{
		eng:           eng,
		net:           net,
		cfg:           cfg,
		rb:            rbcast.New(eng, net, "m."+cfg.Name, rcfg),
		current:       make(map[int]View),
		history:       make(map[int][]View),
		done:          make(map[uint64]bool),
		pendingRemove: make(map[int]map[int]vtime.Time),
		pendingJoin:   make(map[int]vtime.Time),
		blockedSince:  make(map[int]vtime.Time),
		blockedMark:   make(map[int]bool),
		blockedTotal:  make(map[int]vtime.Duration),
		onInstall:     make(map[int][]func(View)),
		mSuspicions:   eng.Metrics().Counter("member.suspicions"),
		mInstallLat:   eng.Metrics().Hist("member.install.latency"),
	}
	s.det = fault.NewDetector(eng, net, dcfg, s.handleSuspicion)
	s.det.OnRehabilitate(s.handleRehabilitation)
	for _, n := range cfg.Nodes {
		node := n
		s.rb.OnDeliver(node, func(d rbcast.Delivery) { s.deliverView(node, d) })
		net.Bind(node, s.xferPort(), func(m *netsim.Message) { s.receiveTransfer(node, m) })
	}
	// A crash ends a blocked (excluded-while-alive) span; a recovery
	// while still excluded re-opens it (the node is blocked again, and
	// its eventual re-admission is still a merge). A heal marks the
	// merge-latency origin and gives pending changes a prompt chance
	// to find a quorum side again.
	net.OnDownChange(func(node int, down bool) {
		switch {
		case down:
			s.closeBlocked(node, eng.Now())
		case s.started && s.blockedMark[node] && !s.Agreed().Contains(node):
			if _, open := s.blockedSince[node]; !open {
				s.blockedSince[node] = eng.Now()
			}
		}
	})
	net.OnPartitionChange(func(partitioned bool) {
		if !partitioned {
			s.lastHeal = eng.Now()
			if s.started {
				s.maybeChange()
			}
		}
	})
	return s, nil
}

func (s *Service) xferPort() string { return "m." + s.cfg.Name + ".xfer" }

// Start installs the initial view (all of cfg.Nodes) at every node and
// starts the heartbeat detector. Register groups, state providers and
// handlers before calling it. Idempotent.
func (s *Service) Start() {
	if s.started {
		return
	}
	s.started = true
	now := s.eng.Now()
	v0 := View{ID: 1, Members: sortedCopy(s.cfg.Nodes)}
	s.agreed = append(s.agreed, v0)
	s.rb.SetEpoch(v0.ID, v0.Members)
	for _, n := range v0.Members {
		s.install(n, v0, now, now, "init")
	}
	for _, fn := range s.onChange {
		fn(v0)
	}
	s.det.Start()
}

// Detector returns the service's heartbeat detector.
func (s *Service) Detector() *fault.Detector { return s.det }

// Nodes returns the universe of potential members.
func (s *Service) Nodes() []int { return sortedCopy(s.cfg.Nodes) }

// Name returns the group name.
func (s *Service) Name() string { return s.cfg.Name }

// AgreedViews returns the totally ordered agreed view sequence.
func (s *Service) AgreedViews() []View {
	out := make([]View, len(s.agreed))
	copy(out, s.agreed)
	return out
}

// Agreed returns the latest agreed view (zero View before Start).
func (s *Service) Agreed() View {
	if len(s.agreed) == 0 {
		return View{}
	}
	return s.agreed[len(s.agreed)-1]
}

// Quorum returns the strict-majority quorum size a side must muster
// right now to install the next view under the primary-partition rule
// — counted, like the rule itself, over the latest agreed view's
// members that are not known-crashed.
func (s *Service) Quorum() int { return len(liveOf(s.net, s.Agreed()))/2 + 1 }

// NoQuorumTime returns the accumulated time during which membership
// changes were pending but no side held a majority quorum (a total
// block, e.g. a symmetric split).
func (s *Service) NoQuorumTime() vtime.Duration {
	total := s.noQuorumTotal
	if s.noQuorum {
		total += s.eng.Now().Sub(s.noQuorumSince)
	}
	return total
}

// BlockedTime returns the time node spent excluded from the agreed
// view while alive (a partitioned minority member), up to now.
func (s *Service) BlockedTime(node int) vtime.Duration {
	total := s.blockedTotal[node]
	if since, open := s.blockedSince[node]; open {
		total += s.eng.Now().Sub(since)
	}
	return total
}

// TotalBlockedTime sums BlockedTime over the universe.
func (s *Service) TotalBlockedTime() vtime.Duration {
	var total vtime.Duration
	for _, n := range s.cfg.Nodes {
		total += s.BlockedTime(n)
	}
	return total
}

// FlushedMessages returns the number of broadcast copies discarded by
// virtual-synchronous flushing at view boundaries.
func (s *Service) FlushedMessages() int { return s.rb.Flushed }

// CurrentView returns node's currently installed view (zero View if
// the node never installed one).
func (s *Service) CurrentView(node int) View { return s.current[node] }

// History returns the views node installed, in order.
func (s *Service) History(node int) []View {
	out := make([]View, len(s.history[node]))
	copy(out, s.history[node])
	return out
}

// OnInstall registers a handler fired whenever node installs a view.
func (s *Service) OnInstall(node int, fn func(View)) {
	s.onInstall[node] = append(s.onInstall[node], fn)
}

// OnChange registers a handler fired once per agreed view, at the
// install instant (and once for the initial view at Start).
func (s *Service) OnChange(fn func(View)) { s.onChange = append(s.onChange, fn) }

// OnMerge registers a handler fired once per partition merge — an
// agreed view that re-admits members which had been blocked (excluded
// while alive). Merge views also fire OnChange like any other agreed
// view; this hook is for observers that care specifically about
// re-admissions (the Merge record carries who and the heal latency).
func (s *Service) OnMerge(fn func(Merge)) { s.onMerge = append(s.onMerge, fn) }

// HasQuorum reports whether node, by its own local knowledge — its
// installed view and its detector's current suspicions — can still
// reach a strict majority of that view's live members. A primary
// stranded on a minority side fails this as soon as its detector
// times out on the unreachable majority, and must stop serving (the
// stale-view rejection of the sharded request layer): any result it
// produced would be overwritten by the authoritative majority state
// at the merge. Known-crashed members leave the denominator, exactly
// as in the primary-partition rule, so plain crash churn never blocks
// a surviving majority.
func (s *Service) HasQuorum(node int) bool {
	v := s.current[node]
	if v.ID == 0 {
		return false
	}
	live, reach := 0, 0
	for _, m := range v.Members {
		if s.net.NodeDown(m) {
			continue
		}
		live++
		if m == node || !s.det.Suspected(node, m) {
			reach++
		}
	}
	return reach >= live/2+1
}

// RegisterState adds an application state to the join protocol:
// snapshot(donor, joiner) captures the donor-side state shipped to the
// joiner (nil skips), restore applies it on arrival. Replication
// registers its state machine here, backed by stable storage.
func (s *Service) RegisterState(key string, snapshot func(donor, joiner int) any, restore func(node int, data any)) {
	s.states = append(s.states, stateHook{key: key, snapshot: snapshot, restore: restore})
}

// DetectionBound returns the worst-case crash-to-suspicion latency:
// the largest pairwise suspicion timeout plus one check period.
func (s *Service) DetectionBound() vtime.Duration {
	var worst vtime.Duration
	for _, o := range s.cfg.Nodes {
		for _, p := range s.cfg.Nodes {
			if o == p {
				continue
			}
			if t := s.det.Timeout(o, p); t > worst {
				worst = t
			}
		}
	}
	return worst + s.cfg.Detector.Period
}

// AgreementBound returns the suspicion-to-install latency of one
// uncontended view change: the consensus decision bound plus the
// broadcast delivery bound Δ.
func (s *Service) AgreementBound() vtime.Duration {
	return vtime.Duration(s.cfg.F+1)*s.consensusRound() + s.rb.Delta()
}

// Bound returns the provable crash-to-install bound of one uncontended
// view change: DetectionBound + AgreementBound. Queued changes (a
// suspicion arriving while another change is in flight) serialise and
// may each add one AgreementBound.
func (s *Service) Bound() vtime.Duration {
	return s.DetectionBound() + s.AgreementBound()
}

func (s *Service) consensusRound() vtime.Duration {
	if s.cfg.ConsensusRound > 0 {
		return s.cfg.ConsensusRound
	}
	return consensus.DefaultConfig(s.net, s.cfg.Nodes, s.cfg.F).Round
}

// handleSuspicion queues a removal when a member suspects a member.
// The observer is recorded with the suspicion: under a partition only
// suspicions held by the majority side are actionable.
func (s *Service) handleSuspicion(sp fault.Suspicion) {
	if !s.started {
		return
	}
	s.mSuspicions.Inc()
	cur := s.agreed[len(s.agreed)-1]
	if !cur.Contains(sp.Suspect) || !cur.Contains(sp.Observer) {
		return
	}
	obs := s.pendingRemove[sp.Suspect]
	if obs == nil {
		obs = make(map[int]vtime.Time)
		s.pendingRemove[sp.Suspect] = obs
	}
	if _, dup := obs[sp.Observer]; dup {
		return
	}
	obs[sp.Observer] = sp.At
	s.maybeChange()
}

// handleRehabilitation queues a join when a member sees heartbeats
// from a live non-member again — the rejoin trigger.
func (s *Service) handleRehabilitation(observer, peer int) {
	if !s.started {
		return
	}
	cur := s.agreed[len(s.agreed)-1]
	if cur.Contains(peer) || !cur.Contains(observer) || s.net.NodeDown(peer) {
		return
	}
	if _, dup := s.pendingJoin[peer]; dup {
		return
	}
	s.pendingJoin[peer] = s.eng.Now()
	s.maybeChange()
}

// majorityCohort returns the side that may drive the next view change
// from v, or nil if none: the live (not known-crashed) members of v
// that can reach each other and form a strict majority of v's live
// members. With no partition that is simply every live member (crash
// churn keeps its availability — the simulation's perfect crash
// detector vouches that crashed members cannot form a rival primary).
// Under a partition, members are grouped by side; members on no listed
// side reach every side and count toward each cohort. The largest
// cohort wins (lowest side index on ties, deterministically).
func (s *Service) majorityCohort(v View) []int {
	var live []int
	for _, m := range v.Members {
		if !s.net.NodeDown(m) {
			live = append(live, m)
		}
	}
	if len(live) == 0 {
		return nil
	}
	need := len(live)/2 + 1
	if !s.net.PartitionActive() {
		return live
	}
	var unlisted []int
	bySide := make(map[int][]int)
	for _, m := range live {
		if sd, listed := s.net.Side(m); listed {
			bySide[sd] = append(bySide[sd], m)
		} else {
			unlisted = append(unlisted, m)
		}
	}
	if len(bySide) == 0 {
		return live // no member is behind the partition
	}
	sides := make([]int, 0, len(bySide))
	for sd := range bySide {
		sides = append(sides, sd)
	}
	sort.Ints(sides)
	var best []int
	for _, sd := range sides {
		cohort := append(append([]int{}, bySide[sd]...), unlisted...)
		if len(cohort) >= need && len(cohort) > len(best) {
			best = cohort
		}
	}
	sort.Ints(best)
	return best
}

// armRetry schedules one maybeChange retry a detector period from now
// (deduplicated: at most one armed retry at a time).
func (s *Service) armRetry() {
	if s.retryArmed {
		return
	}
	s.retryArmed = true
	s.eng.After(s.cfg.Detector.Period, eventq.ClassApp, func() {
		s.retryArmed = false
		s.maybeChange()
	})
}

// beginQuorumOutage opens the no-quorum span (idempotent).
func (s *Service) beginQuorumOutage(cur View) {
	if s.noQuorum {
		return
	}
	s.noQuorum = true
	s.noQuorumSince = s.eng.Now()
	if log := s.eng.Log(); log != nil {
		log.Recordf(s.noQuorumSince, monitor.KindQuorumBlocked, -1, s.cfg.Name,
			"no side holds %d of %s", len(liveOf(s.net, cur))/2+1, cur)
	}
}

// endQuorumOutage closes the no-quorum span (idempotent).
func (s *Service) endQuorumOutage() {
	if !s.noQuorum {
		return
	}
	s.noQuorum = false
	s.noQuorumTotal += s.eng.Now().Sub(s.noQuorumSince)
}

// closeBlocked ends node's excluded-while-alive span at instant t.
func (s *Service) closeBlocked(node int, t vtime.Time) {
	if since, open := s.blockedSince[node]; open {
		s.blockedTotal[node] += t.Sub(since)
		delete(s.blockedSince, node)
	}
}

// maybeChange starts one view change for the queued removals and joins
// if none is in flight. Changes serialise: the next starts when the
// current view installs. The primary-partition rule gates the start: a
// change proceeds only when a majority cohort of the current view
// exists, removals are actionable only when a cohort member still
// holds the suspicion, and only cohort members propose.
func (s *Service) maybeChange() {
	if s.inProgress {
		return
	}
	cur := s.agreed[len(s.agreed)-1]
	if len(s.pendingRemove) == 0 && len(s.pendingJoin) == 0 {
		s.endQuorumOutage()
		return
	}
	cohort := s.majorityCohort(cur)
	if cohort == nil {
		// No side holds a majority quorum of the current view: every
		// side blocks (no view anywhere) until connectivity or
		// liveness changes.
		s.beginQuorumOutage(cur)
		s.armRetry()
		return
	}
	s.endQuorumOutage()
	inCohort := make(map[int]bool, len(cohort))
	for _, m := range cohort {
		inCohort[m] = true
	}

	var removes, adds []int
	trigger := vtime.Time(0)
	first := true
	take := func(at vtime.Time) {
		if first || at < trigger {
			trigger = at
		}
		first = false
	}
	for _, suspect := range sortedKeys2(s.pendingRemove) {
		if !cur.Contains(suspect) {
			delete(s.pendingRemove, suspect)
			continue
		}
		// Drop retracted suspicions (the observer rehabilitated the
		// peer, e.g. after a heal) and observers that left the view;
		// act only on suspicions held by the majority cohort.
		observers := s.pendingRemove[suspect]
		actionable := false
		for _, o := range sortedKeys(observers) {
			if !cur.Contains(o) || !s.det.Suspected(o, suspect) {
				delete(observers, o)
				continue
			}
			if inCohort[o] {
				actionable = true
				take(observers[o])
			}
		}
		if len(observers) == 0 {
			delete(s.pendingRemove, suspect)
			continue
		}
		if actionable {
			removes = append(removes, suspect)
		}
	}
	for _, n := range sortedKeys(s.pendingJoin) {
		switch {
		case cur.Contains(n) || s.net.NodeDown(n):
			delete(s.pendingJoin, n)
		case reachableFrom(s.net, cohort, n):
			adds = append(adds, n)
			take(s.pendingJoin[n])
		}
	}
	if len(removes) == 0 && len(adds) == 0 {
		return
	}

	// Each cohort member proposes its local membership estimate: the
	// current members it does not itself suspect, minus the triggering
	// removals, plus the joiners. Agreement then makes one of those
	// estimates the view — suspicions become *agreed* membership, the
	// point of the service.
	proposals := make(map[int]int64)
	for _, m := range cohort {
		if containsInt(removes, m) {
			continue
		}
		var mask int64
		for _, x := range cur.Members {
			if containsInt(removes, x) {
				continue
			}
			if x != m && s.det.Suspected(m, x) {
				continue
			}
			mask |= 1 << uint(x)
		}
		for _, a := range adds {
			mask |= 1 << uint(a)
		}
		proposals[m] = mask
	}
	if len(proposals) == 0 {
		// No cohort member to drive the change; retry a period later
		// (e.g. everyone crashed — nothing to agree until recovery).
		s.armRetry()
		return
	}

	s.inProgress = true
	newID := cur.ID + 1
	reason := changeReason(removes, adds)
	f := s.cfg.F
	if f > len(cur.Members)-1 {
		f = len(cur.Members) - 1
	}
	ccfg := consensus.Config{
		Nodes: cur.Members,
		F:     f,
		Round: s.consensusRound(),
		WProc: s.cfg.WProc,
	}
	decided := false
	trig := trigger
	inst := consensus.New(s.eng, s.net, fmt.Sprintf("m.%s.vc%d", s.cfg.Name, newID), ccfg, func(res consensus.Result) {
		if decided {
			return
		}
		// Split-brain gate: a decision defines the next view only if
		// the decider sits in a current majority cohort — a partition
		// striking mid-round must not let a minority-side estimate
		// become the agreed view.
		if !containsInt(s.majorityCohort(s.agreed[len(s.agreed)-1]), res.Node) {
			return
		}
		decided = true
		s.finishChange(newID, membersOf(res.Decision), trig, reason)
	})
	inst.Propose(proposals)
	// A partition striking mid-round can leave every decision rejected
	// by the gate above; re-arm so the change is retried rather than
	// wedged behind a dead consensus instance.
	s.eng.After(vtime.Duration(f+1)*ccfg.Round+vtime.Microsecond, eventq.ClassApp, func() {
		if !decided {
			s.inProgress = false
			s.maybeChange()
		}
	})
}

// finishChange runs at the consensus decision instant: the agreed view
// is fixed, appended to the total order, and disseminated with the
// time-bounded broadcast so every live node installs it at the same
// fixed instant Δ later.
func (s *Service) finishChange(id uint64, members []int, trigger vtime.Time, reason string) {
	if len(members) == 0 {
		// Degenerate decision (all proposers excluded everyone) —
		// abandon; retry so queued changes are not wedged.
		s.inProgress = false
		s.armRetry()
		return
	}
	cohort := s.majorityCohort(s.agreed[len(s.agreed)-1])
	v := View{ID: id, Members: members}
	s.agreed = append(s.agreed, v)
	// The broadcast origin must sit in the majority cohort: an origin
	// stranded on a minority side would install the view only there.
	origin := -1
	for _, m := range members {
		if !s.net.NodeDown(m) && (cohort == nil || containsInt(cohort, m)) {
			origin = m
			break
		}
	}
	if origin < 0 {
		for _, m := range members {
			if !s.net.NodeDown(m) {
				origin = m
				break
			}
		}
	}
	if origin < 0 {
		origin = members[0]
	}
	// Advance the virtual-synchrony epoch before disseminating: the
	// view message itself carries the new epoch, while copies still in
	// flight from the old view are flushed at their delivery instant.
	s.rb.SetEpoch(id, members)
	s.rb.Broadcast(origin, viewMsg{ID: id, Members: members, TriggeredAt: trigger, Reason: reason})
}

// deliverView handles one rbcast delivery of a view at one node.
func (s *Service) deliverView(node int, d rbcast.Delivery) {
	vm, ok := d.Payload.(viewMsg)
	if !ok {
		return
	}
	v := View{ID: vm.ID, Members: sortedCopy(vm.Members)}
	s.completeChange(v, vm, d.At)
	if !v.Contains(node) {
		return // removed (or never-member) nodes do not install
	}
	if s.current[node].ID >= v.ID {
		return // stale duplicate
	}
	s.install(node, v, d.At, vm.TriggeredAt, vm.Reason)
}

// completeChange runs once per agreed view at its install instant:
// clears the pending queue entries it settled, schedules state
// transfers for joiners, fires OnChange, and chains the next queued
// change.
func (s *Service) completeChange(v View, vm viewMsg, at vtime.Time) {
	if s.done[v.ID] {
		return
	}
	s.done[v.ID] = true
	s.inProgress = false
	prev := View{}
	for _, a := range s.agreed {
		if a.ID == v.ID-1 {
			prev = a
		}
	}
	var joined, readmitted []int
	for _, m := range v.Members {
		delete(s.pendingJoin, m)
		if prev.ID != 0 && !prev.Contains(m) {
			joined = append(joined, m)
			if _, blocked := s.blockedSince[m]; blocked {
				readmitted = append(readmitted, m)
			}
		}
	}
	for _, m := range prev.Members {
		if !v.Contains(m) {
			delete(s.pendingRemove, m)
			// A member excluded while alive is a blocked minority
			// node: it holds its old view, installs nothing and
			// promotes nothing until a merge view re-admits it.
			if !s.net.NodeDown(m) {
				s.blockedMark[m] = true
				if _, open := s.blockedSince[m]; !open {
					s.blockedSince[m] = at
				}
			}
		}
	}
	// Suspicions held by ex-members are void with their membership.
	for suspect, observers := range s.pendingRemove {
		for o := range observers {
			if !v.Contains(o) {
				delete(observers, o)
			}
		}
		if len(observers) == 0 {
			delete(s.pendingRemove, suspect)
		}
	}
	if len(readmitted) > 0 {
		mg := Merge{View: v, At: at, HealAt: s.lastHeal, Readmitted: readmitted}
		if mg.HealAt > 0 && at >= mg.HealAt {
			mg.Latency = at.Sub(mg.HealAt)
		}
		s.Merges = append(s.Merges, mg)
		if log := s.eng.Log(); log != nil {
			log.Recordf(at, monitor.KindMerge, -1, s.cfg.Name, "%s readmits %v lat=%s", v, readmitted, mg.Latency)
		}
		for _, fn := range s.onMerge {
			fn(mg)
		}
	}
	if len(joined) > 0 && prev.ID != 0 {
		s.transferState(prev, v, joined)
	}
	for _, fn := range s.onChange {
		fn(v)
	}
	s.maybeChange()
}

// install records one node's adoption of a view.
func (s *Service) install(node int, v View, at, trigger vtime.Time, reason string) {
	s.closeBlocked(node, at)
	delete(s.blockedMark, node)
	s.current[node] = v
	s.history[node] = append(s.history[node], v)
	in := Install{Node: node, View: v, At: at, TriggeredAt: trigger, Latency: at.Sub(trigger), Reason: reason}
	s.Installs = append(s.Installs, in)
	if v.ID != 1 {
		s.mInstallLat.ObserveD(in.Latency) // initial view: no change latency
	}
	if log := s.eng.Log(); log != nil {
		log.Recordf(at, monitor.KindViewChange, node, s.cfg.Name, "%s %s lat=%s", v, reason, in.Latency)
	}
	for _, fn := range s.onInstall[node] {
		fn(v)
	}
}

// transferState ships every registered application state from a live
// donor of the previous view to each joiner — the state-transfer half
// of the join protocol.
func (s *Service) transferState(prev, v View, joined []int) {
	donor := -1
	for _, m := range prev.Members {
		if v.Contains(m) && !s.net.NodeDown(m) {
			donor = m
			break
		}
	}
	if donor < 0 {
		return
	}
	for _, j := range joined {
		for _, h := range s.states {
			data := h.snapshot(donor, j)
			if data == nil {
				continue
			}
			if _, err := s.net.Send(donor, j, s.xferPort(), xferMsg{Key: h.key, ViewID: v.ID, Data: data}, s.cfg.TransferBytes); err != nil {
				continue
			}
		}
	}
}

// receiveTransfer applies one arriving state snapshot at the joiner.
func (s *Service) receiveTransfer(node int, m *netsim.Message) {
	if s.net.NodeDown(node) {
		return
	}
	xm, ok := m.Payload.(xferMsg)
	if !ok {
		return
	}
	for _, h := range s.states {
		if h.key != xm.Key {
			continue
		}
		h.restore(node, xm.Data)
		tr := Transfer{Key: xm.Key, From: m.From, To: node, At: s.eng.Now()}
		s.Transfers = append(s.Transfers, tr)
		if log := s.eng.Log(); log != nil {
			log.Recordf(tr.At, monitor.KindStateTransfer, node, s.cfg.Name, "key=%s from=n%d view=%d", xm.Key, m.From, xm.ViewID)
		}
	}
}

// changeReason renders the change as "remove n0" / "join n2" /
// "remove n0 join n2".
func changeReason(removes, adds []int) string {
	out := ""
	if len(removes) > 0 {
		out = "remove"
		for _, n := range removes {
			out += fmt.Sprintf(" n%d", n)
		}
	}
	if len(adds) > 0 {
		if out != "" {
			out += " "
		}
		out += "join"
		for _, n := range adds {
			out += fmt.Sprintf(" n%d", n)
		}
	}
	return out
}

// membersOf decodes a consensus decision bitmask into a member list.
func membersOf(mask int64) []int {
	var out []int
	for i := 0; i < 63; i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

func sortedCopy(in []int) []int {
	out := make([]int, len(in))
	copy(out, in)
	sort.Ints(out)
	return out
}

func sortedKeys(m map[int]vtime.Time) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedKeys2(m map[int]map[int]vtime.Time) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// liveOf returns the not-known-crashed members of v.
func liveOf(net *netsim.Network, v View) []int {
	var out []int
	for _, m := range v.Members {
		if !net.NodeDown(m) {
			out = append(out, m)
		}
	}
	return out
}

// reachableFrom reports whether some cohort member can reach node.
func reachableFrom(net *netsim.Network, cohort []int, node int) bool {
	for _, c := range cohort {
		if !net.Partitioned(c, node) {
			return true
		}
	}
	return len(cohort) == 0
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
