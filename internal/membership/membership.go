// Package membership implements a view-synchronous group membership
// service — the middleware layer §2.2 of the paper presupposes between
// failure detection and the fault-tolerance services: replication
// failover is only predictable if every replica agrees on *who is in
// the group*, not just on its own detector's suspicions.
//
// The service turns local heartbeat suspicions into agreed, totally
// ordered views:
//
//   - View / Install reproduce the membership abstraction of §2.2.1:
//     a view is an agreed member set with a sequence number; installs
//     are the per-node adoption events.
//   - Suspicion → view change: a fault.Detector (§2.2.1 failure
//     detection) suspicion of a member triggers one consensus round
//     (internal/consensus, the §2.2.1 consensus service) among the
//     current members; each live member proposes its local estimate of
//     the membership, encoded as a bitmask, and the agreed decision
//     defines view v+1.
//   - Dissemination: the decided view is spread with the time-bounded
//     reliable broadcast (internal/rbcast, §2.2.1 Rel. Bcast), so all
//     live members install it at the *same* fixed instant — the
//     view-synchrony property replication failover relies on.
//   - Bound() composes the three service bounds into the provable
//     view-change bound: detector timeout (+ one check period) +
//     consensus decision bound (f+1)·Rc + broadcast delivery bound
//     Δ = (f+1)·Rb. Every uncontended install observes a latency at
//     most Bound() from the crash instant (§2.2's "time-bounded"
//     contract, so the bound can enter a feasibility test).
//   - Rejoin: a crashed node that recovers resumes heartbeating; the
//     detector rehabilitates it at each live observer, which triggers
//     a join view change. After the join view installs, the service
//     runs a state transfer from a live donor to the joiner for every
//     registered state provider (replication registers its replicated
//     state machine backed by internal/storage stable checkpoints).
//
// All decisions are functions of the deterministic engine: identical
// scenario + seed ⇒ identical view history at every node.
package membership

import (
	"fmt"
	"sort"

	"hades/internal/consensus"
	"hades/internal/eventq"
	"hades/internal/fault"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/rbcast"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// Config parameterises one membership group.
type Config struct {
	// Name scopes the group's network ports; distinct groups need
	// distinct names.
	Name string
	// Nodes is the universe of potential members (node ids must be in
	// [0, 62]: views are encoded as int64 bitmasks for consensus).
	Nodes []int
	// F is the number of crash/omission failures tolerated per
	// agreement round; 0 selects 1.
	F int
	// Detector configures the heartbeat detector; a zero Period
	// selects fault.DefaultDetectorConfig over Nodes.
	Detector fault.DetectorConfig
	// ConsensusRound overrides the consensus round length (0 = sized
	// from the network delay bounds).
	ConsensusRound vtime.Duration
	// RbcastRound overrides the broadcast round length (0 = sized from
	// the network delay bounds).
	RbcastRound vtime.Duration
	// WProc is the per-message processing cost charged on members.
	WProc vtime.Duration
	// TransferBytes is the on-wire size of one state-transfer snapshot
	// (informational; 0 selects 64).
	TransferBytes int
}

// View is one agreed membership epoch: a totally ordered sequence
// number and the agreed member set (sorted).
type View struct {
	ID      uint64
	Members []int
}

// Contains reports whether node is a member of the view.
func (v View) Contains(node int) bool {
	for _, m := range v.Members {
		if m == node {
			return true
		}
	}
	return false
}

// String renders the view as "v3{0,2,3}".
func (v View) String() string {
	s := fmt.Sprintf("v%d{", v.ID)
	for i, m := range v.Members {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(m)
	}
	return s + "}"
}

// Install records one node adopting one view.
type Install struct {
	Node int
	View View
	At   vtime.Time
	// TriggeredAt is the suspicion/rehabilitation instant that caused
	// the change; Latency is At - TriggeredAt (zero for the initial
	// view).
	TriggeredAt vtime.Time
	Latency     vtime.Duration
	Reason      string
}

// Transfer records one state-transfer message of the join protocol.
type Transfer struct {
	Key      string
	From, To int
	At       vtime.Time
}

// stateHook is one registered application state to carry across joins.
type stateHook struct {
	key string
	// snapshot captures the state to ship to joiner; nil return skips
	// the transfer (the joiner does not hold this state).
	snapshot func(donor, joiner int) any
	restore  func(node int, data any)
}

// viewMsg is the rbcast payload installing a view.
type viewMsg struct {
	ID          uint64
	Members     []int
	TriggeredAt vtime.Time
	Reason      string
}

// xferMsg carries one state snapshot to a joiner.
type xferMsg struct {
	Key    string
	ViewID uint64
	Data   any
}

// Service is a running view-synchronous membership group.
type Service struct {
	eng *simkern.Engine
	net *netsim.Network
	cfg Config
	det *fault.Detector
	rb  *rbcast.Service

	started bool
	agreed  []View          // the totally ordered agreed view sequence
	current map[int]View    // per-node installed view
	history map[int][]View  // per-node install sequence
	done    map[uint64]bool // agreed-view completion guard

	inProgress    bool
	pendingRemove map[int]vtime.Time // suspect → trigger instant
	pendingJoin   map[int]vtime.Time // joiner → trigger instant

	onInstall map[int][]func(View)
	onChange  []func(View)
	states    []stateHook

	// Installs and Transfers record every event for the harness.
	Installs  []Install
	Transfers []Transfer
}

// New builds (but does not start) a membership service over the given
// universe of nodes. The service owns its heartbeat detector.
func New(eng *simkern.Engine, net *netsim.Network, cfg Config) (*Service, error) {
	if len(cfg.Nodes) < 2 {
		return nil, fmt.Errorf("membership: group %q needs at least 2 nodes", cfg.Name)
	}
	seen := make(map[int]bool, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n < 0 || n > 62 {
			return nil, fmt.Errorf("membership: node id %d outside [0,62]", n)
		}
		if seen[n] {
			return nil, fmt.Errorf("membership: duplicate node id %d in group %q", n, cfg.Name)
		}
		seen[n] = true
	}
	if cfg.F <= 0 {
		cfg.F = 1
	}
	if cfg.F >= len(cfg.Nodes) {
		return nil, fmt.Errorf("membership: F=%d needs more than F nodes (have %d)", cfg.F, len(cfg.Nodes))
	}
	if cfg.TransferBytes <= 0 {
		cfg.TransferBytes = 64
	}
	dcfg := cfg.Detector
	if dcfg.Period == 0 {
		dcfg = fault.DefaultDetectorConfig(cfg.Nodes)
	}
	dcfg.Nodes = cfg.Nodes
	if dcfg.Port == "" {
		// Scope the heartbeats per group: two groups sharing a node
		// must not steal each other's heartbeat bindings.
		dcfg.Port = "m." + cfg.Name + ".beat"
	}
	cfg.Detector = dcfg

	rcfg := rbcast.DefaultConfig(net, cfg.Nodes, cfg.F)
	if cfg.RbcastRound > 0 {
		rcfg.Round = cfg.RbcastRound
	}
	rcfg.WProc = cfg.WProc

	s := &Service{
		eng:           eng,
		net:           net,
		cfg:           cfg,
		rb:            rbcast.New(eng, net, "m."+cfg.Name, rcfg),
		current:       make(map[int]View),
		history:       make(map[int][]View),
		done:          make(map[uint64]bool),
		pendingRemove: make(map[int]vtime.Time),
		pendingJoin:   make(map[int]vtime.Time),
		onInstall:     make(map[int][]func(View)),
	}
	s.det = fault.NewDetector(eng, net, dcfg, s.handleSuspicion)
	s.det.OnRehabilitate(s.handleRehabilitation)
	for _, n := range cfg.Nodes {
		node := n
		s.rb.OnDeliver(node, func(d rbcast.Delivery) { s.deliverView(node, d) })
		net.Bind(node, s.xferPort(), func(m *netsim.Message) { s.receiveTransfer(node, m) })
	}
	return s, nil
}

func (s *Service) xferPort() string { return "m." + s.cfg.Name + ".xfer" }

// Start installs the initial view (all of cfg.Nodes) at every node and
// starts the heartbeat detector. Register groups, state providers and
// handlers before calling it. Idempotent.
func (s *Service) Start() {
	if s.started {
		return
	}
	s.started = true
	now := s.eng.Now()
	v0 := View{ID: 1, Members: sortedCopy(s.cfg.Nodes)}
	s.agreed = append(s.agreed, v0)
	for _, n := range v0.Members {
		s.install(n, v0, now, now, "init")
	}
	for _, fn := range s.onChange {
		fn(v0)
	}
	s.det.Start()
}

// Detector returns the service's heartbeat detector.
func (s *Service) Detector() *fault.Detector { return s.det }

// Nodes returns the universe of potential members.
func (s *Service) Nodes() []int { return sortedCopy(s.cfg.Nodes) }

// Name returns the group name.
func (s *Service) Name() string { return s.cfg.Name }

// AgreedViews returns the totally ordered agreed view sequence.
func (s *Service) AgreedViews() []View {
	out := make([]View, len(s.agreed))
	copy(out, s.agreed)
	return out
}

// CurrentView returns node's currently installed view (zero View if
// the node never installed one).
func (s *Service) CurrentView(node int) View { return s.current[node] }

// History returns the views node installed, in order.
func (s *Service) History(node int) []View {
	out := make([]View, len(s.history[node]))
	copy(out, s.history[node])
	return out
}

// OnInstall registers a handler fired whenever node installs a view.
func (s *Service) OnInstall(node int, fn func(View)) {
	s.onInstall[node] = append(s.onInstall[node], fn)
}

// OnChange registers a handler fired once per agreed view, at the
// install instant (and once for the initial view at Start).
func (s *Service) OnChange(fn func(View)) { s.onChange = append(s.onChange, fn) }

// RegisterState adds an application state to the join protocol:
// snapshot(donor, joiner) captures the donor-side state shipped to the
// joiner (nil skips), restore applies it on arrival. Replication
// registers its state machine here, backed by stable storage.
func (s *Service) RegisterState(key string, snapshot func(donor, joiner int) any, restore func(node int, data any)) {
	s.states = append(s.states, stateHook{key: key, snapshot: snapshot, restore: restore})
}

// DetectionBound returns the worst-case crash-to-suspicion latency:
// the largest pairwise suspicion timeout plus one check period.
func (s *Service) DetectionBound() vtime.Duration {
	var worst vtime.Duration
	for _, o := range s.cfg.Nodes {
		for _, p := range s.cfg.Nodes {
			if o == p {
				continue
			}
			if t := s.det.Timeout(o, p); t > worst {
				worst = t
			}
		}
	}
	return worst + s.cfg.Detector.Period
}

// AgreementBound returns the suspicion-to-install latency of one
// uncontended view change: the consensus decision bound plus the
// broadcast delivery bound Δ.
func (s *Service) AgreementBound() vtime.Duration {
	return vtime.Duration(s.cfg.F+1)*s.consensusRound() + s.rb.Delta()
}

// Bound returns the provable crash-to-install bound of one uncontended
// view change: DetectionBound + AgreementBound. Queued changes (a
// suspicion arriving while another change is in flight) serialise and
// may each add one AgreementBound.
func (s *Service) Bound() vtime.Duration {
	return s.DetectionBound() + s.AgreementBound()
}

func (s *Service) consensusRound() vtime.Duration {
	if s.cfg.ConsensusRound > 0 {
		return s.cfg.ConsensusRound
	}
	return consensus.DefaultConfig(s.net, s.cfg.Nodes, s.cfg.F).Round
}

// handleSuspicion queues a removal when a member suspects a member.
func (s *Service) handleSuspicion(sp fault.Suspicion) {
	if !s.started {
		return
	}
	cur := s.agreed[len(s.agreed)-1]
	if !cur.Contains(sp.Suspect) || !cur.Contains(sp.Observer) {
		return
	}
	if _, dup := s.pendingRemove[sp.Suspect]; dup {
		return
	}
	s.pendingRemove[sp.Suspect] = sp.At
	s.maybeChange()
}

// handleRehabilitation queues a join when a member sees heartbeats
// from a live non-member again — the rejoin trigger.
func (s *Service) handleRehabilitation(observer, peer int) {
	if !s.started {
		return
	}
	cur := s.agreed[len(s.agreed)-1]
	if cur.Contains(peer) || !cur.Contains(observer) || s.net.NodeDown(peer) {
		return
	}
	if _, dup := s.pendingJoin[peer]; dup {
		return
	}
	s.pendingJoin[peer] = s.eng.Now()
	s.maybeChange()
}

// maybeChange starts one view change for the queued removals and joins
// if none is in flight. Changes serialise: the next starts when the
// current view installs.
func (s *Service) maybeChange() {
	if s.inProgress {
		return
	}
	cur := s.agreed[len(s.agreed)-1]
	var removes, adds []int
	trigger := vtime.Time(0)
	first := true
	take := func(at vtime.Time) {
		if first || at < trigger {
			trigger = at
		}
		first = false
	}
	for _, n := range sortedKeys(s.pendingRemove) {
		if cur.Contains(n) {
			removes = append(removes, n)
			take(s.pendingRemove[n])
		} else {
			delete(s.pendingRemove, n)
		}
	}
	for _, n := range sortedKeys(s.pendingJoin) {
		if !cur.Contains(n) && !s.net.NodeDown(n) {
			adds = append(adds, n)
			take(s.pendingJoin[n])
		} else {
			delete(s.pendingJoin, n)
		}
	}
	if len(removes) == 0 && len(adds) == 0 {
		return
	}

	// Each live, non-suspect member proposes its local membership
	// estimate: the current members it does not itself suspect, minus
	// the triggering removals, plus the joiners. Agreement then makes
	// one of those estimates the view — suspicions become *agreed*
	// membership, the point of the service.
	proposals := make(map[int]int64)
	for _, m := range cur.Members {
		if s.net.NodeDown(m) || containsInt(removes, m) {
			continue
		}
		var mask int64
		for _, x := range cur.Members {
			if containsInt(removes, x) {
				continue
			}
			if x != m && s.det.Suspected(m, x) {
				continue
			}
			mask |= 1 << uint(x)
		}
		for _, a := range adds {
			mask |= 1 << uint(a)
		}
		proposals[m] = mask
	}
	if len(proposals) == 0 {
		// No live member to drive the change; retry a period later
		// (e.g. everyone crashed — nothing to agree until recovery).
		s.eng.After(s.cfg.Detector.Period, eventq.ClassApp, s.maybeChange)
		return
	}

	s.inProgress = true
	newID := cur.ID + 1
	reason := changeReason(removes, adds)
	f := s.cfg.F
	if f > len(cur.Members)-1 {
		f = len(cur.Members) - 1
	}
	ccfg := consensus.Config{
		Nodes: cur.Members,
		F:     f,
		Round: s.consensusRound(),
		WProc: s.cfg.WProc,
	}
	decided := false
	trig := trigger
	inst := consensus.New(s.eng, s.net, fmt.Sprintf("m.%s.vc%d", s.cfg.Name, newID), ccfg, func(res consensus.Result) {
		if decided {
			return
		}
		decided = true
		s.finishChange(newID, membersOf(res.Decision), trig, reason)
	})
	inst.Propose(proposals)
}

// finishChange runs at the consensus decision instant: the agreed view
// is fixed, appended to the total order, and disseminated with the
// time-bounded broadcast so every live node installs it at the same
// fixed instant Δ later.
func (s *Service) finishChange(id uint64, members []int, trigger vtime.Time, reason string) {
	if len(members) == 0 {
		// Degenerate decision (all proposers excluded everyone) —
		// abandon; detector churn will retrigger.
		s.inProgress = false
		return
	}
	v := View{ID: id, Members: members}
	s.agreed = append(s.agreed, v)
	origin := -1
	for _, m := range members {
		if !s.net.NodeDown(m) {
			origin = m
			break
		}
	}
	if origin < 0 {
		origin = members[0]
	}
	s.rb.Broadcast(origin, viewMsg{ID: id, Members: members, TriggeredAt: trigger, Reason: reason})
}

// deliverView handles one rbcast delivery of a view at one node.
func (s *Service) deliverView(node int, d rbcast.Delivery) {
	vm, ok := d.Payload.(viewMsg)
	if !ok {
		return
	}
	v := View{ID: vm.ID, Members: sortedCopy(vm.Members)}
	s.completeChange(v, vm, d.At)
	if !v.Contains(node) {
		return // removed (or never-member) nodes do not install
	}
	if s.current[node].ID >= v.ID {
		return // stale duplicate
	}
	s.install(node, v, d.At, vm.TriggeredAt, vm.Reason)
}

// completeChange runs once per agreed view at its install instant:
// clears the pending queue entries it settled, schedules state
// transfers for joiners, fires OnChange, and chains the next queued
// change.
func (s *Service) completeChange(v View, vm viewMsg, at vtime.Time) {
	if s.done[v.ID] {
		return
	}
	s.done[v.ID] = true
	s.inProgress = false
	prev := View{}
	for _, a := range s.agreed {
		if a.ID == v.ID-1 {
			prev = a
		}
	}
	var joined []int
	for _, m := range v.Members {
		delete(s.pendingJoin, m)
		if prev.ID != 0 && !prev.Contains(m) {
			joined = append(joined, m)
		}
	}
	for _, m := range prev.Members {
		if !v.Contains(m) {
			delete(s.pendingRemove, m)
		}
	}
	if len(joined) > 0 && prev.ID != 0 {
		s.transferState(prev, v, joined)
	}
	for _, fn := range s.onChange {
		fn(v)
	}
	s.maybeChange()
}

// install records one node's adoption of a view.
func (s *Service) install(node int, v View, at, trigger vtime.Time, reason string) {
	s.current[node] = v
	s.history[node] = append(s.history[node], v)
	in := Install{Node: node, View: v, At: at, TriggeredAt: trigger, Latency: at.Sub(trigger), Reason: reason}
	s.Installs = append(s.Installs, in)
	if log := s.eng.Log(); log != nil {
		log.Recordf(at, monitor.KindViewChange, node, s.cfg.Name, "%s %s lat=%s", v, reason, in.Latency)
	}
	for _, fn := range s.onInstall[node] {
		fn(v)
	}
}

// transferState ships every registered application state from a live
// donor of the previous view to each joiner — the state-transfer half
// of the join protocol.
func (s *Service) transferState(prev, v View, joined []int) {
	donor := -1
	for _, m := range prev.Members {
		if v.Contains(m) && !s.net.NodeDown(m) {
			donor = m
			break
		}
	}
	if donor < 0 {
		return
	}
	for _, j := range joined {
		for _, h := range s.states {
			data := h.snapshot(donor, j)
			if data == nil {
				continue
			}
			if _, err := s.net.Send(donor, j, s.xferPort(), xferMsg{Key: h.key, ViewID: v.ID, Data: data}, s.cfg.TransferBytes); err != nil {
				continue
			}
		}
	}
}

// receiveTransfer applies one arriving state snapshot at the joiner.
func (s *Service) receiveTransfer(node int, m *netsim.Message) {
	if s.net.NodeDown(node) {
		return
	}
	xm, ok := m.Payload.(xferMsg)
	if !ok {
		return
	}
	for _, h := range s.states {
		if h.key != xm.Key {
			continue
		}
		h.restore(node, xm.Data)
		tr := Transfer{Key: xm.Key, From: m.From, To: node, At: s.eng.Now()}
		s.Transfers = append(s.Transfers, tr)
		if log := s.eng.Log(); log != nil {
			log.Recordf(tr.At, monitor.KindStateTransfer, node, s.cfg.Name, "key=%s from=n%d view=%d", xm.Key, m.From, xm.ViewID)
		}
	}
}

// changeReason renders the change as "remove n0" / "join n2" /
// "remove n0 join n2".
func changeReason(removes, adds []int) string {
	out := ""
	if len(removes) > 0 {
		out = "remove"
		for _, n := range removes {
			out += fmt.Sprintf(" n%d", n)
		}
	}
	if len(adds) > 0 {
		if out != "" {
			out += " "
		}
		out += "join"
		for _, n := range adds {
			out += fmt.Sprintf(" n%d", n)
		}
	}
	return out
}

// membersOf decodes a consensus decision bitmask into a member list.
func membersOf(mask int64) []int {
	var out []int
	for i := 0; i < 63; i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

func sortedCopy(in []int) []int {
	out := make([]int, len(in))
	copy(out, in)
	sort.Ints(out)
	return out
}

func sortedKeys(m map[int]vtime.Time) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
