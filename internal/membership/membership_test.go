package membership

import (
	"fmt"
	"reflect"
	"testing"

	"hades/internal/fault"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

type rigT struct {
	eng *simkern.Engine
	net *netsim.Network
	svc *Service
}

func rig(t *testing.T, n int, seed int64) rigT {
	t.Helper()
	eng := simkern.NewEngine(monitor.NewLog(0), seed)
	nodes := make([]int, n)
	for i := 0; i < n; i++ {
		eng.AddProcessor("n", 0)
		nodes[i] = i
	}
	net := netsim.New(eng, netsim.Config{WAtm: 5 * us, WProto: 5 * us, PrioNet: simkern.PrioMax - 2})
	net.ConnectAll(nodes, 50*us, 150*us)
	svc, err := New(eng, net, Config{Name: "g", Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return rigT{eng: eng, net: net, svc: svc}
}

func viewIDs(vs []View) []uint64 {
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = v.ID
	}
	return out
}

// TestInitialViewInstalledEverywhere: Start installs view 1 with the
// full universe at every node.
func TestInitialViewInstalledEverywhere(t *testing.T) {
	r := rig(t, 3, 1)
	r.svc.Start()
	for n := 0; n < 3; n++ {
		v := r.svc.CurrentView(n)
		if v.ID != 1 || !reflect.DeepEqual(v.Members, []int{0, 1, 2}) {
			t.Fatalf("node %d initial view %v", n, v)
		}
	}
}

// TestCrashInstallsAgreedViewWithinBound is the core acceptance test:
// a member crash leads every live member to install the *same* new
// view, at the *same* instant, within Service.Bound() of the crash.
func TestCrashInstallsAgreedViewWithinBound(t *testing.T) {
	r := rig(t, 4, 1)
	r.svc.Start()
	crashAt := vtime.Time(40 * ms)
	fault.CrashAt(r.eng, r.net, 2, crashAt, 0)
	r.eng.Run(vtime.Time(200 * ms))

	want := []View{
		{ID: 1, Members: []int{0, 1, 2, 3}},
		{ID: 2, Members: []int{0, 1, 3}},
	}
	var installAt vtime.Time
	for _, n := range []int{0, 1, 3} {
		got := r.svc.History(n)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d view history %v, want %v", n, got, want)
		}
	}
	// Same instant everywhere (view synchrony), latency within bound.
	for _, in := range r.svc.Installs {
		if in.View.ID != 2 {
			continue
		}
		if installAt == 0 {
			installAt = in.At
		}
		if in.At != installAt {
			t.Fatalf("install instants differ: %s vs %s", in.At, installAt)
		}
		if lat := in.At.Sub(crashAt); lat > r.svc.Bound() {
			t.Fatalf("crash-to-install latency %s above bound %s", lat, r.svc.Bound())
		}
		if in.Latency > r.svc.AgreementBound() {
			t.Fatalf("suspicion-to-install latency %s above agreement bound %s", in.Latency, r.svc.AgreementBound())
		}
	}
	if installAt == 0 {
		t.Fatal("no installs of view 2 recorded")
	}
	// The crashed node must not have installed view 2.
	if got := viewIDs(r.svc.History(2)); !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("crashed node history %v", got)
	}
}

// TestRecoveredNodeRejoins: a crashed node that recovers is brought
// back by a join view change, and its history is a gap-free record of
// what it actually installed.
func TestRecoveredNodeRejoins(t *testing.T) {
	r := rig(t, 3, 1)
	r.svc.Start()
	fault.CrashAt(r.eng, r.net, 0, vtime.Time(40*ms), vtime.Time(120*ms))
	r.eng.Run(vtime.Time(300 * ms))

	want := []View{
		{ID: 1, Members: []int{0, 1, 2}},
		{ID: 2, Members: []int{1, 2}},
		{ID: 3, Members: []int{0, 1, 2}},
	}
	for _, n := range []int{1, 2} {
		if got := r.svc.History(n); !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d history %v, want %v", n, got, want)
		}
	}
	// The joiner installed the initial view and the join view only.
	if got := r.svc.History(0); !reflect.DeepEqual(got, []View{want[0], want[2]}) {
		t.Fatalf("joiner history %v", got)
	}
	if got := r.svc.AgreedViews(); !reflect.DeepEqual(got, want) {
		t.Fatalf("agreed sequence %v, want %v", got, want)
	}
}

// TestJoinRunsStateTransfer: registered state providers ship a
// snapshot from a live donor to the joiner after the join view.
func TestJoinRunsStateTransfer(t *testing.T) {
	r := rig(t, 3, 1)
	restored := map[int]any{}
	r.svc.RegisterState("counter", func(donor, joiner int) any {
		return fmt.Sprintf("state-of-n%d", donor)
	}, func(node int, data any) {
		restored[node] = data
	})
	r.svc.Start()
	fault.CrashAt(r.eng, r.net, 2, vtime.Time(40*ms), vtime.Time(120*ms))
	r.eng.Run(vtime.Time(300 * ms))

	if len(r.svc.Transfers) != 1 {
		t.Fatalf("transfers %+v, want exactly 1", r.svc.Transfers)
	}
	tr := r.svc.Transfers[0]
	if tr.To != 2 || tr.Key != "counter" {
		t.Fatalf("transfer %+v", tr)
	}
	if restored[2] != fmt.Sprintf("state-of-n%d", tr.From) {
		t.Fatalf("restored %v", restored)
	}
	if r.eng.Log().CountKind(monitor.KindStateTransfer) != 1 {
		t.Fatal("state transfer not recorded in the monitor log")
	}
}

// TestSequentialCrashesSerialise: two crashes produce two agreed view
// changes in a total order shared by the survivors.
func TestSequentialCrashesSerialise(t *testing.T) {
	r := rig(t, 4, 1)
	r.svc.Start()
	fault.CrashAt(r.eng, r.net, 3, vtime.Time(40*ms), 0)
	fault.CrashAt(r.eng, r.net, 2, vtime.Time(41*ms), 0)
	r.eng.Run(vtime.Time(300 * ms))

	agreed := r.svc.AgreedViews()
	last := agreed[len(agreed)-1]
	if !reflect.DeepEqual(last.Members, []int{0, 1}) {
		t.Fatalf("final view %v, want members [0 1] (agreed %v)", last, agreed)
	}
	for _, n := range []int{0, 1} {
		h := r.svc.History(n)
		if !reflect.DeepEqual(h, agreed) {
			t.Fatalf("node %d history %v diverges from agreed %v", n, h, agreed)
		}
	}
}

// TestDeterministicViewHistory: identical description + seed ⇒
// identical installs (node, view, instant); a different seed still
// agrees on the same membership sequence.
func TestDeterministicViewHistory(t *testing.T) {
	run := func(seed int64) []Install {
		r := rig(t, 4, seed)
		r.svc.Start()
		fault.CrashAt(r.eng, r.net, 1, vtime.Time(40*ms), vtime.Time(150*ms))
		r.eng.Run(vtime.Time(400 * ms))
		return r.svc.Installs
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different installs:\n%v\n%v", a, b)
	}
	c := run(8)
	// Membership agreement is seed-independent even though timing
	// (link delays) is not.
	seq := func(ins []Install) []string {
		var out []string
		seen := map[uint64]bool{}
		for _, in := range ins {
			if !seen[in.View.ID] {
				seen[in.View.ID] = true
				out = append(out, in.View.String())
			}
		}
		return out
	}
	if !reflect.DeepEqual(seq(a), seq(c)) {
		t.Fatalf("view sequences differ across seeds: %v vs %v", seq(a), seq(c))
	}
}

// TestOverlappingGroupsDoNotInterfere: two groups sharing nodes keep
// independent heartbeat traffic (scoped ports) — neither falsely
// ejects a live member of the other (regression: a shared heartbeat
// port let the later group's bindings steal the earlier's heartbeats).
func TestOverlappingGroupsDoNotInterfere(t *testing.T) {
	eng := simkern.NewEngine(monitor.NewLog(0), 1)
	nodes := []int{0, 1, 2, 3}
	for range nodes {
		eng.AddProcessor("n", 0)
	}
	net := netsim.New(eng, netsim.Config{WAtm: 5 * us, WProto: 5 * us, PrioNet: simkern.PrioMax - 2})
	net.ConnectAll(nodes, 50*us, 150*us)
	a, err := New(eng, net, Config{Name: "a", Nodes: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(eng, net, Config{Name: "b", Nodes: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	eng.Run(vtime.Time(300 * ms))
	if got := a.AgreedViews(); len(got) != 1 {
		t.Fatalf("group a changed views with no faults: %v", got)
	}
	if got := b.AgreedViews(); len(got) != 1 {
		t.Fatalf("group b changed views with no faults: %v", got)
	}
}

// TestValidation: config errors are rejected.
func TestValidation(t *testing.T) {
	eng := simkern.NewEngine(monitor.NewLog(0), 1)
	eng.AddProcessor("n", 0)
	eng.AddProcessor("n", 0)
	net := netsim.New(eng, netsim.Config{})
	net.ConnectAll([]int{0, 1}, 50*us, 150*us)
	if _, err := New(eng, net, Config{Name: "x", Nodes: []int{0}}); err == nil {
		t.Fatal("single-node group accepted")
	}
	if _, err := New(eng, net, Config{Name: "x", Nodes: []int{0, 63}}); err == nil {
		t.Fatal("node id 63 accepted (bitmask overflow)")
	}
	if _, err := New(eng, net, Config{Name: "x", Nodes: []int{0, 0}}); err == nil {
		t.Fatal("duplicate node id accepted")
	}
	if _, err := New(eng, net, Config{Name: "x", Nodes: []int{0, 1}, F: 2}); err == nil {
		t.Fatal("F >= n accepted")
	}
}

// TestPartitionMinorityBlocksAndMerges is the split-brain acceptance
// test: a partition isolates one member; only the majority side (a
// strict quorum of the previous view) installs the removal view, the
// minority installs nothing while partitioned, and the heal re-admits
// it through a merge view.
func TestPartitionMinorityBlocksAndMerges(t *testing.T) {
	r := rig(t, 3, 1)
	r.svc.Start()
	splitAt := vtime.Time(40 * ms)
	healAt := vtime.Time(150 * ms)
	r.net.PartitionAt(splitAt, []int{0}, []int{1, 2})
	r.net.HealAt(healAt)
	r.eng.Run(vtime.Time(300 * ms))

	want := []View{
		{ID: 1, Members: []int{0, 1, 2}},
		{ID: 2, Members: []int{1, 2}},
		{ID: 3, Members: []int{0, 1, 2}},
	}
	if got := r.svc.AgreedViews(); !reflect.DeepEqual(got, want) {
		t.Fatalf("agreed views %v, want %v", got, want)
	}
	for _, n := range []int{1, 2} {
		if got := r.svc.History(n); !reflect.DeepEqual(got, want) {
			t.Fatalf("majority node %d history %v, want %v", n, got, want)
		}
	}
	// The minority member held its old view for the whole split: no
	// install between the split and the merge.
	if got := r.svc.History(0); !reflect.DeepEqual(got, []View{want[0], want[2]}) {
		t.Fatalf("minority history %v, want [v1 v3]", got)
	}
	for _, in := range r.svc.Installs {
		if in.Node == 0 && in.At > splitAt && in.View.ID == 2 {
			t.Fatalf("minority installed %v while partitioned", in)
		}
	}
	if b := r.svc.BlockedTime(0); b == 0 {
		t.Fatal("minority blocked time not recorded")
	}
	if q := r.svc.NoQuorumTime(); q != 0 {
		t.Fatalf("no-quorum time %s, want 0 (the majority side always had quorum)", q)
	}
	if len(r.svc.Merges) != 1 {
		t.Fatalf("merges %+v, want exactly 1", r.svc.Merges)
	}
	mg := r.svc.Merges[0]
	if !reflect.DeepEqual(mg.Readmitted, []int{0}) || mg.HealAt != healAt || mg.Latency == 0 {
		t.Fatalf("merge record %+v", mg)
	}
	// The merge ran the state-transfer path (via the join protocol):
	// the blocked span closed at the merge install.
	if r.svc.BlockedTime(0) != mg.At.Sub(r.svc.Installs[3].At) && r.svc.BlockedTime(0) == 0 {
		t.Fatalf("blocked span not closed at merge")
	}
}

// TestSymmetricSplitBlocksEverySide: a 2-2 split of a 4-member group
// leaves no side with a strict majority — nobody installs any view
// (total block, no split brain), and the heal retracts the mutual
// suspicions without any membership change.
func TestSymmetricSplitBlocksEverySide(t *testing.T) {
	r := rig(t, 4, 1)
	r.svc.Start()
	r.net.PartitionAt(vtime.Time(40*ms), []int{0, 1}, []int{2, 3})
	r.net.HealAt(vtime.Time(150 * ms))
	r.eng.Run(vtime.Time(300 * ms))

	if got := viewIDs(r.svc.AgreedViews()); !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("agreed views %v, want only the initial view", got)
	}
	for n := 0; n < 4; n++ {
		if got := r.svc.History(n); len(got) != 1 {
			t.Fatalf("node %d installed %v during/after a symmetric split", n, got)
		}
	}
	if q := r.svc.NoQuorumTime(); q < 50*ms {
		t.Fatalf("no-quorum time %s, want the bulk of the split window", q)
	}
}

// TestPartitionDuringConsensusRetriesAfterHeal: a total split striking
// mid-consensus must not let any side's decision become a view (the
// quorum gate rejects every decider); the change re-arms and completes
// once the heal restores a quorum.
func TestPartitionDuringConsensusRetriesAfterHeal(t *testing.T) {
	eng := simkern.NewEngine(monitor.NewLog(0), 1)
	nodes := []int{0, 1, 2, 3}
	for range nodes {
		eng.AddProcessor("n", 0)
	}
	net := netsim.New(eng, netsim.Config{WAtm: 5 * us, WProto: 5 * us, PrioNet: simkern.PrioMax - 2})
	net.ConnectAll(nodes, 50*us, 150*us)
	// Long consensus rounds so the split lands mid-agreement.
	svc, err := New(eng, net, Config{Name: "g", Nodes: nodes, ConsensusRound: 15 * ms})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	fault.CrashAt(eng, net, 3, vtime.Time(40*ms), 0)
	// Suspicion ~50ms starts the v2 consensus (rounds 50→80ms); at
	// 65ms every survivor is isolated alone.
	net.PartitionAt(vtime.Time(65*ms), []int{0}, []int{1}, []int{2})
	healAt := vtime.Time(150 * ms)
	net.HealAt(healAt)
	eng.Run(vtime.Time(300 * ms))

	// No view may have installed before the heal.
	for _, in := range svc.Installs {
		if in.View.ID > 1 && in.At < healAt {
			t.Fatalf("view %v installed at %s, during the total split", in.View, in.At)
		}
	}
	want := []View{
		{ID: 1, Members: []int{0, 1, 2, 3}},
		{ID: 2, Members: []int{0, 1, 2}},
	}
	if got := svc.AgreedViews(); !reflect.DeepEqual(got, want) {
		t.Fatalf("agreed views %v, want %v", got, want)
	}
	for _, n := range []int{0, 1, 2} {
		if got := svc.History(n); !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d history %v, want %v", n, got, want)
		}
	}
	if q := svc.NoQuorumTime(); q == 0 {
		t.Fatal("total split recorded no no-quorum time")
	}
}

// TestCascadedViewChangesSerialise: a suspicion landing while another
// view change's consensus is still in flight must queue and produce
// the next totally ordered view — never an interleaved or competing
// one (regression for overlapping churn).
func TestCascadedViewChangesSerialise(t *testing.T) {
	eng := simkern.NewEngine(monitor.NewLog(0), 1)
	nodes := []int{0, 1, 2, 3, 4}
	for range nodes {
		eng.AddProcessor("n", 0)
	}
	net := netsim.New(eng, netsim.Config{WAtm: 5 * us, WProto: 5 * us, PrioNet: simkern.PrioMax - 2})
	net.ConnectAll(nodes, 50*us, 150*us)
	// 15ms consensus rounds: the v2 change (suspicion ~50ms, decision
	// ~80ms) is mid-flight when node 3's crash is detected (~70ms).
	svc, err := New(eng, net, Config{Name: "g", Nodes: nodes, ConsensusRound: 15 * ms})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	fault.CrashAt(eng, net, 4, vtime.Time(40*ms), 0)
	fault.CrashAt(eng, net, 3, vtime.Time(55*ms), 0)
	eng.Run(vtime.Time(400 * ms))

	want := []View{
		{ID: 1, Members: []int{0, 1, 2, 3, 4}},
		{ID: 2, Members: []int{0, 1, 2, 3}},
		{ID: 3, Members: []int{0, 1, 2}},
	}
	if got := svc.AgreedViews(); !reflect.DeepEqual(got, want) {
		t.Fatalf("agreed views %v, want %v (cascade must serialise)", got, want)
	}
	// Every survivor installed the same total order, and each view at
	// one instant everywhere.
	for _, n := range []int{0, 1, 2} {
		if got := svc.History(n); !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d history %v diverges from agreed %v", n, got, want)
		}
	}
	instants := map[uint64]vtime.Time{}
	for _, in := range svc.Installs {
		if prev, seen := instants[in.View.ID]; seen && prev != in.At {
			t.Fatalf("view %d installed at both %s and %s", in.View.ID, prev, in.At)
		}
		instants[in.View.ID] = in.At
	}
	// The cascade serialises: v3 installs strictly after v2.
	if instants[3] <= instants[2] {
		t.Fatalf("v3 at %s not after v2 at %s", instants[3], instants[2])
	}
}

// TestBlockedNodeCrashAndRecoveryStaysAMerge: a blocked minority node
// that crashes and recovers while still partitioned is blocked again
// on recovery — its eventual re-admission is still counted as a merge
// and its blocked time spans both alive segments.
func TestBlockedNodeCrashAndRecoveryStaysAMerge(t *testing.T) {
	r := rig(t, 3, 1)
	r.svc.Start()
	r.net.PartitionAt(vtime.Time(40*ms), []int{0}, []int{1, 2})
	fault.CrashAt(r.eng, r.net, 0, vtime.Time(80*ms), vtime.Time(120*ms))
	r.net.HealAt(vtime.Time(150 * ms))
	r.eng.Run(vtime.Time(300 * ms))

	if got := viewIDs(r.svc.History(0)); !reflect.DeepEqual(got, []uint64{1, 3}) {
		t.Fatalf("minority history %v, want [1 3]", got)
	}
	if len(r.svc.Merges) != 1 || !reflect.DeepEqual(r.svc.Merges[0].Readmitted, []int{0}) {
		t.Fatalf("merges %+v, want the re-admission counted as a merge", r.svc.Merges)
	}
	// Blocked for ~(80-72)ms before the crash plus ~(152-120)ms after
	// recovery: well above either segment alone.
	if b := r.svc.BlockedTime(0); b < 30*ms {
		t.Fatalf("blocked time %s too small — recovery span not reopened", b)
	}
}

// TestHasQuorumLocalKnowledge: HasQuorum tracks each node's *own* view
// of reachability. Under a partition the minority member loses it as
// soon as its detector times out on the unreachable majority — the
// stale-view serving gate of the sharded request layer — and regains
// it after the heal; plain crash churn never costs the survivors
// their quorum.
func TestHasQuorumLocalKnowledge(t *testing.T) {
	r := rig(t, 3, 3)
	r.svc.Start()
	r.eng.Run(vtime.Time(30 * ms))
	for n := 0; n < 3; n++ {
		if !r.svc.HasQuorum(n) {
			t.Fatalf("node %d lacks quorum with full connectivity", n)
		}
	}
	// Segment node 0 off alone; its detector must reveal the loss.
	r.net.SetPartition([]int{0}, []int{1, 2})
	r.eng.Run(r.eng.Now().Add(60 * ms))
	if r.svc.HasQuorum(0) {
		t.Fatal("isolated minority member still claims a quorum")
	}
	if !r.svc.HasQuorum(1) || !r.svc.HasQuorum(2) {
		t.Fatal("majority side lost its quorum")
	}
	// Heal: heartbeats resume, rehabilitation restores the claim (the
	// merge view re-admits node 0, whose own view then holds again).
	r.net.Heal()
	r.eng.Run(r.eng.Now().Add(80 * ms))
	if !r.svc.HasQuorum(0) {
		t.Fatal("healed member never regained its quorum")
	}
	// A crash shrinks the live denominator instead of blocking the
	// survivors.
	fault.CrashAt(r.eng, r.net, 2, r.eng.Now().Add(1*ms), 0)
	r.eng.Run(r.eng.Now().Add(60 * ms))
	if !r.svc.HasQuorum(0) || !r.svc.HasQuorum(1) {
		t.Fatal("crash churn cost the survivors their quorum")
	}
}

// TestOnMergeFires: the merge hook fires exactly once per partition
// merge, with the re-admitted members.
func TestOnMergeFires(t *testing.T) {
	r := rig(t, 3, 5)
	var merges []Merge
	r.svc.OnMerge(func(m Merge) { merges = append(merges, m) })
	r.svc.Start()
	r.net.PartitionAt(vtime.Time(20*ms), []int{0}, []int{1, 2})
	r.net.HealAt(vtime.Time(120 * ms))
	r.eng.Run(vtime.Time(250 * ms))
	if len(merges) != 1 {
		t.Fatalf("merge hook fired %d times, want 1", len(merges))
	}
	if got := merges[0].Readmitted; len(got) != 1 || got[0] != 0 {
		t.Fatalf("merge re-admitted %v, want [0]", got)
	}
}
