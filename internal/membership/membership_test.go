package membership

import (
	"fmt"
	"reflect"
	"testing"

	"hades/internal/fault"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

type rigT struct {
	eng *simkern.Engine
	net *netsim.Network
	svc *Service
}

func rig(t *testing.T, n int, seed int64) rigT {
	t.Helper()
	eng := simkern.NewEngine(monitor.NewLog(0), seed)
	nodes := make([]int, n)
	for i := 0; i < n; i++ {
		eng.AddProcessor("n", 0)
		nodes[i] = i
	}
	net := netsim.New(eng, netsim.Config{WAtm: 5 * us, WProto: 5 * us, PrioNet: simkern.PrioMax - 2})
	net.ConnectAll(nodes, 50*us, 150*us)
	svc, err := New(eng, net, Config{Name: "g", Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return rigT{eng: eng, net: net, svc: svc}
}

func viewIDs(vs []View) []uint64 {
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = v.ID
	}
	return out
}

// TestInitialViewInstalledEverywhere: Start installs view 1 with the
// full universe at every node.
func TestInitialViewInstalledEverywhere(t *testing.T) {
	r := rig(t, 3, 1)
	r.svc.Start()
	for n := 0; n < 3; n++ {
		v := r.svc.CurrentView(n)
		if v.ID != 1 || !reflect.DeepEqual(v.Members, []int{0, 1, 2}) {
			t.Fatalf("node %d initial view %v", n, v)
		}
	}
}

// TestCrashInstallsAgreedViewWithinBound is the core acceptance test:
// a member crash leads every live member to install the *same* new
// view, at the *same* instant, within Service.Bound() of the crash.
func TestCrashInstallsAgreedViewWithinBound(t *testing.T) {
	r := rig(t, 4, 1)
	r.svc.Start()
	crashAt := vtime.Time(40 * ms)
	fault.CrashAt(r.eng, r.net, 2, crashAt, 0)
	r.eng.Run(vtime.Time(200 * ms))

	want := []View{
		{ID: 1, Members: []int{0, 1, 2, 3}},
		{ID: 2, Members: []int{0, 1, 3}},
	}
	var installAt vtime.Time
	for _, n := range []int{0, 1, 3} {
		got := r.svc.History(n)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d view history %v, want %v", n, got, want)
		}
	}
	// Same instant everywhere (view synchrony), latency within bound.
	for _, in := range r.svc.Installs {
		if in.View.ID != 2 {
			continue
		}
		if installAt == 0 {
			installAt = in.At
		}
		if in.At != installAt {
			t.Fatalf("install instants differ: %s vs %s", in.At, installAt)
		}
		if lat := in.At.Sub(crashAt); lat > r.svc.Bound() {
			t.Fatalf("crash-to-install latency %s above bound %s", lat, r.svc.Bound())
		}
		if in.Latency > r.svc.AgreementBound() {
			t.Fatalf("suspicion-to-install latency %s above agreement bound %s", in.Latency, r.svc.AgreementBound())
		}
	}
	if installAt == 0 {
		t.Fatal("no installs of view 2 recorded")
	}
	// The crashed node must not have installed view 2.
	if got := viewIDs(r.svc.History(2)); !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("crashed node history %v", got)
	}
}

// TestRecoveredNodeRejoins: a crashed node that recovers is brought
// back by a join view change, and its history is a gap-free record of
// what it actually installed.
func TestRecoveredNodeRejoins(t *testing.T) {
	r := rig(t, 3, 1)
	r.svc.Start()
	fault.CrashAt(r.eng, r.net, 0, vtime.Time(40*ms), vtime.Time(120*ms))
	r.eng.Run(vtime.Time(300 * ms))

	want := []View{
		{ID: 1, Members: []int{0, 1, 2}},
		{ID: 2, Members: []int{1, 2}},
		{ID: 3, Members: []int{0, 1, 2}},
	}
	for _, n := range []int{1, 2} {
		if got := r.svc.History(n); !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d history %v, want %v", n, got, want)
		}
	}
	// The joiner installed the initial view and the join view only.
	if got := r.svc.History(0); !reflect.DeepEqual(got, []View{want[0], want[2]}) {
		t.Fatalf("joiner history %v", got)
	}
	if got := r.svc.AgreedViews(); !reflect.DeepEqual(got, want) {
		t.Fatalf("agreed sequence %v, want %v", got, want)
	}
}

// TestJoinRunsStateTransfer: registered state providers ship a
// snapshot from a live donor to the joiner after the join view.
func TestJoinRunsStateTransfer(t *testing.T) {
	r := rig(t, 3, 1)
	restored := map[int]any{}
	r.svc.RegisterState("counter", func(donor, joiner int) any {
		return fmt.Sprintf("state-of-n%d", donor)
	}, func(node int, data any) {
		restored[node] = data
	})
	r.svc.Start()
	fault.CrashAt(r.eng, r.net, 2, vtime.Time(40*ms), vtime.Time(120*ms))
	r.eng.Run(vtime.Time(300 * ms))

	if len(r.svc.Transfers) != 1 {
		t.Fatalf("transfers %+v, want exactly 1", r.svc.Transfers)
	}
	tr := r.svc.Transfers[0]
	if tr.To != 2 || tr.Key != "counter" {
		t.Fatalf("transfer %+v", tr)
	}
	if restored[2] != fmt.Sprintf("state-of-n%d", tr.From) {
		t.Fatalf("restored %v", restored)
	}
	if r.eng.Log().CountKind(monitor.KindStateTransfer) != 1 {
		t.Fatal("state transfer not recorded in the monitor log")
	}
}

// TestSequentialCrashesSerialise: two crashes produce two agreed view
// changes in a total order shared by the survivors.
func TestSequentialCrashesSerialise(t *testing.T) {
	r := rig(t, 4, 1)
	r.svc.Start()
	fault.CrashAt(r.eng, r.net, 3, vtime.Time(40*ms), 0)
	fault.CrashAt(r.eng, r.net, 2, vtime.Time(41*ms), 0)
	r.eng.Run(vtime.Time(300 * ms))

	agreed := r.svc.AgreedViews()
	last := agreed[len(agreed)-1]
	if !reflect.DeepEqual(last.Members, []int{0, 1}) {
		t.Fatalf("final view %v, want members [0 1] (agreed %v)", last, agreed)
	}
	for _, n := range []int{0, 1} {
		h := r.svc.History(n)
		if !reflect.DeepEqual(h, agreed) {
			t.Fatalf("node %d history %v diverges from agreed %v", n, h, agreed)
		}
	}
}

// TestDeterministicViewHistory: identical description + seed ⇒
// identical installs (node, view, instant); a different seed still
// agrees on the same membership sequence.
func TestDeterministicViewHistory(t *testing.T) {
	run := func(seed int64) []Install {
		r := rig(t, 4, seed)
		r.svc.Start()
		fault.CrashAt(r.eng, r.net, 1, vtime.Time(40*ms), vtime.Time(150*ms))
		r.eng.Run(vtime.Time(400 * ms))
		return r.svc.Installs
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different installs:\n%v\n%v", a, b)
	}
	c := run(8)
	// Membership agreement is seed-independent even though timing
	// (link delays) is not.
	seq := func(ins []Install) []string {
		var out []string
		seen := map[uint64]bool{}
		for _, in := range ins {
			if !seen[in.View.ID] {
				seen[in.View.ID] = true
				out = append(out, in.View.String())
			}
		}
		return out
	}
	if !reflect.DeepEqual(seq(a), seq(c)) {
		t.Fatalf("view sequences differ across seeds: %v vs %v", seq(a), seq(c))
	}
}

// TestOverlappingGroupsDoNotInterfere: two groups sharing nodes keep
// independent heartbeat traffic (scoped ports) — neither falsely
// ejects a live member of the other (regression: a shared heartbeat
// port let the later group's bindings steal the earlier's heartbeats).
func TestOverlappingGroupsDoNotInterfere(t *testing.T) {
	eng := simkern.NewEngine(monitor.NewLog(0), 1)
	nodes := []int{0, 1, 2, 3}
	for range nodes {
		eng.AddProcessor("n", 0)
	}
	net := netsim.New(eng, netsim.Config{WAtm: 5 * us, WProto: 5 * us, PrioNet: simkern.PrioMax - 2})
	net.ConnectAll(nodes, 50*us, 150*us)
	a, err := New(eng, net, Config{Name: "a", Nodes: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(eng, net, Config{Name: "b", Nodes: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	eng.Run(vtime.Time(300 * ms))
	if got := a.AgreedViews(); len(got) != 1 {
		t.Fatalf("group a changed views with no faults: %v", got)
	}
	if got := b.AgreedViews(); len(got) != 1 {
		t.Fatalf("group b changed views with no faults: %v", got)
	}
}

// TestValidation: config errors are rejected.
func TestValidation(t *testing.T) {
	eng := simkern.NewEngine(monitor.NewLog(0), 1)
	eng.AddProcessor("n", 0)
	eng.AddProcessor("n", 0)
	net := netsim.New(eng, netsim.Config{})
	net.ConnectAll([]int{0, 1}, 50*us, 150*us)
	if _, err := New(eng, net, Config{Name: "x", Nodes: []int{0}}); err == nil {
		t.Fatal("single-node group accepted")
	}
	if _, err := New(eng, net, Config{Name: "x", Nodes: []int{0, 63}}); err == nil {
		t.Fatal("node id 63 accepted (bitmask overflow)")
	}
	if _, err := New(eng, net, Config{Name: "x", Nodes: []int{0, 0}}); err == nil {
		t.Fatal("duplicate node id accepted")
	}
	if _, err := New(eng, net, Config{Name: "x", Nodes: []int{0, 1}, F: 2}); err == nil {
		t.Fatal("F >= n accepted")
	}
}
