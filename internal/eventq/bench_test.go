package eventq

import (
	"math/rand"
	"testing"

	"hades/internal/vtime"
)

func BenchmarkPushPop(b *testing.B) {
	var q Queue
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(vtime.Time(rng.Int63n(1000000)), ClassApp, nil)
		if q.Len() > 1024 {
			for q.Len() > 0 {
				q.Pop()
			}
		}
	}
}

func BenchmarkPushCancel(b *testing.B) {
	var q Queue
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := q.Push(vtime.Time(i), ClassApp, nil)
		q.Cancel(e)
	}
}

func BenchmarkTimerWheelPattern(b *testing.B) {
	// The dispatcher's common pattern: push a deadline timer, usually
	// cancel it before it fires, occasionally pop.
	var q Queue
	rng := rand.New(rand.NewSource(2))
	var pending []*Event
	for i := 0; i < b.N; i++ {
		pending = append(pending, q.Push(vtime.Time(i+rng.Intn(100)), ClassDispatch, nil))
		if len(pending) > 64 {
			for _, e := range pending[:32] {
				q.Cancel(e)
			}
			pending = pending[32:]
			for q.Len() > 32 {
				q.Pop()
			}
		}
	}
}
