package eventq

import (
	"math/rand"
	"testing"

	"hades/internal/vtime"
)

func BenchmarkPushPop(b *testing.B) {
	var q Queue
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(vtime.Time(rng.Int63n(1000000)), ClassApp, nil)
		if q.Len() > 1024 {
			for q.Len() > 0 {
				q.Pop()
			}
		}
	}
}

func BenchmarkPushCancel(b *testing.B) {
	var q Queue
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := q.Push(vtime.Time(i), ClassApp, nil)
		q.Cancel(e)
	}
}

// BenchmarkCancelHeavyLargeHeap is the dispatcher's worst case for
// eager cancellation: a large standing heap of watchdog timers
// (deadline monitors, omission timeouts) where nearly every timer is
// cancelled — from a random heap position — before it fires. Lazy
// mark-dead cancellation makes each Cancel O(1) instead of an
// O(log n) remove-and-sift against the full heap.
func BenchmarkCancelHeavyLargeHeap(b *testing.B) {
	const batch = 4096
	var q Queue
	rng := rand.New(rand.NewSource(3))
	events := make([]*Event, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for j := range events {
			events[j] = q.Push(vtime.Time(rng.Int63n(1<<40)), ClassDispatch, nil)
		}
		// 31 of 32 watchdogs are disarmed before firing, from random
		// positions deep in the heap; the survivors then fire in order.
		for j, e := range events {
			if j%32 != 0 {
				q.Cancel(e)
			}
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}

func BenchmarkTimerWheelPattern(b *testing.B) {
	// The dispatcher's common pattern: push a deadline timer, usually
	// cancel it before it fires, occasionally pop.
	var q Queue
	rng := rand.New(rand.NewSource(2))
	var pending []*Event
	for i := 0; i < b.N; i++ {
		pending = append(pending, q.Push(vtime.Time(i+rng.Intn(100)), ClassDispatch, nil))
		if len(pending) > 64 {
			for _, e := range pending[:32] {
				q.Cancel(e)
			}
			pending = pending[32:]
			for q.Len() > 32 {
				q.Pop()
			}
		}
	}
}
