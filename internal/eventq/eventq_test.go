package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hades/internal/vtime"
)

func TestPopOrder(t *testing.T) {
	var q Queue
	var got []int
	q.Push(30, ClassApp, func() { got = append(got, 3) })
	q.Push(10, ClassApp, func() { got = append(got, 1) })
	q.Push(20, ClassApp, func() { got = append(got, 2) })
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestClassOrderingAtSameInstant(t *testing.T) {
	var q Queue
	var got []string
	q.Push(10, ClassApp, func() { got = append(got, "app") })
	q.Push(10, ClassInterrupt, func() { got = append(got, "irq") })
	q.Push(10, ClassDispatch, func() { got = append(got, "disp") })
	q.Push(10, ClassKernel, func() { got = append(got, "kern") })
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	want := []string{"irq", "kern", "disp", "app"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("class order %v, want %v", got, want)
		}
	}
}

func TestFIFOWithinClass(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		n := i
		q.Push(5, ClassApp, func() { got = append(got, n) })
	}
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	e := q.Push(10, ClassApp, func() { fired = true })
	q.Cancel(e)
	if q.Len() != 0 {
		t.Fatalf("Len = %d after cancel", q.Len())
	}
	if !e.Cancelled() {
		t.Error("event not marked cancelled")
	}
	// Double-cancel is a no-op.
	q.Cancel(e)
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelMiddle(t *testing.T) {
	var q Queue
	var got []int
	q.Push(1, ClassApp, func() { got = append(got, 1) })
	e2 := q.Push(2, ClassApp, func() { got = append(got, 2) })
	q.Push(3, ClassApp, func() { got = append(got, 3) })
	q.Cancel(e2)
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestPeek(t *testing.T) {
	var q Queue
	if q.Peek() != nil {
		t.Error("Peek on empty queue should be nil")
	}
	q.Push(5, ClassApp, nil)
	q.Push(3, ClassApp, nil)
	if q.Peek().At != 3 {
		t.Errorf("Peek.At = %d, want 3", q.Peek().At)
	}
	if q.Len() != 2 {
		t.Error("Peek must not remove")
	}
}

// Property: popping yields events in nondecreasing (At, Class, seq)
// order regardless of insertion or cancellation pattern.
func TestHeapOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var events []*Event
		for i := 0; i < int(n)+1; i++ {
			at := vtime.Time(rng.Int63n(100))
			cl := Class(1 + rng.Intn(5))
			events = append(events, q.Push(at, cl, nil))
		}
		// Cancel a random third.
		for _, e := range events {
			if rng.Intn(3) == 0 {
				q.Cancel(e)
			}
		}
		var popped []*Event
		for q.Len() > 0 {
			popped = append(popped, q.Pop())
		}
		ok := sort.SliceIsSorted(popped, func(i, j int) bool {
			a, b := popped[i], popped[j]
			if a.At != b.At {
				return a.At < b.At
			}
			if a.Class != b.Class {
				return a.Class < b.Class
			}
			return a.seq < b.seq
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cancelled events never surface; non-cancelled all do.
func TestCancelCompleteness(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		cancelled := make(map[*Event]bool)
		var all []*Event
		for i := 0; i < int(n)+2; i++ {
			e := q.Push(vtime.Time(rng.Int63n(50)), ClassApp, nil)
			all = append(all, e)
		}
		for i, e := range all {
			if i%2 == 0 {
				q.Cancel(e)
				cancelled[e] = true
			}
		}
		seen := make(map[*Event]bool)
		for q.Len() > 0 {
			seen[q.Pop()] = true
		}
		for _, e := range all {
			if cancelled[e] && seen[e] {
				return false
			}
			if !cancelled[e] && !seen[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
