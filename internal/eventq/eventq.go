// Package eventq provides the deterministic event queue at the heart of
// the HADES discrete-event engine.
//
// Determinism matters more here than in a typical simulator: the paper's
// predictability argument ("an action is predictable if its results and
// its duration can be foreseen before it is executed", §2.2.2) is
// reproduced as the property that a run is a pure function of its inputs.
// Events at equal instants are therefore ordered by an explicit class
// (interrupts before dispatching before application work) and then by
// insertion sequence, never by map iteration or goroutine scheduling.
package eventq

import "hades/internal/vtime"

// Class orders events that share the same instant. Lower runs first.
type Class uint8

// Event classes, from most to least urgent at an instant.
const (
	// ClassInterrupt is for hardware interrupt arrivals (clock tick,
	// network card): they preempt everything, as in the paper where
	// kernel activities run at prio_max.
	ClassInterrupt Class = iota + 1
	// ClassKernel is for kernel-internal completions (end of an
	// interrupt handler's CPU segment, timer expiry bookkeeping).
	ClassKernel
	// ClassDispatch is for dispatcher decisions: activations,
	// thread completions, notification processing.
	ClassDispatch
	// ClassNetwork is for message deliveries crossing links.
	ClassNetwork
	// ClassApp is for application-visible callbacks and trace points.
	ClassApp
)

// Event is a scheduled callback. Fire is invoked exactly once when the
// engine reaches the event's instant, unless the event was cancelled.
type Event struct {
	At    vtime.Time
	Class Class
	Fire  func()

	seq   uint64
	index int // heap index, -1 once popped or cancelled
}

// Cancelled reports whether Cancel was called on the event (or it fired).
func (e *Event) Cancelled() bool { return e.index == -1 }

// Queue is a deterministic min-heap of events. The zero value is ready to
// use.
type Queue struct {
	heap []*Event
	seq  uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules fire at instant at with the given class and returns a
// handle that can cancel it.
func (q *Queue) Push(at vtime.Time, class Class, fire func()) *Event {
	q.seq++
	e := &Event{At: at, Class: class, Fire: fire, seq: q.seq}
	q.heap = append(q.heap, e)
	e.index = len(q.heap) - 1
	q.up(e.index)
	return e
}

// Cancel removes e from the queue. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	i := e.index
	last := len(q.heap) - 1
	q.swap(i, last)
	q.heap = q.heap[:last]
	e.index = -1
	if i < last {
		q.down(i)
		q.up(i)
	}
}

// Peek returns the next event without removing it, or nil if empty.
func (q *Queue) Peek() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Pop removes and returns the next event, or nil if empty.
func (q *Queue) Pop() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	e := q.heap[0]
	q.Cancel(e)
	return e
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.less(left, smallest) {
			smallest = left
		}
		if right < n && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
