// Package eventq provides the deterministic event queue at the heart of
// the HADES discrete-event engine.
//
// Determinism matters more here than in a typical simulator: the paper's
// predictability argument ("an action is predictable if its results and
// its duration can be foreseen before it is executed", §2.2.2) is
// reproduced as the property that a run is a pure function of its inputs.
// Events at equal instants are therefore ordered by an explicit class
// (interrupts before dispatching before application work) and then by
// insertion sequence, never by map iteration or goroutine scheduling.
package eventq

import "hades/internal/vtime"

// Class orders events that share the same instant. Lower runs first.
type Class uint8

// Event classes, from most to least urgent at an instant.
const (
	// ClassInterrupt is for hardware interrupt arrivals (clock tick,
	// network card): they preempt everything, as in the paper where
	// kernel activities run at prio_max.
	ClassInterrupt Class = iota + 1
	// ClassKernel is for kernel-internal completions (end of an
	// interrupt handler's CPU segment, timer expiry bookkeeping).
	ClassKernel
	// ClassDispatch is for dispatcher decisions: activations,
	// thread completions, notification processing.
	ClassDispatch
	// ClassNetwork is for message deliveries crossing links.
	ClassNetwork
	// ClassApp is for application-visible callbacks and trace points.
	ClassApp
)

// Event is a scheduled callback. Fire is invoked exactly once when the
// engine reaches the event's instant, unless the event was cancelled.
type Event struct {
	At    vtime.Time
	Class Class
	Fire  func()

	seq   uint64
	index int  // heap index, -1 once popped or compacted away
	dead  bool // lazily cancelled, possibly still occupying a heap slot
}

// Cancelled reports whether Cancel was called on the event (or it fired).
func (e *Event) Cancelled() bool { return e.dead || e.index == -1 }

// Queue is a deterministic min-heap of events. The zero value is ready to
// use.
//
// Cancellation is lazy: Cancel marks the event dead in O(1) and the
// dead slot is reclaimed when it surfaces at the root (or by a bulk
// compaction once dead slots dominate). Dispatcher workloads cancel
// most of the timers they set — deadline watchdogs, omission timeouts —
// usually while the timer sits deep in a large heap, where an eager
// remove-and-sift costs O(log n) each.
type Queue struct {
	heap []*Event
	seq  uint64
	dead int // cancelled events still occupying heap slots
}

// Len returns the number of pending (non-cancelled) events.
func (q *Queue) Len() int { return len(q.heap) - q.dead }

// Push schedules fire at instant at with the given class and returns a
// handle that can cancel it.
func (q *Queue) Push(at vtime.Time, class Class, fire func()) *Event {
	q.seq++
	e := &Event{At: at, Class: class, Fire: fire, seq: q.seq}
	q.heap = append(q.heap, e)
	e.index = len(q.heap) - 1
	q.up(e.index)
	return e
}

// Cancel marks e dead; its heap slot is reclaimed lazily. Cancelling
// an already-fired or already-cancelled event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.dead {
		return
	}
	e.dead = true
	e.Fire = nil // release the closure now, not at surfacing time
	q.dead++
	// Bound the garbage: once dead slots dominate a non-trivial heap,
	// rebuild it from the live events (amortised O(1) per cancel).
	if q.dead > 64 && q.dead > len(q.heap)/2 {
		q.compact()
	}
}

// compact rebuilds the heap from the live events only. Ordering stays
// deterministic: the heap invariant is restored under the same total
// (At, Class, seq) order.
func (q *Queue) compact() {
	live := q.heap[:0]
	for _, e := range q.heap {
		if e.dead {
			e.index = -1
			continue
		}
		live = append(live, e)
	}
	// Clear trailing slots so compacted events are not retained.
	for i := len(live); i < len(q.heap); i++ {
		q.heap[i] = nil
	}
	q.heap = live
	q.dead = 0
	for i := range q.heap {
		q.heap[i].index = i
	}
	for i := len(q.heap)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

// skipDead discards dead events surfacing at the root.
func (q *Queue) skipDead() {
	for len(q.heap) > 0 && q.heap[0].dead {
		q.removeRoot()
		q.dead--
	}
}

// removeRoot detaches the root event from the heap.
func (q *Queue) removeRoot() *Event {
	e := q.heap[0]
	last := len(q.heap) - 1
	q.swap(0, last)
	q.heap[last] = nil
	q.heap = q.heap[:last]
	e.index = -1
	if last > 0 {
		q.down(0)
	}
	return e
}

// Peek returns the next live event without removing it, or nil if
// empty.
func (q *Queue) Peek() *Event {
	q.skipDead()
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Pop removes and returns the next live event, or nil if empty.
func (q *Queue) Pop() *Event {
	q.skipDead()
	if len(q.heap) == 0 {
		return nil
	}
	return q.removeRoot()
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.less(left, smallest) {
			smallest = left
		}
		if right < n && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
