package monitor

import (
	"strings"
	"testing"

	"hades/internal/vtime"
)

func TestRecordAndFilter(t *testing.T) {
	l := NewLog(0)
	l.Record(Event{At: 1, Kind: KindActivation, Node: 0, Subject: "t1"})
	l.Record(Event{At: 2, Kind: KindDeadlineMiss, Node: 0, Subject: "t1"})
	l.Record(Event{At: 3, Kind: KindThreadFinish, Node: 1, Subject: "t2"})
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if got := len(l.ByKind(KindActivation, KindThreadFinish)); got != 2 {
		t.Fatalf("ByKind = %d", got)
	}
	v := l.Violations()
	if len(v) != 1 || v[0].Kind != KindDeadlineMiss {
		t.Fatalf("Violations = %v", v)
	}
	if l.CountKind(KindActivation) != 1 {
		t.Fatal("CountKind wrong")
	}
}

// TestLogLimit pins head-mode semantics: the first limit events are
// retained, the tail is dropped and counted.
func TestLogLimit(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 5; i++ {
		l.Record(Event{At: vtime.Time(i), Kind: KindActivation})
	}
	if l.Len() != 2 || l.Dropped() != 3 {
		t.Fatalf("Len=%d Dropped=%d", l.Len(), l.Dropped())
	}
	if ev := l.Events(); ev[0].At != 0 || ev[1].At != 1 {
		t.Fatalf("head mode retained %v, want the first two", ev)
	}
	if l.Ring() {
		t.Fatal("NewLog must not be ring mode")
	}
}

// TestRingLogRetainsRecent: ring mode keeps the most recent limit
// events in chronological order and counts the churned-out ones.
func TestRingLogRetainsRecent(t *testing.T) {
	l := NewRingLog(3)
	for i := 0; i < 8; i++ {
		l.Record(Event{At: vtime.Time(i), Kind: KindActivation})
	}
	if !l.Ring() || l.Len() != 3 || l.Dropped() != 5 {
		t.Fatalf("Ring=%v Len=%d Dropped=%d", l.Ring(), l.Len(), l.Dropped())
	}
	ev := l.Events()
	for i, e := range ev {
		if e.At != vtime.Time(5+i) {
			t.Fatalf("ring retained %v, want the last three in order", ev)
		}
	}
	var sb strings.Builder
	if err := l.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "5 events dropped") {
		t.Fatalf("trace missing drop note: %q", sb.String())
	}
}

// TestRingLogKeepsViolations: violations survive any amount of ring
// churn and are not counted as dropped when overwritten.
func TestRingLogKeepsViolations(t *testing.T) {
	l := NewRingLog(2)
	l.Record(Event{At: 1, Kind: KindDeadlineMiss, Subject: "early"})
	for i := 0; i < 10; i++ {
		l.Record(Event{At: vtime.Time(10 + i), Kind: KindActivation})
	}
	l.Record(Event{At: 99, Kind: KindNetworkOmission, Subject: "late"})
	v := l.Violations()
	if len(v) != 2 || v[0].Subject != "early" || v[1].Subject != "late" {
		t.Fatalf("Violations = %v, want the churned-out miss plus the late omission", v)
	}
	// Ten overwrites pushed events out of the 2-slot ring: the one
	// that evicted the violation must not count as a drop.
	if l.Dropped() != 9 {
		t.Fatalf("Dropped = %d, want 9 (violation eviction not counted)", l.Dropped())
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Record(Event{})
	l.Recordf(0, KindActivation, 0, "x", "y")
	if l.Len() != 0 || l.Dropped() != 0 || l.Events() != nil {
		t.Fatal("nil log must be inert")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: vtime.Time(1500), Kind: KindDeadlineMiss, Node: 2, Subject: "taskX", Detail: "late"}
	s := e.String()
	for _, want := range []string{"1.5us", "n2", "DEADLINE-MISS", "taskX", "late"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
}

func TestViolationClassification(t *testing.T) {
	violations := []Kind{KindDeadlineMiss, KindArrivalLawViolation, KindEarlyTermination,
		KindOrphanThread, KindDeadlock, KindNetworkOmission, KindLatestStartMiss}
	for _, k := range violations {
		if !k.IsViolation() {
			t.Errorf("%s not classified as violation", k)
		}
	}
	normals := []Kind{KindActivation, KindThreadStart, KindNotification, KindCheckpoint}
	for _, k := range normals {
		if k.IsViolation() {
			t.Errorf("%s wrongly classified as violation", k)
		}
	}
}

func TestWriteTraceAndSummary(t *testing.T) {
	l := NewLog(0)
	l.Recordf(10, KindActivation, 0, "a", "")
	l.Recordf(20, KindActivation, 0, "b", "")
	l.Recordf(30, KindThreadFinish, 0, "a", "ok")
	var sb strings.Builder
	if err := l.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != 3 {
		t.Fatalf("trace lines = %d", got)
	}
	sum := l.Summary()
	if !strings.Contains(sum, "Atv") || !strings.Contains(sum, "2") {
		t.Fatalf("summary %q", sum)
	}
}

func TestKindStringsAreUnique(t *testing.T) {
	seen := map[string]Kind{}
	for k := range kindNames {
		s := k.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share name %q", prev, k, s)
		}
		seen[s] = k
	}
}
