package monitor

import (
	"strings"
	"testing"

	"hades/internal/vtime"
)

func ganttLog() *Log {
	l := NewLog(0)
	// A runs 0–10, preempted; B runs 10–20; A resumes 20–30.
	l.Record(Event{At: 0, Kind: KindThreadStart, Node: 0, Subject: "A"})
	l.Record(Event{At: 10, Kind: KindThreadPreempt, Node: 0, Subject: "A"})
	l.Record(Event{At: 10, Kind: KindThreadStart, Node: 0, Subject: "B"})
	l.Record(Event{At: 20, Kind: KindThreadFinish, Node: 0, Subject: "B"})
	l.Record(Event{At: 20, Kind: KindThreadResume, Node: 0, Subject: "A"})
	l.Record(Event{At: 30, Kind: KindThreadFinish, Node: 0, Subject: "A"})
	return l
}

func TestGanttRendersRows(t *testing.T) {
	g := ganttLog().Gantt(0, 0, 30, 30)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 3 { // header + A + B
		t.Fatalf("lines %d:\n%s", len(lines), g)
	}
	var rowA, rowB string
	for _, ln := range lines[1:] {
		if strings.HasPrefix(ln, "A") {
			rowA = ln
		}
		if strings.HasPrefix(ln, "B") {
			rowB = ln
		}
	}
	if rowA == "" || rowB == "" {
		t.Fatalf("missing rows:\n%s", g)
	}
	// A occupies the first and last thirds, B the middle.
	aCells := rowA[strings.Index(rowA, "|")+1:]
	bCells := rowB[strings.Index(rowB, "|")+1:]
	if aCells[0] != '#' || aCells[29] != '#' {
		t.Errorf("A edges wrong: %q", aCells)
	}
	if aCells[15] == '#' {
		t.Errorf("A marked during B's slot: %q", aCells)
	}
	if bCells[15] != '#' {
		t.Errorf("B middle missing: %q", bCells)
	}
}

func TestGanttCPUNeverDoubleBooked(t *testing.T) {
	// At every instant at most one thread occupies the CPU.
	l := ganttLog()
	ivs := l.intervals(0)
	for i, a := range ivs {
		for _, b := range ivs[i+1:] {
			if a.from < b.to && b.from < a.to {
				t.Fatalf("overlap: %+v and %+v", a, b)
			}
		}
	}
}

func TestGanttEmptyNode(t *testing.T) {
	if g := ganttLog().Gantt(5, 0, 30, 10); !strings.Contains(g, "no execution") {
		t.Fatalf("empty node rendered: %q", g)
	}
}

func TestGanttAutoWindow(t *testing.T) {
	g := ganttLog().Gantt(0, 0, 0, 20) // to <= from: derive from data
	if !strings.Contains(g, "#") {
		t.Fatalf("auto window empty:\n%s", g)
	}
	_ = vtime.Time(0)
}
