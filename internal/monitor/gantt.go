package monitor

import (
	"fmt"
	"sort"
	"strings"

	"hades/internal/vtime"
)

// interval is one contiguous CPU occupancy of a thread.
type interval struct {
	thread string
	from   vtime.Time
	to     vtime.Time
}

// Gantt renders per-thread CPU occupancy on one node as a text chart —
// the visual shape of Figure 2. Each row is one thread; each column
// cell covers (to−from)/width of virtual time; '█' marks occupancy.
// Threads are ordered by first execution.
func (l *Log) Gantt(node int, from, to vtime.Time, width int) string {
	if width <= 0 {
		width = 72
	}
	intervals := l.intervals(node)
	if len(intervals) == 0 {
		return "(no execution on node)\n"
	}
	if to <= from {
		from, to = intervals[0].from, intervals[len(intervals)-1].to
	}
	span := to.Sub(from)
	if span <= 0 {
		return "(empty window)\n"
	}

	var order []string
	rows := map[string][]interval{}
	for _, iv := range intervals {
		if iv.to <= from || iv.from >= to {
			continue
		}
		if _, seen := rows[iv.thread]; !seen {
			order = append(order, iv.thread)
		}
		rows[iv.thread] = append(rows[iv.thread], iv)
	}

	nameW := 0
	for _, n := range order {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s %s .. %s (node %d)\n", nameW, "", from, to, node)
	for _, name := range order {
		cells := make([]byte, width)
		for i := range cells {
			cells[i] = ' '
		}
		for _, iv := range rows[name] {
			lo, hi := iv.from, iv.to
			if lo < from {
				lo = from
			}
			if hi > to {
				hi = to
			}
			c0 := int(int64(lo.Sub(from)) * int64(width) / int64(span))
			c1 := int(int64(hi.Sub(from)) * int64(width) / int64(span))
			if c1 == c0 {
				c1 = c0 + 1
			}
			for c := c0; c < c1 && c < width; c++ {
				cells[c] = '#'
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, name, cells)
	}
	return b.String()
}

// intervals reconstructs execution intervals from Start/Resume →
// Preempt/Trm event pairs on one node.
func (l *Log) intervals(node int) []interval {
	running := map[string]vtime.Time{}
	var out []interval
	for _, e := range l.events {
		if e.Node != node {
			continue
		}
		switch e.Kind {
		case KindThreadStart, KindThreadResume:
			if _, on := running[e.Subject]; !on {
				running[e.Subject] = e.At
			}
		case KindThreadPreempt, KindThreadFinish:
			if since, on := running[e.Subject]; on {
				delete(running, e.Subject)
				if e.At > since {
					out = append(out, interval{thread: e.Subject, from: since, to: e.At})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].from < out[j].from })
	return out
}
