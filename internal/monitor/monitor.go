// Package monitor implements the HADES monitoring service.
//
// The paper makes monitoring a first-class dispatcher duty (§3.2.1): the
// dispatcher observes thread execution to detect deadline violations,
// arrival-law violations, early terminations, orphan threads, deadlocks
// and network omission failures. This package provides the event log that
// records those observations, the violation records surfaced to
// applications, and the trace renderer used to regenerate Figure 2.
package monitor

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hades/internal/vtime"
)

// Kind identifies the kind of a logged event.
type Kind uint8

// Event kinds. Scheduling events mirror the paper's vocabulary
// (activation Atv, termination Trm, resource access Rac / release Rre);
// violation events mirror the monitoring list of §3.2.1.
const (
	KindActivation Kind = iota + 1
	KindThreadReady
	KindThreadStart
	KindThreadPreempt
	KindThreadResume
	KindThreadFinish
	KindTaskComplete
	KindNotification
	KindPriorityChange
	KindEarliestChange
	KindResourceGrant
	KindResourceRelease
	KindCondSet
	KindCondClear
	KindMessageSend
	KindMessageRecv
	KindMessageDrop
	KindInterrupt
	KindContextSwitch
	KindSchedulerRun

	// Violations (monitoring detections).
	KindDeadlineMiss
	KindArrivalLawViolation
	KindEarlyTermination
	KindOrphanThread
	KindDeadlock
	KindNetworkOmission
	KindLatestStartMiss

	// Service-level events.
	KindFailureInjected
	KindFailureDetected
	KindCheckpoint
	KindFailover
	KindClockSyncRound
	KindDelivery
	KindRehabilitation
	KindViewChange
	KindStateTransfer
	KindPartition
	KindQuorumBlocked
	KindMerge
	KindFlush

	// Sharded data-plane events (request routing over replication
	// groups): redirects to the owning primary, client retries,
	// queued-request resubmission after a merge view, and router
	// ownership republication on view changes.
	KindRedirect
	KindRetry
	KindResubmit
	KindRepublish

	// Transaction events (cross-shard atomic commitment): participant
	// prepares, coordinator decisions, lock-queue waits and
	// deadline/conflict aborts.
	KindPrepare
	KindDecide
	KindLockWait
	KindTxnAbort

	// Session-engine throughput events (batched, pipelined
	// submissions): batch emission, flush-policy firings (full batch or
	// flush-interval timer), and pipeline-depth stalls. KindFlush above
	// is the view-synchrony flush; these are the batcher's.
	KindBatch
	KindBatchFlush
	KindPipeline

	// Metrics-plane events: a declarative SLO rule crossing into breach
	// and clearing again (the onset/clear instants of a violation
	// window, emitted by the per-interval probe engine).
	KindSLOBreach
	KindSLOClear

	// Pub/sub data-distribution events: a crashed subscriber's backlog
	// dropped at its view eviction, and durable-history replay to a
	// late joiner or across a partition-merge view.
	KindSampleDrop
	KindCatchUp
)

var kindNames = map[Kind]string{
	KindActivation:          "Atv",
	KindThreadReady:         "Ready",
	KindThreadStart:         "Start",
	KindThreadPreempt:       "Preempt",
	KindThreadResume:        "Resume",
	KindThreadFinish:        "Trm",
	KindTaskComplete:        "TaskDone",
	KindNotification:        "Notify",
	KindPriorityChange:      "SetPrio",
	KindEarliestChange:      "SetEarliest",
	KindResourceGrant:       "Rac",
	KindResourceRelease:     "Rre",
	KindCondSet:             "CondSet",
	KindCondClear:           "CondClear",
	KindMessageSend:         "Send",
	KindMessageRecv:         "Recv",
	KindMessageDrop:         "Drop",
	KindInterrupt:           "IRQ",
	KindContextSwitch:       "CtxSw",
	KindSchedulerRun:        "SchedRun",
	KindDeadlineMiss:        "DEADLINE-MISS",
	KindArrivalLawViolation: "ARRIVAL-VIOLATION",
	KindEarlyTermination:    "EARLY-TERM",
	KindOrphanThread:        "ORPHAN",
	KindDeadlock:            "DEADLOCK",
	KindNetworkOmission:     "NET-OMISSION",
	KindLatestStartMiss:     "LATEST-MISS",
	KindFailureInjected:     "FAIL-INJECT",
	KindFailureDetected:     "FAIL-DETECT",
	KindCheckpoint:          "Checkpoint",
	KindFailover:            "Failover",
	KindClockSyncRound:      "ClockSync",
	KindDelivery:            "Deliver",
	KindRehabilitation:      "Rehab",
	KindViewChange:          "ViewInstall",
	KindStateTransfer:       "StateXfer",
	KindPartition:           "Partition",
	KindQuorumBlocked:       "QuorumBlock",
	KindMerge:               "ViewMerge",
	KindFlush:               "Flush",
	KindRedirect:            "Redirect",
	KindRetry:               "Retry",
	KindResubmit:            "Resubmit",
	KindRepublish:           "Republish",
	KindPrepare:             "Prepare",
	KindDecide:              "Decide",
	KindLockWait:            "LockWait",
	KindTxnAbort:            "TxnAbort",
	KindBatch:               "Batch",
	KindBatchFlush:          "BatchFlush",
	KindPipeline:            "Pipeline",
	KindSLOBreach:           "SLO-BREACH",
	KindSLOClear:            "SLOClear",
	KindSampleDrop:          "SampleDrop",
	KindCatchUp:             "CatchUp",
}

// String returns the short mnemonic for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsViolation reports whether the kind records a detected property
// violation rather than a normal scheduling event.
func (k Kind) IsViolation() bool {
	switch k {
	case KindDeadlineMiss, KindArrivalLawViolation, KindEarlyTermination,
		KindOrphanThread, KindDeadlock, KindNetworkOmission, KindLatestStartMiss:
		return true
	}
	return false
}

// Event is one record in the log.
type Event struct {
	At      vtime.Time
	Kind    Kind
	Node    int    // processor id, -1 if not node-specific
	Subject string // task/thread/resource name
	Detail  string // free-form detail
}

// String renders the event as one trace line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%12s]", e.At)
	if e.Node >= 0 {
		fmt.Fprintf(&b, " n%d", e.Node)
	}
	fmt.Fprintf(&b, " %-18s %s", e.Kind, e.Subject)
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	return b.String()
}

// Log collects events in order. It is not safe for concurrent use: a HADES
// run is single-threaded by design (determinism), so the log needs no lock.
//
// Two bounded modes exist. Head mode (NewLog) keeps the *first* limit
// events — right for regenerating a figure from a run's opening, wrong
// for diagnosing a long run, where violations cluster at the end and
// the interesting tail is exactly what gets dropped. Ring mode
// (NewRingLog) keeps the most *recent* limit events, and violations
// are additionally retained forever regardless of the ring's churn.
type Log struct {
	events   []Event
	capLimit int // 0 = unlimited
	dropped  int
	ring     bool
	start    int     // ring mode: index of the oldest retained event
	viol     []Event // ring mode: every violation, never dropped
}

// NewLog returns an empty log. limit, when positive, bounds memory by
// keeping only the first limit events (the count of dropped events is
// still tracked).
func NewLog(limit int) *Log { return &Log{capLimit: limit} }

// NewRingLog returns an empty ring-mode log: limit, when positive,
// bounds memory by keeping the most recent limit events; violations
// are always retained (Violations stays complete however far the ring
// has churned). The drop counter counts non-violation events pushed
// out of the ring.
func NewRingLog(limit int) *Log { return &Log{capLimit: limit, ring: true} }

// Ring reports whether the log retains the most recent events (ring
// mode) rather than the first.
func (l *Log) Ring() bool { return l != nil && l.ring }

// Record appends an event.
func (l *Log) Record(e Event) {
	if l == nil {
		return
	}
	if l.ring {
		if e.Kind.IsViolation() {
			l.viol = append(l.viol, e)
		}
		if l.capLimit > 0 && len(l.events) >= l.capLimit {
			if !l.events[l.start].Kind.IsViolation() {
				l.dropped++
			}
			l.events[l.start] = e
			l.start = (l.start + 1) % l.capLimit
			return
		}
		l.events = append(l.events, e)
		return
	}
	if l.capLimit > 0 && len(l.events) >= l.capLimit {
		l.dropped++
		return
	}
	l.events = append(l.events, e)
}

// Recordf appends an event built from the arguments.
func (l *Log) Recordf(at vtime.Time, kind Kind, node int, subject, format string, args ...any) {
	if l == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	l.Record(Event{At: at, Kind: kind, Node: node, Subject: subject, Detail: detail})
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Dropped returns how many events were discarded due to the limit.
func (l *Log) Dropped() int {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Events returns the retained events in chronological order. The
// returned slice is a copy.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, 0, len(l.events))
	l.each(func(e Event) { out = append(out, e) })
	return out
}

// each visits retained events in chronological order (unwinding the
// ring when it has wrapped).
func (l *Log) each(visit func(Event)) {
	if l.ring && l.start > 0 {
		for _, e := range l.events[l.start:] {
			visit(e)
		}
		for _, e := range l.events[:l.start] {
			visit(e)
		}
		return
	}
	for _, e := range l.events {
		visit(e)
	}
}

// Filter returns the events matching pred, in order.
func (l *Log) Filter(pred func(Event) bool) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	l.each(func(e Event) {
		if pred(e) {
			out = append(out, e)
		}
	})
	return out
}

// ByKind returns the events of the given kinds, in order.
func (l *Log) ByKind(kinds ...Kind) []Event {
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	return l.Filter(func(e Event) bool { return want[e.Kind] })
}

// Violations returns all recorded property violations. In ring mode
// the list is complete even when the ring has churned past them.
func (l *Log) Violations() []Event {
	if l == nil {
		return nil
	}
	if l.ring {
		out := make([]Event, len(l.viol))
		copy(out, l.viol)
		return out
	}
	return l.Filter(func(e Event) bool { return e.Kind.IsViolation() })
}

// CountKind returns the number of events of kind k.
func (l *Log) CountKind(k Kind) int {
	n := 0
	for _, e := range l.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// WriteTrace writes every retained event to w in chronological order,
// one per line. In ring mode the drop note leads: the missing events
// precede the retained window.
func (l *Log) WriteTrace(w io.Writer) error {
	var err error
	note := func() {
		if l.dropped > 0 && err == nil {
			_, err = fmt.Fprintf(w, "... %d events dropped (log limit)\n", l.dropped)
		}
	}
	if l.ring {
		note()
	}
	l.each(func(e Event) {
		if err == nil {
			_, err = fmt.Fprintln(w, e.String())
		}
	})
	if !l.ring {
		note()
	}
	return err
}

// Summary aggregates the log into per-kind counts, rendered sorted by
// count descending then name, for stable output.
func (l *Log) Summary() string {
	counts := map[Kind]int{}
	for _, e := range l.events {
		counts[e.Kind]++
	}
	type kc struct {
		k Kind
		n int
	}
	all := make([]kc, 0, len(counts))
	for k, n := range counts {
		all = append(all, kc{k, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].k.String() < all[j].k.String()
	})
	var b strings.Builder
	for _, e := range all {
		fmt.Fprintf(&b, "%-18s %d\n", e.k, e.n)
	}
	return b.String()
}
