package pubsub

import (
	"fmt"
	"strings"
)

// Verify audits the plane's universal invariants — the properties that
// hold under every fault schedule:
//
//   - no subscriber ever recorded the same sample twice (dedup held);
//   - every delivered sample was actually published (no fabrication);
//   - every ack corresponds to a published sample;
//   - durable history rings never exceed their declared depth.
//
// Completeness (every published sample reaching every subscriber) is
// deliberately not universal — a partition can legitimately cost a
// best-effort subscriber samples, and a reliable subscriber outside
// the history window. CheckComplete asserts the strict contract for
// scenarios whose fault schedule permits it.
func (p *Plane) Verify() error {
	var errs []string
	for _, t := range p.order {
		pubBy := make(map[uint64]map[uint64]bool) // pub → published seqs
		for _, pub := range t.pubs {
			set := make(map[uint64]bool, len(pub.published))
			for _, s := range pub.published {
				set[s.Seq] = true
			}
			pubBy[pub.id] = set
		}
		for _, sub := range t.subs {
			seen := make(map[sampleKey]bool, len(sub.deliveries))
			for _, d := range sub.deliveries {
				k := d.key()
				if seen[k] {
					errs = append(errs, fmt.Sprintf("topic %q: subscriber %d delivered p%d#%d twice",
						t.name, sub.id, d.Pub, d.Seq))
					continue
				}
				seen[k] = true
				if set := pubBy[d.Pub]; set == nil || !set[d.Seq] {
					errs = append(errs, fmt.Sprintf("topic %q: subscriber %d delivered unpublished sample p%d#%d",
						t.name, sub.id, d.Pub, d.Seq))
				}
			}
		}
		acked := 0
		for _, pub := range t.pubs {
			acked += pub.acked
			if pub.acked > len(pub.published) {
				errs = append(errs, fmt.Sprintf("topic %q: publisher %d acked %d of %d published",
					t.name, pub.id, pub.acked, len(pub.published)))
			}
		}
		if acked != t.acked {
			errs = append(errs, fmt.Sprintf("topic %q: acked account mismatch (%d per-publisher vs %d topic)",
				t.name, acked, t.acked))
		}
		if t.gs != nil && t.qos.Durable {
			for _, node := range t.gs.ref.Nodes {
				if h := t.gs.hist[node][t.name]; len(h) > t.qos.HistoryDepth {
					errs = append(errs, fmt.Sprintf("topic %q: history at n%d holds %d > depth %d",
						t.name, node, len(h), t.qos.HistoryDepth))
				}
			}
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("pubsub: %d invariant violation(s):\n  %s", len(errs), strings.Join(errs, "\n  "))
	}
	return nil
}

// CheckComplete asserts one reliable topic's strict delivery contract
// — valid when no fault window could legitimately strand a subscriber
// (crash-and-recover schedules qualify; partitions that segment a
// subscriber do not):
//
//   - every publish was acked (the retry loop converged);
//   - every from-start subscriber received every published sample
//     exactly once;
//   - every late joiner received at least the owning primary's final
//     history ring (it converged to the last HistoryDepth samples).
func (p *Plane) CheckComplete(topic string) error {
	t := p.topics[topic]
	if t == nil {
		return fmt.Errorf("pubsub: CheckComplete on undeclared topic %q (declared: %s)",
			topic, strings.Join(p.sortedTopicNames(), ", "))
	}
	if t.qos.Reliability != Reliable {
		return fmt.Errorf("pubsub: CheckComplete on best-effort topic %q (no completeness contract)", topic)
	}
	var errs []string
	for _, pub := range t.pubs {
		if n := pub.Unacked(); n > 0 {
			errs = append(errs, fmt.Sprintf("publisher %d has %d unacked publishes", pub.id, n))
		}
	}
	for _, sub := range t.subs {
		if sub.joinAt > 0 {
			// A late joiner converges to the history window, not the
			// full stream.
			prim := t.gs.ref.Rep.Primary()
			for _, s := range t.gs.hist[prim][t.name] {
				if !sub.seen[s.key()] {
					errs = append(errs, fmt.Sprintf("late joiner %d missing history sample p%d#%d", sub.id, s.Pub, s.Seq))
				}
			}
			continue
		}
		for _, pub := range t.pubs {
			for _, s := range pub.published {
				if !sub.seen[s.key()] {
					errs = append(errs, fmt.Sprintf("subscriber %d missing sample p%d#%d", sub.id, s.Pub, s.Seq))
				}
			}
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("pubsub: topic %q incomplete: %d violation(s):\n  %s",
			topic, len(errs), strings.Join(errs, "\n  "))
	}
	return nil
}
