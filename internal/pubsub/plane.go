package pubsub

import (
	"fmt"
	"sort"
	"strings"

	"hades/internal/eventq"
	"hades/internal/membership"
	"hades/internal/metrics"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/rbcast"
	"hades/internal/replication"
	"hades/internal/simkern"
	"hades/internal/trace"
	"hades/internal/vtime"
)

// TagSpace offsets pub/sub dedup tags away from the data-plane
// clients' (client+1) and the transaction layer's (1<<32) tag spaces,
// so a publisher never collides with either in the replicated dedup
// table.
const TagSpace = uint64(1) << 33

// DefaultRetryEvery is the publisher's retransmit period while a
// reliable publish is unacked (primary down, quorum lost, copy cut by
// a partition).
const DefaultRetryEvery = 5 * vtime.Millisecond

// GroupRef names one shard's replication group to the plane.
type GroupRef struct {
	// Index is the shard's ring position, Name its monitor label.
	Index int
	Name  string
	// Nodes are the replica nodes in promotion order.
	Nodes []int
	Rep   *replication.Group
	Mem   *membership.Service
}

// Config parameterises one plane.
type Config struct {
	// Name scopes the plane's ports and metrics (the owning set name).
	Name string
	// ShardFor maps a topic name onto the ring.
	ShardFor func(topic string) int
	// Groups are the ring's replication groups, ring order.
	Groups []GroupRef
	// Nodes is the cluster universe: every node eligible to host a
	// publisher or subscriber, and the best-effort broadcast group.
	Nodes []int
	// RetryEvery overrides the reliable publisher's retransmit period.
	RetryEvery vtime.Duration
	// BestEffortF is the rbcast omission degree (default 1).
	BestEffortF int
}

// Topic is one declared topic.
type Topic struct {
	name  string
	qos   QoS
	shard int
	gs    *groupState // nil for best-effort topics

	pubs []*Publisher
	subs []*Subscriber

	published, acked      int
	delivered, suppressed int
	replayed, dropped     int
	deadlineMiss          int
	mPub, mDeliver, mDrop *metrics.Counter
	mMiss                 *metrics.Counter
	mLat                  *metrics.Hist
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// QoS returns the topic's contract.
func (t *Topic) QoS() QoS { return t.qos }

// Shard returns the topic's ring position.
func (t *Topic) Shard() int { return t.shard }

// pubAttempt tracks one publish end to end: the publisher owns it, the
// serving replica and the subscribers advance it (single-process
// simulation: the struct pointer is the cross-node handoff, exactly
// like the shard plane's pending tables).
type pubAttempt struct {
	pub *Publisher
	s   Sample

	tr  *trace.Trace
	ref trace.Ref
	// wire is the publish→accept span, repl the replication round at
	// the serving replica.
	wire trace.SpanRef
	repl trace.SpanRef

	// server is the replica that admitted the publish (it acks and
	// opens the fan-out spans); outstanding counts subscribers whose
	// first delivery has not landed (-1 until the serving replica's
	// apply initialises it).
	server      int
	outstanding int
	acked       bool
	finished    bool
	retries     int
	done        func()
}

// maybeFinish closes the publish trace once the ack landed and every
// counted fan-out delivery arrived. Exactly one path flips finished,
// so the trace is never finished twice (the tracer recycles traces).
func (a *pubAttempt) maybeFinish() {
	if a.finished || !a.acked || a.outstanding > 0 {
		return
	}
	a.finished = true
	a.tr.Finish()
}

// groupState is the plane's per-owning-group server state.
type groupState struct {
	p        *Plane
	ref      GroupRef
	replicas map[int]bool
	topics   []*Topic
	// pending maps replication request ids to their publish attempts;
	// inflight suppresses duplicate submissions of a tag already in
	// the replication pipeline.
	pending  map[uint64]*pubAttempt
	inflight map[replication.ClientSeq]bool
	// hist is each replica's durable history: node → topic → the last
	// HistoryDepth samples in apply order. Identical at every replica
	// that applied the same prefix; state transfer ships a donor's
	// copy to rejoiners.
	hist map[int]map[string][]Sample

	requests, blocked, redirects, dups int
}

// Messages. Payload structs carry attempt pointers: the plane is a
// single-process simulation, and the pointer is the propagation format
// the shard plane already established for pending state.
type (
	pubMsg struct {
		Topic string
		Value int64
		From  int
		Att   *pubAttempt
	}
	ackMsg struct {
		Att *pubAttempt
	}
	deliverMsg struct {
		S      Sample
		Sub    int
		Replay bool
		Span   trace.SpanRef
		Att    *pubAttempt
	}
	catchupMsg struct {
		Topic string
		Sub   int
		From  int
	}
	catchupAck struct {
		Topic string
		Sub   int
	}
	beMsg struct {
		S Sample
	}
)

// Plane is one pub/sub data-distribution plane over a shard set.
type Plane struct {
	eng *simkern.Engine
	net *netsim.Network
	cfg Config

	topics map[string]*Topic
	order  []*Topic
	pubs   []*Publisher
	subs   []*Subscriber

	groups map[int]*groupState
	// subsAt dispatches the per-node deliver port; ackBound/subBound
	// track which nodes already have their port bound.
	subsAt   map[int][]*Subscriber
	ackBound map[int]bool
	subBound map[int]bool

	be        *rbcast.Service
	bePending map[uint64]*pubAttempt

	nodeSet map[int]bool
	started bool
}

// NewPlane builds an empty plane over the given ring groups. Nothing
// is bound or hooked until the first topic is declared: a plane with
// no topics is behaviorally invisible.
func NewPlane(eng *simkern.Engine, net *netsim.Network, cfg Config) (*Plane, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("pubsub: plane needs a name")
	}
	if cfg.ShardFor == nil {
		return nil, fmt.Errorf("pubsub: plane %q needs a ring mapping", cfg.Name)
	}
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("pubsub: plane %q needs at least one replication group", cfg.Name)
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("pubsub: plane %q needs a node universe", cfg.Name)
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = DefaultRetryEvery
	}
	if cfg.BestEffortF <= 0 {
		cfg.BestEffortF = 1
	}
	p := &Plane{
		eng:       eng,
		net:       net,
		cfg:       cfg,
		topics:    make(map[string]*Topic),
		groups:    make(map[int]*groupState),
		subsAt:    make(map[int][]*Subscriber),
		ackBound:  make(map[int]bool),
		subBound:  make(map[int]bool),
		bePending: make(map[uint64]*pubAttempt),
		nodeSet:   make(map[int]bool, len(cfg.Nodes)),
	}
	for _, n := range cfg.Nodes {
		p.nodeSet[n] = true
	}
	return p, nil
}

func (p *Plane) reqPort() string { return "pubsub." + p.cfg.Name + ".req" }
func (p *Plane) ackPort() string { return "pubsub." + p.cfg.Name + ".ack" }
func (p *Plane) subPort() string { return "pubsub." + p.cfg.Name + ".sub" }

// Topic declares one topic under a QoS contract. Reliable topics bind
// the owning group's server side on first use.
func (p *Plane) Topic(name string, qos QoS) (*Topic, error) {
	if p.started {
		return nil, fmt.Errorf("pubsub: topic %q declared after the plane started", name)
	}
	if name == "" {
		return nil, fmt.Errorf("pubsub: topic needs a name")
	}
	if _, dup := p.topics[name]; dup {
		return nil, fmt.Errorf("pubsub: duplicate topic %q", name)
	}
	if qos.Reliability == 0 {
		qos.Reliability = Reliable
	}
	if err := qos.Validate(name); err != nil {
		return nil, err
	}
	shard := p.cfg.ShardFor(name)
	t := &Topic{name: name, qos: qos, shard: shard}
	m := p.eng.Metrics()
	t.mPub = m.Counter("pubsub." + name + ".published")
	t.mDeliver = m.Counter("pubsub." + name + ".delivered")
	t.mDrop = m.Counter("pubsub." + name + ".dropped")
	t.mMiss = m.Counter("pubsub." + name + ".deadline_miss")
	t.mLat = m.Hist("pubsub." + name + ".latency")
	if qos.Reliability == Reliable {
		gs, err := p.group(shard)
		if err != nil {
			return nil, err
		}
		gs.topics = append(gs.topics, t)
		t.gs = gs
	}
	p.topics[name] = t
	p.order = append(p.order, t)
	return t, nil
}

// group lazily builds the server state of one owning group: request
// port on every replica, apply hook, durable-history state transfer,
// and the view/merge watchers.
func (p *Plane) group(shard int) (*groupState, error) {
	if gs := p.groups[shard]; gs != nil {
		return gs, nil
	}
	var ref GroupRef
	found := false
	for _, g := range p.cfg.Groups {
		if g.Index == shard {
			ref, found = g, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("pubsub: plane %q has no replication group at ring position %d", p.cfg.Name, shard)
	}
	gs := &groupState{
		p:        p,
		ref:      ref,
		replicas: make(map[int]bool, len(ref.Nodes)),
		pending:  make(map[uint64]*pubAttempt),
		inflight: make(map[replication.ClientSeq]bool),
		hist:     make(map[int]map[string][]Sample),
	}
	for _, n := range ref.Nodes {
		gs.replicas[n] = true
		node := n
		p.net.Bind(node, p.reqPort(), func(m *netsim.Message) { p.handleReq(gs, node, m) })
	}
	ref.Rep.OnApplyHook(func(node int, reqID uint64, _ int64) { p.onApply(gs, node, reqID) })
	ref.Mem.RegisterState("pubsub."+p.cfg.Name+"."+ref.Name,
		func(donor, _ int) any { return gs.snapshot(donor) },
		func(node int, data any) { gs.restore(node, data) })
	ref.Mem.OnChange(func(v membership.View) { gs.onView(v) })
	ref.Mem.OnMerge(func(mg membership.Merge) { gs.onMerge(mg) })
	p.groups[shard] = gs
	return gs, nil
}

// PublisherAt registers a publisher for topic at node. The topic must
// be declared first — publishing into an undeclared topic is a
// configuration error, not a runtime drop.
func (p *Plane) PublisherAt(topic string, node int) (*Publisher, error) {
	t, err := p.endpoint("publisher", topic, node)
	if err != nil {
		return nil, err
	}
	pub := &Publisher{p: p, t: t, id: uint64(len(p.pubs)), node: node, pending: make(map[uint64]*pubAttempt)}
	if !p.ackBound[node] {
		p.ackBound[node] = true
		n := node
		p.net.Bind(n, p.ackPort(), func(m *netsim.Message) { p.handleAck(n, m) })
	}
	t.pubs = append(t.pubs, pub)
	p.pubs = append(p.pubs, pub)
	return pub, nil
}

// SubscriberAt registers a subscriber for topic at node, active from
// the start of the run (SetJoinAt turns it into a late joiner).
func (p *Plane) SubscriberAt(topic string, node int) (*Subscriber, error) {
	t, err := p.endpoint("subscriber", topic, node)
	if err != nil {
		return nil, err
	}
	s := &Subscriber{p: p, t: t, id: len(p.subs), node: node, active: true, seen: make(map[sampleKey]bool)}
	if !p.subBound[node] {
		p.subBound[node] = true
		n := node
		p.net.Bind(n, p.subPort(), func(m *netsim.Message) { p.handleDeliver(n, m) })
	}
	t.subs = append(t.subs, s)
	p.subs = append(p.subs, s)
	p.subsAt[node] = append(p.subsAt[node], s)
	return s, nil
}

// endpoint validates one endpoint registration, loudly.
func (p *Plane) endpoint(kind, topic string, node int) (*Topic, error) {
	t := p.topics[topic]
	if t == nil {
		names := make([]string, 0, len(p.order))
		for _, d := range p.order {
			names = append(names, d.name)
		}
		return nil, fmt.Errorf("pubsub: %s for undeclared topic %q (declared topics: %s)",
			kind, topic, strings.Join(names, ", "))
	}
	if p.started {
		return nil, fmt.Errorf("pubsub: %s for topic %q registered after the plane started", kind, topic)
	}
	if !p.nodeSet[node] {
		return nil, fmt.Errorf("pubsub: %s for topic %q at unknown node %d", kind, topic, node)
	}
	return t, nil
}

// Start arms the plane: the best-effort broadcast service (when any
// best-effort topic exists) and the late-joiner schedules. Idempotent;
// the cluster calls it at run start.
func (p *Plane) Start() {
	if p.started {
		return
	}
	p.started = true
	needBE := false
	for _, t := range p.order {
		if t.qos.Reliability == BestEffort {
			needBE = true
		}
	}
	if needBE {
		cfg := rbcast.DefaultConfig(p.net, p.cfg.Nodes, p.cfg.BestEffortF)
		// The default round budgets one message's worst-case path.
		// Best-effort topics ride under open-loop storms where flood
		// copies queue behind each other on the receive CPUs, so pad the
		// round with a queueing allowance — the delivery bound must hold
		// for a copy that arrives behind a burst, not just a lone one.
		cfg.Round += 2 * vtime.Millisecond
		p.be = rbcast.New(p.eng, p.net, "pubsub."+p.cfg.Name, cfg)
		for _, n := range p.cfg.Nodes {
			node := n
			p.be.OnDeliver(node, func(d rbcast.Delivery) { p.onBE(node, d) })
		}
	}
	for _, s := range p.subs {
		if s.joinAt > 0 {
			s.active = false
			sub := s
			p.eng.At(s.joinAt, eventq.ClassApp, func() { sub.join() })
		}
	}
}

// Started reports whether the plane has been armed.
func (p *Plane) Started() bool { return p.started }

// Topics returns the declared topics, declaration order.
func (p *Plane) Topics() []*Topic { return append([]*Topic(nil), p.order...) }

// ---------------------------------------------------------------------
// Publisher

// Publisher is one topic endpoint producing samples.
type Publisher struct {
	p    *Plane
	t    *Topic
	id   uint64
	node int

	seq       uint64
	pending   map[uint64]*pubAttempt // seq → attempt, reliable path
	published []Sample
	acked     int
	onAck     func(seq uint64)
}

// Node returns the publisher's node.
func (pub *Publisher) Node() int { return pub.node }

// Topic returns the publisher's topic.
func (pub *Publisher) Topic() *Topic { return pub.t }

// ID returns the plane-wide publisher id.
func (pub *Publisher) ID() uint64 { return pub.id }

// Published returns every sample this publisher produced, in order.
func (pub *Publisher) Published() []Sample { return append([]Sample(nil), pub.published...) }

// Acked returns the count of completed publishes.
func (pub *Publisher) Acked() int { return pub.acked }

// Unacked returns the count of publishes still in flight.
func (pub *Publisher) Unacked() int { return len(pub.published) - pub.acked }

// OnAck registers a completion callback (per-seq).
func (pub *Publisher) OnAck(fn func(seq uint64)) { pub.onAck = fn }

// Publish produces one sample. Reliable topics submit it to the
// owning group and retransmit until acked; best-effort topics
// broadcast fire-and-forget — neither path ever blocks the caller.
func (pub *Publisher) Publish(value int64) uint64 { return pub.PublishDone(value, nil) }

// PublishDone is Publish with a completion callback: invoked at the
// replication ack (reliable) or at the broadcast's origin delivery
// (best-effort). A sample lost to a best-effort drop never completes.
func (pub *Publisher) PublishDone(value int64, done func()) uint64 {
	p := pub.p
	pub.seq++
	s := Sample{Topic: pub.t.name, Pub: pub.id, Seq: pub.seq, Value: value, PublishedAt: p.eng.Now()}
	pub.published = append(pub.published, s)
	pub.t.published++
	pub.t.mPub.Inc()

	tr := p.eng.Tracer().Begin("pubsub.publish", pub.t.shard)
	tr.SetLabelKey(pub.t.name, s.Seq, pub.node)
	att := &pubAttempt{pub: pub, s: s, tr: tr, ref: tr.Ref(), outstanding: -1, done: done}
	if pub.t.qos.Reliability == BestEffort {
		att.wire = att.ref.Span("rbcast", trace.LayerWire)
		if p.be == nil {
			panic("pubsub: best-effort publish before plane start")
		}
		bseq, _ := p.be.Broadcast(pub.node, beMsg{S: s})
		p.bePending[bseq] = att
		return s.Seq
	}

	att.wire = att.ref.Span("pub.wire", trace.LayerWire)
	pub.pending[s.Seq] = att
	pub.send(att)
	var rearm func()
	rearm = func() {
		if att.acked {
			return
		}
		att.retries++
		att.ref.Instant("retry %d", att.retries)
		pub.send(att)
		p.eng.After(p.cfg.RetryEvery, eventq.ClassApp, rearm)
	}
	p.eng.After(p.cfg.RetryEvery, eventq.ClassApp, rearm)
	return s.Seq
}

// send transmits (or retransmits) one reliable publish to the owning
// group's current primary.
func (pub *Publisher) send(att *pubAttempt) {
	p := pub.p
	target := pub.t.gs.ref.Rep.Primary()
	env := pubMsg{Topic: pub.t.name, Value: att.s.Value, From: pub.node, Att: att}
	if target == pub.node {
		// Co-located with the primary: a direct call, no wire hop.
		p.handleReq(pub.t.gs, target, &netsim.Message{From: pub.node, Payload: env})
		return
	}
	_, _ = p.net.Send(pub.node, target, p.reqPort(), env, 48)
}

// ---------------------------------------------------------------------
// Subscriber

// Subscriber is one topic endpoint consuming samples.
type Subscriber struct {
	p    *Plane
	t    *Topic
	id   int
	node int

	joinAt vtime.Time
	active bool
	// caughtUp stops the late joiner's catch-up retransmit loop.
	caughtUp bool

	seen       map[sampleKey]bool
	deliveries []Delivery
	suppressed int
	// backlog counts fan-out sends skipped because this subscriber's
	// node was down; the next view install drops (and records) it.
	backlog   int
	onDeliver func(Delivery)
}

// Node returns the subscriber's node.
func (s *Subscriber) Node() int { return s.node }

// Topic returns the subscriber's topic.
func (s *Subscriber) Topic() *Topic { return s.t }

// ID returns the plane-wide subscriber id.
func (s *Subscriber) ID() int { return s.id }

// Deliveries returns the recorded deliveries, arrival order.
func (s *Subscriber) Deliveries() []Delivery { return append([]Delivery(nil), s.deliveries...) }

// Suppressed returns the count of redundant copies dedup collapsed.
func (s *Subscriber) Suppressed() int { return s.suppressed }

// JoinTime returns the subscriber's join instant (zero = from start).
func (s *Subscriber) JoinTime() vtime.Time { return s.joinAt }

// OnDeliver registers a delivery callback.
func (s *Subscriber) OnDeliver(fn func(Delivery)) { s.onDeliver = fn }

// SetJoinAt turns the subscriber into a late joiner: inactive until t,
// then registered live, and — on durable topics — caught up from the
// owning primary's history ring.
func (s *Subscriber) SetJoinAt(t vtime.Time) error {
	if s.p.started {
		return fmt.Errorf("pubsub: subscriber %d joinAt set after the plane started", s.id)
	}
	if t <= 0 {
		return fmt.Errorf("pubsub: subscriber %d needs a positive joinAt (got %s)", s.id, t)
	}
	s.joinAt = t
	return nil
}

// join activates a late joiner and starts durable catch-up.
func (s *Subscriber) join() {
	p := s.p
	s.active = true
	if log := p.eng.Log(); log != nil {
		log.Recordf(p.eng.Now(), monitor.KindCatchUp, s.node, "pubsub."+s.t.name,
			"subscriber %d joined late", s.id)
	}
	if s.t.qos.Durable {
		s.catchup()
	}
}

// catchup requests the durable history from the owning primary,
// retransmitting until the catch-up ack lands.
func (s *Subscriber) catchup() {
	if s.caughtUp {
		return
	}
	p := s.p
	target := s.t.gs.ref.Rep.Primary()
	env := catchupMsg{Topic: s.t.name, Sub: s.id, From: s.node}
	if target == s.node {
		p.handleReq(s.t.gs, target, &netsim.Message{From: s.node, Payload: env})
	} else {
		_, _ = p.net.Send(s.node, target, p.reqPort(), env, 24)
	}
	p.eng.After(p.cfg.RetryEvery, eventq.ClassApp, func() { s.catchup() })
}

// deliver records one sample arrival (dedup first, then deadline QoS,
// then the fan-out completion bookkeeping).
func (s *Subscriber) deliver(sample Sample, replay bool, att *pubAttempt) {
	if !s.active {
		return
	}
	k := sample.key()
	if s.seen[k] {
		s.suppressed++
		s.t.suppressed++
		if att != nil {
			att.maybeFinish()
		}
		return
	}
	s.seen[k] = true
	p := s.p
	now := p.eng.Now()
	lat := now.Sub(sample.PublishedAt)
	d := Delivery{Sample: sample, At: now, Latency: lat, Replay: replay}
	s.deliveries = append(s.deliveries, d)
	s.t.delivered++
	s.t.mDeliver.Inc()
	s.t.mLat.Observe(int64(lat))
	if replay {
		s.t.replayed++
	} else if dl := s.t.qos.Deadline; dl > 0 && lat > dl {
		s.t.deadlineMiss++
		s.t.mMiss.Inc()
		if log := p.eng.Log(); log != nil {
			log.Recordf(now, monitor.KindDeadlineMiss, s.node, "pubsub."+s.t.name,
				"sample p%d#%d latency %s > bound %s", sample.Pub, sample.Seq, lat, dl)
		}
	}
	if att != nil {
		if att.outstanding > 0 {
			att.outstanding--
		}
		att.maybeFinish()
	}
	if s.onDeliver != nil {
		s.onDeliver(d)
	}
}

// ---------------------------------------------------------------------
// Server side (owning-group replicas)

// handleReq serves one request arriving at replica node: a publish
// (admit into the replicated machine, or re-ack a dedup hit) or a
// durable catch-up request.
func (p *Plane) handleReq(gs *groupState, node int, m *netsim.Message) {
	if p.net.NodeDown(node) {
		return
	}
	switch env := m.Payload.(type) {
	case pubMsg:
		p.handlePub(gs, node, env)
	case catchupMsg:
		p.handleCatchup(gs, node, env)
	}
}

// handlePub admits one reliable publish at replica node.
func (p *Plane) handlePub(gs *groupState, node int, env pubMsg) {
	att := env.Att
	t := p.topics[env.Topic]
	if t == nil || att == nil {
		return
	}
	gs.requests++
	if !gs.ref.Mem.HasQuorum(node) {
		// Stale-view rejection: serving from a minority could ack a
		// sample the merge view discards. The publisher's retry loop
		// finds the majority primary.
		gs.blocked++
		att.ref.Instant("blocked at n%d: no quorum", node)
		return
	}
	if prim := gs.ref.Rep.Primary(); node != prim {
		gs.redirects++
		att.ref.Instant("not primary at n%d (primary n%d)", node, prim)
		return
	}
	tag := sampleTag(att.s)
	if sm := gs.ref.Rep.Machine(node); sm != nil {
		if _, dup := sm.Seen[tag]; dup {
			// A retry of a sample the machine already applied: answer
			// from the dedup table, never re-apply.
			gs.dups++
			p.sendAck(node, att)
			return
		}
	}
	if gs.inflight[tag] {
		return // already in the replication pipeline; its apply acks
	}
	gs.inflight[tag] = true
	att.server = node
	att.wire.End()
	att.repl = att.ref.Span("replicate."+gs.ref.Name, trace.LayerReplicate)
	reqID := gs.ref.Rep.SubmitTagged(node, env.Value, tag)
	gs.pending[reqID] = att
}

// sampleTag is the sample's replicated dedup tag: the pub/sub tag
// space keeps it disjoint from kv clients and the transaction layer.
func sampleTag(s Sample) replication.ClientSeq {
	return replication.ClientSeq{Client: TagSpace | (s.Pub + 1), Seq: s.Seq}
}

// handleCatchup replays the durable history ring to a late joiner.
func (p *Plane) handleCatchup(gs *groupState, node int, env catchupMsg) {
	if env.Sub < 0 || env.Sub >= len(p.subs) {
		return
	}
	sub := p.subs[env.Sub]
	if sub.caughtUp || !gs.ref.Mem.HasQuorum(node) || node != gs.ref.Rep.Primary() {
		return
	}
	h := gs.hist[node][env.Topic]
	for _, s := range h {
		p.sendDeliver(node, sub, s, true, trace.SpanRef{}, nil)
	}
	if log := p.eng.Log(); log != nil {
		log.Recordf(p.eng.Now(), monitor.KindCatchUp, node, "pubsub."+env.Topic,
			"replayed %d samples to late joiner %d@n%d", len(h), env.Sub, sub.node)
	}
	if node == sub.node {
		sub.caughtUp = true
		return
	}
	_, _ = p.net.Send(node, sub.node, p.subPort(), catchupAck{Topic: env.Topic, Sub: env.Sub}, 16)
}

// onApply is the owning group's apply hook: every replica that freshly
// applies a sample appends it to its durable history and fans it out
// to the registered subscribers. The serving replica additionally acks
// the publisher and opens the fan-out trace spans.
func (p *Plane) onApply(gs *groupState, node int, reqID uint64) {
	att := gs.pending[reqID]
	if att == nil {
		return
	}
	t := p.topics[att.s.Topic]
	if t == nil {
		return
	}
	// The tag landed in the replicated dedup table: retries are now
	// answered from it, so the in-pipeline guard can retire.
	delete(gs.inflight, sampleTag(att.s))
	if t.qos.Durable {
		byTopic := gs.hist[node]
		if byTopic == nil {
			byTopic = make(map[string][]Sample)
			gs.hist[node] = byTopic
		}
		h := append(byTopic[t.name], att.s)
		if over := len(h) - t.qos.HistoryDepth; over > 0 {
			h = append([]Sample(nil), h[over:]...)
		}
		byTopic[t.name] = h
	}
	serving := node == att.server
	if serving && att.outstanding < 0 {
		// Count the subscribers this fan-out is expected to reach so
		// the publish trace can close when the last delivery lands.
		n := 0
		for _, sub := range t.subs {
			if sub.active && !p.net.NodeDown(sub.node) {
				n++
			}
		}
		att.outstanding = n
		att.repl.End()
	}
	for _, sub := range t.subs {
		if !sub.active {
			continue
		}
		if p.net.NodeDown(sub.node) {
			if serving {
				sub.backlog++
			}
			continue
		}
		var span trace.SpanRef
		if serving {
			span = att.ref.Span(fmt.Sprintf("fanout.n%d", sub.node), trace.LayerWire)
		}
		p.sendDeliver(node, sub, att.s, false, span, att)
	}
	if serving {
		p.sendAck(node, att)
	}
}

// sendAck answers the publisher from replica node.
func (p *Plane) sendAck(node int, att *pubAttempt) {
	if att.pub.node == node {
		p.handleAck(node, &netsim.Message{From: node, Payload: ackMsg{Att: att}})
		return
	}
	_, _ = p.net.Send(node, att.pub.node, p.ackPort(), ackMsg{Att: att}, 24)
}

// sendDeliver ships one sample to one subscriber (direct call when
// co-located with the sending replica).
func (p *Plane) sendDeliver(from int, sub *Subscriber, s Sample, replay bool, span trace.SpanRef, att *pubAttempt) {
	env := deliverMsg{S: s, Sub: sub.id, Replay: replay, Span: span, Att: att}
	if from == sub.node {
		p.handleDeliver(from, &netsim.Message{From: from, Payload: env})
		return
	}
	_, _ = p.net.Send(from, sub.node, p.subPort(), env, 48)
}

// handleAck completes one reliable publish at the publisher's node.
func (p *Plane) handleAck(node int, m *netsim.Message) {
	env, ok := m.Payload.(ackMsg)
	if !ok || env.Att == nil || p.net.NodeDown(node) {
		return
	}
	att := env.Att
	if att.acked {
		return
	}
	att.acked = true
	pub := att.pub
	delete(pub.pending, att.s.Seq)
	pub.acked++
	pub.t.acked++
	att.maybeFinish()
	if att.done != nil {
		att.done()
	}
	if pub.onAck != nil {
		pub.onAck(att.s.Seq)
	}
}

// handleDeliver dispatches one fan-out (or replay) arrival at a
// subscriber node.
func (p *Plane) handleDeliver(node int, m *netsim.Message) {
	if p.net.NodeDown(node) {
		return
	}
	switch env := m.Payload.(type) {
	case deliverMsg:
		if env.Sub < 0 || env.Sub >= len(p.subs) {
			return
		}
		env.Span.End()
		p.subs[env.Sub].deliver(env.S, env.Replay, env.Att)
	case catchupAck:
		if env.Sub >= 0 && env.Sub < len(p.subs) {
			p.subs[env.Sub].caughtUp = true
		}
	}
}

// onBE handles one best-effort broadcast delivery at node: the origin
// completes its publish; every hosted subscriber of the topic takes a
// delivery.
func (p *Plane) onBE(node int, d rbcast.Delivery) {
	env, ok := d.Payload.(beMsg)
	if !ok {
		return
	}
	if node == d.Origin {
		if att := p.bePending[d.Seq]; att != nil {
			delete(p.bePending, d.Seq)
			att.wire.End()
			att.acked = true
			att.outstanding = 0
			att.maybeFinish()
			att.pub.acked++
			att.pub.t.acked++
			if att.done != nil {
				att.done()
			}
			if att.pub.onAck != nil {
				att.pub.onAck(att.s.Seq)
			}
		}
	}
	for _, sub := range p.subsAt[node] {
		if sub.t.name == env.S.Topic {
			sub.deliver(env.S, false, nil)
		}
	}
}

// ---------------------------------------------------------------------
// Group state: views, merges, state transfer

// onView drops (and records) the backlog of subscribers that are down
// at a view install: the eviction discards what fan-out could not
// deliver.
func (gs *groupState) onView(v membership.View) {
	p := gs.p
	// A round in flight across the view boundary either applied (the
	// dedup table answers its retries) or was flushed with the old view
	// (the retry must be allowed to resubmit) — the in-pipeline guard
	// is stale either way.
	gs.inflight = make(map[replication.ClientSeq]bool)
	for _, t := range gs.topics {
		for _, sub := range t.subs {
			if sub.backlog > 0 && p.net.NodeDown(sub.node) {
				t.dropped += sub.backlog
				t.mDrop.Add(int64(sub.backlog))
				if log := p.eng.Log(); log != nil {
					log.Recordf(p.eng.Now(), monitor.KindSampleDrop, sub.node, "pubsub."+t.name,
						"dropped %d backlogged samples at %s (subscriber %d down)", sub.backlog, v, sub.id)
				}
				sub.backlog = 0
			}
		}
	}
}

// onMerge replays every durable topic's history to its subscribers
// after a partition heals: a subscriber cut off with the minority
// missed the majority's applies, and dedup suppresses the copies the
// others already saw.
func (gs *groupState) onMerge(_ membership.Merge) {
	p := gs.p
	prim := gs.ref.Rep.Primary()
	if p.net.NodeDown(prim) {
		return
	}
	for _, t := range gs.topics {
		if !t.qos.Durable {
			continue
		}
		h := gs.hist[prim][t.name]
		if len(h) == 0 {
			continue
		}
		replayed := 0
		for _, sub := range t.subs {
			if !sub.active || p.net.NodeDown(sub.node) {
				continue
			}
			for _, s := range h {
				p.sendDeliver(prim, sub, s, true, trace.SpanRef{}, nil)
			}
			replayed++
		}
		if replayed > 0 {
			if log := p.eng.Log(); log != nil {
				log.Recordf(p.eng.Now(), monitor.KindCatchUp, prim, "pubsub."+t.name,
					"merge replay: %d samples to %d subscribers", len(h), replayed)
			}
		}
	}
}

// snapshot freezes a donor replica's durable histories for a join
// state transfer.
func (gs *groupState) snapshot(donor int) any {
	src := gs.hist[donor]
	out := make(map[string][]Sample, len(src))
	for topic, h := range src {
		out[topic] = append([]Sample(nil), h...)
	}
	return out
}

// restore installs a shipped history snapshot at a rejoined replica.
func (gs *groupState) restore(node int, data any) {
	snap, ok := data.(map[string][]Sample)
	if !ok {
		return
	}
	in := make(map[string][]Sample, len(snap))
	for topic, h := range snap {
		in[topic] = append([]Sample(nil), h...)
	}
	gs.hist[node] = in
}

// History returns one replica's durable ring for a topic (oldest
// first).
func (p *Plane) History(topic string, node int) []Sample {
	t := p.topics[topic]
	if t == nil || t.gs == nil {
		return nil
	}
	return append([]Sample(nil), t.gs.hist[node][topic]...)
}

// ---------------------------------------------------------------------
// Stats

// Stats distills one topic's account.
func (t *Topic) Stats() TopicStats {
	st := TopicStats{
		Name: t.name, Shard: t.shard, QoS: t.qos,
		Publishers: len(t.pubs), Subscribers: len(t.subs),
		Published: t.published, Acked: t.acked,
		Delivered: t.delivered, Suppressed: t.suppressed, Replayed: t.replayed,
		Dropped: t.dropped, DeadlineMiss: t.deadlineMiss,
	}
	if t.gs != nil && t.qos.Durable {
		st.HistoryLen = len(t.gs.hist[t.gs.ref.Rep.Primary()][t.name])
	}
	return st
}

// Stats distills every topic's account, declaration order.
func (p *Plane) Stats() []TopicStats {
	out := make([]TopicStats, len(p.order))
	for i, t := range p.order {
		out[i] = t.Stats()
	}
	return out
}

// Subscribers returns a topic's subscribers, registration order.
func (p *Plane) Subscribers(topic string) []*Subscriber {
	t := p.topics[topic]
	if t == nil {
		return nil
	}
	return append([]*Subscriber(nil), t.subs...)
}

// Publishers returns a topic's publishers, registration order.
func (p *Plane) Publishers(topic string) []*Publisher {
	t := p.topics[topic]
	if t == nil {
		return nil
	}
	return append([]*Publisher(nil), t.pubs...)
}

// DeliveryLog renders every subscriber's delivery sequence as one
// deterministic text block — the byte-comparison surface for the
// determinism tests.
func (p *Plane) DeliveryLog() string {
	var sb strings.Builder
	for _, s := range p.subs {
		fmt.Fprintf(&sb, "sub %d topic %s node %d:\n", s.id, s.t.name, s.node)
		for _, d := range s.deliveries {
			flag := ""
			if d.Replay {
				flag = " replay"
			}
			fmt.Fprintf(&sb, "  p%d#%d v%d at %s lat %s%s\n", d.Pub, d.Seq, d.Value, d.At, d.Latency, flag)
		}
	}
	return sb.String()
}

// sortedTopicNames returns the declared topic names, sorted (for
// deterministic error text).
func (p *Plane) sortedTopicNames() []string {
	names := make([]string, 0, len(p.topics))
	for n := range p.topics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
