package pubsub

import (
	"strings"
	"testing"

	"hades/internal/vtime"
)

// TestParseReliability maps every accepted spelling and rejects the
// rest loudly.
func TestParseReliability(t *testing.T) {
	cases := []struct {
		in   string
		want Reliability
		err  bool
	}{
		{"", Reliable, false},
		{"reliable", Reliable, false},
		{"bestEffort", BestEffort, false},
		{"best-effort", BestEffort, false},
		{"BestEffort", 0, true},
		{"exactly-once", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseReliability(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseReliability(%q) accepted", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseReliability(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseReliability(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestQoSValidate is the contract table: the invalid combinations each
// fail with a message naming the offending field, and the valid ones
// pass.
func TestQoSValidate(t *testing.T) {
	cases := []struct {
		name    string
		qos     QoS
		wantErr string // "" = accepted
	}{
		{"reliable plain", QoS{Reliability: Reliable}, ""},
		{"best-effort plain", QoS{Reliability: BestEffort}, ""},
		{"reliable with deadline", QoS{Reliability: Reliable, Deadline: 10 * vtime.Millisecond}, ""},
		{"durable with history", QoS{Reliability: Reliable, Durable: true, HistoryDepth: 4}, ""},
		{"zero reliability", QoS{}, "invalid reliability"},
		{"negative deadline", QoS{Reliability: Reliable, Deadline: -vtime.Millisecond}, "negative deadline"},
		{"negative history", QoS{Reliability: Reliable, HistoryDepth: -1}, "negative historyDepth"},
		{"durable best-effort", QoS{Reliability: BestEffort, Durable: true, HistoryDepth: 4},
			"needs reliable delivery"},
		{"durable zero history", QoS{Reliability: Reliable, Durable: true}, "needs historyDepth >= 1"},
		{"history without durable", QoS{Reliability: Reliable, HistoryDepth: 4}, "without durable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.qos.Validate("t")
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid contract rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid contract accepted: %+v", tc.qos)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q missing %q", err, tc.wantErr)
			}
		})
	}
}
