// Package pubsub is the HADES data-distribution plane: topic-based
// publish-subscribe with per-topic QoS in the DDS style — the workload
// class (telemetry fan-out, sensor fusion, control loops) this
// middleware family is actually deployed for.
//
// Topics are declared with a QoS contract and mapped onto the shard
// plane's consistent-hash ring; the ring picks the replication group
// that owns the topic. Reliable topics ride the owning group's
// replicated machine: a publish is submitted with a pub/sub-scoped
// dedup tag (exactly-once across publisher retries and primary
// failover), and every replica fans the applied sample out to the
// registered subscribers — a crash of the primary cannot lose a sample
// any live replica applied, and subscriber-side dedup collapses the
// redundant copies back to exactly-once delivery. Best-effort topics
// ride a raw time-bounded reliable broadcast over the whole cluster:
// the publish never blocks and drops are tolerated.
//
// Deadline QoS turns a sample whose publish→deliver latency exceeds
// the bound into a monitor DeadlineMiss violation. Durable topics keep
// the last HistoryDepth samples alongside the replicated machine (the
// ring moves with checkpoints and join state transfers via
// RegisterState), so late-joining subscribers catch up from the owning
// primary, and a partition-merge view triggers a history replay to
// every subscriber — dedup suppresses the copies a subscriber already
// saw. Subscriber liveness rides the owning group's membership views:
// a crashed subscriber's backlog is dropped (and recorded) when a view
// installs while it is down.
package pubsub

import (
	"fmt"

	"hades/internal/vtime"
)

// Reliability selects a topic's delivery contract.
type Reliability uint8

const (
	// BestEffort samples ride raw rbcast: the publish never blocks,
	// and a sample lost to a crash or partition stays lost.
	BestEffort Reliability = iota + 1
	// Reliable samples ride the owning replication group: publisher
	// retries plus the replicated dedup table give exactly-once
	// delivery to every live subscriber.
	Reliable
)

// String returns the scenario-JSON spelling of the reliability.
func (r Reliability) String() string {
	switch r {
	case BestEffort:
		return "bestEffort"
	case Reliable:
		return "reliable"
	}
	return fmt.Sprintf("Reliability(%d)", uint8(r))
}

// ParseReliability maps the scenario-JSON spelling to the enum.
func ParseReliability(s string) (Reliability, error) {
	switch s {
	case "", "reliable":
		return Reliable, nil
	case "bestEffort", "best-effort":
		return BestEffort, nil
	}
	return 0, fmt.Errorf("pubsub: unknown reliability %q (want \"reliable\" or \"bestEffort\")", s)
}

// QoS is one topic's quality-of-service contract.
type QoS struct {
	// Reliability picks the transport (zero defaults to Reliable).
	Reliability Reliability
	// Deadline bounds publish→deliver latency: a live delivery past
	// the bound raises a monitor DeadlineMiss violation. Zero disables
	// the check. History replays are exempt — a replayed sample is
	// old by construction.
	Deadline vtime.Duration
	// HistoryDepth is the durable ring's length: the last HistoryDepth
	// samples are retained for late joiners and merge replay.
	HistoryDepth int
	// Durable keeps the history ring in the owning replicated machine
	// (state transfer ships it to rejoining replicas). Requires
	// Reliable and HistoryDepth >= 1.
	Durable bool
}

// Validate checks the contract's internal consistency, loudly.
func (q QoS) Validate(topic string) error {
	switch q.Reliability {
	case BestEffort, Reliable:
	default:
		return fmt.Errorf("pubsub: topic %q has invalid reliability %d", topic, q.Reliability)
	}
	if q.Deadline < 0 {
		return fmt.Errorf("pubsub: topic %q has negative deadline %s", topic, q.Deadline)
	}
	if q.HistoryDepth < 0 {
		return fmt.Errorf("pubsub: topic %q has negative historyDepth %d", topic, q.HistoryDepth)
	}
	if q.Durable {
		if q.Reliability != Reliable {
			return fmt.Errorf("pubsub: durable topic %q needs reliable delivery (best-effort samples cannot back a history)", topic)
		}
		if q.HistoryDepth < 1 {
			return fmt.Errorf("pubsub: durable topic %q needs historyDepth >= 1 (zero retains nothing for late joiners)", topic)
		}
	} else if q.HistoryDepth > 0 {
		return fmt.Errorf("pubsub: topic %q sets historyDepth %d without durable (history is only retained on durable topics)", topic, q.HistoryDepth)
	}
	return nil
}

// Sample is one published datum.
type Sample struct {
	Topic string
	// Pub is the plane-wide publisher id, Seq its 1-based sequence:
	// together the sample's identity for dedup and verification.
	Pub uint64
	Seq uint64
	// Value is the payload.
	Value int64
	// PublishedAt is the publish instant (deadline QoS measures
	// delivery latency against it).
	PublishedAt vtime.Time
}

// key is the sample's dedup identity.
func (s Sample) key() sampleKey { return sampleKey{s.Pub, s.Seq} }

type sampleKey struct {
	Pub, Seq uint64
}

// Delivery is one sample's arrival at one subscriber.
type Delivery struct {
	Sample
	// At is the delivery instant, Latency the publish→deliver time.
	At      vtime.Time
	Latency vtime.Duration
	// Replay marks a history replay (late-joiner catch-up or a
	// partition-merge replay) rather than a live fan-out delivery.
	Replay bool
}

// TopicStats is one topic's delivery account.
type TopicStats struct {
	Name  string
	Shard int
	QoS   QoS
	// Publishers/Subscribers count the registered endpoints.
	Publishers  int
	Subscribers int
	// Published counts publish calls; Acked the publishes whose
	// replication round completed (best-effort: whose broadcast round
	// delivered back at the origin).
	Published int
	Acked     int
	// Delivered counts recorded subscriber deliveries, Suppressed the
	// redundant fan-out copies dedup collapsed, Replayed the
	// deliveries served from durable history.
	Delivered  int
	Suppressed int
	Replayed   int
	// Dropped counts backlogged samples discarded at a view install
	// while their subscriber was down.
	Dropped int
	// DeadlineMiss counts live deliveries past the QoS bound.
	DeadlineMiss int
	// HistoryLen is the durable ring's length at the owning primary
	// when stats were taken.
	HistoryLen int
}

// String renders one stats row.
func (t TopicStats) String() string {
	return fmt.Sprintf("%s (s%d, %s): pubs=%d subs=%d published=%d acked=%d delivered=%d suppressed=%d replayed=%d dropped=%d deadline-miss=%d",
		t.Name, t.Shard, t.QoS.Reliability, t.Publishers, t.Subscribers,
		t.Published, t.Acked, t.Delivered, t.Suppressed, t.Replayed, t.Dropped, t.DeadlineMiss)
}
