package report

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// sample builds a well-formed two-row report.
func sample() *Report {
	r := &Report{
		Name:      "sample",
		Seed:      1,
		HorizonNs: 400_000_000, // 400ms
		Throughput: Throughput{
			Offered:  1000,
			Achieved: 990,
		},
		Latency: []LatencyStat{
			{Class: "kv.ack", Shard: -1, Count: 990, P50Ns: 1_000_000, P99Ns: 4_000_000, P999Ns: 9_000_000, MaxNs: 12_000_000, MeanNs: 1_400_000},
			{Class: "kv.ack", Shard: 0, Count: 500, P50Ns: 1_100_000, P99Ns: 5_000_000, P999Ns: 10_000_000, MaxNs: 12_000_000, MeanNs: 1_500_000},
		},
	}
	r.Finalize()
	return r
}

func TestFinalizeRates(t *testing.T) {
	r := sample()
	// 1000 ops over 0.4s = 2500 ops/sec.
	if r.Throughput.OfferedPerSec != 2500 {
		t.Fatalf("offered rate = %g, want 2500", r.Throughput.OfferedPerSec)
	}
	if r.Throughput.AchievedPerSec != 2475 {
		t.Fatalf("achieved rate = %g, want 2475", r.Throughput.AchievedPerSec)
	}
}

// TestRatesNaNFree: a zero-throughput run and a zero horizon must both
// serialize finite rates, never NaN/Inf.
func TestRatesNaNFree(t *testing.T) {
	r := &Report{Name: "empty", HorizonNs: 0}
	r.Finalize()
	for _, v := range []float64{r.Throughput.OfferedPerSec, r.Throughput.AchievedPerSec} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("rate not finite: %g", v)
		}
	}
	r = &Report{Name: "idle", HorizonNs: 400_000_000}
	r.Finalize()
	if r.Throughput.AchievedPerSec != 0 {
		t.Fatalf("zero-throughput run has rate %g", r.Throughput.AchievedPerSec)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("zero-throughput report does not serialize: %v", err)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sample().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := sample().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical reports serialized differently")
	}
	if !bytes.HasSuffix(a.Bytes(), []byte("\n")) {
		t.Fatal("document missing trailing newline")
	}
}

func TestReadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "LOAD_test.json")
	want := sample()
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := want.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("round trip changed the document")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Report)
		wantErr string
	}{
		{"missing name", func(r *Report) { r.Name = "" }, "missing run name"},
		{"zero horizon", func(r *Report) { r.HorizonNs = 0 }, "non-positive horizon"},
		{"negative counts", func(r *Report) { r.Throughput.Offered = -1 }, "negative throughput"},
		{"achieved without latency", func(r *Report) { r.Latency = nil }, "no latency rows"},
		{"classless row", func(r *Report) { r.Latency[0].Class = "" }, "without a class"},
		{"duplicate row", func(r *Report) { r.Latency[1] = r.Latency[0] }, "duplicate latency row"},
		{"negative percentile", func(r *Report) { r.Latency[0].P999Ns = -1 }, "negative fields"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := sample()
			tc.mutate(r)
			err := r.Validate()
			if err == nil {
				t.Fatal("malformed report accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q missing %q", err, tc.wantErr)
			}
		})
	}
	if err := sample().Validate(); err != nil {
		t.Fatalf("well-formed report rejected: %v", err)
	}
}
