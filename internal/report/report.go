// Package report is the per-run performance record of the HADES
// reproduction: a persisted JSON document distilling one run —
// offered vs. achieved throughput, latency percentiles per op class
// and shard, per-shard service counters, SLO outcomes and the fault
// timeline — plus a baseline diff engine with per-stat thresholds in
// the style of the benchmark baseline runner (internal/benchparse).
//
// Every field is sourced from virtual-time data, every slice is
// deterministically ordered and every number is either an integer or
// a float computed from integers, so the same description plus the
// same seed serializes to a byte-identical document: a committed
// baseline diffs trustworthily in CI, on any machine.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Report is one run's persisted performance record.
type Report struct {
	// Name labels the run (scenario or builtin name).
	Name string `json:"name"`
	// SHA is the commit the run measured (empty outside CI).
	SHA string `json:"sha,omitempty"`
	// Seed is the run's determinism seed.
	Seed int64 `json:"seed"`
	// HorizonNs is the virtual-time horizon of the run.
	HorizonNs int64 `json:"horizon_ns"`

	// Throughput is the offered-vs-achieved account of the run.
	Throughput Throughput `json:"throughput"`
	// Latency holds one row per (op class, shard) with the all-shards
	// aggregate at shard -1, percentiles in virtual nanoseconds.
	Latency []LatencyStat `json:"latency,omitempty"`
	// Shards is the per-shard service breakdown.
	Shards []ShardStat `json:"shards,omitempty"`
	// Loads records each attached load generator's account.
	Loads []LoadStat `json:"loads,omitempty"`
	// SLO carries the probe outcomes: evals and breach windows.
	SLO []SLOOutcome `json:"slo,omitempty"`
	// Faults is the run's fault timeline: injections, failovers,
	// partitions, merges and SLO breach boundaries, time order.
	Faults []FaultEvent `json:"faults,omitempty"`
}

// Throughput is the run's offered-vs-achieved account. Offered counts
// operations handed to the system (load-generator submissions, or
// client submissions when no generator is attached); Achieved counts
// acknowledged completions. The per-second rates divide by the
// virtual horizon.
type Throughput struct {
	Offered        int64   `json:"offered"`
	Achieved       int64   `json:"achieved"`
	OfferedPerSec  float64 `json:"offered_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"`
	// Series is the per-scrape-interval offered/achieved timeline
	// (present when the metrics plane scraped the load counters).
	Series []ThroughputPoint `json:"series,omitempty"`
}

// ThroughputPoint is one scrape interval's offered/achieved delta.
type ThroughputPoint struct {
	T        int64 `json:"t"`
	Offered  int64 `json:"offered"`
	Achieved int64 `json:"achieved"`
}

// LatencyStat is one op class's latency row on one shard (-1 = all
// shards), sourced from the causal-trace histograms.
type LatencyStat struct {
	Class  string `json:"class"`
	Shard  int    `json:"shard"`
	Count  int64  `json:"count"`
	P50Ns  int64  `json:"p50_ns"`
	P99Ns  int64  `json:"p99_ns"`
	P999Ns int64  `json:"p999_ns"`
	MaxNs  int64  `json:"max_ns"`
	MeanNs int64  `json:"mean_ns"`
}

// Key names the row for diffing ("class/s0", "class/all").
func (l LatencyStat) Key() string {
	if l.Shard < 0 {
		return l.Class + "/all"
	}
	return fmt.Sprintf("%s/s%d", l.Class, l.Shard)
}

// ShardStat is one shard group's service record.
type ShardStat struct {
	Name       string `json:"name"`
	Requests   int    `json:"requests"`
	Served     int    `json:"served"`
	Redirects  int    `json:"redirects,omitempty"`
	Blocked    int    `json:"blocked,omitempty"`
	Duplicates int    `json:"duplicates,omitempty"`
	Applied    int64  `json:"applied"`
}

// LoadStat is one attached load generator's account, carrying the
// generator's own completion-latency distribution — per-generator
// attribution, where the Latency rows aggregate by op class and shard
// (coexisting pub/sub, kv and txn generators separate here).
type LoadStat struct {
	Name     string `json:"name"`
	Mode     string `json:"mode"`     // "closed" | "open"
	Workload string `json:"workload"` // "kv" | "txn" | "pubsub"
	Sessions int    `json:"sessions,omitempty"`
	Offered  int64  `json:"offered"`
	Acked    int64  `json:"acked"`
	// Latency percentiles over this generator's completions, virtual
	// nanoseconds; all zero when nothing completed.
	P50Ns  int64 `json:"p50_ns,omitempty"`
	P99Ns  int64 `json:"p99_ns,omitempty"`
	P999Ns int64 `json:"p999_ns,omitempty"`
	MaxNs  int64 `json:"max_ns,omitempty"`
	MeanNs int64 `json:"mean_ns,omitempty"`
}

// SLOOutcome is one probe's verdict.
type SLOOutcome struct {
	Name     string         `json:"name"`
	Expr     string         `json:"expr"`
	Evals    int            `json:"evals"`
	Breaches []BreachWindow `json:"breaches,omitempty"`
}

// BreachWindow is one SLO violation window. ClearNs is zero when the
// breach was still open at run end.
type BreachWindow struct {
	OnsetNs   int64   `json:"onset_ns"`
	ClearNs   int64   `json:"clear_ns,omitempty"`
	Intervals int     `json:"intervals"`
	Worst     float64 `json:"worst"`
}

// FaultEvent is one fault-timeline entry.
type FaultEvent struct {
	AtNs    int64  `json:"at_ns"`
	Kind    string `json:"kind"`
	Subject string `json:"subject,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// rate divides a count by a nanosecond horizon into ops/sec, NaN-free.
func rate(count, horizonNs int64) float64 {
	if horizonNs <= 0 {
		return 0
	}
	return float64(count) / (float64(horizonNs) / 1e9)
}

// Finalize recomputes the derived throughput rates from the counts
// and horizon (call after filling the raw fields).
func (r *Report) Finalize() {
	r.Throughput.OfferedPerSec = rate(r.Throughput.Offered, r.HorizonNs)
	r.Throughput.AchievedPerSec = rate(r.Throughput.Achieved, r.HorizonNs)
}

// WriteJSON writes the indented document to w, byte-deterministic for
// identical reports.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile persists the document at path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a persisted report, validating its shape.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("report: %s is not a run report: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("report: %s: %w", path, err)
	}
	return &r, nil
}

// Validate checks the document's structural invariants: a name, a
// positive horizon, non-negative counts, ordered latency rows.
func (r *Report) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("missing run name")
	}
	if r.HorizonNs <= 0 {
		return fmt.Errorf("non-positive horizon %d", r.HorizonNs)
	}
	if r.Throughput.Offered < 0 || r.Throughput.Achieved < 0 {
		return fmt.Errorf("negative throughput counts (%d offered, %d achieved)",
			r.Throughput.Offered, r.Throughput.Achieved)
	}
	if r.Throughput.Achieved > 0 && len(r.Latency) == 0 && !r.hasLoadLatency() {
		return fmt.Errorf("achieved ops but no latency rows")
	}
	seen := make(map[string]bool, len(r.Latency))
	for _, l := range r.Latency {
		if l.Class == "" {
			return fmt.Errorf("latency row without a class")
		}
		k := l.Key()
		if seen[k] {
			return fmt.Errorf("duplicate latency row %q", k)
		}
		seen[k] = true
		if l.Count < 0 || l.P50Ns < 0 || l.P99Ns < 0 || l.P999Ns < 0 || l.MaxNs < 0 {
			return fmt.Errorf("latency row %q with negative fields", k)
		}
	}
	loads := make(map[string]bool, len(r.Loads))
	for _, l := range r.Loads {
		if l.Name == "" {
			return fmt.Errorf("load row without a name")
		}
		if loads[l.Name] {
			return fmt.Errorf("duplicate load row %q", l.Name)
		}
		loads[l.Name] = true
		if l.P50Ns < 0 || l.P99Ns < 0 || l.P999Ns < 0 || l.MaxNs < 0 || l.MeanNs < 0 {
			return fmt.Errorf("load row %q with negative latency fields", l.Name)
		}
	}
	return nil
}

// hasLoadLatency reports whether any load row carries its own latency
// attribution — runs whose only latency surface is per-generator (the
// trace plane disabled or classless) still validate.
func (r *Report) hasLoadLatency() bool {
	for _, l := range r.Loads {
		if l.P50Ns > 0 || l.MaxNs > 0 {
			return true
		}
	}
	return false
}
