package report

import (
	"fmt"
	"sort"
	"strings"
)

// Thresholds are the per-stat fractional regression bounds: an
// achieved-throughput drop, or a latency-percentile increase, must
// exceed its stat's threshold strictly to count as a regression (a
// change landing exactly on the boundary passes, mirroring the
// benchmark diff).
type Thresholds struct {
	Throughput float64 // fractional achieved-ops/sec drop
	P50        float64 // fractional p50 increase
	P99        float64 // fractional p99 increase
	P999       float64 // fractional p999 increase
	Max        float64 // fractional max increase
}

// UniformThresholds sets every stat's bound to frac.
func UniformThresholds(frac float64) Thresholds {
	return Thresholds{Throughput: frac, P50: frac, P99: frac, P999: frac, Max: frac}
}

// Delta is one compared stat.
type Delta struct {
	// Stat names the compared quantity ("throughput.achieved_per_sec",
	// "latency.kv.write/all.p99_ns").
	Stat string
	Old  float64
	New  float64
	// Frac is the fractional change in the stat's regression direction
	// (positive = worse): latency increase, throughput decrease.
	Frac float64
	// Threshold is the bound the change was judged against.
	Threshold float64
}

func (d Delta) String() string {
	return fmt.Sprintf("%-40s %14.1f -> %14.1f  %+7.1f%% (threshold %.0f%%)",
		d.Stat, d.Old, d.New, d.Frac*100, d.Threshold*100)
}

// DiffReport classifies every compared stat.
type DiffReport struct {
	// Regressions are stats worse than their threshold allows.
	Regressions []Delta
	// Improvements moved in the good direction past the threshold.
	Improvements []Delta
	// Unchanged stayed within the threshold either way.
	Unchanged []Delta
	// Added names stats present only in the new report (a new op class
	// or shard — not a regression); Removed the converse.
	Added   []string
	Removed []string
}

// HasRegressions reports whether the diff should fail a gate.
func (d *DiffReport) HasRegressions() bool { return len(d.Regressions) > 0 }

// classify files one comparison. A zero old value yields no
// meaningful fraction: the stat is treated as newly meaningful
// (added) rather than judged — a zero-throughput or empty-histogram
// baseline can only be diffed by eye.
func (d *DiffReport) classify(stat string, old, new, threshold float64, higherIsWorse bool) {
	if old == 0 {
		if new != 0 {
			d.Added = append(d.Added, stat)
		}
		return
	}
	if new == 0 && higherIsWorse {
		// A latency stat vanishing entirely (no ops) is a removal, not
		// a miraculous improvement.
		d.Removed = append(d.Removed, stat)
		return
	}
	frac := (new - old) / old
	if !higherIsWorse {
		frac = -frac
	}
	dl := Delta{Stat: stat, Old: old, New: new, Frac: frac, Threshold: threshold}
	switch {
	case frac > threshold:
		d.Regressions = append(d.Regressions, dl)
	case frac < -threshold:
		d.Improvements = append(d.Improvements, dl)
	default:
		d.Unchanged = append(d.Unchanged, dl)
	}
}

// Diff compares a new report against a baseline under the given
// per-stat thresholds. Compared stats: achieved throughput (ops/sec,
// a drop regresses) and every shared latency row's p50/p99/p999/max
// (an increase regresses). Latency rows only in the baseline land in
// Removed, rows only in the new report in Added; neither is a
// regression — workloads grow ops classes and shards legitimately.
func Diff(old, new *Report, th Thresholds) *DiffReport {
	d := &DiffReport{}
	d.classify("throughput.achieved_per_sec",
		old.Throughput.AchievedPerSec, new.Throughput.AchievedPerSec, th.Throughput, false)

	oldRows := make(map[string]LatencyStat, len(old.Latency))
	for _, l := range old.Latency {
		oldRows[l.Key()] = l
	}
	newKeys := make(map[string]bool, len(new.Latency))
	for _, l := range new.Latency {
		k := l.Key()
		newKeys[k] = true
		o, ok := oldRows[k]
		if !ok {
			d.Added = append(d.Added, "latency."+k)
			continue
		}
		// Rows with no observations on either side have nothing to
		// judge; a side going to zero ops is handled per-stat.
		pre := "latency." + k + "."
		d.classify(pre+"p50_ns", float64(o.P50Ns), float64(l.P50Ns), th.P50, true)
		d.classify(pre+"p99_ns", float64(o.P99Ns), float64(l.P99Ns), th.P99, true)
		d.classify(pre+"p999_ns", float64(o.P999Ns), float64(l.P999Ns), th.P999, true)
		d.classify(pre+"max_ns", float64(o.MaxNs), float64(l.MaxNs), th.Max, true)
	}
	for k := range oldRows {
		if !newKeys[k] {
			d.Removed = append(d.Removed, "latency."+k)
		}
	}

	// Per-generator attribution rows: shared load rows compare their
	// own percentiles under the same latency thresholds. Baselines
	// written before load rows carried latency hold zeros there, which
	// classify as Added — an enriched report never regresses an old
	// baseline structurally.
	oldLoads := make(map[string]LoadStat, len(old.Loads))
	for _, l := range old.Loads {
		oldLoads[l.Name] = l
	}
	newLoads := make(map[string]bool, len(new.Loads))
	for _, l := range new.Loads {
		newLoads[l.Name] = true
		o, ok := oldLoads[l.Name]
		if !ok {
			d.Added = append(d.Added, "loads."+l.Name)
			continue
		}
		pre := "loads." + l.Name + "."
		d.classify(pre+"p50_ns", float64(o.P50Ns), float64(l.P50Ns), th.P50, true)
		d.classify(pre+"p99_ns", float64(o.P99Ns), float64(l.P99Ns), th.P99, true)
		d.classify(pre+"p999_ns", float64(o.P999Ns), float64(l.P999Ns), th.P999, true)
		d.classify(pre+"max_ns", float64(o.MaxNs), float64(l.MaxNs), th.Max, true)
	}
	for name := range oldLoads {
		if !newLoads[name] {
			d.Removed = append(d.Removed, "loads."+name)
		}
	}
	sortDeltas(d.Regressions)
	sortDeltas(d.Improvements)
	sortDeltas(d.Unchanged)
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	return d
}

// sortDeltas orders worst-first, name-stable.
func sortDeltas(ds []Delta) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Frac != ds[j].Frac {
			return ds[i].Frac > ds[j].Frac
		}
		return ds[i].Stat < ds[j].Stat
	})
}

// String renders the diff for the terminal.
func (d *DiffReport) String() string {
	var sb strings.Builder
	section := func(title string, ds []Delta) {
		if len(ds) == 0 {
			return
		}
		fmt.Fprintf(&sb, "%s (%d):\n", title, len(ds))
		for _, dl := range ds {
			fmt.Fprintf(&sb, "  %s\n", dl)
		}
	}
	section("REGRESSIONS", d.Regressions)
	section("improvements", d.Improvements)
	if len(d.Added) > 0 {
		fmt.Fprintf(&sb, "added (%d): %s\n", len(d.Added), strings.Join(d.Added, ", "))
	}
	if len(d.Removed) > 0 {
		fmt.Fprintf(&sb, "removed (%d): %s\n", len(d.Removed), strings.Join(d.Removed, ", "))
	}
	fmt.Fprintf(&sb, "%d stat(s) within threshold\n", len(d.Unchanged))
	return sb.String()
}
