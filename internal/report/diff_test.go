package report

import (
	"strings"
	"testing"
)

// pair builds an identical baseline/new report pair; tests mutate the
// new side.
func pair() (*Report, *Report) {
	return sample(), sample()
}

func hasStat(ds []Delta, stat string) bool {
	for _, d := range ds {
		if d.Stat == stat {
			return true
		}
	}
	return false
}

func TestDiffIdenticalReports(t *testing.T) {
	old, new := pair()
	d := Diff(old, new, UniformThresholds(0.10))
	if d.HasRegressions() {
		t.Fatalf("identical reports regressed: %v", d.Regressions)
	}
	if len(d.Improvements) != 0 || len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("identical reports not all unchanged: %+v", d)
	}
	// throughput + 2 rows × 4 percentile stats.
	if len(d.Unchanged) != 9 {
		t.Fatalf("compared %d stats, want 9", len(d.Unchanged))
	}
}

func TestDiffCatchesP99Regression(t *testing.T) {
	old, new := pair()
	new.Latency[0].P99Ns = old.Latency[0].P99Ns * 2
	d := Diff(old, new, UniformThresholds(0.10))
	if !d.HasRegressions() {
		t.Fatal("doubled p99 not flagged")
	}
	if !hasStat(d.Regressions, "latency.kv.ack/all.p99_ns") {
		t.Fatalf("regressions missing the p99 row: %v", d.Regressions)
	}
}

func TestDiffThroughputDirection(t *testing.T) {
	old, new := pair()
	// A 50% achieved-throughput DROP is the regression direction.
	new.Throughput.Achieved = old.Throughput.Achieved / 2
	new.Finalize()
	d := Diff(old, new, UniformThresholds(0.10))
	if !hasStat(d.Regressions, "throughput.achieved_per_sec") {
		t.Fatalf("halved throughput not a regression: %+v", d)
	}
	// And a rise is an improvement, not a regression.
	old2, new2 := pair()
	new2.Throughput.Achieved = old2.Throughput.Achieved * 2
	new2.Finalize()
	d = Diff(old2, new2, UniformThresholds(0.10))
	if d.HasRegressions() {
		t.Fatalf("doubled throughput regressed: %v", d.Regressions)
	}
	if !hasStat(d.Improvements, "throughput.achieved_per_sec") {
		t.Fatalf("doubled throughput not an improvement: %+v", d)
	}
}

// TestDiffThresholdBoundary: a change landing exactly on the threshold
// passes (strictly-greater-than, mirroring the benchmark diff); one
// epsilon above fails.
func TestDiffThresholdBoundary(t *testing.T) {
	old, new := pair()
	// Exactly +10% on a 0.10 threshold: 4_000_000 → 4_400_000.
	new.Latency[0].P99Ns = 4_400_000
	d := Diff(old, new, UniformThresholds(0.10))
	if d.HasRegressions() {
		t.Fatalf("boundary change flagged as regression: %v", d.Regressions)
	}
	if !hasStat(d.Unchanged, "latency.kv.ack/all.p99_ns") {
		t.Fatalf("boundary change not judged unchanged: %+v", d)
	}
	new.Latency[0].P99Ns = 4_400_001
	d = Diff(old, new, UniformThresholds(0.10))
	if !d.HasRegressions() {
		t.Fatal("change just past the threshold passed")
	}
}

// TestDiffMissingRowInBaseline: a latency row only in the new report
// is Added, not a regression; a row only in the baseline is Removed.
func TestDiffMissingRowInBaseline(t *testing.T) {
	old, new := pair()
	new.Latency = append(new.Latency, LatencyStat{
		Class: "txn.commit", Shard: -1, Count: 10,
		P50Ns: 1, P99Ns: 2, P999Ns: 3, MaxNs: 4,
	})
	d := Diff(old, new, UniformThresholds(0.10))
	if d.HasRegressions() {
		t.Fatalf("added row regressed: %v", d.Regressions)
	}
	if len(d.Added) != 1 || d.Added[0] != "latency.txn.commit/all" {
		t.Fatalf("added = %v, want [latency.txn.commit/all]", d.Added)
	}
	// Reverse direction: the row vanishes from the new report.
	d = Diff(new, old, UniformThresholds(0.10))
	if d.HasRegressions() {
		t.Fatalf("removed row regressed: %v", d.Regressions)
	}
	if len(d.Removed) != 1 || d.Removed[0] != "latency.txn.commit/all" {
		t.Fatalf("removed = %v, want [latency.txn.commit/all]", d.Removed)
	}
}

// TestDiffZeroBaseline: a zero-valued baseline stat (zero-throughput
// run, empty histogram) yields no fraction — the stat lands in Added
// when it becomes meaningful, and is skipped when both sides are zero.
func TestDiffZeroBaseline(t *testing.T) {
	old, new := pair()
	old.Throughput.Achieved = 0
	old.Throughput.AchievedPerSec = 0
	old.Latency[0].P999Ns = 0 // empty-tail baseline histogram
	d := Diff(old, new, UniformThresholds(0.10))
	if d.HasRegressions() {
		t.Fatalf("zero baseline produced regressions: %v", d.Regressions)
	}
	for _, stat := range []string{"throughput.achieved_per_sec", "latency.kv.ack/all.p999_ns"} {
		found := false
		for _, a := range d.Added {
			if a == stat {
				found = true
			}
		}
		if !found {
			t.Fatalf("zero-baseline stat %q not in added: %v", stat, d.Added)
		}
	}
	// Both sides zero: skipped entirely.
	new.Latency[0].P999Ns = 0
	d = Diff(old, new, UniformThresholds(0.10))
	for _, a := range d.Added {
		if a == "latency.kv.ack/all.p999_ns" {
			t.Fatal("both-zero stat reported as added")
		}
	}
}

// TestDiffVanishingLatency: a latency stat going to zero while the
// row survives is a removal, not an improvement.
func TestDiffVanishingLatency(t *testing.T) {
	old, new := pair()
	new.Latency[0].MaxNs = 0
	d := Diff(old, new, UniformThresholds(0.10))
	if hasStat(d.Improvements, "latency.kv.ack/all.max_ns") {
		t.Fatal("vanished max judged an improvement")
	}
	found := false
	for _, r := range d.Removed {
		if r == "latency.kv.ack/all.max_ns" {
			found = true
		}
	}
	if !found {
		t.Fatalf("vanished max not in removed: %v", d.Removed)
	}
}

func TestDiffStringSections(t *testing.T) {
	old, new := pair()
	new.Latency[0].P99Ns *= 3
	out := Diff(old, new, UniformThresholds(0.10)).String()
	for _, want := range []string{"REGRESSIONS (1):", "latency.kv.ack/all.p99_ns", "within threshold"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff rendering missing %q:\n%s", want, out)
		}
	}
}
