// Package fault provides failure injection and failure detection for
// the §2.1 failure model: crash, omission and coherent-value failures
// for processors, Byzantine failures for clocks (injected through
// clocksync), performance and omission failures for the network.
//
// All injection is deterministic: probabilistic hooks draw from the
// engine's seeded source, scripted hooks fire at fixed virtual instants.
// The detector is the classic heartbeat protocol with a synchronous
// bound: every node broadcasts a heartbeat each period; a peer silent
// for longer than period + delay-bound + margin is suspected. In the
// simulated synchronous network this detector is *perfect* (no false
// suspicions while the margin covers the receive path), with detection
// latency ≤ period + bound — the coverage argument of §2.1.
package fault

import (
	"hades/internal/eventq"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// CrashAt schedules a crash of node at instant t; if recoverAt is
// non-zero the node comes back then. Crashed nodes neither send nor
// receive (netsim drops their traffic).
func CrashAt(eng *simkern.Engine, net *netsim.Network, node int, t, recoverAt vtime.Time) {
	eng.At(t, eventq.ClassApp, func() {
		net.SetNodeDown(node, true)
		if log := eng.Log(); log != nil {
			log.Recordf(t, monitor.KindFailureInjected, node, "crash", "")
		}
	})
	if recoverAt > t {
		eng.At(recoverAt, eventq.ClassApp, func() {
			net.SetNodeDown(node, false)
			if log := eng.Log(); log != nil {
				log.Recordf(recoverAt, monitor.KindFailureInjected, node, "recover", "")
			}
		})
	}
}

// PartitionAt schedules a network partition into the given sides at
// instant t; if healAt is non-zero the partition heals then. Messages
// between different sides (including copies in flight) are dropped for
// the whole window.
func PartitionAt(eng *simkern.Engine, net *netsim.Network, t, healAt vtime.Time, sides ...[]int) {
	eng.At(t, eventq.ClassApp, func() {
		net.SetPartition(sides...)
		if log := eng.Log(); log != nil {
			log.Recordf(t, monitor.KindFailureInjected, -1, "partition", "%v", sides)
		}
	})
	if healAt > t {
		HealAt(eng, net, healAt)
	}
}

// HealAt schedules the heal of the network partition at instant t.
func HealAt(eng *simkern.Engine, net *netsim.Network, t vtime.Time) {
	eng.At(t, eventq.ClassApp, func() {
		net.Heal()
		if log := eng.Log(); log != nil {
			log.Recordf(t, monitor.KindFailureInjected, -1, "heal", "")
		}
	})
}

// OmissionEvery drops every k-th message matching the filter — a
// deterministic send-omission pattern. A nil filter matches everything.
type OmissionEvery struct {
	K      int
	Filter func(*netsim.Message) bool
	count  int
}

// Judge implements netsim.FaultHook.
func (o *OmissionEvery) Judge(m *netsim.Message) netsim.Verdict {
	if o.K <= 0 || (o.Filter != nil && !o.Filter(m)) {
		return netsim.Verdict{Fate: netsim.FateDeliver}
	}
	o.count++
	if o.count%o.K == 0 {
		return netsim.Verdict{Fate: netsim.FateDrop}
	}
	return netsim.Verdict{Fate: netsim.FateDeliver}
}

// OmissionFrom drops all messages sent by the given nodes (a fully
// send-omission-faulty process, the rbcast/consensus adversary).
type OmissionFrom struct {
	Nodes map[int]bool
	// Port, when non-empty, restricts the omissions to one service.
	Port string
}

// Judge implements netsim.FaultHook.
func (o *OmissionFrom) Judge(m *netsim.Message) netsim.Verdict {
	if o.Nodes[m.From] && (o.Port == "" || o.Port == m.Port) {
		return netsim.Verdict{Fate: netsim.FateDrop}
	}
	return netsim.Verdict{Fate: netsim.FateDeliver}
}

// RandomFaults drops or delays messages with the given probabilities,
// drawing from the engine's seeded source (deterministic per run).
type RandomFaults struct {
	Eng       *simkern.Engine
	DropProb  float64
	DelayProb float64
	MaxExtra  vtime.Duration
}

// Judge implements netsim.FaultHook.
func (r *RandomFaults) Judge(*netsim.Message) netsim.Verdict {
	x := r.Eng.Rand().Float64()
	switch {
	case x < r.DropProb:
		return netsim.Verdict{Fate: netsim.FateDrop}
	case x < r.DropProb+r.DelayProb:
		extra := vtime.Duration(r.Eng.Rand().Int63n(int64(r.MaxExtra) + 1))
		return netsim.Verdict{Fate: netsim.FateDelay, Extra: extra}
	default:
		return netsim.Verdict{Fate: netsim.FateDeliver}
	}
}

// Hooks chains fault hooks: the first non-deliver verdict wins.
type Hooks []netsim.FaultHook

// Judge implements netsim.FaultHook.
func (h Hooks) Judge(m *netsim.Message) netsim.Verdict {
	for _, hook := range h {
		if v := hook.Judge(m); v.Fate != netsim.FateDeliver {
			return v
		}
	}
	return netsim.Verdict{Fate: netsim.FateDeliver}
}
