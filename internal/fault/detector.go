package fault

import (
	"fmt"
	"sort"

	"hades/internal/eventq"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// DetectorConfig parameterises the heartbeat fault detector.
type DetectorConfig struct {
	// Nodes lists the monitored processors.
	Nodes []int
	// Period is the heartbeat period.
	Period vtime.Duration
	// Margin is added to Period plus the link delay bound to form the
	// suspicion timeout.
	Margin vtime.Duration
	// WProc is the CPU cost of handling one heartbeat.
	WProc vtime.Duration
	// Port scopes the heartbeat traffic. Detectors coexisting on the
	// same nodes (e.g. one per membership group) need distinct ports —
	// netsim binds one handler per (node, port), so a shared port
	// would let the last detector steal the others' heartbeats. Empty
	// selects the default "fault.heartbeat".
	Port string
}

// DefaultDetectorConfig returns a detector with a 10 ms heartbeat.
func DefaultDetectorConfig(nodes []int) DetectorConfig {
	return DetectorConfig{
		Nodes:  nodes,
		Period: 10 * vtime.Millisecond,
		Margin: 500 * vtime.Microsecond,
		WProc:  5 * vtime.Microsecond,
	}
}

// Suspicion is one detection record.
type Suspicion struct {
	Observer  int
	Suspect   int
	At        vtime.Time
	SinceLast vtime.Duration
}

// Rehabilitation is one un-suspicion record: the observer saw a
// heartbeat from (or a recovery of) a previously suspected peer.
type Rehabilitation struct {
	Observer int
	Peer     int
	At       vtime.Time
}

// Detector is the heartbeat-based fault detection service of §2.2.1.
type Detector struct {
	eng *simkern.Engine
	net *netsim.Network
	cfg DetectorConfig

	lastBeat  map[int]map[int]vtime.Time // observer → peer → last heartbeat
	suspected map[int]map[int]bool
	onSuspect func(Suspicion)
	onRehab   func(observer, peer int)

	// Suspicions records every detection for the harness.
	Suspicions []Suspicion
	// Rehabilitations records every un-suspicion for the harness.
	Rehabilitations []Rehabilitation
}

const defaultBeatPort = "fault.heartbeat"

// beatPort returns the detector's heartbeat port.
func (d *Detector) beatPort() string {
	if d.cfg.Port != "" {
		return d.cfg.Port
	}
	return defaultBeatPort
}

// NewDetector creates (but does not start) a detector. onSuspect, if
// non-nil, fires at each new suspicion.
func NewDetector(eng *simkern.Engine, net *netsim.Network, cfg DetectorConfig, onSuspect func(Suspicion)) *Detector {
	d := &Detector{
		eng:       eng,
		net:       net,
		cfg:       cfg,
		lastBeat:  make(map[int]map[int]vtime.Time),
		suspected: make(map[int]map[int]bool),
		onSuspect: onSuspect,
	}
	for _, n := range cfg.Nodes {
		d.lastBeat[n] = make(map[int]vtime.Time)
		d.suspected[n] = make(map[int]bool)
	}
	for _, n := range cfg.Nodes {
		node := n
		net.Bind(node, d.beatPort(), func(m *netsim.Message) { d.receive(node, m) })
	}
	// A recovering observer's heartbeat bookkeeping is stale (it
	// stopped hearing peers when it crashed): without a reset it would
	// mass-suspect every live peer at its first check tick. Recovery
	// therefore restarts the observer's grace window and rehabilitates
	// any suspicions it held from before the crash.
	net.OnDownChange(func(node int, down bool) {
		if down || d.lastBeat[node] == nil {
			return
		}
		d.observerRecovered(node)
	})
	return d
}

// observerRecovered resets a recovered observer: fresh heartbeat
// deadlines for every peer and deterministic rehabilitation of the
// suspicions it held when it crashed.
func (d *Detector) observerRecovered(node int) {
	now := d.eng.Now()
	for _, p := range d.cfg.Nodes {
		if p == node {
			continue
		}
		d.lastBeat[node][p] = now
		if d.suspected[node][p] {
			d.rehabilitate(node, p)
		}
	}
}

// Timeout returns the suspicion timeout an observer applies to a peer.
func (d *Detector) Timeout(observer, peer int) vtime.Duration {
	dmax, _ := d.net.DelayBound(peer, observer)
	return d.cfg.Period + dmax + d.net.WorstCaseReceivePath() + d.cfg.Margin
}

// Start begins heartbeating and monitoring.
func (d *Detector) Start() {
	now := d.eng.Now()
	for _, n := range d.cfg.Nodes {
		for _, p := range d.cfg.Nodes {
			if n != p {
				d.lastBeat[n][p] = now
			}
		}
	}
	var tick func()
	tick = func() {
		d.beatAndCheck()
		d.eng.After(d.cfg.Period, eventq.ClassApp, tick)
	}
	d.eng.After(d.cfg.Period, eventq.ClassApp, tick)
}

func (d *Detector) beatAndCheck() {
	now := d.eng.Now()
	// Send heartbeats.
	for _, src := range d.cfg.Nodes {
		if d.net.NodeDown(src) {
			continue
		}
		for _, dst := range d.cfg.Nodes {
			if dst == src {
				continue
			}
			if _, err := d.net.Send(src, dst, d.beatPort(), src, 8); err != nil {
				continue
			}
		}
	}
	// Check timeouts.
	for _, obs := range d.cfg.Nodes {
		if d.net.NodeDown(obs) {
			continue
		}
		for _, peer := range d.cfg.Nodes {
			if peer == obs || d.suspected[obs][peer] {
				continue
			}
			silent := now.Sub(d.lastBeat[obs][peer])
			if silent > d.Timeout(obs, peer) {
				d.suspect(obs, peer, silent)
			}
		}
	}
}

func (d *Detector) suspect(obs, peer int, silent vtime.Duration) {
	d.suspected[obs][peer] = true
	s := Suspicion{Observer: obs, Suspect: peer, At: d.eng.Now(), SinceLast: silent}
	d.Suspicions = append(d.Suspicions, s)
	if log := d.eng.Log(); log != nil {
		log.Recordf(s.At, monitor.KindFailureDetected, obs, fmt.Sprintf("n%d", peer), "silent=%s", silent)
	}
	if d.onSuspect != nil {
		d.onSuspect(s)
	}
}

func (d *Detector) receive(node int, m *netsim.Message) {
	if d.net.NodeDown(node) {
		return
	}
	if d.cfg.WProc > 0 {
		d.eng.Processors()[node].RaiseIRQ("heartbeat", d.cfg.WProc, nil)
	}
	peer, ok := m.Payload.(int)
	if !ok {
		return
	}
	d.lastBeat[node][peer] = d.eng.Now()
	if d.suspected[node][peer] {
		d.rehabilitate(node, peer)
	}
}

// rehabilitate clears a suspicion, records it, and notifies the
// OnRehabilitate callback (membership uses it as the rejoin trigger).
func (d *Detector) rehabilitate(obs, peer int) {
	d.suspected[obs][peer] = false
	r := Rehabilitation{Observer: obs, Peer: peer, At: d.eng.Now()}
	d.Rehabilitations = append(d.Rehabilitations, r)
	if log := d.eng.Log(); log != nil {
		log.Recordf(r.At, monitor.KindRehabilitation, obs, fmt.Sprintf("n%d", peer), "")
	}
	if d.onRehab != nil {
		d.onRehab(obs, peer)
	}
}

// OnRehabilitate installs the callback fired at each rehabilitation.
func (d *Detector) OnRehabilitate(fn func(observer, peer int)) { d.onRehab = fn }

// Suspected reports whether observer currently suspects peer.
func (d *Detector) Suspected(observer, peer int) bool { return d.suspected[observer][peer] }

// SuspectsOf returns the peers observer currently suspects, sorted.
func (d *Detector) SuspectsOf(observer int) []int {
	var out []int
	for p, s := range d.suspected[observer] {
		if s {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}
