package fault

import (
	"testing"

	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

func rig(t *testing.T, n int) (*simkern.Engine, *netsim.Network, []int) {
	t.Helper()
	eng := simkern.NewEngine(monitor.NewLog(0), 41)
	nodes := make([]int, n)
	for i := 0; i < n; i++ {
		eng.AddProcessor("n", 0)
		nodes[i] = i
	}
	net := netsim.New(eng, netsim.Config{WAtm: 5 * us, WProto: 5 * us, PrioNet: simkern.PrioMax - 2})
	net.ConnectAll(nodes, 50*us, 150*us)
	return eng, net, nodes
}

func TestCrashAndRecovery(t *testing.T) {
	eng, net, _ := rig(t, 2)
	CrashAt(eng, net, 1, vtime.Time(1*ms), vtime.Time(5*ms))
	eng.Run(vtime.Time(2 * ms))
	if !net.NodeDown(1) {
		t.Fatal("node not crashed at 2ms")
	}
	eng.Run(vtime.Time(6 * ms))
	if net.NodeDown(1) {
		t.Fatal("node not recovered at 6ms")
	}
	if n := eng.Log().CountKind(monitor.KindFailureInjected); n != 2 {
		t.Fatalf("injection events %d, want 2", n)
	}
}

func TestOmissionEvery(t *testing.T) {
	eng, net, _ := rig(t, 2)
	delivered := 0
	net.Bind(1, "p", func(*netsim.Message) { delivered++ })
	net.SetFault(&OmissionEvery{K: 3})
	for i := 0; i < 9; i++ {
		if _, err := net.Send(0, 1, "p", i, 8); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntilIdle()
	if delivered != 6 {
		t.Fatalf("delivered %d, want 6 (every 3rd dropped)", delivered)
	}
}

func TestOmissionFromPortScoped(t *testing.T) {
	eng, net, _ := rig(t, 2)
	gotA, gotB := 0, 0
	net.Bind(1, "a", func(*netsim.Message) { gotA++ })
	net.Bind(1, "b", func(*netsim.Message) { gotB++ })
	net.SetFault(&OmissionFrom{Nodes: map[int]bool{0: true}, Port: "a"})
	_, _ = net.Send(0, 1, "a", 1, 8)
	_, _ = net.Send(0, 1, "b", 1, 8)
	eng.RunUntilIdle()
	if gotA != 0 || gotB != 1 {
		t.Fatalf("a=%d b=%d, want 0/1", gotA, gotB)
	}
}

func TestHooksChaining(t *testing.T) {
	h := Hooks{
		&OmissionFrom{Nodes: map[int]bool{5: true}},
		&OmissionEvery{K: 1}, // drops everything
	}
	v := h.Judge(&netsim.Message{From: 0})
	if v.Fate != netsim.FateDrop {
		t.Fatal("second hook not consulted")
	}
	v = h.Judge(&netsim.Message{From: 5})
	if v.Fate != netsim.FateDrop {
		t.Fatal("first hook not applied")
	}
}

func TestDetectorDetectsCrash(t *testing.T) {
	eng, net, nodes := rig(t, 3)
	det := NewDetector(eng, net, DefaultDetectorConfig(nodes), nil)
	det.Start()
	crashAt := vtime.Time(50 * ms)
	CrashAt(eng, net, 2, crashAt, 0)
	eng.Run(vtime.Time(200 * ms))
	if !det.Suspected(0, 2) || !det.Suspected(1, 2) {
		t.Fatal("crash not detected by all observers")
	}
	// Detection latency bounded by period + timeout.
	for _, s := range det.Suspicions {
		if s.Suspect != 2 {
			t.Fatalf("false suspicion of node %d", s.Suspect)
		}
		lat := s.At.Sub(crashAt)
		bound := det.cfg.Period + det.Timeout(s.Observer, 2) + det.cfg.Period
		if lat > bound {
			t.Fatalf("detection latency %s above bound %s", lat, bound)
		}
	}
}

func TestDetectorNoFalseSuspicions(t *testing.T) {
	eng, net, nodes := rig(t, 4)
	det := NewDetector(eng, net, DefaultDetectorConfig(nodes), nil)
	det.Start()
	eng.Run(vtime.Time(500 * ms))
	if len(det.Suspicions) != 0 {
		t.Fatalf("false suspicions: %+v", det.Suspicions)
	}
}

func TestDetectorRehabilitation(t *testing.T) {
	eng, net, nodes := rig(t, 2)
	cfg := DefaultDetectorConfig(nodes)
	det := NewDetector(eng, net, cfg, nil)
	det.Start()
	CrashAt(eng, net, 1, vtime.Time(30*ms), vtime.Time(100*ms))
	eng.Run(vtime.Time(80 * ms))
	if !det.Suspected(0, 1) {
		t.Fatal("crash not detected")
	}
	eng.Run(vtime.Time(300 * ms))
	if det.Suspected(0, 1) {
		t.Fatal("recovered node still suspected")
	}
	if got := det.SuspectsOf(0); len(got) != 0 {
		t.Fatalf("suspects = %v", got)
	}
}

// TestRecoveredPeerUnsuspectedByAllObservers is the rehabilitation
// regression test: after a crash long enough for every observer to
// suspect the peer, recovery must rehabilitate it at *every* observer,
// and each rehabilitation must be recorded.
func TestRecoveredPeerUnsuspectedByAllObservers(t *testing.T) {
	eng, net, nodes := rig(t, 4)
	det := NewDetector(eng, net, DefaultDetectorConfig(nodes), nil)
	det.Start()
	CrashAt(eng, net, 3, vtime.Time(30*ms), vtime.Time(120*ms))
	eng.Run(vtime.Time(100 * ms))
	for _, obs := range []int{0, 1, 2} {
		if !det.Suspected(obs, 3) {
			t.Fatalf("observer %d did not suspect the crashed node", obs)
		}
	}
	eng.Run(vtime.Time(300 * ms))
	rehabbed := map[int]bool{}
	for _, r := range det.Rehabilitations {
		if r.Peer == 3 {
			rehabbed[r.Observer] = true
		}
	}
	for _, obs := range []int{0, 1, 2} {
		if det.Suspected(obs, 3) {
			t.Fatalf("observer %d still suspects the recovered node", obs)
		}
		if !rehabbed[obs] {
			t.Fatalf("observer %d recorded no rehabilitation of node 3 (have %+v)", obs, det.Rehabilitations)
		}
	}
}

// TestRecoveredObserverDoesNotMassSuspect: an observer that crashes
// and recovers has stale heartbeat bookkeeping for every peer; without
// the recovery reset it would falsely suspect every live node at its
// first check tick.
func TestRecoveredObserverDoesNotMassSuspect(t *testing.T) {
	eng, net, nodes := rig(t, 4)
	det := NewDetector(eng, net, DefaultDetectorConfig(nodes), nil)
	det.Start()
	CrashAt(eng, net, 0, vtime.Time(30*ms), vtime.Time(130*ms))
	eng.Run(vtime.Time(200 * ms))
	if got := det.SuspectsOf(0); len(got) != 0 {
		t.Fatalf("recovered observer falsely suspects %v", got)
	}
	for _, s := range det.Suspicions {
		if s.Observer == 0 {
			t.Fatalf("false suspicion by the recovered observer: %+v", s)
		}
	}
}

// TestRecoveredObserverRehabilitatesOldSuspicions: suspicions an
// observer held when it crashed are rehabilitated on its recovery (the
// world may have changed while it was down), not carried over stale.
func TestRecoveredObserverRehabilitatesOldSuspicions(t *testing.T) {
	eng, net, nodes := rig(t, 3)
	det := NewDetector(eng, net, DefaultDetectorConfig(nodes), nil)
	det.Start()
	// Node 2 crashes and recovers while observer 0 is itself down.
	CrashAt(eng, net, 2, vtime.Time(20*ms), vtime.Time(60*ms))
	CrashAt(eng, net, 0, vtime.Time(50*ms), vtime.Time(150*ms))
	eng.Run(vtime.Time(45 * ms))
	if !det.Suspected(0, 2) {
		t.Fatal("observer 0 never suspected node 2")
	}
	eng.Run(vtime.Time(250 * ms))
	if det.Suspected(0, 2) {
		t.Fatal("observer 0 still suspects node 2 after both recovered")
	}
	var found bool
	for _, r := range det.Rehabilitations {
		if r.Observer == 0 && r.Peer == 2 && r.At == vtime.Time(150*ms) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no recovery-time rehabilitation of (0,2): %+v", det.Rehabilitations)
	}
}

func TestDetectorCallbackFires(t *testing.T) {
	eng, net, nodes := rig(t, 2)
	var fired []Suspicion
	det := NewDetector(eng, net, DefaultDetectorConfig(nodes), func(s Suspicion) {
		fired = append(fired, s)
	})
	det.Start()
	CrashAt(eng, net, 0, vtime.Time(20*ms), 0)
	eng.Run(vtime.Time(100 * ms))
	if len(fired) != 1 || fired[0].Suspect != 0 || fired[0].Observer != 1 {
		t.Fatalf("callback fired %+v", fired)
	}
}

func TestRandomFaultsDeterministic(t *testing.T) {
	run := func() (int, int) {
		eng, net, _ := rig(t, 2)
		delivered := 0
		net.Bind(1, "p", func(*netsim.Message) { delivered++ })
		net.SetFault(&RandomFaults{Eng: eng, DropProb: 0.3, DelayProb: 0.2, MaxExtra: ms})
		for i := 0; i < 100; i++ {
			_, _ = net.Send(0, 1, "p", i, 8)
		}
		eng.RunUntilIdle()
		return delivered, net.Stats().Late
	}
	d1, l1 := run()
	d2, l2 := run()
	if d1 != d2 || l1 != l2 {
		t.Fatalf("seeded fault injection not deterministic: %d/%d vs %d/%d", d1, l1, d2, l2)
	}
	if d1 == 100 || d1 == 0 {
		t.Fatalf("fault probabilities had no effect: delivered %d", d1)
	}
}
