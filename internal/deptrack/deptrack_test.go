package deptrack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearDependencyChain(t *testing.T) {
	tr := New()
	a := tr.Record("a")
	b := tr.Record("b", a)
	c := tr.Record("c", b)
	d := tr.Record("d", c)
	orphans := tr.MarkFailed(b)
	if len(orphans) != 2 || orphans[0] != c || orphans[1] != d {
		t.Fatalf("orphans = %v, want [c d]", orphans)
	}
	if tr.IsOrphan(a) {
		t.Fatal("a must survive")
	}
	if !tr.IsFailed(b) || tr.IsOrphan(b) {
		t.Fatal("b is failed, not orphan")
	}
}

func TestDiamondDependency(t *testing.T) {
	tr := New()
	root := tr.Record("root")
	l := tr.Record("l", root)
	r := tr.Record("r", root)
	sink := tr.Record("sink", l, r)
	orphans := tr.MarkFailed(l)
	if len(orphans) != 1 || orphans[0] != sink {
		t.Fatalf("orphans = %v, want [sink]", orphans)
	}
	if tr.IsOrphan(r) {
		t.Fatal("r does not depend on l")
	}
}

func TestRecordOnOrphanIsOrphan(t *testing.T) {
	tr := New()
	a := tr.Record("a")
	b := tr.Record("b", a)
	tr.MarkFailed(a)
	c := tr.Record("c", b) // built on an orphan
	if !tr.IsOrphan(c) {
		t.Fatal("event depending on an orphan must be an orphan")
	}
}

func TestUnknownDependencyPanics(t *testing.T) {
	tr := New()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dependency accepted")
		}
	}()
	tr.Record("x", EventID(999))
}

func TestFrontier(t *testing.T) {
	tr := New()
	a := tr.Record("a")
	b := tr.Record("b", a)
	c := tr.Record("c", a)
	fr := tr.Frontier()
	// b and c are undepended-on tips.
	if len(fr) != 2 || fr[0] != b || fr[1] != c {
		t.Fatalf("frontier = %v, want [b c]", fr)
	}
	tr.MarkFailed(c)
	fr = tr.Frontier()
	// c failed: a's only live dependent is b.
	if len(fr) != 1 || fr[0] != b {
		t.Fatalf("frontier after failure = %v, want [b]", fr)
	}
}

func TestOrphansSorted(t *testing.T) {
	tr := New()
	a := tr.Record("a")
	for i := 0; i < 10; i++ {
		tr.Record("x", a)
	}
	tr.MarkFailed(a)
	os := tr.Orphans()
	if len(os) != 10 {
		t.Fatalf("orphans = %d", len(os))
	}
	for i := 1; i < len(os); i++ {
		if os[i] <= os[i-1] {
			t.Fatal("orphans not sorted")
		}
	}
}

func TestMarkFailedUnknownIsNoop(t *testing.T) {
	tr := New()
	if got := tr.MarkFailed(EventID(42)); got != nil {
		t.Fatal("unknown event produced orphans")
	}
}

// Property: the orphan set is exactly the transitive closure of
// dependents of the failed event (checked against a reference BFS).
func TestOrphanClosureProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw%20)
		tr := New()
		ids := make([]EventID, n)
		deps := make([][]int, n)
		for i := 0; i < n; i++ {
			var d []EventID
			for j := 0; j < i; j++ {
				if rng.Intn(3) == 0 {
					d = append(d, ids[j])
					deps[i] = append(deps[i], j)
				}
			}
			ids[i] = tr.Record("e", d...)
		}
		fail := rng.Intn(n)
		got := tr.MarkFailed(ids[fail])
		// Reference closure.
		want := map[int]bool{}
		changed := true
		for changed {
			changed = false
			for i := 0; i < n; i++ {
				if want[i] || i == fail {
					continue
				}
				for _, j := range deps[i] {
					if j == fail || want[j] {
						want[i] = true
						changed = true
						break
					}
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, id := range got {
			if !want[int(id)-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
