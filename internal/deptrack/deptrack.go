// Package deptrack implements the dependency tracking service of §2.2.1
// ([NMT97]: "Managing dependencies — a key problem in fault-tolerant
// distributed algorithms").
//
// The service records a DAG of events (task instance completions,
// message deliveries, state updates) with explicit dependency edges.
// When a failure invalidates an event, the transitive closure of
// dependents — the *orphan set* — must be found and discarded or
// recomputed; this is the information the dispatcher's orphan-thread
// monitoring and the replication services act on.
package deptrack

import (
	"fmt"
	"sort"
)

// EventID identifies a tracked event.
type EventID uint64

// Tracker records the dependency graph. Not safe for concurrent use.
type Tracker struct {
	next    EventID
	deps    map[EventID][]EventID // event → what it depends on
	rdeps   map[EventID][]EventID // event → who depends on it
	origin  map[EventID]string    // event → label ("node3/taskX#4")
	failed  map[EventID]bool
	orphans map[EventID]bool
}

// New returns an empty tracker.
func New() *Tracker {
	return &Tracker{
		deps:    make(map[EventID][]EventID),
		rdeps:   make(map[EventID][]EventID),
		origin:  make(map[EventID]string),
		failed:  make(map[EventID]bool),
		orphans: make(map[EventID]bool),
	}
}

// Record registers a new event with the given label, depending on the
// listed prior events, and returns its ID. Unknown dependencies panic:
// dependencies must be recorded before their dependents (causality).
func (t *Tracker) Record(label string, dependsOn ...EventID) EventID {
	for _, d := range dependsOn {
		if _, ok := t.origin[d]; !ok {
			panic(fmt.Sprintf("deptrack: dependency %d recorded before it exists", d))
		}
	}
	t.next++
	id := t.next
	t.origin[id] = label
	t.deps[id] = append([]EventID(nil), dependsOn...)
	for _, d := range dependsOn {
		t.rdeps[d] = append(t.rdeps[d], id)
	}
	// An event built on an orphan is itself an orphan immediately.
	for _, d := range dependsOn {
		if t.failed[d] || t.orphans[d] {
			t.orphans[id] = true
			break
		}
	}
	return id
}

// Label returns an event's label.
func (t *Tracker) Label(id EventID) string { return t.origin[id] }

// Len returns the number of recorded events.
func (t *Tracker) Len() int { return len(t.origin) }

// MarkFailed invalidates an event (e.g. its producing node crashed
// before stabilising it) and propagates orphan status to every
// transitive dependent. It returns the newly orphaned events, sorted.
func (t *Tracker) MarkFailed(id EventID) []EventID {
	if _, ok := t.origin[id]; !ok {
		return nil
	}
	t.failed[id] = true
	var newly []EventID
	stack := []EventID{id}
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, dep := range t.rdeps[e] {
			if !t.orphans[dep] && !t.failed[dep] {
				t.orphans[dep] = true
				newly = append(newly, dep)
				stack = append(stack, dep)
			}
		}
	}
	sort.Slice(newly, func(i, j int) bool { return newly[i] < newly[j] })
	return newly
}

// IsOrphan reports whether an event transitively depends on a failed
// one (or was recorded on top of an orphan).
func (t *Tracker) IsOrphan(id EventID) bool { return t.orphans[id] }

// IsFailed reports whether the event itself was marked failed.
func (t *Tracker) IsFailed(id EventID) bool { return t.failed[id] }

// Orphans returns the current orphan set, sorted.
func (t *Tracker) Orphans() []EventID {
	out := make([]EventID, 0, len(t.orphans))
	for id := range t.orphans {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Frontier returns the non-orphan events nothing depends on yet — the
// stable cut a recovering replica can resume from, sorted.
func (t *Tracker) Frontier() []EventID {
	out := make([]EventID, 0)
	for id := range t.origin {
		if t.failed[id] || t.orphans[id] {
			continue
		}
		live := false
		for _, r := range t.rdeps[id] {
			if !t.failed[r] && !t.orphans[r] {
				live = true
				break
			}
		}
		if !live {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
