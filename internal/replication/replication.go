// Package replication implements the replication services of §2.2.1:
// passive, active and semi-active replication in the sense of Poledna
// [Pol96], over the simulated network, the view-synchronous membership
// service and the stable storage service.
//
// The replicated object is a deterministic state machine
// (StateMachine): requests are int64 commands, state an int64 value —
// deliberately minimal so the experiments isolate the *replication
// protocol* costs (checkpointing, voting, failover latency, lost work)
// rather than application behaviour:
//
//   - Active: every replica executes every request; the client side
//     votes on the replies (majority), masking crash and value faults
//     with zero failover latency.
//   - Passive: only the primary executes; it checkpoints state to the
//     backups (and stable storage) every CheckpointEvery requests. On
//     primary crash the next backup is promoted, resuming from the
//     last checkpoint — bounded failover latency, but work since the
//     checkpoint is lost and must be resubmitted.
//   - Semi-active: the leader executes and broadcasts its decision;
//     followers execute the same requests in the same order (no
//     voting). On leader crash a follower takes over with no lost
//     state, at the price of every replica doing the work.
//
// Failover is driven by *installed membership views*, not by raw
// per-observer detector suspicions: promotion happens when a view that
// excludes the current primary installs, so every replica promotes the
// same backup in the same view at the same instant (the view-synchrony
// property internal/membership provides). Leadership is sticky — a
// rejoining former primary re-enters as a backup, brought up to date by
// the membership join protocol's state transfer (the group registers
// its state machine, persisted through the stable store).
//
// View boundaries also flush the replication traffic itself: requests
// and checkpoints carry the sender's installed view, and a copy from a
// member of an older view that arrives after the receiver installed a
// newer one is discarded (counted in Flushed) instead of applied — no
// replica acts on a pre-partition update the new primary never saw,
// the virtual-synchrony discipline at the state-machine layer.
package replication

import (
	"fmt"
	"sort"

	"hades/internal/membership"
	"hades/internal/metrics"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/storage"
	"hades/internal/vtime"
)

// Style selects the replication protocol.
type Style uint8

// Replication styles [Pol96].
const (
	// Active replication: all replicas execute, outputs voted.
	Active Style = iota + 1
	// Passive replication: primary executes, backups hold checkpoints.
	Passive
	// SemiActive replication: leader decides, followers mirror.
	SemiActive
)

// String returns the style name.
func (s Style) String() string {
	switch s {
	case Active:
		return "active"
	case Passive:
		return "passive"
	case SemiActive:
		return "semi-active"
	default:
		return "unknown"
	}
}

// ClientSeq identifies one client request for exactly-once
// deduplication: the client's identity plus its per-client sequence
// number. The zero value tags untracked (at-least-once) requests.
type ClientSeq struct {
	Client uint64
	Seq    uint64
}

// StateMachine is the deterministic replicated service: state' = f(state,
// cmd). Value faults are injected by corrupting one replica's Apply.
type StateMachine struct {
	State   int64
	Applied int64
	// Seen is the replicated deduplication table: the result of every
	// tagged request this machine has applied, so a retried request
	// (client timeout racing a slow reply, a redirect after failover)
	// is answered from the cache instead of applied twice. It moves
	// with the state: checkpoints and join state transfers carry it, so
	// exactly-once survives exactly as far as the state itself does.
	Seen map[ClientSeq]int64
	// Corrupt, when non-nil, perturbs results (a coherent value
	// failure, §2.1).
	Corrupt func(int64) int64
}

// Apply executes one command.
func (sm *StateMachine) Apply(cmd int64) int64 {
	sm.State = sm.State*31 + cmd
	sm.Applied++
	if sm.Corrupt != nil {
		return sm.Corrupt(sm.State)
	}
	return sm.State
}

// Config parameterises a replica group.
type Config struct {
	// Name scopes the group's network ports.
	Name string
	// Replicas lists the replica nodes, in promotion order.
	Replicas []int
	// Style selects the protocol.
	Style Style
	// WExec is the CPU cost of executing one request on a replica.
	WExec vtime.Duration
	// CheckpointEvery is the passive checkpoint interval in requests.
	CheckpointEvery int
	// StorageLatency is the stable-store per-copy write latency.
	StorageLatency vtime.Duration
}

// Reply is one replica's answer to a request.
type Reply struct {
	Replica int
	ReqID   uint64
	Result  int64
	At      vtime.Time
}

// Group is a running replica group.
type Group struct {
	eng *simkern.Engine
	net *netsim.Network
	mem *membership.Service
	cfg Config

	machines map[int]*StateMachine
	stores   map[int]*storage.Store
	primary  int // index into cfg.Replicas
	nextReq  uint64

	// replies collects per-request replies for voting (active).
	replies map[uint64][]Reply
	voted   map[uint64]bool
	onReply func(reqID uint64, result int64, unanimous bool)

	// sinceCheckpoint counts requests since the last passive checkpoint.
	sinceCheckpoint int

	// Failovers records promotion instants for the harness.
	Failovers []Failover
	// LostWork counts requests lost to a passive failover.
	LostWork int64
	// Flushed counts old-view requests/checkpoints discarded at the
	// view boundary (virtual-synchrony flushing).
	Flushed int
	// Duplicates counts tagged requests suppressed by the replicated
	// dedup table (answered from cache instead of re-applied).
	Duplicates int
	// onApply observes every fresh state-machine apply (suppressed
	// duplicates excluded) at every replica — the sharding layer builds
	// its per-replica apply logs from it and the transaction layer
	// mirrors coordinator decisions through it. Register with
	// OnApplyHook; hooks fire in registration order.
	onApply []func(node int, reqID uint64, result int64)

	// Round occupancy, sampled by the metrics plane: open counts
	// requests submitted but not yet authoritatively answered (votes
	// completed / primary replies landed). Requests whose answer never
	// lands — lost to a passive failover or an unreachable majority —
	// stay counted, so a fault window shows as a plateau in the
	// "repl.open" gauge rather than vanishing. acked guards the
	// decrement against the primary answering the same request twice
	// (dedup-cache replies after a retry straddles a failover).
	open   int
	acked  map[uint64]bool
	mRound *metrics.Counter
}

// OnApplyHook registers an observer of every fresh state-machine apply
// (suppressed duplicates excluded) at every replica. Multiple layers
// may subscribe to one group (the shard layer's apply logs and the
// transaction layer's decision mirror share the replicated machine).
func (g *Group) OnApplyHook(fn func(node int, reqID uint64, result int64)) {
	g.onApply = append(g.onApply, fn)
}

// Failover records one primary/leader promotion. The failover latency
// relative to the crash is the caller's to compute (the group only
// knows when the view excluding the old primary installed).
type Failover struct {
	From, To int
	At       vtime.Time
	// InView is the membership view whose installation promoted To.
	InView    uint64
	LostSince int64 // applied-counter gap (passive only)
}

// reqMsg is one request inside a batch. Tag carries the client
// identity for exactly-once dedup (zero = untracked).
type reqMsg struct {
	ID  uint64
	Cmd int64
	Tag ClientSeq
}

// batchMsg crosses the wire for request dissemination: one envelope,
// one execution thread, many requests — the per-request overhead the
// session layer's batching amortizes. View is the sender's installed
// membership view at send time (0 for clients outside the group, which
// are not view-synchronized). Unbatched submissions are batches of 1.
type batchMsg struct {
	Items []reqMsg
	View  uint64
}

// ckptMsg carries a passive checkpoint, tagged with the view the
// checkpointing primary had installed when it was taken. Seen is the
// dedup table frozen at the same instant as the state, so a promoted
// backup suppresses exactly the duplicates its restored state covers.
type ckptMsg struct {
	State   int64
	Applied int64
	View    uint64
	Seen    map[ClientSeq]int64
}

// copySeen freezes a dedup table for shipping (checkpoint, snapshot).
func copySeen(in map[ClientSeq]int64) map[ClientSeq]int64 {
	if len(in) == 0 {
		return nil
	}
	out := make(map[ClientSeq]int64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// NewGroup builds a replica group over a membership service. mem may
// be nil for Active style (voting masks crashes with no failover);
// Passive and SemiActive require it — their promotion is driven by
// installed views. When mem is non-nil the group also registers its
// state machine with the membership join protocol, so a rejoining
// replica is restored from a live donor through stable storage.
func NewGroup(eng *simkern.Engine, net *netsim.Network, mem *membership.Service, cfg Config,
	onReply func(reqID uint64, result int64, unanimous bool)) (*Group, error) {
	if len(cfg.Replicas) < 2 {
		return nil, fmt.Errorf("replication: group %q needs at least 2 replicas", cfg.Name)
	}
	if cfg.Style != Active && mem == nil {
		return nil, fmt.Errorf("replication: style %s requires a membership service", cfg.Style)
	}
	if mem != nil {
		universe := mem.Nodes()
		for _, r := range cfg.Replicas {
			found := false
			for _, n := range universe {
				if n == r {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("replication: replica %d not in membership group %q", r, mem.Name())
			}
		}
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 10
	}
	g := &Group{
		eng:      eng,
		net:      net,
		mem:      mem,
		cfg:      cfg,
		machines: make(map[int]*StateMachine),
		stores:   make(map[int]*storage.Store),
		replies:  make(map[uint64][]Reply),
		voted:    make(map[uint64]bool),
		acked:    make(map[uint64]bool),
		onReply:  onReply,
	}
	g.mRound = eng.Metrics().Counter("repl.rounds")
	eng.Metrics().GaugeFunc("repl.open", func() int64 { return int64(g.open) })
	for _, r := range cfg.Replicas {
		g.machines[r] = &StateMachine{}
		g.stores[r] = storage.New(eng, r, cfg.StorageLatency)
	}
	for _, r := range cfg.Replicas {
		node := r
		net.Bind(node, g.port("req"), func(m *netsim.Message) { g.handleRequest(node, m) })
		net.Bind(node, g.port("ckpt"), func(m *netsim.Message) { g.handleCheckpoint(node, m) })
	}
	if mem != nil {
		mem.OnChange(g.handleView)
		mem.RegisterState("repl."+cfg.Name, g.snapshotState, g.restoreState)
	}
	return g, nil
}

func (g *Group) port(kind string) string { return "repl." + g.cfg.Name + "." + kind }

// viewAt returns node's installed membership view ID (0 without a
// membership service, or for nodes outside the group such as clients).
func (g *Group) viewAt(node int) uint64 {
	if g.mem == nil {
		return 0
	}
	return g.mem.CurrentView(node).ID
}

// staleSender implements the view-boundary flush on the replication
// traffic: a copy tagged with an older view than the receiver's, sent
// by a replica that is no longer in the receiver's view, is discarded
// — acting on it would smuggle a pre-boundary update (e.g. an isolated
// ex-primary's checkpoint) past the view change. Clients tag view 0
// and are exempt: they are not view-synchronized.
func (g *Group) staleSender(node, from int, view uint64) bool {
	if g.mem == nil || view == 0 || g.machines[from] == nil {
		return false
	}
	cv := g.mem.CurrentView(node)
	if view >= cv.ID || cv.Contains(from) {
		return false
	}
	g.Flushed++
	if log := g.eng.Log(); log != nil {
		log.Recordf(g.eng.Now(), monitor.KindFlush, node, g.cfg.Name, "from=n%d view=%d<%d", from, view, cv.ID)
	}
	return true
}

// handleView reacts to an installed membership view — the only
// failover trigger. Leadership is sticky: the primary keeps its role
// while it is in the view; when a view excluding it installs, the next
// replica (in declared promotion order, ring-wise) that is in the view
// is promoted. Because views are agreed and installed at one fixed
// instant, every replica performs the same promotion in the same view.
func (g *Group) handleView(v membership.View) {
	if g.cfg.Style == Active {
		return // voting masks crashes; no leadership to move
	}
	cur := g.Primary()
	if v.Contains(cur) {
		return
	}
	for i := 1; i < len(g.cfg.Replicas); i++ {
		idx := (g.primary + i) % len(g.cfg.Replicas)
		cand := g.cfg.Replicas[idx]
		if !v.Contains(cand) {
			continue
		}
		lost := g.machines[cur].Applied - g.machines[cand].Applied
		if g.cfg.Style == SemiActive || lost < 0 {
			lost = 0 // followers executed everything themselves
		}
		g.primary = idx
		g.sinceCheckpoint = 0
		fo := Failover{From: cur, To: cand, At: g.eng.Now(), InView: v.ID, LostSince: lost}
		g.Failovers = append(g.Failovers, fo)
		g.LostWork += lost
		if log := g.eng.Log(); log != nil {
			log.Recordf(fo.At, monitor.KindFailover, cand, g.cfg.Name, "from=n%d view=%d lost=%d", cur, v.ID, lost)
		}
		return
	}
}

// snapshotState is the membership join protocol's donor-side hook: it
// captures the authoritative (primary) state, checkpointing it to the
// source's stable store on the way out. The membership-chosen donor
// need not be a replica; if the primary is down at the join instant,
// the snapshot falls back to the first live replica in promotion
// order (never the joiner — its state is the stale one).
func (g *Group) snapshotState(donor, joiner int) any {
	if g.machines[joiner] == nil {
		return nil // the joiner is not one of our replicas
	}
	src := g.Primary()
	if g.net.NodeDown(src) || g.machines[src] == nil {
		src = -1
		for _, r := range g.cfg.Replicas {
			if r != joiner && g.machines[r] != nil && !g.net.NodeDown(r) {
				src = r
				break
			}
		}
	}
	if src < 0 {
		return nil // no live replica holds usable state
	}
	sm := g.machines[src]
	ck := ckptMsg{State: sm.State, Applied: sm.Applied, View: g.viewAt(src), Seen: copySeen(sm.Seen)}
	g.stores[src].Write(fmt.Sprintf("ckpt.%s", g.cfg.Name), ck, func(error) {})
	return ck
}

// restoreState is the joiner-side hook: the shipped snapshot becomes
// the replica's state, persisted to its own stable store.
func (g *Group) restoreState(node int, data any) {
	ck, ok := data.(ckptMsg)
	if !ok || g.machines[node] == nil {
		return
	}
	sm := g.machines[node]
	sm.State, sm.Applied = ck.State, ck.Applied
	sm.Seen = copySeen(ck.Seen)
	g.stores[node].Write(fmt.Sprintf("ckpt.%s", g.cfg.Name), ck, func(error) {})
}

// Machine returns a replica's state machine (test/fault-injection hook).
func (g *Group) Machine(node int) *StateMachine { return g.machines[node] }

// Primary returns the current primary/leader node.
func (g *Group) Primary() int { return g.cfg.Replicas[g.primary] }

// Style returns the group's replication style.
func (g *Group) Style() Style { return g.cfg.Style }

// Submit issues one untracked (at-least-once) request to the group,
// returning its ID.
func (g *Group) Submit(from int, cmd int64) uint64 {
	return g.SubmitTagged(from, cmd, ClientSeq{})
}

// SubmitTagged issues one request carrying a client dedup tag: a
// request with the same non-zero tag that was already applied anywhere
// in the surviving state lineage is answered from the replicated dedup
// cache instead of applied again — the exactly-once contract the
// sharded client layer's retries rely on.
func (g *Group) SubmitTagged(from int, cmd int64, tag ClientSeq) uint64 {
	return g.SubmitBatch(from, []BatchItem{{Cmd: cmd, Tag: tag}})[0]
}

// BatchItem is one request of a batched submission.
type BatchItem struct {
	Cmd int64
	Tag ClientSeq
}

// SubmitBatch issues many requests as ONE replicated round: one wire
// message per replica and one execution thread (one WExec charge)
// carry the whole batch, amortizing the per-request dissemination and
// scheduling cost. Each item keeps its own request ID, reply and dedup
// tag, so exactly-once and retry-from-cache hold op-by-op — a retried
// batch whose items were partially applied before a failover is
// answered item-by-item from the replicated Seen table. Returns the
// request IDs, item order.
func (g *Group) SubmitBatch(from int, items []BatchItem) []uint64 {
	ids := make([]uint64, len(items))
	msg := batchMsg{Items: make([]reqMsg, len(items)), View: g.viewAt(from)}
	for i, it := range items {
		g.nextReq++
		ids[i] = g.nextReq
		msg.Items[i] = reqMsg{ID: g.nextReq, Cmd: it.Cmd, Tag: it.Tag}
	}
	if len(items) == 0 {
		return ids
	}
	g.mRound.Inc()
	g.open += len(items)
	size := 16 * len(items)
	switch g.cfg.Style {
	case Active, SemiActive:
		// All replicas receive and execute.
		for _, r := range g.cfg.Replicas {
			if r == from {
				g.execute(r, msg)
				continue
			}
			if _, err := g.net.Send(from, r, g.port("req"), msg, size); err != nil {
				continue
			}
		}
	case Passive:
		p := g.Primary()
		if p == from {
			g.execute(p, msg)
		} else if _, err := g.net.Send(from, p, g.port("req"), msg, size); err != nil {
			return ids
		}
	}
	return ids
}

func (g *Group) handleRequest(node int, m *netsim.Message) {
	msg, ok := m.Payload.(batchMsg)
	if !ok {
		return
	}
	if g.staleSender(node, m.From, msg.View) {
		return
	}
	if g.cfg.Style == Passive && node != g.Primary() {
		return // backups ignore requests
	}
	g.execute(node, msg)
}

// execute runs one batch on one replica — a single thread charging a
// single WExec for the whole batch — then applies and replies to its
// items in order. Per-item dedup means a batch that straddles a retry
// boundary re-applies only the items the surviving lineage has not
// seen.
func (g *Group) execute(node int, msg batchMsg) {
	if g.net.NodeDown(node) {
		return
	}
	proc := g.eng.Processors()[node]
	th := proc.NewThread(fmt.Sprintf("repl.%s.exec#%d@n%d", g.cfg.Name, msg.Items[0].ID, node), simkern.PrioMax-5000)
	th.AddSegment(simkern.Segment{Name: "exec", Work: g.cfg.WExec, PT: simkern.PrioMax - 5000})
	th.OnComplete = func() {
		if g.net.NodeDown(node) {
			return
		}
		sm := g.machines[node]
		for _, item := range msg.Items {
			g.applyOne(node, sm, item)
		}
	}
	th.Ready()
}

// applyOne applies one batch item at one replica: dedup, apply, record,
// hooks, reply, passive checkpoint cadence.
func (g *Group) applyOne(node int, sm *StateMachine, item reqMsg) {
	if item.Tag != (ClientSeq{}) {
		if cached, dup := sm.Seen[item.Tag]; dup {
			g.Duplicates++
			g.reply(node, item.ID, cached)
			return
		}
	}
	res := sm.Apply(item.Cmd)
	if item.Tag != (ClientSeq{}) {
		if sm.Seen == nil {
			sm.Seen = make(map[ClientSeq]int64)
		}
		sm.Seen[item.Tag] = res
	}
	for _, fn := range g.onApply {
		fn(node, item.ID, res)
	}
	g.reply(node, item.ID, res)
	if g.cfg.Style == Passive && node == g.Primary() {
		g.sinceCheckpoint++
		if g.sinceCheckpoint >= g.cfg.CheckpointEvery {
			g.sinceCheckpoint = 0
			g.checkpoint(node)
		}
	}
}

// reply collects replies; active groups vote: a result is delivered as
// soon as some value has a strict majority of the replica count — the
// masking condition. Waiting for a bare quorum of *any* two replies
// would let a fast corrupt replica tie the vote; requiring matching
// majority replies masks up to ⌊(n-1)/2⌋ value faults.
func (g *Group) reply(node int, reqID uint64, result int64) {
	r := Reply{Replica: node, ReqID: reqID, Result: result, At: g.eng.Now()}
	g.replies[reqID] = append(g.replies[reqID], r)
	switch g.cfg.Style {
	case Active:
		if g.voted[reqID] {
			return
		}
		need := len(g.cfg.Replicas)/2 + 1
		if winner, n, distinct := tally(g.replies[reqID]); n >= need {
			g.voted[reqID] = true
			g.open--
			// unanimous reflects the replies seen at vote time; a
			// divergent replica that answers before the majority
			// forms is caught here.
			unanimous := distinct == 1
			if g.onReply != nil {
				g.onReply(reqID, winner, unanimous)
			}
		}
	case Passive, SemiActive:
		// The primary's (leader's) reply is authoritative.
		if node == g.Primary() {
			if !g.acked[reqID] {
				g.acked[reqID] = true
				g.open--
			}
			if g.onReply != nil {
				g.onReply(reqID, result, true)
			}
		}
	}
}

// tally returns the most frequent result, its count, and the number of
// distinct results (ties broken by value, deterministically).
func tally(replies []Reply) (winner int64, count, distinct int) {
	counts := make(map[int64]int, len(replies))
	for _, r := range replies {
		counts[r.Result]++
	}
	type kv struct {
		v int64
		n int
	}
	all := make([]kv, 0, len(counts))
	for v, n := range counts {
		all = append(all, kv{v, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].v < all[j].v
	})
	return all[0].v, all[0].n, len(all)
}

// checkpoint propagates the primary's state to backups and stable
// storage (passive style).
func (g *Group) checkpoint(primary int) {
	sm := g.machines[primary]
	ck := ckptMsg{State: sm.State, Applied: sm.Applied, View: g.viewAt(primary), Seen: copySeen(sm.Seen)}
	g.stores[primary].Write(fmt.Sprintf("ckpt.%s", g.cfg.Name), ck, func(error) {})
	for _, r := range g.cfg.Replicas {
		if r == primary {
			continue
		}
		if _, err := g.net.Send(primary, r, g.port("ckpt"), ck, 24); err != nil {
			continue
		}
	}
	if log := g.eng.Log(); log != nil {
		log.Recordf(g.eng.Now(), monitor.KindCheckpoint, primary, g.cfg.Name, "applied=%d", ck.Applied)
	}
}

func (g *Group) handleCheckpoint(node int, m *netsim.Message) {
	ck, ok := m.Payload.(ckptMsg)
	if !ok {
		return
	}
	if g.staleSender(node, m.From, ck.View) {
		return
	}
	sm := g.machines[node]
	if ck.Applied > sm.Applied || g.cfg.Style == Passive {
		sm.State, sm.Applied = ck.State, ck.Applied
		sm.Seen = copySeen(ck.Seen)
	}
	g.stores[node].Write(fmt.Sprintf("ckpt.%s", g.cfg.Name), ck, func(error) {})
}
