package replication

import (
	"testing"

	"hades/internal/eventq"
	"hades/internal/fault"
	"hades/internal/membership"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

type rigT struct {
	eng *simkern.Engine
	net *netsim.Network
	mem *membership.Service
}

func rig(t *testing.T, n int) rigT {
	t.Helper()
	eng := simkern.NewEngine(monitor.NewLog(0), 53)
	nodes := make([]int, n)
	for i := 0; i < n; i++ {
		eng.AddProcessor("n", 0)
		nodes[i] = i
	}
	net := netsim.New(eng, netsim.Config{WAtm: 5 * us, WProto: 5 * us, PrioNet: simkern.PrioMax - 2})
	net.ConnectAll(nodes, 50*us, 150*us)
	mem, err := membership.New(eng, net, membership.Config{Name: "mg", Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	mem.Start()
	return rigT{eng: eng, net: net, mem: mem}
}

func newGroup(t *testing.T, r rigT, style Style, replicas []int) (*Group, *[]int64) {
	t.Helper()
	var results []int64
	g, err := NewGroup(r.eng, r.net, r.mem, Config{
		Name:            "g",
		Replicas:        replicas,
		Style:           style,
		WExec:           100 * us,
		CheckpointEvery: 5,
		StorageLatency:  20 * us,
	}, func(_ uint64, res int64, _ bool) { results = append(results, res) })
	if err != nil {
		t.Fatal(err)
	}
	return g, &results
}

// drive submits one request per millisecond from the client node.
func drive(r rigT, g *Group, from int, count int) {
	for i := 0; i < count; i++ {
		cmd := int64(i + 1)
		r.eng.At(vtime.Time(vtime.Duration(i)*ms), eventq.ClassApp, func() {
			g.Submit(from, cmd)
		})
	}
}

func TestActiveReplicationMasksValueFault(t *testing.T) {
	r := rig(t, 4)
	g, results := newGroup(t, r, Active, []int{0, 1, 2})
	// One replica computes corrupt values (coherent value failure).
	g.Machine(1).Corrupt = func(v int64) int64 { return v + 1000000 }
	drive(r, g, 3, 10)
	r.eng.Run(vtime.Time(50 * ms))
	if len(*results) != 10 {
		t.Fatalf("voted results %d, want 10", len(*results))
	}
	// Majority (nodes 0, 2) is correct: results must match a clean
	// state machine.
	ref := &StateMachine{}
	for i, got := range *results {
		want := ref.Apply(int64(i + 1))
		if got != want {
			t.Fatalf("request %d: voted %d, want %d (value fault leaked)", i+1, got, want)
		}
	}
}

func TestActiveReplicationSurvivesCrashWithoutFailover(t *testing.T) {
	r := rig(t, 4)
	g, results := newGroup(t, r, Active, []int{0, 1, 2})
	fault.CrashAt(r.eng, r.net, 1, vtime.Time(3*ms), 0)
	drive(r, g, 3, 10)
	r.eng.Run(vtime.Time(100 * ms))
	if len(*results) != 10 {
		t.Fatalf("results %d, want 10 (majority alive)", len(*results))
	}
	if len(g.Failovers) != 0 {
		t.Fatal("active replication must not fail over")
	}
}

func TestPassiveReplicationFailover(t *testing.T) {
	r := rig(t, 4)
	g, results := newGroup(t, r, Passive, []int{0, 1, 2})
	crashAt := vtime.Time(10*ms + 500*us)
	fault.CrashAt(r.eng, r.net, 0, crashAt, 0)
	drive(r, g, 3, 30)
	r.eng.Run(vtime.Time(300 * ms))
	if len(g.Failovers) != 1 {
		t.Fatalf("failovers %d, want 1", len(g.Failovers))
	}
	fo := g.Failovers[0]
	if fo.From != 0 || fo.To != 1 {
		t.Fatalf("failover %+v", fo)
	}
	// Detection + promotion happens within the detector bound.
	lat := fo.At.Sub(crashAt)
	if lat > 50*ms {
		t.Fatalf("failover latency %s too large", lat)
	}
	// Work since the last checkpoint is lost (checkpoint every 5).
	if fo.LostSince == 0 || fo.LostSince > 5 {
		t.Fatalf("lost work %d, want in (0,5]", fo.LostSince)
	}
	// The new primary keeps serving.
	if len(*results) == 0 {
		t.Fatal("no results at all")
	}
	post := 0
	for _, e := range r.eng.Log().ByKind(monitor.KindFailover) {
		_ = e
		post++
	}
	if post != 1 {
		t.Fatalf("failover events %d", post)
	}
}

func TestSemiActiveFailoverLosesNothing(t *testing.T) {
	r := rig(t, 4)
	g, _ := newGroup(t, r, SemiActive, []int{0, 1, 2})
	fault.CrashAt(r.eng, r.net, 0, vtime.Time(10*ms+500*us), 0)
	drive(r, g, 3, 30)
	r.eng.Run(vtime.Time(300 * ms))
	if len(g.Failovers) != 1 {
		t.Fatalf("failovers %d, want 1", len(g.Failovers))
	}
	if g.LostWork != 0 {
		t.Fatalf("semi-active lost %d requests, want 0 (followers execute everything)", g.LostWork)
	}
}

func TestPassiveCheckpointsReachBackups(t *testing.T) {
	r := rig(t, 4)
	g, _ := newGroup(t, r, Passive, []int{0, 1, 2})
	drive(r, g, 3, 12)
	r.eng.Run(vtime.Time(100 * ms))
	// 12 requests, checkpoint every 5: at least 2 checkpoints.
	if n := r.eng.Log().CountKind(monitor.KindCheckpoint); n < 2 {
		t.Fatalf("checkpoints %d, want >= 2", n)
	}
	// Backups hold a recent state (within CheckpointEvery of primary).
	primary := g.Machine(0)
	backup := g.Machine(1)
	if primary.Applied-backup.Applied > 5 {
		t.Fatalf("backup lag %d > checkpoint interval", primary.Applied-backup.Applied)
	}
	// Backups must not have executed requests themselves beyond
	// checkpoint application.
	if backup.Applied > primary.Applied {
		t.Fatal("backup ran ahead of primary")
	}
}

func TestStyleCostsDiffer(t *testing.T) {
	// Active replication burns CPU on every replica; passive only on
	// the primary. Compare total execution CPU.
	runStyle := func(style Style) vtime.Duration {
		r := rig(t, 4)
		g, _ := newGroup(t, r, style, []int{0, 1, 2})
		drive(r, g, 3, 20)
		r.eng.Run(vtime.Time(100 * ms))
		var busy vtime.Duration
		for _, p := range r.eng.Processors()[:3] {
			busy += p.BusyTime()
		}
		return busy
	}
	active := runStyle(Active)
	passive := runStyle(Passive)
	if active <= passive {
		t.Fatalf("active CPU %s not above passive %s", active, passive)
	}
}

func TestGroupValidation(t *testing.T) {
	r := rig(t, 2)
	if _, err := NewGroup(r.eng, r.net, r.mem, Config{Name: "x", Replicas: []int{0}}, nil); err == nil {
		t.Fatal("single replica accepted")
	}
	if _, err := NewGroup(r.eng, r.net, nil, Config{Name: "x", Replicas: []int{0, 1}, Style: Passive}, nil); err == nil {
		t.Fatal("passive without membership accepted")
	}
	if _, err := NewGroup(r.eng, r.net, nil, Config{Name: "x", Replicas: []int{0, 1}, Style: Active}, nil); err != nil {
		t.Fatalf("active without membership rejected: %v", err)
	}
	if _, err := NewGroup(r.eng, r.net, r.mem, Config{Name: "x", Replicas: []int{0, 9}, Style: Passive}, nil); err == nil {
		t.Fatal("replica outside the membership universe accepted")
	}
}

// TestFailoverIsViewDriven: the promotion instant coincides with the
// installation of the view that excludes the old primary, and the
// Failover record names that view.
func TestFailoverIsViewDriven(t *testing.T) {
	r := rig(t, 4)
	g, _ := newGroup(t, r, Passive, []int{0, 1, 2})
	fault.CrashAt(r.eng, r.net, 0, vtime.Time(10*ms), 0)
	drive(r, g, 3, 30)
	r.eng.Run(vtime.Time(300 * ms))
	if len(g.Failovers) != 1 {
		t.Fatalf("failovers %d, want 1", len(g.Failovers))
	}
	fo := g.Failovers[0]
	var installAt vtime.Time
	for _, in := range r.mem.Installs {
		if in.View.ID == fo.InView {
			installAt = in.At
		}
	}
	if installAt == 0 || fo.At != installAt {
		t.Fatalf("failover at %s, view %d installed at %s — not view-driven", fo.At, fo.InView, installAt)
	}
	if fo.InView != 2 {
		t.Fatalf("failover in view %d, want 2", fo.InView)
	}
}

// TestStateTransferWhenDonorIsNotAReplica: the membership-chosen
// donor (lowest live member of the previous view) may not be a
// replica; the snapshot must still come from a live replica
// (regression: a nil donor machine silently skipped the transfer).
func TestStateTransferWhenDonorIsNotAReplica(t *testing.T) {
	r := rig(t, 4) // membership over 0-3; node 0 is a pure member
	g, _ := newGroup(t, r, Passive, []int{1, 2})
	fault.CrashAt(r.eng, r.net, 2, vtime.Time(10*ms), vtime.Time(100*ms))
	drive(r, g, 3, 60)
	r.eng.Run(vtime.Time(400 * ms))
	// The rejoin's membership donor is node 0 (lowest live previous
	// member), which holds no replica state — the snapshot must fall
	// back to primary 1.
	if len(r.mem.Transfers) != 1 {
		t.Fatalf("transfers %+v, want exactly 1", r.mem.Transfers)
	}
	if g.Machine(2).Applied == 0 {
		t.Fatal("rejoined backup never restored state")
	}
	if lag := g.Machine(1).Applied - g.Machine(2).Applied; lag < 0 || lag > 5 {
		t.Fatalf("rejoined backup lag %d outside [0, checkpoint interval]", lag)
	}
}

// TestRejoinedPrimaryRestoredAsBackup: a crashed-then-recovered former
// primary rejoins the group as a backup (sticky leadership) with its
// state machine restored by the join state transfer.
func TestRejoinedPrimaryRestoredAsBackup(t *testing.T) {
	r := rig(t, 4)
	g, _ := newGroup(t, r, Passive, []int{0, 1, 2})
	fault.CrashAt(r.eng, r.net, 0, vtime.Time(10*ms), vtime.Time(100*ms))
	drive(r, g, 3, 60)
	r.eng.Run(vtime.Time(400 * ms))
	if len(g.Failovers) != 1 {
		t.Fatalf("failovers %+v, want exactly 1 (leadership is sticky)", g.Failovers)
	}
	if got := g.Primary(); got != 1 {
		t.Fatalf("primary %d after rejoin, want 1", got)
	}
	// The rejoined replica was restored and kept fed by checkpoints.
	final := r.mem.CurrentView(0)
	if !final.Contains(0) {
		t.Fatalf("node 0 not back in the view: %v", final)
	}
	rejoined, primary := g.Machine(0), g.Machine(1)
	if rejoined.Applied == 0 {
		t.Fatal("rejoined replica never restored state")
	}
	if lag := primary.Applied - rejoined.Applied; lag < 0 || lag > 5 {
		t.Fatalf("rejoined replica lag %d outside [0, checkpoint interval]", lag)
	}
}

func TestStyleNames(t *testing.T) {
	for _, s := range []Style{Active, Passive, SemiActive} {
		if s.String() == "unknown" {
			t.Errorf("style %d unnamed", s)
		}
	}
}

// TestPartitionSplitBrainSafety: the primary is segmented off alone
// (not crashed). Exactly one side — the majority — promotes, the
// isolated ex-primary installs no view while partitioned, and after
// the heal it is re-admitted through a merge view with the
// authoritative majority state restored.
func TestPartitionSplitBrainSafety(t *testing.T) {
	r := rig(t, 4)
	g, _ := newGroup(t, r, Passive, []int{0, 1, 2})
	splitAt := vtime.Time(30 * ms)
	healAt := vtime.Time(150 * ms)
	// The client (node 3) stays with the majority side.
	r.net.PartitionAt(splitAt, []int{0}, []int{1, 2, 3})
	r.net.HealAt(healAt)
	drive(r, g, 3, 300)
	r.eng.Run(vtime.Time(400 * ms))

	// Exactly one promotion, on the majority side, in the removal view.
	if len(g.Failovers) != 1 {
		t.Fatalf("failovers %+v, want exactly 1 (no second leader anywhere)", g.Failovers)
	}
	fo := g.Failovers[0]
	if fo.From != 0 || fo.To != 1 || fo.InView != 2 {
		t.Fatalf("failover %+v", fo)
	}
	// The isolated minority installed nothing during the split.
	hist := r.mem.History(0)
	if len(hist) != 2 || hist[0].ID != 1 || hist[1].ID != 3 {
		t.Fatalf("minority history %v, want [v1 v3]", hist)
	}
	if b := r.mem.BlockedTime(0); b == 0 {
		t.Fatal("minority blocked time not recorded")
	}
	// The merge re-admitted the ex-primary as a backup with the
	// majority's state (sticky leadership + state transfer).
	if len(r.mem.Merges) != 1 {
		t.Fatalf("merges %+v, want 1", r.mem.Merges)
	}
	if g.Primary() != 1 {
		t.Fatalf("primary %d after merge, want 1", g.Primary())
	}
	if len(r.mem.Transfers) != 1 || r.mem.Transfers[0].To != 0 {
		t.Fatalf("transfers %+v, want exactly one to the re-admitted node", r.mem.Transfers)
	}
	// All replicas converged onto the majority log: the re-admitted
	// replica trails the primary by at most one checkpoint interval.
	primary, rejoined := g.Machine(1), g.Machine(0)
	if rejoined.Applied == 0 {
		t.Fatal("re-admitted replica never restored state")
	}
	if lag := primary.Applied - rejoined.Applied; lag < 0 || lag > 5 {
		t.Fatalf("re-admitted replica lag %d outside [0, checkpoint interval]", lag)
	}
}

// TestStaleCheckpointFlushedAtViewBoundary: a checkpoint from an
// ex-primary carrying an older view must be discarded by the receiver
// after the newer view installed — applying it would smuggle a
// pre-partition update past the boundary.
func TestStaleCheckpointFlushedAtViewBoundary(t *testing.T) {
	r := rig(t, 4)
	g, _ := newGroup(t, r, Passive, []int{0, 1, 2})
	r.net.PartitionAt(vtime.Time(10*ms), []int{0}, []int{1, 2, 3})
	r.net.HealAt(vtime.Time(100 * ms))
	drive(r, g, 3, 40)
	r.eng.Run(vtime.Time(100 * ms)) // v2{1,2,3} installed, 0 excluded
	// Immediately after the heal — before the merge view re-admits
	// node 0 — the isolated ex-primary's stale checkpoint reaches a
	// majority backup.
	before := g.Machine(2).Applied
	if _, err := r.net.Send(0, 2, g.port("ckpt"), ckptMsg{State: -777, Applied: 999, View: 1}, 24); err != nil {
		t.Fatal(err)
	}
	r.eng.Run(vtime.Time(103 * ms))
	if g.Flushed != 1 {
		t.Fatalf("flushed %d, want 1 (stale checkpoint must be discarded)", g.Flushed)
	}
	sm := g.Machine(2)
	if sm.State == -777 || sm.Applied == 999 {
		t.Fatalf("stale checkpoint applied: %+v", sm)
	}
	if sm.Applied < before {
		t.Fatalf("backup rolled back: %d < %d", sm.Applied, before)
	}
	if r.eng.Log().CountKind(monitor.KindFlush) == 0 {
		t.Fatal("flush not recorded in the monitor log")
	}
}

// TestTaggedRequestDedup: resubmitting a request with the same client
// tag is answered from the replicated dedup cache instead of applied
// again — the exactly-once contract the sharded client layer's
// retries rely on.
func TestTaggedRequestDedup(t *testing.T) {
	r := rig(t, 4)
	g, results := newGroup(t, r, SemiActive, []int{0, 1, 2})
	tag := ClientSeq{Client: 42, Seq: 1}
	r.eng.At(vtime.Time(1*ms), eventq.ClassApp, func() { g.SubmitTagged(0, 7, tag) })
	r.eng.At(vtime.Time(5*ms), eventq.ClassApp, func() { g.SubmitTagged(0, 7, tag) }) // a retry
	r.eng.At(vtime.Time(9*ms), eventq.ClassApp, func() { g.SubmitTagged(0, 9, ClientSeq{Client: 42, Seq: 2}) })
	r.eng.Run(vtime.Time(30 * ms))

	if got := g.Machine(0).Applied; got != 2 {
		t.Fatalf("leader applied %d commands, want 2 (retry suppressed)", got)
	}
	if g.Duplicates == 0 {
		t.Fatal("no duplicate recorded")
	}
	if len(*results) != 3 {
		t.Fatalf("replies %d, want 3 (duplicates still answered)", len(*results))
	}
	if (*results)[0] != (*results)[1] {
		t.Fatalf("retry answered %d, original %d — cache miss", (*results)[1], (*results)[0])
	}
	// Followers deduplicate identically (they execute everything).
	if got := g.Machine(1).Applied; got != 2 {
		t.Fatalf("follower applied %d commands, want 2", got)
	}
}

// TestDedupSurvivesFailover: a request applied by the leader and its
// followers just before the leader crashes is answered from the new
// leader's dedup cache when retried — not applied twice.
func TestDedupSurvivesFailover(t *testing.T) {
	r := rig(t, 4)
	g, results := newGroup(t, r, SemiActive, []int{0, 1, 2})
	tag := ClientSeq{Client: 7, Seq: 1}
	r.eng.At(vtime.Time(1*ms), eventq.ClassApp, func() { g.SubmitTagged(0, 5, tag) })
	fault.CrashAt(r.eng, r.net, 0, vtime.Time(5*ms), 0)
	// Retry against the group after the failover view installed.
	r.eng.At(vtime.Time(60*ms), eventq.ClassApp, func() { g.SubmitTagged(1, 5, tag) })
	r.eng.Run(vtime.Time(100 * ms))

	if len(g.Failovers) != 1 {
		t.Fatalf("failovers %+v, want 1", g.Failovers)
	}
	p := g.Primary()
	if got := g.Machine(p).Applied; got != 1 {
		t.Fatalf("new leader applied %d, want 1 (retry suppressed by replicated dedup)", got)
	}
	if len(*results) < 2 {
		t.Fatalf("replies %d, want the original and the cached retry", len(*results))
	}
	last := (*results)[len(*results)-1]
	if last != (*results)[0] {
		t.Fatalf("cached retry answered %d, original %d", last, (*results)[0])
	}
}

// TestDedupSurvivesJoinTransferThenMergeView pins the PR 4 transfer
// path under a back-to-back recovery sequence: the same replica first
// rejoins after a crash (join state transfer carries the Seen table),
// then is partitioned off and re-admitted through a merge view (a
// second state transfer). After BOTH transitions the replica must
// still suppress a retry of a request applied before the crash —
// i.e. the replicated dedup table survives each hop of the
// snapshot/restore chain, not just the first.
func TestDedupSurvivesJoinTransferThenMergeView(t *testing.T) {
	r := rig(t, 4)
	g, results := newGroup(t, r, SemiActive, []int{0, 1, 2})
	tag := ClientSeq{Client: 11, Seq: 1}
	r.eng.At(vtime.Time(1*ms), eventq.ClassApp, func() { g.SubmitTagged(3, 7, tag) })
	// Crash replica 2 after the apply; it rejoins with a join state
	// transfer at 100 ms.
	fault.CrashAt(r.eng, r.net, 2, vtime.Time(5*ms), vtime.Time(100*ms))
	r.eng.Run(vtime.Time(150 * ms)) // join view installed, transfer done
	if len(r.mem.Transfers) != 1 {
		t.Fatalf("transfers after rejoin %+v, want 1", r.mem.Transfers)
	}
	if len(g.Machine(2).Seen) != 1 {
		t.Fatalf("join transfer dropped the dedup table: %d entries, want 1", len(g.Machine(2).Seen))
	}
	// Immediately partition the same replica off; the majority excludes
	// it, and the heal re-admits it through a merge view with a second
	// state transfer.
	r.net.PartitionAt(vtime.Time(151*ms), []int{2}, []int{0, 1, 3})
	r.net.HealAt(vtime.Time(220 * ms))
	r.eng.Run(vtime.Time(300 * ms))
	if len(r.mem.Merges) != 1 {
		t.Fatalf("merges %+v, want 1", r.mem.Merges)
	}
	if got := len(r.mem.Transfers); got != 2 {
		t.Fatalf("transfers after merge %d, want 2 (join + merge re-admission)", got)
	}
	if len(g.Machine(2).Seen) != 1 {
		t.Fatalf("merge transfer dropped the dedup table: %d entries, want 1", len(g.Machine(2).Seen))
	}
	// The retry of the pre-crash request must be a cache hit everywhere
	// — including at the twice-restored replica.
	applied := g.Machine(2).Applied
	r.eng.At(vtime.Time(301*ms), eventq.ClassApp, func() { g.SubmitTagged(3, 7, tag) })
	r.eng.Run(vtime.Time(350 * ms))
	if g.Duplicates == 0 {
		t.Fatal("retry after join+merge not suppressed by the dedup table")
	}
	if got := g.Machine(2).Applied; got != applied {
		t.Fatalf("twice-restored replica re-applied the retry: %d -> %d", applied, got)
	}
	if last, first := (*results)[len(*results)-1], (*results)[0]; last != first {
		t.Fatalf("cached retry answered %d, original %d", last, first)
	}
}

// TestDedupTravelsWithPassiveCheckpoint: the dedup table moves with
// the state — a passive checkpoint carries it, so a promoted backup
// suppresses exactly the duplicates its restored state covers.
func TestDedupTravelsWithPassiveCheckpoint(t *testing.T) {
	r := rig(t, 4)
	g, _ := newGroup(t, r, Passive, []int{0, 1, 2}) // CheckpointEvery: 5
	for i := 0; i < 5; i++ {
		cmd := int64(i + 1)
		seq := uint64(i + 1)
		r.eng.At(vtime.Time(vtime.Duration(i)*ms), eventq.ClassApp, func() {
			g.SubmitTagged(3, cmd, ClientSeq{Client: 9, Seq: seq})
		})
	}
	r.eng.Run(vtime.Time(20 * ms))
	if len(g.Machine(1).Seen) != 5 {
		t.Fatalf("backup dedup table has %d entries after the checkpoint, want 5", len(g.Machine(1).Seen))
	}
	// Crash the primary; the promoted backup must suppress a retry of
	// a checkpointed request.
	fault.CrashAt(r.eng, r.net, 0, vtime.Time(21*ms), 0)
	r.eng.At(vtime.Time(80*ms), eventq.ClassApp, func() {
		g.SubmitTagged(3, 3, ClientSeq{Client: 9, Seq: 3})
	})
	r.eng.Run(vtime.Time(120 * ms))
	p := g.Primary()
	if p == 0 {
		t.Fatal("no failover")
	}
	if got := g.Machine(p).Applied; got != 5 {
		t.Fatalf("promoted backup applied %d, want 5 (checkpointed retry suppressed)", got)
	}
}
