package feasibility_test

import (
	"fmt"

	"hades/internal/dispatcher"
	"hades/internal/feasibility"
	"hades/internal/vtime"
)

// ExampleEDFSpuri runs the §5 admission test both ways: the naive
// cost-free analysis admits a tight task set that the §5.3
// cost-integrated test — which knows what the middleware really costs —
// correctly refuses.
func ExampleEDFSpuri() {
	ms := vtime.Millisecond
	tasks := []feasibility.Task{
		{Name: "a", C: 4500 * vtime.Microsecond, D: 5 * ms, T: 5 * ms, NumEU: 1},
		{Name: "b", C: 900 * vtime.Microsecond, D: 10 * ms, T: 10 * ms, NumEU: 1},
	}
	naive := feasibility.EDFSpuri(tasks, nil)
	ov := &feasibility.Overheads{
		Book:      dispatcher.DefaultCostBook(),
		SchedCost: 20 * vtime.Microsecond,
	}
	integrated := feasibility.EDFSpuri(tasks, ov)
	fmt.Printf("naive=%v integrated=%v\n", naive.Feasible, integrated.Feasible)
	// Output: naive=true integrated=false
}

// ExampleResponseTime computes worst-case response times under
// Rate-Monotonic priorities for a textbook task set.
func ExampleResponseTime() {
	ms := vtime.Millisecond
	tasks := []feasibility.Task{
		{Name: "t1", C: 1 * ms, D: 5 * ms, T: 5 * ms, NumEU: 1},
		{Name: "t2", C: 2 * ms, D: 10 * ms, T: 10 * ms, NumEU: 1},
		{Name: "t3", C: 3 * ms, D: 20 * ms, T: 20 * ms, NumEU: 1},
	}
	rs, all := feasibility.ResponseTime(tasks, feasibility.RateMonotonic, nil)
	fmt.Println("schedulable:", all)
	for _, r := range rs {
		fmt.Printf("%s R=%s\n", r.Task, r.R)
	}
	// Output:
	// schedulable: true
	// t1 R=1ms
	// t2 R=3ms
	// t3 R=7ms
}
