package feasibility

import (
	"fmt"
	"sort"

	"hades/internal/vtime"
)

// maxBusyIterations bounds the busy-period fixpoint computation.
const maxBusyIterations = 10000

// srpBlocking returns B(l): the worst-case blocking a deadline at
// distance l can suffer under EDF+SRP — the longest critical section of
// a task with relative deadline greater than l whose resource is also
// used by some task with relative deadline at most l (only then does the
// resource's preemption ceiling reach the blocked band). This is the
// blocking term of [Spu96] theorem 7.1 specialised to single outer
// critical sections.
func srpBlocking(tasks []Task, l vtime.Duration, ov *Overheads) vtime.Duration {
	var blocking vtime.Duration
	for _, j := range tasks {
		if j.CS == 0 || j.D <= l {
			continue
		}
		shared := false
		for _, k := range tasks {
			if k.Name != j.Name && k.D <= l && k.Resource == j.Resource && k.Resource != "" {
				shared = true
				break
			}
		}
		if !shared {
			continue
		}
		cs := j.CS
		if ov != nil {
			cs = ov.InflateB(cs)
		}
		if cs > blocking {
			blocking = cs
		}
	}
	return blocking
}

// demand returns h(l): the processor demand of jobs with both release
// and deadline inside a synchronous interval of length l:
// Σ_{D_i ≤ l} (floor((l−D_i)/T_i)+1)·C_i, with WCETs inflated when
// overheads apply.
func demand(tasks []Task, l vtime.Duration, ov *Overheads) vtime.Duration {
	var h vtime.Duration
	for _, t := range tasks {
		if t.D > l {
			continue
		}
		jobs := vtime.FloorDiv(l-t.D, t.T) + 1
		h += vtime.Duration(jobs) * effectiveC(t, ov)
	}
	return h
}

// maxBusyPeriod caps the busy-period search: loads whose busy period
// exceeds this are treated as divergent (utilisation ≥ 1 with
// overheads). Generous: four orders of magnitude above realistic
// hyperperiods for the paper's 1–100 ms task domain.
const maxBusyPeriod = vtime.Duration(1) << 45 // ≈ 9.7 hours

// busyPeriod computes the length of the synchronous busy period: the
// smallest fixpoint of L = Σ ceil(L/T_i)·C'_i + sched(L) + kern(L).
// It returns 0 and false when the load diverges (utilisation ≥ 1
// including overheads). The iteration is monotone nondecreasing, so a
// decrease can only mean int64 overflow — also divergence.
func busyPeriod(tasks []Task, ov *Overheads) (vtime.Duration, bool) {
	var l vtime.Duration
	for _, t := range tasks {
		l += effectiveC(t, ov)
	}
	if l == 0 {
		return 0, true
	}
	for iter := 0; iter < maxBusyIterations; iter++ {
		var next vtime.Duration
		for _, t := range tasks {
			next += vtime.Duration(vtime.CeilDiv(l, t.T)) * effectiveC(t, ov)
		}
		if ov != nil {
			next += ov.SchedDemand(tasks, l) + ov.KernelDemand(l) + ov.ViewChangeBlackout
		}
		if next == l {
			return l, true
		}
		if next < l || next > maxBusyPeriod {
			return 0, false
		}
		l = next
	}
	return 0, false
}

// EDFSpuri is the processor-demand feasibility test for EDF with SRP of
// [Spu96] theorem 7.1 (the paper's §5.1): every absolute deadline d in
// the first synchronous busy period must satisfy
//
//	h(d) + B(d) ≤ d                               (naive, ov == nil)
//	h'(d) + B'(d) + sched(d) + kern(d) + V ≤ d    (§5.3 cost-integrated)
//
// where the primed quantities fold in the §4.1 dispatcher constants,
// the sched/kern terms are the scheduler and kernel activities that
// "always execute at a higher priority" (§5.3 withdraws them from the
// available time — moved to the left-hand side here, equivalently),
// and V is the optional view-change blackout (one membership failover
// window, membership.Service.Bound(), charged once at top priority).
func EDFSpuri(tasks []Task, ov *Overheads) Verdict {
	if len(tasks) == 0 {
		return Verdict{Feasible: true}
	}
	// Quick necessary condition: utilisation below 1.
	u := 0.0
	for _, t := range tasks {
		u += float64(effectiveC(t, ov)) / float64(t.T)
	}
	if u > 1 {
		return Verdict{Feasible: false, Why: fmt.Sprintf("utilisation %.4f > 1 (with overheads)", u)}
	}
	lstar, ok := busyPeriod(tasks, ov)
	if !ok {
		return Verdict{Feasible: false, Why: "busy period diverges"}
	}
	// Collect every absolute deadline within the busy period.
	var points []vtime.Duration
	for _, t := range tasks {
		for d := t.D; d <= lstar; d += t.T {
			points = append(points, d)
			if t.T == 0 {
				break
			}
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	checked := 0
	var last vtime.Duration = -1
	for _, d := range points {
		if d == last {
			continue
		}
		last = d
		checked++
		need := demand(tasks, d, ov) + srpBlocking(tasks, d, ov)
		if ov != nil {
			need += ov.SchedDemand(tasks, d) + ov.KernelDemand(d) + ov.ViewChangeBlackout
		}
		if need > d {
			return Verdict{
				Feasible:   false,
				Why:        fmt.Sprintf("demand %s exceeds interval %s", need, d),
				BusyPeriod: lstar,
				FailAt:     d,
				Checked:    checked,
			}
		}
	}
	return Verdict{Feasible: true, BusyPeriod: lstar, Checked: checked}
}
