package feasibility

import (
	"math/rand"
	"testing"

	"hades/internal/dispatcher"
	"hades/internal/vtime"
)

func benchSets(n int, u float64) [][]Task {
	rng := rand.New(rand.NewSource(1))
	sets := make([][]Task, 64)
	for i := range sets {
		sets[i] = Generate(rng, DefaultGenConfig(n, u))
	}
	return sets
}

func BenchmarkEDFSpuriNaive(b *testing.B) {
	sets := benchSets(8, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EDFSpuri(sets[i%len(sets)], nil)
	}
}

func BenchmarkEDFSpuriIntegrated(b *testing.B) {
	sets := benchSets(8, 0.8)
	ov := &Overheads{Book: dispatcher.DefaultCostBook(), SchedCost: 20 * vtime.Microsecond}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EDFSpuri(sets[i%len(sets)], ov)
	}
}

func BenchmarkResponseTimeAnalysis(b *testing.B) {
	sets := benchSets(10, 0.7)
	ov := &Overheads{Book: dispatcher.DefaultCostBook(), SchedCost: 20 * vtime.Microsecond}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ResponseTime(sets[i%len(sets)], DeadlineMonotonic, ov)
	}
}

func BenchmarkGenerate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultGenConfig(10, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(rng, cfg)
	}
}
