package feasibility

import (
	"fmt"
	"sort"

	"hades/internal/vtime"
)

// PriorityOrder selects the static-priority assignment analysed by the
// response-time test.
type PriorityOrder uint8

// Priority orders.
const (
	// RateMonotonic orders by period: shorter period → higher priority.
	RateMonotonic PriorityOrder = iota + 1
	// DeadlineMonotonic orders by relative deadline.
	DeadlineMonotonic
)

// Response is the analysed worst-case response time of one task.
type Response struct {
	Task     string
	R        vtime.Duration
	Blocking vtime.Duration
	Meets    bool
}

// ResponseTime performs exact response-time analysis for fixed-priority
// preemptive scheduling (D ≤ T), the classic recurrence
//
//	R_i = C'_i + B_i + Σ_{j ∈ hp(i)} ceil(R_i/T_j)·C'_j + sched + kern
//
// extended with the §4 middleware costs in the manner of [BTW95] (which
// §5.3 cites as prior art for Deadline Monotonic): WCETs are inflated
// with dispatcher constants, scheduler notifications and kernel
// interrupts interfere as sporadic highest-priority activities. With
// ov == nil the test is the idealised textbook analysis. Blocking uses
// the PCP/SRP single-critical-section bound: the longest critical
// section of a lower-priority task whose resource is shared with an
// equal-or-higher-priority task.
func ResponseTime(tasks []Task, order PriorityOrder, ov *Overheads) ([]Response, bool) {
	sorted := make([]Task, len(tasks))
	copy(sorted, tasks)
	sort.SliceStable(sorted, func(i, j int) bool {
		switch order {
		case DeadlineMonotonic:
			return sorted[i].D < sorted[j].D
		default:
			return sorted[i].T < sorted[j].T
		}
	})
	out := make([]Response, len(sorted))
	all := true
	for i, t := range sorted {
		b := fpBlocking(sorted, i, ov)
		r, converged := fixpoint(sorted, i, b, ov)
		meets := converged && r <= t.D
		out[i] = Response{Task: t.Name, R: r, Blocking: b, Meets: meets}
		if !meets {
			all = false
		}
	}
	return out, all
}

// fpBlocking is the fixed-priority blocking bound for the task at index
// i of the priority-sorted slice.
func fpBlocking(sorted []Task, i int, ov *Overheads) vtime.Duration {
	var blocking vtime.Duration
	for j := i + 1; j < len(sorted); j++ {
		lp := sorted[j]
		if lp.CS == 0 {
			continue
		}
		shared := false
		for k := 0; k <= i; k++ {
			if sorted[k].Resource == lp.Resource && sorted[k].Resource != "" {
				shared = true
				break
			}
		}
		if !shared {
			continue
		}
		cs := lp.CS
		if ov != nil {
			cs = ov.InflateB(cs)
		}
		if cs > blocking {
			blocking = cs
		}
	}
	return blocking
}

// fixpoint iterates the response-time recurrence for sorted[i].
func fixpoint(sorted []Task, i int, blocking vtime.Duration, ov *Overheads) (vtime.Duration, bool) {
	t := sorted[i]
	r := effectiveC(t, ov) + blocking
	for iter := 0; iter < maxBusyIterations; iter++ {
		next := effectiveC(t, ov) + blocking
		for j := 0; j < i; j++ {
			hp := sorted[j]
			next += vtime.Duration(vtime.CeilDiv(r, hp.T)) * effectiveC(hp, ov)
		}
		if ov != nil {
			next += ov.SchedDemand(sorted, r) + ov.KernelDemand(r)
		}
		if next == r {
			return r, true
		}
		if next > 10*t.D && t.D > 0 {
			return next, false // diverging well past the deadline
		}
		r = next
	}
	return r, false
}

// Pessimism compares two overhead books on the same task set: it
// reports the sets admitted under precise costs but rejected under crude
// (inflated) ones — the paper's §2.2.2 argument that imprecise cost
// information "leads to a negative answer from the scheduling test,
// forbidding the execution of the application in spite of its actual
// feasibility".
func Pessimism(tasks []Task, precise, crude *Overheads) (admitPrecise, admitCrude bool, detail string) {
	vp := EDFSpuri(tasks, precise)
	vc := EDFSpuri(tasks, crude)
	detail = fmt.Sprintf("precise: %v, crude: %v", vp.Feasible, vc.Feasible)
	return vp.Feasible, vc.Feasible, detail
}
