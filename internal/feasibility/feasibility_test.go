package feasibility

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

func TestLiuLaylandBound(t *testing.T) {
	// Two tasks: bound is 2(2^0.5 - 1) ≈ 0.828.
	mk := func(c, p vtime.Duration) Task {
		return Task{C: c, D: p, T: p, NumEU: 1}
	}
	ok := []Task{mk(2*ms, 10*ms), mk(3*ms, 10*ms)} // U = 0.5
	if v := LiuLayland(ok); !v.Feasible {
		t.Fatalf("U=0.5 rejected: %s", v.Why)
	}
	bad := []Task{mk(5*ms, 10*ms), mk(4*ms, 10*ms)} // U = 0.9 > 0.828
	if v := LiuLayland(bad); v.Feasible {
		t.Fatal("U=0.9 accepted by the LL bound")
	}
	if v := LiuLayland(nil); !v.Feasible {
		t.Fatal("empty set must be feasible")
	}
}

func TestResponseTimeAnalysisTextbook(t *testing.T) {
	// Textbook example: t1=(1,5), t2=(2,10), t3=(3,20) under RM.
	// R1 = 1. R2 = 2 + 1 = 3. R3: 3 + 2·1 + 1·2 = 7 (t3 runs 3–5,
	// is preempted by t1's second job at 5, finishes 6–7).
	tasks := []Task{
		{Name: "t1", C: 1 * ms, D: 5 * ms, T: 5 * ms, NumEU: 1},
		{Name: "t2", C: 2 * ms, D: 10 * ms, T: 10 * ms, NumEU: 1},
		{Name: "t3", C: 3 * ms, D: 20 * ms, T: 20 * ms, NumEU: 1},
	}
	rs, all := ResponseTime(tasks, RateMonotonic, nil)
	if !all {
		t.Fatal("set must be schedulable")
	}
	want := []vtime.Duration{1 * ms, 3 * ms, 7 * ms}
	for i, r := range rs {
		if r.R != want[i] {
			t.Errorf("R(%s) = %s, want %s", r.Task, r.R, want[i])
		}
	}
}

func TestResponseTimeDetectsOverload(t *testing.T) {
	tasks := []Task{
		{Name: "t1", C: 3 * ms, D: 5 * ms, T: 5 * ms, NumEU: 1},
		{Name: "t2", C: 5 * ms, D: 10 * ms, T: 10 * ms, NumEU: 1},
	}
	_, all := ResponseTime(tasks, RateMonotonic, nil)
	if all {
		t.Fatal("U=1.1 accepted")
	}
}

func TestRTABlockingTerm(t *testing.T) {
	// High-priority task shares R with a low-priority task: B(high) =
	// CS(low).
	tasks := []Task{
		{Name: "hi", C: 1 * ms, D: 5 * ms, T: 5 * ms, CS: 200 * us, Resource: "R", NumEU: 3},
		{Name: "lo", C: 2 * ms, D: 50 * ms, T: 50 * ms, CS: 1 * ms, Resource: "R", NumEU: 3},
	}
	rs, _ := ResponseTime(tasks, DeadlineMonotonic, nil)
	if rs[0].Blocking != 1*ms {
		t.Fatalf("B(hi) = %s, want 1ms (lo's critical section)", rs[0].Blocking)
	}
	if rs[1].Blocking != 0 {
		t.Fatalf("B(lo) = %s, want 0 (nothing lower)", rs[1].Blocking)
	}
}

func TestEDFSpuriFeasibleSet(t *testing.T) {
	tasks := []Task{
		{Name: "a", C: 1 * ms, D: 4 * ms, T: 10 * ms, NumEU: 1},
		{Name: "b", C: 2 * ms, D: 8 * ms, T: 20 * ms, NumEU: 1},
		{Name: "c", C: 3 * ms, D: 15 * ms, T: 30 * ms, NumEU: 1},
	}
	v := EDFSpuri(tasks, nil)
	if !v.Feasible {
		t.Fatalf("U=0.3 constrained set rejected: %s (at %s)", v.Why, v.FailAt)
	}
	if v.Checked == 0 {
		t.Fatal("no deadlines checked")
	}
}

func TestEDFSpuriInfeasibleByDemand(t *testing.T) {
	// Tight deadlines make the demand at d=1ms exceed supply even
	// though U < 1.
	tasks := []Task{
		{Name: "a", C: 1 * ms, D: 1 * ms, T: 10 * ms, NumEU: 1},
		{Name: "b", C: 1 * ms, D: 1 * ms, T: 10 * ms, NumEU: 1},
	}
	v := EDFSpuri(tasks, nil)
	if v.Feasible {
		t.Fatal("2ms of work due at 1ms accepted")
	}
	if v.FailAt != 1*ms {
		t.Fatalf("FailAt = %s, want 1ms", v.FailAt)
	}
}

func TestEDFSpuriOverUtilised(t *testing.T) {
	tasks := []Task{
		{Name: "a", C: 6 * ms, D: 10 * ms, T: 10 * ms, NumEU: 1},
		{Name: "b", C: 6 * ms, D: 10 * ms, T: 10 * ms, NumEU: 1},
	}
	if v := EDFSpuri(tasks, nil); v.Feasible {
		t.Fatal("U=1.2 accepted")
	}
}

func TestSRPBlockingSemantics(t *testing.T) {
	// Long-deadline resource user blocks short-deadline tasks only if
	// the resource is shared with a short-deadline task.
	shared := []Task{
		{Name: "short", C: 1 * ms, D: 5 * ms, T: 20 * ms, CS: 100 * us, Resource: "R", NumEU: 3},
		{Name: "long", C: 2 * ms, D: 50 * ms, T: 50 * ms, CS: 2 * ms, Resource: "R", NumEU: 3},
	}
	if b := srpBlocking(shared, 5*ms, nil); b != 2*ms {
		t.Fatalf("B(5ms) = %s, want 2ms", b)
	}
	private := []Task{
		{Name: "short", C: 1 * ms, D: 5 * ms, T: 20 * ms, NumEU: 1},
		{Name: "long", C: 2 * ms, D: 50 * ms, T: 50 * ms, CS: 2 * ms, Resource: "R", NumEU: 3},
	}
	if b := srpBlocking(private, 5*ms, nil); b != 0 {
		t.Fatalf("B = %s, want 0 (no short-deadline user of R)", b)
	}
}

func TestCostIntegrationSection53(t *testing.T) {
	ov := &Overheads{
		Book:      dispatcher.DefaultCostBook(),
		SchedCost: 20 * us,
	}
	task := Task{Name: "x", C: 1 * ms, D: 5 * ms, T: 10 * ms, CS: 100 * us, Resource: "R", NumEU: 3, LocalEdges: 2}
	c := ov.InflateC(task)
	book := ov.Book
	want := task.C +
		3*(book.StartAction+book.EndAction) +
		2*book.PrecLocal +
		book.StartInv + book.EndInv +
		book.SwitchCost*3*(3+2)
	if c != want {
		t.Fatalf("InflateC = %s, want %s", c, want)
	}
	if b := ov.InflateB(500 * us); b != 500*us+book.StartAction+book.EndAction {
		t.Fatalf("InflateB wrong: %s", b)
	}
	if b := ov.InflateB(0); b != 0 {
		t.Fatal("InflateB(0) must stay 0")
	}
}

func TestSchedAndKernelDemand(t *testing.T) {
	ov := &Overheads{
		Book:      dispatcher.CostBook{ClockTickPeriod: 1 * ms, ClockTickWCET: 5 * us, SwitchCost: 2 * us},
		SchedCost: 10 * us,
	}
	tasks := []Task{{Name: "a", C: 1 * ms, D: 10 * ms, T: 10 * ms, NumEU: 1}}
	// In 10ms: 1 activation, 2 notifications, each (10+3·2)us = 32us.
	if d := ov.SchedDemand(tasks, 10*ms); d != 32*us {
		t.Fatalf("SchedDemand = %s, want 32us", d)
	}
	// 10 ticks of 5us.
	if d := ov.KernelDemand(10 * ms); d != 50*us {
		t.Fatalf("KernelDemand = %s, want 50us", d)
	}
	if d := ov.KernelDemand(0); d != 0 {
		t.Fatal("KernelDemand(0) != 0")
	}
}

// Property (the paper's central safety relation): any set admitted by
// the cost-integrated test is also admitted by the naive test — costs
// only shrink the feasible region, never grow it.
func TestCostIntegratedTestIsStricter(t *testing.T) {
	ov := &Overheads{Book: dispatcher.DefaultCostBook(), SchedCost: 20 * us}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := 0.3 + rng.Float64()*0.65
		tasks := Generate(rng, DefaultGenConfig(2+rng.Intn(6), u))
		withCosts := EDFSpuri(tasks, ov)
		naive := EDFSpuri(tasks, nil)
		if withCosts.Feasible && !naive.Feasible {
			return false // integrated admitted something naive rejects
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: crude (inflated) cost books are at least as pessimistic as
// precise ones — the §2.2.2 accuracy argument.
func TestCrudeCostsMorePessimistic(t *testing.T) {
	precise := &Overheads{Book: dispatcher.DefaultCostBook(), SchedCost: 20 * us}
	crude := &Overheads{Book: dispatcher.DefaultCostBook().Scale(5), SchedCost: 100 * us}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tasks := Generate(rng, DefaultGenConfig(4, 0.5+rng.Float64()*0.4))
		p := EDFSpuri(tasks, precise)
		c := EDFSpuri(tasks, crude)
		return !c.Feasible || p.Feasible // crude ⊆ precise
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestUUniFastSumsToTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, u := range []float64{0.3, 0.7, 0.95} {
		us := UUniFast(rng, 8, u)
		sum := 0.0
		for _, x := range us {
			if x < 0 {
				t.Fatal("negative utilisation share")
			}
			sum += x
		}
		if sum < u-1e-9 || sum > u+1e-9 {
			t.Fatalf("sum %f, want %f", sum, u)
		}
	}
}

func TestGenerateRespectsConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultGenConfig(10, 0.6)
	tasks := Generate(rng, cfg)
	if len(tasks) != 10 {
		t.Fatalf("n = %d", len(tasks))
	}
	for _, task := range tasks {
		if task.T < cfg.PeriodMin || task.T > cfg.PeriodMax {
			t.Fatalf("period %s out of range", task.T)
		}
		if task.D > task.T || task.D < task.C {
			t.Fatalf("deadline %s outside [C=%s, T=%s]", task.D, task.C, task.T)
		}
		if task.CS > task.C {
			t.Fatal("critical section exceeds computation")
		}
		if (task.Resource == "") != (task.CS == 0) {
			t.Fatal("resource/CS inconsistency")
		}
	}
	u := Utilization(tasks)
	if u < 0.35 || u > 0.85 {
		t.Fatalf("generated utilisation %f far from 0.6", u)
	}
}

func TestFromSpuriAndBack(t *testing.T) {
	st := heug.SpuriTask{
		Name: "tau", CBefore: 300 * us, CS: 200 * us, CAfter: 500 * us,
		Resource: "S", Deadline: 5 * ms, PseudoPeriod: 10 * ms,
	}
	ft := FromSpuri(st)
	if ft.C != 1*ms || ft.NumEU != 3 || ft.LocalEdges != 2 {
		t.Fatalf("FromSpuri: %+v", ft)
	}
	back := ToSpuri(ft, []Task{ft}, 2)
	if back.C() != ft.C || back.Node != 2 || back.Resource != "S" {
		t.Fatalf("ToSpuri: %+v", back)
	}
	if back.CS != ft.CS {
		t.Fatal("critical section lost")
	}
	if _, err := back.ToHEUG(); err != nil {
		t.Fatalf("round-trip task invalid: %v", err)
	}
}

// Property: demand h(l) is monotone in l.
func TestDemandMonotone(t *testing.T) {
	f := func(seed int64, aRaw, bRaw uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		tasks := Generate(rng, DefaultGenConfig(5, 0.6))
		a := vtime.Duration(aRaw % 200000000)
		b := vtime.Duration(bRaw % 200000000)
		if a > b {
			a, b = b, a
		}
		return demand(tasks, a, nil) <= demand(tasks, b, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestViewChangeBlackoutTerm: the membership blackout is charged as a
// one-shot top-priority demand — a set feasible on pure task demand
// becomes infeasible when one failover window no longer fits before
// its deadlines, with the flip exactly at the slack boundary.
func TestViewChangeBlackoutTerm(t *testing.T) {
	tasks := []Task{{Name: "ctl", C: 2 * vtime.Millisecond, D: 10 * vtime.Millisecond, T: 10 * vtime.Millisecond, NumEU: 1}}
	ov := &Overheads{} // isolate the blackout term from cost inflation
	if v := EDFSpuri(tasks, ov); !v.Feasible {
		t.Fatalf("baseline infeasible: %+v", v)
	}
	// Slack before the 10 ms deadline is 8 ms: a blackout that exactly
	// fits still admits, one past it rejects.
	ov.ViewChangeBlackout = 8 * vtime.Millisecond
	if v := EDFSpuri(tasks, ov); !v.Feasible {
		t.Fatalf("blackout equal to the slack rejected: %+v", v)
	}
	ov.ViewChangeBlackout = 8*vtime.Millisecond + vtime.Microsecond
	v := EDFSpuri(tasks, ov)
	if v.Feasible {
		t.Fatal("blackout past the slack admitted — failover window not charged")
	}
	if v.FailAt != 10*vtime.Millisecond {
		t.Fatalf("failure at %s, want the 10ms deadline", v.FailAt)
	}
}
