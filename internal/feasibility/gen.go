package feasibility

import (
	"fmt"
	"math"
	"math/rand"

	"hades/internal/heug"
	"hades/internal/vtime"
)

// GenConfig controls random task-set generation for the schedulability
// sweeps (experiments E-S5, E-X1, E-X6).
type GenConfig struct {
	// N is the number of tasks.
	N int
	// U is the target total utilisation (split by UUniFast).
	U float64
	// PeriodMin and PeriodMax bound log-uniform periods.
	PeriodMin, PeriodMax vtime.Duration
	// DeadlineFactor places D in [C + f·(T−C), T]: 1 gives implicit
	// deadlines, smaller values constrained ones.
	DeadlineFactor float64
	// ResourceProb is the probability a task has a critical section.
	ResourceProb float64
	// Resources is the pool of resource names to draw from.
	Resources []string
	// CSFraction bounds the critical section to this fraction of C.
	CSFraction float64
}

// DefaultGenConfig returns a configuration representative of the
// paper's application domain: periods 5–100 ms, constrained deadlines,
// a third of the tasks sharing one of two resources.
func DefaultGenConfig(n int, u float64) GenConfig {
	return GenConfig{
		N:              n,
		U:              u,
		PeriodMin:      5 * vtime.Millisecond,
		PeriodMax:      100 * vtime.Millisecond,
		DeadlineFactor: 0.8,
		ResourceProb:   0.33,
		Resources:      []string{"S1", "S2"},
		CSFraction:     0.3,
	}
}

// UUniFast splits total utilisation u over n tasks without bias
// (Bini & Buttazzo's standard generator).
func UUniFast(rng *rand.Rand, n int, u float64) []float64 {
	out := make([]float64, n)
	sum := u
	for i := 1; i < n; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-i))
		out[i-1] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out
}

// Generate draws one random task set. The generator is deterministic
// given rng's state.
func Generate(rng *rand.Rand, cfg GenConfig) []Task {
	us := UUniFast(rng, cfg.N, cfg.U)
	tasks := make([]Task, cfg.N)
	logMin, logMax := math.Log(float64(cfg.PeriodMin)), math.Log(float64(cfg.PeriodMax))
	for i := range tasks {
		period := vtime.Duration(math.Exp(logMin + rng.Float64()*(logMax-logMin)))
		c := vtime.Duration(us[i] * float64(period))
		if c < vtime.Microsecond {
			c = vtime.Microsecond
		}
		dmin := float64(c) + cfg.DeadlineFactor*float64(period-c)
		d := vtime.Duration(dmin + rng.Float64()*(float64(period)-dmin))
		if d < c {
			d = c
		}
		t := Task{
			Name:  fmt.Sprintf("tau%d", i+1),
			C:     c,
			D:     d,
			T:     period,
			NumEU: 1,
		}
		if len(cfg.Resources) > 0 && rng.Float64() < cfg.ResourceProb {
			t.Resource = cfg.Resources[rng.Intn(len(cfg.Resources))]
			cs := vtime.Duration(cfg.CSFraction * rng.Float64() * float64(c))
			if cs < vtime.Microsecond {
				cs = vtime.Microsecond
			}
			if cs > c {
				cs = c
			}
			t.CS = cs
			t.NumEU = 3
			t.LocalEdges = 2
			// Keep the three-way split realisable: cs plus non-empty
			// before/after segments (shrink cs if needed).
			if c < 3*vtime.Microsecond {
				t.NumEU = 1
				t.LocalEdges = 0
				t.CS = 0
				t.Resource = ""
			} else if cs > c-2*vtime.Microsecond {
				t.CS = c - 2*vtime.Microsecond
			}
		}
		tasks[i] = t
	}
	return tasks
}

// ToSpuri converts an analysis task back into the §5.1 concrete model,
// splitting C around the critical section, with the SRP blocking bound
// computed against the rest of the set. The result feeds the Figure 3
// translation (heug.SpuriTask.ToHEUG) for simulation.
//
// The split preserves the analysis task's structural counts: a task
// without a critical section stays a single unit (all of C in
// c_before); one with a critical section splits into the Figure 3
// three-unit chain. The elementary-unit count is what the §5.3 cost
// inflation charges per-unit overheads for, so analysis and simulation
// must agree on it.
func ToSpuri(t Task, all []Task, node int) heug.SpuriTask {
	var before, after vtime.Duration
	if t.CS > 0 {
		before = (t.C - t.CS) / 2
		after = t.C - t.CS - before
	} else {
		before = t.C
	}
	return heug.SpuriTask{
		Name:         t.Name,
		Node:         node,
		CBefore:      before,
		CS:           t.CS,
		CAfter:       after,
		Resource:     t.Resource,
		Deadline:     t.D,
		PseudoPeriod: t.T,
		Blocking:     srpBlocking(all, t.D, nil),
	}
}
