// Package feasibility implements the scheduling tests of the paper:
// Liu–Layland's RM utilisation bound [LL73], exact response-time
// analysis for fixed priorities with middleware overheads (in the spirit
// of [BTW95], which §5.3 cites as the fixed-priority analogue), Spuri's
// processor-demand test for EDF with SRP blocking ([Spu96] theorem 7.1),
// and — the paper's contribution — the §5.3 *cost-integrated* variant
// that folds every dispatcher, scheduler and kernel activity of §4 into
// the test.
//
// The central safety argument of the paper (§2.2.2) is reproduced by
// experiment E-S5: a feasibility test that ignores middleware costs can
// admit task sets that miss deadlines once real overheads apply, while
// the cost-integrated test only admits sets that the simulator — which
// charges the same CostBook at the same points — runs without misses.
package feasibility

import (
	"fmt"
	"math"

	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/vtime"
)

// Task is the analysis-level task model of §5.1 ([Spu96]): a sporadic
// task with arbitrary deadline, a single outermost critical section, and
// the structural counts the §5.3 cost integration needs.
type Task struct {
	Name string
	// C is the worst-case computation time (c_before + cs + c_after).
	C vtime.Duration
	// D is the relative deadline.
	D vtime.Duration
	// T is the period (periodic) or pseudo-period (sporadic).
	T vtime.Duration
	// CS is the worst-case critical-section length (0 = no resource).
	CS vtime.Duration
	// Resource is the resource guarded by the critical section.
	Resource string
	// NumEU is the number of Code_EUs after HEUG translation (Figure 3
	// yields 3 for resource users, 1 otherwise).
	NumEU int
	// LocalEdges is the number of local precedence constraints in the
	// translated HEUG (2 for resource users, 0 otherwise).
	LocalEdges int
}

// Utilization returns C/T.
func (t Task) Utilization() float64 { return float64(t.C) / float64(t.T) }

// FromSpuri converts a §5.1 task to the analysis model.
func FromSpuri(s heug.SpuriTask) Task {
	n, edges := 0, 0
	for _, w := range []vtime.Duration{s.CBefore, s.CS, s.CAfter} {
		if w > 0 {
			n++
		}
	}
	if n > 1 {
		edges = n - 1
	}
	if n == 0 {
		n = 1
	}
	return Task{
		Name:       s.Name,
		C:          s.C(),
		D:          s.Deadline,
		T:          s.PseudoPeriod,
		CS:         s.CS,
		Resource:   s.Resource,
		NumEU:      n,
		LocalEdges: edges,
	}
}

// Utilization returns the total utilisation of a task set.
func Utilization(tasks []Task) float64 {
	u := 0.0
	for _, t := range tasks {
		u += t.Utilization()
	}
	return u
}

// Verdict is the outcome of a feasibility test.
type Verdict struct {
	Feasible bool
	// Why describes the first violated condition when infeasible.
	Why string
	// BusyPeriod is the synchronous busy period the demand test scanned
	// (EDF tests only).
	BusyPeriod vtime.Duration
	// FailAt is the first deadline whose demand exceeded supply.
	FailAt vtime.Duration
	// Checked is the number of deadlines examined.
	Checked int
}

// Overheads configures the §5.3 cost integration. The zero value (or a
// nil pointer where accepted) means the idealised, cost-free analysis.
type Overheads struct {
	// Book is the dispatcher/kernel cost book, shared with the
	// simulator so analysis and execution account identical events.
	Book dispatcher.CostBook
	// SchedCost is C_sched: the scheduler's per-notification cost.
	SchedCost vtime.Duration
	// NotifsPerInstance is the number of scheduler notifications one
	// task instance generates; the dispatcher emits Atv and Trm per
	// Code_EU thread, so it defaults to 2·NumEU when zero.
	NotifsPerInstance int
	// NetReceivePath and NetPseudoPeriod describe the §4.2 ATM-card
	// activity (w_atm + protocol WCET, minimum message gap). Zero
	// period disables the term.
	NetReceivePath  vtime.Duration
	NetPseudoPeriod vtime.Duration
	// ViewChangeBlackout is the membership term: the worst-case
	// view-change window (detection + agreement + install,
	// membership.Service.Bound()) during which a failover may preempt
	// the node's application work at service priority. Charged as a
	// one-shot highest-priority demand against every deadline, it
	// makes the admission test answer the composed question of §2.2:
	// does the task set stay schedulable across one failover window?
	// Zero disables the term.
	ViewChangeBlackout vtime.Duration
}

// notifs returns the notification count for a task.
func (ov *Overheads) notifs(t Task) int64 {
	if ov.NotifsPerInstance > 0 {
		return int64(ov.NotifsPerInstance)
	}
	return int64(2 * t.NumEU)
}

// InflateC implements the §5.3 WCET inflation: per Code_EU the start and
// end action costs, per local precedence constraint C_prec_local, per
// instance the invocation bracket C_start_inv + C_end_inv, plus a
// context-switch allowance. The instance runs NumEU+2 kernel threads
// (EU bodies plus the activation/termination brackets); each costs a
// dispatch-in and a switch-away, and each of its starts may preempt
// another thread whose later *resume* is a third switch — hence the
// conservative 3·(NumEU+2) switches charged to the instance itself.
func (ov *Overheads) InflateC(t Task) vtime.Duration {
	b := ov.Book
	c := t.C
	n := vtime.Duration(t.NumEU)
	c += n * (b.StartAction + b.EndAction)
	c += vtime.Duration(t.LocalEdges) * b.PrecLocal
	c += b.StartInv + b.EndInv
	c += b.SwitchCost * 3 * (n + 2)
	return c
}

// InflateB implements the §5.3 blocking inflation: the blocking section
// carries its own start/end action costs (B'_i = B_i + C_start + C_end).
func (ov *Overheads) InflateB(blocking vtime.Duration) vtime.Duration {
	if blocking == 0 {
		return 0
	}
	return blocking + ov.Book.StartAction + ov.Book.EndAction
}

// SchedDemand is the §5.3 scheduler term: the CPU consumed by scheduler
// notification processing during an interval of length l, at the
// highest priority. Each notification costs C_sched plus three context
// switches (into the scheduler thread, out of it, and the resume of
// whatever application thread it preempted).
func (ov *Overheads) SchedDemand(tasks []Task, l vtime.Duration) vtime.Duration {
	if l <= 0 {
		return 0
	}
	var sum vtime.Duration
	per := ov.SchedCost + 3*ov.Book.SwitchCost
	if per == 0 {
		return 0
	}
	for _, t := range tasks {
		sum += vtime.Duration(vtime.CeilDiv(l, t.T)*ov.notifs(t)) * per
	}
	return sum
}

// KernelDemand is the §5.3 kernel term: clock-tick and network-interrupt
// CPU during an interval of length l, both modelled as sporadic
// activities at the highest priority exactly as §4.2 prescribes.
func (ov *Overheads) KernelDemand(l vtime.Duration) vtime.Duration {
	if l <= 0 {
		return 0
	}
	var sum vtime.Duration
	if b := ov.Book; b.ClockTickPeriod > 0 && b.ClockTickWCET > 0 {
		sum += vtime.Duration(vtime.CeilDiv(l, b.ClockTickPeriod)) * b.ClockTickWCET
	}
	if ov.NetPseudoPeriod > 0 && ov.NetReceivePath > 0 {
		sum += vtime.Duration(vtime.CeilDiv(l, ov.NetPseudoPeriod)) * ov.NetReceivePath
	}
	return sum
}

// effectiveC returns the (possibly inflated) WCET of t.
func effectiveC(t Task, ov *Overheads) vtime.Duration {
	if ov == nil {
		return t.C
	}
	return ov.InflateC(t)
}

// LiuLayland applies the classic RM sufficient utilisation bound
// U ≤ n(2^{1/n}−1) [LL73] for implicit-deadline periodic tasks.
func LiuLayland(tasks []Task) Verdict {
	if len(tasks) == 0 {
		return Verdict{Feasible: true}
	}
	u := Utilization(tasks)
	n := float64(len(tasks))
	bound := n * (math.Pow(2, 1/n) - 1)
	if u <= bound {
		return Verdict{Feasible: true}
	}
	return Verdict{Feasible: false, Why: fmt.Sprintf("U=%.4f exceeds LL bound %.4f", u, bound)}
}
