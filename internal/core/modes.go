package core

import (
	"fmt"

	"hades/internal/eventq"
	"hades/internal/heug"
	"hades/internal/monitor"
)

// Operational modes implement the low-level fault-tolerance mechanism
// §3.2.1 assigns to the dispatcher: "switching of modes of operation in
// case of failure [Mos94]". A mode names a set of tasks whose
// activation generators run while the mode is active; switching modes
// stops the old generators, optionally aborts the old mode's live
// instances (orphaning their threads), and starts the new set — e.g. a
// degraded local-control mode after a network or node failure.

// generator is one cancellable activation source.
type generator struct {
	task    string
	stopped bool
}

// DefineMode declares a mode as a set of task names. Tasks must already
// be registered. Periodic tasks get timer generators on entry; sporadic
// ones worst-case generators; aperiodic ones are activated by events
// only.
func (s *System) DefineMode(name string, tasks ...string) error {
	if _, dup := s.modes[name]; dup {
		return fmt.Errorf("core: mode %q already defined", name)
	}
	for _, task := range tasks {
		if _, ok := s.disp.Task(task); !ok {
			return fmt.Errorf("core: mode %q references unknown task %q", name, task)
		}
	}
	s.modes[name] = tasks
	return nil
}

// CurrentMode returns the active mode name ("" before EnterMode).
func (s *System) CurrentMode() string { return s.mode }

// EnterMode activates a mode's generators. Call once to start; use
// SwitchMode afterwards.
func (s *System) EnterMode(name string) error {
	tasks, ok := s.modes[name]
	if !ok {
		return fmt.Errorf("core: unknown mode %q", name)
	}
	s.mode = name
	s.log.Recordf(s.eng.Now(), monitor.KindFailover, -1, "mode", "enter %q", name)
	for _, task := range tasks {
		tr, _ := s.disp.Task(task)
		g := &generator{task: task}
		s.generators = append(s.generators, g)
		switch tr.Task.Arrival.Kind {
		case heug.Periodic, heug.Sporadic:
			s.startGenerator(g, tr.Task.Arrival)
		case heug.Aperiodic:
			// event-driven only
		}
	}
	return nil
}

// SwitchMode stops the current mode's generators and enters the new
// mode. When abortLive is true, live instances of the old mode's tasks
// are cancelled — their threads become orphans, per §3.2.1 — so the new
// mode starts from a clean slate (a safety-critical mode change).
// It returns the number of instances aborted.
func (s *System) SwitchMode(name string, abortLive bool) (int, error) {
	tasks, ok := s.modes[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown mode %q", name)
	}
	_ = tasks
	old := s.modes[s.mode]
	for _, g := range s.generators {
		g.stopped = true
	}
	s.generators = nil
	aborted := 0
	if abortLive {
		for _, task := range old {
			aborted += s.disp.CancelLive(task, "mode switch")
		}
	}
	s.log.Recordf(s.eng.Now(), monitor.KindFailover, -1, "mode",
		"switch %q -> %q (aborted %d)", s.mode, name, aborted)
	return aborted, s.EnterMode(name)
}

// startGenerator runs one cancellable periodic/worst-case-sporadic
// activation loop.
func (s *System) startGenerator(g *generator, law heug.Arrival) {
	var fire func()
	fire = func() {
		if g.stopped {
			return
		}
		_, _ = s.disp.Activate(g.task)
		s.eng.After(law.Period, eventq.ClassDispatch, fire)
	}
	// First activation: immediately if the mode is entered mid-run,
	// respecting the offset only at time zero.
	delay := law.Offset
	if s.eng.Now() > 0 {
		delay = 0
	}
	s.eng.After(delay, eventq.ClassDispatch, fire)
}

// StopTask cancels the activation generator(s) of one task (it can be
// restarted by re-entering a mode or calling StartPeriodic again).
func (s *System) StopTask(task string) {
	for _, g := range s.generators {
		if g.task == task {
			g.stopped = true
		}
	}
}
