package core_test

import (
	"fmt"

	"hades/internal/core"
	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/sched"
	"hades/internal/vtime"
)

// Example shows the complete HADES workflow: assemble a platform,
// declare an application under a scheduling policy, add a HEUG task,
// and run — the executable version of the README's quickstart.
func Example() {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1, Costs: dispatcher.DefaultCostBook()})
	app := sys.NewApp("demo", sched.NewEDF(20*vtime.Microsecond), sched.NewSRP())

	task := heug.NewTask("sense", heug.PeriodicEvery(10*vtime.Millisecond)).
		WithDeadline(10*vtime.Millisecond).
		Code("read", heug.CodeEU{Node: 0, WCET: 500 * vtime.Microsecond}).
		MustBuild()
	app.MustAddTask(task)
	app.Seal()

	if err := sys.StartPeriodic("sense"); err != nil {
		panic(err)
	}
	rep := sys.Run(100 * vtime.Millisecond)
	fmt.Printf("completions=%d misses=%d\n",
		rep.Stats.Completions, rep.Stats.DeadlineMisses)
	// Output: completions=10 misses=0
}

// ExampleSystem_SwitchMode demonstrates operational modes: a failure
// response switches from the normal task set to a degraded one,
// aborting what was mid-flight.
func ExampleSystem_SwitchMode() {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1})
	app := sys.NewApp("modes", sched.NewEDF(0), nil)
	app.MustAddTask(heug.NewTask("full", heug.PeriodicEvery(20*vtime.Millisecond)).
		WithDeadline(20*vtime.Millisecond).
		Code("eu", heug.CodeEU{Node: 0, WCET: 15 * vtime.Millisecond}).
		MustBuild())
	app.MustAddTask(heug.NewTask("lite", heug.PeriodicEvery(20*vtime.Millisecond)).
		WithDeadline(20*vtime.Millisecond).
		Code("eu", heug.CodeEU{Node: 0, WCET: 1 * vtime.Millisecond}).
		MustBuild())
	app.Seal()
	if err := sys.DefineMode("normal", "full"); err != nil {
		panic(err)
	}
	if err := sys.DefineMode("degraded", "lite"); err != nil {
		panic(err)
	}
	if err := sys.EnterMode("normal"); err != nil {
		panic(err)
	}
	sys.Run(10 * vtime.Millisecond) // "full" is mid-execution
	aborted, err := sys.SwitchMode("degraded", true)
	if err != nil {
		panic(err)
	}
	sys.Run(50 * vtime.Millisecond)
	fmt.Printf("aborted=%d mode=%s\n", aborted, sys.CurrentMode())
	// Output: aborted=1 mode=degraded
}
