package core_test

import (
	"strings"
	"testing"

	"hades/internal/core"
	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/sched"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

func simpleTask(name string, arrival heug.Arrival, node int, wcet, deadline vtime.Duration) *heug.Task {
	return heug.NewTask(name, arrival).
		WithDeadline(deadline).
		Code("eu", heug.CodeEU{Node: node, WCET: wcet}).
		MustBuild()
}

func TestPeriodicGeneratorFollowsLaw(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1})
	app := sys.NewApp("a", sched.NewRM(), nil)
	app.MustAddTask(simpleTask("p", heug.PeriodicEvery(10*ms), 0, 500*us, 10*ms))
	app.Seal()
	if err := sys.StartPeriodic("p"); err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(105 * ms)
	// Releases at t = 0, 10, ..., 100: eleven activations.
	if rep.Stats.Activations != 11 {
		t.Fatalf("activations %d, want 11 in 105ms at 10ms period (offset 0)", rep.Stats.Activations)
	}
	if rep.Stats.ArrivalViolations != 0 {
		t.Fatalf("generator violated its own law: %d", rep.Stats.ArrivalViolations)
	}
}

func TestPeriodicRejectsWrongLaw(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1})
	app := sys.NewApp("a", sched.NewRM(), nil)
	app.MustAddTask(simpleTask("s", heug.SporadicEvery(10*ms), 0, 500*us, 10*ms))
	app.Seal()
	if err := sys.StartPeriodic("s"); err == nil {
		t.Fatal("StartPeriodic accepted a sporadic task")
	}
	if err := sys.StartSporadicWorstCase("nope"); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestSporadicWithGapsKeepsLaw(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1})
	app := sys.NewApp("a", sched.NewRM(), nil)
	app.MustAddTask(simpleTask("s", heug.SporadicEvery(10*ms), 0, 500*us, 10*ms))
	app.Seal()
	if err := sys.StartSporadic("s", func(k uint64) vtime.Duration {
		return vtime.Duration(k%3) * ms // jittered but never early
	}); err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(200 * ms)
	if rep.Stats.ArrivalViolations != 0 {
		t.Fatalf("sporadic generator violated the pseudo-period: %d", rep.Stats.ArrivalViolations)
	}
	if rep.Stats.Activations < 15 {
		t.Fatalf("activations %d", rep.Stats.Activations)
	}
}

func TestActivateOnCond(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1})
	app := sys.NewApp("a", sched.NewRM(), nil)
	app.MustAddTask(simpleTask("alarm", heug.AperiodicLaw(), 0, 100*us, 5*ms))
	setter := heug.NewTask("setter", heug.AperiodicLaw()).
		WithDeadline(10*ms).
		Code("s", heug.CodeEU{Node: 0, WCET: 100 * us, Action: func(ctx heug.ActionContext) {
			ctx.SetCond("event")
		}}).
		MustBuild()
	app.MustAddTask(setter)
	app.Seal()
	sys.ActivateOnCond("event", "alarm")
	sys.ActivateAt("setter", vtime.Time(20*ms))
	rep := sys.Run(50 * ms)
	var alarmDone int
	for _, tr := range rep.Tasks {
		if tr.Name == "alarm" {
			alarmDone = tr.Completions
		}
	}
	if alarmDone != 1 {
		t.Fatalf("alarm completions %d, want 1 (event-triggered)", alarmDone)
	}
}

func TestMultiAppIsolationBands(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1, Costs: dispatcher.DefaultCostBook()})
	g := sys.NewApp("g", sched.NewEDF(10*us), nil)
	g.MustAddTask(simpleTask("crit", heug.PeriodicEvery(10*ms), 0, 3*ms, 10*ms))
	g.Seal()
	be := sys.NewApp("be", sched.NewBestEffort(0), nil)
	be.MustAddTask(heug.NewTask("noise", heug.PeriodicEvery(4*ms)).
		Code("eu", heug.CodeEU{Node: 0, WCET: 3 * ms}).
		MustBuild())
	be.Seal()
	if err := sys.StartPeriodic("crit"); err != nil {
		t.Fatal(err)
	}
	if err := sys.StartPeriodic("noise"); err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(500 * ms)
	for _, tr := range rep.Tasks {
		if tr.Name == "crit" && tr.Misses > 0 {
			t.Fatalf("guaranteed task missed %d deadlines under best-effort overload", tr.Misses)
		}
	}
}

func TestReportString(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1})
	app := sys.NewApp("a", sched.NewRM(), nil)
	app.MustAddTask(simpleTask("x", heug.PeriodicEvery(10*ms), 0, 1*ms, 10*ms))
	app.Seal()
	if err := sys.StartPeriodic("x"); err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(50 * ms)
	s := rep.String()
	for _, want := range []string{"activations=", "x", "miss=0"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

func TestRunIsResumable(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1})
	app := sys.NewApp("a", sched.NewRM(), nil)
	app.MustAddTask(simpleTask("x", heug.PeriodicEvery(10*ms), 0, 1*ms, 10*ms))
	app.Seal()
	if err := sys.StartPeriodic("x"); err != nil {
		t.Fatal(err)
	}
	r1 := sys.Run(50 * ms)
	r2 := sys.Run(50 * ms)
	if r2.Until != vtime.Time(100*ms) {
		t.Fatalf("second run ended at %s", r2.Until)
	}
	if r2.Stats.Activations <= r1.Stats.Activations {
		t.Fatal("no progress across Run calls")
	}
}

func TestSingleNodeHasNoNetwork(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1})
	if sys.Network() != nil {
		t.Fatal("single-node system grew a network")
	}
	multi := core.NewSystem(core.Config{Nodes: 3, Seed: 1})
	if multi.Network() == nil {
		t.Fatal("multi-node system has no network")
	}
	if d, ok := multi.Network().DelayBound(0, 2); !ok || d <= 0 {
		t.Fatal("default mesh not connected")
	}
}

func TestAddSpuriIntegration(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1})
	app := sys.NewApp("a", sched.NewEDF(10*us), sched.NewSRP())
	err := app.AddSpuri(heug.SpuriTask{
		Name: "st", CBefore: 200 * us, CS: 100 * us, CAfter: 100 * us,
		Resource: "S", Deadline: 5 * ms, PseudoPeriod: 10 * ms,
	})
	if err != nil {
		t.Fatal(err)
	}
	app.Seal()
	if err := sys.StartSporadicWorstCase("st"); err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(100 * ms)
	if rep.Stats.DeadlineMisses != 0 || rep.Stats.Completions < 9 {
		t.Fatalf("stats %+v", rep.Stats)
	}
}

func TestDuplicateTaskRejected(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1})
	app := sys.NewApp("a", sched.NewRM(), nil)
	task := simpleTask("dup", heug.PeriodicEvery(10*ms), 0, 1*ms, 10*ms)
	app.MustAddTask(task)
	if err := app.AddTask(task); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}
