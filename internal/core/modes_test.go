package core_test

import (
	"testing"

	"hades/internal/core"
	"hades/internal/heug"
	"hades/internal/sched"
	"hades/internal/vtime"
)

func modesRig(t *testing.T) *core.System {
	t.Helper()
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 2})
	app := sys.NewApp("a", sched.NewEDF(10*us), nil)
	app.MustAddTask(simpleTask("full", heug.PeriodicEvery(10*ms), 0, 2*ms, 10*ms))
	app.MustAddTask(simpleTask("aux", heug.PeriodicEvery(20*ms), 0, 1*ms, 20*ms))
	app.MustAddTask(simpleTask("degraded", heug.PeriodicEvery(10*ms), 0, 500*us, 10*ms))
	app.Seal()
	if err := sys.DefineMode("normal", "full", "aux"); err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineMode("safe", "degraded"); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestModeEnterRunsItsTasks(t *testing.T) {
	sys := modesRig(t)
	if err := sys.EnterMode("normal"); err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(100 * ms)
	counts := map[string]int{}
	for _, tr := range rep.Tasks {
		counts[tr.Name] = tr.Activations
	}
	if counts["full"] == 0 || counts["aux"] == 0 {
		t.Fatalf("normal-mode tasks idle: %v", counts)
	}
	if counts["degraded"] != 0 {
		t.Fatalf("safe-mode task ran in normal mode: %v", counts)
	}
	if sys.CurrentMode() != "normal" {
		t.Fatal("mode not recorded")
	}
}

func TestModeSwitchStopsOldStartsNew(t *testing.T) {
	sys := modesRig(t)
	if err := sys.EnterMode("normal"); err != nil {
		t.Fatal(err)
	}
	sys.Run(50 * ms)
	if _, err := sys.SwitchMode("safe", false); err != nil {
		t.Fatal(err)
	}
	before := sys.ReportNow()
	fullBefore := taskActivations(before, "full")
	rep := sys.Run(100 * ms)
	if got := taskActivations(rep, "full"); got != fullBefore {
		t.Fatalf("old-mode task still activating after switch: %d -> %d", fullBefore, got)
	}
	if taskActivations(rep, "degraded") == 0 {
		t.Fatal("new-mode task not activating")
	}
	if sys.CurrentMode() != "safe" {
		t.Fatal("mode not switched")
	}
}

func TestModeSwitchAbortsLiveInstances(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 2})
	app := sys.NewApp("a", sched.NewEDF(10*us), nil)
	// A long-running task that will be mid-flight at the switch.
	app.MustAddTask(simpleTask("slow", heug.PeriodicEvery(50*ms), 0, 30*ms, 50*ms))
	app.MustAddTask(simpleTask("fallback", heug.PeriodicEvery(10*ms), 0, 500*us, 10*ms))
	app.Seal()
	if err := sys.DefineMode("normal", "slow"); err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineMode("safe", "fallback"); err != nil {
		t.Fatal(err)
	}
	if err := sys.EnterMode("normal"); err != nil {
		t.Fatal(err)
	}
	sys.Run(10 * ms) // slow#1 is mid-execution
	aborted, err := sys.SwitchMode("safe", true)
	if err != nil {
		t.Fatal(err)
	}
	if aborted != 1 {
		t.Fatalf("aborted %d instances, want 1", aborted)
	}
	rep := sys.Run(100 * ms)
	if rep.Stats.Orphans == 0 {
		t.Fatal("no orphan threads recorded for the aborted instance")
	}
	if taskActivations(rep, "fallback") < 9 {
		t.Fatalf("fallback barely ran: %d", taskActivations(rep, "fallback"))
	}
}

func TestModeErrors(t *testing.T) {
	sys := modesRig(t)
	if err := sys.DefineMode("normal", "full"); err == nil {
		t.Fatal("duplicate mode accepted")
	}
	if err := sys.DefineMode("bad", "ghost-task"); err == nil {
		t.Fatal("unknown task accepted in mode")
	}
	if err := sys.EnterMode("ghost"); err == nil {
		t.Fatal("unknown mode entered")
	}
	if _, err := sys.SwitchMode("ghost", false); err == nil {
		t.Fatal("switch to unknown mode accepted")
	}
}

// TestFailureTriggeredModeSwitch wires the full §2.1 story: a fault
// detector suspicion triggers the switch to a degraded mode — the
// "switching of modes of operation in case of failure" mechanism.
func TestFailureTriggeredModeSwitch(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 2})
	app := sys.NewApp("a", sched.NewEDF(10*us), nil)
	app.MustAddTask(simpleTask("primary", heug.PeriodicEvery(10*ms), 0, 1*ms, 10*ms))
	app.MustAddTask(simpleTask("backuptask", heug.PeriodicEvery(10*ms), 0, 1*ms, 10*ms))
	app.Seal()
	if err := sys.DefineMode("normal", "primary"); err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineMode("degraded", "backuptask"); err != nil {
		t.Fatal(err)
	}
	if err := sys.EnterMode("normal"); err != nil {
		t.Fatal(err)
	}
	// Simulate a detector callback firing at 50 ms.
	sys.ActivateAt("primary", vtime.Time(0)) // extra manual activation is fine (monitored)
	sys.Run(50 * ms)
	if _, err := sys.SwitchMode("degraded", true); err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(50 * ms)
	if sys.CurrentMode() != "degraded" {
		t.Fatal("not in degraded mode")
	}
	if taskActivations(rep, "backuptask") == 0 {
		t.Fatal("degraded task idle")
	}
}

func taskActivations(rep core.Report, name string) int {
	for _, tr := range rep.Tasks {
		if tr.Name == name {
			return tr.Activations
		}
	}
	return 0
}
