// Package core is the public face of the HADES middleware: it assembles
// the simulated COTS platform (kernel + network), the generic dispatcher
// and per-application schedulers into one System, mirroring Figure 1's
// layering — applications over schedulers over the dispatcher and
// services over the COTS RT-kernel and hardware.
//
// Typical use:
//
//	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1})
//	app := sys.NewApp("ctrl", sched.NewEDF(20*vtime.Microsecond), sched.NewSRP())
//	app.MustAddTask(taskA)
//	app.Seal()
//	sys.StartPeriodic("taskA")
//	report := sys.Run(vtime.Second)
package core

import (
	"fmt"

	"hades/internal/dispatcher"
	"hades/internal/eventq"
	"hades/internal/heug"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// Config describes the platform to assemble.
type Config struct {
	// Nodes is the number of mono-processor machines.
	Nodes int
	// Seed drives all randomness (delays, generators): same seed, same
	// run.
	Seed int64
	// Costs is the §4 cost book; zero value means free middleware
	// (useful for idealised comparisons). Use
	// dispatcher.DefaultCostBook for realistic costs.
	Costs dispatcher.CostBook
	// Network enables the simulated interconnect when Nodes > 1. Nil
	// with Nodes > 1 installs netsim.DefaultConfig.
	Network *netsim.Config
	// LinkDelayMin/Max bound point-to-point delays for the default
	// full mesh (used when Network is enabled).
	LinkDelayMin, LinkDelayMax vtime.Duration
	// LogLimit bounds the event log (0 = a generous default).
	LogLimit int
	// CancelOnMiss aborts instances at their deadline (orphan
	// handling); default false records misses only.
	CancelOnMiss bool
}

// System is an assembled HADES platform.
type System struct {
	cfg  Config
	eng  *simkern.Engine
	net  *netsim.Network
	disp *dispatcher.Dispatcher
	log  *monitor.Log
	apps []*App

	// Operational modes (see modes.go).
	modes      map[string][]string
	mode       string
	generators []*generator
}

// NewSystem assembles a platform per cfg.
func NewSystem(cfg Config) *System {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.LogLimit == 0 {
		cfg.LogLimit = 500000
	}
	if cfg.LinkDelayMax == 0 {
		cfg.LinkDelayMin, cfg.LinkDelayMax = 100*vtime.Microsecond, 300*vtime.Microsecond
	}
	log := monitor.NewLog(cfg.LogLimit)
	eng := simkern.NewEngine(log, cfg.Seed)
	for i := 0; i < cfg.Nodes; i++ {
		eng.AddProcessor(fmt.Sprintf("node%d", i), cfg.Costs.SwitchCost)
	}
	var net *netsim.Network
	if cfg.Nodes > 1 {
		ncfg := netsim.DefaultConfig()
		if cfg.Network != nil {
			ncfg = *cfg.Network
		}
		net = netsim.New(eng, ncfg)
		ids := make([]int, cfg.Nodes)
		for i := range ids {
			ids[i] = i
		}
		net.ConnectAll(ids, cfg.LinkDelayMin, cfg.LinkDelayMax)
	}
	disp := dispatcher.New(eng, net, cfg.Costs)
	disp.CancelOnMiss = cfg.CancelOnMiss
	return &System{
		cfg:   cfg,
		eng:   eng,
		net:   net,
		disp:  disp,
		log:   log,
		modes: make(map[string][]string),
	}
}

// Engine returns the discrete-event engine.
func (s *System) Engine() *simkern.Engine { return s.eng }

// Network returns the simulated network (nil on single-node systems).
func (s *System) Network() *netsim.Network { return s.net }

// Dispatcher returns the generic dispatcher.
func (s *System) Dispatcher() *dispatcher.Dispatcher { return s.disp }

// Log returns the monitoring event log.
func (s *System) Log() *monitor.Log { return s.log }

// Now returns current virtual time.
func (s *System) Now() vtime.Time { return s.eng.Now() }

// App is an application handle: a scheduler, a resource policy, tasks.
type App struct {
	sys *System
	app *dispatcher.App
}

// NewApp registers an application with its scheduling policy and
// resource protocol (nil policy = plain locking).
func (s *System) NewApp(name string, sch dispatcher.Scheduler, pol dispatcher.ResourcePolicy) *App {
	a := &App{sys: s, app: s.disp.RegisterApp(name, sch, pol)}
	s.apps = append(s.apps, a)
	return a
}

// AddTask registers a HEUG task.
func (a *App) AddTask(t *heug.Task) error {
	_, err := a.app.AddTask(t)
	return err
}

// MustAddTask registers a task, panicking on error (static setup).
func (a *App) MustAddTask(t *heug.Task) {
	if err := a.AddTask(t); err != nil {
		panic(err)
	}
}

// AddSpuri translates a §5.1 task via Figure 3 and registers it.
func (a *App) AddSpuri(st heug.SpuriTask) error {
	t, err := st.ToHEUG()
	if err != nil {
		return err
	}
	return a.AddTask(t)
}

// Seal finishes the app: static priority assignment, protocol ceilings,
// admission wiring. Call once after all AddTask calls.
func (a *App) Seal() { a.app.Seal() }

// Raw returns the underlying dispatcher.App (advanced use).
func (a *App) Raw() *dispatcher.App { return a.app }

// StartPeriodic installs a timer-driven activation source following the
// task's declared periodic arrival law (offset then every period),
// running until the simulation horizon.
func (s *System) StartPeriodic(task string) error {
	tr, ok := s.disp.Task(task)
	if !ok {
		return fmt.Errorf("core: unknown task %q", task)
	}
	law := tr.Task.Arrival
	if law.Kind != heug.Periodic {
		return fmt.Errorf("core: task %q is not periodic", task)
	}
	var fire func()
	fire = func() {
		_, _ = s.disp.Activate(task) // arrival-law monitoring inside
		s.eng.After(law.Period, eventq.ClassDispatch, fire)
	}
	s.eng.After(law.Offset, eventq.ClassDispatch, fire)
	return nil
}

// StartSporadicWorstCase activates a sporadic task at its maximum legal
// rate (every pseudo-period) — the worst-case arrival pattern the
// feasibility tests assume, used by the validation experiments.
func (s *System) StartSporadicWorstCase(task string) error {
	return s.StartSporadic(task, nil)
}

// StartSporadic activates a sporadic task with the pseudo-period plus a
// caller-supplied extra gap per instance (nil = worst-case rate). The
// pattern is deterministic given the engine seed if extraGap uses it.
func (s *System) StartSporadic(task string, extraGap func(k uint64) vtime.Duration) error {
	tr, ok := s.disp.Task(task)
	if !ok {
		return fmt.Errorf("core: unknown task %q", task)
	}
	law := tr.Task.Arrival
	if law.Kind != heug.Sporadic {
		return fmt.Errorf("core: task %q is not sporadic", task)
	}
	var k uint64
	var fire func()
	fire = func() {
		_, _ = s.disp.Activate(task)
		k++
		gap := law.Period
		if extraGap != nil {
			gap += extraGap(k)
		}
		s.eng.After(gap, eventq.ClassDispatch, fire)
	}
	s.eng.After(law.Offset, eventq.ClassDispatch, fire)
	return nil
}

// ActivateAt requests a single activation at an absolute instant
// (aperiodic arrivals, interrupt-triggered tasks).
func (s *System) ActivateAt(task string, at vtime.Time) {
	s.eng.At(at, eventq.ClassDispatch, func() { _, _ = s.disp.Activate(task) })
}

// ActivateOnCond activates the task whenever the named condition
// variable is set — the event-triggered activation law of §3.1.2. The
// task's deadline then runs from the event, which is what a watchdog
// or alarm task wants.
func (s *System) ActivateOnCond(cond, task string) {
	s.disp.WatchCond(cond, func() { _, _ = s.disp.Activate(task) })
}

// Report is the outcome of a run.
type Report struct {
	Until      vtime.Time
	Stats      dispatcher.Stats
	Tasks      []TaskReport
	Violations []monitor.Event
}

// TaskReport is one task's runtime statistics.
type TaskReport struct {
	Name        string
	Activations int
	Completions int
	Misses      int
	AvgResponse vtime.Duration
	MaxResponse vtime.Duration
}

// Run executes the system for the given virtual duration and reports.
// It may be called repeatedly to advance further.
func (s *System) Run(d vtime.Duration) Report {
	until := s.eng.Now().Add(d)
	s.eng.Run(until)
	return s.ReportNow()
}

// ReportNow builds a report at the current instant without advancing.
func (s *System) ReportNow() Report {
	r := Report{Until: s.eng.Now(), Stats: s.disp.Stats(), Violations: s.log.Violations()}
	for _, a := range s.apps {
		for _, tr := range a.app.Tasks() {
			r.Tasks = append(r.Tasks, TaskReport{
				Name:        tr.Task.Name,
				Activations: tr.Activations,
				Completions: tr.Completions,
				Misses:      tr.Misses,
				AvgResponse: tr.AvgResponse(),
				MaxResponse: tr.MaxResponse,
			})
		}
	}
	return r
}

// String renders the report as a compact table.
func (r Report) String() string {
	out := fmt.Sprintf("t=%s activations=%d completions=%d misses=%d violations=%d\n",
		r.Until, r.Stats.Activations, r.Stats.Completions, r.Stats.DeadlineMisses, len(r.Violations))
	for _, t := range r.Tasks {
		out += fmt.Sprintf("  %-16s act=%-5d done=%-5d miss=%-4d avg=%-12s max=%s\n",
			t.Name, t.Activations, t.Completions, t.Misses, t.AvgResponse, t.MaxResponse)
	}
	return out
}
