// Package core is the public face of the HADES middleware: it assembles
// the simulated COTS platform (kernel + network), the generic dispatcher
// and per-application schedulers into one System, mirroring Figure 1's
// layering — applications over schedulers over the dispatcher and
// services over the COTS RT-kernel and hardware.
//
// Typical use:
//
//	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1})
//	app := sys.NewApp("ctrl", sched.NewEDF(20*vtime.Microsecond), sched.NewSRP())
//	app.MustAddTask(taskA)
//	app.Seal()
//	sys.StartPeriodic("taskA")
//	report := sys.Run(vtime.Second)
package core

import (
	"fmt"

	"hades/internal/cluster"
	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// Config describes the platform to assemble.
type Config struct {
	// Nodes is the number of mono-processor machines.
	Nodes int
	// Seed drives all randomness (delays, generators): same seed, same
	// run.
	Seed int64
	// Costs is the §4 cost book; zero value means free middleware
	// (useful for idealised comparisons). Use
	// dispatcher.DefaultCostBook for realistic costs.
	Costs dispatcher.CostBook
	// Network enables the simulated interconnect when Nodes > 1. Nil
	// with Nodes > 1 installs netsim.DefaultConfig.
	Network *netsim.Config
	// LinkDelayMin/Max bound point-to-point delays for the default
	// full mesh (used when Network is enabled).
	LinkDelayMin, LinkDelayMax vtime.Duration
	// LogLimit bounds the event log (0 = a generous default).
	LogLimit int
	// CancelOnMiss aborts instances at their deadline (orphan
	// handling); default false records misses only.
	CancelOnMiss bool
}

// System is an assembled HADES platform.
type System struct {
	cfg  Config
	clu  *cluster.Cluster
	eng  *simkern.Engine
	net  *netsim.Network
	disp *dispatcher.Dispatcher
	log  *monitor.Log
	apps []*App

	// Operational modes (see modes.go).
	modes      map[string][]string
	mode       string
	generators []*generator
}

// NewSystem assembles a platform per cfg. The composition itself lives
// in the cluster runtime layer; System adds the operational-mode
// machinery (modes.go) and the historical report shape on top.
func NewSystem(cfg Config) *System {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.LinkDelayMax == 0 {
		cfg.LinkDelayMin, cfg.LinkDelayMax = 100*vtime.Microsecond, 300*vtime.Microsecond
	}
	ccfg := cluster.Config{
		Seed:         cfg.Seed,
		Costs:        cfg.Costs,
		LogLimit:     cfg.LogLimit,
		CancelOnMiss: cfg.CancelOnMiss,
	}
	if cfg.Network != nil {
		// Used verbatim, zero fields included, matching the historical
		// semantics of Config.Network.
		ccfg.Net = &cluster.NetParams{
			WAtm:    cfg.Network.WAtm,
			WProto:  cfg.Network.WProto,
			PrioNet: cfg.Network.PrioNet,
		}
	}
	c := cluster.New(ccfg)
	c.AddNodes(cfg.Nodes)
	if cfg.Nodes > 1 {
		c.ConnectAll(cfg.LinkDelayMin, cfg.LinkDelayMax)
	}
	return &System{
		cfg:   cfg,
		clu:   c,
		eng:   c.Engine(),
		net:   c.Network(),
		disp:  c.Dispatcher(),
		log:   c.Log(),
		modes: make(map[string][]string),
	}
}

// Engine returns the discrete-event engine.
func (s *System) Engine() *simkern.Engine { return s.eng }

// Network returns the simulated network (nil on single-node systems).
func (s *System) Network() *netsim.Network { return s.net }

// Dispatcher returns the generic dispatcher.
func (s *System) Dispatcher() *dispatcher.Dispatcher { return s.disp }

// Log returns the monitoring event log.
func (s *System) Log() *monitor.Log { return s.log }

// Now returns current virtual time.
func (s *System) Now() vtime.Time { return s.eng.Now() }

// App is an application handle: a scheduler, a resource policy, tasks.
type App struct {
	sys *System
	app *dispatcher.App
}

// NewApp registers an application with its scheduling policy and
// resource protocol (nil policy = plain locking).
func (s *System) NewApp(name string, sch dispatcher.Scheduler, pol dispatcher.ResourcePolicy) *App {
	a := &App{sys: s, app: s.disp.RegisterApp(name, sch, pol)}
	s.apps = append(s.apps, a)
	return a
}

// AddTask registers a HEUG task.
func (a *App) AddTask(t *heug.Task) error {
	_, err := a.app.AddTask(t)
	return err
}

// MustAddTask registers a task, panicking on error (static setup).
func (a *App) MustAddTask(t *heug.Task) {
	if err := a.AddTask(t); err != nil {
		panic(err)
	}
}

// AddSpuri translates a §5.1 task via Figure 3 and registers it.
func (a *App) AddSpuri(st heug.SpuriTask) error {
	t, err := st.ToHEUG()
	if err != nil {
		return err
	}
	return a.AddTask(t)
}

// Seal finishes the app: static priority assignment, protocol ceilings,
// admission wiring. Call once after all AddTask calls.
func (a *App) Seal() { a.app.Seal() }

// Raw returns the underlying dispatcher.App (advanced use).
func (a *App) Raw() *dispatcher.App { return a.app }

// StartPeriodic installs a timer-driven activation source following the
// task's declared periodic arrival law (offset then every period),
// running until the simulation horizon.
func (s *System) StartPeriodic(task string) error { return s.clu.StartPeriodic(task) }

// StartSporadicWorstCase activates a sporadic task at its maximum legal
// rate (every pseudo-period) — the worst-case arrival pattern the
// feasibility tests assume, used by the validation experiments.
func (s *System) StartSporadicWorstCase(task string) error {
	return s.clu.StartSporadicWorstCase(task)
}

// StartSporadic activates a sporadic task with the pseudo-period plus a
// caller-supplied extra gap per instance (nil = worst-case rate). The
// pattern is deterministic given the engine seed if extraGap uses it.
func (s *System) StartSporadic(task string, extraGap func(k uint64) vtime.Duration) error {
	return s.clu.StartSporadic(task, extraGap)
}

// ActivateAt requests a single activation at an absolute instant
// (aperiodic arrivals, interrupt-triggered tasks).
func (s *System) ActivateAt(task string, at vtime.Time) { s.clu.ActivateAt(task, at) }

// ActivateOnCond activates the task whenever the named condition
// variable is set — the event-triggered activation law of §3.1.2. The
// task's deadline then runs from the event, which is what a watchdog
// or alarm task wants.
func (s *System) ActivateOnCond(cond, task string) { s.clu.ActivateOnCond(cond, task) }

// Report is the outcome of a run.
type Report struct {
	Until      vtime.Time
	Stats      dispatcher.Stats
	Tasks      []TaskReport
	Violations []monitor.Event
}

// TaskReport is one task's runtime statistics.
type TaskReport struct {
	Name        string
	Activations int
	Completions int
	Misses      int
	AvgResponse vtime.Duration
	MaxResponse vtime.Duration
}

// Run executes the system for the given virtual duration and reports.
// It may be called repeatedly to advance further.
func (s *System) Run(d vtime.Duration) Report {
	until := s.eng.Now().Add(d)
	s.eng.Run(until)
	return s.ReportNow()
}

// ReportNow builds a report at the current instant without advancing.
func (s *System) ReportNow() Report {
	r := Report{Until: s.eng.Now(), Stats: s.disp.Stats(), Violations: s.log.Violations()}
	for _, a := range s.apps {
		for _, tr := range a.app.Tasks() {
			r.Tasks = append(r.Tasks, TaskReport{
				Name:        tr.Task.Name,
				Activations: tr.Activations,
				Completions: tr.Completions,
				Misses:      tr.Misses,
				AvgResponse: tr.AvgResponse(),
				MaxResponse: tr.MaxResponse,
			})
		}
	}
	return r
}

// String renders the report as a compact table.
func (r Report) String() string {
	out := fmt.Sprintf("t=%s activations=%d completions=%d misses=%d violations=%d\n",
		r.Until, r.Stats.Activations, r.Stats.Completions, r.Stats.DeadlineMisses, len(r.Violations))
	for _, t := range r.Tasks {
		out += fmt.Sprintf("  %-16s act=%-5d done=%-5d miss=%-4d avg=%-12s max=%s\n",
			t.Name, t.Activations, t.Completions, t.Misses, t.AvgResponse, t.MaxResponse)
	}
	return out
}
