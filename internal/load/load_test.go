package load

import (
	"strings"
	"testing"

	"hades/internal/vtime"
)

// sim is a minimal deterministic event loop standing in for the
// engine: callbacks fire in (instant, insertion) order.
type sim struct {
	now    vtime.Time
	events []simEvent
	seq    int
}

type simEvent struct {
	at  vtime.Time
	seq int
	fn  func()
}

func (s *sim) At(t vtime.Time, fn func()) {
	s.seq++
	s.events = append(s.events, simEvent{at: t, seq: s.seq, fn: fn})
}

func (s *sim) Now() vtime.Time { return s.now }

// run drains the queue up to the horizon (linear scan: test-sized).
func (s *sim) run(until vtime.Time) {
	for {
		best := -1
		for i, e := range s.events {
			if best < 0 || e.at < s.events[best].at ||
				(e.at == s.events[best].at && e.seq < s.events[best].seq) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		e := s.events[best]
		s.events = append(s.events[:best], s.events[best+1:]...)
		if e.at > until {
			return
		}
		s.now = e.at
		e.fn()
	}
}

// arrival is one recorded submission.
type arrival struct {
	at  vtime.Time
	key string
}

// runKV drives a generator through the sim with a fixed ack latency
// and records every submission.
func runKV(t *testing.T, cfg Config, ackAfter vtime.Duration, until vtime.Time) (*Generator, []arrival) {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &sim{}
	var got []arrival
	g.Start(Sinks{
		At:  s.At,
		Now: s.Now,
		SubmitKV: func(key string, cmd int64, done func()) {
			got = append(got, arrival{at: s.now, key: key})
			if done != nil {
				s.At(s.now.Add(ackAfter), done)
			}
		},
	})
	s.run(until)
	return g, got
}

func TestValidate(t *testing.T) {
	keys := []string{"a", "b", "c"}
	window := func(c Config) Config {
		c.End = vtime.Time(vtime.Second)
		return c
	}
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // "" = accepted
	}{
		{"unnamed", window(Config{Keys: keys, Sessions: 1}), "needs a name"},
		{"no keys", window(Config{Name: "g", Sessions: 1}), "at least one key"},
		{"txn one key", window(Config{Name: "g", Workload: Txn, Keys: []string{"a"}, Sessions: 1}), "at least two keys"},
		{"negative skew", window(Config{Name: "g", Keys: keys, Sessions: 1, ZipfSkew: -1}), "negative zipfSkew"},
		{"empty window", Config{Name: "g", Keys: keys, Sessions: 1}, "empty submission window"},
		{"closed no sessions", window(Config{Name: "g", Keys: keys}), "at least 1 session"},
		{"closed negative think", window(Config{Name: "g", Keys: keys, Sessions: 1, Think: -1}), "negative think"},
		{"closed with rate", window(Config{Name: "g", Keys: keys, Sessions: 1, Rate: 10}), "rate is open-loop only"},
		{"closed with ramp", window(Config{Name: "g", Keys: keys, Sessions: 1,
			Ramp: []RampStep{{At: 1, Rate: 5}}}), "ramps are open-loop only"},
		{"open no rate", window(Config{Name: "g", Mode: Open, Keys: keys}), "positive rate or a ramp"},
		{"open negative rate", window(Config{Name: "g", Mode: Open, Keys: keys, Rate: -3,
			Ramp: []RampStep{{At: 1, Rate: 5}}}), "negative arrival rate"},
		{"open with sessions", window(Config{Name: "g", Mode: Open, Keys: keys, Rate: 10, Sessions: 4}), "sessions are closed-loop only"},
		{"ramp negative rate", window(Config{Name: "g", Mode: Open, Keys: keys,
			Ramp: []RampStep{{At: 1, Rate: -5}}}), "negative rate"},
		{"ramp not ascending", window(Config{Name: "g", Mode: Open, Keys: keys, Rate: 10,
			Ramp: []RampStep{{At: 5, Rate: 1}, {At: 5, Rate: 2}}}), "strictly ascend"},
		{"shift not ascending", window(Config{Name: "g", Keys: keys, Sessions: 1, ZipfSkew: 1,
			HotspotShift: []HotspotShift{{At: 9, Shift: 1}, {At: 3, Shift: 2}}}), "strictly ascend"},
		{"shift without skew", window(Config{Name: "g", Keys: keys, Sessions: 1,
			HotspotShift: []HotspotShift{{At: 1, Shift: 1}}}), "without zipfSkew"},
		{"negative maxOps", window(Config{Name: "g", Keys: keys, Sessions: 1, MaxOps: -1}), "negative maxOps"},
		{"valid closed", window(Config{Name: "g", Keys: keys, Sessions: 8, Think: vtime.Millisecond}), ""},
		{"valid open", window(Config{Name: "g", Mode: Open, Keys: keys, Rate: 100, ZipfSkew: 1.1,
			Ramp:         []RampStep{{At: 10, Rate: 0}, {At: 20, Rate: 50}},
			HotspotShift: []HotspotShift{{At: 15, Shift: 1}}}), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q missing %q", err, tc.wantErr)
			}
		})
	}
}

// TestOpenLoopDeterministic: the same config lays out the identical
// arrival schedule, twice.
func TestOpenLoopDeterministic(t *testing.T) {
	cfg := Config{
		Name: "g", Mode: Open, Rate: 500, Seed: 7, ZipfSkew: 1.2,
		Keys: []string{"a", "b", "c", "d"},
		End:  vtime.Time(vtime.Second),
	}
	_, first := runKV(t, cfg, 0, vtime.Time(2*vtime.Second))
	_, second := runKV(t, cfg, 0, vtime.Time(2*vtime.Second))
	if len(first) == 0 {
		t.Fatal("no arrivals")
	}
	if len(first) != len(second) {
		t.Fatalf("replay diverged: %d vs %d arrivals", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("arrival %d diverged: %+v vs %+v", i, first[i], second[i])
		}
	}
	// A different seed lays out a different schedule.
	cfg.Seed = 8
	_, other := runKV(t, cfg, 0, vtime.Time(2*vtime.Second))
	same := len(other) == len(first)
	if same {
		for i := range first {
			if first[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds replayed the identical schedule")
	}
}

// TestOpenLoopRamp: a rate ramp changes arrival density at the step,
// and a zero-rate plateau admits no arrivals at all.
func TestOpenLoopRamp(t *testing.T) {
	half := vtime.Time(500 * vtime.Millisecond)
	cfg := Config{
		Name: "g", Mode: Open, Rate: 100, Seed: 1,
		Keys: []string{"a"},
		Ramp: []RampStep{{At: half, Rate: 1000}},
		End:  vtime.Time(vtime.Second),
	}
	_, got := runKV(t, cfg, 0, vtime.Time(2*vtime.Second))
	var before, after int
	for _, a := range got {
		if a.at < half {
			before++
		} else {
			after++
		}
	}
	// Expectations: 50 and 500 arrivals. Allow wide slack — the draw
	// is deterministic but we assert shape, not the sample path.
	if before < 20 || before > 100 {
		t.Fatalf("pre-ramp arrivals = %d, want ≈50", before)
	}
	if after < 300 || after > 800 {
		t.Fatalf("post-ramp arrivals = %d, want ≈500", after)
	}

	// Zero-rate plateau until the step: nothing before, plenty after.
	cfg.Rate = 0
	_, got = runKV(t, cfg, 0, vtime.Time(2*vtime.Second))
	for _, a := range got {
		if a.at < half {
			t.Fatalf("arrival at %v inside the zero-rate plateau", a.at)
		}
	}
	if len(got) == 0 {
		t.Fatal("no arrivals after the plateau ended")
	}
}

// TestHotspotShift: the zipf-hot key moves at the shift instant.
func TestHotspotShift(t *testing.T) {
	half := vtime.Time(500 * vtime.Millisecond)
	cfg := Config{
		Name: "g", Mode: Open, Rate: 4000, Seed: 3, ZipfSkew: 1.5,
		Keys:         []string{"a", "b", "c", "d", "e", "f", "g", "h"},
		HotspotShift: []HotspotShift{{At: half, Shift: 1}},
		End:          vtime.Time(vtime.Second),
	}
	_, got := runKV(t, cfg, 0, vtime.Time(2*vtime.Second))
	hottest := func(lo, hi vtime.Time) string {
		counts := map[string]int{}
		for _, a := range got {
			if a.at >= lo && a.at < hi {
				counts[a.key]++
			}
		}
		best, n := "", -1
		for k, c := range counts {
			if c > n || (c == n && k < best) {
				best, n = k, c
			}
		}
		return best
	}
	if h := hottest(0, half); h != "a" {
		t.Fatalf("pre-shift hot key = %q, want \"a\"", h)
	}
	if h := hottest(half, vtime.Time(vtime.Second)); h != "b" {
		t.Fatalf("post-shift hot key = %q, want \"b\" (rank rotated by 1)", h)
	}
}

// TestClosedLoop: sessions ride their ack callbacks — every offered op
// is acked, nothing submits outside the window, and the loop respects
// the think floor between an ack and the next submission.
func TestClosedLoop(t *testing.T) {
	end := vtime.Time(200 * vtime.Millisecond)
	think := 5 * vtime.Millisecond
	cfg := Config{
		Name: "g", Sessions: 8, Think: think, Seed: 11,
		Keys: []string{"a", "b", "c"},
		End:  end,
	}
	ack := vtime.Millisecond
	g, got := runKV(t, cfg, ack, vtime.Time(vtime.Second))
	if g.Stats.Offered == 0 {
		t.Fatal("closed loop offered nothing")
	}
	if g.Stats.Offered != g.Stats.Acked {
		t.Fatalf("offered %d != acked %d (fixed-latency acks must all land)", g.Stats.Offered, g.Stats.Acked)
	}
	if int(g.Stats.Offered) != len(got) {
		t.Fatalf("stats count %d != recorded %d", g.Stats.Offered, len(got))
	}
	for _, a := range got {
		if a.at >= end {
			t.Fatalf("submission at %v outside the window", a.at)
		}
	}
	// Each session's cycle is ack latency + think ≥ 1ms + 2.5ms; 8
	// sessions over 200ms can offer at most ~8·(200/3.5) ≈ 457 ops.
	if g.Stats.Offered > 500 {
		t.Fatalf("offered %d ops — think floor not respected", g.Stats.Offered)
	}
	// And determinism: the replay is identical.
	g2, got2 := runKV(t, cfg, ack, vtime.Time(vtime.Second))
	if g2.Stats != g.Stats || len(got2) != len(got) {
		t.Fatalf("closed-loop replay diverged: %+v vs %+v", g2.Stats, g.Stats)
	}
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("submission %d diverged: %+v vs %+v", i, got[i], got2[i])
		}
	}
}

// TestMaxOpsCap: the open-loop guard truncates a runaway schedule and
// says so.
func TestMaxOpsCap(t *testing.T) {
	cfg := Config{
		Name: "g", Mode: Open, Rate: 100000, Seed: 1,
		Keys:   []string{"a"},
		End:    vtime.Time(vtime.Second),
		MaxOps: 50,
	}
	g, got := runKV(t, cfg, 0, vtime.Time(2*vtime.Second))
	if !g.Stats.Capped {
		t.Fatal("cap hit but not reported")
	}
	if len(got) != 50 {
		t.Fatalf("scheduled %d arrivals past a cap of 50", len(got))
	}
}

// TestTxnWorkload: transfers carry two distinct keys and ack through
// the decision callback.
func TestTxnWorkload(t *testing.T) {
	cfg := Config{
		Name: "g", Workload: Txn, Sessions: 2, Think: vtime.Millisecond, Seed: 5,
		Keys: []string{"a", "b", "c"},
		End:  vtime.Time(50 * vtime.Millisecond),
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &sim{}
	transfers := 0
	g.Start(Sinks{
		At:  s.At,
		Now: s.Now,
		Transfer: func(from, to string, amount int64, done func()) {
			transfers++
			if from == to {
				t.Fatalf("transfer %q -> itself", from)
			}
			if done != nil {
				s.At(s.now.Add(vtime.Millisecond), done)
			}
		},
	})
	s.run(vtime.Time(vtime.Second))
	if transfers == 0 {
		t.Fatal("no transfers")
	}
	if g.Stats.Offered != g.Stats.Acked {
		t.Fatalf("offered %d != acked %d", g.Stats.Offered, g.Stats.Acked)
	}
}

// TestStartPanics: missing sinks fail loudly, not silently.
func TestStartPanics(t *testing.T) {
	mk := func(cfg Config) *Generator {
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	base := Config{Name: "g", Sessions: 1, Keys: []string{"a"}, End: vtime.Time(vtime.Second)}
	expectPanic("no At", func() { mk(base).Start(Sinks{}) })
	expectPanic("no SubmitKV", func() {
		mk(base).Start(Sinks{At: func(vtime.Time, func()) {}, Now: func() vtime.Time { return 0 }})
	})
	expectPanic("closed without Now", func() {
		mk(base).Start(Sinks{At: func(vtime.Time, func()) {}, SubmitKV: func(string, int64, func()) {}})
	})
}
