// Package load is the workload harness of the HADES reproduction: an
// open/closed-loop generator driving simulated client sessions
// through the sharded data plane on the virtual clock.
//
// Closed-loop mode multiplexes N logical sessions over the attached
// clients: each session submits one operation, waits for its
// acknowledgment, thinks for a sampled interval, and submits the
// next — offered load tracks the system's capacity, the classic
// interactive discipline. Open-loop mode precomputes a Poisson
// arrival schedule (exponential inter-arrivals, piecewise rate from
// the ramp schedule) and submits regardless of completions — offered
// load is exogenous, the discipline that exposes saturation.
//
// Determinism contract: every random draw (keys, think times,
// inter-arrivals) comes from a local source seeded by the generator's
// derived seed, consumed either at build time (open-loop schedule,
// laid out before the run starts) or in per-session order (closed
// loop, one source per session) — the engine's random stream is never
// touched, so attaching a generator changes only the workload it
// submits, and the same description plus the same seed replays the
// identical run.
package load

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hades/internal/metrics"
	"hades/internal/vtime"
)

// Mode selects the generator's arrival discipline.
type Mode uint8

const (
	// Closed runs Sessions concurrent submit→ack→think loops.
	Closed Mode = iota
	// Open submits on a precomputed Poisson schedule.
	Open
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Open {
		return "open"
	}
	return "closed"
}

// Workload selects the op shape the generator drives.
type Workload uint8

const (
	// KV submits single-key writes through shard clients.
	KV Workload = iota
	// Txn submits two-key transfers through transaction clients.
	Txn
	// Pub publishes samples into pub/sub topics: Keys are topic names
	// (declaration order = zipf rank, so a skewed generator concentrates
	// its storm on the first topic).
	Pub
)

// String returns the workload name.
func (w Workload) String() string {
	switch w {
	case Txn:
		return "txn"
	case Pub:
		return "pubsub"
	}
	return "kv"
}

// RampStep changes the open-loop arrival rate at an instant: from At
// on, arrivals come at Rate ops/sec (until the next step).
type RampStep struct {
	At   vtime.Time
	Rate float64
}

// HotspotShift rotates the zipf key ranking at an instant: from At
// on, the key at declaration rank r serves rank (r+Shift) mod len —
// the hot key moves mid-run, the signal hot-shard detection and
// (eventually) elastic resharding must chase.
type HotspotShift struct {
	At    vtime.Time
	Shift int
}

// Config parameterises one generator.
type Config struct {
	// Name labels the generator in reports and metric series.
	Name string
	// Mode is the arrival discipline; Workload the op shape.
	Mode     Mode
	Workload Workload
	// Sessions is the closed-loop concurrency (ignored open-loop).
	Sessions int
	// Think is the closed-loop mean think time between an ack and the
	// next submission (sampled uniformly in [Think/2, 3·Think/2]).
	Think vtime.Duration
	// Rate is the open-loop arrival rate in ops/sec until the first
	// ramp step (ignored closed-loop).
	Rate float64
	// Ramp schedules open-loop rate changes, ascending instants.
	Ramp []RampStep
	// Keys is the keyspace, declaration order = zipf rank (first key
	// hottest). Txn workloads transfer between consecutive key pairs.
	Keys []string
	// ZipfSkew is the key-choice exponent; 0 = uniform rotation.
	ZipfSkew float64
	// HotspotShift schedules mid-run rotations of the zipf ranking.
	HotspotShift []HotspotShift
	// Seed derives the generator's local random sources (never the
	// engine's stream).
	Seed int64
	// Start and End bound the submission window.
	Start vtime.Time
	End   vtime.Time
	// MaxOps caps total submissions (0 = DefaultMaxOps), a guard
	// against runaway open-loop schedules.
	MaxOps int
}

// DefaultMaxOps bounds a generator's total submissions when the
// config leaves the cap zero.
const DefaultMaxOps = 1_000_000

// Validate checks the configuration loudly.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("load: generator needs a name")
	}
	if len(c.Keys) == 0 {
		return fmt.Errorf("load %q: needs at least one key", c.Name)
	}
	if c.Workload == Txn && len(c.Keys) < 2 {
		return fmt.Errorf("load %q: txn workload needs at least two keys", c.Name)
	}
	if c.ZipfSkew < 0 {
		return fmt.Errorf("load %q: negative zipfSkew %g", c.Name, c.ZipfSkew)
	}
	if c.End <= c.Start {
		return fmt.Errorf("load %q: empty submission window [%s, %s)", c.Name, c.Start, c.End)
	}
	switch c.Mode {
	case Closed:
		if c.Sessions < 1 {
			return fmt.Errorf("load %q: closed-loop needs at least 1 session (got %d)", c.Name, c.Sessions)
		}
		if c.Think < 0 {
			return fmt.Errorf("load %q: negative think time %s", c.Name, c.Think)
		}
		if c.Rate != 0 {
			return fmt.Errorf("load %q: closed-loop sets arrival rate %g (rate is open-loop only)", c.Name, c.Rate)
		}
		if len(c.Ramp) > 0 {
			return fmt.Errorf("load %q: closed-loop sets a ramp schedule (ramps are open-loop only)", c.Name)
		}
	case Open:
		if c.Rate <= 0 && len(c.Ramp) == 0 {
			return fmt.Errorf("load %q: open-loop needs a positive rate or a ramp schedule", c.Name)
		}
		if c.Rate < 0 {
			return fmt.Errorf("load %q: negative arrival rate %g", c.Name, c.Rate)
		}
		if c.Sessions != 0 {
			return fmt.Errorf("load %q: open-loop sets sessions=%d (sessions are closed-loop only)", c.Name, c.Sessions)
		}
	default:
		return fmt.Errorf("load %q: unknown mode %d", c.Name, c.Mode)
	}
	prev := vtime.Time(-1)
	for i, st := range c.Ramp {
		if st.Rate < 0 {
			return fmt.Errorf("load %q: ramp step %d has negative rate %g", c.Name, i, st.Rate)
		}
		if st.At <= prev {
			return fmt.Errorf("load %q: ramp instants must strictly ascend (step %d at %s)", c.Name, i, st.At)
		}
		prev = st.At
	}
	prev = vtime.Time(-1)
	for i, hs := range c.HotspotShift {
		if hs.At <= prev {
			return fmt.Errorf("load %q: hotspotShift instants must strictly ascend (step %d at %s)", c.Name, i, hs.At)
		}
		prev = hs.At
	}
	if len(c.HotspotShift) > 0 && c.ZipfSkew == 0 {
		return fmt.Errorf("load %q: hotspotShift without zipfSkew moves nothing (set a skew)", c.Name)
	}
	if c.MaxOps < 0 {
		return fmt.Errorf("load %q: negative maxOps %d", c.Name, c.MaxOps)
	}
	return nil
}

// Sinks wire a generator into the cluster. The cluster layer supplies
// closures over its clients and scheduler; the generator never
// imports it.
type Sinks struct {
	// SubmitKV submits one keyed write; done fires when it is acked.
	SubmitKV func(key string, cmd int64, done func())
	// Transfer submits one two-key transfer; done fires when the
	// transaction decides (commit or abort).
	Transfer func(from, to string, amount int64, done func())
	// Publish publishes one sample into a topic; done fires when the
	// publish completes (reliable: the replication ack; best-effort:
	// the broadcast's origin delivery — a dropped sample never does).
	Publish func(topic string, value int64, done func())
	// At schedules fn at absolute virtual instant t.
	At func(t vtime.Time, fn func())
	// Now reads the virtual clock (required closed-loop: the think
	// interval starts at the ack instant).
	Now func() vtime.Time
	// Metrics, when non-nil, receives the generator's offered/acked
	// counters for per-interval throughput series.
	Metrics *metrics.Registry
}

// Stats is a generator's account.
type Stats struct {
	// Offered counts submissions handed to the sink; Acked the
	// completions observed (txn: decided, commit or abort).
	Offered int64
	Acked   int64
	// Capped reports the MaxOps guard truncated the schedule.
	Capped bool
}

// Generator drives one configured workload. Build with New, wire and
// lay out with Start; Stats accumulates as the run executes.
type Generator struct {
	cfg   Config
	s     Sinks
	Stats Stats

	shiftIdx int // consumed HotspotShift steps
	mOffered *metrics.Counter
	mAcked   *metrics.Counter
	mLat     *metrics.Hist
	// lat records each completion's submit→ack latency in completion
	// order (requires Sinks.Now; per-generator attribution in reports).
	lat    []vtime.Duration
	maxOps int
}

// New validates the config and builds a generator.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, maxOps: cfg.MaxOps}
	if g.maxOps == 0 {
		g.maxOps = DefaultMaxOps
	}
	return g, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// shiftAt returns the cumulative rank rotation in force at t.
func (g *Generator) shiftAt(t vtime.Time) int {
	shift := 0
	for _, hs := range g.cfg.HotspotShift {
		if hs.At > t {
			break
		}
		shift = hs.Shift
	}
	return shift
}

// keyPicker builds a deterministic key chooser over its own source:
// zipf inverse-CDF when skewed (declaration order = rank), uniform
// rotation otherwise. The rank→key mapping rotates by the hotspot
// shift in force at the submission instant.
func (g *Generator) keyPicker(rng *rand.Rand) func(at vtime.Time) string {
	keys := g.cfg.Keys
	if g.cfg.ZipfSkew == 0 || len(keys) < 2 {
		i := 0
		return func(vtime.Time) string {
			k := keys[i%len(keys)]
			i++
			return k
		}
	}
	weights := make([]float64, len(keys))
	total := 0.0
	for i := range keys {
		weights[i] = 1 / math.Pow(float64(i+1), g.cfg.ZipfSkew)
		total += weights[i]
	}
	return func(at vtime.Time) string {
		u := rng.Float64() * total
		rank := len(keys) - 1
		for i, w := range weights {
			u -= w
			if u < 0 {
				rank = i
				break
			}
		}
		return keys[(rank+g.shiftAt(at))%len(keys)]
	}
}

// sessionSeed derives one session's (or the arrival schedule's)
// source from the generator seed — the same large-prime mixing the
// scenario layer uses for client pickers.
func (g *Generator) sessionSeed(i int) int64 {
	return g.cfg.Seed*1000003 + int64(i)*7919 + 1
}

// Start wires the sinks and lays out the workload: closed-loop
// sessions schedule their first submissions; the open-loop arrival
// schedule is computed in full (build time — before the engine runs).
func (g *Generator) Start(s Sinks) {
	if s.At == nil {
		panic("load: Sinks.At is required")
	}
	switch g.cfg.Workload {
	case KV:
		if s.SubmitKV == nil {
			panic("load: kv workload needs Sinks.SubmitKV")
		}
	case Txn:
		if s.Transfer == nil {
			panic("load: txn workload needs Sinks.Transfer")
		}
	case Pub:
		if s.Publish == nil {
			panic("load: pubsub workload needs Sinks.Publish")
		}
	}
	if g.cfg.Mode == Closed && s.Now == nil {
		panic("load: closed-loop needs Sinks.Now")
	}
	g.s = s
	g.mOffered = s.Metrics.Counter("load." + g.cfg.Name + ".offered")
	g.mAcked = s.Metrics.Counter("load." + g.cfg.Name + ".acked")
	g.mLat = s.Metrics.Hist("load." + g.cfg.Name + ".latency")
	if g.cfg.Mode == Open {
		g.layoutOpen()
		return
	}
	for i := 0; i < g.cfg.Sessions; i++ {
		g.startSession(i)
	}
}

// submit issues one op at the current instant, invoking done when the
// op completes. Returns false when the window closed or the cap hit.
func (g *Generator) submit(at vtime.Time, pick func(vtime.Time) string, rng *rand.Rand, done func()) bool {
	if at >= g.cfg.End {
		return false
	}
	if g.Stats.Offered >= int64(g.maxOps) {
		g.Stats.Capped = true
		return false
	}
	g.Stats.Offered++
	g.mOffered.Inc()
	onDone := func() {
		g.Stats.Acked++
		g.mAcked.Inc()
		if g.s.Now != nil {
			// at is the submission instant: the callback fires inside the
			// engine, so Now minus at is the op's true completion latency.
			l := g.s.Now().Sub(at)
			g.lat = append(g.lat, l)
			g.mLat.ObserveD(l)
		}
		if done != nil {
			done()
		}
	}
	switch g.cfg.Workload {
	case Txn:
		from := pick(at)
		to := g.otherKey(from, rng)
		g.s.Transfer(from, to, 1, onDone)
	case Pub:
		g.s.Publish(pick(at), g.Stats.Offered, onDone)
	default:
		g.s.SubmitKV(pick(at), 1, onDone)
	}
	return true
}

// otherKey picks a second, distinct key for a transfer: the next key
// in declaration order (deterministic, no extra draw).
func (g *Generator) otherKey(from string, _ *rand.Rand) string {
	keys := g.cfg.Keys
	for i, k := range keys {
		if k == from {
			return keys[(i+1)%len(keys)]
		}
	}
	return keys[0]
}

// startSession lays out one closed-loop session: a staggered first
// submission, then a submit→ack→think loop riding the ack callbacks.
// All draws come from the session's own source, consumed in the
// session's causal order — deterministic however sessions interleave.
func (g *Generator) startSession(i int) {
	rng := rand.New(rand.NewSource(g.sessionSeed(i)))
	pick := g.keyPicker(rng)
	// Stagger session starts uniformly across one think interval (or
	// 1ms when thinkless) so thousands of sessions do not arrive as
	// one spike at Start.
	window := g.cfg.Think
	if window <= 0 {
		window = vtime.Millisecond
	}
	first := g.cfg.Start.Add(vtime.Duration(rng.Int63n(int64(window) + 1)))
	var fireAt func(at vtime.Time)
	fireAt = func(at vtime.Time) {
		g.submit(at, pick, rng, func() {
			// The ack callback runs at the ack instant inside the
			// engine: think from here, then go again.
			think := vtime.Duration(0)
			if g.cfg.Think > 0 {
				think = g.cfg.Think/2 + vtime.Duration(rng.Int63n(int64(g.cfg.Think)+1))
			}
			next := g.s.Now().Add(think)
			if next >= g.cfg.End {
				return // window closed: session retires
			}
			g.s.At(next, func() { fireAt(next) })
		})
	}
	g.s.At(first, func() { fireAt(first) })
}

// layoutOpen precomputes the Poisson arrival schedule: exponential
// inter-arrivals at the piecewise rate the ramp declares, every draw
// from the schedule's own source at build time.
func (g *Generator) layoutOpen() {
	rng := rand.New(rand.NewSource(g.sessionSeed(-1)))
	pick := g.keyPicker(rng)
	t := g.cfg.Start
	n := 0
	for {
		r := g.rateAt(t)
		if r <= 0 {
			// A zero-rate plateau: jump to the next ramp step, if any.
			next, ok := g.nextRampAfter(t)
			if !ok {
				break
			}
			t = next
			continue
		}
		// Exponential inter-arrival at rate r ops/sec.
		gap := vtime.Duration(rng.ExpFloat64() / r * float64(vtime.Second))
		if gap < 1 {
			gap = 1
		}
		t = t.Add(gap)
		if t >= g.cfg.End {
			break
		}
		if n >= g.maxOps {
			g.Stats.Capped = true
			break
		}
		n++
		at := t
		g.s.At(at, func() { g.submit(at, pick, rng, nil) })
	}
}

// rateAt returns the arrival rate in force at t.
func (g *Generator) rateAt(t vtime.Time) float64 {
	r := g.cfg.Rate
	for _, st := range g.cfg.Ramp {
		if st.At > t {
			break
		}
		r = st.Rate
	}
	return r
}

// LatencyStats is a generator's completion-latency distribution —
// the per-generator attribution report rows carry (the trace plane's
// latency rows aggregate by op class and shard, so coexisting
// generators of the same class would blur there).
type LatencyStats struct {
	Count                     int
	P50, P99, P999, Max, Mean vtime.Duration
}

// LatencyStats distills the recorded completion latencies. Zero when
// nothing completed (or the sinks carried no clock).
func (g *Generator) LatencyStats() LatencyStats {
	n := len(g.lat)
	if n == 0 {
		return LatencyStats{}
	}
	sorted := append([]vtime.Duration(nil), g.lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum vtime.Duration
	for _, l := range sorted {
		sum += l
	}
	pct := func(q float64) vtime.Duration {
		i := int(q * float64(n))
		if i >= n {
			i = n - 1
		}
		return sorted[i]
	}
	return LatencyStats{
		Count: n,
		P50:   pct(0.50),
		P99:   pct(0.99),
		P999:  pct(0.999),
		Max:   sorted[n-1],
		Mean:  sum / vtime.Duration(n),
	}
}

// nextRampAfter returns the first ramp instant strictly after t.
func (g *Generator) nextRampAfter(t vtime.Time) (vtime.Time, bool) {
	for _, st := range g.cfg.Ramp {
		if st.At > t {
			return st.At, true
		}
	}
	return 0, false
}
