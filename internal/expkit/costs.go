package expkit

import (
	"fmt"

	"hades/internal/cluster"
	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/sched"
	"hades/internal/vtime"
)

func init() {
	register("T1", runT1)
	register("T2", runT2)
}

// measureOverhead runs one aperiodic single-activation scenario under
// the given cost book and returns the CPU time consumed beyond the pure
// action WCETs on node 0 (busy + switch time minus useful work).
func measureOverhead(book dispatcher.CostBook, build func(*cluster.App), useful vtime.Duration, activate []string) vtime.Duration {
	sys := newCluster(2, 1, book)
	app := sys.NewApp("m", sched.NewRM(), nil)
	build(app)
	app.Seal()
	for _, task := range activate {
		sys.ActivateAt(task, 0)
	}
	sys.Run(500 * ms)
	p := sys.Engine().Processors()[0]
	return p.BusyTime() + p.SwitchTime() - useful
}

// runT1 reproduces §4.1: each dispatcher activity constant is measured
// by a worst-case scenario run in which only that constant is non-zero,
// mirroring the paper's isolation methodology ("determined either
// analytically or by running worst-case scenario benchmarks"). The
// measured value must equal the configured one — evidence that the
// simulator charges each activity exactly once, where §4.1 says it
// occurs.
func runT1(Options) Table {
	ref := dispatcher.DefaultCostBook()
	oneEU := func(app *cluster.App) {
		app.MustAddTask(heug.NewTask("m1", heug.AperiodicLaw()).
			WithDeadline(100*ms).
			Code("a", heug.CodeEU{Node: 0, WCET: 1 * ms}).
			MustBuild())
	}
	twoEU := func(app *cluster.App) {
		app.MustAddTask(heug.NewTask("m2", heug.AperiodicLaw()).
			WithDeadline(100*ms).
			Code("a", heug.CodeEU{Node: 0, WCET: 1 * ms}).
			Code("b", heug.CodeEU{Node: 0, WCET: 1 * ms}).
			Precede("a", "b").
			MustBuild())
	}
	remote := func(app *cluster.App) {
		app.MustAddTask(heug.NewTask("m3", heug.AperiodicLaw()).
			WithDeadline(100*ms).
			Code("a", heug.CodeEU{Node: 0, WCET: 1 * ms}).
			Code("b", heug.CodeEU{Node: 1, WCET: 1 * ms}).
			Precede("a", "b").
			MustBuild())
	}

	type probe struct {
		name       string
		configured vtime.Duration
		book       dispatcher.CostBook
		build      func(*cluster.App)
		useful     vtime.Duration
		tasks      []string
	}
	probes := []probe{
		{"C_start_action", ref.StartAction, dispatcher.CostBook{StartAction: ref.StartAction}, oneEU, 1 * ms, []string{"m1"}},
		{"C_end_action", ref.EndAction, dispatcher.CostBook{EndAction: ref.EndAction}, oneEU, 1 * ms, []string{"m1"}},
		{"C_start_inv", ref.StartInv, dispatcher.CostBook{StartInv: ref.StartInv}, oneEU, 1 * ms, []string{"m1"}},
		{"C_end_inv", ref.EndInv, dispatcher.CostBook{EndInv: ref.EndInv}, oneEU, 1 * ms, []string{"m1"}},
		{"C_prec_local", ref.PrecLocal, dispatcher.CostBook{PrecLocal: ref.PrecLocal}, twoEU, 2 * ms, []string{"m2"}},
		{"C_trans_data", ref.TransData, dispatcher.CostBook{TransData: ref.TransData}, remote, 1 * ms, []string{"m3"}},
	}
	tbl := Table{
		ID:      "T1",
		Title:   "§4.1 — dispatcher activity costs: configured vs measured (isolation runs)",
		Columns: []string{"constant", "configured", "measured", "scenario"},
	}
	scenarios := []string{
		"1 EU, 1 activation", "1 EU, 1 activation", "1 EU, 1 activation",
		"1 EU, 1 activation", "2-EU local chain", "2-node remote edge (sender side)",
	}
	for i, p := range probes {
		got := measureOverhead(p.book, p.build, p.useful, p.tasks)
		tbl.Rows = append(tbl.Rows, []string{
			p.name, p.configured.String(), got.String(), scenarios[i],
		})
	}
	// Full-book consistency: total measured per-instance overhead must
	// not exceed the §5.3 inflation used by the feasibility test.
	full := measureOverhead(ref, oneEU, 1*ms, []string{"m1"})
	predicted := ref.StartAction + ref.EndAction + ref.StartInv + ref.EndInv + 3*3*ref.SwitchCost
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("full book, 1-EU instance: measured overhead %s <= analysis allowance %s", full, predicted),
		"each constant charged exactly once where §4.1 places it")
	return tbl
}

// runT2 reproduces §4.2: the background kernel activities of the
// smallest kernel configuration — the clock interrupt and the network
// card interrupt — characterised by WCET and pseudo-period from a
// loaded run, exactly the two activities the paper found in ChorusR3.
func runT2(opts Options) Table {
	book := dispatcher.DefaultCostBook()
	sys := newCluster(2, opts.Seed, book)
	app := sys.NewApp("load", sched.NewRM(), nil)
	// A distributed task to generate ATM traffic.
	app.MustAddTask(heug.NewTask("ship", heug.PeriodicEvery(2*ms)).
		WithDeadline(2*ms).
		Code("a", heug.CodeEU{Node: 1, WCET: 50 * us}).
		Code("b", heug.CodeEU{Node: 0, WCET: 50 * us}).
		Precede("a", "b").
		MustBuild())
	app.Seal()
	if err := sys.StartPeriodic("ship"); err != nil {
		panic(err)
	}
	horizon := vtime.Duration(1) * vtime.Second
	if opts.Quick {
		horizon = 200 * ms
	}
	sys.Run(horizon)

	p0 := sys.Engine().Processors()[0]
	tbl := Table{
		ID:      "T2",
		Title:   "§4.2 — background kernel activities on node 0 (1 s loaded run)",
		Columns: []string{"activity", "count", "w (max WCET)", "pseudo-period (min gap)", "CPU share"},
	}
	for _, src := range []string{"clock", "atm"} {
		st := p0.IRQBySource()[src]
		if st == nil {
			tbl.Rows = append(tbl.Rows, []string{src, "0", "-", "-", "-"})
			continue
		}
		share := fmt.Sprintf("%.3f%%", 100*float64(st.Total)/float64(horizon))
		gap := st.MinGap.String()
		tbl.Rows = append(tbl.Rows, []string{
			src, fmt.Sprint(st.Count), st.MaxWCET.String(), gap, share,
		})
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("configured: w_clk=%s P_clk=%s; w_atm=%s (protocol w_proto separate, on NetMsg task)",
			book.ClockTickWCET, book.ClockTickPeriod, "25us"),
		"both enter the feasibility test as sporadic highest-priority activities (§5.3 kern term)")
	return tbl
}
