// Package expkit implements the reproduction experiments indexed in
// DESIGN.md §4: one function per paper figure/table plus the ablations,
// each returning a printable Table. cmd/hades-exp and the top-level
// benchmarks are thin wrappers over this package, so the experiment
// logic lives in exactly one place.
package expkit

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks sample counts for fast test runs.
	Quick bool
	// Seed is the base seed for all randomised experiments.
	Seed int64
}

// DefaultOptions returns the full-scale configuration.
func DefaultOptions() Options { return Options{Seed: 1} }

// Runner is one experiment entry point.
type Runner func(Options) Table

// registry maps experiment IDs to runners.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs returns the registered experiment IDs, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, opts Options) (Table, error) {
	r, ok := registry[id]
	if !ok {
		return Table{}, fmt.Errorf("expkit: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r(opts), nil
}

// RunAll executes every experiment in ID order.
func RunAll(opts Options) []Table {
	out := make([]Table, 0, len(registry))
	for _, id := range IDs() {
		t, _ := Run(id, opts)
		out = append(out, t)
	}
	return out
}

func pct(num, den int) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
