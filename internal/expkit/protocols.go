package expkit

import (
	"fmt"

	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/monitor"
	"hades/internal/sched"
	"hades/internal/vtime"
)

func init() {
	register("X2", runX2)
}

// inversionRun executes the canonical L/M/H priority-inversion workload
// repeatedly under one resource policy, returning H's worst response,
// the preemption count and the priority-change count.
func inversionRun(opts Options, policy dispatcher.ResourcePolicy) (vtime.Duration, int, int) {
	low := heug.NewTask("low", heug.SporadicEvery(50*ms)).
		WithDeadline(45*ms).
		Code("cs", heug.CodeEU{Node: 0, WCET: 8 * ms,
			Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Exclusive}}}).
		MustBuild()
	mid := heug.NewTask("mid", heug.SporadicEvery(50*ms)).
		WithDeadline(40*ms).
		Code("work", heug.CodeEU{Node: 0, WCET: 15 * ms}).
		MustBuild()
	high := heug.NewTask("high", heug.SporadicEvery(50*ms)).
		WithDeadline(20*ms).
		Code("use", heug.CodeEU{Node: 0, WCET: 1 * ms,
			Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Exclusive}}}).
		MustBuild()
	sys := newCluster(1, opts.Seed, dispatcher.CostBook{})
	app := sys.NewApp("inv", sched.NewDM(), policy)
	app.MustAddTask(low)
	app.MustAddTask(mid)
	app.MustAddTask(high)
	app.Seal()
	// Staggered arrivals per 50 ms hyper-round: L at 0, H at 1 ms,
	// M at 2 ms — the textbook inversion pattern.
	_ = sys.StartSporadic("low", nil)
	high.Arrival.Offset = 1 * ms
	mid.Arrival.Offset = 2 * ms
	_ = sys.StartSporadic("high", nil)
	_ = sys.StartSporadic("mid", nil)
	horizon := 500 * ms
	if opts.Quick {
		horizon = 150 * ms
	}
	rep := sys.Run(horizon)
	var rHigh vtime.Duration
	for _, tr := range rep.Tasks {
		if tr.Name == "high" {
			rHigh = tr.MaxResponse
		}
	}
	prioChanges := sys.Log().CountKind(monitor.KindPriorityChange)
	return rHigh, sys.Engine().Processors()[0].Preemptions(), prioChanges
}

// runX2 reproduces the §3.3/footnote-2 protocol comparison: no
// protocol vs PCP vs SRP on the canonical inversion workload. The
// expected shape: both protocols bound H's blocking to one critical
// section; SRP does it with zero priority manipulation and fewer
// preemptions; no protocol leaves H exposed to M's entire execution.
func runX2(opts Options) Table {
	tbl := Table{
		ID:      "X2",
		Title:   "PCP vs SRP vs no protocol — priority-inversion bounding (DM, L/M/H workload)",
		Columns: []string{"policy", "H max response", "preemptions", "priority changes", "inversion bounded"},
	}
	type row struct {
		name   string
		policy dispatcher.ResourcePolicy
	}
	rows := []row{
		{"none", nil},
		{"PCP", sched.NewPCP()},
		{"SRP", sched.NewSRP()},
	}
	// Bound: L's critical section (8 ms) + H's own 1 ms + dispatch slack.
	bound := 10 * ms
	for _, r := range rows {
		resp, preempts, prios := inversionRun(opts, r.policy)
		tbl.Rows = append(tbl.Rows, []string{
			r.name, resp.String(), fmt.Sprint(preempts), fmt.Sprint(prios),
			fmt.Sprint(resp <= bound),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"without a protocol, M's 15 ms preempts L while H waits on R: unbounded inversion",
		"PCP bounds blocking via inheritance (priority-change traffic); SRP via the start gate (none)")
	return tbl
}
