package expkit

import (
	"fmt"
	"math/rand"

	"hades/internal/cluster"
	"hades/internal/dispatcher"
	"hades/internal/feasibility"
	"hades/internal/sched"
	"hades/internal/vtime"
)

func init() {
	register("S5", runS5)
	register("X1", runX1)
	register("X6", runX6)
}

// schedCost is the EDF per-notification cost used throughout the
// feasibility experiments (C_sched in §5.3).
const schedCost = 20 * us

// overheads builds the §5.3 Overheads matching SimulateEDFSRP's setup.
func overheads(book dispatcher.CostBook) *feasibility.Overheads {
	return &feasibility.Overheads{Book: book, SchedCost: schedCost}
}

// SimulateEDFSRP runs a task set on one node under EDF+SRP with the
// given cost book, worst-case synchronous sporadic arrivals, for the
// given horizon. It returns the dispatcher report. This is the
// execution side of experiment E-S5: the simulator charges exactly the
// costs the §5.3 test accounts.
func SimulateEDFSRP(tasks []feasibility.Task, book dispatcher.CostBook, horizon vtime.Duration, seed int64) cluster.Result {
	sys := cluster.New(cluster.Config{Seed: seed, Costs: book, LogLimit: 1})
	sys.AddNode("")
	app := sys.NewApp("w", sched.NewEDF(schedCost), sched.NewSRP())
	for _, ft := range tasks {
		if err := app.AddSpuri(feasibility.ToSpuri(ft, tasks, 0)); err != nil {
			panic(err)
		}
	}
	app.Seal()
	for _, ft := range tasks {
		if err := sys.StartSporadicWorstCase(ft.Name); err != nil {
			panic(err)
		}
	}
	return sys.Run(horizon)
}

// runS5 reproduces §5.3: the cost-integrated EDF+SRP feasibility test
// versus the naive (cost-free) test, validated by simulation with the
// full cost book. The safety claim: sets admitted by the integrated
// test never miss a deadline when middleware costs apply; sets admitted
// only by the naive test can and do miss.
func runS5(opts Options) Table {
	book := dispatcher.DefaultCostBook()
	ov := overheads(book)
	sets := 40
	horizon := 500 * ms
	if opts.Quick {
		sets = 8
		horizon = 250 * ms
	}
	tbl := Table{
		ID:    "S5",
		Title: "§5.3 — naive vs cost-integrated EDF+SRP feasibility, validated by simulation",
		Columns: []string{"U", "admit naive", "admit integrated", "naive-only sets",
			"miss(naive-only)", "miss(integrated)"},
	}
	totalNaiveOnlyMiss, totalNaiveOnly := 0, 0
	totalIntegratedMiss := 0
	for _, u := range []float64{0.55, 0.65, 0.75, 0.85, 0.90, 0.93, 0.96} {
		rng := rand.New(rand.NewSource(opts.Seed + int64(u*1000)))
		admitN, admitI, naiveOnly, naiveOnlyMiss, integMiss := 0, 0, 0, 0, 0
		for s := 0; s < sets; s++ {
			tasks := feasibility.Generate(rng, feasibility.DefaultGenConfig(5, u))
			vn := feasibility.EDFSpuri(tasks, nil)
			vi := feasibility.EDFSpuri(tasks, ov)
			if vn.Feasible {
				admitN++
			}
			if vi.Feasible {
				admitI++
				rep := SimulateEDFSRP(tasks, book, horizon, opts.Seed+int64(s))
				if rep.Stats.DeadlineMisses > 0 {
					integMiss++
				}
			}
			if vn.Feasible && !vi.Feasible {
				naiveOnly++
				rep := SimulateEDFSRP(tasks, book, horizon, opts.Seed+int64(s))
				if rep.Stats.DeadlineMisses > 0 {
					naiveOnlyMiss++
				}
			}
		}
		totalNaiveOnly += naiveOnly
		totalNaiveOnlyMiss += naiveOnlyMiss
		totalIntegratedMiss += integMiss
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.2f", u),
			pct(admitN, sets), pct(admitI, sets),
			fmt.Sprint(naiveOnly),
			fmt.Sprint(naiveOnlyMiss),
			fmt.Sprint(integMiss),
		})
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("sets admitted by the integrated test that missed in costed simulation: %d (must be 0 — the §2.2.2 safety claim)", totalIntegratedMiss),
		fmt.Sprintf("sets admitted only by the naive test: %d, of which %d missed deadlines once §4 costs applied", totalNaiveOnly, totalNaiveOnlyMiss),
		"the integrated test trades admission ratio for a guarantee that holds under real middleware costs")
	return tbl
}

// runX1 reproduces the [LL73] motivation for supporting several
// scheduling policies: schedulability ratio of RM (utilisation bound
// and exact response-time analysis) versus EDF (processor demand) over
// random implicit-deadline task sets.
func runX1(opts Options) Table {
	sets := 200
	if opts.Quick {
		sets = 40
	}
	tbl := Table{
		ID:      "X1",
		Title:   "[LL73] — schedulability ratio: RM bound vs RM exact vs EDF, implicit deadlines",
		Columns: []string{"U", "RM (LL bound)", "RM (exact RTA)", "EDF (demand)"},
	}
	for _, u := range []float64{0.60, 0.70, 0.78, 0.83, 0.88, 0.93, 0.98} {
		rng := rand.New(rand.NewSource(opts.Seed + int64(u*1000)))
		okBound, okRTA, okEDF := 0, 0, 0
		for s := 0; s < sets; s++ {
			cfg := feasibility.DefaultGenConfig(6, u)
			cfg.DeadlineFactor = 1.0 // implicit deadlines
			cfg.ResourceProb = 0
			tasks := feasibility.Generate(rng, cfg)
			for i := range tasks {
				tasks[i].D = tasks[i].T
			}
			if feasibility.LiuLayland(tasks).Feasible {
				okBound++
			}
			if _, all := feasibility.ResponseTime(tasks, feasibility.RateMonotonic, nil); all {
				okRTA++
			}
			if feasibility.EDFSpuri(tasks, nil).Feasible {
				okEDF++
			}
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.2f", u), pct(okBound, sets), pct(okRTA, sets), pct(okEDF, sets),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"EDF admits every U <= 1 set (deadline-optimal on one processor); RM drops off after the LL bound",
		"this gap is why HADES treats the scheduling policy as an application-domain choice (§2.2.1)")
	return tbl
}

// runX6 reproduces the §2.2.2 accuracy argument: crude (inflated) cost
// estimates reject task sets that precise costs admit — "forbidding the
// execution of the application in spite of its actual feasibility".
func runX6(opts Options) Table {
	precise := overheads(dispatcher.DefaultCostBook())
	sets := 120
	if opts.Quick {
		sets = 30
	}
	tbl := Table{
		ID:      "X6",
		Title:   "§2.2.2 — pessimism of imprecise cost information (EDF+SRP admission)",
		Columns: []string{"U", "precise", "crude x3", "crude x10", "lost vs precise (x10)"},
	}
	crude3 := &feasibility.Overheads{Book: dispatcher.DefaultCostBook().Scale(3), SchedCost: 3 * schedCost}
	crude10 := &feasibility.Overheads{Book: dispatcher.DefaultCostBook().Scale(10), SchedCost: 10 * schedCost}
	for _, u := range []float64{0.55, 0.65, 0.75, 0.85} {
		rng := rand.New(rand.NewSource(opts.Seed + int64(u*1000)))
		okP, ok3, ok10, lost := 0, 0, 0, 0
		for s := 0; s < sets; s++ {
			tasks := feasibility.Generate(rng, feasibility.DefaultGenConfig(5, u))
			p := feasibility.EDFSpuri(tasks, precise).Feasible
			c3 := feasibility.EDFSpuri(tasks, crude3).Feasible
			c10 := feasibility.EDFSpuri(tasks, crude10).Feasible
			if p {
				okP++
			}
			if c3 {
				ok3++
			}
			if c10 {
				ok10++
			}
			if p && !c10 {
				lost++
			}
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.2f", u), pct(okP, sets), pct(ok3, sets), pct(ok10, sets), pct(lost, sets),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"'lost' sets are feasible under the measured §4 costs but rejected with 10x-inflated estimates",
		"precise per-activity cost identification is what keeps the feasibility test usable (§2.2.2)")
	return tbl
}
