package expkit

import (
	"fmt"

	"hades/internal/clocksync"
	"hades/internal/cluster"
	"hades/internal/consensus"
	"hades/internal/dispatcher"
	"hades/internal/eventq"
	"hades/internal/fault"
	"hades/internal/membership"
	"hades/internal/netsim"
	"hades/internal/rbcast"
	"hades/internal/replication"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

func init() {
	register("X3", runX3)
	register("X4", runX4)
	register("X5", runX5)
	register("X7", runX7)
}

// serviceRig builds an n-node platform for service experiments through
// the cluster layer: full mesh with the testbed delay bounds, a 2 µs
// context switch, an unbounded trace log.
func serviceRig(n int, seed int64) (*simkern.Engine, *netsim.Network, []int) {
	c := cluster.New(cluster.Config{Seed: seed, Costs: dispatcher.CostBook{SwitchCost: 2 * us}, LogLimit: -1})
	nodes := c.AddNodes(n)
	c.ConnectAll(100*us, 300*us)
	return c.Engine(), c.Network(), nodes
}

// runX3 reproduces the [LL88] clock synchronisation experiment:
// measured precision vs the analytic envelope, across group size,
// Byzantine-fault count and drift.
func runX3(opts Options) Table {
	tbl := Table{
		ID:      "X3",
		Title:   "[LL88] — fault-tolerant clock sync: precision vs bound (n >= 3f+1)",
		Columns: []string{"n", "f (byzantine)", "drift", "rounds", "precision", "bound", "holds"},
	}
	horizon := vtime.Duration(3) * vtime.Second
	if opts.Quick {
		horizon = vtime.Duration(1) * vtime.Second
	}
	cases := []struct {
		n, f  int
		drift float64
	}{
		{4, 0, 1e-5}, {4, 1, 1e-5}, {7, 2, 1e-5}, {10, 3, 1e-5},
		{7, 2, 1e-4}, {7, 2, 1e-6},
	}
	for _, c := range cases {
		eng, net, nodes := serviceRig(c.n, opts.Seed)
		cfg := clocksync.DefaultConfig(nodes, c.f)
		cfg.MaxDrift = c.drift
		svc, err := clocksync.New(eng, net, cfg)
		if err != nil {
			panic(err)
		}
		for i := 0; i < c.f; i++ {
			svc.MakeByzantine(nodes[i], clocksync.TwoFacedByzantine(vtime.Duration(10+i)*ms, eng.Rand()))
		}
		svc.Start()
		eng.Run(vtime.Time(horizon))
		p, b := svc.Precision(), svc.Bound()
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(c.n), fmt.Sprint(c.f), fmt.Sprintf("%.0e", c.drift),
			fmt.Sprint(svc.Rounds()), p.String(), b.String(), fmt.Sprint(p <= b),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"precision = max logical-clock skew between correct nodes after convergence",
		"bound = 4*eps + 4*rho*P (fault-tolerant midpoint envelope); Byzantine clocks are two-faced")
	return tbl
}

// runX4 reproduces the time-bounded reliable broadcast experiment:
// delivery latency Delta = (f+1)*R and agreement under f send-omission
// faulty processes.
func runX4(opts Options) Table {
	tbl := Table{
		ID:      "X4",
		Title:   "Rel. Bcast — time-bounded reliable broadcast: latency and agreement vs f",
		Columns: []string{"n", "f", "Delta (bound)", "broadcasts", "agreement", "timeliness"},
	}
	n := 7
	rounds := 20
	if opts.Quick {
		rounds = 5
	}
	for f := 0; f <= 3; f++ {
		eng, net, nodes := serviceRig(n, opts.Seed)
		svc := rbcast.New(eng, net, "x4", rbcast.DefaultConfig(net, nodes, f))
		// f fully send-omission-faulty processes (non-origin).
		faulty := map[int]bool{}
		for i := 0; i < f; i++ {
			faulty[nodes[n-1-i]] = true
		}
		net.SetFault(&fault.OmissionFrom{Nodes: faulty, Port: "rbcast.x4"})
		agreement, timeliness := true, true
		for k := 0; k < rounds; k++ {
			seq, promised := svc.Broadcast(0, k)
			eng.RunUntilIdle()
			delivered := svc.DeliveredAt(0, seq)
			correct := 0
			for _, node := range delivered {
				if !faulty[node] {
					correct++
				}
			}
			if correct != n-f {
				agreement = false
			}
			for _, d := range svc.Deliveries {
				if d.Seq == seq && d.At != promised {
					timeliness = false
				}
			}
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(f), svc.Delta().String(), fmt.Sprint(rounds),
			fmt.Sprint(agreement), fmt.Sprint(timeliness),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"Delta grows linearly in f ((f+1) flooding rounds) — the latency/resilience trade",
		"delivery happens at the promised fixed instant: the bound can enter a feasibility test")
	return tbl
}

// runX5 reproduces the [Pol96] replication-style comparison: failover
// latency, lost work and CPU cost for passive, semi-active and active
// replication under a primary crash.
func runX5(opts Options) Table {
	tbl := Table{
		ID:      "X5",
		Title:   "[Pol96] — replication styles under a primary crash at t=25ms",
		Columns: []string{"style", "failover latency", "lost work", "replies", "replica CPU"},
	}
	for _, style := range []replication.Style{replication.Passive, replication.SemiActive, replication.Active} {
		eng, net, nodes := serviceRig(4, opts.Seed)
		mem, err := membership.New(eng, net, membership.Config{Name: "x5", Nodes: nodes[:3]})
		if err != nil {
			panic(err)
		}
		var replies int
		g, err := replication.NewGroup(eng, net, mem, replication.Config{
			Name:            "svc",
			Replicas:        nodes[:3],
			Style:           style,
			WExec:           200 * us,
			CheckpointEvery: 5,
			StorageLatency:  20 * us,
		}, func(uint64, int64, bool) { replies++ })
		if err != nil {
			panic(err)
		}
		mem.Start()

		// Crash mid-checkpoint-interval so passive replication shows
		// its characteristic lost work (checkpoints land every 5
		// requests ≈ every 5 ms here).
		crashAt := vtime.Time(23*ms + 300*us)
		requests := 60
		if opts.Quick {
			crashAt = vtime.Time(13*ms + 300*us)
			requests = 20
		}
		fault.CrashAt(eng, net, 0, crashAt, 0)
		for i := 0; i < requests; i++ {
			cmd := int64(i + 1)
			eng.At(vtime.Time(vtime.Duration(i)*ms), eventq.ClassApp, func() { g.Submit(3, cmd) })
		}
		eng.Run(vtime.Time(500 * ms))

		var busy vtime.Duration
		for _, p := range eng.Processors()[:3] {
			busy += p.BusyTime()
		}
		latency, lost := "-", "-"
		if len(g.Failovers) > 0 {
			latency = g.Failovers[0].At.Sub(crashAt).String()
			lost = fmt.Sprint(g.LostWork)
		} else if style == replication.Active {
			latency, lost = "0 (masking)", "0"
		}
		tbl.Rows = append(tbl.Rows, []string{
			style.String(), latency, lost, fmt.Sprint(replies), busy.String(),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"passive loses work since the last checkpoint; semi-active loses none; active masks the crash outright",
		"the CPU column shows the price: active≈semi-active burn every replica, passive only the primary")
	return tbl
}

// runX7 reproduces the consensus service experiment: round count and
// decision latency vs the tolerated fault count, with a real crash.
func runX7(opts Options) Table {
	tbl := Table{
		ID:      "X7",
		Title:   "Consensus (FloodSet) — rounds and decision bound vs f, with one crash",
		Columns: []string{"n", "f", "rounds", "bound", "decided", "agreement"},
	}
	n := 5
	for f := 1; f <= 3; f++ {
		eng, net, nodes := serviceRig(n, opts.Seed)
		cfg := consensus.DefaultConfig(net, nodes, f)
		c := consensus.New(eng, net, "x7", cfg, nil)
		fault.CrashAt(eng, net, 0, vtime.Time(30*us), 0)
		props := map[int]int64{}
		for i, node := range nodes {
			props[node] = int64(100 - i)
		}
		c.Propose(props)
		eng.RunUntilIdle()
		ds := c.Decisions()
		agreement := true
		var first int64 = -1
		rounds := 0
		for _, r := range ds {
			if first == -1 {
				first = r.Decision
			} else if r.Decision != first {
				agreement = false
			}
			rounds = r.Rounds
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(f), fmt.Sprint(rounds), c.Bound().String(),
			fmt.Sprintf("%d/%d", len(ds), n-1), fmt.Sprint(agreement),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"f+1 rounds, decision at a fixed bound — time-bounded like every HADES service",
		"node 0 crashes mid-round 1; survivors still agree (FloodSet under crash faults)")
	return tbl
}
