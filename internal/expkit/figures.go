package expkit

import (
	"fmt"
	"strings"

	"hades/internal/cluster"
	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/monitor"
	"hades/internal/sched"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

func init() {
	register("F1", runF1)
	register("F2", runF2)
	register("F3", runF3)
}

// runF1 reproduces Figure 1's layering claim operationally: multiple
// applications with different schedulers (RM, EDF, best-effort) run on
// the same generic dispatcher and COTS substrate, simultaneously, with
// the guaranteed apps meeting every deadline.
func runF1(opts Options) Table {
	sys := newCluster(3, opts.Seed, dispatcher.DefaultCostBook())

	rmApp := sys.NewApp("appli1-RM", sched.NewRM(), sched.NewPCP())
	rmApp.MustAddTask(heug.NewTask("rm.sensor", heug.PeriodicEvery(10*ms)).
		WithDeadline(10*ms).
		Code("read", heug.CodeEU{Node: 0, WCET: 400 * us,
			Resources: []heug.ResourceReq{{Resource: "bus", Mode: heug.Exclusive}}}).
		MustBuild())
	rmApp.MustAddTask(heug.NewTask("rm.control", heug.PeriodicEvery(20*ms)).
		WithDeadline(20*ms).
		Code("law", heug.CodeEU{Node: 0, WCET: 2 * ms,
			Resources: []heug.ResourceReq{{Resource: "bus", Mode: heug.Exclusive}}}).
		MustBuild())
	rmApp.Seal()

	edfApp := sys.NewApp("appli2-EDF", sched.NewEDF(20*us), sched.NewSRP())
	edfApp.MustAddTask(heug.NewTask("edf.acquire", heug.SporadicEvery(15*ms)).
		WithDeadline(12*ms).
		Code("sample", heug.CodeEU{Node: 1, WCET: 1 * ms}).
		Code("ship", heug.CodeEU{Node: 2, WCET: 500 * us}).
		Precede("sample", "ship").
		MustBuild())
	edfApp.MustAddTask(heug.NewTask("edf.actuate", heug.SporadicEvery(30*ms)).
		WithDeadline(25*ms).
		Code("decide", heug.CodeEU{Node: 1, WCET: 3 * ms}).
		MustBuild())
	edfApp.Seal()

	beApp := sys.NewApp("appli3-BE", sched.NewBestEffort(0), nil)
	beApp.MustAddTask(heug.NewTask("be.logger", heug.PeriodicEvery(5*ms)).
		Code("log", heug.CodeEU{Node: 0, WCET: 1 * ms}).
		MustBuild())
	beApp.Seal()

	for _, task := range []string{"rm.sensor", "rm.control", "be.logger"} {
		if err := sys.StartPeriodic(task); err != nil {
			panic(err)
		}
	}
	for _, task := range []string{"edf.acquire", "edf.actuate"} {
		if err := sys.StartSporadicWorstCase(task); err != nil {
			panic(err)
		}
	}
	horizon := vtime.Duration(1) * vtime.Second
	if opts.Quick {
		horizon = 200 * ms
	}
	rep := sys.Run(horizon)

	tbl := Table{
		ID:      "F1",
		Title:   "Figure 1 — three applications, three schedulers, one dispatcher (3 nodes)",
		Columns: []string{"task", "scheduler", "activations", "completions", "misses", "max response"},
	}
	schedOf := map[string]string{
		"rm.sensor": "RM", "rm.control": "RM",
		"edf.acquire": "EDF", "edf.actuate": "EDF",
		"be.logger": "best-effort",
	}
	for _, tr := range rep.Tasks {
		tbl.Rows = append(tbl.Rows, []string{
			tr.Name, schedOf[tr.Name],
			fmt.Sprint(tr.Activations), fmt.Sprint(tr.Completions),
			fmt.Sprint(tr.Misses), tr.MaxResponse.String(),
		})
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("guaranteed apps (RM, EDF) misses: %d — the flexibility claim of §2.2.1", guaranteedMisses(rep)),
		fmt.Sprintf("events processed: %d, violations: %d", sys.Engine().EventsFired(), len(rep.Violations)))
	return tbl
}

func guaranteedMisses(rep cluster.Result) int {
	n := 0
	for _, tr := range rep.Tasks {
		if tr.Name != "be.logger" {
			n += tr.Misses
		}
	}
	return n
}

// Figure2Trace runs the Figure 2 scenario and returns the annotated
// event sequence (also used by the F2 golden test and bench).
func Figure2Trace(seed int64) (cluster.Result, []string) {
	sys := newCluster(1, seed, dispatcher.DefaultCostBook())
	app := sys.NewApp("fig2", sched.NewEDF(20*us), nil)
	t1 := heug.NewTask("t1", heug.AperiodicLaw()).
		WithDeadline(20*ms).
		Code("eu", heug.CodeEU{Node: 0, WCET: 5 * ms}).
		MustBuild()
	t2 := heug.NewTask("t2", heug.AperiodicLaw()).
		WithDeadline(4*ms).
		Code("eu", heug.CodeEU{Node: 0, WCET: 1 * ms}).
		MustBuild()
	app.MustAddTask(t1)
	app.MustAddTask(t2)
	app.Seal()
	sys.ActivateAt("t1", 0)
	sys.ActivateAt("t2", vtime.Time(2*ms))
	rep := sys.Run(30 * ms)

	var lines []string
	for _, e := range sys.Log().Events() {
		switch e.Kind {
		case monitor.KindNotification, monitor.KindSchedulerRun,
			monitor.KindPriorityChange, monitor.KindThreadStart,
			monitor.KindThreadPreempt, monitor.KindThreadResume,
			monitor.KindThreadFinish, monitor.KindTaskComplete:
			if strings.HasPrefix(e.Subject, "t1") || strings.HasPrefix(e.Subject, "t2") ||
				strings.Contains(e.Subject, "EDF") || strings.Contains(e.Detail, "t1") ||
				strings.Contains(e.Detail, "t2") {
				lines = append(lines, e.String())
			}
		}
	}
	return rep, lines
}

// runF2 reproduces Figure 2: the cooperation between the EDF scheduler
// and the dispatcher, as an annotated trace.
func runF2(opts Options) Table {
	rep, lines := Figure2Trace(opts.Seed)
	tbl := Table{
		ID:      "F2",
		Title:   "Figure 2 — EDF scheduler/dispatcher cooperation trace",
		Columns: []string{"trace"},
	}
	for _, l := range lines {
		tbl.Rows = append(tbl.Rows, []string{l})
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("deadline misses: %d (both threads meet their deadlines, as in the figure)", rep.Stats.DeadlineMisses),
		"shape: Atv(t2) -> scheduler preempts -> priority changes -> t2 runs -> Trm(t2) -> t1 resumes")
	return tbl
}

// runF3 reproduces Figure 3: the translation of a Spuri task into the
// HEUG model, dumped structurally.
func runF3(Options) Table {
	st := heug.SpuriTask{
		Name:         "tau_i",
		Node:         0,
		CBefore:      2 * ms,
		CS:           1 * ms,
		CAfter:       1500 * us,
		Resource:     "S",
		Deadline:     20 * ms,
		PseudoPeriod: 25 * ms,
		Blocking:     3 * ms,
	}
	task, err := st.ToHEUG()
	if err != nil {
		panic(err)
	}
	tbl := Table{
		ID:      "F3",
		Title:   "Figure 3 — Spuri task model to HEUG translation",
		Columns: []string{"EU", "WCET", "resources", "latest", "preds"},
	}
	for i, eu := range task.EUs {
		res := "-"
		if len(eu.Code.Resources) > 0 {
			res = eu.Code.Resources[0].Resource + " (" + eu.Code.Resources[0].Mode.String() + ")"
		}
		latest := "-"
		if eu.Code.Latest > 0 {
			latest = eu.Code.Latest.String()
		}
		var preds []string
		for _, p := range task.Preds(i) {
			preds = append(preds, task.EUs[p].Name)
		}
		pstr := strings.Join(preds, ",")
		if pstr == "" {
			pstr = "-"
		}
		tbl.Rows = append(tbl.Rows, []string{eu.Name, eu.Code.WCET.String(), res, latest, pstr})
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("task deadline D=%s, pseudo-period T=%s, arrival law %s", task.Deadline, task.Arrival.Period, task.Arrival.Kind),
		"w1=c_before, w2=cs (holding S), w3=c_after; latest=B'_i on eu1 — matches Figure 3")
	return tbl
}
