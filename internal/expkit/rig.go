package expkit

import (
	"hades/internal/cluster"
	"hades/internal/dispatcher"
)

// newCluster assembles the shared experiment platform: n nodes with
// the given cost book, full-meshed with the cluster's default delay
// bounds when n > 1. Every expkit experiment composes its system
// through the cluster runtime layer.
func newCluster(nodes int, seed int64, costs dispatcher.CostBook) *cluster.Cluster {
	c := cluster.New(cluster.Config{Seed: seed, Costs: costs})
	c.AddNodes(nodes)
	return c
}
