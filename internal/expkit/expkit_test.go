package expkit

import (
	"strconv"
	"strings"
	"testing"
)

// quickOpts runs every experiment at reduced scale; the assertions below
// are about *shape* — who wins, what is bounded, what never happens —
// which must hold at any scale.
var quickOpts = Options{Quick: true, Seed: 1}

func mustRun(t *testing.T, id string) Table {
	t.Helper()
	tbl, err := Run(id, quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return tbl
}

func cell(t *testing.T, tbl Table, row int, col string) string {
	t.Helper()
	for i, c := range tbl.Columns {
		if c == col {
			return tbl.Rows[row][i]
		}
	}
	t.Fatalf("table %s has no column %q", tbl.ID, col)
	return ""
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("not an int: %q", s)
	}
	return n
}

func pctVal(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("not a percentage: %q", s)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"F1", "F2", "F3", "S5", "T1", "T2", "X1", "X2", "X3", "X4", "X5", "X6", "X7"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("experiments registered: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("experiments registered: %v, want %v", got, want)
		}
	}
	if _, err := Run("nope", quickOpts); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestF1GuaranteedAppsMeetDeadlines(t *testing.T) {
	tbl := mustRun(t, "F1")
	for i := range tbl.Rows {
		name := cell(t, tbl, i, "task")
		misses := atoi(t, cell(t, tbl, i, "misses"))
		completions := atoi(t, cell(t, tbl, i, "completions"))
		if completions == 0 {
			t.Errorf("%s never completed", name)
		}
		if !strings.HasPrefix(name, "be.") && misses != 0 {
			t.Errorf("guaranteed task %s missed %d deadlines", name, misses)
		}
	}
}

func TestF2TraceShape(t *testing.T) {
	rep, lines := Figure2Trace(1)
	if rep.Stats.DeadlineMisses != 0 {
		t.Fatalf("misses %d", rep.Stats.DeadlineMisses)
	}
	trace := strings.Join(lines, "\n")
	order := []string{
		"Atv (t1#1.eu)", "Start              t1#1.eu",
		"Atv (t2#1.eu)", "SetPrio            t2#1.eu",
		"Start              t2#1.eu", "Trm                t2#1.eu",
		"Resume             t1#1.eu", "Trm                t1#1.eu",
	}
	rest := trace
	for _, p := range order {
		i := strings.Index(rest, p)
		if i < 0 {
			t.Fatalf("Figure 2 trace missing %q in order.\n%s", p, trace)
		}
		rest = rest[i+len(p):]
	}
}

func TestF3TranslationShape(t *testing.T) {
	tbl := mustRun(t, "F3")
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows %d, want 3 EUs", len(tbl.Rows))
	}
	if !strings.Contains(cell(t, tbl, 1, "resources"), "S") {
		t.Fatal("eu2 must hold S")
	}
	if cell(t, tbl, 0, "latest") == "-" {
		t.Fatal("eu1 must carry latest=B'_i")
	}
}

func TestT1MeasuredEqualsConfigured(t *testing.T) {
	tbl := mustRun(t, "T1")
	for i := range tbl.Rows {
		cfg := cell(t, tbl, i, "configured")
		got := cell(t, tbl, i, "measured")
		if cfg != got {
			t.Errorf("%s: measured %s != configured %s", cell(t, tbl, i, "constant"), got, cfg)
		}
	}
}

func TestT2KernelActivities(t *testing.T) {
	tbl := mustRun(t, "T2")
	if n := atoi(t, cell(t, tbl, 0, "count")); n < 100 {
		t.Errorf("clock ticks %d, want >= 100 over 200ms at 1ms period... (row order)", n)
	}
	if n := atoi(t, cell(t, tbl, 1, "count")); n == 0 {
		t.Error("no ATM interrupts under message load")
	}
	if g := cell(t, tbl, 0, "pseudo-period (min gap)"); g != "1ms" {
		t.Errorf("clock pseudo-period %s, want 1ms", g)
	}
}

func TestS5SafetyClaim(t *testing.T) {
	tbl := mustRun(t, "S5")
	sawNaiveOnlyMiss := false
	for i := range tbl.Rows {
		if atoi(t, cell(t, tbl, i, "miss(integrated)")) != 0 {
			t.Fatalf("U=%s: integrated-admitted set missed a deadline — safety claim broken",
				cell(t, tbl, i, "U"))
		}
		an := pctVal(t, cell(t, tbl, i, "admit naive"))
		ai := pctVal(t, cell(t, tbl, i, "admit integrated"))
		if ai > an {
			t.Fatalf("U=%s: integrated admitted more than naive", cell(t, tbl, i, "U"))
		}
		if atoi(t, cell(t, tbl, i, "miss(naive-only)")) > 0 {
			sawNaiveOnlyMiss = true
		}
	}
	if !sawNaiveOnlyMiss {
		t.Fatal("no naive-only set missed: the experiment shows no separation")
	}
}

func TestX1EDFDominatesRM(t *testing.T) {
	tbl := mustRun(t, "X1")
	for i := range tbl.Rows {
		bound := pctVal(t, cell(t, tbl, i, "RM (LL bound)"))
		rta := pctVal(t, cell(t, tbl, i, "RM (exact RTA)"))
		edf := pctVal(t, cell(t, tbl, i, "EDF (demand)"))
		if edf != 100 {
			t.Errorf("U=%s: EDF %v%% < 100%% on U<=1 implicit-deadline sets", cell(t, tbl, i, "U"), edf)
		}
		if rta < bound {
			t.Errorf("U=%s: exact RTA below the sufficient bound", cell(t, tbl, i, "U"))
		}
		if edf < rta {
			t.Errorf("U=%s: EDF below RM", cell(t, tbl, i, "U"))
		}
	}
	// RM must actually drop somewhere (the motivation).
	last := tbl.Rows[len(tbl.Rows)-1]
	if pctVal(t, last[2]) >= 99 {
		t.Error("RM never dropped below 99%: no separation shown")
	}
}

func TestX2ProtocolsBoundInversion(t *testing.T) {
	tbl := mustRun(t, "X2")
	byPolicy := map[string][]string{}
	for i := range tbl.Rows {
		byPolicy[cell(t, tbl, i, "policy")] = tbl.Rows[i]
	}
	if byPolicy["none"][4] != "false" {
		t.Error("no-protocol run unexpectedly bounded")
	}
	for _, p := range []string{"PCP", "SRP"} {
		if byPolicy[p][4] != "true" {
			t.Errorf("%s failed to bound inversion", p)
		}
	}
	if atoi(t, byPolicy["SRP"][3]) != 0 {
		t.Error("SRP changed priorities")
	}
	if atoi(t, byPolicy["PCP"][3]) == 0 {
		t.Error("PCP never inherited")
	}
}

func TestX3PrecisionBoundHolds(t *testing.T) {
	tbl := mustRun(t, "X3")
	for i := range tbl.Rows {
		if cell(t, tbl, i, "holds") != "true" {
			t.Errorf("row %d: precision bound violated", i)
		}
	}
}

func TestX4BroadcastProperties(t *testing.T) {
	tbl := mustRun(t, "X4")
	var prev float64 = -1
	for i := range tbl.Rows {
		if cell(t, tbl, i, "agreement") != "true" || cell(t, tbl, i, "timeliness") != "true" {
			t.Errorf("f=%s: property violated", cell(t, tbl, i, "f"))
		}
		_ = prev
	}
}

func TestX5ReplicationShape(t *testing.T) {
	tbl := mustRun(t, "X5")
	byStyle := map[string][]string{}
	for i := range tbl.Rows {
		byStyle[cell(t, tbl, i, "style")] = tbl.Rows[i]
	}
	if byStyle["passive"][2] == "0" {
		t.Error("passive failover lost no work despite mid-interval crash")
	}
	if byStyle["semi-active"][2] != "0" {
		t.Error("semi-active lost work")
	}
	if !strings.Contains(byStyle["active"][1], "masking") {
		t.Error("active replication failed over")
	}
}

func TestX6CrudeRejectsFeasibleSets(t *testing.T) {
	tbl := mustRun(t, "X6")
	anyLost := false
	for i := range tbl.Rows {
		p := pctVal(t, cell(t, tbl, i, "precise"))
		c := pctVal(t, cell(t, tbl, i, "crude x10"))
		if c > p {
			t.Errorf("U=%s: crude admitted more than precise", cell(t, tbl, i, "U"))
		}
		if pctVal(t, cell(t, tbl, i, "lost vs precise (x10)")) > 0 {
			anyLost = true
		}
	}
	if !anyLost {
		t.Error("crude estimates never rejected a feasible set: no pessimism shown")
	}
}

func TestX7ConsensusRounds(t *testing.T) {
	tbl := mustRun(t, "X7")
	for i := range tbl.Rows {
		f := atoi(t, cell(t, tbl, i, "f"))
		rounds := atoi(t, cell(t, tbl, i, "rounds"))
		if rounds != f+1 {
			t.Errorf("f=%d: rounds %d, want f+1", f, rounds)
		}
		if cell(t, tbl, i, "agreement") != "true" {
			t.Errorf("f=%d: disagreement", f)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		ID: "T", Title: "demo",
		Columns: []string{"a", "longcolumn"},
		Rows:    [][]string{{"x", "y"}},
		Notes:   []string{"n1"},
	}
	s := tbl.String()
	for _, want := range []string{"== T: demo ==", "longcolumn", "note: n1"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestRunAll(t *testing.T) {
	tables := RunAll(quickOpts)
	if len(tables) != len(IDs()) {
		t.Fatalf("RunAll returned %d tables", len(tables))
	}
}
