package dispatcher_test

import (
	"testing"

	"hades/internal/cluster"
	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/sched"
	"hades/internal/vtime"
)

// TestDistributedDiamond runs a fork-join HEUG across three nodes: the
// source fans out to two branches on different processors, which join
// on a third — exercising concurrent remote precedence crossings and
// the fan-in predecessor count.
func TestDistributedDiamond(t *testing.T) {
	var joined []int64
	task := heug.NewTask("diamond", heug.AperiodicLaw()).
		WithDeadline(100*ms).
		Code("src", heug.CodeEU{Node: 0, WCET: 100 * us, Action: func(ctx heug.ActionContext) {
			ctx.Out("l", int64(1))
			ctx.Out("r", int64(2))
		}}).
		Code("left", heug.CodeEU{Node: 1, WCET: 300 * us, Action: func(ctx heug.ActionContext) {
			v, _ := ctx.In("l")
			ctx.Out("lv", v)
		}}).
		Code("right", heug.CodeEU{Node: 2, WCET: 500 * us, Action: func(ctx heug.ActionContext) {
			v, _ := ctx.In("r")
			ctx.Out("rv", v)
		}}).
		Code("join", heug.CodeEU{Node: 0, WCET: 100 * us, Action: func(ctx heug.ActionContext) {
			l, _ := ctx.In("lv")
			r, _ := ctx.In("rv")
			joined = append(joined, l.(int64)+r.(int64))
		}}).
		Precede("src", "left", "l").
		Precede("src", "right", "r").
		Precede("left", "join", "lv").
		Precede("right", "join", "rv").
		MustBuild()

	sys := cluster.New(cluster.Config{Seed: 21, Costs: dispatcher.DefaultCostBook()})
	sys.AddNodes(3)
	app := sys.NewApp("app", sched.NewEDF(15*us), nil)
	app.MustAddTask(task)
	sys.ActivateAt("diamond", 0)
	rep := sys.Run(200 * ms)
	if rep.Stats.Completions != 1 {
		t.Fatalf("completions %d", rep.Stats.Completions)
	}
	if len(joined) != 1 || joined[0] != 3 {
		t.Fatalf("join results %v, want [3]", joined)
	}
	// 4 remote crossings: src→left, src→right, left→join, right→join.
	if got := sys.Network().Stats().Delivered; got != 4 {
		t.Fatalf("remote messages %d, want 4", got)
	}
	if rep.Stats.NetworkOmissions != 0 {
		t.Fatalf("spurious omission detections: %d", rep.Stats.NetworkOmissions)
	}
}

// TestOverlappingInstances: a sporadic task with D > T legitimately has
// several instances in flight; the dispatcher must keep their threads,
// parameters and deadlines apart.
func TestOverlappingInstances(t *testing.T) {
	var got []uint64
	task := heug.NewTask("overlap", heug.SporadicEvery(2*ms)).
		WithDeadline(9*ms). // D > T: up to 5 live instances
		Code("a", heug.CodeEU{Node: 0, WCET: 500 * us, Action: func(ctx heug.ActionContext) {
			ctx.Out("k", ctx.Instance())
		}}).
		Code("b", heug.CodeEU{Node: 0, WCET: 500 * us, Action: func(ctx heug.ActionContext) {
			v, _ := ctx.In("k")
			got = append(got, v.(uint64))
		}}).
		Precede("a", "b", "k").
		MustBuild()
	sys := cluster.New(cluster.Config{Seed: 21})
	sys.AddNode("")
	app := sys.NewApp("app", sched.NewEDF(10*us), nil)
	if err := app.Spawn(task); err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(40 * ms)
	if rep.Stats.DeadlineMisses != 0 {
		t.Fatalf("misses %d (U=0.5, must fit)", rep.Stats.DeadlineMisses)
	}
	if len(got) < 15 {
		t.Fatalf("only %d instances completed", len(got))
	}
	// Parameters never crossed between overlapping instances: instance
	// k's b-unit saw exactly k.
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("instance %d saw parameter %d — cross-instance leak", i+1, v)
		}
	}
}

// TestActualWorkVariability: instances with data-dependent execution
// times below WCET complete early and the dispatcher records the early
// terminations (§3.2.1's event for reclaiming released resources).
func TestActualWorkVariability(t *testing.T) {
	task := heug.NewTask("vary", heug.SporadicEvery(5*ms)).
		WithDeadline(5*ms).
		Code("a", heug.CodeEU{Node: 0, WCET: 2 * ms,
			ActualWork: func(k uint64) vtime.Duration {
				if k%2 == 0 {
					return 500 * us // even instances finish early
				}
				return 2 * ms
			}}).
		MustBuild()
	sys := cluster.New(cluster.Config{Seed: 21})
	sys.AddNode("")
	app := sys.NewApp("app", sched.NewRM(), nil)
	if err := app.Spawn(task); err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(41 * ms)
	if rep.Stats.EarlyTerminations == 0 {
		t.Fatal("no early terminations recorded")
	}
	// Roughly half the instances are early.
	if rep.Stats.EarlyTerminations < rep.Stats.Completions/3 {
		t.Fatalf("early %d of %d completions", rep.Stats.EarlyTerminations, rep.Stats.Completions)
	}
}
