package dispatcher

import (
	"fmt"

	"hades/internal/eventq"
	"hades/internal/monitor"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// Instance is one activation of a task: the unit the dispatcher tracks
// for deadlines, completion and orphan handling.
type Instance struct {
	TR  *TaskRuntime
	Seq uint64

	ActivatedAt vtime.Time
	AbsDeadline vtime.Time // Infinity when the task has no deadline
	CompletedAt vtime.Time

	Threads []*Thread // parallel to TR.Task.EUs

	remaining  int
	completed  bool
	missed     bool
	cancelled  bool
	deadlineEv *eventq.Event
	onComplete []func(*Instance)
	inputs     map[string]any // parameters handed by an invoking Inv_EU
}

// Name returns "task#seq".
func (in *Instance) Name() string { return fmt.Sprintf("%s#%d", in.TR.Task.Name, in.Seq) }

// Completed reports whether every unit of the instance has finished (or
// the instance was cancelled).
func (in *Instance) Completed() bool { return in.completed }

// Missed reports whether the instance missed its deadline.
func (in *Instance) Missed() bool { return in.missed }

// Cancelled reports whether the instance was aborted.
func (in *Instance) Cancelled() bool { return in.cancelled }

// ResponseTime returns CompletedAt - ActivatedAt for completed instances.
func (in *Instance) ResponseTime() vtime.Duration {
	return in.CompletedAt.Sub(in.ActivatedAt)
}

// OnComplete registers a callback fired when the instance completes
// (successfully or cancelled). Fired immediately if already complete.
func (in *Instance) OnComplete(f func(*Instance)) {
	if in.completed {
		f(in)
		return
	}
	in.onComplete = append(in.onComplete, f)
}

// buildInstance creates the instance, its threads, the deadline and
// latest-start monitors, charges C_start_inv, and releases the root
// units. Notifications (Atv) are enqueued before any unit can run so
// that a dynamic scheduler processes the activation first — its thread
// outranks every application thread, reproducing Figure 2's ordering.
func (d *Dispatcher) buildInstance(tr *TaskRuntime) *Instance {
	now := d.eng.Now()
	tr.seq++
	tr.Activations++
	d.stats.Activations++
	task := tr.Task

	inst := &Instance{
		TR:          tr,
		Seq:         tr.seq,
		ActivatedAt: now,
		AbsDeadline: vtime.Infinity,
		remaining:   len(task.EUs),
	}
	if task.Deadline > 0 {
		inst.AbsDeadline = now.Add(task.Deadline)
	}
	d.live[instKey{task.Name, inst.Seq}] = inst
	d.record(monitor.KindActivation, tr.primaryNode(), inst.Name(), fmt.Sprintf("D=%s", task.Deadline))

	inst.Threads = make([]*Thread, len(task.EUs))
	for i, eu := range task.EUs {
		inst.Threads[i] = d.newThread(inst, i, eu)
	}

	if inst.AbsDeadline != vtime.Infinity {
		inst.deadlineEv = d.eng.At(inst.AbsDeadline, eventq.ClassDispatch, func() {
			inst.deadlineEv = nil
			d.deadlinePassed(inst)
		})
	}
	for _, th := range inst.Threads {
		if th.latest != vtime.Infinity {
			t := th
			t.latestEv = d.eng.At(t.latest, eventq.ClassDispatch, func() {
				t.latestEv = nil
				if !t.started() && t.state != threadDone && t.state != threadOrphaned {
					d.stats.LatestMisses++
					d.record(monitor.KindLatestStartMiss, t.Node(), t.Name(), fmt.Sprintf("latest=%s", t.latest))
				}
			})
		}
	}

	start := func() {
		// Atv notifications first (Figure 2 ordering), then release.
		for _, th := range inst.Threads {
			if th.eu.IsCode() {
				inst.TR.App.notify(NotifAtv, th, "")
			}
		}
		for _, th := range inst.Threads {
			d.evaluate(th)
		}
	}
	if d.costs.StartInv > 0 {
		d.kernelWork(tr.primaryNode(), inst.Name()+".startinv", d.costs.StartInv, start)
	} else {
		start()
	}
	return inst
}

// kernelWork runs a dispatcher activity of the given cost on a node at
// scheduler priority (non-preemptible by applications), then fires done.
func (d *Dispatcher) kernelWork(node int, name string, cost vtime.Duration, done func()) {
	ns := d.node(node)
	k := ns.proc.NewThread(name, PrioScheduler)
	k.AddSegment(simkern.Segment{Name: "dispatch", Work: cost, PT: simkern.PrioMax})
	k.OnComplete = done
	k.Ready()
}

// deadlinePassed fires at an instance's absolute deadline.
func (d *Dispatcher) deadlinePassed(inst *Instance) {
	if inst.completed || inst.missed {
		return
	}
	inst.missed = true
	inst.TR.Misses++
	d.stats.DeadlineMisses++
	d.record(monitor.KindDeadlineMiss, inst.TR.primaryNode(), inst.Name(),
		fmt.Sprintf("deadline=%s", inst.AbsDeadline))
	if d.CancelOnMiss {
		d.cancelInstance(inst, "deadline miss")
	}
}

// cancelInstance aborts the instance: every unfinished thread becomes an
// orphan (§3.2.1's orphan-thread event), its resources are reclaimed and
// sync invokers are resumed. This is the low-level fault-tolerance hook
// the paper attributes to the dispatcher ("switching of modes of
// operation in case of failure").
func (d *Dispatcher) cancelInstance(inst *Instance, reason string) {
	if inst.completed || inst.cancelled {
		return
	}
	inst.cancelled = true
	for _, th := range inst.Threads {
		if th.state == threadDone {
			continue
		}
		th.state = threadOrphaned
		d.stats.Orphans++
		d.record(monitor.KindOrphanThread, th.Node(), th.Name(), reason)
		if th.kthread != nil && !th.kthread.Finished() {
			th.kthread.Suspend()
		}
		d.releaseResources(th)
		if th.latestEv != nil {
			d.eng.Cancel(th.latestEv)
			th.latestEv = nil
		}
		if th.earliestEv != nil {
			d.eng.Cancel(th.earliestEv)
			th.earliestEv = nil
		}
	}
	d.finalizeInstance(inst)
}

// CancelLive aborts every live instance of the named task, orphaning
// their threads (used by operational mode switches, §3.2.1). It returns
// the number of instances aborted.
func (d *Dispatcher) CancelLive(taskName string, reason string) int {
	var doomed []*Instance
	for k, inst := range d.live {
		if k.task == taskName {
			doomed = append(doomed, inst)
		}
	}
	// Deterministic order despite map iteration.
	for i := 1; i < len(doomed); i++ {
		for j := i; j > 0 && doomed[j].Seq < doomed[j-1].Seq; j-- {
			doomed[j], doomed[j-1] = doomed[j-1], doomed[j]
		}
	}
	for _, inst := range doomed {
		d.cancelInstance(inst, reason)
	}
	return len(doomed)
}

// threadFinished is common bookkeeping after any thread completes.
func (d *Dispatcher) threadFinished(th *Thread) {
	inst := th.inst
	inst.remaining--
	if inst.remaining == 0 && !inst.completed && !inst.cancelled {
		if d.costs.EndInv > 0 {
			d.kernelWork(inst.TR.primaryNode(), inst.Name()+".endinv", d.costs.EndInv, func() {
				d.finalizeInstance(inst)
			})
		} else {
			d.finalizeInstance(inst)
		}
	}
}

// finalizeInstance closes the books on an instance.
func (d *Dispatcher) finalizeInstance(inst *Instance) {
	if inst.completed {
		return
	}
	inst.completed = true
	inst.CompletedAt = d.eng.Now()
	if inst.deadlineEv != nil {
		d.eng.Cancel(inst.deadlineEv)
		inst.deadlineEv = nil
	}
	delete(d.live, instKey{inst.TR.Task.Name, inst.Seq})
	if !inst.cancelled {
		tr := inst.TR
		tr.Completions++
		d.stats.Completions++
		resp := inst.ResponseTime()
		tr.sumResponse += resp
		if resp > tr.MaxResponse {
			tr.MaxResponse = resp
		}
		// A completion after the deadline that the deadline timer
		// already flagged is not double-counted.
		d.record(monitor.KindTaskComplete, tr.primaryNode(), inst.Name(), fmt.Sprintf("resp=%s", resp))
	}
	cbs := inst.onComplete
	inst.onComplete = nil
	for _, f := range cbs {
		f(inst)
	}
}
