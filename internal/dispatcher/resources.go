package dispatcher

import (
	"fmt"
	"sort"
	"strings"

	"hades/internal/heug"
	"hades/internal/monitor"
)

// resource is a processor-local resource (§3.1.1): any hardware or
// software component an action needs, with shared/exclusive access
// modes. State attached to it is readable and writable by actions that
// hold it.
type resource struct {
	name  string
	holds []hold
	state any
}

type hold struct {
	th   *Thread
	mode heug.AccessMode
}

func (r *resource) compatible(mode heug.AccessMode) bool {
	if len(r.holds) == 0 {
		return true
	}
	if mode == heug.Exclusive {
		return false
	}
	for _, h := range r.holds {
		if h.mode == heug.Exclusive {
			return false
		}
	}
	return true
}

func (d *Dispatcher) resourceOn(node int, name string) *resource {
	ns := d.node(node)
	r := ns.resources[name]
	if r == nil {
		r = &resource{name: name}
		ns.resources[name] = r
	}
	return r
}

// tryGrant atomically grants all of th's resources if every one is
// mode-compatible and the application's resource policy allows the
// thread to start. All-or-nothing acquisition before the unit starts is
// what makes worst-case blocking analysable (§3.3).
func (d *Dispatcher) tryGrant(th *Thread) bool {
	reqs := th.eu.Code.Resources
	for _, req := range reqs {
		if !d.resourceOn(th.Node(), req.Resource).compatible(req.Mode) {
			return false
		}
	}
	if !th.inst.TR.App.policy.CanStart(th) {
		return false
	}
	for _, req := range reqs {
		r := d.resourceOn(th.Node(), req.Resource)
		r.holds = append(r.holds, hold{th: th, mode: req.Mode})
		th.held = append(th.held, req.Resource)
		d.record(monitor.KindResourceGrant, th.Node(), req.Resource, th.Name()+" "+req.Mode.String())
	}
	th.inst.TR.App.policy.OnGrant(th)
	d.removeWaiter(th)
	return true
}

// releaseResources releases everything th holds, notifies Rre, and
// re-evaluates blocked threads in deterministic priority order.
func (d *Dispatcher) releaseResources(th *Thread) {
	if len(th.held) == 0 {
		d.removeWaiter(th)
		return
	}
	ns := d.node(th.Node())
	for _, name := range th.held {
		r := ns.resources[name]
		if r == nil {
			continue
		}
		for i, h := range r.holds {
			if h.th == th {
				r.holds = append(r.holds[:i], r.holds[i+1:]...)
				break
			}
		}
		d.record(monitor.KindResourceRelease, th.Node(), name, th.Name())
	}
	th.held = nil
	th.inst.TR.App.policy.OnRelease(th)
	th.inst.TR.App.notify(NotifRre, th, "")
	d.wakeWaiters(ns)
}

// wakeWaiters re-evaluates threads blocked on resources of a node, in
// priority order (then global creation order), so the highest-priority
// blocked thread gets the first chance at freed resources.
func (d *Dispatcher) wakeWaiters(ns *nodeState) {
	if len(ns.waiters) == 0 {
		return
	}
	pending := make([]*Thread, 0, len(ns.waiters))
	for _, w := range ns.waiters {
		if w.state == threadWaitResources {
			pending = append(pending, w)
		}
	}
	sort.SliceStable(pending, func(i, j int) bool {
		if pending[i].prio != pending[j].prio {
			return pending[i].prio > pending[j].prio
		}
		return pending[i].seqNo < pending[j].seqNo
	})
	for _, w := range pending {
		if w.state == threadWaitResources {
			d.evaluate(w)
		}
	}
}

// removeWaiter drops th from its node's blocked list.
func (d *Dispatcher) removeWaiter(th *Thread) {
	ns := d.node(th.Node())
	for i, w := range ns.waiters {
		if w == th {
			ns.waiters = append(ns.waiters[:i], ns.waiters[i+1:]...)
			return
		}
	}
}

// conflictingHolders returns the distinct threads holding resources that
// block th, in deterministic order.
func (d *Dispatcher) conflictingHolders(th *Thread) []*Thread {
	seen := map[*Thread]bool{}
	var out []*Thread
	for _, req := range th.eu.Code.Resources {
		r := d.resourceOn(th.Node(), req.Resource)
		if r.compatible(req.Mode) {
			continue
		}
		for _, h := range r.holds {
			if h.th != th && !seen[h.th] {
				seen[h.th] = true
				out = append(out, h.th)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seqNo < out[j].seqNo })
	return out
}

// checkDeadlock searches the wait-for graph for a cycle reachable from
// th (§3.2.1 lists deadlock among the events the dispatcher detects).
// Edges: blocked thread → holders of its conflicting resources; a
// synchronous Inv_EU thread → unfinished threads of the invoked
// instance; a thread → its unfinished precedence predecessors. Cycles
// arise, e.g., when a task holding a resource synchronously invokes a
// task that needs that resource.
func (d *Dispatcher) checkDeadlock(start *Thread) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*Thread]int{}
	var stack []*Thread
	var cycle []*Thread

	var succ func(t *Thread) []*Thread
	succ = func(t *Thread) []*Thread {
		switch t.state {
		case threadWaitResources:
			return d.conflictingHolders(t)
		case threadWaitInstance:
			if t.waitInst == nil {
				return nil
			}
			var out []*Thread
			for _, w := range t.waitInst.Threads {
				if w.state != threadDone && w.state != threadOrphaned {
					out = append(out, w)
				}
			}
			return out
		case threadWaitPreds:
			var out []*Thread
			for _, pi := range t.inst.TR.Task.Preds(t.euIdx) {
				w := t.inst.Threads[pi]
				if w.state != threadDone && w.state != threadOrphaned {
					out = append(out, w)
				}
			}
			return out
		}
		return nil
	}

	var dfs func(t *Thread) bool
	dfs = func(t *Thread) bool {
		color[t] = gray
		stack = append(stack, t)
		for _, n := range succ(t) {
			switch color[n] {
			case white:
				if dfs(n) {
					return true
				}
			case gray:
				// Found a cycle: slice it out of the stack.
				for i, s := range stack {
					if s == n {
						cycle = append(cycle, stack[i:]...)
						break
					}
				}
				return true
			}
		}
		stack = stack[:len(stack)-1]
		color[t] = black
		return false
	}

	if dfs(start) && len(cycle) > 0 {
		names := make([]string, len(cycle))
		for i, t := range cycle {
			names[i] = t.Name()
		}
		d.stats.Deadlocks++
		d.record(monitor.KindDeadlock, start.Node(), start.Name(),
			fmt.Sprintf("cycle: %s", strings.Join(names, " -> ")))
	}
}
