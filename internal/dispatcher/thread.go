package dispatcher

import (
	"fmt"

	"hades/internal/eventq"
	"hades/internal/heug"
	"hades/internal/monitor"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// threadState tracks where a thread is in the §3.2.1 lifecycle.
type threadState uint8

const (
	threadWaitPreds threadState = iota + 1
	threadWaitEarliest
	threadWaitConds
	threadWaitResources
	threadWaitInstance // sync Inv_EU awaiting the invoked instance
	threadReady        // handed to the kernel (runnable or running)
	threadDone
	threadOrphaned
)

func (s threadState) String() string {
	switch s {
	case threadWaitPreds:
		return "wait-preds"
	case threadWaitEarliest:
		return "wait-earliest"
	case threadWaitConds:
		return "wait-conds"
	case threadWaitResources:
		return "wait-resources"
	case threadWaitInstance:
		return "wait-instance"
	case threadReady:
		return "ready"
	case threadDone:
		return "done"
	case threadOrphaned:
		return "orphaned"
	default:
		return "?"
	}
}

// Thread executes one elementary unit of one task instance. Per §3.2.1
// a kernel thread is dedicated to one and only one Code_EU; Inv_EUs get
// a lightweight kernel thread that only carries the C_start_inv /
// C_end_inv dispatching work.
type Thread struct {
	inst  *Instance
	euIdx int
	eu    *heug.EU
	name  string
	seqNo uint64 // global creation order, deterministic tie-break

	prio     int
	earliest vtime.Time // absolute
	latest   vtime.Time // absolute, Infinity when unconstrained
	deadline vtime.Time // absolute unit deadline (monitoring)

	state     threadState
	predsLeft int
	kthread   *simkern.Thread

	inputs, outputs map[string]any

	held     []string // resources currently held (node-local names)
	racSent  bool
	waitInst *Instance // sync Inv_EU target

	actual     vtime.Duration // effective body execution time
	startedAt  vtime.Time
	finishedAt vtime.Time

	earliestEv, latestEv *eventq.Event
}

// Name returns "task#seq.eu".
func (th *Thread) Name() string { return th.name }

// Node returns the processor the thread is bound to.
func (th *Thread) Node() int { return th.eu.NodeOf() }

// Priority returns the thread's current priority.
func (th *Thread) Priority() int { return th.prio }

// Instance returns the owning task instance.
func (th *Thread) Instance() *Instance { return th.inst }

// TaskName returns the owning task's name.
func (th *Thread) TaskName() string { return th.inst.TR.Task.Name }

// EU returns the elementary unit the thread executes.
func (th *Thread) EU() *heug.EU { return th.eu }

// AbsDeadline returns the unit's absolute deadline: the unit-level
// deadline when declared, the task deadline otherwise. Dynamic
// schedulers (EDF) read it to order threads.
func (th *Thread) AbsDeadline() vtime.Time { return th.deadline }

// Earliest returns the thread's absolute earliest start time.
func (th *Thread) Earliest() vtime.Time { return th.earliest }

// Finished reports whether the unit completed.
func (th *Thread) Finished() bool { return th.state == threadDone }

// Started reports whether the thread has ever held the CPU.
func (th *Thread) Started() bool { return th.started() }

// SeqNo returns the thread's global creation sequence number, a
// deterministic tie-break for policies that must order threads.
func (th *Thread) SeqNo() uint64 { return th.seqNo }

// Orphaned reports whether the unit was aborted with its instance
// (§3.2.1's orphan-thread event). Schedulers prune such threads from
// their live sets.
func (th *Thread) Orphaned() bool { return th.state == threadOrphaned }

// Blocked reports whether the thread is waiting for resources or the
// resource policy's start gate.
func (th *Thread) Blocked() bool { return th.state == threadWaitResources }

// HeldResources returns the names of resources the thread holds.
func (th *Thread) HeldResources() []string {
	out := make([]string, len(th.held))
	copy(out, th.held)
	return out
}

func (th *Thread) started() bool {
	return th.startedAt != 0 || (th.kthread != nil && th.kthread.Started())
}

var threadSeq uint64

// newThread builds the runtime thread for EU index i of inst.
func (d *Dispatcher) newThread(inst *Instance, i int, eu *heug.EU) *Thread {
	threadSeq++
	th := &Thread{
		inst:      inst,
		euIdx:     i,
		eu:        eu,
		name:      fmt.Sprintf("%s.%s", inst.Name(), eu.Name),
		seqNo:     threadSeq,
		state:     threadWaitPreds,
		predsLeft: len(inst.TR.Task.Preds(i)),
		earliest:  inst.ActivatedAt,
		latest:    vtime.Infinity,
		deadline:  inst.AbsDeadline,
		inputs:    make(map[string]any),
		outputs:   make(map[string]any),
	}
	if c := eu.Code; c != nil {
		th.prio = c.Prio
		th.actual = c.WCET
		if c.ActualWork != nil {
			if a := c.ActualWork(inst.Seq); a > 0 {
				th.actual = a
			}
		}
		if c.Earliest > 0 {
			th.earliest = inst.ActivatedAt.Add(c.Earliest)
		}
		if c.Latest > 0 {
			th.latest = inst.ActivatedAt.Add(c.Latest)
		}
		if c.Deadline > 0 {
			th.deadline = inst.ActivatedAt.Add(c.Deadline)
		}
	}
	// Inherit parameters handed by an invoking task to root units.
	if len(inst.inputs) > 0 && th.predsLeft == 0 {
		for k, v := range inst.inputs {
			th.inputs[k] = v
		}
	}
	return th
}

// evaluate advances a thread through the four runnable conditions of
// §3.2.1: predecessors finished, earliest start time reached, condition
// variables set, resources grantable. It is idempotent and safe to call
// whenever any of those inputs may have changed.
func (d *Dispatcher) evaluate(th *Thread) {
	switch th.state {
	case threadReady, threadDone, threadOrphaned, threadWaitInstance:
		return
	}
	if th.inst.cancelled {
		return
	}
	if th.predsLeft > 0 {
		th.state = threadWaitPreds
		return
	}
	now := d.eng.Now()
	if now < th.earliest {
		th.state = threadWaitEarliest
		if th.earliestEv == nil {
			th.earliestEv = d.eng.At(th.earliest, eventq.ClassDispatch, func() {
				th.earliestEv = nil
				d.evaluate(th)
			})
		}
		return
	}
	if c := th.eu.Code; c != nil {
		for _, name := range c.WaitConds {
			cv := d.cond(name)
			if !cv.set {
				th.state = threadWaitConds
				cv.waiters = append(cv.waiters, th)
				return
			}
		}
	}
	if th.eu.Inv != nil {
		d.startInv(th)
		return
	}
	if len(th.eu.Code.Resources) > 0 && !th.racSent {
		th.racSent = true
		th.inst.TR.App.notify(NotifRac, th, resourceList(th.eu.Code.Resources))
	}
	if !d.tryGrant(th) {
		if th.state != threadWaitResources {
			th.state = threadWaitResources
			ns := d.node(th.Node())
			ns.waiters = append(ns.waiters, th)
		}
		holders := d.conflictingHolders(th)
		th.inst.TR.App.policy.OnBlocked(th, holders)
		d.checkDeadlock(th)
		return
	}
	d.startCode(th)
}

// startCode hands a Code_EU to the kernel: a thread whose segments
// bookend the action body with the §4.1 start/end dispatching work at
// kernel preemption threshold, plus the out-edge crossing costs
// (C_prec_local per local edge, C_trans_data per remote edge) folded
// into the end segment — exactly where §4.1 charges them.
func (d *Dispatcher) startCode(th *Thread) {
	c := th.eu.Code
	ns := d.node(c.Node)
	endWork := d.costs.EndAction
	task := th.inst.TR.Task
	for ei, e := range task.Edges {
		if e.From != th.euIdx {
			continue
		}
		if task.IsRemote(ei) {
			endWork += d.costs.TransData
		} else {
			endWork += d.costs.PrecLocal
		}
	}
	k := ns.proc.NewThread(th.name, th.prio)
	k.AddSegment(simkern.Segment{Name: "start", Work: d.costs.StartAction, PT: simkern.PrioMax})
	k.AddSegment(simkern.Segment{Name: "body", Work: th.actual, PT: c.PT})
	k.AddSegment(simkern.Segment{Name: "end", Work: endWork, PT: simkern.PrioMax})
	k.OnFirstRun = func() { th.startedAt = d.eng.Now() }
	k.OnComplete = func() { d.finishCode(th) }
	th.kthread = k
	th.state = threadReady
	k.Ready()
}

// finishCode completes a Code_EU: apply the action's effects, release
// resources, cross outgoing precedence constraints, notify Trm, and
// close the instance when this was its last unit.
func (d *Dispatcher) finishCode(th *Thread) {
	if th.state != threadReady {
		return // orphaned while running
	}
	now := d.eng.Now()
	th.state = threadDone
	th.finishedAt = now
	c := th.eu.Code

	if c.ActualWork != nil && th.actual < c.WCET {
		d.stats.EarlyTerminations++
		d.record(monitor.KindEarlyTermination, th.Node(), th.Name(),
			fmt.Sprintf("actual=%s wcet=%s", th.actual, c.WCET))
	}
	if th.latestEv != nil {
		d.eng.Cancel(th.latestEv)
		th.latestEv = nil
	}

	// 1. Action effects, applied atomically at the completion instant.
	if c.Action != nil {
		c.Action(&actionCtx{d: d, th: th})
	}
	// 2. Release resources (Rre) and wake waiters.
	d.releaseResources(th)
	// 3. Cross outgoing precedence constraints.
	d.crossEdges(th)
	// 4. Trm notification.
	th.inst.TR.App.notify(NotifTrm, th, "")
	d.record(monitor.KindThreadFinish, th.Node(), th.Name(), "")
	// 5. Instance bookkeeping.
	d.threadFinished(th)
}

// crossEdges propagates completion along out-edges: local constraints
// transfer parameters and decrement predecessor counts directly; remote
// constraints go through the NetMsg task (netsim).
func (d *Dispatcher) crossEdges(th *Thread) {
	task := th.inst.TR.Task
	for ei, e := range task.Edges {
		if e.From != th.euIdx {
			continue
		}
		if task.IsRemote(ei) {
			d.sendRemote(th, ei)
			continue
		}
		dest := th.inst.Threads[e.To]
		for _, p := range e.Params {
			if v, ok := th.outputs[p]; ok {
				dest.inputs[p] = v
			}
		}
		dest.predsLeft--
		d.evaluate(dest)
	}
}

// startInv runs an Inv_EU: C_start_inv of dispatching work, the target
// activation, then C_end_inv. A synchronous invocation parks between the
// two until the invoked instance completes (§3.1). The invocation thread
// inherits the priority of the action that invoked it — the paper's
// dynamic-priority rule for avoiding priority inversion in services.
func (d *Dispatcher) startInv(th *Thread) {
	inv := th.eu.Inv
	ns := d.node(inv.Node)
	prio := d.invPriority(th)
	th.prio = prio
	k := ns.proc.NewThread(th.name, prio)
	k.AddSegment(simkern.Segment{
		Name: "startinv",
		Work: d.costs.StartInv,
		PT:   simkern.PrioMax,
		OnDone: func() {
			inst, err := d.activateFrom(inv.Target, th.inputs)
			if err != nil {
				d.record(monitor.KindNotification, inv.Node, th.Name(), "invocation failed: "+err.Error())
				return
			}
			if inv.Sync && !inst.Completed() {
				th.waitInst = inst
				th.state = threadWaitInstance
				inst.OnComplete(func(*Instance) {
					if th.state == threadWaitInstance {
						th.state = threadReady
						k.Ready()
					}
				})
				k.Suspend()
			}
		},
	})
	k.AddSegment(simkern.Segment{Name: "endinv", Work: d.costs.EndInv, PT: simkern.PrioMax})
	k.OnComplete = func() { d.finishInv(th) }
	th.kthread = k
	th.state = threadReady
	k.Ready()
}

// invPriority resolves the priority an Inv_EU thread runs at: the
// highest priority among its predecessor units, falling back to the
// task's first Code_EU priority.
func (d *Dispatcher) invPriority(th *Thread) int {
	best := -1
	for _, pi := range th.inst.TR.Task.Preds(th.euIdx) {
		p := th.inst.Threads[pi]
		if p.prio > best {
			best = p.prio
		}
	}
	if best >= 0 {
		return best
	}
	for _, e := range th.inst.TR.Task.EUs {
		if e.Code != nil {
			return e.Code.Prio
		}
	}
	return 0
}

// activateFrom is Activate with parameters handed to the new instance's
// root units, used by Inv_EUs to transfer data into the invoked task.
func (d *Dispatcher) activateFrom(taskName string, params map[string]any) (*Instance, error) {
	inst, err := d.Activate(taskName)
	if err != nil {
		return nil, err
	}
	if len(params) > 0 {
		for _, root := range inst.Threads {
			if root.predsLeft == 0 {
				for k, v := range params {
					if _, exists := root.inputs[k]; !exists {
						root.inputs[k] = v
					}
				}
			}
		}
	}
	return inst, nil
}

// finishInv completes an Inv_EU thread.
func (d *Dispatcher) finishInv(th *Thread) {
	if th.state == threadOrphaned {
		return
	}
	th.state = threadDone
	th.finishedAt = d.eng.Now()
	d.crossEdges(th)
	d.record(monitor.KindThreadFinish, th.Node(), th.Name(), "inv")
	d.threadFinished(th)
}

// SetPriority implements the Primitive interface (§3.2.2).
func (d *Dispatcher) SetPriority(th *Thread, prio int) {
	if prio < simkern.PrioMin {
		prio = simkern.PrioMin
	}
	if prio > PrioAppMax {
		prio = PrioAppMax
	}
	if th.prio == prio {
		return
	}
	th.prio = prio
	if th.kthread != nil && !th.kthread.Finished() {
		th.kthread.SetPriority(prio)
	} else {
		d.record(monitor.KindPriorityChange, th.Node(), th.Name(), fmt.Sprintf("->%d (waiting)", prio))
	}
}

// SetEarliest implements the Primitive interface (§3.2.2). Planning
// schedulers use it to serialise threads according to their plan.
//
// A thread that is already kernel-ready but has not yet received the
// CPU is pulled back and re-released at the new instant — without this,
// a plan slot could be defeated by the race between the activation
// event and the scheduler's notification processing. A thread that
// holds resources is never deferred (parking it would extend blocking
// beyond the analysed bound); one that has already started cannot be.
func (d *Dispatcher) SetEarliest(th *Thread, at vtime.Time) {
	th.earliest = at
	d.record(monitor.KindEarliestChange, th.Node(), th.Name(), at.String())
	if th.earliestEv != nil {
		d.eng.Cancel(th.earliestEv)
		th.earliestEv = nil
	}
	switch th.state {
	case threadWaitEarliest:
		th.state = threadWaitPreds // re-derive through evaluate
		d.evaluate(th)
	case threadReady:
		if th.kthread == nil || th.kthread.Started() || len(th.held) > 0 || at <= d.eng.Now() {
			return
		}
		th.kthread.Suspend()
		th.state = threadWaitEarliest
		th.earliestEv = d.eng.At(at, eventq.ClassDispatch, func() {
			th.earliestEv = nil
			if th.state == threadWaitEarliest && !th.inst.cancelled {
				th.state = threadReady
				th.kthread.Ready()
			}
		})
	}
}

// actionCtx implements heug.ActionContext.
type actionCtx struct {
	d  *Dispatcher
	th *Thread
}

func (a *actionCtx) Now() vtime.Time  { return a.d.eng.Now() }
func (a *actionCtx) Node() int        { return a.th.Node() }
func (a *actionCtx) Instance() uint64 { return a.th.inst.Seq }
func (a *actionCtx) TaskName() string { return a.th.TaskName() }

func (a *actionCtx) In(param string) (any, bool) {
	v, ok := a.th.inputs[param]
	return v, ok
}

func (a *actionCtx) Out(param string, value any) { a.th.outputs[param] = value }

func (a *actionCtx) SetCond(name string)   { a.d.SetCond(name) }
func (a *actionCtx) ClearCond(name string) { a.d.ClearCond(name) }

func (a *actionCtx) ResourceState(name string) any {
	r := a.d.node(a.th.Node()).resources[name]
	if r == nil {
		return nil
	}
	return r.state
}

func (a *actionCtx) SetResourceState(name string, v any) {
	ns := a.d.node(a.th.Node())
	r := ns.resources[name]
	if r == nil {
		r = &resource{name: name}
		ns.resources[name] = r
	}
	r.state = v
}

func resourceList(reqs []heug.ResourceReq) string {
	s := ""
	for i, r := range reqs {
		if i > 0 {
			s += ","
		}
		s += r.Resource
	}
	return s
}
