package dispatcher

import (
	"errors"
	"fmt"

	"hades/internal/eventq"
	"hades/internal/heug"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// Dispatcher is the system-wide generic dispatcher. One instance manages
// every node of a run ("the dispatcher uses a distributed set of
// threads", §3.2.1); determinism comes from the single-threaded engine.
type Dispatcher struct {
	eng   *simkern.Engine
	net   *netsim.Network // nil for single-node systems
	costs CostBook

	apps          []*App
	tasks         map[string]*TaskRuntime
	conds         map[string]*condVar
	nodes         map[int]*nodeState
	live          map[instKey]*Instance
	pendingRemote map[uint64]*eventq.Event // omission monitors by message ID

	// CancelOnMiss aborts an instance's remaining threads when its
	// deadline passes, marking them orphans (§3.2.1 monitoring; the
	// "switching of modes of operation in case of failure" hook).
	CancelOnMiss bool
	// OmissionSlack is added to the worst-case remote-delivery bound
	// before declaring a network omission failure.
	OmissionSlack vtime.Duration

	stats Stats
}

// Stats aggregates dispatcher-level counters for the harness.
type Stats struct {
	Activations       int
	Completions       int
	DeadlineMisses    int
	ArrivalViolations int
	EarlyTerminations int
	Orphans           int
	Deadlocks         int
	NetworkOmissions  int
	LatestMisses      int
	Rejections        int // activations rejected by admission (planning)
}

type instKey struct {
	task string
	seq  uint64
}

// App is one application: a set of tasks under one scheduler and one
// resource policy (the application-domain-dependent choices of §2.2.1).
type App struct {
	Name   string
	sched  Scheduler
	policy ResourcePolicy
	tasks  []*TaskRuntime
	hosts  map[int]*schedHost // per node
	disp   *Dispatcher

	// RejectOnArrivalViolation refuses activations that violate the
	// declared arrival law instead of merely recording the violation.
	RejectOnArrivalViolation bool
}

// TaskRuntime carries the per-task runtime state and statistics.
type TaskRuntime struct {
	Task *heug.Task
	App  *App

	seq         uint64
	lastArrival vtime.Time
	haveArrival bool

	// Admission hook (planning-based scheduling): when non-nil and
	// returning false, an activation is rejected. Set by schedulers
	// that implement a dynamic guarantee test (Spring, §1).
	Admit func(at vtime.Time) bool

	// Statistics.
	Activations int
	Completions int
	Misses      int
	MaxResponse vtime.Duration
	sumResponse vtime.Duration
}

// AvgResponse returns the mean response time over completed instances.
func (tr *TaskRuntime) AvgResponse() vtime.Duration {
	if tr.Completions == 0 {
		return 0
	}
	return tr.sumResponse / vtime.Duration(tr.Completions)
}

type condVar struct {
	set      bool
	waiters  []*Thread
	watchers []func()
}

type nodeState struct {
	proc      *simkern.Processor
	resources map[string]*resource
	// waiters are threads blocked on resource acquisition on this node,
	// re-evaluated at every release in deterministic order.
	waiters []*Thread
}

// New creates a dispatcher over the engine (and network, which may be
// nil) with the given cost book. It installs the §4.2 clock tick on
// every processor already registered with the engine.
func New(eng *simkern.Engine, net *netsim.Network, costs CostBook) *Dispatcher {
	d := &Dispatcher{
		eng:           eng,
		net:           net,
		costs:         costs,
		tasks:         make(map[string]*TaskRuntime),
		conds:         make(map[string]*condVar),
		nodes:         make(map[int]*nodeState),
		live:          make(map[instKey]*Instance),
		pendingRemote: make(map[uint64]*eventq.Event),
		OmissionSlack: 100 * vtime.Microsecond,
	}
	for _, p := range eng.Processors() {
		d.nodes[p.ID()] = &nodeState{proc: p, resources: make(map[string]*resource)}
		if costs.ClockTickPeriod > 0 {
			p.StartClockTick(costs.ClockTickPeriod, costs.ClockTickWCET)
		}
	}
	if net != nil {
		for _, p := range eng.Processors() {
			id := p.ID()
			net.Bind(id, remotePort, func(m *netsim.Message) { d.receiveRemote(m) })
		}
	}
	return d
}

// Engine returns the underlying engine.
func (d *Dispatcher) Engine() *simkern.Engine { return d.eng }

// Costs returns the active cost book.
func (d *Dispatcher) Costs() CostBook { return d.costs }

// Stats returns a snapshot of the dispatcher counters.
func (d *Dispatcher) Stats() Stats { return d.stats }

// Apps returns the registered applications in registration order.
func (d *Dispatcher) Apps() []*App { return d.apps }

// node returns the state for a processor id, creating it lazily for
// processors added after New.
func (d *Dispatcher) node(id int) *nodeState {
	ns := d.nodes[id]
	if ns == nil {
		procs := d.eng.Processors()
		if id < 0 || id >= len(procs) {
			panic(fmt.Sprintf("dispatcher: unknown node %d", id))
		}
		ns = &nodeState{proc: procs[id], resources: make(map[string]*resource)}
		d.nodes[id] = ns
	}
	return ns
}

// RegisterApp creates an application with the given scheduler and
// resource policy. A nil policy means plain locking.
func (d *Dispatcher) RegisterApp(name string, sched Scheduler, policy ResourcePolicy) *App {
	if policy == nil {
		policy = NoPolicy{}
	}
	app := &App{Name: name, sched: sched, policy: policy, hosts: make(map[int]*schedHost), disp: d}
	d.apps = append(d.apps, app)
	return app
}

// Scheduler returns the application's scheduling policy.
func (a *App) Scheduler() Scheduler { return a.sched }

// Policy returns the application's resource policy.
func (a *App) Policy() ResourcePolicy { return a.policy }

// Tasks returns the application's task runtimes in registration order.
func (a *App) Tasks() []*TaskRuntime { return a.tasks }

// AddTask registers a validated HEUG task with the application.
func (a *App) AddTask(t *heug.Task) (*TaskRuntime, error) {
	if !t.Validated() {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	if _, dup := a.disp.tasks[t.Name]; dup {
		return nil, fmt.Errorf("dispatcher: task %q already registered", t.Name)
	}
	for _, e := range t.EUs {
		if e.Code != nil && e.Code.Prio > PrioAppMax {
			return nil, fmt.Errorf("dispatcher: task %q EU %q priority %d above application band %d", t.Name, e.Name, e.Code.Prio, PrioAppMax)
		}
	}
	tr := &TaskRuntime{Task: t, App: a}
	a.tasks = append(a.tasks, tr)
	a.disp.tasks[t.Name] = tr
	return tr, nil
}

// Seal finishes application setup: the scheduler performs its static
// assignment (Init) and the resource policy computes its ceilings. Call
// after all AddTask calls and before the first activation.
func (a *App) Seal() {
	ts := make([]*heug.Task, len(a.tasks))
	for i, tr := range a.tasks {
		ts[i] = tr.Task
	}
	a.sched.Init(ts)
	a.policy.Init(ts, a.disp)
	if adm, ok := a.sched.(Admitter); ok {
		for _, tr := range a.tasks {
			task := tr.Task
			tr.Admit = func(at vtime.Time) bool { return adm.Admit(task, at) }
		}
	}
}

// Task returns the runtime for a registered task name.
func (d *Dispatcher) Task(name string) (*TaskRuntime, bool) {
	tr, ok := d.tasks[name]
	return tr, ok
}

// Errors returned by Activate.
var (
	ErrUnknownTask       = errors.New("dispatcher: unknown task")
	ErrAdmissionRejected = errors.New("dispatcher: activation rejected by admission test")
	ErrArrivalViolation  = errors.New("dispatcher: activation violates arrival law")
)

// Activate requests the activation of a task instance now, as triggered
// by a timer, an interrupt or an Inv_EU (§3.1.2). It performs the
// arrival-law monitoring of §3.2.1 and the admission hook, then builds
// the instance and charges C_start_inv before any unit runs.
func (d *Dispatcher) Activate(taskName string) (*Instance, error) {
	tr, ok := d.tasks[taskName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTask, taskName)
	}
	now := d.eng.Now()

	if viol, detail := tr.checkArrival(now); viol {
		d.stats.ArrivalViolations++
		d.record(monitor.KindArrivalLawViolation, tr.primaryNode(), taskName, detail)
		if tr.App.RejectOnArrivalViolation {
			d.stats.Rejections++
			return nil, fmt.Errorf("%w: task %q: %s", ErrArrivalViolation, taskName, detail)
		}
	}
	tr.lastArrival, tr.haveArrival = now, true

	if tr.Admit != nil && !tr.Admit(now) {
		d.stats.Rejections++
		d.record(monitor.KindNotification, tr.primaryNode(), taskName, "activation rejected by guarantee test")
		return nil, fmt.Errorf("%w: task %q at %s", ErrAdmissionRejected, taskName, now)
	}
	return d.buildInstance(tr), nil
}

// checkArrival implements the arrival-law violation detection.
func (tr *TaskRuntime) checkArrival(now vtime.Time) (bool, string) {
	if !tr.haveArrival {
		return false, ""
	}
	gap := now.Sub(tr.lastArrival)
	switch tr.Task.Arrival.Kind {
	case heug.Periodic:
		if gap != tr.Task.Arrival.Period {
			return true, fmt.Sprintf("gap %s != period %s", gap, tr.Task.Arrival.Period)
		}
	case heug.Sporadic:
		if gap < tr.Task.Arrival.Period {
			return true, fmt.Sprintf("gap %s < pseudo-period %s", gap, tr.Task.Arrival.Period)
		}
	}
	return false, ""
}

// primaryNode returns the node of the task's first EU, used for events
// not tied to a specific thread.
func (tr *TaskRuntime) primaryNode() int { return tr.Task.EUs[0].NodeOf() }

// SetCond sets a system-wide condition variable, re-evaluates every
// thread waiting on it (§3.1.1) and fires registered watchers.
func (d *Dispatcher) SetCond(name string) {
	cv := d.cond(name)
	if cv.set {
		return
	}
	cv.set = true
	d.record(monitor.KindCondSet, -1, name, "")
	waiters := cv.waiters
	cv.waiters = nil
	for _, th := range waiters {
		d.evaluate(th)
	}
	for _, w := range cv.watchers {
		w()
	}
}

// WatchCond registers fn to run every time the named condition variable
// transitions from clear to set. Together with Activate this realises
// the §3.1.2 event-triggered activation ("requests to activate a task
// instance can be triggered by an Inv_EU, the expiration of a timer or
// when an interrupt is triggered") for software-observed events.
func (d *Dispatcher) WatchCond(name string, fn func()) {
	cv := d.cond(name)
	cv.watchers = append(cv.watchers, fn)
}

// ClearCond clears a condition variable.
func (d *Dispatcher) ClearCond(name string) {
	cv := d.cond(name)
	if !cv.set {
		return
	}
	cv.set = false
	d.record(monitor.KindCondClear, -1, name, "")
}

// CondSet reports the current value of a condition variable.
func (d *Dispatcher) CondSet(name string) bool { return d.cond(name).set }

func (d *Dispatcher) cond(name string) *condVar {
	cv := d.conds[name]
	if cv == nil {
		cv = &condVar{}
		d.conds[name] = cv
	}
	return cv
}

func (d *Dispatcher) record(kind monitor.Kind, node int, subject, detail string) {
	log := d.eng.Log()
	if log == nil {
		return
	}
	log.Record(monitor.Event{At: d.eng.Now(), Kind: kind, Node: node, Subject: subject, Detail: detail})
}
