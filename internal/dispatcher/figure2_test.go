package dispatcher_test

import (
	"strings"
	"testing"

	"hades/internal/core"
	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/monitor"
	"hades/internal/sched"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

// TestFigure2EDFCooperation reproduces Figure 2 of the paper: two
// threads t1 and t2 under an EDF scheduler thread t_edf at the highest
// priority.
//
//	t = 0:    t1 activates (deadline far away) and runs.
//	t = 2ms:  t2 activates with a shorter deadline. The dispatcher
//	          inserts Atv(t2) into the shared FIFO; t_edf preempts t1,
//	          processes the notification and — deadline(t2) <
//	          deadline(t1) — raises t2 above t1 via the dispatcher
//	          primitive. t2 preempts t1 and runs to completion.
//	then:     Trm(t2) is enqueued; EDF ignores it (no reordering among
//	          the survivors); t1, now highest, resumes and completes.
func TestFigure2EDFCooperation(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1})
	edf := sched.NewEDF(20 * us)
	app := sys.NewApp("fig2", edf, nil)

	t1 := heug.NewTask("t1", heug.AperiodicLaw()).
		WithDeadline(20*ms).
		Code("eu", heug.CodeEU{Node: 0, WCET: 5 * ms}).
		MustBuild()
	t2 := heug.NewTask("t2", heug.AperiodicLaw()).
		WithDeadline(4*ms).
		Code("eu", heug.CodeEU{Node: 0, WCET: 1 * ms}).
		MustBuild()
	app.MustAddTask(t1)
	app.MustAddTask(t2)
	app.Seal()

	sys.ActivateAt("t1", 0)
	sys.ActivateAt("t2", vtime.Time(2*ms))
	rep := sys.Run(30 * ms)

	if rep.Stats.DeadlineMisses != 0 {
		t.Fatalf("misses: %d", rep.Stats.DeadlineMisses)
	}
	if rep.Stats.Completions != 2 {
		t.Fatalf("completions: %d", rep.Stats.Completions)
	}

	// Verify the cooperation trace shape.
	var seq []string
	for _, e := range sys.Log().Events() {
		switch e.Kind {
		case monitor.KindNotification:
			seq = append(seq, "notif:"+e.Subject+":"+e.Detail)
		case monitor.KindThreadStart, monitor.KindThreadPreempt, monitor.KindThreadResume:
			if strings.HasPrefix(e.Subject, "t1#") || strings.HasPrefix(e.Subject, "t2#") {
				seq = append(seq, e.Kind.String()+":"+e.Subject[:2])
			}
		case monitor.KindThreadFinish:
			if strings.HasPrefix(e.Subject, "t1#") || strings.HasPrefix(e.Subject, "t2#") {
				seq = append(seq, "Trm-evt:"+e.Subject[:2])
			}
		}
	}
	trace := strings.Join(seq, " | ")
	mustContainInOrder(t, trace,
		"notif:Atv:t1#1.eu", // activation notification for t1
		"Start:t1",          // t1 runs
		"notif:Atv:t2#1.eu", // t2 activation hits the FIFO
		"Preempt:t1",        // scheduler (then t2) preempts t1
		"Start:t2",          // t2 has the shorter deadline: runs
		"Trm-evt:t2",        // t2 finishes
		"Resume:t1",         // t1 continues
		"Trm-evt:t1",
	)

	// The scheduler actually ran and changed priorities.
	if n := sys.Log().CountKind(monitor.KindSchedulerRun); n < 3 {
		t.Errorf("scheduler ran %d times, want >= 3 (Atv t1, Atv t2, Trm t2 ...)", n)
	}
	if n := sys.Log().CountKind(monitor.KindPriorityChange); n < 1 {
		t.Errorf("no priority changes recorded")
	}
}

func mustContainInOrder(t *testing.T, trace string, parts ...string) {
	t.Helper()
	rest := trace
	for _, p := range parts {
		i := strings.Index(rest, p)
		if i < 0 {
			t.Fatalf("trace missing %q (in order).\nTrace: %s", p, trace)
		}
		rest = rest[i+len(p):]
	}
}

// TestFigure2WithCosts re-runs the scenario with the full §4 cost book:
// the trace keeps its shape and response times grow by the accounted
// overheads only.
func TestFigure2WithCosts(t *testing.T) {
	run := func(costs dispatcher.CostBook) core.Report {
		sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1, Costs: costs})
		app := sys.NewApp("fig2", sched.NewEDF(20*us), nil)
		t1 := heug.NewTask("t1", heug.AperiodicLaw()).
			WithDeadline(20*ms).
			Code("eu", heug.CodeEU{Node: 0, WCET: 5 * ms}).
			MustBuild()
		t2 := heug.NewTask("t2", heug.AperiodicLaw()).
			WithDeadline(4*ms).
			Code("eu", heug.CodeEU{Node: 0, WCET: 1 * ms}).
			MustBuild()
		app.MustAddTask(t1)
		app.MustAddTask(t2)
		app.Seal()
		sys.ActivateAt("t1", 0)
		sys.ActivateAt("t2", vtime.Time(2*ms))
		return sys.Run(30 * ms)
	}
	free := run(dispatcher.ZeroCostBook())
	costed := run(dispatcher.DefaultCostBook())
	if free.Stats.DeadlineMisses != 0 || costed.Stats.DeadlineMisses != 0 {
		t.Fatal("unexpected misses")
	}
	for i := range costed.Tasks {
		if costed.Tasks[i].MaxResponse <= free.Tasks[i].MaxResponse {
			t.Errorf("task %s: costed response %s not above free response %s",
				costed.Tasks[i].Name, costed.Tasks[i].MaxResponse, free.Tasks[i].MaxResponse)
		}
		// Overheads are bounded: within 1ms of the ideal here.
		if costed.Tasks[i].MaxResponse > free.Tasks[i].MaxResponse+ms {
			t.Errorf("task %s: overhead exploded: %s vs %s",
				costed.Tasks[i].Name, costed.Tasks[i].MaxResponse, free.Tasks[i].MaxResponse)
		}
	}
}
