package dispatcher

import (
	"fmt"

	"hades/internal/monitor"
	"hades/internal/simkern"
)

// schedHost executes one application's scheduler on one node. The paper
// models every scheduler as a task with a statically-defined (highest)
// priority that blocks on a FIFO queue shared with the dispatcher
// (§3.2.2); here each queued notification costs Cost() of CPU at
// PrioScheduler before Handle's decisions apply — the exact shape of
// Figure 2, where the EDF thread t_edf preempts the running thread on
// every Atv/Trm and only then adjusts priorities.
type schedHost struct {
	app   *App
	node  int
	queue []Notification
	busy  bool
	seq   uint64
}

// notify enqueues a notification for the application's scheduler if the
// policy subscribed to its kind, and starts the host if it was idle.
func (a *App) notify(kind NotifKind, th *Thread, res string) {
	if a.sched == nil || !a.sched.Wants(kind) {
		return
	}
	node := th.Node()
	h := a.hosts[node]
	if h == nil {
		h = &schedHost{app: a, node: node}
		a.hosts[node] = h
	}
	n := Notification{Kind: kind, At: a.disp.eng.Now(), Thread: th, Resource: res}
	a.disp.record(monitor.KindNotification, node, kind.String(), th.Name())
	h.queue = append(h.queue, n)
	if !h.busy {
		h.busy = true
		h.processNext()
	}
}

// processNext consumes the queue head: a scheduler thread burns Cost()
// of CPU at PrioScheduler, then Handle applies the policy's decisions
// through the dispatcher primitive.
//
// Handle runs from the *segment* callback, while the scheduler thread
// still holds the CPU: a batch of priority changes then causes exactly
// one dispatch when the scheduler completes (its zero-length drain
// segment), never a cascade of transient context switches — matching
// both real kernels (the highest-priority scheduler shields the CPU
// until it blocks back on the FIFO) and the three-switch-per-
// notification allowance of the §5.3 analysis.
func (h *schedHost) processNext() {
	if len(h.queue) == 0 {
		h.busy = false
		return
	}
	d := h.app.disp
	h.seq++
	name := fmt.Sprintf("sched.%s@n%d#%d", h.app.Name, h.node, h.seq)
	proc := d.node(h.node).proc
	k := proc.NewThread(name, PrioScheduler)
	k.AddSegment(simkern.Segment{
		Name: "notif",
		Work: h.app.sched.Cost(),
		PT:   simkern.PrioMax,
		OnDone: func() {
			n := h.queue[0]
			h.queue = h.queue[1:]
			d.record(monitor.KindSchedulerRun, h.node, h.app.sched.Name(), n.Kind.String()+" "+n.Thread.Name())
			h.app.sched.Handle(n, d)
		},
	})
	k.AddSegment(simkern.Segment{Name: "drain", Work: 0, PT: simkern.PrioMax})
	k.OnComplete = h.processNext
	k.Ready()
}
