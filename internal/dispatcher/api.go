// Package dispatcher implements the generic HADES dispatcher of §3.2.
//
// The dispatcher is the application-domain-independent half of the
// scheduling machinery: it allocates resources (CPU included) to tasks,
// enforces the four runnable conditions of §3.2.1, monitors execution
// (deadlines, arrival laws, early terminations, orphans, deadlocks,
// network omissions) and charges every §4.1 dispatcher activity on the
// simulated CPU timeline. Scheduling *policy* lives outside, behind the
// Scheduler interface: the dispatcher feeds each scheduler a FIFO of
// notifications (Atv, Trm, Rac, Rre) and exposes a single primitive to
// change a thread's priority and/or earliest start time — exactly the
// cooperation protocol of §3.2.2 and Figure 2. Unlike MARS or MAFT,
// where scheduler and dispatcher form one component, the separation
// makes multiple scheduling policies supportable (§2.2.1).
package dispatcher

import (
	"hades/internal/heug"
	"hades/internal/vtime"
)

// Priority bands. Application threads must stay at or below PrioAppMax;
// the band above is reserved for the middleware (schedulers, NetMsg) and
// the kernel, mirroring §3.1.2's reservation of prio_max.
const (
	// PrioAppMax is the highest priority an application Code_EU may use.
	PrioAppMax = 1<<20 - 1000
	// PrioScheduler is the priority of scheduler tasks: above every
	// application thread (Figure 2 runs the EDF scheduler thread at the
	// highest priority), below interrupts.
	PrioScheduler = 1<<20 - 1
)

// NotifKind enumerates the notifications of §3.2.2.
type NotifKind uint8

// Notification kinds.
const (
	// NotifAtv reports a thread activation.
	NotifAtv NotifKind = iota + 1
	// NotifTrm reports a thread termination.
	NotifTrm
	// NotifRac reports a request to access shared resources.
	NotifRac
	// NotifRre reports a release of shared resources.
	NotifRre
)

// String returns the paper's mnemonic for the kind.
func (k NotifKind) String() string {
	switch k {
	case NotifAtv:
		return "Atv"
	case NotifTrm:
		return "Trm"
	case NotifRac:
		return "Rac"
	case NotifRre:
		return "Rre"
	default:
		return "?"
	}
}

// Notification is one entry of the dispatcher→scheduler FIFO queue.
type Notification struct {
	Kind     NotifKind
	At       vtime.Time
	Thread   *Thread
	Resource string // for Rac/Rre
}

// Primitive is the single dispatcher primitive of §3.2.2: it modifies
// the earliest start time of a thread and/or its priority. Schedulers
// receive it with every notification.
type Primitive interface {
	// SetPriority changes th's priority (both while waiting and while
	// ready/running; a change triggers an immediate rescheduling pass).
	SetPriority(th *Thread, prio int)
	// SetEarliest changes th's earliest start time (absolute). Lowering
	// it below now makes the thread immediately eligible.
	SetEarliest(th *Thread, at vtime.Time)
}

// Scheduler is a scheduling policy: the application-domain-dependent
// component of §2.2.1. One Scheduler instance serves one application.
type Scheduler interface {
	// Name identifies the policy ("EDF", "RM", ...).
	Name() string
	// Cost is the WCET for processing one notification (C_sched in
	// §5.3); it is charged on the CPU where the notification occurred.
	Cost() vtime.Duration
	// Wants filters the notification kinds the policy needs; unwanted
	// kinds are not enqueued (and cost nothing).
	Wants(k NotifKind) bool
	// Init is called once at registration with the application's
	// tasks; static policies (RM, DM) assign Code_EU priorities here.
	Init(tasks []*heug.Task)
	// Handle processes one notification, using prim to adjust threads.
	// It runs at the scheduler's completion instant on the simulated
	// timeline (after the Cost() CPU demand has been consumed).
	Handle(n Notification, prim Primitive)
}

// ResourcePolicy is the pluggable resource-access protocol consulted by
// the dispatcher when granting resources, enabling PCP and SRP (§3.3,
// footnote 2). The dispatcher enforces mode compatibility itself; the
// policy adds protocol-specific gating and priority adjustments.
type ResourcePolicy interface {
	// Name identifies the protocol ("SRP", "PCP", "none").
	Name() string
	// Init is called once with the application's tasks so the protocol
	// can compute preemption levels and resource ceilings. prim allows
	// protocols with priority inheritance (PCP) to adjust thread
	// priorities later.
	Init(tasks []*heug.Task, prim Primitive)
	// CanStart reports whether th may begin execution on its node. It
	// is consulted for every Code_EU thread, resource user or not:
	// under SRP the preemption-level vs system-ceiling test gates all
	// job starts, which is what bounds priority inversion to a single
	// critical section. th's resources are all grantable mode-wise
	// when this is called.
	CanStart(th *Thread) bool
	// OnGrant records that th acquired all its resources.
	OnGrant(th *Thread)
	// OnRelease records that th released all its resources.
	OnRelease(th *Thread)
	// OnBlocked informs the protocol that blocked cannot proceed
	// because of the given holders; PCP uses it for priority
	// inheritance (via the primitive handed at construction).
	OnBlocked(blocked *Thread, holders []*Thread)
}

// Admitter is an optional Scheduler extension: policies with a dynamic
// guarantee test (planning-based scheduling, e.g. Spring [RSS90]) admit
// or reject each activation request before the dispatcher builds the
// instance. The dispatcher wires it to every task at Seal.
type Admitter interface {
	Admit(task *heug.Task, at vtime.Time) bool
}

// NoPolicy is the protocol-free resource policy: plain mode-compatible
// locking with no extra gating (subject to priority-inversion anomalies;
// experiment E-X2 demonstrates them).
type NoPolicy struct{}

// Name implements ResourcePolicy.
func (NoPolicy) Name() string { return "none" }

// Init implements ResourcePolicy.
func (NoPolicy) Init([]*heug.Task, Primitive) {}

// CanStart implements ResourcePolicy.
func (NoPolicy) CanStart(*Thread) bool { return true }

// OnGrant implements ResourcePolicy.
func (NoPolicy) OnGrant(*Thread) {}

// OnRelease implements ResourcePolicy.
func (NoPolicy) OnRelease(*Thread) {}

// OnBlocked implements ResourcePolicy.
func (NoPolicy) OnBlocked(*Thread, []*Thread) {}
