package dispatcher

import "hades/internal/vtime"

// CostBook holds the worst-case execution times of every dispatcher
// activity identified in §4.1, plus the kernel parameters of §4.2. The
// same book drives both the simulator (costs are charged on the CPU
// timeline where §4 says they occur) and the feasibility tests of §5.3
// (costs are folded into task WCETs), so admission decisions and observed
// schedules account identical events.
type CostBook struct {
	// PrecLocal is C_prec_local: crossing a local precedence
	// constraint — the cost of data copying plus a context switch.
	PrecLocal vtime.Duration
	// TransData is C_trans_data: handing data to the communication
	// protocol when crossing a remote precedence constraint. It does
	// not include transmission, which belongs to the NetMsg task.
	TransData vtime.Duration
	// StartAction is C_start_action: dispatcher and kernel work to
	// start the execution of an action.
	StartAction vtime.Duration
	// EndAction is C_end_action: dispatcher and kernel work to end the
	// execution of an action (including condition-variable signalling).
	EndAction vtime.Duration
	// StartInv is C_start_inv: dispatching cost at the beginning of a
	// task invocation (or activation).
	StartInv vtime.Duration
	// EndInv is C_end_inv: dispatching cost at the end of a task
	// invocation.
	EndInv vtime.Duration
	// SwitchCost is the kernel context-switch time, charged by the
	// simulated kernel at each dispatch of a different thread.
	SwitchCost vtime.Duration

	// ClockTickPeriod and ClockTickWCET describe the §4.2 clock
	// interrupt (P_clk, w_clk). A zero period disables the tick.
	ClockTickPeriod vtime.Duration
	ClockTickWCET   vtime.Duration
}

// DefaultCostBook returns costs in the order of magnitude of the paper's
// testbed (a ChorusR3 kernel on Pentium workstations): tens of
// microseconds per dispatcher activity, a 1 ms clock tick.
func DefaultCostBook() CostBook {
	return CostBook{
		PrecLocal:       15 * vtime.Microsecond,
		TransData:       40 * vtime.Microsecond,
		StartAction:     10 * vtime.Microsecond,
		EndAction:       8 * vtime.Microsecond,
		StartInv:        12 * vtime.Microsecond,
		EndInv:          9 * vtime.Microsecond,
		SwitchCost:      6 * vtime.Microsecond,
		ClockTickPeriod: 1 * vtime.Millisecond,
		ClockTickWCET:   5 * vtime.Microsecond,
	}
}

// ZeroCostBook returns a book where every middleware activity is free:
// the idealised model that naive feasibility tests assume. Experiment
// E-S5 contrasts admission under this book with the real one.
func ZeroCostBook() CostBook { return CostBook{} }

// Scale returns a copy of the book with every dispatcher cost multiplied
// by k (the clock-tick period is left unchanged; its WCET scales).
// Experiment E-X6 uses it to model crude, inflated cost estimates.
func (c CostBook) Scale(k float64) CostBook {
	mul := func(d vtime.Duration) vtime.Duration { return vtime.Duration(float64(d) * k) }
	out := c
	out.PrecLocal = mul(c.PrecLocal)
	out.TransData = mul(c.TransData)
	out.StartAction = mul(c.StartAction)
	out.EndAction = mul(c.EndAction)
	out.StartInv = mul(c.StartInv)
	out.EndInv = mul(c.EndInv)
	out.SwitchCost = mul(c.SwitchCost)
	out.ClockTickWCET = mul(c.ClockTickWCET)
	return out
}
