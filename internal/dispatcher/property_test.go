package dispatcher_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hades/internal/core"
	"hades/internal/dispatcher"
	"hades/internal/feasibility"
	"hades/internal/heug"
	"hades/internal/monitor"
	"hades/internal/sched"
	"hades/internal/vtime"
)

// buildRandomSystem assembles a random sporadic workload under EDF+SRP
// with full costs and runs it, returning the system.
func buildRandomSystem(seed int64, u float64, horizon vtime.Duration) *core.System {
	rng := rand.New(rand.NewSource(seed))
	tasks := feasibility.Generate(rng, feasibility.DefaultGenConfig(4, u))
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: seed, Costs: dispatcher.DefaultCostBook()})
	app := sys.NewApp("w", sched.NewEDF(20*us), sched.NewSRP())
	for _, ft := range tasks {
		if err := app.AddSpuri(feasibility.ToSpuri(ft, tasks, 0)); err != nil {
			panic(err)
		}
	}
	app.Seal()
	for _, ft := range tasks {
		if err := sys.StartSporadicWorstCase(ft.Name); err != nil {
			panic(err)
		}
	}
	sys.Run(horizon)
	return sys
}

// Property: an exclusive resource is never held by two threads at once,
// and grants/releases balance — across random workloads.
func TestPropertyExclusiveResourceSafety(t *testing.T) {
	f := func(seedRaw uint32) bool {
		sys := buildRandomSystem(int64(seedRaw)+1, 0.7, 150*ms)
		holds := map[string]int{}
		for _, e := range sys.Log().ByKind(monitor.KindResourceGrant, monitor.KindResourceRelease) {
			if e.Kind == monitor.KindResourceGrant {
				holds[e.Subject]++
				if holds[e.Subject] > 1 {
					return false // exclusive double-hold
				}
			} else {
				holds[e.Subject]--
				if holds[e.Subject] < 0 {
					return false // release without grant
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: under SRP, a thread that started executing never blocks —
// the protocol's defining guarantee [Bak91]. Detectable as: no thread
// has a Start event followed by a later Ready-state re-entry without
// finishing (our dispatcher would have to suspend it for resources,
// which must not happen).
func TestPropertySRPNoBlockingAfterStart(t *testing.T) {
	f := func(seedRaw uint32) bool {
		sys := buildRandomSystem(int64(seedRaw)+1000, 0.8, 150*ms)
		// If a started thread blocked on resources, the dispatcher
		// would record a Rac *after* its Start. Scan per thread.
		started := map[string]bool{}
		for _, e := range sys.Log().Events() {
			switch e.Kind {
			case monitor.KindThreadStart:
				started[e.Subject] = true
			case monitor.KindNotification:
				if e.Subject == "Rac" && started[e.Detail] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: completed instances took at least their total actual work
// (virtual time cannot be cheated) and every violation recorded has a
// corresponding stats counter.
func TestPropertyResponseLowerBound(t *testing.T) {
	f := func(seedRaw uint32) bool {
		seed := int64(seedRaw) + 2000
		rng := rand.New(rand.NewSource(seed))
		tasks := feasibility.Generate(rng, feasibility.DefaultGenConfig(3, 0.5))
		sys := core.NewSystem(core.Config{Nodes: 1, Seed: seed})
		app := sys.NewApp("w", sched.NewEDF(0), nil)
		for _, ft := range tasks {
			if err := app.AddSpuri(feasibility.ToSpuri(ft, tasks, 0)); err != nil {
				panic(err)
			}
		}
		app.Seal()
		for _, ft := range tasks {
			if err := sys.StartSporadicWorstCase(ft.Name); err != nil {
				panic(err)
			}
		}
		rep := sys.Run(100 * ms)
		for _, tr := range rep.Tasks {
			if tr.Completions == 0 {
				continue
			}
			var c vtime.Duration
			for _, ft := range tasks {
				if ft.Name == tr.Name {
					c = ft.C
				}
			}
			if tr.MaxResponse < c {
				return false // finished faster than its own WCET
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPreemptionThresholdAblation verifies the pt attribute's purpose
// (§3.1.2): with pt equal to its priority, a long low-priority unit is
// preempted by a higher-priority pinger, whose response stays small;
// with pt raised above the pinger, the unit runs shielded and the
// pinger absorbs the blocking — its worst response grows by orders of
// magnitude. (Dispatcher kernel work at PrioScheduler pierces any
// threshold, as it must.)
func TestPreemptionThresholdAblation(t *testing.T) {
	run := func(pt int) (pingResp vtime.Duration, longDone int) {
		sys := core.NewSystem(core.Config{Nodes: 1, Seed: 9, Costs: dispatcher.DefaultCostBook()})
		app := sys.NewApp("a", sched.NewBestEffort(0), nil)
		long := heug.NewTask("long", heug.PeriodicEvery(50*ms)).
			WithDeadline(50*ms).
			Code("body", heug.CodeEU{Node: 0, WCET: 20 * ms, Prio: 10, PT: pt}).
			MustBuild()
		pinger := heug.NewTask("ping", heug.PeriodicEvery(5*ms)).
			WithDeadline(25*ms).
			Code("p", heug.CodeEU{Node: 0, WCET: 200 * us, Prio: 20}).
			MustBuild()
		app.MustAddTask(long)
		app.MustAddTask(pinger)
		app.Seal()
		// BestEffort flattens priorities at Seal; restore the intent.
		long.EUs[0].Code.Prio, long.EUs[0].Code.PT = 10, pt
		pinger.EUs[0].Code.Prio = 20
		_ = sys.StartPeriodic("long")
		_ = sys.StartPeriodic("ping")
		rep := sys.Run(200 * ms)
		for _, tr := range rep.Tasks {
			switch tr.Name {
			case "ping":
				pingResp = tr.MaxResponse
			case "long":
				longDone = tr.Completions
			}
		}
		return pingResp, longDone
	}
	respOpen, doneOpen := run(0)          // pt = prio: fully preemptible
	respShielded, doneShielded := run(25) // pt above the pinger
	if respShielded < 4*respOpen {
		t.Fatalf("raising pt did not shield: ping response %s (open) vs %s (shielded)",
			respOpen, respShielded)
	}
	if respOpen > 2*ms {
		t.Fatalf("preemptible ping response %s unexpectedly large", respOpen)
	}
	if doneOpen != doneShielded {
		t.Fatalf("long completions changed with pt: %d vs %d", doneOpen, doneShielded)
	}
}

// TestKernelCallNonPreemptible checks §3.1.2's rule that kernel calls
// run at pt = prio_max: the start/end segments of an EU cannot be
// preempted by application threads (only interrupts).
func TestKernelCallNonPreemptible(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 9, Costs: dispatcher.CostBook{
		StartAction: 1 * ms, // grotesquely long kernel call, to probe
		EndAction:   1 * ms,
	}})
	app := sys.NewApp("a", sched.NewBestEffort(0), nil)
	lo := heug.NewTask("lo", heug.AperiodicLaw()).
		WithDeadline(50*ms).
		Code("eu", heug.CodeEU{Node: 0, WCET: 1 * ms, Prio: 1}).
		MustBuild()
	hi := heug.NewTask("hi", heug.AperiodicLaw()).
		WithDeadline(50*ms).
		Code("eu", heug.CodeEU{Node: 0, WCET: 1 * ms, Prio: 30}).
		MustBuild()
	app.MustAddTask(lo)
	app.MustAddTask(hi)
	app.Seal()
	lo.EUs[0].Code.Prio = 1
	hi.EUs[0].Code.Prio = 30
	sys.ActivateAt("lo", 0)
	// hi arrives while lo is inside its 1ms StartAction kernel call.
	sys.ActivateAt("hi", vtime.Time(500*us))
	sys.Run(100 * ms)
	// lo's kernel call must not have been preempted by hi: the first
	// preemption of lo.eu can only occur at/after 1ms (body start).
	for _, e := range sys.Log().ByKind(monitor.KindThreadPreempt) {
		if e.Subject == "lo#1.eu" && e.At < vtime.Time(1*ms) {
			t.Fatalf("kernel call preempted at %s", e.At)
		}
	}
}
