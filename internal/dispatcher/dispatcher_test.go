package dispatcher_test

import (
	"strings"
	"testing"

	"hades/internal/core"
	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/sched"
	"hades/internal/vtime"
)

// newSingleNode builds a 1-node system with an RM app and the given
// tasks, returning the system and app.
func newSingleNode(t *testing.T, costs dispatcher.CostBook, tasks ...*heug.Task) (*core.System, *core.App) {
	t.Helper()
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 7, Costs: costs})
	app := sys.NewApp("app", sched.NewRM(), nil)
	for _, task := range tasks {
		app.MustAddTask(task)
	}
	app.Seal()
	return sys, app
}

func TestPrecedenceChainExecutesInOrder(t *testing.T) {
	var order []string
	mk := func(name string) heug.Action {
		return func(heug.ActionContext) { order = append(order, name) }
	}
	task := heug.NewTask("chain", heug.AperiodicLaw()).
		WithDeadline(10*ms).
		Code("a", heug.CodeEU{Node: 0, WCET: 100 * us, Action: mk("a")}).
		Code("b", heug.CodeEU{Node: 0, WCET: 100 * us, Action: mk("b")}).
		Code("c", heug.CodeEU{Node: 0, WCET: 100 * us, Action: mk("c")}).
		Chain("a", "b", "c").
		MustBuild()
	sys, _ := newSingleNode(t, dispatcher.ZeroCostBook(), task)
	sys.ActivateAt("chain", 0)
	rep := sys.Run(20 * ms)
	if strings.Join(order, "") != "abc" {
		t.Fatalf("order %v", order)
	}
	if rep.Stats.Completions != 1 || rep.Stats.DeadlineMisses != 0 {
		t.Fatalf("stats %+v", rep.Stats)
	}
}

func TestParameterPassingAlongEdges(t *testing.T) {
	var got any
	task := heug.NewTask("params", heug.AperiodicLaw()).
		WithDeadline(10*ms).
		Code("src", heug.CodeEU{Node: 0, WCET: 50 * us, Action: func(ctx heug.ActionContext) {
			ctx.Out("x", int64(41))
		}}).
		Code("dst", heug.CodeEU{Node: 0, WCET: 50 * us, Action: func(ctx heug.ActionContext) {
			v, ok := ctx.In("x")
			if ok {
				got = v.(int64) + 1
			}
		}}).
		Precede("src", "dst", "x").
		MustBuild()
	sys, _ := newSingleNode(t, dispatcher.DefaultCostBook(), task)
	sys.ActivateAt("params", 0)
	sys.Run(20 * ms)
	if got != int64(42) {
		t.Fatalf("got %v, want 42", got)
	}
}

func TestExclusiveResourceSerialises(t *testing.T) {
	// Two tasks contending for one exclusive resource: their critical
	// sections must never overlap.
	var insideCS int
	var maxInside int
	enter := func(heug.ActionContext) {
		insideCS++
		if insideCS > maxInside {
			maxInside = insideCS
		}
	}
	mkTask := func(name string) *heug.Task {
		return heug.NewTask(name, heug.AperiodicLaw()).
			WithDeadline(50*ms).
			Code("pre", heug.CodeEU{Node: 0, WCET: 10 * us, Action: enter}).
			Code("cs", heug.CodeEU{Node: 0, WCET: 1 * ms,
				Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Exclusive}},
				Action:    func(heug.ActionContext) { insideCS-- },
			}).
			Precede("pre", "cs").
			MustBuild()
	}
	// Track overlap via resource grant/release events instead: count
	// concurrent holds from the log afterwards.
	sys, _ := newSingleNode(t, dispatcher.ZeroCostBook(), mkTask("ta"), mkTask("tb"))
	sys.ActivateAt("ta", 0)
	sys.ActivateAt("tb", vtime.Time(5*us))
	sys.Run(100 * ms)
	holds := 0
	for _, e := range sys.Log().ByKind(monitor.KindResourceGrant, monitor.KindResourceRelease) {
		if e.Kind == monitor.KindResourceGrant {
			holds++
			if holds > 1 {
				t.Fatal("exclusive resource held twice concurrently")
			}
		} else {
			holds--
		}
	}
	if sys.Dispatcher().Stats().Completions != 2 {
		t.Fatalf("completions %d", sys.Dispatcher().Stats().Completions)
	}
}

func TestSharedResourceAllowsConcurrentReaders(t *testing.T) {
	mkReader := func(name string) *heug.Task {
		return heug.NewTask(name, heug.AperiodicLaw()).
			WithDeadline(50*ms).
			Code("r", heug.CodeEU{Node: 0, WCET: 1 * ms,
				Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Shared}}}).
			MustBuild()
	}
	sys, _ := newSingleNode(t, dispatcher.ZeroCostBook(), mkReader("r1"), mkReader("r2"))
	sys.ActivateAt("r1", 0)
	sys.ActivateAt("r2", 0)
	sys.Run(100 * ms)
	// Both grants must occur before any release (concurrent holding).
	events := sys.Log().ByKind(monitor.KindResourceGrant, monitor.KindResourceRelease)
	if len(events) != 4 {
		t.Fatalf("events %d, want 4", len(events))
	}
	if events[0].Kind != monitor.KindResourceGrant || events[1].Kind != monitor.KindResourceGrant {
		t.Fatal("shared readers were serialised")
	}
}

func TestExclusiveBlocksShared(t *testing.T) {
	writer := heug.NewTask("w", heug.AperiodicLaw()).
		WithDeadline(50*ms).
		Code("w", heug.CodeEU{Node: 0, WCET: 2 * ms,
			Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Exclusive}}}).
		MustBuild()
	reader := heug.NewTask("r", heug.AperiodicLaw()).
		WithDeadline(50*ms).
		Code("r", heug.CodeEU{Node: 0, WCET: 1 * ms,
			Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Shared}}}).
		MustBuild()
	sys, _ := newSingleNode(t, dispatcher.ZeroCostBook(), writer, reader)
	sys.ActivateAt("w", 0)
	sys.ActivateAt("r", vtime.Time(100*us))
	sys.Run(100 * ms)
	events := sys.Log().ByKind(monitor.KindResourceGrant, monitor.KindResourceRelease)
	// Grant(w), Release(w), Grant(r), Release(r).
	kinds := make([]monitor.Kind, len(events))
	for i, e := range events {
		kinds[i] = e.Kind
	}
	if len(events) != 4 || kinds[0] != monitor.KindResourceGrant || kinds[1] != monitor.KindResourceRelease {
		t.Fatalf("reader overlapped writer: %v", kinds)
	}
}

func TestConditionVariableGatesStart(t *testing.T) {
	waiter := heug.NewTask("waiter", heug.AperiodicLaw()).
		WithDeadline(50*ms).
		Code("w", heug.CodeEU{Node: 0, WCET: 100 * us, WaitConds: []string{"go"}}).
		MustBuild()
	setter := heug.NewTask("setter", heug.AperiodicLaw()).
		WithDeadline(50*ms).
		Code("s", heug.CodeEU{Node: 0, WCET: 100 * us, Action: func(ctx heug.ActionContext) {
			ctx.SetCond("go")
		}}).
		MustBuild()
	sys, _ := newSingleNode(t, dispatcher.ZeroCostBook(), waiter, setter)
	sys.ActivateAt("waiter", 0)
	sys.ActivateAt("setter", vtime.Time(5*ms))
	rep := sys.Run(100 * ms)
	if rep.Stats.Completions != 2 {
		t.Fatalf("completions %d", rep.Stats.Completions)
	}
	// Waiter must finish after setter set the condition (>= 5ms).
	for _, tr := range rep.Tasks {
		if tr.Name == "waiter" && tr.MaxResponse < 5*ms {
			t.Fatalf("waiter responded at %s, before the condition was set", tr.MaxResponse)
		}
	}
}

func TestEarliestStartTimeRespected(t *testing.T) {
	task := heug.NewTask("late", heug.AperiodicLaw()).
		WithDeadline(50*ms).
		Code("e", heug.CodeEU{Node: 0, WCET: 100 * us, Earliest: 10 * ms}).
		MustBuild()
	sys, _ := newSingleNode(t, dispatcher.ZeroCostBook(), task)
	sys.ActivateAt("late", 0)
	rep := sys.Run(100 * ms)
	if rep.Tasks[0].MaxResponse < 10*ms {
		t.Fatalf("started before earliest: response %s", rep.Tasks[0].MaxResponse)
	}
}

func TestDeadlineMissDetectedAtDeadline(t *testing.T) {
	task := heug.NewTask("hog", heug.AperiodicLaw()).
		WithDeadline(1*ms).
		Code("h", heug.CodeEU{Node: 0, WCET: 5 * ms}).
		MustBuild()
	sys, _ := newSingleNode(t, dispatcher.ZeroCostBook(), task)
	sys.ActivateAt("hog", 0)
	rep := sys.Run(50 * ms)
	if rep.Stats.DeadlineMisses != 1 {
		t.Fatalf("misses %d, want 1", rep.Stats.DeadlineMisses)
	}
	misses := sys.Log().ByKind(monitor.KindDeadlineMiss)
	if len(misses) != 1 {
		t.Fatalf("miss events %d", len(misses))
	}
	// Detected at the deadline instant, not at completion (§3.2.1).
	if misses[0].At != vtime.Time(1*ms) {
		t.Fatalf("miss detected at %s, want 1ms", misses[0].At)
	}
}

func TestCancelOnMissOrphansThreads(t *testing.T) {
	task := heug.NewTask("doomed", heug.AperiodicLaw()).
		WithDeadline(1*ms).
		Code("a", heug.CodeEU{Node: 0, WCET: 5 * ms}).
		Code("b", heug.CodeEU{Node: 0, WCET: 1 * ms}).
		Precede("a", "b").
		MustBuild()
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 7, CancelOnMiss: true})
	app := sys.NewApp("app", sched.NewRM(), nil)
	app.MustAddTask(task)
	app.Seal()
	sys.ActivateAt("doomed", 0)
	rep := sys.Run(50 * ms)
	if rep.Stats.Orphans != 2 {
		t.Fatalf("orphans %d, want 2 (both units)", rep.Stats.Orphans)
	}
	if rep.Stats.Completions != 0 {
		t.Fatalf("completions %d, want 0", rep.Stats.Completions)
	}
	if n := sys.Log().CountKind(monitor.KindOrphanThread); n != 2 {
		t.Fatalf("orphan events %d", n)
	}
}

func TestArrivalLawViolationSporadic(t *testing.T) {
	task := heug.NewTask("spo", heug.SporadicEvery(10*ms)).
		WithDeadline(5*ms).
		Code("s", heug.CodeEU{Node: 0, WCET: 100 * us}).
		MustBuild()
	sys, _ := newSingleNode(t, dispatcher.ZeroCostBook(), task)
	sys.ActivateAt("spo", 0)
	sys.ActivateAt("spo", vtime.Time(2*ms)) // violates pseudo-period
	rep := sys.Run(50 * ms)
	if rep.Stats.ArrivalViolations != 1 {
		t.Fatalf("violations %d, want 1", rep.Stats.ArrivalViolations)
	}
	// Default policy: record and run anyway.
	if rep.Stats.Completions != 2 {
		t.Fatalf("completions %d, want 2", rep.Stats.Completions)
	}
}

func TestArrivalLawRejection(t *testing.T) {
	task := heug.NewTask("spo2", heug.SporadicEvery(10*ms)).
		WithDeadline(5*ms).
		Code("s", heug.CodeEU{Node: 0, WCET: 100 * us}).
		MustBuild()
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 7})
	app := sys.NewApp("app", sched.NewRM(), nil)
	app.MustAddTask(task)
	app.Raw().RejectOnArrivalViolation = true
	app.Seal()
	sys.ActivateAt("spo2", 0)
	sys.ActivateAt("spo2", vtime.Time(2*ms))
	rep := sys.Run(50 * ms)
	if rep.Stats.Completions != 1 {
		t.Fatalf("completions %d, want 1 (second activation rejected)", rep.Stats.Completions)
	}
	if rep.Stats.Rejections != 1 {
		t.Fatalf("rejections %d, want 1", rep.Stats.Rejections)
	}
}

func TestEarlyTerminationDetected(t *testing.T) {
	task := heug.NewTask("early", heug.AperiodicLaw()).
		WithDeadline(50*ms).
		Code("e", heug.CodeEU{Node: 0, WCET: 10 * ms,
			ActualWork: func(uint64) vtime.Duration { return 2 * ms }}).
		MustBuild()
	sys, _ := newSingleNode(t, dispatcher.ZeroCostBook(), task)
	sys.ActivateAt("early", 0)
	rep := sys.Run(100 * ms)
	if rep.Stats.EarlyTerminations != 1 {
		t.Fatalf("early terminations %d, want 1", rep.Stats.EarlyTerminations)
	}
	if rep.Tasks[0].MaxResponse != 2*ms {
		t.Fatalf("response %s, want 2ms (actual, not WCET)", rep.Tasks[0].MaxResponse)
	}
}

func TestLatestStartMissDetected(t *testing.T) {
	// A blocker occupies the CPU so the monitored unit cannot start
	// before its latest start time.
	blocker := heug.NewTask("blocker", heug.AperiodicLaw()).
		WithDeadline(50*ms).
		Code("b", heug.CodeEU{Node: 0, WCET: 10 * ms, Prio: 100}).
		MustBuild()
	watched := heug.NewTask("watched", heug.AperiodicLaw()).
		WithDeadline(50*ms).
		Code("w", heug.CodeEU{Node: 0, WCET: 1 * ms, Prio: 1, Latest: 2 * ms}).
		MustBuild()
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 7})
	app := sys.NewApp("app", sched.NewBestEffort(0), nil)
	app.MustAddTask(blocker)
	app.MustAddTask(watched)
	app.Seal()
	// Seal's BestEffort Init flattens priorities; restore the blocker's
	// dominance afterwards (threads read Prio at activation time).
	blocker.EUs[0].Code.Prio = 100
	watched.EUs[0].Code.Prio = 1
	sys.ActivateAt("blocker", 0)
	sys.ActivateAt("watched", 0)
	rep := sys.Run(100 * ms)
	if rep.Stats.LatestMisses != 1 {
		t.Fatalf("latest misses %d, want 1", rep.Stats.LatestMisses)
	}
}

func TestAsyncInvocationActivatesTarget(t *testing.T) {
	callee := heug.NewTask("callee", heug.AperiodicLaw()).
		WithDeadline(20*ms).
		Code("c", heug.CodeEU{Node: 0, WCET: 500 * us}).
		MustBuild()
	caller := heug.NewTask("caller", heug.AperiodicLaw()).
		WithDeadline(20*ms).
		Code("pre", heug.CodeEU{Node: 0, WCET: 100 * us}).
		Invoke("inv", heug.InvEU{Node: 0, Target: "callee", Sync: false}).
		Code("post", heug.CodeEU{Node: 0, WCET: 100 * us}).
		Chain("pre", "inv", "post").
		MustBuild()
	sys, _ := newSingleNode(t, dispatcher.DefaultCostBook(), callee, caller)
	sys.ActivateAt("caller", 0)
	rep := sys.Run(100 * ms)
	if rep.Stats.Completions != 2 {
		t.Fatalf("completions %d, want 2 (caller + callee)", rep.Stats.Completions)
	}
	var calleeResp, callerResp vtime.Duration
	for _, tr := range rep.Tasks {
		switch tr.Name {
		case "callee":
			calleeResp = tr.MaxResponse
			if tr.Activations != 1 {
				t.Fatalf("callee activations %d", tr.Activations)
			}
		case "caller":
			callerResp = tr.MaxResponse
		}
	}
	// Async: the caller need not wait for the callee; but here the
	// callee (activated mid-caller) finishes later than caller start.
	if calleeResp == 0 || callerResp == 0 {
		t.Fatal("missing responses")
	}
}

func TestSyncInvocationWaitsForTarget(t *testing.T) {
	callee := heug.NewTask("callee", heug.AperiodicLaw()).
		WithDeadline(20*ms).
		Code("c", heug.CodeEU{Node: 0, WCET: 3 * ms}).
		MustBuild()
	mkCaller := func(syncMode bool, name string) *heug.Task {
		return heug.NewTask(name, heug.AperiodicLaw()).
			WithDeadline(20*ms).
			Invoke("inv", heug.InvEU{Node: 0, Target: "callee", Sync: syncMode}).
			Code("post", heug.CodeEU{Node: 0, WCET: 100 * us}).
			Precede("inv", "post").
			MustBuild()
	}
	// Synchronous: caller completes after callee's 3ms.
	sysS, _ := newSingleNode(t, dispatcher.ZeroCostBook(), callee, mkCaller(true, "scall"))
	sysS.ActivateAt("scall", 0)
	repS := sysS.Run(100 * ms)
	var syncResp vtime.Duration
	for _, tr := range repS.Tasks {
		if tr.Name == "scall" {
			syncResp = tr.MaxResponse
		}
	}
	if syncResp < 3*ms {
		t.Fatalf("sync caller finished in %s, before callee", syncResp)
	}

	// Asynchronous: caller completes without waiting.
	calleeB := heug.NewTask("callee2", heug.AperiodicLaw()).
		WithDeadline(20*ms).
		Code("c", heug.CodeEU{Node: 0, WCET: 3 * ms}).
		MustBuild()
	caller := heug.NewTask("acall", heug.AperiodicLaw()).
		WithDeadline(20*ms).
		Invoke("inv", heug.InvEU{Node: 0, Target: "callee2", Sync: false}).
		Code("post", heug.CodeEU{Node: 0, WCET: 100 * us}).
		Precede("inv", "post").
		MustBuild()
	// Register the caller first: RM's stable rank then gives its units
	// the higher priority, so "post" preempts the freshly activated
	// callee — isolating the async-invocation semantics from priority
	// effects.
	sysA, _ := newSingleNode(t, dispatcher.ZeroCostBook(), caller, calleeB)
	sysA.ActivateAt("acall", 0)
	repA := sysA.Run(100 * ms)
	var asyncResp vtime.Duration
	for _, tr := range repA.Tasks {
		if tr.Name == "acall" {
			asyncResp = tr.MaxResponse
		}
	}
	if asyncResp >= 3*ms {
		t.Fatalf("async caller waited for callee: %s", asyncResp)
	}
}

// TestNoFalseDeadlockWithSyncInvocation verifies a structural property
// of the HEUG task model that §3.3 argues for: because every Code_EU
// acquires all its resources before starting and never blocks while
// holding them, resource wait-for cycles cannot form — a task that held
// a resource and then synchronously invokes a task needing that same
// resource has already released it when the invocation runs. The
// dispatcher's deadlock detector must stay silent here.
func TestNoFalseDeadlockWithSyncInvocation(t *testing.T) {
	callee := heug.NewTask("needsR", heug.AperiodicLaw()).
		WithDeadline(100*ms).
		Code("c", heug.CodeEU{Node: 0, WCET: 100 * us,
			Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Exclusive}}}).
		MustBuild()
	task := heug.NewTask("straight", heug.AperiodicLaw()).
		WithDeadline(100*ms).
		Code("holdR", heug.CodeEU{Node: 0, WCET: 5 * ms,
			Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Exclusive}}}).
		Invoke("inv", heug.InvEU{Node: 0, Target: "needsR", Sync: true}).
		Precede("holdR", "inv").
		MustBuild()
	sys, _ := newSingleNode(t, dispatcher.ZeroCostBook(), callee, task)
	sys.ActivateAt("straight", 0)
	rep := sys.Run(200 * ms)
	if rep.Stats.Deadlocks != 0 {
		t.Fatalf("false deadlock detected")
	}
	if rep.Stats.Completions != 2 {
		t.Fatalf("completions %d, want 2", rep.Stats.Completions)
	}
}

func TestRemotePrecedenceCrossesNetwork(t *testing.T) {
	task := heug.NewTask("dist", heug.AperiodicLaw()).
		WithDeadline(100*ms).
		Code("a", heug.CodeEU{Node: 0, WCET: 100 * us, Action: func(ctx heug.ActionContext) {
			ctx.Out("v", "hello")
		}}).
		Code("b", heug.CodeEU{Node: 1, WCET: 100 * us, Action: func(ctx heug.ActionContext) {
			if v, ok := ctx.In("v"); !ok || v != "hello" {
				panic("remote parameter lost")
			}
		}}).
		Precede("a", "b", "v").
		MustBuild()
	sys := core.NewSystem(core.Config{Nodes: 2, Seed: 7, Costs: dispatcher.DefaultCostBook()})
	app := sys.NewApp("app", sched.NewRM(), nil)
	app.MustAddTask(task)
	app.Seal()
	sys.ActivateAt("dist", 0)
	rep := sys.Run(200 * ms)
	if rep.Stats.Completions != 1 {
		t.Fatalf("completions %d", rep.Stats.Completions)
	}
	if rep.Stats.NetworkOmissions != 0 {
		t.Fatalf("false omission detections: %d", rep.Stats.NetworkOmissions)
	}
	if sys.Network().Stats().Delivered != 1 {
		t.Fatalf("network delivered %d", sys.Network().Stats().Delivered)
	}
	// The remote edge's latency shows in the response time.
	if rep.Tasks[0].MaxResponse < 200*us+100*us {
		t.Fatalf("response %s too fast for a remote hop", rep.Tasks[0].MaxResponse)
	}
}

func TestNetworkOmissionDetected(t *testing.T) {
	task := heug.NewTask("flaky", heug.AperiodicLaw()).
		WithDeadline(100*ms).
		Code("a", heug.CodeEU{Node: 0, WCET: 100 * us}).
		Code("b", heug.CodeEU{Node: 1, WCET: 100 * us}).
		Precede("a", "b").
		MustBuild()
	sys := core.NewSystem(core.Config{Nodes: 2, Seed: 7})
	// Drop everything on the HEUG port.
	sys.Network().SetFault(dropAll{})
	app := sys.NewApp("app", sched.NewRM(), nil)
	app.MustAddTask(task)
	app.Seal()
	sys.ActivateAt("flaky", 0)
	rep := sys.Run(200 * ms)
	if rep.Stats.NetworkOmissions != 1 {
		t.Fatalf("omissions detected %d, want 1", rep.Stats.NetworkOmissions)
	}
	if rep.Stats.Completions != 0 {
		t.Fatal("task completed despite lost precedence message")
	}
	if n := sys.Log().CountKind(monitor.KindNetworkOmission); n != 1 {
		t.Fatalf("omission events %d", n)
	}
}

type dropAll struct{}

func (dropAll) Judge(*netsim.Message) netsim.Verdict {
	return netsim.Verdict{Fate: netsim.FateDrop}
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() string {
		sys := core.NewSystem(core.Config{Nodes: 2, Seed: 99, Costs: dispatcher.DefaultCostBook()})
		app := sys.NewApp("app", sched.NewEDF(15*us), sched.NewSRP())
		for i, p := range []vtime.Duration{5 * ms, 7 * ms, 11 * ms} {
			st := heug.SpuriTask{
				Name: "t" + string(rune('a'+i)), Node: i % 2,
				CBefore: 200 * us, CS: 100 * us, CAfter: 150 * us,
				Resource: "S", Deadline: p, PseudoPeriod: p,
			}
			if err := app.AddSpuri(st); err != nil {
				t.Fatal(err)
			}
		}
		app.Seal()
		for _, n := range []string{"ta", "tb", "tc"} {
			if err := sys.StartSporadicWorstCase(n); err != nil {
				t.Fatal(err)
			}
		}
		rep := sys.Run(100 * ms)
		return rep.String() + sys.Log().Summary()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two seeded runs differ:\n%s\n---\n%s", a, b)
	}
}
