package dispatcher

import (
	"fmt"

	"hades/internal/eventq"
	"hades/internal/monitor"
	"hades/internal/netsim"
)

// remotePort is the netsim port carrying remote precedence constraints.
const remotePort = "heug.prec"

// remotePayload is the datagram for one remote precedence crossing: it
// identifies the destination unit of a live instance and carries the
// edge's parameters.
type remotePayload struct {
	Task   string
	Seq    uint64
	ToEU   int
	Params map[string]any
}

// sendRemote crosses a remote precedence constraint: the data was
// already handed to the communication protocol (C_trans_data is folded
// into the source's end segment); here the NetMsg task takes over. The
// dispatcher also arms the omission monitor of §3.2.1: if the message
// has not satisfied the constraint within the link's worst-case bound
// plus the receive path and slack, a network omission failure is
// declared.
func (d *Dispatcher) sendRemote(src *Thread, ei int) {
	task := src.inst.TR.Task
	e := task.Edges[ei]
	destEU := task.EUs[e.To]
	from, to := src.Node(), destEU.NodeOf()
	if d.net == nil {
		panic(fmt.Sprintf("dispatcher: task %q has a remote edge %s->%s but no network is configured",
			task.Name, task.EUs[e.From].Name, destEU.Name))
	}
	params := make(map[string]any, len(e.Params))
	for _, p := range e.Params {
		if v, ok := src.outputs[p]; ok {
			params[p] = v
		}
	}
	payload := remotePayload{Task: task.Name, Seq: src.inst.Seq, ToEU: e.To, Params: params}
	m, err := d.net.Send(from, to, remotePort, payload, 64+16*len(params))
	if err != nil {
		d.stats.NetworkOmissions++
		d.record(monitor.KindNetworkOmission, from, src.Name(), "no link to n"+fmt.Sprint(to))
		return
	}
	dmax, _ := d.net.DelayBound(from, to)
	bound := dmax + d.net.WorstCaseReceivePath() + d.OmissionSlack
	destName := fmt.Sprintf("%s.%s", src.inst.Name(), destEU.Name)
	ev := d.eng.After(bound, eventq.ClassDispatch, func() {
		delete(d.pendingRemote, m.ID)
		d.stats.NetworkOmissions++
		d.record(monitor.KindNetworkOmission, to, destName,
			fmt.Sprintf("remote precedence from %s not satisfied within %s", src.Name(), bound))
	})
	d.pendingRemote[m.ID] = ev
}

// receiveRemote satisfies a remote precedence constraint on delivery.
func (d *Dispatcher) receiveRemote(m *netsim.Message) {
	if ev, ok := d.pendingRemote[m.ID]; ok {
		d.eng.Cancel(ev)
		delete(d.pendingRemote, m.ID)
	}
	pl, ok := m.Payload.(remotePayload)
	if !ok {
		panic("dispatcher: foreign payload on heug.prec port")
	}
	inst := d.live[instKey{pl.Task, pl.Seq}]
	if inst == nil || inst.cancelled {
		// The instance is gone (completed late, cancelled, or orphaned):
		// the delivery is an orphan message.
		d.record(monitor.KindMessageDrop, m.To, pl.Task, fmt.Sprintf("#%d orphan delivery", pl.Seq))
		return
	}
	dest := inst.Threads[pl.ToEU]
	for k, v := range pl.Params {
		dest.inputs[k] = v
	}
	dest.predsLeft--
	d.evaluate(dest)
}
