package metrics

import (
	"bytes"
	"sort"
	"testing"

	"hades/internal/monitor"
	"hades/internal/vtime"
)

// sim is a miniature deterministic scheduler standing in for the
// engine: Schedule enqueues, runTo fires everything due in time order.
type sim struct {
	now vtime.Time
	q   map[vtime.Time][]func()
}

func newSim() *sim { return &sim{q: map[vtime.Time][]func(){}} }

func (s *sim) opts() Options {
	return Options{
		Now:      func() vtime.Time { return s.now },
		Schedule: func(t vtime.Time, fn func()) { s.q[t] = append(s.q[t], fn) },
	}
}

func (s *sim) runTo(until vtime.Time) {
	var due []vtime.Time
	for t := range s.q {
		if t <= until {
			due = append(due, t)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, t := range due {
		s.now = t
		for _, fn := range s.q[t] {
			fn()
		}
		delete(s.q, t)
	}
	s.now = until
}

func findSeries(ex *Export, name string) *SeriesData {
	for i := range ex.Series {
		if ex.Series[i].Name == name {
			return &ex.Series[i]
		}
	}
	return nil
}

// TestCounterDeltaGaugeLevelFuncSum: counters export per-interval
// deltas, gauges the level at the scrape instant, and multiple source
// funcs registered under one name sum.
func TestCounterDeltaGaugeLevelFuncSum(t *testing.T) {
	s := newSim()
	opt := s.opts()
	opt.Interval = vtime.Millisecond
	r := New(opt)
	c := r.Counter("ops")
	g := r.Gauge("depth")
	a, b := int64(3), int64(4)
	r.GaugeFunc("fanned", func() int64 { return a })
	r.GaugeFunc("fanned", func() int64 { return b })

	c.Add(5)
	g.Set(7)
	r.ArmUntil(vtime.Time(2 * vtime.Millisecond))
	s.runTo(vtime.Time(vtime.Millisecond))
	c.Add(2)
	g.Add(-3)
	a = 10
	s.runTo(vtime.Time(2 * vtime.Millisecond))

	ex := r.Export()
	ops := findSeries(ex, "ops")
	if ops == nil || len(ops.Points) != 2 || ops.Points[0].V != 5 || ops.Points[1].V != 2 {
		t.Fatalf("counter deltas wrong: %+v", ops)
	}
	depth := findSeries(ex, "depth")
	if depth == nil || depth.Points[0].V != 7 || depth.Points[1].V != 4 {
		t.Fatalf("gauge levels wrong: %+v", depth)
	}
	fanned := findSeries(ex, "fanned")
	if fanned == nil || fanned.Points[0].V != 7 || fanned.Points[1].V != 14 {
		t.Fatalf("summed gauge funcs wrong: %+v", fanned)
	}
}

// TestSeriesRingWraparound: a full ring drops the oldest points, keeps
// the newest Capacity in chronological order and counts the evictions.
func TestSeriesRingWraparound(t *testing.T) {
	s := newSim()
	opt := s.opts()
	opt.Interval = vtime.Millisecond
	opt.Capacity = 4
	r := New(opt)
	c := r.Counter("ops")
	r.ArmUntil(vtime.Time(10 * vtime.Millisecond))
	for i := 1; i <= 10; i++ {
		c.Add(int64(i)) // interval i's delta is i
		s.runTo(vtime.Time(vtime.Duration(i) * vtime.Millisecond))
	}
	ex := r.Export()
	ops := findSeries(ex, "ops")
	if ops == nil {
		t.Fatal("series missing")
	}
	if ops.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", ops.Dropped)
	}
	if len(ops.Points) != 4 {
		t.Fatalf("retained %d points, want 4", len(ops.Points))
	}
	for i, p := range ops.Points {
		wantT := int64(vtime.Duration(7+i) * vtime.Millisecond)
		if p.T != wantT || p.V != int64(7+i) {
			t.Fatalf("point %d = {T:%d V:%d}, want {T:%d V:%d} (chronological unwind)", i, p.T, p.V, wantT, 7+i)
		}
	}
}

// TestHistIntervalReset: each interval summarises only its own
// observations; an empty interval exports a zero point.
func TestHistIntervalReset(t *testing.T) {
	s := newSim()
	opt := s.opts()
	opt.Interval = vtime.Millisecond
	r := New(opt)
	h := r.Hist("lat")
	r.ArmUntil(vtime.Time(3 * vtime.Millisecond))
	h.Observe(100)
	h.Observe(200)
	s.runTo(vtime.Time(vtime.Millisecond))
	// Interval 2: nothing observed.
	s.runTo(vtime.Time(2 * vtime.Millisecond))
	h.ObserveD(5 * vtime.Microsecond)
	s.runTo(vtime.Time(3 * vtime.Millisecond))

	lat := findSeries(r.Export(), "lat")
	if lat == nil || len(lat.Points) != 3 {
		t.Fatalf("want 3 points: %+v", lat)
	}
	p1, p2, p3 := lat.Points[0], lat.Points[1], lat.Points[2]
	if p1.V != 2 || p1.Max != 200 || p1.P50 < 100 {
		t.Fatalf("interval 1 stats wrong: %+v", p1)
	}
	if p2.V != 0 || p2.Max != 0 || p2.P50 != 0 || p2.P99 != 0 {
		t.Fatalf("empty interval not zeroed: %+v", p2)
	}
	if p3.V != 1 || p3.Max != 5000 {
		t.Fatalf("interval 3 leaked earlier observations: %+v", p3)
	}
}

// TestSLOStreakOnsetClear drives a For=2 rule through the full cycle:
// one violating interval is not a breach, the second opens one (with
// the onset instant and a monitor event), further violations extend
// it, and a holding interval clears it with the clear instant.
func TestSLOStreakOnsetClear(t *testing.T) {
	s := newSim()
	log := monitor.NewLog(100)
	opt := s.opts()
	opt.Interval = vtime.Millisecond
	opt.Log = log
	opt.Rules = []Rule{{Name: "depth", Metric: "q", Op: OpLE, Threshold: 10, For: 2}}
	r := New(opt)
	g := r.Gauge("q")
	r.ArmUntil(vtime.Time(5 * vtime.Millisecond))

	g.Set(50) // interval 1: violating (bad=1, no breach yet)
	s.runTo(vtime.Time(vtime.Millisecond))
	if n := len(r.Breaches()); n != 0 {
		t.Fatalf("breach before the For streak: %d", n)
	}
	g.Set(60) // interval 2: violating (bad=2 → breach opens)
	s.runTo(vtime.Time(2 * vtime.Millisecond))
	br := r.Breaches()
	if len(br) != 1 || br[0].Onset != vtime.Time(2*vtime.Millisecond) || br[0].Clear != 0 {
		t.Fatalf("breach not opened at the second violating interval: %+v", br)
	}
	g.Set(70) // interval 3: still violating (extends, worst=70)
	s.runTo(vtime.Time(3 * vtime.Millisecond))
	g.Set(5) // interval 4: holds → clears
	s.runTo(vtime.Time(4 * vtime.Millisecond))

	br = r.Breaches()
	if len(br) != 1 {
		t.Fatalf("want one breach window: %+v", br)
	}
	b := br[0]
	if b.Clear != vtime.Time(4*vtime.Millisecond) || b.Intervals != 3 || b.Worst != 70 {
		t.Fatalf("clear/intervals/worst wrong: %+v", b)
	}
	if n := log.CountKind(monitor.KindSLOBreach); n != 1 {
		t.Fatalf("want 1 breach event, got %d", n)
	}
	if n := log.CountKind(monitor.KindSLOClear); n != 1 {
		t.Fatalf("want 1 clear event, got %d", n)
	}
	// SLO events must not count as correctness violations.
	if v := log.Violations(); len(v) != 0 {
		t.Fatalf("SLO events leaked into violations: %+v", v)
	}
}

// TestSLONoDataClears: a percentile rule over a histogram holds
// vacuously on empty intervals, closing any open breach.
func TestSLONoDataClears(t *testing.T) {
	s := newSim()
	opt := s.opts()
	opt.Interval = vtime.Millisecond
	opt.Rules = []Rule{{Name: "lat", Metric: "lat", Stat: StatP99, Op: OpLE, Threshold: 1000}}
	r := New(opt)
	h := r.Hist("lat")
	r.ArmUntil(vtime.Time(3 * vtime.Millisecond))

	h.Observe(5000) // interval 1: p99 violates → breach (For defaults to 1)
	s.runTo(vtime.Time(vtime.Millisecond))
	// Interval 2: no observations → vacuous hold, breach clears.
	s.runTo(vtime.Time(2 * vtime.Millisecond))
	br := r.Breaches()
	if len(br) != 1 || br[0].Onset != vtime.Time(vtime.Millisecond) || br[0].Clear != vtime.Time(2*vtime.Millisecond) {
		t.Fatalf("no-data interval did not clear the breach: %+v", br)
	}
	// Evals counted only intervals with data.
	ex := r.Export()
	if len(ex.SLO) != 1 || ex.SLO[0].Evals != 1 {
		t.Fatalf("evals should skip empty intervals: %+v", ex.SLO)
	}
}

// TestTopKEvictionDeterminism: over-capacity keys evict the smallest,
// oldest-admitted entry; counts inherit the evicted floor and report
// the error bound; ties in Hot() order by key.
func TestTopKEvictionDeterminism(t *testing.T) {
	k := newTopK(2)
	k.Touch("a", 0)
	k.Touch("a", 0)
	k.Touch("b", 1) // a:2, b:1
	k.Touch("c", 0) // evicts b (min=1): c admitted with count=2, err=1
	hot := k.Hot()
	if len(hot) != 2 {
		t.Fatalf("want 2 entries: %+v", hot)
	}
	if hot[0].Key != "a" || hot[0].Count != 2 || hot[0].Err != 0 {
		t.Fatalf("exact entry wrong: %+v", hot[0])
	}
	if hot[1].Key != "c" || hot[1].Count != 2 || hot[1].Err != 1 {
		t.Fatalf("evicting entry must inherit the floor: %+v", hot[1])
	}
	if k.Touches() != 4 {
		t.Fatalf("touches = %d, want 4", k.Touches())
	}
	// Equal counts order by key for a deterministic export.
	k2 := newTopK(4)
	k2.Touch("z", 0)
	k2.Touch("m", 0)
	k2.Touch("a", 0)
	h2 := k2.Hot()
	if h2[0].Key != "a" || h2[1].Key != "m" || h2[2].Key != "z" {
		t.Fatalf("tie-break not by key: %+v", h2)
	}
}

// TestNilRegistrySafe: a disabled plane hands out nil instruments whose
// methods are all no-ops, and nil-safe registry calls do nothing.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Hist("x")
	k := r.Keys()
	if c != nil || g != nil || h != nil || k != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveD(vtime.Millisecond)
	k.Touch("a", 0)
	r.CounterFunc("x", func() int64 { return 1 })
	r.GaugeFunc("x", func() int64 { return 1 })
	r.ArmUntil(vtime.Time(vtime.Second))
	if r.Export() != nil {
		t.Fatal("nil registry must export nil")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("nil registry must still write a valid JSON document")
	}
}

// TestKindClashPanics: registering one name as two instrument kinds is
// a programming error and fails fast.
func TestKindClashPanics(t *testing.T) {
	s := newSim()
	r := New(s.opts())
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("x")
}
