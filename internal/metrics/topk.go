package metrics

// TopK is a space-saving heavy-hitters sketch over keys: bounded
// memory, every key whose true frequency exceeds touches/k is
// guaranteed present, and each entry carries the overestimation bound
// it was admitted with. Eviction is deterministic: the lowest-count
// entry, oldest admission first — same touch sequence, same sketch.
// A nil sketch (metrics disabled) no-ops.
type TopK struct {
	k       int
	byKey   map[string]*tkEntry
	entries []*tkEntry // admission order, for deterministic min scans
	touches int64
}

// tkEntry is one tracked key.
type tkEntry struct {
	key   string
	shard int
	count int64
	err   int64 // admission overestimate: true count >= count - err
}

func newTopK(k int) *TopK {
	return &TopK{k: k, byKey: make(map[string]*tkEntry, k)}
}

// Touch records one access to key on the given shard.
func (t *TopK) Touch(key string, shard int) {
	if t == nil {
		return
	}
	t.touches++
	if e := t.byKey[key]; e != nil {
		e.count++
		e.shard = shard
		return
	}
	if len(t.entries) < t.k {
		e := &tkEntry{key: key, shard: shard, count: 1}
		t.byKey[key] = e
		t.entries = append(t.entries, e)
		return
	}
	// Space-saving eviction: replace the minimum-count entry, crediting
	// the newcomer with min+1 and recording min as its error bound.
	min := t.entries[0]
	for _, e := range t.entries[1:] {
		if e.count < min.count {
			min = e
		}
	}
	delete(t.byKey, min.key)
	t.byKey[key] = min
	min.key, min.shard, min.err, min.count = key, shard, min.count, min.count+1
}

// Touches returns the total number of recorded accesses.
func (t *TopK) Touches() int64 {
	if t == nil {
		return 0
	}
	return t.touches
}

// HotKey is one exported sketch entry.
type HotKey struct {
	Key   string `json:"key"`
	Shard int    `json:"shard"`
	Count int64  `json:"count"`
	Err   int64  `json:"err,omitempty"`
}

// Hot returns the tracked keys, hottest first (count descending, key
// ascending on ties — deterministic).
func (t *TopK) Hot() []HotKey {
	if t == nil {
		return nil
	}
	out := make([]HotKey, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, HotKey{Key: e.key, Shard: e.shard, Count: e.count, Err: e.err})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// less orders hot keys: higher count first, then key.
func less(a, b HotKey) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Key < b.Key
}
