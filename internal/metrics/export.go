package metrics

import (
	"encoding/json"
	"io"
)

// Export is the JSON timeline document: every series' retained points,
// the SLO rules with their breach windows, and the key-hotness sketch.
// All instants and durations are integer virtual-time nanoseconds, so
// identical runs export byte-identical documents.
type Export struct {
	IntervalNs int64        `json:"interval_ns"`
	Capacity   int          `json:"capacity"`
	Scrapes    int          `json:"scrapes"`
	Series     []SeriesData `json:"series"`
	SLO        []RuleData   `json:"slo,omitempty"`
	TopKeys    []HotKey     `json:"top_keys,omitempty"`
}

// SeriesData is one exported series.
type SeriesData struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Unit string `json:"unit,omitempty"`
	// Dropped counts points the ring buffer evicted (oldest first).
	Dropped int         `json:"dropped,omitempty"`
	Points  []PointData `json:"points"`
}

// PointData is one exported sample. T is the scrape instant (ns); V
// the counter delta / gauge level / histogram count; the percentile
// fields carry a histogram's interval summary.
type PointData struct {
	T    int64 `json:"t"`
	V    int64 `json:"v"`
	P50  int64 `json:"p50,omitempty"`
	P99  int64 `json:"p99,omitempty"`
	P999 int64 `json:"p999,omitempty"`
	Max  int64 `json:"max,omitempty"`
}

// RuleData is one exported SLO rule with its breach history.
type RuleData struct {
	Name      string       `json:"name"`
	Expr      string       `json:"expr"`
	Metric    string       `json:"metric"`
	Stat      string       `json:"stat"`
	Op        string       `json:"op"`
	Threshold float64      `json:"threshold"`
	For       int          `json:"for"`
	Evals     int          `json:"evals"`
	Breaches  []BreachData `json:"breaches,omitempty"`
}

// BreachData is one exported breach window. Clear is zero (omitted)
// when the breach was still open at run end.
type BreachData struct {
	Onset     int64   `json:"onset"`
	Clear     int64   `json:"clear,omitempty"`
	Intervals int     `json:"intervals"`
	Worst     float64 `json:"worst"`
}

// Export snapshots the registry into its timeline document. Series
// sort by name; every ordering in the document is deterministic.
func (r *Registry) Export() *Export {
	if r == nil {
		return nil
	}
	doc := &Export{
		IntervalNs: int64(r.opt.Interval),
		Capacity:   r.opt.Capacity,
		Scrapes:    r.scrapes,
		Series:     make([]SeriesData, 0, len(r.order)),
	}
	for _, name := range r.names() {
		e := r.byName[name]
		s := e.series()
		sd := SeriesData{Name: e.name, Kind: e.kind.String(), Dropped: s.dropped, Points: make([]PointData, 0, len(s.pts))}
		if e.kind == kindHist {
			sd.Unit = e.h.unit
		}
		s.each(func(p Point) {
			sd.Points = append(sd.Points, PointData{T: int64(p.T), V: p.V, P50: p.P50, P99: p.P99, P999: p.P999, Max: p.Max})
		})
		doc.Series = append(doc.Series, sd)
	}
	for _, p := range r.probes {
		rd := RuleData{
			Name: p.r.Name, Expr: p.r.Expr(), Metric: p.r.Metric,
			Stat: string(p.r.Stat), Op: string(p.r.Op),
			Threshold: p.r.Threshold, For: p.r.For, Evals: p.evals,
		}
		for _, b := range p.breaches {
			rd.Breaches = append(rd.Breaches, BreachData{
				Onset: int64(b.Onset), Clear: int64(b.Clear), Intervals: b.Intervals, Worst: b.Worst,
			})
		}
		doc.SLO = append(doc.SLO, rd)
	}
	doc.TopKeys = r.topk.Hot()
	return doc
}

// Breaches returns every recorded breach window, rule order then
// onset order.
func (r *Registry) Breaches() []Breach {
	if r == nil {
		return nil
	}
	var out []Breach
	for _, p := range r.probes {
		out = append(out, p.breaches...)
	}
	return out
}

// WriteJSON writes the export document to w.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := r.Export()
	if doc == nil {
		doc = &Export{}
	}
	return json.NewEncoder(w).Encode(doc)
}
