package metrics

import (
	"fmt"

	"hades/internal/monitor"
	"hades/internal/vtime"
)

// Stat names the statistic an SLO rule extracts from a series point.
type Stat string

// Rule statistics. Value reads a counter's per-interval delta or a
// gauge's sampled level; Count, P50, P99, P999 and Max read a
// histogram's interval summary.
const (
	StatValue Stat = "value"
	StatCount Stat = "count"
	StatP50   Stat = "p50"
	StatP99   Stat = "p99"
	StatP999  Stat = "p999"
	StatMax   Stat = "max"
)

// Op is an SLO rule's comparison operator: the rule states the
// condition that should HOLD (e.g. p99 <= 40ms); an interval where it
// does not is a violating interval.
type Op string

// Rule operators.
const (
	OpLE Op = "<="
	OpLT Op = "<"
	OpGE Op = ">="
	OpGT Op = ">"
)

// valid reports whether the operator is one of the four comparisons.
func (o Op) valid() bool {
	switch o {
	case OpLE, OpLT, OpGE, OpGT:
		return true
	}
	return false
}

// valid reports whether the stat is known.
func (s Stat) valid() bool {
	switch s {
	case StatValue, StatCount, StatP50, StatP99, StatP999, StatMax:
		return true
	}
	return false
}

// Rule is one declarative SLO: "stat(metric) op threshold", breached
// after For consecutive violating intervals. Thresholds are in the
// series' raw unit (nanoseconds for latency histograms).
type Rule struct {
	// Name labels the rule in breach events and reports.
	Name string
	// Metric is the series the rule probes.
	Metric string
	// Stat selects the statistic (StatValue for counters/gauges).
	Stat Stat
	// Op compares the statistic against Threshold; the rule holds when
	// the comparison is true.
	Op Op
	// Threshold is the bound, in the series' raw unit.
	Threshold float64
	// For is the number of consecutive violating intervals before the
	// breach opens (0 and 1 both mean "immediately").
	For int
}

// Expr renders the rule as its declarative form.
func (r Rule) Expr() string {
	expr := fmt.Sprintf("%s(%s) %s %g", r.Stat, r.Metric, r.Op, r.Threshold)
	if r.For > 1 {
		expr += fmt.Sprintf(" for %d intervals", r.For)
	}
	return expr
}

// Validate checks the rule's shape (the scenario layer surfaces these
// loudly at parse time).
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("slo rule needs a name")
	}
	if r.Metric == "" {
		return fmt.Errorf("slo rule %q needs a metric", r.Name)
	}
	if !r.Stat.valid() {
		return fmt.Errorf("slo rule %q: unknown stat %q (want value|count|p50|p99|p999|max)", r.Name, r.Stat)
	}
	if !r.Op.valid() {
		return fmt.Errorf("slo rule %q: unknown op %q (want <=|<|>=|>)", r.Name, r.Op)
	}
	if r.For < 0 {
		return fmt.Errorf("slo rule %q: negative for-intervals %d", r.Name, r.For)
	}
	return nil
}

// Breach is one recorded SLO violation window: the onset instant, the
// clear instant (zero while still open at run end), the number of
// violating intervals it spanned and the worst observed value.
type Breach struct {
	Rule      string
	Onset     vtime.Time
	Clear     vtime.Time
	Intervals int
	Worst     float64
}

// probe is one rule's evaluation state.
type probe struct {
	r        Rule
	bad      int // consecutive violating intervals
	open     int // index+1 into breaches of the open breach, 0 = none
	evals    int
	breaches []Breach
}

func newProbe(r Rule) *probe {
	if r.For < 1 {
		r.For = 1
	}
	if r.Stat == "" {
		r.Stat = StatValue
	}
	return &probe{r: r}
}

// extract pulls the rule's statistic from the newest point of its
// series. ok is false when there is nothing to judge: no series, no
// point for this interval, or an empty histogram interval for a
// percentile stat — no data means the rule holds vacuously (and an
// open breach clears: a gone workload is not a violating one).
func (p *probe) extract(r *Registry, t vtime.Time) (float64, bool) {
	e := r.byName[p.r.Metric]
	if e == nil {
		return 0, false
	}
	pt, ok := e.series().last()
	if !ok || pt.T != t {
		return 0, false
	}
	switch p.r.Stat {
	case StatValue, StatCount:
		return float64(pt.V), true
	case StatP50:
		if pt.V == 0 {
			return 0, false
		}
		return float64(pt.P50), true
	case StatP99:
		if pt.V == 0 {
			return 0, false
		}
		return float64(pt.P99), true
	case StatP999:
		if pt.V == 0 {
			return 0, false
		}
		return float64(pt.P999), true
	case StatMax:
		if pt.V == 0 {
			return 0, false
		}
		return float64(pt.Max), true
	}
	return 0, false
}

// holds applies the rule's comparison.
func (p *probe) holds(v float64) bool {
	switch p.r.Op {
	case OpLE:
		return v <= p.r.Threshold
	case OpLT:
		return v < p.r.Threshold
	case OpGE:
		return v >= p.r.Threshold
	case OpGT:
		return v > p.r.Threshold
	}
	return true
}

// evaluate runs one probe against the interval that just scraped:
// violating intervals accumulate toward the For bound, opening a
// breach (and a monitor event) when they reach it; a holding interval
// clears any open breach with its onset/clear instants.
func (r *Registry) evaluate(p *probe, t vtime.Time) {
	v, ok := p.extract(r, t)
	if ok {
		p.evals++
	}
	if ok && !p.holds(v) {
		p.bad++
		if p.open == 0 && p.bad >= p.r.For {
			p.breaches = append(p.breaches, Breach{Rule: p.r.Name, Onset: t, Intervals: p.bad, Worst: v})
			p.open = len(p.breaches)
			if r.opt.Log != nil {
				r.opt.Log.Recordf(t, monitor.KindSLOBreach, -1, p.r.Name,
					"%s: observed %g (%d violating intervals)", p.r.Expr(), v, p.bad)
			}
			return
		}
		if p.open > 0 {
			b := &p.breaches[p.open-1]
			b.Intervals++
			if worse(p.r.Op, v, b.Worst) {
				b.Worst = v
			}
		}
		return
	}
	// The rule holds (or has no data to violate): close any open breach.
	p.bad = 0
	if p.open > 0 {
		b := &p.breaches[p.open-1]
		b.Clear = t
		p.open = 0
		if r.opt.Log != nil {
			r.opt.Log.Recordf(t, monitor.KindSLOClear, -1, p.r.Name,
				"%s: cleared after %s (onset %s, %d intervals, worst %g)",
				p.r.Expr(), b.Clear.Sub(b.Onset), b.Onset, b.Intervals, b.Worst)
		}
	}
}

// worse reports whether a is further past the threshold than b, in the
// direction the rule's operator fails.
func worse(op Op, a, b float64) bool {
	switch op {
	case OpLE, OpLT:
		return a > b
	default:
		return a < b
	}
}
