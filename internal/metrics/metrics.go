// Package metrics is the virtual-time metrics plane of the HADES
// reproduction: an always-on, allocation-conscious time-series layer
// over the simulator's virtual clock.
//
// A per-run Registry holds named instruments — counters, gauges and
// histograms — that every layer updates on its hot path through
// nil-safe handles (a disabled plane hands out nil handles; every
// method on a nil handle is a no-op, so call sites carry no
// conditionals). On a fixed virtual-time interval the registry scrapes
// every instrument into a fixed-capacity ring-buffer series: counters
// record the per-interval delta, gauges the sampled value, histograms
// a per-interval {count, p50, p99, p999, max} summary (the interval
// histogram then resets). On top of the series an SLO probe engine
// (slo.go) evaluates declarative threshold rules each interval, and a
// space-saving sketch (topk.go) tracks per-key hotness — the signal
// elastic resharding will consume.
//
// Like the tracing plane, the metrics plane is behaviorally passive:
// it never consumes the engine's random stream and its scrape events
// never mutate simulation state, so a run with metrics on is
// byte-identical to the same run with metrics off (modulo the SLO
// breach events it appends to the monitor stream). Same description +
// same seed ⇒ byte-identical export.
package metrics

import (
	"fmt"
	"sort"

	"hades/internal/monitor"
	"hades/internal/trace"
	"hades/internal/vtime"
)

// Defaults: the interval is short against the millisecond-scale
// horizons of the builtins (a 400ms run yields 80 points) and the
// capacity generously covers second-scale runs before the ring wraps.
const (
	DefaultInterval = 5 * vtime.Millisecond
	DefaultCapacity = 256
	DefaultTopK     = 16
)

// Options parameterises a Registry.
type Options struct {
	// Interval is the virtual-time scrape period (0 = DefaultInterval).
	Interval vtime.Duration
	// Capacity bounds each series' ring buffer (0 = DefaultCapacity).
	Capacity int
	// TopK bounds the space-saving key-hotness sketch (0 = DefaultTopK).
	TopK int
	// Rules are the declarative SLO threshold rules evaluated each
	// interval.
	Rules []Rule
	// Now reads the virtual clock (required).
	Now func() vtime.Time
	// Schedule arranges fn to run at absolute virtual instant t
	// (required for scraping; the cluster wires the engine's App class).
	Schedule func(t vtime.Time, fn func())
	// Log, when set, receives SLO breach/clear events.
	Log *monitor.Log
}

// Point is one scraped sample of one series. V is the counter delta,
// gauge value or histogram observation count; P50/P99/P999/Max
// summarise a histogram's interval (zero when the interval observed
// nothing).
type Point struct {
	T    vtime.Time
	V    int64
	P50  int64
	P99  int64
	P999 int64
	Max  int64
}

// series is a fixed-capacity ring of points.
type series struct {
	pts     []Point
	start   int
	dropped int
	capn    int
}

func (s *series) push(p Point) {
	if len(s.pts) < s.capn {
		s.pts = append(s.pts, p)
		return
	}
	s.pts[s.start] = p
	s.start = (s.start + 1) % s.capn
	s.dropped++
}

// each visits retained points in chronological order, unwinding the
// ring when it has wrapped.
func (s *series) each(visit func(Point)) {
	for i := 0; i < len(s.pts); i++ {
		visit(s.pts[(s.start+i)%len(s.pts)])
	}
}

// last returns the newest point.
func (s *series) last() (Point, bool) {
	if len(s.pts) == 0 {
		return Point{}, false
	}
	i := s.start - 1
	if i < 0 {
		i = len(s.pts) - 1
	}
	return s.pts[i], true
}

// Counter is a monotonic count; each scrape records the delta since
// the previous one. Source callbacks (CounterFunc) let existing
// cumulative statistics feed a counter without touching their hot
// path. All methods are nil-safe.
type Counter struct {
	v    int64
	last int64
	fns  []func() int64
	s    series
}

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

func (c *Counter) sample() int64 {
	v := c.v
	for _, fn := range c.fns {
		v += fn()
	}
	return v
}

// Gauge is a sampled level: each scrape records the set value plus the
// sum of the registered source callbacks (several callbacks under one
// name sum — per-shard depths aggregate naturally). Nil-safe.
type Gauge struct {
	v   int64
	fns []func() int64
	s   series
}

// Set stores the gauge level.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add moves the gauge level.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v += n
	}
}

func (g *Gauge) sample() int64 {
	v := g.v
	for _, fn := range g.fns {
		v += fn()
	}
	return v
}

// Hist is a per-interval log-linear histogram (the trace plane's HDR
// layout): each scrape summarises and resets it. Nil-safe.
type Hist struct {
	h    *trace.Hist
	unit string
	s    series
}

// Observe records one observation.
func (h *Hist) Observe(v int64) {
	if h != nil {
		h.h.Record(v)
	}
}

// ObserveD records one duration observation.
func (h *Hist) ObserveD(d vtime.Duration) { h.Observe(int64(d)) }

// instKind discriminates the registry's entries.
type instKind uint8

const (
	kindCounter instKind = iota + 1
	kindGauge
	kindHist
)

func (k instKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHist:
		return "hist"
	}
	return "?"
}

// entry is one named instrument.
type entry struct {
	name string
	kind instKind
	c    *Counter
	g    *Gauge
	h    *Hist
}

func (e *entry) scrape(t vtime.Time) {
	switch e.kind {
	case kindCounter:
		cur := e.c.sample()
		e.c.s.push(Point{T: t, V: cur - e.c.last})
		e.c.last = cur
	case kindGauge:
		e.g.s.push(Point{T: t, V: e.g.sample()})
	case kindHist:
		h := e.h.h
		e.h.s.push(Point{
			T: t, V: int64(h.Count()),
			P50: h.Percentile(0.5), P99: h.Percentile(0.99),
			P999: h.Percentile(0.999), Max: h.Max(),
		})
		h.Reset()
	}
}

func (e *entry) series() *series {
	switch e.kind {
	case kindCounter:
		return &e.c.s
	case kindGauge:
		return &e.g.s
	case kindHist:
		return &e.h.s
	}
	return nil
}

// Registry is the per-run metrics plane: the named instruments, the
// scrape schedule, the SLO probes and the key-hotness sketch. A nil
// Registry is the disabled plane — every method no-ops and every
// instrument accessor returns a nil (no-op) handle.
type Registry struct {
	opt    Options
	order  []*entry
	byName map[string]*entry
	topk   *TopK
	probes []*probe

	nextTick   vtime.Time
	armedUntil vtime.Time
	scrapes    int
}

// New builds a registry. Zero option fields default.
func New(opt Options) *Registry {
	if opt.Interval <= 0 {
		opt.Interval = DefaultInterval
	}
	if opt.Capacity <= 0 {
		opt.Capacity = DefaultCapacity
	}
	if opt.TopK <= 0 {
		opt.TopK = DefaultTopK
	}
	r := &Registry{
		opt:    opt,
		byName: make(map[string]*entry),
		topk:   newTopK(opt.TopK),
	}
	for _, rule := range opt.Rules {
		r.probes = append(r.probes, newProbe(rule))
	}
	return r
}

// Interval returns the scrape period.
func (r *Registry) Interval() vtime.Duration {
	if r == nil {
		return 0
	}
	return r.opt.Interval
}

// Scrapes returns how many scrape ticks have fired.
func (r *Registry) Scrapes() int {
	if r == nil {
		return 0
	}
	return r.scrapes
}

// get returns (creating) the named entry, checking the kind: one name,
// one instrument — a kind clash is a programming error and panics.
func (r *Registry) get(name string, kind instKind) *entry {
	e := r.byName[name]
	if e != nil {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e = &entry{name: name, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{s: series{capn: r.opt.Capacity}}
	case kindGauge:
		e.g = &Gauge{s: series{capn: r.opt.Capacity}}
	case kindHist:
		e.h = &Hist{h: trace.NewHist(), unit: "ns", s: series{capn: r.opt.Capacity}}
	}
	r.byName[name] = e
	r.order = append(r.order, e)
	return e
}

// Counter returns the named counter handle (nil when disabled).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, kindCounter).c
}

// CounterFunc feeds the named counter from a cumulative source sampled
// at each scrape (the delta is recorded) — wiring for statistics that
// already exist, costing the hot path nothing.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	c := r.get(name, kindCounter).c
	c.fns = append(c.fns, fn)
}

// Gauge returns the named gauge handle (nil when disabled).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, kindGauge).g
}

// GaugeFunc adds a sampled source to the named gauge; several sources
// under one name sum at scrape time.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	g := r.get(name, kindGauge).g
	g.fns = append(g.fns, fn)
}

// Hist returns the named histogram handle with nanosecond unit (nil
// when disabled).
func (r *Registry) Hist(name string) *Hist {
	if r == nil {
		return nil
	}
	return r.get(name, kindHist).h
}

// HistUnit returns the named histogram handle, declaring its unit
// ("ns", "ops", ...) for the exporters.
func (r *Registry) HistUnit(name, unit string) *Hist {
	if r == nil {
		return nil
	}
	h := r.get(name, kindHist).h
	h.unit = unit
	return h
}

// Keys returns the key-hotness sketch (nil when disabled).
func (r *Registry) Keys() *TopK {
	if r == nil {
		return nil
	}
	return r.topk
}

// ArmUntil schedules scrape ticks on every interval boundary up to and
// including until (idempotent per boundary; repeated runs extend the
// schedule). Scrape callbacks read instruments and never mutate
// simulation state, keeping the plane passive.
func (r *Registry) ArmUntil(until vtime.Time) {
	if r == nil || r.opt.Schedule == nil {
		return
	}
	if r.nextTick == 0 {
		r.nextTick = vtime.Time(r.opt.Interval)
	}
	for t := r.nextTick; t <= until; t = t.Add(r.opt.Interval) {
		tick := t
		r.opt.Schedule(tick, func() { r.scrapeAt(tick) })
		r.nextTick = t.Add(r.opt.Interval)
	}
	if until > r.armedUntil {
		r.armedUntil = until
	}
}

// scrapeAt samples every instrument into its series and evaluates the
// SLO probes against the fresh points.
func (r *Registry) scrapeAt(t vtime.Time) {
	r.scrapes++
	for _, e := range r.order {
		e.scrape(t)
	}
	for _, p := range r.probes {
		r.evaluate(p, t)
	}
}

// names returns the registered series names, sorted.
func (r *Registry) names() []string {
	out := make([]string, 0, len(r.order))
	for _, e := range r.order {
		out = append(out, e.name)
	}
	sort.Strings(out)
	return out
}
