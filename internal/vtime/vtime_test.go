package vtime

import (
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	tests := []struct {
		name string
		base Time
		d    Duration
		want Time
	}{
		{"zero plus zero", 0, 0, 0},
		{"simple add", 10, 5, 15},
		{"negative duration", 10, -3, 7},
		{"microsecond", 0, Microsecond, 1000},
		{"millisecond", 0, Millisecond, 1000000},
		{"second", 0, Second, 1000000000},
		{"infinity saturates", Infinity, 5, Infinity},
		{"forever saturates", 7, Forever, Infinity},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.base.Add(tt.d); got != tt.want {
				t.Errorf("(%d).Add(%d) = %d, want %d", tt.base, tt.d, got, tt.want)
			}
		})
	}
}

func TestSubBeforeAfter(t *testing.T) {
	a, b := Time(100), Time(250)
	if got := b.Sub(a); got != 150 {
		t.Errorf("Sub = %d, want 150", got)
	}
	if !a.Before(b) || b.Before(a) {
		t.Error("Before is wrong")
	}
	if !b.After(a) || a.After(b) {
		t.Error("After is wrong")
	}
}

func TestDurationString(t *testing.T) {
	tests := []struct {
		d    Duration
		want string
	}{
		{0, "0ns"},
		{500, "500ns"},
		{1500, "1.5us"},
		{Millisecond, "1ms"},
		{2500 * Microsecond, "2.5ms"},
		{3 * Second, "3s"},
		{-2 * Millisecond, "-2ms"},
		{Forever, "+inf"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tt.d), got, tt.want)
		}
	}
}

func TestTimeString(t *testing.T) {
	if got := Infinity.String(); got != "+inf" {
		t.Errorf("Infinity.String() = %q", got)
	}
	if got := Time(1500).String(); got != "1.5us" {
		t.Errorf("Time(1500).String() = %q", got)
	}
}

func TestCeilFloorDiv(t *testing.T) {
	tests := []struct {
		x, y      Duration
		ceil, flr int64
	}{
		{0, 10, 0, 0},
		{1, 10, 1, 0},
		{10, 10, 1, 1},
		{11, 10, 2, 1},
		{-5, 10, 0, 0},
		{100, 3, 34, 33},
	}
	for _, tt := range tests {
		if got := CeilDiv(tt.x, tt.y); got != tt.ceil {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", tt.x, tt.y, got, tt.ceil)
		}
		if got := FloorDiv(tt.x, tt.y); got != tt.flr {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", tt.x, tt.y, got, tt.flr)
		}
	}
}

func TestCeilDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CeilDiv(1, 0) did not panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestMinMax(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max wrong")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min wrong")
	}
	if MaxD(3, 5) != 5 || MinD(3, 5) != 3 {
		t.Error("MaxD/MinD wrong")
	}
}

// Property: ceil division always covers the dividend, floor never
// exceeds it, and they differ by at most one.
func TestCeilFloorDivProperties(t *testing.T) {
	f := func(xr int32, yr int32) bool {
		x := Duration(xr)
		y := Duration(yr % 100000) // keep small-ish
		if y <= 0 {
			y = 1 + (-y % 100000)
		}
		c, fl := CeilDiv(x, y), FloorDiv(x, y)
		if x > 0 {
			if Duration(c)*y < x {
				return false
			}
			if Duration(fl)*y > x {
				return false
			}
		}
		return c-fl <= 1 && c >= fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add/Sub round-trip for finite values.
func TestAddSubRoundTrip(t *testing.T) {
	f := func(base int32, d int32) bool {
		tm := Time(base)
		du := Duration(d)
		return tm.Add(du).Sub(tm) == du
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
