// Package vtime defines the virtual-time base used throughout HADES.
//
// All timing guarantees in this reproduction are expressed in simulated
// time rather than wall-clock time: the paper's predictability requirement
// (every activity has a known worst-case duration) becomes exact
// determinism under a discrete-event engine. Time is an absolute instant
// and Duration a signed span, both in integer nanoseconds, mirroring the
// shapes of the standard time package so that code reads naturally.
package vtime

import (
	"fmt"
	"strconv"
)

// Time is an absolute instant of simulated time, in nanoseconds since the
// start of the run. The zero value is the start of the run.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations. They intentionally mirror package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Infinity is a sentinel instant later than any reachable simulation time.
// It is used for "no deadline" and "never" bookkeeping.
const Infinity Time = 1<<63 - 1

// Forever is a sentinel duration longer than any reachable simulation span.
const Forever Duration = 1<<63 - 1

// Add returns the instant d after t. Adding to Infinity saturates.
func (t Time) Add(d Duration) Time {
	if t == Infinity {
		return Infinity
	}
	if d == Forever {
		return Infinity
	}
	return t + Time(d)
}

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Micros returns the instant as a float64 count of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the instant as a float64 count of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the instant with a unit chosen for readability.
func (t Time) String() string {
	if t == Infinity {
		return "+inf"
	}
	return Duration(t).String()
}

// Micros returns the duration as a float64 count of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis returns the duration as a float64 count of milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// String renders the duration with a unit chosen for readability.
func (d Duration) String() string {
	if d == Forever {
		return "+inf"
	}
	neg := ""
	if d < 0 {
		neg, d = "-", -d
	}
	switch {
	case d < Microsecond:
		return neg + strconv.FormatInt(int64(d), 10) + "ns"
	case d < Millisecond:
		return neg + trimFloat(float64(d)/float64(Microsecond)) + "us"
	case d < Second:
		return neg + trimFloat(float64(d)/float64(Millisecond)) + "ms"
	default:
		return neg + trimFloat(float64(d)/float64(Second)) + "s"
	}
}

func trimFloat(f float64) string {
	s := strconv.FormatFloat(f, 'f', 3, 64)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxD returns the longer of a and b.
func MaxD(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// MinD returns the shorter of a and b.
func MinD(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// CeilDiv returns ceil(x/y) for positive y, the standard demand-bound
// helper used by the feasibility tests.
func CeilDiv(x, y Duration) int64 {
	if y <= 0 {
		panic(fmt.Sprintf("vtime.CeilDiv: non-positive divisor %d", y))
	}
	if x <= 0 {
		return 0
	}
	return (int64(x) + int64(y) - 1) / int64(y)
}

// FloorDiv returns floor(x/y) for positive y, clamped at 0 for negative x.
func FloorDiv(x, y Duration) int64 {
	if y <= 0 {
		panic(fmt.Sprintf("vtime.FloorDiv: non-positive divisor %d", y))
	}
	if x < 0 {
		return 0
	}
	return int64(x) / int64(y)
}
