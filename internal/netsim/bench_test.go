package netsim

import (
	"testing"

	"hades/internal/simkern"
	"hades/internal/vtime"
)

func BenchmarkSendReceivePath(b *testing.B) {
	eng := simkern.NewEngine(nil, 1)
	eng.AddProcessor("n0", 0)
	eng.AddProcessor("n1", 0)
	n := New(eng, DefaultConfig())
	n.Connect(0, 1, 100*vtime.Microsecond, 300*vtime.Microsecond)
	n.Bind(1, "bench", func(*Message) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Send(0, 1, "bench", i, 8); err != nil {
			b.Fatal(err)
		}
		eng.RunUntilIdle()
	}
}

func BenchmarkBroadcastFanout(b *testing.B) {
	eng := simkern.NewEngine(nil, 1)
	ids := make([]int, 16)
	for i := range ids {
		eng.AddProcessor("n", 0)
		ids[i] = i
	}
	n := New(eng, DefaultConfig())
	n.ConnectAll(ids, 50*vtime.Microsecond, 150*vtime.Microsecond)
	for _, id := range ids[1:] {
		n.Bind(id, "bench", func(*Message) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Multicast(0, ids, "bench", i, 8); err != nil {
			b.Fatal(err)
		}
		eng.RunUntilIdle()
	}
}
